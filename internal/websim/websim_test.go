package websim

import (
	"strings"
	"testing"
)

func sampleSite() Site {
	return Site{
		Domain:   "DailyPress.com.pk",
		Country:  "PK",
		Kind:     Regional,
		Category: "news",
		RenderMs: 4000,
		Resources: []Resource{
			{URL: "https://static.dailypress.com.pk/main.css", Type: "css"},
			{URL: "https://static.dailypress.com.pk/logo.png", Type: "img"},
			{URL: "https://www.googletagmanager.example/gtm.js", Type: "script",
				Children: []Resource{
					{URL: "https://www.google-analytics.example/analytics.js", Type: "script"},
					{URL: "https://stats.g.doubleclick.example/collect", Type: "xhr"},
				}},
			{URL: "https://ads.regionalad.example/frame", Type: "iframe"},
		},
	}
}

func TestDomainOf(t *testing.T) {
	cases := []struct{ url, want string }{
		{"https://www.Example.com/path?x=1", "www.example.com"},
		{"http://example.com", "example.com"},
		{"https://example.com:8443/a", "example.com"},
		{"example.com/path", "example.com"},
		{"https://example.com#frag", "example.com"},
	}
	for _, tc := range cases {
		if got := DomainOf(tc.url); got != tc.want {
			t.Errorf("DomainOf(%q) = %q, want %q", tc.url, got, tc.want)
		}
	}
}

func TestAddAndLookup(t *testing.T) {
	w := NewWeb()
	if err := w.AddSite(sampleSite()); err != nil {
		t.Fatal(err)
	}
	if err := w.AddSite(sampleSite()); err == nil {
		t.Error("duplicate site should fail")
	}
	if err := w.AddSite(Site{}); err == nil {
		t.Error("empty domain should fail")
	}
	s, ok := w.Site("dailypress.com.pk")
	if !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if s.URL() != "https://dailypress.com.pk/" {
		t.Errorf("URL = %q", s.URL())
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestHTMLEmbedsAllResources(t *testing.T) {
	s := sampleSite()
	doc := s.HTML()
	for _, r := range s.Resources {
		if !strings.Contains(doc, r.URL) {
			t.Errorf("HTML missing resource %s", r.URL)
		}
	}
	if !strings.Contains(doc, "<script src=") || !strings.Contains(doc, "<img src=") ||
		!strings.Contains(doc, "<link rel=\"stylesheet\"") || !strings.Contains(doc, "<iframe src=") {
		t.Error("HTML missing expected tag kinds")
	}
	// Children are loaded by scripts at runtime, not present in markup.
	if strings.Contains(doc, "analytics.js") {
		t.Error("chained loads must not appear in static HTML")
	}
}

func TestResourceChildren(t *testing.T) {
	w := NewWeb()
	if err := w.AddSite(sampleSite()); err != nil {
		t.Fatal(err)
	}
	kids := w.ResourceChildren("https://www.googletagmanager.example/gtm.js")
	if len(kids) != 2 {
		t.Fatalf("children = %d, want 2", len(kids))
	}
	if kids[0].Domain() != "www.google-analytics.example" {
		t.Errorf("child domain = %q", kids[0].Domain())
	}
	if kids := w.ResourceChildren("https://nonexistent/x.js"); kids != nil {
		t.Error("unknown resource should have no children")
	}
}

func TestSitesInFiltersByCountryAndKind(t *testing.T) {
	w := NewWeb()
	sites := []Site{
		{Domain: "a.com.pk", Country: "PK", Kind: Regional},
		{Domain: "b.gov.pk", Country: "PK", Kind: Government},
		{Domain: "c.com.eg", Country: "EG", Kind: Regional},
		{Domain: "google.com", Kind: Global},
	}
	for _, s := range sites {
		if err := w.AddSite(s); err != nil {
			t.Fatal(err)
		}
	}
	reg := w.SitesIn("PK", Regional)
	if len(reg) != 1 || reg[0].Domain != "a.com.pk" {
		t.Errorf("SitesIn(PK, Regional) = %v", reg)
	}
	gov := w.SitesIn("PK", Government)
	if len(gov) != 1 || gov[0].Domain != "b.gov.pk" {
		t.Errorf("SitesIn(PK, Government) = %v", gov)
	}
}

func TestSitesSorted(t *testing.T) {
	w := NewWeb()
	for _, d := range []string{"z.com", "a.com", "m.com"} {
		if err := w.AddSite(Site{Domain: d}); err != nil {
			t.Fatal(err)
		}
	}
	all := w.Sites()
	if all[0].Domain != "a.com" || all[2].Domain != "z.com" {
		t.Errorf("Sites() not sorted: %v", all)
	}
}

func TestKindString(t *testing.T) {
	if Regional.String() != "regional" || Government.String() != "government" || Global.String() != "global" {
		t.Error("kind names wrong")
	}
	if Kind(7).String() == "" {
		t.Error("unknown kind should still print")
	}
}

func TestNestedChildrenIndexed(t *testing.T) {
	w := NewWeb()
	s := Site{
		Domain: "nested.example",
		Resources: []Resource{
			{URL: "https://a.example/1.js", Type: "script", Children: []Resource{
				{URL: "https://b.example/2.js", Type: "script", Children: []Resource{
					{URL: "https://c.example/3.js", Type: "script"},
				}},
			}},
		},
	}
	if err := w.AddSite(s); err != nil {
		t.Fatal(err)
	}
	l2 := w.ResourceChildren("https://b.example/2.js")
	if len(l2) != 1 || l2[0].URL != "https://c.example/3.js" {
		t.Errorf("nested children not indexed: %v", l2)
	}
}
