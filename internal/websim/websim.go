// Package websim is the web-content substrate: a synthetic World Wide Web
// of regional and government websites whose homepages embed first-party
// assets and third-party resources (trackers, analytics, CDN assets), the
// way the paper's target websites do. Pages are materialized as real HTML
// documents; the browser substrate fetches and parses them, and scripts can
// trigger chained loads (a tag-manager script pulling in more trackers),
// reproducing the request fan-out Gamma records during page loads.
package websim

import (
	"fmt"
	"html"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a site within the study's target-list taxonomy.
type Kind int

// Site kinds.
const (
	Regional   Kind = iota // T_reg: popular regional site
	Government             // T_gov: official government site
	Global                 // globally-ranked site appearing across countries
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Regional:
		return "regional"
	case Government:
		return "government"
	case Global:
		return "global"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Resource is one subresource a page (or script) loads.
type Resource struct {
	URL  string `json:"url"`
	Type string `json:"type"` // script, img, css, iframe, xhr
	// Cookies names the cookies the response sets (trackers identify users
	// this way; third-party cookies are the classic mechanism).
	Cookies []string `json:"cookies,omitempty"`
	// Children are loads this resource triggers once executed (tag managers
	// and ad scripts routinely pull in further trackers).
	Children []Resource `json:"children,omitempty"`
}

// Domain extracts the hostname from the resource URL.
func (r Resource) Domain() string { return DomainOf(r.URL) }

// DomainOf extracts the hostname of a URL (scheme://host/path...).
func DomainOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for _, sep := range []byte{'/', '?', '#'} {
		if i := strings.IndexByte(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	if i := strings.IndexByte(s, ':'); i >= 0 { // strip port
		s = s[:i]
	}
	return strings.ToLower(s)
}

// Site is one website in the synthetic web.
type Site struct {
	// Domain is the site's registrable hostname, e.g. "dailypress.com.pk".
	Domain string `json:"domain"`
	// Country is the ISO code of the site's home market ("" for Global).
	Country  string `json:"country,omitempty"`
	Kind     Kind   `json:"kind"`
	Category string `json:"category,omitempty"`
	// OwnerOrg names the organization operating the site (used by the
	// first-party tracker analysis, §6.7). Empty for independent sites.
	OwnerOrg string `json:"owner_org,omitempty"`
	// Resources are the homepage's embedded subresources.
	Resources []Resource `json:"resources,omitempty"`
	// Variants override Resources for clients in specific countries,
	// modelling regional content adaptation (the paper's §8 example:
	// yahoo.com embeds different trackers in India than in Qatar).
	Variants map[string][]Resource `json:"variants,omitempty"`
	// Rotating is the ad-slot pool: each page load samples RotateK of
	// these (ad auctions fill slots differently on every visit). This is
	// why the paper recommends multiple runs per site — a single visit
	// sees only one draw.
	Rotating []Resource `json:"rotating,omitempty"`
	// RotateK is how many rotating resources one load receives.
	RotateK int `json:"rotate_k,omitempty"`
	// RenderMs is how long the page takes to render fully.
	RenderMs float64 `json:"render_ms"`
}

// ResourcesFor returns the homepage resources served to a client country.
func (s Site) ResourcesFor(country string) []Resource {
	if rs, ok := s.Variants[country]; ok {
		return rs
	}
	return s.Resources
}

// URL returns the homepage URL.
func (s Site) URL() string { return "https://" + s.Domain + "/" }

// HTML materializes the homepage document as served to a default client.
func (s Site) HTML() string { return s.HTMLFor("") }

// HTMLFor materializes the homepage for a client country, embedding every
// top-level resource with the tag appropriate to its type.
func (s Site) HTMLFor(country string) string {
	resources := s.ResourcesFor(country)
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(s.Domain))
	fmt.Fprintf(&b, "<meta charset=\"utf-8\">\n")
	for _, r := range resources {
		if r.Type == "css" {
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", html.EscapeString(r.URL))
		}
	}
	for _, r := range resources {
		if r.Type == "script" {
			fmt.Fprintf(&b, "<script src=\"%s\" async></script>\n", html.EscapeString(r.URL))
		}
	}
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n<p>Welcome to %s (%s).</p>\n",
		html.EscapeString(s.Domain), html.EscapeString(s.Domain), s.Kind)
	for _, r := range resources {
		switch r.Type {
		case "img":
			fmt.Fprintf(&b, "<img src=\"%s\" alt=\"\">\n", html.EscapeString(r.URL))
		case "iframe":
			fmt.Fprintf(&b, "<iframe src=\"%s\"></iframe>\n", html.EscapeString(r.URL))
		case "xhr":
			// XHR endpoints appear in markup as data attributes the page's
			// bootstrap script reads; the browser model fetches them.
			fmt.Fprintf(&b, "<div data-endpoint=\"%s\"></div>\n", html.EscapeString(r.URL))
		}
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// Web is the collection of all sites plus the resource graph used for
// chained script loads. Safe for concurrent reads after construction.
type Web struct {
	mu       sync.RWMutex
	sites    map[string]*Site
	children map[string][]Resource // resource URL -> chained loads
	cookies  map[string][]string   // resource URL -> cookies the response sets

	pages pageCache
}

// NewWeb creates an empty web.
func NewWeb() *Web {
	return &Web{
		sites:    make(map[string]*Site),
		children: make(map[string][]Resource),
		cookies:  make(map[string][]string),
	}
}

// pageKey identifies a materialized homepage. Countries without a variant
// collapse onto the base document ("") so the cache holds one entry per
// distinct document, not one per country.
type pageKey struct{ domain, country string }

// PageCacheStats counts page-memo traffic. Hits+Misses is the number of
// PageHTML calls; Derivations is how many documents were actually built.
type PageCacheStats struct {
	Hits, Misses, Derivations uint64
}

// pageCache memoizes HTMLFor output per (site, effective country). Page
// markup is a pure function of the site's registered state — AddSite
// stores a private copy and nothing mutates it afterwards — so every
// session re-rendering the same document was pure waste. Read-mostly:
// lock-free-ish RLock probes on the hot path, a fill mutex serializing
// derivations so each document is built exactly once.
type pageCache struct {
	mu       sync.RWMutex
	m        map[pageKey]string
	fillMu   sync.Mutex
	hits     atomic.Uint64
	misses   atomic.Uint64
	derived  atomic.Uint64
	disabled atomic.Bool
}

// SetPageCacheDisabled turns the page memo off (every PageHTML call
// re-renders). The reference mode for cached-vs-uncached equivalence tests.
func (w *Web) SetPageCacheDisabled(off bool) { w.pages.disabled.Store(off) }

// PageCacheStats returns a snapshot of the page memo counters.
func (w *Web) PageCacheStats() PageCacheStats {
	return PageCacheStats{
		Hits:        w.pages.hits.Load(),
		Misses:      w.pages.misses.Load(),
		Derivations: w.pages.derived.Load(),
	}
}

// PageHTML returns the homepage document the site serves to a client in
// the given country, byte-identical to Site.HTMLFor but memoized per
// distinct document. ok is false for unknown domains.
func (w *Web) PageHTML(domain, country string) (html string, ok bool) {
	site, ok := w.Site(domain)
	if !ok {
		return "", false
	}
	if w.pages.disabled.Load() {
		return site.HTMLFor(country), true
	}
	key := pageKey{domain: site.Domain}
	if _, variant := site.Variants[country]; variant {
		key.country = country
	}
	w.pages.mu.RLock()
	html, cached := w.pages.m[key]
	w.pages.mu.RUnlock()
	if cached {
		w.pages.hits.Add(1)
		return html, true
	}
	return w.pageFill(site, key), true
}

// pageFill renders and stores a document on a cache miss, serialized so
// concurrent sessions landing on the same page derive it once.
func (w *Web) pageFill(site Site, key pageKey) string {
	w.pages.misses.Add(1)
	w.pages.fillMu.Lock()
	defer w.pages.fillMu.Unlock()
	w.pages.mu.RLock()
	html, cached := w.pages.m[key]
	w.pages.mu.RUnlock()
	if cached {
		return html
	}
	w.pages.derived.Add(1)
	html = site.HTMLFor(key.country)
	w.pages.mu.Lock()
	if w.pages.m == nil {
		w.pages.m = make(map[pageKey]string)
	}
	w.pages.m[key] = html
	w.pages.mu.Unlock()
	return html
}

// AddSite registers a site and indexes its resource graph.
func (w *Web) AddSite(s Site) error {
	if s.Domain == "" {
		return fmt.Errorf("websim: site needs a domain")
	}
	key := strings.ToLower(s.Domain)
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.sites[key]; dup {
		return fmt.Errorf("websim: duplicate site %q", s.Domain)
	}
	cp := s
	cp.Domain = key
	w.sites[key] = &cp
	var index func(rs []Resource)
	index = func(rs []Resource) {
		for _, r := range rs {
			if len(r.Cookies) > 0 && w.cookies[r.URL] == nil {
				w.cookies[r.URL] = append([]string(nil), r.Cookies...)
			}
			if len(r.Children) > 0 {
				w.children[r.URL] = append(w.children[r.URL], r.Children...)
				index(r.Children)
			}
		}
	}
	index(cp.Resources)
	// Variants must be indexed in a stable order: the cookie index is
	// first-wins and the children index appends, so ranging the map
	// directly would make the web differ from build to build.
	ccs := make([]string, 0, len(cp.Variants))
	for cc := range cp.Variants {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	for _, cc := range ccs {
		index(cp.Variants[cc])
	}
	index(cp.Rotating)
	return nil
}

// Site looks up a site by domain.
func (w *Web) Site(domain string) (Site, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s, ok := w.sites[strings.ToLower(domain)]
	if !ok {
		return Site{}, false
	}
	return *s, true
}

// Sites returns all sites sorted by domain.
func (w *Web) Sites() []Site {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]Site, 0, len(w.sites))
	for _, s := range w.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// SitesIn returns a country's sites of one kind, sorted by domain.
func (w *Web) SitesIn(country string, kind Kind) []Site {
	var out []Site
	for _, s := range w.Sites() {
		if s.Country == country && s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// ResourceCookies returns the cookies a resource's response sets.
func (w *Web) ResourceCookies(url string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.cookies[url]
}

// ResourceChildren returns the chained loads a fetched resource triggers.
func (w *Web) ResourceChildren(url string) []Resource {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.children[url]
}

// Len returns the number of registered sites.
func (w *Web) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.sites)
}
