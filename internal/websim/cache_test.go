package websim

import (
	"fmt"
	"sync"
	"testing"
)

// cacheWeb builds a web of n sites, the even-numbered ones carrying a DE
// variant, so the page memo sees both variant and collapsed-base keys.
func cacheWeb(t *testing.T, n int) *Web {
	t.Helper()
	w := NewWeb()
	for i := 0; i < n; i++ {
		site := Site{
			Domain: fmt.Sprintf("site%02d.example", i),
			Resources: []Resource{
				{URL: fmt.Sprintf("https://cdn.example/app%d.js", i), Type: "script"},
				{URL: fmt.Sprintf("https://img.example/hero%d.png", i), Type: "img"},
			},
		}
		if i%2 == 0 {
			site.Variants = map[string][]Resource{"DE": {
				{URL: fmt.Sprintf("https://tracker.de/pixel%d.gif", i), Type: "img"},
			}}
		}
		if err := w.AddSite(site); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestPageCacheMatchesHTMLFor pins the memoized document against direct
// rendering for every (site, country) combination, including countries
// that collapse onto the base document.
func TestPageCacheMatchesHTMLFor(t *testing.T) {
	const n = 6
	w := cacheWeb(t, n)
	for i := 0; i < n; i++ {
		domain := fmt.Sprintf("site%02d.example", i)
		site, ok := w.Site(domain)
		if !ok {
			t.Fatal("missing site")
		}
		for _, cc := range []string{"", "DE", "US"} {
			got, ok := w.PageHTML(domain, cc)
			if !ok || got != site.HTMLFor(cc) {
				t.Fatalf("PageHTML(%s, %q) diverges from HTMLFor (ok=%v)", domain, cc, ok)
			}
		}
	}
	// Distinct documents: one base per site plus one DE variant per even
	// site; "US" and "" share the base entry.
	wantDocs := uint64(n + (n+1)/2)
	if st := w.PageCacheStats(); st.Derivations != wantDocs {
		t.Errorf("derivations = %d, want one per distinct document (%d)", st.Derivations, wantDocs)
	}
	if _, ok := w.PageHTML("nosuch.example", ""); ok {
		t.Error("PageHTML invented a site")
	}
}

// TestPageCacheDisabled pins that the disabled cache still renders
// correctly and records no traffic.
func TestPageCacheDisabled(t *testing.T) {
	w := cacheWeb(t, 2)
	w.SetPageCacheDisabled(true)
	site, _ := w.Site("site00.example")
	for i := 0; i < 3; i++ {
		if got, ok := w.PageHTML("site00.example", "DE"); !ok || got != site.HTMLFor("DE") {
			t.Fatal("disabled cache diverged from HTMLFor")
		}
	}
	if st := w.PageCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Derivations != 0 {
		t.Errorf("disabled cache saw traffic: %+v", st)
	}
}

// TestPageCacheConcurrentRace hammers the page memo from 8 goroutines over
// overlapping (site, country) pairs. Run under -race this is the locking
// regression test; the stats prove each document derives exactly once.
func TestPageCacheConcurrentRace(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
		nSites     = 6
	)
	w := cacheWeb(t, nSites)
	type query struct{ domain, cc string }
	var queries []query
	want := map[query]string{}
	for i := 0; i < nSites; i++ {
		domain := fmt.Sprintf("site%02d.example", i)
		site, _ := w.Site(domain)
		for _, cc := range []string{"", "DE", "US"} {
			q := query{domain, cc}
			queries = append(queries, q)
			want[q] = site.HTMLFor(cc)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Phase-shifted walk so fills overlap in every interleaving.
				for i := range queries {
					q := queries[(i+g)%len(queries)]
					got, ok := w.PageHTML(q.domain, q.cc)
					if !ok || got != want[q] {
						select {
						case errs <- fmt.Sprintf("PageHTML(%s, %q) diverged (ok=%v)", q.domain, q.cc, ok):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := w.PageCacheStats()
	wantDocs := uint64(nSites + (nSites+1)/2)
	if st.Derivations != wantDocs {
		t.Errorf("derivations = %d, want one per distinct document (%d)", st.Derivations, wantDocs)
	}
	total := uint64(goroutines * rounds * len(queries))
	if st.Hits+st.Misses != total {
		t.Errorf("hits(%d)+misses(%d) != calls(%d)", st.Hits, st.Misses, total)
	}
	if st.Misses < st.Derivations {
		t.Errorf("misses(%d) < derivations(%d)", st.Misses, st.Derivations)
	}
}
