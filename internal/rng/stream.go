package rng

import (
	"math/bits"
	"math/rand/v2"
)

// Hasher is the incremental form of Hash: a value-type FNV-1a accumulator
// that lets hot paths build a key path from fragments (string literals,
// stack []byte buffers, integers rendered with strconv.Append*) without
// concatenating them first. The invariant, pinned by TestHasherMatchesHash,
// is
//
//	Hash(k1, k2) == NewHasher().Key(k1).Key(k2).Sum()
//
// so streams seeded through either form are interchangeable. Hasher is a
// plain uint64 wrapper: chaining never allocates and a partial hash (for
// example the per-trace prefix shared by every router address on a path)
// can be copied and extended independently.
type Hasher struct {
	h uint64
}

// NewHasher returns an accumulator in the initial FNV-1a state.
func NewHasher() Hasher { return Hasher{h: fnvOffset64} }

// Write folds a string fragment into the hash without a key separator.
// Adjacent Write calls are equivalent to one Write of the concatenation.
func (s Hasher) Write(k string) Hasher {
	h := s.h
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= fnvPrime64
	}
	s.h = h
	return s
}

// WriteBytes folds a byte fragment into the hash without a separator.
func (s Hasher) WriteBytes(b []byte) Hasher {
	h := s.h
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= fnvPrime64
	}
	s.h = h
	return s
}

// Sep folds the key separator (a 0 byte: XOR with zero is the identity, so
// only the multiply remains). Hash appends one after every key.
func (s Hasher) Sep() Hasher {
	s.h *= fnvPrime64
	return s
}

// Key folds one complete key: its bytes followed by the separator.
func (s Hasher) Key(k string) Hasher { return s.Write(k).Sep() }

// KeyBytes folds one complete key supplied as bytes.
func (s Hasher) KeyBytes(b []byte) Hasher { return s.WriteBytes(b).Sep() }

// Sum returns the accumulated hash.
func (s Hasher) Sum() uint64 { return s.h }

// Stream is a value-type PCG stream producing the exact draw sequence of
// rng.New(seed, keys...) for keyHash == Hash(keys...), without the two
// heap allocations rand.New(rand.NewPCG(...)) costs. Probe hot paths embed
// one on the stack per trace. The method set mirrors the subset of
// *rand.Rand (plus the package helpers) the simulators draw from;
// TestStreamMatchesRand pins bit-identical output against the rand.Rand
// reference for every method.
type Stream struct {
	pcg rand.PCG
}

// NewStream returns a stream seeded exactly like rng.New(seed, keys...)
// with keyHash = Hash(keys...).
func NewStream(seed, keyHash uint64) Stream {
	var s Stream
	s.pcg.Seed(seed, keyHash)
	return s
}

// Uint64 returns the next raw PCG output.
func (s *Stream) Uint64() uint64 { return s.pcg.Uint64() }

// Float64 returns a uniform value in [0, 1), mirroring rand.Rand.Float64:
// 53 high bits scaled by 2^-53.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()<<11>>11) / (1 << 53)
}

// uint64n returns a uniform value in [0, n), mirroring rand.Rand's
// unbiased Lemire reduction (the 64-bit form; math/rand/v2 documents that
// its 32-bit fast path preserves this exact output sequence).
func (s *Stream) uint64n(n uint64) uint64 {
	if n&(n-1) == 0 { // n is a power of two: mask
		return s.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// IntN returns a uniform value in [0, n); it panics if n <= 0, like
// rand.Rand.IntN.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("invalid argument to IntN")
	}
	return int(s.uint64n(uint64(n)))
}

// Float64InRange returns a uniform value in [lo, hi), mirroring the
// package-level Float64InRange helper.
func (s *Stream) Float64InRange(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + s.Float64()*(hi-lo)
}

// Bernoulli returns true with probability p, mirroring the package-level
// Bernoulli helper: degenerate probabilities consume no draw.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}
