package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, "topology", "FR")
	b := New(42, "topology", "FR")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed+keys must produce identical streams")
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := New(42, "topology", "FR")
	b := New(42, "topology", "DE")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different keys should give different streams; %d/100 collisions", same)
	}
}

func TestHashStable(t *testing.T) {
	if Hash("a", "b") != Hash("a", "b") {
		t.Error("hash must be stable")
	}
	if Hash("a", "b") == Hash("ab") {
		t.Error("key separator must prevent concatenation collisions")
	}
	if Hash("a", "b") == Hash("b", "a") {
		t.Error("order must matter")
	}
}

func TestFloat64InRange(t *testing.T) {
	r := New(1, "t")
	for i := 0; i < 1000; i++ {
		v := Float64InRange(r, 1.55, 2.2)
		if v < 1.55 || v >= 2.2 {
			t.Fatalf("value %v out of range", v)
		}
	}
	if Float64InRange(r, 5, 5) != 5 {
		t.Error("degenerate range should return lo")
	}
	if Float64InRange(r, 5, 3) != 5 {
		t.Error("inverted range should return lo")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(1, "b")
	for i := 0; i < 50; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("p=0 must never fire")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("p=1 must always fire")
		}
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Errorf("p=0.3 produced %d/10000 hits", hits)
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(7, "w")
	if WeightedIndex(r, nil) != -1 {
		t.Error("empty weights should return -1")
	}
	if WeightedIndex(r, []float64{0, -1, 0}) != -1 {
		t.Error("non-positive weights should return -1")
	}
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		idx := WeightedIndex(r, []float64{1, 2, 0})
		if idx < 0 || idx > 1 {
			t.Fatalf("index %d out of expected set", idx)
		}
		counts[idx]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("weight ratio = %v, want ~2", ratio)
	}
}

func TestWeightedIndexAlwaysValidProperty(t *testing.T) {
	r := New(9, "wq")
	f := func(ws []float64) bool {
		idx := WeightedIndex(r, ws)
		if idx == -1 {
			for _, w := range ws {
				if w > 0 {
					return false
				}
			}
			return true
		}
		return idx >= 0 && idx < len(ws) && ws[idx] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPick(t *testing.T) {
	r := New(3, "p")
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick over 100 draws should hit all 3 elements, saw %d", len(seen))
	}
}
