// Package rng provides deterministic, independently-keyed random streams.
// Every stochastic decision in the suite (topology, DNS steering, failures,
// page composition) draws from a stream keyed by a stable string path under
// a single study seed, so identical seeds reproduce identical datasets.
package rng

import (
	"math/rand/v2"
)

// FNV-1a parameters, matching hash/fnv's 64-bit variant.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a stable 64-bit hash of the key path. The FNV-1a loop is
// inlined (rather than going through hash/fnv's hash.Hash64 interface) so
// hashing is allocation-free: the filterlist cache shards every probe
// through here, and the interface form cost three heap allocations per
// call. Values are bit-identical to hash/fnv with a 0 separator byte after
// each key, so existing seeds and golden outputs are unchanged.
func Hash(keys ...string) uint64 {
	h := uint64(fnvOffset64)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= fnvPrime64
		}
		// Separator byte 0: XOR with zero is the identity, so only the
		// multiply remains.
		h *= fnvPrime64
	}
	return h
}

// New returns a PCG stream for the given seed and key path. Streams with
// different key paths are statistically independent.
func New(seed uint64, keys ...string) *rand.Rand {
	return rand.New(rand.NewPCG(seed, Hash(keys...)))
}

// Float64InRange returns a uniform value in [lo, hi).
func Float64InRange(r *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// Pick returns a uniformly chosen element of xs; it panics on empty input.
func Pick[T any](r *rand.Rand, xs []T) T {
	return xs[r.IntN(len(xs))]
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// WeightedIndex picks an index proportionally to weights. Non-positive
// weights never win. It returns -1 if no weight is positive.
func WeightedIndex(r *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating-point residue: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}
