package rng

import (
	"strconv"
	"testing"
)

// TestHasherMatchesHash pins the incremental-hasher invariant: building a
// key path from fragments produces exactly the value Hash returns for the
// assembled keys.
func TestHasherMatchesHash(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"trace"},
		{"trace", "v-DE-1->20.0.0.5"},
		{"ping", "v-JP-3", "20.1.2.3"},
		{"path-inflation", "Berlin, DE", "Tokyo, JP"},
		{"a", "", "b"},
	}
	for _, keys := range cases {
		want := Hash(keys...)
		h := NewHasher()
		for _, k := range keys {
			h = h.Key(k)
		}
		if got := h.Sum(); got != want {
			t.Errorf("Hasher.Key chain over %q = %#x, Hash = %#x", keys, got, want)
		}
		// The same keys folded as bytes.
		h = NewHasher()
		for _, k := range keys {
			h = h.KeyBytes([]byte(k))
		}
		if got := h.Sum(); got != want {
			t.Errorf("Hasher.KeyBytes chain over %q = %#x, Hash = %#x", keys, got, want)
		}
	}
}

// TestHasherFragments pins that a key may be assembled from Write fragments
// plus an explicit Sep — the form the zero-alloc probe path uses for
// "v.ID->dstAddr" style keys.
func TestHasherFragments(t *testing.T) {
	want := Hash("trace", "v-DE-1->20.0.0.5")
	got := NewHasher().Key("trace").
		Write("v-DE-1").Write("->").WriteBytes([]byte("20.0.0.5")).Sep().
		Sum()
	if got != want {
		t.Fatalf("fragment assembly = %#x, want %#x", got, want)
	}
}

// TestStreamMatchesRand pins Stream against the rand.Rand reference: every
// method must produce bit-identical sequences, including the helpers'
// no-draw edge cases, across seeds and interleaved call patterns.
func TestStreamMatchesRand(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		for _, keys := range [][]string{{"trace", "x"}, {"ping", "v", "addr"}} {
			ref := New(seed, keys...)
			s := NewStream(seed, Hash(keys...))
			for i := 0; i < 2000; i++ {
				switch i % 6 {
				case 0:
					if g, w := s.Uint64(), ref.Uint64(); g != w {
						t.Fatalf("seed %d step %d: Uint64 = %d, want %d", seed, i, g, w)
					}
				case 1:
					if g, w := s.Float64(), ref.Float64(); g != w {
						t.Fatalf("seed %d step %d: Float64 = %v, want %v", seed, i, g, w)
					}
				case 2:
					n := 1 + i%37
					if g, w := s.IntN(n), ref.IntN(n); g != w {
						t.Fatalf("seed %d step %d: IntN(%d) = %d, want %d", seed, i, n, g, w)
					}
				case 3:
					// Power-of-two and huge ranges exercise both uint64n arms.
					n := 1 << (i % 31)
					if g, w := s.IntN(n), ref.IntN(n); g != w {
						t.Fatalf("seed %d step %d: IntN(%d) = %d, want %d", seed, i, n, g, w)
					}
				case 4:
					if g, w := s.Float64InRange(2, 12), Float64InRange(ref, 2, 12); g != w {
						t.Fatalf("seed %d step %d: Float64InRange = %v, want %v", seed, i, g, w)
					}
				case 5:
					p := float64(i%5) / 4 // includes the 0 and 1 no-draw cases
					if g, w := s.Bernoulli(p), Bernoulli(ref, p); g != w {
						t.Fatalf("seed %d step %d: Bernoulli(%v) = %v, want %v", seed, i, p, g, w)
					}
				}
			}
		}
	}
}

// TestStreamDegenerateRanges pins the helper edge cases the probe engine
// relies on: hi <= lo and p outside (0,1) must not consume a draw.
func TestStreamDegenerateRanges(t *testing.T) {
	s := NewStream(7, Hash("edge"))
	ref := New(7, "edge")
	if got := s.Float64InRange(5, 5); got != 5 {
		t.Fatalf("Float64InRange(5,5) = %v, want 5", got)
	}
	if s.Bernoulli(0) || s.Bernoulli(-1) {
		t.Fatal("Bernoulli(<=0) must be false")
	}
	if !s.Bernoulli(1) || !s.Bernoulli(2) {
		t.Fatal("Bernoulli(>=1) must be true")
	}
	// No draws were consumed above, so the streams still agree.
	if g, w := s.Uint64(), ref.Uint64(); g != w {
		t.Fatalf("stream desynced after degenerate calls: %d != %d", g, w)
	}
}

// BenchmarkStreamTrace measures the seeded-stream setup plus a typical
// trace's worth of draws, the pattern TracerouteInto runs per probe.
func BenchmarkStreamTrace(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		h := NewHasher().Key("trace").Write("v-DE-1").Write("->").WriteBytes([]byte("20.0.0." + strconv.Itoa(i%250))).Sep()
		s := NewStream(42, h.Sum())
		for p := 0; p < 30; p++ {
			sink += s.Float64InRange(0, 1.8)
		}
	}
	_ = sink
}
