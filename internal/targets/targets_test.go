package targets

import (
	"strings"
	"testing"

	"github.com/gamma-suite/gamma/internal/core"
)

func testSources() Sources {
	top := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = prefix + string(rune('a'+i%26)) + string(rune('a'+i/26)) + ".example"
		}
		return out
	}
	sw := top("sw-", 52)
	sw[3] = "adult-stream-xx-0.com"
	return Sources{
		Similarweb: map[string][]string{"PK": sw, "GB": top("gb-", 50)},
		Semrush:    map[string][]string{"PK": top("sr-", 50), "RW": top("rw-", 52), "GB": top("gs-", 50)},
		Ahrefs:     map[string][]string{"PK": top("ah-", 50), "GB": top("ah-", 50)},
	}
}

func isAdult(d string) bool { return strings.HasPrefix(d, "adult-") }

func TestSelectRegionalPrimarySource(t *testing.T) {
	reg, source, excluded, err := SelectRegional("PK", testSources(), isAdult, 50)
	if err != nil {
		t.Fatal(err)
	}
	if source != "similarweb" {
		t.Errorf("source = %q", source)
	}
	if len(reg) != 50 {
		t.Errorf("regional = %d, want 50", len(reg))
	}
	if len(excluded) != 1 || excluded[0] != "adult-stream-xx-0.com" {
		t.Errorf("excluded = %v", excluded)
	}
	for _, tg := range reg {
		if tg.Kind != core.KindRegional {
			t.Fatal("wrong kind")
		}
		if isAdult(tg.Domain) {
			t.Fatalf("adult site %s slipped through", tg.Domain)
		}
	}
}

func TestSelectRegionalFallbackToSemrush(t *testing.T) {
	_, source, _, err := SelectRegional("RW", testSources(), isAdult, 50)
	if err != nil {
		t.Fatal(err)
	}
	if source != "semrush" {
		t.Errorf("source = %q, want semrush fallback", source)
	}
	if _, _, _, err := SelectRegional("XX", testSources(), nil, 50); err == nil {
		t.Error("uncovered country must error")
	}
}

func TestSelectRegionalDeduplicates(t *testing.T) {
	src := Sources{Similarweb: map[string][]string{"PK": {"a.example", "a.example", "b.example"}}}
	reg, _, _, err := SelectRegional("PK", src, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 2 {
		t.Errorf("dedup failed: %v", reg)
	}
}

func TestSelectGovTrancoAndFallback(t *testing.T) {
	tranco := []string{
		"news.example", "health.gov.au", "finance.gov.au", "shop.com.au",
		"tax.gov.uk", // other country's gov TLD must not leak in
	}
	search := []string{"customs.gov.au", "health.gov.au", "interior.gov.au"}
	gov, fromTranco, fromSearch := SelectGov("AU", tranco, search, 50)
	if fromTranco != 2 || fromSearch != 2 {
		t.Errorf("tranco=%d search=%d, want 2/2", fromTranco, fromSearch)
	}
	if len(gov) != 4 {
		t.Fatalf("gov = %v", gov)
	}
	for _, g := range gov {
		if !strings.HasSuffix(g.Domain, ".gov.au") {
			t.Errorf("non-AU gov domain %s", g.Domain)
		}
		if g.Kind != core.KindGovernment {
			t.Error("wrong kind")
		}
	}
}

func TestSelectGovRespectsMax(t *testing.T) {
	var tranco []string
	for i := 0; i < 80; i++ {
		tranco = append(tranco, "agency-"+string(rune('a'+i%26))+string(rune('a'+i/26))+".gov.uk")
	}
	gov, fromTranco, _ := SelectGov("GB", tranco, nil, 50)
	if len(gov) != 50 || fromTranco != 50 {
		t.Errorf("gov = %d (tranco %d), want 50", len(gov), fromTranco)
	}
}

func TestSelectCombined(t *testing.T) {
	sel, err := Select("PK", testSources(), []string{"tax.gov.pk"}, []string{"health.gov.pk"}, isAdult)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Targets()) != len(sel.Regional)+len(sel.Government) {
		t.Error("Targets() must concatenate")
	}
	if sel.RegionalSource != "similarweb" || sel.GovFromTranco != 1 || sel.GovFromSearch != 1 {
		t.Errorf("selection provenance wrong: %+v", sel)
	}
}

func TestOverlapPct(t *testing.T) {
	a := []string{"x", "y", "z"}
	b := []string{"y", "z", "q"}
	if got := OverlapPct(a, b, 3); got < 66 || got > 67 {
		t.Errorf("overlap = %v, want ~66.7", got)
	}
	if OverlapPct(nil, b, 3) != 0 {
		t.Error("empty list overlap must be 0")
	}
	if OverlapPct(a, a, 3) != 100 {
		t.Error("self overlap must be 100")
	}
}

func TestOverlapExperimentCountsCompleteCountries(t *testing.T) {
	res := OverlapExperiment(testSources())
	// Only PK and GB have all three complete lists.
	if res.Countries != 2 {
		t.Errorf("complete countries = %d, want 2", res.Countries)
	}
	if res.SemrushPct != 0 || res.AhrefsPct != 0 {
		t.Errorf("disjoint lists must have 0 overlap: %+v", res)
	}
	empty := OverlapExperiment(Sources{})
	if empty.Countries != 0 {
		t.Error("empty sources")
	}
}

func TestCommonSites(t *testing.T) {
	sels := map[string]Selection{
		"PK": {Regional: []core.Target{{Domain: "google.com"}, {Domain: "local.pk"}}},
		"EG": {Regional: []core.Target{{Domain: "google.com"}}},
	}
	counts := CommonSites(sels)
	if counts["google.com"] != 2 || counts["local.pk"] != 1 {
		t.Errorf("counts = %v", counts)
	}
}
