// Package targets implements the study's target-website selection (§3.2):
// the top-50 regional list per country (similarweb-style primary source
// with a semrush-style fallback where the primary publishes no ranking),
// removal of adult and banned sites, government-site selection by
// filtering a Tranco-style global list through government TLDs with a
// search-scrape fallback when fewer than 50 remain, and the ranking-source
// overlap experiment that justified the fallback ordering.
package targets

import (
	"fmt"
	"sort"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/tld"
)

// Sources bundles the three ranking providers.
type Sources struct {
	Similarweb map[string][]string
	Semrush    map[string][]string
	Ahrefs     map[string][]string
}

// ExcludeFn reports whether a domain must be removed from target lists
// (adult content or nationally banned sites).
type ExcludeFn func(domain string) bool

// Selection is a country's final target list with provenance.
type Selection struct {
	Country        string        `json:"country"`
	Regional       []core.Target `json:"regional"`
	Government     []core.Target `json:"government"`
	RegionalSource string        `json:"regional_source"` // which ranking provided T_reg
	Excluded       []string      `json:"excluded,omitempty"`
	GovFromTranco  int           `json:"gov_from_tranco"`
	GovFromSearch  int           `json:"gov_from_search"`
}

// Targets returns the combined T_web list.
func (s Selection) Targets() []core.Target {
	out := make([]core.Target, 0, len(s.Regional)+len(s.Government))
	out = append(out, s.Regional...)
	out = append(out, s.Government...)
	return out
}

// SelectRegional picks the top-50 regional sites for a country: the
// similarweb-style list when available, otherwise semrush (the source with
// the higher measured overlap), with excluded sites removed.
func SelectRegional(cc string, src Sources, exclude ExcludeFn, max int) ([]core.Target, string, []string, error) {
	list, source := src.Similarweb[cc], "similarweb"
	if list == nil {
		list, source = src.Semrush[cc], "semrush"
	}
	if list == nil {
		return nil, "", nil, fmt.Errorf("targets: no ranking source covers %s", cc)
	}
	var out []core.Target
	var excluded []string
	seen := map[string]bool{}
	for _, d := range list {
		if len(out) >= max {
			break
		}
		if seen[d] {
			continue
		}
		seen[d] = true
		if exclude != nil && exclude(d) {
			excluded = append(excluded, d)
			continue
		}
		out = append(out, core.Target{Domain: d, Kind: core.KindRegional})
	}
	return out, source, excluded, nil
}

// SelectGov picks up to max government sites: Tranco entries under the
// country's government TLDs first (in ranking order), topped up from the
// search-scrape fallback when Tranco holds fewer than max.
func SelectGov(cc string, tranco []string, searchFallback []string, max int) ([]core.Target, int, int) {
	var out []core.Target
	seen := map[string]bool{}
	fromTranco := 0
	for _, d := range tranco {
		if len(out) >= max {
			break
		}
		if seen[d] || !tld.IsGov(d, cc) {
			continue
		}
		seen[d] = true
		out = append(out, core.Target{Domain: d, Kind: core.KindGovernment})
		fromTranco++
	}
	fromSearch := 0
	if len(out) < max {
		for _, d := range searchFallback {
			if len(out) >= max {
				break
			}
			if seen[d] || !tld.IsGov(d, cc) {
				continue
			}
			seen[d] = true
			out = append(out, core.Target{Domain: d, Kind: core.KindGovernment})
			fromSearch++
		}
	}
	return out, fromTranco, fromSearch
}

// Select builds a country's full selection.
func Select(cc string, src Sources, tranco []string, searchFallback []string, exclude ExcludeFn) (Selection, error) {
	reg, source, excluded, err := SelectRegional(cc, src, exclude, 50)
	if err != nil {
		return Selection{}, err
	}
	gov, fromTranco, fromSearch := SelectGov(cc, tranco, searchFallback, 50)
	return Selection{
		Country:        cc,
		Regional:       reg,
		Government:     gov,
		RegionalSource: source,
		Excluded:       excluded,
		GovFromTranco:  fromTranco,
		GovFromSearch:  fromSearch,
	}, nil
}

// OverlapPct returns the percentage of a's first n entries also present in
// b's first n entries.
func OverlapPct(a, b []string, n int) float64 {
	if len(a) > n {
		a = a[:n]
	}
	if len(b) > n {
		b = b[:n]
	}
	if len(a) == 0 {
		return 0
	}
	set := make(map[string]bool, len(b))
	for _, d := range b {
		set[d] = true
	}
	hits := 0
	for _, d := range a {
		if set[d] {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(a))
}

// OverlapResult is the outcome of the §3.2 ranking-source experiment.
type OverlapResult struct {
	Countries  int     `json:"countries"`
	SemrushPct float64 `json:"semrush_pct"`
	AhrefsPct  float64 `json:"ahrefs_pct"`
}

// OverlapExperiment measures the average top-50 overlap of semrush and
// ahrefs against similarweb across every country where all three sources
// publish complete lists (58 in the study).
func OverlapExperiment(src Sources) OverlapResult {
	var countries []string
	for cc := range src.Similarweb {
		if len(src.Similarweb[cc]) >= 50 && len(src.Semrush[cc]) >= 50 && len(src.Ahrefs[cc]) >= 50 {
			countries = append(countries, cc)
		}
	}
	sort.Strings(countries)
	var semrushSum, ahrefsSum float64
	for _, cc := range countries {
		semrushSum += OverlapPct(src.Similarweb[cc], src.Semrush[cc], 50)
		ahrefsSum += OverlapPct(src.Similarweb[cc], src.Ahrefs[cc], 50)
	}
	n := float64(len(countries))
	if n == 0 {
		return OverlapResult{}
	}
	return OverlapResult{
		Countries:  len(countries),
		SemrushPct: semrushSum / n,
		AhrefsPct:  ahrefsSum / n,
	}
}

// CommonSites reports how many countries' regional selections include each
// domain — used to verify that google.com and wikipedia.org are universal
// and that seven more sites appear in at least two-thirds of countries.
func CommonSites(selections map[string]Selection) map[string]int {
	counts := map[string]int{}
	for _, sel := range selections {
		for _, t := range sel.Regional {
			counts[t.Domain]++
		}
	}
	return counts
}
