package serve_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/gamma-suite/gamma/internal/serve"
)

// TestShardedResponsesByteIdentical is the shard-equivalence proof on
// the real study corpus: the same analyzed corpus is partitioned at
// shard counts {1, 2, 4, 7} and every /v1 body — a few hundred
// endpoints' worth of listings, profiles, reverse-index entries, flow
// matrices, and figures — must be byte-identical to the unsharded
// oracle. The equivalence is then re-proven over live HTTP across a
// staggered per-shard swap: with the same corpus walking across the
// set one shard at a time, not a single response byte may move at any
// intermediate step.
func TestShardedResponsesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full study run")
	}
	oracle := buildStudySnapshot(t, 42, 4, "oracle")
	eps := oracle.Endpoints()
	if len(eps) < 100 {
		t.Fatalf("suspiciously few endpoints: %d", len(eps))
	}

	for _, n := range []int{1, 2, 4, 7} {
		set, err := serve.NewShardSet(oracle, n)
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		got := set.Endpoints()
		if len(got) != len(eps) {
			t.Fatalf("shards=%d: enumerates %d endpoints, oracle %d", n, len(got), len(eps))
		}
		for i := range eps {
			if got[i] != eps[i] {
				t.Fatalf("shards=%d: endpoint[%d] = %q, oracle %q", n, i, got[i], eps[i])
			}
		}
		for _, p := range eps {
			want, _ := oracle.Body(p)
			body, ok := set.Body(p)
			if !ok {
				t.Fatalf("shards=%d: cannot resolve %s", n, p)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("shards=%d: %s differs from the unsharded oracle", n, p)
			}
		}
	}

	// Live half: serve the 4-way partition over real HTTP, probe every
	// endpoint, then walk the same corpus across the set shard by shard,
	// re-probing after every single-shard swap and after a final full
	// install. The corpus never changes, so the bytes never may.
	const n = 4
	set, err := serve.NewShardSet(oracle, n)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.NewSharded(set, serve.Options{}))
	defer ts.Close()

	probe := func(step string) {
		t.Helper()
		for _, p := range eps {
			resp, err := http.Get(ts.URL + p)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: GET %s = %d", step, p, resp.StatusCode)
			}
			want, _ := oracle.Body(p)
			if !bytes.Equal(body, want) {
				t.Fatalf("%s: GET %s drifted from the unsharded oracle", step, p)
			}
		}
	}
	probe("initial")
	for i := 0; i < n; i++ {
		if err := set.InstallShard(oracle, i); err != nil {
			t.Fatalf("InstallShard(%d): %v", i, err)
		}
		probe("after shard " + string(rune('0'+i)) + " swap")
	}
	if err := set.Install(oracle); err != nil {
		t.Fatal(err)
	}
	if set.Swaps() != 1 {
		t.Fatalf("full installs counted = %d, want 1", set.Swaps())
	}
	probe("after full install")
}
