package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestEtagMatches exercises the allocation-free If-None-Match parser on
// the validator forms RFC 9110 admits (and the malformed ones it must
// reject).
func TestEtagMatches(t *testing.T) {
	const tag = `"deadbeefdeadbeef"`
	cases := []struct {
		name   string
		values []string
		want   bool
	}{
		{"exact", []string{tag}, true},
		{"weak validator", []string{"W/" + tag}, true},
		{"wildcard", []string{"*"}, true},
		{"wildcard in list", []string{`"nope", *`}, true},
		{"mismatch", []string{`"nope"`}, false},
		{"match after mismatch", []string{`"nope", ` + tag}, true},
		{"match in second header value", []string{`"nope"`, tag}, true},
		{"weak match in list", []string{`"nope", W/` + tag}, true},
		{"unquoted garbage", []string{"deadbeefdeadbeef"}, false},
		{"unterminated quote", []string{`"deadbeefdeadbeef`}, false},
		{"empty value", []string{""}, false},
		{"spaces and tabs only", []string{" \t , "}, false},
		{"prefix of tag", []string{`"deadbeef"`}, false},
		{"garbage then no more parseable members", []string{`garbage, ` + tag}, false},
		{"nil", nil, false},
	}
	for _, tc := range cases {
		if got := etagMatches(tc.values, tag); got != tc.want {
			t.Errorf("%s: etagMatches(%q) = %v, want %v", tc.name, tc.values, got, tc.want)
		}
	}
}

func TestEtagForIsStableAndQuoted(t *testing.T) {
	a := etagFor([]byte("payload"))
	if a != etagFor([]byte("payload")) {
		t.Error("etagFor is not deterministic")
	}
	if len(a) != 18 || a[0] != '"' || a[17] != '"' {
		t.Errorf("etagFor produced a malformed tag: %q", a)
	}
	if a == etagFor([]byte("payload2")) {
		t.Error("distinct bodies share an entity tag")
	}
}

// TestConditionalRequests drives the If-None-Match contract through the
// full HTTP path against both backends: a matching validator elides the
// body with a 304 (ETag still present, so the client's cache entry stays
// addressable), a stale or malformed one serves the full 200.
func TestConditionalRequests(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "cond")
	backends := map[string]*Server{}
	srv, _ := newTestServer(t, snap, Options{})
	backends["monolith"] = srv
	srv4, _ := newTestShardServer(t, snap, 4, Options{})
	backends["sharded-4"] = srv4

	for name, srv := range backends {
		for _, path := range []string{"/v1/countries", "/v1/countries/aa", "/v1/trackers",
			"/v1/trackers/ads.tracker-x.example", "/v1/flows", "/v1/figures", "/v1/figures/fig5", "/healthz"} {
			first := get(t, srv, path)
			if first.Code != http.StatusOK {
				t.Fatalf("%s: GET %s = %d", name, path, first.Code)
			}
			etag := first.Header().Get("Etag")
			if len(etag) != 18 || etag[0] != '"' {
				t.Fatalf("%s: GET %s served entity tag %q", name, path, etag)
			}

			cases := []struct {
				validator  string
				wantStatus int
			}{
				{etag, http.StatusNotModified},
				{"W/" + etag, http.StatusNotModified},
				{"*", http.StatusNotModified},
				{`"stale-validator", ` + etag, http.StatusNotModified},
				{`"stale-validator"`, http.StatusOK},
				{"unquoted-garbage", http.StatusOK},
				{"", http.StatusOK},
			}
			for _, tc := range cases {
				req := httptest.NewRequest(http.MethodGet, path, nil)
				if tc.validator != "" {
					req.Header.Set("If-None-Match", tc.validator)
				}
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != tc.wantStatus {
					t.Errorf("%s: GET %s If-None-Match %q = %d, want %d",
						name, path, tc.validator, rec.Code, tc.wantStatus)
					continue
				}
				switch tc.wantStatus {
				case http.StatusNotModified:
					if rec.Body.Len() != 0 {
						t.Errorf("%s: 304 for %s carried %d body bytes", name, path, rec.Body.Len())
					}
					if got := rec.Header().Get("Etag"); got != etag {
						t.Errorf("%s: 304 for %s served entity tag %q, want %q", name, path, got, etag)
					}
				case http.StatusOK:
					if !equalBytes(rec.Body.Bytes(), first.Body.Bytes()) {
						t.Errorf("%s: stale revalidation of %s served different bytes", name, path)
					}
				}
			}

			// HEAD revalidation follows the same conditional logic.
			req := httptest.NewRequest(http.MethodHead, path, nil)
			req.Header.Set("If-None-Match", etag)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
				t.Errorf("%s: HEAD %s revalidation = %d (%d body bytes)", name, path, rec.Code, rec.Body.Len())
			}
		}
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEtagStableAcrossRebuildsAndShardCounts pins the cache-validity
// story: the entity tag is a pure function of the body bytes, so a
// same-corpus rebuild — monolithic or sharded, any shard count — serves
// the same tag, while a different corpus variant moves it.
func TestEtagStableAcrossRebuildsAndShardCounts(t *testing.T) {
	snapA1 := buildTestSnapshot(t, 0, "A1")
	snapA2 := buildTestSnapshot(t, 0, "A2") // same corpus, new build
	snapB := buildTestSnapshot(t, 1, "B")   // different corpus
	set := newTestShardSet(t, snapA1, 4)

	for _, path := range snapA1.Endpoints() {
		ep, arg := route(path)
		pl1, ok1 := snapA1.payloadFor(ep, arg)
		pl2, ok2 := snapA2.payloadFor(ep, arg)
		lkS := set.get(ep, arg)
		plS := lkS.pl
		if !ok1 || !ok2 || lkS.code != lookupOK {
			t.Fatalf("%s did not resolve everywhere", path)
		}
		if pl1.etag[0] != pl2.etag[0] {
			t.Errorf("%s: entity tag moved across a same-corpus rebuild", path)
		}
		if pl1.etag[0] != plS.etag[0] {
			t.Errorf("%s: entity tag differs between monolithic and sharded builds", path)
		}
	}

	// A changed corpus must move the tag wherever it moves the bytes —
	// the variant knob shifts every per-country count.
	for _, path := range []string{"/v1/countries", "/v1/countries/aa", "/v1/countries/bb"} {
		ep, arg := route(path)
		plA, _ := snapA1.payloadFor(ep, arg)
		plB, ok := snapB.payloadFor(ep, arg)
		if !ok || plA.etag[0] == plB.etag[0] {
			t.Errorf("%s: corpus change did not move the entity tag", path)
		}
	}
}

// TestConditionalRevalidationZeroAllocs extends the zero-allocation
// contract to the 304 path: an If-None-Match hit writes preallocated
// headers and no body, allocating nothing — on both backends.
func TestConditionalRevalidationZeroAllocs(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "cond-alloc")
	backends := map[string]*Server{}
	srv, _ := newTestServer(t, snap, Options{})
	backends["monolith"] = srv
	srv4, _ := newTestShardServer(t, snap, 4, Options{})
	backends["sharded-4"] = srv4
	for name, srv := range backends {
		for _, path := range []string{"/v1/countries", "/v1/countries/aa", "/v1/trackers/ads.tracker-x.example", "/v1/flows"} {
			first := get(t, srv, path)
			etag := first.Header().Get("Etag")
			if first.Code != http.StatusOK || etag == "" {
				t.Fatalf("%s: GET %s = %d, etag %q", name, path, first.Code, etag)
			}
			w := &nopResponseWriter{h: make(http.Header)}
			r := httptest.NewRequest(http.MethodGet, path, nil)
			r.Header["If-None-Match"] = []string{etag}
			if allocs := testing.AllocsPerRun(200, func() {
				srv.ServeHTTP(w, r)
			}); allocs != 0 {
				t.Errorf("%s: revalidating %s allocates %.1f times per request, want 0", name, path, allocs)
			}
			if w.status != http.StatusNotModified || w.n != 0 {
				t.Errorf("%s: revalidation of %s = %d (%d body bytes)", name, path, w.status, w.n)
			}
		}
	}
}
