package serve

import (
	"sync/atomic"
	"time"
)

// latencyBuckets are the fixed histogram upper bounds. A final implicit
// +Inf bucket catches everything slower. Bounds span the expected range:
// sub-100µs for precomputed-payload hits up to the tail of admin reloads.
var latencyBuckets = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// bucketLabels render the bounds in /debug/metrics; index len(latencyBuckets)
// is the +Inf bucket.
var bucketLabels = [...]string{
	"50us", "100us", "250us", "500us", "1ms", "5ms", "25ms", "100ms", "1s", "+inf",
}

// endpointMetrics is one endpoint's counter set. Plain atomics — no maps,
// no locks — so recording on the hot path is allocation- and
// contention-free.
type endpointMetrics struct {
	requests   atomic.Uint64
	errors     atomic.Uint64 // responses with status >= 400
	totalNanos atomic.Int64
	buckets    [len(latencyBuckets) + 1]atomic.Uint64
}

// metrics is the server's observability state. Durations are measured on
// the injected sched.Clock, so tests drive latencies with a fake clock
// and production stays on sched.Wall() — the walltime lint invariant
// holds for the serving layer too.
type metrics struct {
	endpoints   [epCount]endpointMetrics
	panics      atomic.Uint64
	overloads   atomic.Uint64
	degraded    atomic.Uint64 // 200s served from a surviving-shards merge
	unavailable atomic.Uint64 // 503s from open circuits (not admission sheds)
	rollbacks   atomic.Uint64 // operator rollbacks plus auto-rollbacks
}

// observe records one finished request.
func (m *metrics) observe(ep endpoint, status int, d time.Duration) {
	em := &m.endpoints[ep]
	em.requests.Add(1)
	if status >= 400 {
		em.errors.Add(1)
	}
	em.totalNanos.Add(int64(d))
	i := 0
	for i < len(latencyBuckets) && d > latencyBuckets[i] {
		i++
	}
	em.buckets[i].Add(1)
}

// BucketCount is one histogram cell of the /debug/metrics payload.
type BucketCount struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// EndpointStats is one endpoint's row in the /debug/metrics payload.
type EndpointStats struct {
	Endpoint    string        `json:"endpoint"`
	Requests    uint64        `json:"requests"`
	Errors      uint64        `json:"errors"`
	TotalMicros int64         `json:"total_us"`
	Latency     []BucketCount `json:"latency"`
}

// SnapshotInfo describes the live snapshot in the /debug/metrics payload.
type SnapshotInfo struct {
	ID        string    `json:"id"`
	BuiltAt   time.Time `json:"built_at"`
	Countries int       `json:"countries"`
	Trackers  int       `json:"trackers"`
}

// ShardStats is one shard's row in the /debug/metrics payload: what the
// shard's current generation holds, how many times it has been swapped,
// and how many single-key lookups routed to it. Swaps and Requests are
// plain atomics in the ShardSet — recording them costs the hot path
// nothing beyond one counter increment.
type ShardStats struct {
	Shard     int    `json:"shard"`
	Countries int    `json:"countries"`
	Trackers  int    `json:"trackers"`
	Figures   int    `json:"figures"`
	Flows     bool   `json:"flows,omitempty"`
	Breaker   string `json:"breaker"`
	Trips     uint64 `json:"trips"`
	Swaps     uint64 `json:"swaps"`
	Requests  uint64 `json:"requests"`
}

// MetricsPayload is the /debug/metrics response body. Endpoint rows are
// emitted in fixed route order, so the body's shape is deterministic;
// Shards is present only when serving from a ShardSet, in shard order.
type MetricsPayload struct {
	Snapshot    SnapshotInfo    `json:"snapshot"`
	UptimeMs    int64           `json:"uptime_ms"`
	Swaps       uint64          `json:"swaps"`
	Panics      uint64          `json:"panics"`
	Overloads   uint64          `json:"overloads"`
	Degraded    uint64          `json:"degraded"`
	Unavailable uint64          `json:"unavailable"`
	Rollbacks   uint64          `json:"rollbacks"`
	Shards      []ShardStats    `json:"shards,omitempty"`
	Endpoints   []EndpointStats `json:"endpoints"`
}

// collect materializes the counters for /debug/metrics. Endpoints that
// have seen no traffic are included, so the payload shape never varies.
func (m *metrics) collect() []EndpointStats {
	out := make([]EndpointStats, 0, epCount)
	for ep := endpoint(0); ep < epCount; ep++ {
		em := &m.endpoints[ep]
		row := EndpointStats{
			Endpoint:    endpointNames[ep],
			Requests:    em.requests.Load(),
			Errors:      em.errors.Load(),
			TotalMicros: em.totalNanos.Load() / int64(time.Microsecond),
			Latency:     make([]BucketCount, len(em.buckets)),
		}
		for i := range em.buckets {
			row.Latency[i] = BucketCount{LE: bucketLabels[i], Count: em.buckets[i].Load()}
		}
		out = append(out, row)
	}
	return out
}
