package serve_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/serve"
)

// buildStudySnapshot runs the full simulated study at the given worker
// counts and builds a serving snapshot from its analyzed corpus.
func buildStudySnapshot(t *testing.T, seed uint64, workers int, id string) *serve.Snapshot {
	t.Helper()
	study, err := gamma.RunStudyWithOptions(context.Background(), seed, gamma.StudyOptions{
		Workers:         workers,
		AnalysisWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.Build(study.Result, study.World.Registry, gamma.PolicyRegistry(study.World),
		serve.Meta{ID: id, BuiltAt: time.Unix(int64(seed), 0)})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestGoldenResponsesAcrossWorkersAndSwap is the serving layer's
// end-to-end determinism proof: every /v1 endpoint body is byte-identical
// whether the corpus was produced serially or with 4 workers, and stays
// byte-identical across a live snapshot swap — Meta differences surface
// only in the X-Gamma-Snapshot header, never in a body.
func TestGoldenResponsesAcrossWorkersAndSwap(t *testing.T) {
	if testing.Short() {
		t.Skip("full study run")
	}
	const seed = 42
	serial := buildStudySnapshot(t, seed, 1, "serial")
	parallel := buildStudySnapshot(t, seed, 4, "parallel")

	eps := serial.Endpoints()
	if len(eps) < 10 {
		t.Fatalf("suspiciously few endpoints: %d", len(eps))
	}
	for _, p := range eps {
		a, okA := serial.Body(p)
		b, okB := parallel.Body(p)
		if !okA || !okB {
			t.Fatalf("endpoint %s missing from a snapshot (serial=%v parallel=%v)", p, okA, okB)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("endpoint %s differs between workers=1 and workers=4", p)
		}
	}

	// Serve snapA over real HTTP, capture every body, hot-swap to snapB
	// (same corpus, different Meta), and re-fetch: bytes must not move.
	store, err := serve.NewStore(serial)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(store, serve.Options{}))
	defer ts.Close()

	fetch := func(p string) ([]byte, string) {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", p, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body, resp.Header.Get("X-Gamma-Snapshot")
	}

	before := map[string][]byte{}
	for _, p := range eps {
		body, id := fetch(p)
		if id != "serial" {
			t.Fatalf("GET %s served snapshot %q, want serial", p, id)
		}
		before[p] = body
	}
	if err := store.Install(parallel); err != nil {
		t.Fatal(err)
	}
	for _, p := range eps {
		body, id := fetch(p)
		if id != "parallel" {
			t.Fatalf("GET %s served snapshot %q after swap, want parallel", p, id)
		}
		if !bytes.Equal(body, before[p]) {
			t.Errorf("endpoint %s body changed across the swap", p)
		}
	}
}
