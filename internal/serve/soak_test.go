package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/sched"
)

// TestSoakMixedLoadAcrossReloadAndRollback is the serving-plane soak:
// eight readers hammer a mix of data, history, health, and metrics
// endpoints through ServeHTTP while a writer drives full
// reload→rollback cycles through the admin API. With every shard
// healthy the soak must observe zero non-200 responses, no response may
// ever mix generations (every data body is byte-identical to exactly
// one installed snapshot's payload for that path), nothing may be
// marked degraded, and the swap counter read through /debug/metrics
// must be monotonic from any single reader's point of view. Run under
// -race in CI, against both backends.
func TestSoakMixedLoadAcrossReloadAndRollback(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "soak-a")
	snapB := buildTestSnapshot(t, 1, "soak-b")
	reload := func(context.Context, url.Values) (*Snapshot, error) { return snapB, nil }
	clock := sched.NewFakeClock(time.Unix(1700000000, 0))

	// Data paths answerable by both generations, with the allowed bodies.
	type allowed struct{ a, b []byte }
	dataPaths := map[string]allowed{}
	for _, path := range snapA.Endpoints() {
		ba, _ := snapA.Body(path)
		bb, okB := snapB.Body(path)
		if okB {
			dataPaths[path] = allowed{a: ba, b: bb}
		}
	}
	if len(dataPaths) < 5 {
		t.Fatalf("only %d shared endpoints between fixture generations", len(dataPaths))
	}
	paths := make([]string, 0, len(dataPaths)+3)
	for p := range dataPaths {
		paths = append(paths, p)
	}
	paths = append(paths, "/v1/snapshots", "/healthz", "/debug/metrics")

	backends := map[string]*Server{}
	stA, err := NewStore(snapA)
	if err != nil {
		t.Fatal(err)
	}
	backends["monolithic"] = New(stA, Options{Clock: clock, Reload: reload})
	setA, err := NewShardSetWithOptions(snapA, 4, ShardSetOptions{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	backends["sharded"] = NewSharded(setA, Options{Clock: clock, Reload: reload})

	const readers = 8
	const writerCycles = 20
	for name, srv := range backends {
		t.Run(name, func(t *testing.T) {
			var stop atomic.Bool
			var firstSweep, done sync.WaitGroup
			errc := make(chan error, readers+1)
			firstSweep.Add(readers)
			done.Add(readers)
			for r := 0; r < readers; r++ {
				go func(r int) {
					defer done.Done()
					first := true
					var lastSwaps uint64
					for sweep := 0; ; sweep++ {
						for i := range paths {
							path := paths[(r+i)%len(paths)]
							rec := httptest.NewRecorder()
							srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
							if rec.Code != http.StatusOK {
								errc <- fmt.Errorf("reader %d: GET %s = %d: %s", r, path, rec.Code, rec.Body.String())
								return
							}
							if got := rec.Header().Get("Gamma-Degraded"); got != "" {
								errc <- fmt.Errorf("reader %d: GET %s marked degraded (%s) with all shards healthy", r, path, got)
								return
							}
							switch path {
							case "/healthz":
							case "/v1/snapshots":
								var sp SnapshotsPayload
								if err := json.Unmarshal(rec.Body.Bytes(), &sp); err != nil || sp.Count < 1 || sp.Count > 2 {
									errc <- fmt.Errorf("reader %d: snapshots payload count=%d err=%v", r, sp.Count, err)
									return
								}
							case "/debug/metrics":
								var mp MetricsPayload
								if err := json.Unmarshal(rec.Body.Bytes(), &mp); err != nil {
									errc <- fmt.Errorf("reader %d: metrics: %v", r, err)
									return
								}
								if mp.Swaps < lastSwaps {
									errc <- fmt.Errorf("reader %d: swap count went backwards: %d then %d", r, lastSwaps, mp.Swaps)
									return
								}
								lastSwaps = mp.Swaps
								if mp.Panics != 0 {
									errc <- fmt.Errorf("reader %d: %d handler panics", r, mp.Panics)
									return
								}
							default:
								want := dataPaths[path]
								body := rec.Body.Bytes()
								if !bytes.Equal(body, want.a) && !bytes.Equal(body, want.b) {
									errc <- fmt.Errorf("reader %d: GET %s matches neither installed generation", r, path)
									return
								}
							}
						}
						if first {
							first = false
							firstSweep.Done()
						}
						if stop.Load() && sweep >= 2 {
							return
						}
					}
				}(r)
			}

			firstSweep.Wait()
			for cycle := 0; cycle < writerCycles; cycle++ {
				for _, target := range []string{"/admin/reload", "/admin/rollback"} {
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, target, nil))
					if rec.Code != http.StatusOK {
						errc <- fmt.Errorf("cycle %d: POST %s = %d: %s", cycle, target, rec.Code, rec.Body.String())
						break
					}
				}
			}
			stop.Store(true)
			done.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}
			if t.Failed() {
				return
			}
			// Every cycle is exactly one install plus one rollback, each a swap.
			var mp MetricsPayload
			if err := json.Unmarshal(get(t, srv, "/debug/metrics").Body.Bytes(), &mp); err != nil {
				t.Fatal(err)
			}
			if mp.Swaps != 2*writerCycles {
				t.Errorf("swaps = %d, want %d", mp.Swaps, 2*writerCycles)
			}
			if mp.Rollbacks != writerCycles {
				t.Errorf("rollbacks = %d, want %d", mp.Rollbacks, writerCycles)
			}
			if mp.Degraded != 0 || mp.Unavailable != 0 {
				t.Errorf("healthy soak counted degraded=%d unavailable=%d", mp.Degraded, mp.Unavailable)
			}
			// The soak ends rolled back: generation A live, alone in the ring.
			sp := SnapshotsPayload{}
			if err := json.Unmarshal(get(t, srv, "/v1/snapshots").Body.Bytes(), &sp); err != nil {
				t.Fatal(err)
			}
			if sp.Count != 1 || sp.Snapshots[0].ID != "soak-a" || !sp.Snapshots[0].Live {
				t.Errorf("final history: %+v", sp)
			}
		})
	}
}
