package serve

import (
	"fmt"
	"sort"

	"github.com/gamma-suite/gamma/internal/analysis"
)

// Shard is one partition of a sharded snapshot: an immutable, fully
// precomputed sub-snapshot holding the payloads for the keys it owns
// plus the structured listing rows the scatter-gather merge needs.
// Like a Snapshot, a Shard is safe for unsynchronized concurrent use
// forever after construction; a ShardSet swaps whole Shards atomically.
type Shard struct {
	index int // this shard's position in [0, total)
	total int // the shard count it was partitioned for

	country  map[string]payload // owned country codes, both letter cases
	tracker  map[string]payload // owned tracker domains, lowercase keys
	figure   map[string]payload // owned figure ids
	flows    payload            // the /v1/flows singleton, owning shard only
	hasFlows bool

	// Partial listing data, each slice in the same order the monolithic
	// snapshot would emit it (codes and domains sorted, figures in
	// presentation order). The merge concatenates these across shards and
	// re-sorts, which reproduces the monolithic listing exactly.
	codes     []string
	domains   []string
	figIDs    []string
	summaries []CountrySummary
}

// buildShard encodes shard idx of n from a corpus view: every entry
// whose key partitions to idx gets its payload encoded here, everything
// else is skipped. Payload bytes are identical to the monolithic build's
// because both encode the same view structs with the same encoder.
func buildShard(v *corpusView, idx, n int) (*Shard, error) {
	sh := &Shard{
		index:   idx,
		total:   n,
		country: map[string]payload{},
		tracker: map[string]payload{},
		figure:  map[string]payload{},
	}
	for _, ce := range v.countries {
		if shardOf(ce.code, n) != idx {
			continue
		}
		pl, err := newPayload(ce.profile)
		if err != nil {
			return nil, err
		}
		addFolded(sh.country, ce.code, pl)
		sh.codes = append(sh.codes, ce.code)
		sh.summaries = append(sh.summaries, ce.summary)
	}
	for _, te := range v.trackers {
		if shardOf(te.domain, n) != idx {
			continue
		}
		pl, err := newPayload(te.profile)
		if err != nil {
			return nil, err
		}
		sh.tracker[lowerASCII(te.domain)] = pl
		sh.domains = append(sh.domains, te.domain)
	}
	for _, fe := range v.figures {
		if shardOf(fe.id, n) != idx {
			continue
		}
		pl, err := newPayload(fe.body)
		if err != nil {
			return nil, err
		}
		sh.figure[fe.id] = pl
		sh.figIDs = append(sh.figIDs, fe.id)
	}
	if shardOf(flowsPartitionKey, n) == idx {
		pl, err := newPayload(v.flows)
		if err != nil {
			return nil, err
		}
		sh.flows, sh.hasFlows = pl, true
	}
	return sh, nil
}

// validate is the per-shard pre-swap sanity gate, the sharded analogue
// of Snapshot.validate: every key the shard claims to own must have its
// payload present. ShardSet.Install and InstallShard refuse (and keep
// the previous shard serving) when this fails. An empty shard is valid —
// a partition may simply own no keys.
func (sh *Shard) validate() error {
	if sh == nil {
		return fmt.Errorf("serve: nil shard")
	}
	if sh.index < 0 || sh.index >= sh.total {
		return fmt.Errorf("serve: shard index %d outside [0, %d)", sh.index, sh.total)
	}
	if len(sh.codes) != len(sh.summaries) {
		return fmt.Errorf("serve: shard %d has %d codes but %d listing rows", sh.index, len(sh.codes), len(sh.summaries))
	}
	for _, cc := range sh.codes {
		if _, ok := sh.country[upperASCII(cc)]; !ok {
			return fmt.Errorf("serve: shard %d missing country payload %s", sh.index, cc)
		}
		if _, ok := sh.country[lowerASCII(cc)]; !ok {
			return fmt.Errorf("serve: shard %d missing folded country payload %s", sh.index, cc)
		}
	}
	for _, domain := range sh.domains {
		if _, ok := sh.tracker[lowerASCII(domain)]; !ok {
			return fmt.Errorf("serve: shard %d missing tracker payload %s", sh.index, domain)
		}
	}
	for _, id := range sh.figIDs {
		if _, ok := sh.figure[id]; !ok {
			return fmt.Errorf("serve: shard %d missing figure payload %s", sh.index, id)
		}
	}
	if sh.hasFlows && len(sh.flows.body) == 0 {
		return fmt.Errorf("serve: shard %d owns flows but its payload is empty", sh.index)
	}
	return nil
}

// mergedView is the scatter-gather result: the listing payloads merged
// across one specific generation of every shard, pre-encoded so the
// listing hot path stays a payload lookup. A ShardSet swaps the whole
// view atomically after any shard install, so every listing response is
// consistent with exactly one generation of each shard — never a torn
// merge.
type mergedView struct {
	meta     Meta
	idHeader []string

	countries payload // /v1/countries
	trackers  payload // /v1/trackers
	figIndex  payload // /v1/figures

	nCountries int
	nTrackers  int
}

// buildMergedView gathers the per-shard listing rows and merges them in
// deterministic sorted order — by country code, by tracker domain, and
// in canonical figure presentation order — then encodes the listing
// payloads once. The output is byte-identical to the monolithic
// snapshot's listings because the rows are the same structs in the same
// order through the same encoder.
func buildMergedView(shards []*Shard, meta Meta) (*mergedView, error) {
	ls, err := mergeListings(shards, true)
	if err != nil {
		return nil, err
	}
	return &mergedView{
		meta:       meta,
		idHeader:   []string{meta.ID},
		countries:  ls.countries,
		trackers:   ls.trackers,
		figIndex:   ls.figIndex,
		nCountries: ls.nCountries,
		nTrackers:  ls.nTrackers,
	}, nil
}

// listingSet is the encoded result of one scatter-gather listing merge —
// the shared product of the full (pre-swap) merge and the degraded
// (surviving-shards) merge.
type listingSet struct {
	countries payload // /v1/countries
	trackers  payload // /v1/trackers
	figIndex  payload // /v1/figures

	nCountries int
	nTrackers  int
}

// mergeListings merges the listing rows of the given shard generations in
// deterministic order; nil entries are skipped, which is how the degraded
// path expresses "this shard's circuit is open". With requireFull set the
// merge doubles as the coverage check — every canonical figure id must be
// owned by some shard, or the generation is rejected before any pointer
// moves. Without it (the degraded merge), the figure index is the
// canonical order filtered to the surviving shards' holdings, so a given
// set of surviving generations always yields the same bytes.
func mergeListings(shards []*Shard, requireFull bool) (listingSet, error) {
	var summaries []CountrySummary
	nDomains := 0
	for _, sh := range shards {
		if sh != nil {
			nDomains += len(sh.domains)
		}
	}
	domains := make([]string, 0, nDomains)
	owned := map[string]bool{}
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		summaries = append(summaries, sh.summaries...)
		domains = append(domains, sh.domains...)
		for _, id := range sh.figIDs {
			owned[id] = true
		}
	}
	sort.Slice(summaries, func(i, j int) bool { return summaries[i].Code < summaries[j].Code })
	sort.Strings(domains)

	ids := analysis.FigureIDs()
	if requireFull {
		for _, id := range ids {
			if !owned[id] {
				return listingSet{}, fmt.Errorf("serve: no shard owns figure %s", id)
			}
		}
	} else {
		kept := make([]string, 0, len(ids))
		for _, id := range ids {
			if owned[id] {
				kept = append(kept, id)
			}
		}
		ids = kept
	}

	ls := listingSet{nCountries: len(summaries), nTrackers: len(domains)}
	var err error
	if ls.countries, err = newPayload(CountryListing{Count: len(summaries), Countries: summaries}); err != nil {
		return listingSet{}, err
	}
	if ls.trackers, err = newPayload(TrackerListing{Count: len(domains), Domains: domains}); err != nil {
		return listingSet{}, err
	}
	if ls.figIndex, err = newPayload(FigureListing{Figures: ids}); err != nil {
		return listingSet{}, err
	}
	return ls, nil
}
