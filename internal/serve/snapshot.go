// Package serve is the query layer over analyzed tracking-flow corpora:
// it turns a pipeline.Result (Box 2's output) into an immutable, fully
// precomputed Snapshot and serves it over a small net/http API
// (/v1/countries, /v1/countries/{cc}, /v1/trackers/{domain}, /v1/flows,
// /v1/figures/{id}).
//
// Design rules, in order:
//
//   - Snapshots are immutable. Every response body is JSON-encoded once,
//     at build time, so steady-state serving is a map lookup plus a
//     buffer write — zero allocations on the hot path.
//   - Response bytes are a pure function of the analyzed corpus. Nothing
//     volatile (build timestamps, request counters) leaks into /v1
//     bodies, so the same study serves byte-identical responses across
//     worker counts, process restarts, and snapshot reloads.
//   - Swaps are atomic. Store holds the live snapshot behind an
//     atomic.Pointer; Install validates before swapping and leaves the
//     old snapshot serving on bad input, so a reload never causes
//     downtime or a half-updated view.
package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/stats"
)

// Meta labels a snapshot for observability. It never appears in /v1
// response bodies (those are pure functions of the corpus); it is exposed
// through /debug/metrics and the X-Gamma-Snapshot response header.
type Meta struct {
	// ID names the snapshot's provenance, e.g. "seed-42" or "data-./uploads".
	ID string `json:"id"`
	// BuiltAt is stamped by the caller's clock (sched.Wall() at the edge,
	// a fake clock in tests).
	BuiltAt time.Time `json:"built_at"`
}

// payload is one precomputed response: the encoded body plus the
// ready-made Content-Length and ETag header values, so writing it — or
// answering an If-None-Match revalidation with a 304 — performs no
// per-request allocation.
type payload struct {
	body []byte
	clen []string
	etag []string // single element: the quoted body hash, strong-validator form
}

func newPayload(v any) (payload, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return payload{}, fmt.Errorf("serve: encode payload: %w", err)
	}
	return payload{
		body: body,
		clen: []string{strconv.Itoa(len(body))},
		etag: []string{etagFor(body)},
	}, nil
}

// etagFor computes a payload's strong entity tag: the quoted FNV-1a hash
// of the body bytes. Bodies are pure functions of the corpus, so the tag
// is stable across rebuilds, worker counts, and shard counts — a client
// cache stays valid across a same-corpus hot reload.
func etagFor(body []byte) string {
	h := uint64(fnvOffset64)
	for _, c := range body {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	const hexdigits = "0123456789abcdef"
	var buf [18]byte
	buf[0] = '"'
	for i := 0; i < 16; i++ {
		buf[1+i] = hexdigits[(h>>(60-4*i))&0xf]
	}
	buf[17] = '"'
	return string(buf[:])
}

// Snapshot is an immutable, read-optimized view of one analyzed corpus.
// All indexes and response bodies are precomputed by Build; a Snapshot is
// safe for unsynchronized concurrent use forever after.
type Snapshot struct {
	meta     Meta
	idHeader []string // Meta.ID, preallocated for the response header

	countries payload            // /v1/countries
	country   map[string]payload // /v1/countries/{cc}; keys in both letter cases
	trackers  payload            // /v1/trackers
	tracker   map[string]payload // /v1/trackers/{domain}; lowercase keys
	flows     payload            // /v1/flows
	figIndex  payload            // /v1/figures
	figure    map[string]payload // /v1/figures/{id}

	codes   []string // sorted upper-case country codes
	domains []string // sorted tracker domains

	// view is the structured (pre-encoding) form of every served item.
	// NewShardSet and ShardSet.Install re-partition it into shards without
	// re-running analysis, which is what lets one Reload function feed both
	// the monolithic and the sharded backend.
	view *corpusView
}

// --- response shapes (field order is the wire order) ---

// CountrySummary is one row of the /v1/countries listing.
type CountrySummary struct {
	Code             string  `json:"code"`
	City             string  `json:"city"`
	Continent        string  `json:"continent,omitempty"`
	Targets          int     `json:"targets"`
	LoadedOK         int     `json:"loaded_ok"`
	UniqueDomains    int     `json:"unique_domains"`
	NonLocalTrackers int     `json:"non_local_trackers"`
	PrevalencePct    float64 `json:"prevalence_pct"`
}

// CountryListing is the /v1/countries response body.
type CountryListing struct {
	Count     int              `json:"count"`
	Countries []CountrySummary `json:"countries"`
}

// DestCount is one hosting destination inside a country profile.
type DestCount struct {
	Country string `json:"country"`
	Domains int    `json:"domains"`
}

// OrgCount is one tracker organization inside a country profile.
type OrgCount struct {
	Org     string `json:"org"`
	Domains int    `json:"domains"`
}

// CountryProfile is the /v1/countries/{cc} response body: everything the
// atlas knows about one source country, indexes pre-joined.
type CountryProfile struct {
	Code             string               `json:"code"`
	City             string               `json:"city"`
	Continent        string               `json:"continent,omitempty"`
	TraceOrigin      string               `json:"trace_origin"`
	Targets          int                  `json:"targets"`
	OptOuts          int                  `json:"opt_outs"`
	LoadedOK         int                  `json:"loaded_ok"`
	LoadSuccessPct   float64              `json:"load_success_pct"`
	Composition      analysis.Composition `json:"composition"`
	Prevalence       analysis.Prevalence  `json:"prevalence"`
	Funnel           geoloc.FunnelCounts  `json:"funnel"`
	Traces           pipeline.TraceStats  `json:"traces"`
	UniqueDomains    int                  `json:"unique_domains"`
	NonLocalTrackers []pipeline.DomainObs `json:"non_local_trackers"`
	Destinations     []DestCount          `json:"destinations"`
	Organizations    []OrgCount           `json:"organizations"`
}

// TrackerObservation is one source country's sighting of a tracker domain.
type TrackerObservation struct {
	Country     string `json:"country"`
	Source      string `json:"identified_via"`
	DestCountry string `json:"dest_country,omitempty"`
	DestCity    string `json:"dest_city,omitempty"`
	HostASN     uint32 `json:"host_asn,omitempty"`
	HostASOrg   string `json:"host_as_org,omitempty"`
	Cloaked     bool   `json:"cloaked,omitempty"`
}

// TrackerProfile is the /v1/trackers/{domain} response body — the
// reverse index answering "who observes this tracker, and from where?".
type TrackerProfile struct {
	Domain        string               `json:"domain"`
	Org           string               `json:"org,omitempty"`
	OrgCountry    string               `json:"org_country,omitempty"`
	Cloaked       bool                 `json:"cloaked,omitempty"`
	Countries     []string             `json:"countries"`
	DestCountries []string             `json:"dest_countries"`
	ObservedFrom  []TrackerObservation `json:"observed_from"`
}

// TrackerListing is the /v1/trackers response body.
type TrackerListing struct {
	Count   int      `json:"count"`
	Domains []string `json:"domains"`
}

// FlowsPayload is the /v1/flows response body: the full RQ2 flow picture.
type FlowsPayload struct {
	CountryFlows   []analysis.Flow          `json:"country_flows"`
	FlowShares     []analysis.FlowShare     `json:"flow_shares"`
	DestShares     []analysis.DestShare     `json:"dest_shares"`
	ContinentFlows []analysis.ContinentFlow `json:"continent_flows"`
	OrgFlows       []analysis.OrgFlow       `json:"org_flows"`
	OrgTotals      []analysis.OrgFlow       `json:"org_totals"`
}

// FigureListing is the /v1/figures response body.
type FigureListing struct {
	Figures []string `json:"figures"`
}

// figureBody wraps one figure payload with its identifier.
type figureBody struct {
	ID   string `json:"id"`
	Data any    `json:"data"`
}

// corpusView is the structured (pre-encoding) form of one analyzed
// corpus: every item the API serves, keyed and ordered, before any JSON
// is produced. Both the monolithic Snapshot and every Shard encode their
// payloads from the same view, which is the byte-identity argument in
// one sentence: identical structs through the same encoder yield
// identical bytes, however the keys are partitioned.
type corpusView struct {
	countries []countryEntry // sorted by upper-case country code
	trackers  []trackerEntry // sorted by domain
	flows     FlowsPayload
	figures   []figureEntry // analysis.FigureIDs() order
}

type countryEntry struct {
	code    string
	summary CountrySummary
	profile CountryProfile
}

type trackerEntry struct {
	domain  string
	profile *TrackerProfile
}

type figureEntry struct {
	id   string
	body figureBody
}

// buildCorpusView assembles the structured view of one analyzed corpus.
// It depends only on res/reg/policies — never on meta or wall time.
func buildCorpusView(res *pipeline.Result, reg *geo.Registry, policies map[string]analysis.PolicyInfo) (*corpusView, error) {
	v := &corpusView{}

	prevBy := map[string]analysis.Prevalence{}
	for _, p := range analysis.Fig3Prevalence(res) {
		prevBy[p.Country] = p
	}
	compBy := map[string]analysis.Composition{}
	for _, c := range analysis.Fig2Composition(res) {
		compBy[c.Country] = c
	}

	// Per-country profiles plus their listing rows, in sorted country order.
	codes := res.CountryCodes()
	for _, cc := range codes {
		cr := res.Countries[cc]
		profile := buildCountryProfile(cc, cr, reg, compBy[cc], prevBy[cc])
		v.countries = append(v.countries, countryEntry{
			code:    cc,
			profile: profile,
			summary: CountrySummary{
				Code:             cc,
				City:             profile.City,
				Continent:        profile.Continent,
				Targets:          cr.Targets,
				LoadedOK:         cr.LoadedOK,
				UniqueDomains:    len(cr.Verdicts),
				NonLocalTrackers: len(profile.NonLocalTrackers),
				PrevalencePct:    profile.Prevalence.OverallPct,
			},
		})
	}

	// Tracker reverse index: domain → observing countries and their
	// sightings. Assembled from the per-country sorted verdicts so the
	// observation order is (domain, country)-sorted by construction.
	byDomain := map[string]*TrackerProfile{}
	for _, cc := range codes {
		for _, obs := range res.Countries[cc].SortedDomains() {
			if obs.Class != geoloc.NonLocal || !obs.IsTracker {
				continue
			}
			tp := byDomain[obs.Domain]
			if tp == nil {
				tp = &TrackerProfile{Domain: obs.Domain}
				byDomain[obs.Domain] = tp
			}
			if obs.Org != "" {
				tp.Org, tp.OrgCountry = obs.Org, obs.OrgCountry
			}
			if obs.Cloaked {
				tp.Cloaked = true
			}
			tp.Countries = append(tp.Countries, cc)
			tp.ObservedFrom = append(tp.ObservedFrom, TrackerObservation{
				Country:     cc,
				Source:      obs.TrackerSource,
				DestCountry: obs.DestCountry,
				DestCity:    obs.DestCity,
				HostASN:     obs.HostASN,
				HostASOrg:   obs.HostASOrg,
				Cloaked:     obs.Cloaked,
			})
		}
	}
	domains := make([]string, 0, len(byDomain))
	for domain := range byDomain {
		domains = append(domains, domain)
	}
	sort.Strings(domains)
	for _, domain := range domains {
		tp := byDomain[domain]
		tp.DestCountries = destCountriesOf(tp.ObservedFrom)
		v.trackers = append(v.trackers, trackerEntry{domain: domain, profile: tp})
	}

	// Flow matrices.
	countryFlows := analysis.Fig5CountryFlows(res)
	orgFlows := analysis.Fig8OrgFlows(res)
	v.flows = FlowsPayload{
		CountryFlows:   countryFlows,
		FlowShares:     analysis.Fig5FlowShares(countryFlows),
		DestShares:     analysis.Fig5DestShares(res),
		ContinentFlows: analysis.Fig6ContinentFlows(res, reg),
		OrgFlows:       orgFlows,
		OrgTotals:      analysis.OrgTotals(orgFlows),
	}

	// Figure payloads, in presentation order.
	for _, id := range analysis.FigureIDs() {
		data, ok := analysis.Figure(id, res, reg, policies)
		if !ok {
			return nil, fmt.Errorf("serve: unknown figure id %q", id)
		}
		v.figures = append(v.figures, figureEntry{id: id, body: figureBody{ID: id, Data: data}})
	}
	return v, nil
}

// Build constructs a Snapshot from one analyzed corpus. It precomputes
// every index and JSON-encodes every response body exactly once; the
// bodies depend only on res/reg/policies, never on meta or wall time.
func Build(res *pipeline.Result, reg *geo.Registry, policies map[string]analysis.PolicyInfo, meta Meta) (*Snapshot, error) {
	if res == nil || reg == nil {
		return nil, fmt.Errorf("serve: Build requires a non-nil result and registry")
	}
	view, err := buildCorpusView(res, reg, policies)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{
		meta:     meta,
		idHeader: []string{meta.ID},
		country:  map[string]payload{},
		tracker:  map[string]payload{},
		figure:   map[string]payload{},
		codes:    res.CountryCodes(),
		view:     view,
	}

	listing := CountryListing{}
	for _, ce := range view.countries {
		pl, err := newPayload(ce.profile)
		if err != nil {
			return nil, err
		}
		addFolded(s.country, ce.code, pl)
		listing.Countries = append(listing.Countries, ce.summary)
	}
	listing.Count = len(listing.Countries)
	if s.countries, err = newPayload(listing); err != nil {
		return nil, err
	}

	s.domains = make([]string, 0, len(view.trackers))
	for _, te := range view.trackers {
		s.domains = append(s.domains, te.domain)
		pl, err := newPayload(te.profile)
		if err != nil {
			return nil, err
		}
		s.tracker[lowerASCII(te.domain)] = pl
	}
	if s.trackers, err = newPayload(TrackerListing{Count: len(s.domains), Domains: s.domains}); err != nil {
		return nil, err
	}

	if s.flows, err = newPayload(view.flows); err != nil {
		return nil, err
	}

	ids := make([]string, 0, len(view.figures))
	for _, fe := range view.figures {
		ids = append(ids, fe.id)
		pl, err := newPayload(fe.body)
		if err != nil {
			return nil, err
		}
		s.figure[fe.id] = pl
	}
	if s.figIndex, err = newPayload(FigureListing{Figures: ids}); err != nil {
		return nil, err
	}
	return s, nil
}

// buildCountryProfile assembles one /v1/countries/{cc} body.
func buildCountryProfile(cc string, cr *pipeline.CountryResult, reg *geo.Registry, comp analysis.Composition, prev analysis.Prevalence) CountryProfile {
	profile := CountryProfile{
		Code:           cc,
		City:           cr.City.ID(),
		TraceOrigin:    cr.TraceOrigin,
		Targets:        cr.Targets,
		OptOuts:        cr.OptOuts,
		LoadedOK:       cr.LoadedOK,
		LoadSuccessPct: stats.Percent(cr.LoadedOK, cr.Targets-cr.OptOuts),
		Composition:    comp,
		Prevalence:     prev,
		Funnel:         cr.Funnel,
		Traces:         cr.Traces,
		UniqueDomains:  len(cr.Verdicts),
	}
	if cont, ok := reg.ContinentOf(cc); ok {
		profile.Continent = string(cont)
	}
	destDomains := map[string]int{}
	orgDomains := map[string]int{}
	for _, obs := range cr.SortedDomains() {
		if obs.Class != geoloc.NonLocal || !obs.IsTracker {
			continue
		}
		profile.NonLocalTrackers = append(profile.NonLocalTrackers, obs)
		if obs.DestCountry != "" {
			destDomains[obs.DestCountry]++
		}
		org := obs.Org
		if org == "" {
			org = "(unknown)"
		}
		orgDomains[org]++
	}
	profile.Destinations = sortedCounts(destDomains, func(k string, n int) DestCount {
		return DestCount{Country: k, Domains: n}
	})
	profile.Organizations = sortedCounts(orgDomains, func(k string, n int) OrgCount {
		return OrgCount{Org: k, Domains: n}
	})
	return profile
}

// sortedCounts materializes a count map as rows sorted by descending
// count, then key — the fixed order every serving payload uses.
func sortedCounts[T any](m map[string]int, mk func(string, int) T) []T {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	out := make([]T, 0, len(keys))
	for _, k := range keys {
		out = append(out, mk(k, m[k]))
	}
	return out
}

// destCountriesOf extracts the sorted unique destination countries from a
// (country-sorted) observation list.
func destCountriesOf(obs []TrackerObservation) []string {
	seen := map[string]bool{}
	out := []string{}
	for _, o := range obs {
		if o.DestCountry != "" && !seen[o.DestCountry] {
			seen[o.DestCountry] = true
			out = append(out, o.DestCountry)
		}
	}
	sort.Strings(out)
	return out
}

// addFolded registers a payload under both letter-case spellings of a
// country code so the hot lookup path never allocates a folded copy.
func addFolded(m map[string]payload, key string, pl payload) {
	m[upperASCII(key)] = pl
	m[lowerASCII(key)] = pl
}

// --- Snapshot accessors ---

// Meta returns the snapshot's provenance label.
func (s *Snapshot) Meta() Meta { return s.meta }

// CountryCodes returns the served source countries, sorted.
func (s *Snapshot) CountryCodes() []string { return append([]string(nil), s.codes...) }

// TrackerDomains returns the served tracker domains, sorted.
func (s *Snapshot) TrackerDomains() []string { return append([]string(nil), s.domains...) }

// Endpoints enumerates every GET path the snapshot serves, sorted — the
// probe list for golden tests and the daemon's self-check.
func (s *Snapshot) Endpoints() []string {
	out := []string{"/v1/countries", "/v1/trackers", "/v1/flows", "/v1/figures"}
	for _, cc := range s.codes {
		out = append(out, "/v1/countries/"+lowerASCII(cc))
	}
	for _, domain := range s.domains {
		out = append(out, "/v1/trackers/"+domain)
	}
	for _, id := range analysis.FigureIDs() {
		out = append(out, "/v1/figures/"+id)
	}
	sort.Strings(out)
	return out
}

// Body resolves a request path to its precomputed response body through
// the same router the HTTP server uses. The returned slice is the
// snapshot's own buffer; callers must not mutate it.
func (s *Snapshot) Body(path string) ([]byte, bool) {
	ep, arg := route(path)
	pl, ok := s.payloadFor(ep, arg)
	if !ok {
		return nil, false
	}
	return pl.body, true
}

// payloadFor is the read path shared by the server and Body: endpoint +
// decoded argument → precomputed payload. Argument lookups are
// allocation-free when the argument arrives in a canonical case.
func (s *Snapshot) payloadFor(ep endpoint, arg string) (payload, bool) {
	switch ep {
	case epCountries:
		return s.countries, true
	case epCountry:
		if pl, ok := s.country[arg]; ok {
			return pl, true
		}
		pl, ok := s.country[upperASCII(arg)]
		return pl, ok
	case epTrackers:
		return s.trackers, true
	case epTracker:
		if pl, ok := s.tracker[arg]; ok {
			return pl, true
		}
		pl, ok := s.tracker[lowerASCII(arg)]
		return pl, ok
	case epFlows:
		return s.flows, true
	case epFigures:
		return s.figIndex, true
	case epFigure:
		pl, ok := s.figure[arg]
		return pl, ok
	default:
		return payload{}, false
	}
}

// validate is the pre-swap sanity gate: a snapshot must describe a
// non-empty corpus and carry every precomputed payload it routes to.
// Store.Install refuses (and keeps the old snapshot serving) when this
// fails, which is what makes hot reloads safe against bad input.
func (s *Snapshot) validate() error {
	if s == nil {
		return fmt.Errorf("serve: nil snapshot")
	}
	if len(s.codes) == 0 {
		return fmt.Errorf("serve: snapshot has no countries")
	}
	for _, cc := range s.codes {
		if _, ok := s.country[upperASCII(cc)]; !ok {
			return fmt.Errorf("serve: snapshot missing country payload %s", cc)
		}
	}
	for _, id := range analysis.FigureIDs() {
		if _, ok := s.figure[id]; !ok {
			return fmt.Errorf("serve: snapshot missing figure payload %s", id)
		}
	}
	for _, pl := range []payload{s.countries, s.trackers, s.flows, s.figIndex} {
		if len(pl.body) == 0 {
			return fmt.Errorf("serve: snapshot has an empty index payload")
		}
	}
	return nil
}
