package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gamma-suite/gamma/internal/sched"
)

// Options tunes a Server. The zero value is production-ready.
type Options struct {
	// Clock paces the concurrency limiter and stamps latencies. Nil uses
	// sched.Wall(); tests inject sched.NewFakeClock so overload and
	// latency behaviour is driven without wall-clock sleeps.
	Clock sched.Clock
	// MaxConcurrent bounds in-flight requests; <= 0 uses 256. Excess
	// requests wait up to AcquireTimeout for a slot, then shed with 503.
	MaxConcurrent int
	// AcquireTimeout is the per-request bound on waiting for a concurrency
	// slot; <= 0 uses 1s. Together with the daemon's http.Server
	// read/write deadlines this is the request-timeout story: in-memory
	// payload writes cannot block, so waiting for admission is the only
	// place a request can stall inside the handler.
	AcquireTimeout time.Duration
	// Reload, when set, backs POST /admin/reload: it builds a replacement
	// snapshot (typically by re-analyzing a dataset directory or re-running
	// a seeded study). Errors — from Reload itself or from pre-swap
	// validation — leave the current snapshot serving and report 422.
	Reload func(ctx context.Context, params url.Values) (*Snapshot, error)
}

// Admin request bounds: /admin/* accepts only trivially small inputs
// (reload parameters travel in the query string), so anything larger is
// rejected up front with a structured 413 instead of being read.
const (
	maxAdminBody  = 1 << 16 // bytes of request body drained before refusing
	maxQueryBytes = 4096    // raw query-string length bound, all endpoints
)

// Preallocated header values: writing them is a map assignment of a
// shared slice, not a per-request allocation. Handlers never mutate them.
var (
	contentTypeJSON = []string{"application/json"}
	allowGetHead    = []string{"GET, HEAD"}
	allowPost       = []string{"POST"}
)

var healthPayload = mustPayload(struct {
	Status string `json:"status"`
}{"ok"})

func mustPayload(v any) payload {
	pl, err := newPayload(v)
	if err != nil {
		panic(err)
	}
	return pl
}

// Server is the HTTP front end over a backend — a monolithic Store or a
// sharded ShardSet. Its hot path — route, admit, look up a precomputed
// payload, write (or answer an If-None-Match revalidation with a 304) —
// performs zero heap allocations per request (pinned by
// TestHotEndpointsZeroAllocs).
type Server struct {
	back           backend
	clock          sched.Clock
	sem            chan struct{}
	acquireTimeout time.Duration
	reload         func(ctx context.Context, params url.Values) (*Snapshot, error)
	reloadMu       sync.Mutex // single-flight: concurrent reloads/rollbacks would race to swap
	m              metrics
	start          time.Time
}

// New builds a Server over a monolithic Store.
func New(store *Store, opts Options) *Server {
	return newServer(store, opts)
}

// NewSharded builds a Server over a ShardSet: single-key endpoints route
// straight to the owning shard, listings serve the pre-merged
// scatter-gather view (degrading to a surviving-shards merge when a
// circuit opens), and POST /admin/reload re-partitions the reloaded
// snapshot across the set with staggered per-shard swaps.
func NewSharded(set *ShardSet, opts Options) *Server {
	return newServer(set, opts)
}

func newServer(back backend, opts Options) *Server {
	clock := opts.Clock
	if clock == nil {
		clock = sched.Wall()
	}
	maxc := opts.MaxConcurrent
	if maxc <= 0 {
		maxc = 256
	}
	timeout := opts.AcquireTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	return &Server{
		back:           back,
		clock:          clock,
		sem:            make(chan struct{}, maxc),
		acquireTimeout: timeout,
		reload:         opts.Reload,
		start:          clock.Now(),
	}
}

// errorBody is the structured shape of every non-200 response.
type errorBody struct {
	Status int    `json:"status"`
	Error  string `json:"error"`
	Path   string `json:"path,omitempty"`
}

// ServeHTTP implements http.Handler with panic recovery and per-endpoint
// accounting around the routed handler.
//
//gamma:hotpath every request enters here; 200s are zero-allocation
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := s.clock.Now()
	ep, arg := route(r.URL.Path)
	defer func() {
		if p := recover(); p != nil {
			s.m.panics.Add(1)
			s.writeError(w, http.StatusInternalServerError, "internal server error", "")
			s.m.observe(ep, http.StatusInternalServerError, s.clock.Now().Sub(start))
		}
	}()
	status := s.serve(w, r, ep, arg)
	s.m.observe(ep, status, s.clock.Now().Sub(start))
}

// serve dispatches one routed request and returns the response status.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, ep endpoint, arg string) int {
	switch ep {
	case epReload:
		return s.handleReload(w, r)
	case epRollback:
		return s.handleRollback(w, r)
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header()["Allow"] = allowGetHead
		return s.writeError(w, http.StatusMethodNotAllowed, "method not allowed", "")
	}
	// Admission control. The uncontended path is a non-blocking channel
	// send; only under saturation do we fall into the blocking wait.
	select {
	case s.sem <- struct{}{}:
	default:
		if status := s.admitWait(w, r); status != 0 {
			return status
		}
	}
	defer s.release()

	switch ep {
	case epHealth:
		return s.writeConditional(w, r, healthPayload, nil)
	case epMetrics:
		return s.handleMetrics(w, r)
	case epSnapshots:
		return s.handleSnapshots(w, r)
	case epUnknown:
		return s.writeError(w, http.StatusNotFound, "not found", r.URL.Path)
	default:
		if r.URL.RawQuery != "" {
			if status := s.maybeServeHistorical(w, r, ep, arg); status != 0 {
				return status
			}
		}
		lk := s.back.get(ep, arg)
		switch lk.code {
		case lookupOK:
			return s.writeConditional(w, r, lk.pl, lk.id)
		case lookupDegraded:
			return s.writeDegraded(w, r, lk)
		case lookupUnavailable:
			return s.writeUnavailable(w, lk)
		default:
			return s.writeError(w, http.StatusNotFound, "not found", r.URL.Path)
		}
	}
}

// admitWait blocks for an admission slot under saturation and returns 0
// once one is acquired, or the 503 status it wrote when the acquire
// timeout fires or the client goes away first. Waiting happens on the
// injected clock so load-shedding is testable on a fake clock; blocking —
// and the timer channel it arms — is definitionally the slow path, which
// is why this lives outside the zero-allocation admission fast path.
//
//gamma:coldpath contended admission arms a timer and may write a 503; the uncontended send in serve stays hot
func (s *Server) admitWait(w http.ResponseWriter, r *http.Request) int {
	select {
	case s.sem <- struct{}{}:
		return 0
	case <-s.clock.After(s.acquireTimeout):
		s.m.overloads.Add(1)
		return s.writeError(w, http.StatusServiceUnavailable, "overloaded: no capacity within the admission timeout", "")
	case <-r.Context().Done():
		return s.writeError(w, http.StatusServiceUnavailable, "client went away while awaiting admission", "")
	}
}

func (s *Server) release() { <-s.sem }

// writeConditional serves a precomputed payload, honoring conditional
// requests: when the client's If-None-Match matches the payload's
// precomputed entity tag, the body is elided and a 304 goes out instead.
// Both branches write only preallocated header slices — revalidation is
// on the same zero-allocation contract as a full response.
//
//gamma:hotpath 200/304 emission must write preallocated state only
func (s *Server) writeConditional(w http.ResponseWriter, r *http.Request, pl payload, idHeader []string) int {
	if inm := r.Header["If-None-Match"]; len(inm) > 0 && etagMatches(inm, pl.etag[0]) {
		h := w.Header()
		h["Etag"] = pl.etag
		if idHeader != nil {
			h["X-Gamma-Snapshot"] = idHeader
		}
		w.WriteHeader(http.StatusNotModified)
		return http.StatusNotModified
	}
	s.writePayload(w, r, pl, idHeader)
	return http.StatusOK
}

// writeDegraded serves a listing merged from the surviving shards: a
// normal (conditional, ETagged) 200 plus the Gamma-Degraded header
// announcing how much of the set answered. The body is deterministic for
// a given set of surviving generations — it comes from the memoized
// degraded merge — so caches and retries behave exactly as on the
// healthy path.
//
//gamma:coldpath degraded responses only occur while a breaker is non-closed
func (s *Server) writeDegraded(w http.ResponseWriter, r *http.Request, lk lookup) int {
	s.m.degraded.Add(1)
	w.Header()["Gamma-Degraded"] = lk.degraded
	return s.writeConditional(w, r, lk.pl, lk.id)
}

// writeUnavailable refuses a request whose owning shard (or, for a
// listing, every shard) has an open circuit: a structured 503 with a
// Retry-After derived from the breaker's remaining cooldown, never less
// than one second.
//
//gamma:coldpath circuit-open refusals marshal an error body
func (s *Server) writeUnavailable(w http.ResponseWriter, lk lookup) int {
	s.m.unavailable.Add(1)
	secs := int((lk.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	msg := "shard unavailable: circuit open"
	if lk.total > 0 {
		msg = "unavailable: " + strconv.Itoa(lk.healthy) + "/" + strconv.Itoa(lk.total) + " shards answering"
	}
	return s.writeError(w, http.StatusServiceUnavailable, msg, "")
}

// maybeServeHistorical handles ?snapshot=<id> time-travel reads against
// the history ring. It returns 0 when the request carries no snapshot
// parameter — the caller falls through to the live generation — and the
// written status otherwise. Historical reads always serve from the
// retained monolithic snapshot, so they stay available (full fidelity)
// even while the live sharded generation is degraded.
//
//gamma:coldpath time-travel reads parse the query string and probe the history ring
func (s *Server) maybeServeHistorical(w http.ResponseWriter, r *http.Request, ep endpoint, arg string) int {
	if len(r.URL.RawQuery) > maxQueryBytes {
		return s.writeError(w, http.StatusRequestEntityTooLarge, "query string exceeds the request bound", r.URL.Path)
	}
	q, err := url.ParseQuery(r.URL.RawQuery)
	if err != nil {
		return s.writeError(w, http.StatusBadRequest, "malformed query string", r.URL.Path)
	}
	id := q.Get("snapshot")
	if id == "" {
		return 0
	}
	snap, ok := s.back.historical(id)
	if !ok {
		return s.writeError(w, http.StatusNotFound, "snapshot "+id+" not in history", r.URL.Path)
	}
	pl, ok := snap.payloadFor(ep, arg)
	if !ok {
		return s.writeError(w, http.StatusNotFound, "not found", r.URL.Path)
	}
	return s.writeConditional(w, r, pl, snap.idHeader)
}

// etagMatches reports whether any member of an If-None-Match header
// matches the payload's entity tag. It implements the weak comparison
// RFC 9110 prescribes for If-None-Match (a W/ prefix on the client's
// validator is ignored) plus the * wildcard, scanning the comma-joined
// list without allocating; malformed members simply never match.
func etagMatches(values []string, tag string) bool {
	for _, list := range values {
		for len(list) > 0 {
			switch list[0] {
			case ' ', '\t', ',':
				list = list[1:]
				continue
			case '*':
				return true
			}
			if len(list) >= 2 && list[0] == 'W' && list[1] == '/' {
				list = list[2:]
			}
			if len(list) == 0 || list[0] != '"' {
				break // malformed member: no match possible in this value
			}
			end := strings.IndexByte(list[1:], '"')
			if end < 0 {
				break
			}
			if list[:end+2] == tag {
				return true
			}
			list = list[end+2:]
		}
	}
	return false
}

// writePayload emits a precomputed 200 response. All header values are
// preallocated slices, so this writes without allocating.
func (s *Server) writePayload(w http.ResponseWriter, r *http.Request, pl payload, idHeader []string) {
	h := w.Header()
	h["Content-Type"] = contentTypeJSON
	h["Content-Length"] = pl.clen
	h["Etag"] = pl.etag
	if idHeader != nil {
		h["X-Gamma-Snapshot"] = idHeader
	}
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(pl.body)
	}
}

// writeError emits the structured error body. Error paths may allocate;
// only 200s are on the zero-allocation contract.
//
//gamma:coldpath error responses marshal JSON; only 200s are zero-alloc
func (s *Server) writeError(w http.ResponseWriter, status int, msg, path string) int {
	body, err := json.Marshal(errorBody{Status: status, Error: msg, Path: path})
	if err != nil {
		status = http.StatusInternalServerError
		body = []byte(`{"status":500,"error":"response encoding failure"}`)
	}
	h := w.Header()
	h["Content-Type"] = contentTypeJSON
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
	return status
}

// writeJSON emits a marshaled 200 body with the standard headers.
//
//gamma:coldpath admin/observability responses marshal JSON per request
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, v any) int {
	body, err := json.Marshal(v)
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, "response encoding failure", "")
	}
	h := w.Header()
	h["Content-Type"] = contentTypeJSON
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(body)
	}
	return http.StatusOK
}

// handleMetrics serves /debug/metrics: snapshot identity plus the
// per-endpoint counters, latency histograms, and (when sharded) the
// per-shard counter rows with breaker states.
//
//gamma:coldpath observability endpoint materializes counters and marshals JSON
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	now := s.clock.Now()
	return s.writeJSON(w, r, MetricsPayload{
		Snapshot:    s.back.info(),
		UptimeMs:    now.Sub(s.start).Milliseconds(),
		Swaps:       s.back.swapCount(),
		Panics:      s.m.panics.Load(),
		Overloads:   s.m.overloads.Load(),
		Degraded:    s.m.degraded.Load(),
		Unavailable: s.m.unavailable.Load(),
		Rollbacks:   s.m.rollbacks.Load(),
		Shards:      s.back.shardStats(),
		Endpoints:   s.m.collect(),
	})
}

// handleSnapshots serves /v1/snapshots: the history ring, newest first,
// with the live generation marked.
//
//gamma:coldpath history listing marshals the ring per request
func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) int {
	return s.writeJSON(w, r, s.back.snapshots())
}

// boundAdminRequest enforces the admin input bounds: an oversized query
// string or request body is refused with a structured 413 before any of
// it is interpreted. The body is drained through a LimitReader so a
// client cannot stream an unbounded payload into the handler.
//
//gamma:coldpath admin-only bounding drains a size-capped body
func (s *Server) boundAdminRequest(w http.ResponseWriter, r *http.Request) int {
	if len(r.URL.RawQuery) > maxQueryBytes {
		return s.writeError(w, http.StatusRequestEntityTooLarge, "query string exceeds the admin bound", "")
	}
	if r.ContentLength > maxAdminBody {
		return s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds the admin bound", "")
	}
	if r.Body != nil {
		n, _ := io.Copy(io.Discard, io.LimitReader(r.Body, maxAdminBody+1))
		if n > maxAdminBody {
			return s.writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds the admin bound", "")
		}
	}
	return 0
}

// probeInstalled is the post-install self-probe: every endpoint the
// just-installed snapshot claims to serve must answer with exactly the
// snapshot's bytes at full fidelity. A degraded or unavailable lookup
// fails the probe — installing into a degraded set is refused (and
// auto-rolled back) rather than silently publishing a generation whose
// health cannot be verified.
//
//gamma:coldpath post-install self-probe walks every endpoint once per reload
func (s *Server) probeInstalled(snap *Snapshot) error {
	for _, path := range snap.Endpoints() {
		ep, arg := route(path)
		lk := s.back.get(ep, arg)
		if lk.code != lookupOK {
			return errors.New("self-probe " + path + ": lookup not fully healthy")
		}
		want, ok := snap.Body(path)
		if !ok || !bytes.Equal(lk.pl.body, want) {
			return errors.New("self-probe " + path + ": served bytes diverge from the installed snapshot")
		}
	}
	return nil
}

// reloadResponse is the POST /admin/reload success body.
type reloadResponse struct {
	Swapped   bool   `json:"swapped"`
	Snapshot  string `json:"snapshot"`
	Countries int    `json:"countries"`
	Trackers  int    `json:"trackers"`
	Swaps     uint64 `json:"swaps"`
}

// handleReload rebuilds and hot-swaps the snapshot. The swap is
// validation-gated twice: a reloader error or an invalid replacement
// leaves the current snapshot serving (422), and a replacement that
// installs but fails the post-install self-probe is automatically rolled
// back to the previous generation (422 again) — a bad dataset can never
// take the service down or leave it silently misserving.
//
//gamma:coldpath admin reload rebuilds, revalidates, and self-probes a whole snapshot
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		w.Header()["Allow"] = allowPost
		return s.writeError(w, http.StatusMethodNotAllowed, "reload requires POST", "")
	}
	if s.reload == nil {
		return s.writeError(w, http.StatusNotImplemented, "no reloader configured", "")
	}
	if status := s.boundAdminRequest(w, r); status != 0 {
		return status
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	snap, err := s.reload(r.Context(), r.URL.Query())
	if err != nil {
		return s.writeError(w, http.StatusUnprocessableEntity,
			"reload failed, snapshot "+s.back.info().ID+" still serving: "+err.Error(), "")
	}
	if err := s.back.install(snap); err != nil {
		return s.writeError(w, http.StatusUnprocessableEntity, err.Error(), "")
	}
	if err := s.probeInstalled(snap); err != nil {
		prev, rbErr := s.back.rollback()
		if rbErr != nil {
			return s.writeError(w, http.StatusInternalServerError,
				"post-install self-probe failed ("+err.Error()+") and rollback failed: "+rbErr.Error(), "")
		}
		s.m.rollbacks.Add(1)
		return s.writeError(w, http.StatusUnprocessableEntity,
			"post-install self-probe failed: "+err.Error()+"; auto-rolled back to snapshot "+prev.meta.ID, "")
	}
	return s.writeJSON(w, r, reloadResponse{
		Swapped:   true,
		Snapshot:  snap.meta.ID,
		Countries: len(snap.codes),
		Trackers:  len(snap.domains),
		Swaps:     s.back.swapCount(),
	})
}

// rollbackResponse is the POST /admin/rollback success body.
type rollbackResponse struct {
	RolledBack bool   `json:"rolled_back"`
	Snapshot   string `json:"snapshot"`
	Countries  int    `json:"countries"`
	Trackers   int    `json:"trackers"`
	Swaps      uint64 `json:"swaps"`
}

// handleRollback restores the previously installed snapshot from the
// history ring. With no predecessor left it refuses with 409 and the
// live generation keeps serving; a rebuild failure (sharded rollback
// re-partitions the predecessor) reports 422, also without downtime.
//
//gamma:coldpath admin rollback rebuilds the predecessor generation
func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		w.Header()["Allow"] = allowPost
		return s.writeError(w, http.StatusMethodNotAllowed, "rollback requires POST", "")
	}
	if status := s.boundAdminRequest(w, r); status != 0 {
		return status
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	prev, err := s.back.rollback()
	if err != nil {
		if errors.Is(err, errNoPredecessor) {
			return s.writeError(w, http.StatusConflict, err.Error(), "")
		}
		return s.writeError(w, http.StatusUnprocessableEntity, err.Error(), "")
	}
	s.m.rollbacks.Add(1)
	return s.writeJSON(w, r, rollbackResponse{
		RolledBack: true,
		Snapshot:   prev.meta.ID,
		Countries:  len(prev.codes),
		Trackers:   len(prev.domains),
		Swaps:      s.back.swapCount(),
	})
}
