package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/sched"
)

// newChaosShardServer builds a sharded server on a fake clock with every
// shard's access seam wrapped in a deterministic chaos decorator
// (initially passing everything through). Tests flip individual shards
// into fault regimes via the returned decorators and drive breaker time
// by advancing the clock — no wall sleeps anywhere.
func newChaosShardServer(t testing.TB, snap *Snapshot, n int, sopts ShardSetOptions, rate float64, latency time.Duration) (*Server, *ShardSet, *sched.FakeClock, []*chaosAccess) {
	t.Helper()
	clock := sched.NewFakeClock(time.Unix(1700000000, 0))
	sopts.Clock = clock
	set, err := NewShardSetWithOptions(snap, n, sopts)
	if err != nil {
		t.Fatal(err)
	}
	chaos := make([]*chaosAccess, n)
	for i := range chaos {
		chaos[i] = newChaosAccess(directAccess{ss: set, i: i}, 42, "shard-"+strconv.Itoa(i), rate, latency)
		set.setAccess(i, chaos[i])
	}
	return NewSharded(set, Options{Clock: clock}), set, clock, chaos
}

// degradedOracle hand-builds the expected degraded listing bytes: the
// deterministic merge of the live generations with the downed shards
// nil'd out — the independent re-derivation the served bytes must match.
func degradedOracle(t *testing.T, set *ShardSet, down ...int) listingSet {
	t.Helper()
	alive := make([]*Shard, set.n)
	for i := range alive {
		alive[i] = set.shards[i].Load()
	}
	for _, i := range down {
		alive[i] = nil
	}
	ls, err := mergeListings(alive, false)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// TestChaosBreakerLifecycleThroughHTTP walks the full breaker state
// machine through the HTTP surface: consecutive injected faults trip the
// owning shard's circuit (503 + Retry-After on its keys, degraded
// listings elsewhere), an open circuit short-circuits without touching
// the shard, the cooldown admits exactly one half-open trial, a failed
// trial re-opens, and a successful trial restores full service.
func TestChaosBreakerLifecycleThroughHTTP(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "chaos")
	const n = 4
	srv, set, clock, chaos := newChaosShardServer(t, snap, n,
		ShardSetOptions{Breaker: sched.BreakerConfig{FailureThreshold: 3, Cooldown: 30 * time.Second}}, 1, 0)
	owner := shardOf("AA", n)
	keyPath := "/v1/countries/aa"

	if rec := get(t, srv, keyPath); rec.Code != http.StatusOK {
		t.Fatalf("healthy GET %s = %d", keyPath, rec.Code)
	}

	// Three consecutive faults: each refused 503, the third opens the circuit.
	chaos[owner].setMode(chaosFail)
	for i := 0; i < 3; i++ {
		rec := get(t, srv, keyPath)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("fault %d: GET %s = %d, want 503", i+1, keyPath, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("fault %d: 503 without Retry-After", i+1)
		}
		if !strings.Contains(rec.Body.String(), `"status":503`) {
			t.Fatalf("fault %d: unstructured 503 body: %s", i+1, rec.Body.String())
		}
	}
	br := &set.breakers[owner]
	if br.State() != sched.BreakerOpen || br.Trips() != 1 {
		t.Fatalf("after 3 faults: breaker %v, trips %d", br.State(), br.Trips())
	}

	// Open circuit: refused with the remaining cooldown, and the shard is
	// no longer touched at all.
	calls, _ := chaos[owner].counts()
	rec := get(t, srv, keyPath)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") != "30" {
		t.Fatalf("open circuit: GET = %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if after, _ := chaos[owner].counts(); after != calls {
		t.Fatalf("open circuit still loads the shard: %d → %d calls", calls, after)
	}

	// Listings degrade to the surviving shards, marked and deterministic.
	oracle := degradedOracle(t, set, owner)
	recL := get(t, srv, "/v1/countries")
	if recL.Code != http.StatusOK {
		t.Fatalf("degraded listing = %d", recL.Code)
	}
	if got := recL.Header().Get("Gamma-Degraded"); got != "shards=3/4" {
		t.Fatalf("Gamma-Degraded = %q, want shards=3/4", got)
	}
	if !bytes.Equal(recL.Body.Bytes(), oracle.countries.body) {
		t.Fatal("degraded /v1/countries bytes diverge from the surviving-shards merge oracle")
	}
	// A key on a healthy shard keeps serving at full fidelity, unmarked.
	healthyKey := "/v1/trackers/ads.tracker-x.example"
	if shardOf("ads.tracker-x.example", n) == owner {
		healthyKey = "/v1/countries/bb"
	}
	recH := get(t, srv, healthyKey)
	want, _ := snap.Body(healthyKey)
	if recH.Code != http.StatusOK || !bytes.Equal(recH.Body.Bytes(), want) || recH.Header().Get("Gamma-Degraded") != "" {
		t.Fatalf("healthy-shard GET %s = %d, degraded=%q", healthyKey, recH.Code, recH.Header().Get("Gamma-Degraded"))
	}

	// Cooldown elapses; the shard is still broken: the half-open trial
	// fails and the circuit re-opens for a fresh cooldown.
	clock.Advance(30 * time.Second)
	if rec := get(t, srv, keyPath); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed trial: GET = %d", rec.Code)
	}
	if br.State() != sched.BreakerOpen || br.Trips() != 2 {
		t.Fatalf("after failed trial: breaker %v, trips %d", br.State(), br.Trips())
	}
	if rec := get(t, srv, keyPath); rec.Header().Get("Retry-After") != "30" {
		t.Fatalf("re-opened cooldown Retry-After = %q, want 30", rec.Header().Get("Retry-After"))
	}

	// The shard heals; the next cooldown's trial succeeds and closes the
	// circuit — full service restored, listings byte-identical to healthy.
	chaos[owner].setMode(chaosHealthy)
	clock.Advance(30 * time.Second)
	recT := get(t, srv, keyPath)
	wantKey, _ := snap.Body(keyPath)
	if recT.Code != http.StatusOK || !bytes.Equal(recT.Body.Bytes(), wantKey) {
		t.Fatalf("recovery trial: GET = %d", recT.Code)
	}
	if br.State() != sched.BreakerClosed {
		t.Fatalf("after successful trial: breaker %v", br.State())
	}
	recL2 := get(t, srv, "/v1/countries")
	wantList, _ := snap.Body("/v1/countries")
	if !bytes.Equal(recL2.Body.Bytes(), wantList) || recL2.Header().Get("Gamma-Degraded") != "" {
		t.Fatal("recovered listing is not byte-identical to the healthy merge")
	}
}

// TestChaosWedgedShardConsumesExactlyTheBudget pins the cooperative
// deadline: a wedged shard burns exactly the load budget on the injected
// clock and then fails — the request does not hang, and the failure
// feeds the breaker like any other.
func TestChaosWedgedShardConsumesExactlyTheBudget(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "wedge")
	const n = 4
	const budget = 50 * time.Millisecond
	srv, set, clock, chaos := newChaosShardServer(t, snap, n,
		ShardSetOptions{Breaker: sched.BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute}, LoadBudget: budget}, 1, 0)
	owner := shardOf("AA", n)
	chaos[owner].setMode(chaosWedged)

	for i := 0; i < 2; i++ {
		done := make(chan int, 1)
		go func() {
			rec := get(t, srv, "/v1/countries/aa")
			done <- rec.Code
		}()
		clock.BlockUntilWaiters(1) // the wedged load is parked on clock.After(budget)
		clock.Advance(budget - time.Millisecond)
		select {
		case code := <-done:
			t.Fatalf("request completed (%d) before the budget elapsed", code)
		default:
		}
		clock.Advance(time.Millisecond)
		if code := <-done; code != http.StatusServiceUnavailable {
			t.Fatalf("wedged shard: GET = %d, want 503", code)
		}
	}
	if br := &set.breakers[owner]; br.State() != sched.BreakerOpen {
		t.Fatalf("two budget timeouts did not open the breaker: %v", br.State())
	}
	// Open circuit: answered instantly, no clock waiter armed.
	if rec := get(t, srv, "/v1/countries/aa"); rec.Code != http.StatusServiceUnavailable {
		t.Fatal("open circuit did not short-circuit the wedged shard")
	}
	if clock.Waiters() != 0 {
		t.Fatalf("open circuit armed %d clock waiters", clock.Waiters())
	}
}

// TestChaosDegradedListingsDeterministic pins the degradation contract:
// for a fixed set of surviving generations, every degraded listing is
// byte-identical across repeated requests, matches the independent merge
// oracle, carries a stable ETag that honors revalidation, and the
// degraded figure index is the canonical order filtered to survivors.
func TestChaosDegradedListingsDeterministic(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "det")
	const n = 4
	srv, set, _, chaos := newChaosShardServer(t, snap, n,
		ShardSetOptions{Breaker: sched.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}}, 1, 0)
	owner := shardOf("AA", n)
	chaos[owner].setMode(chaosFail)
	if rec := get(t, srv, "/v1/countries/aa"); rec.Code != http.StatusServiceUnavailable {
		t.Fatal("tripping request did not 503")
	}

	oracle := degradedOracle(t, set, owner)
	for path, want := range map[string]payload{
		"/v1/countries": oracle.countries,
		"/v1/trackers":  oracle.trackers,
		"/v1/figures":   oracle.figIndex,
	} {
		first := get(t, srv, path)
		if first.Code != http.StatusOK || first.Header().Get("Gamma-Degraded") != "shards=3/4" {
			t.Fatalf("GET %s = %d, degraded %q", path, first.Code, first.Header().Get("Gamma-Degraded"))
		}
		if !bytes.Equal(first.Body.Bytes(), want.body) {
			t.Fatalf("GET %s diverges from the merge oracle", path)
		}
		if first.Header().Get("Etag") != want.etag[0] {
			t.Fatalf("GET %s etag %q, want %q", path, first.Header().Get("Etag"), want.etag[0])
		}
		for i := 0; i < 3; i++ {
			if again := get(t, srv, path); !bytes.Equal(again.Body.Bytes(), first.Body.Bytes()) {
				t.Fatalf("GET %s not byte-deterministic across requests", path)
			}
		}
		// Degraded responses revalidate like any other: same bytes, same
		// tag, so a conditional request 304s.
		req := httptest.NewRequest(http.MethodGet, path, nil)
		req.Header.Set("If-None-Match", want.etag[0])
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			t.Fatalf("degraded conditional GET %s = %d, want 304", path, rec.Code)
		}
	}

	// The degraded countries listing must actually differ from the full
	// one (the downed shard owns country AA), and the full listing count
	// must exceed the degraded one.
	full, _ := snap.Body("/v1/countries")
	if bytes.Equal(oracle.countries.body, full) {
		t.Fatal("degraded listing is identical to the full listing; fixture owns nothing on the downed shard")
	}
}

// TestChaosZeroFaultsByteIdentical is the harness-neutrality gate: with
// every shard decorated but injecting nothing, the chaos-wrapped set is
// byte-indistinguishable — bodies and ETags — from the monolithic oracle
// on every endpoint, no breaker moves, and nothing is counted degraded.
func TestChaosZeroFaultsByteIdentical(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "neutral")
	srv, set, _, chaos := newChaosShardServer(t, snap, 4, ShardSetOptions{}, 0, 0)
	for i := range chaos {
		chaos[i].setMode(chaosFail) // rate 0: the draw path runs, nothing fires
	}
	for _, path := range snap.Endpoints() {
		rec := get(t, srv, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d", path, rec.Code)
		}
		want, _ := snap.Body(path)
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("GET %s diverges from the monolithic oracle under zero faults", path)
		}
		if rec.Header().Get("Gamma-Degraded") != "" {
			t.Fatalf("GET %s marked degraded under zero faults", path)
		}
	}
	for i := range chaos {
		if _, fired := chaos[i].counts(); fired != 0 {
			t.Fatalf("shard %d fired %d faults at rate 0", i, fired)
		}
		if br := &set.breakers[i]; br.State() != sched.BreakerClosed || br.Trips() != 0 {
			t.Fatalf("shard %d breaker moved under zero faults", i)
		}
	}
	var mp MetricsPayload
	if err := json.Unmarshal(get(t, srv, "/debug/metrics").Body.Bytes(), &mp); err != nil {
		t.Fatal(err)
	}
	if mp.Degraded != 0 || mp.Unavailable != 0 {
		t.Fatalf("zero-fault run counted degraded=%d unavailable=%d", mp.Degraded, mp.Unavailable)
	}
}

// TestChaosAutoRollbackOnFailedSelfProbe: installing a snapshot into a
// degraded set cannot be verified end to end, so the reload must refuse —
// install, fail the post-install self-probe on the open shard, and
// auto-roll back to the previous generation, all reported in one 422.
func TestChaosAutoRollbackOnFailedSelfProbe(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "gen-a")
	snapB := buildTestSnapshot(t, 1, "gen-b")
	clock := sched.NewFakeClock(time.Unix(1700000000, 0))
	set, err := NewShardSetWithOptions(snapA, 4, ShardSetOptions{
		Clock:   clock,
		Breaker: sched.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := newChaosAccess(directAccess{ss: set, i: 0}, 42, "shard-0", 1, 0)
	set.setAccess(0, ch)
	srv := NewSharded(set, Options{Clock: clock, Reload: func(context.Context, url.Values) (*Snapshot, error) {
		return snapB, nil
	}})

	// Trip shard 0 open with one faulted keyed request.
	ch.setMode(chaosFail)
	var tripped bool
	for _, path := range snapA.Endpoints() {
		ep, arg := route(path)
		if ep != epCountry && ep != epTracker && ep != epFigure && ep != epFlows {
			continue
		}
		var idx int
		if ep == epFlows {
			idx = set.flowsIdx
		} else {
			idx = shardOf(arg, 4)
		}
		if idx != 0 {
			continue
		}
		if rec := get(t, srv, path); rec.Code == http.StatusServiceUnavailable {
			tripped = true
		}
		break
	}
	if !tripped || (&set.breakers[0]).State() != sched.BreakerOpen {
		t.Fatal("could not trip shard 0's breaker open")
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("reload into a degraded set = %d, want 422", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "auto-rolled back to snapshot gen-a") {
		t.Fatalf("422 body does not report the auto-rollback: %s", body)
	}
	// The failed install is not a history point: the ring holds only the
	// restored generation, and both the install and the rollback counted
	// as swaps.
	sp := set.snapshots()
	if sp.Count != 1 || sp.Snapshots[0].ID != "gen-a" || !sp.Snapshots[0].Live {
		t.Fatalf("history after auto-rollback: %+v", sp)
	}
	if set.Swaps() != 2 {
		t.Fatalf("swaps = %d, want 2 (install + auto-rollback)", set.Swaps())
	}
	var mp MetricsPayload
	if err := json.Unmarshal(get(t, srv, "/debug/metrics").Body.Bytes(), &mp); err != nil {
		t.Fatal(err)
	}
	if mp.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", mp.Rollbacks)
	}
	// Healthy shards keep serving generation A bytes after the rollback.
	healthyKey := "/v1/countries/aa"
	if shardOf("AA", 4) == 0 {
		healthyKey = "/v1/countries/bb"
	}
	if shardOf("BB", 4) == 0 && shardOf("AA", 4) == 0 {
		t.Skip("fixture countries both landed on shard 0")
	}
	recK := get(t, srv, healthyKey)
	want, _ := snapA.Body(healthyKey)
	if recK.Code != http.StatusOK || !bytes.Equal(recK.Body.Bytes(), want) {
		t.Fatalf("post-rollback GET %s = %d or wrong generation", healthyKey, recK.Code)
	}
}

// TestChaosAvailabilitySweep drives a fixed request schedule against a
// seeded fault regime across (fault rate × breaker threshold) and logs
// the availability table EXPERIMENTS.md records. The run is fully
// deterministic — seeded draws, fake clock — so the counts are exact,
// and a second identical run must reproduce them bit for bit.
func TestChaosAvailabilitySweep(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "sweep")
	paths := snap.Endpoints()
	run := func(rate float64, threshold int) (ok, degraded, unavailable int) {
		srv, _, clock, chaos := newChaosShardServer(t, snap, 4,
			ShardSetOptions{Breaker: sched.BreakerConfig{FailureThreshold: threshold, Cooldown: 5 * time.Second}}, rate, 0)
		for i := range chaos {
			chaos[i].setMode(chaosFail)
		}
		for i := 0; i < 600; i++ {
			if i%50 == 49 {
				clock.Advance(time.Second) // let cooldowns elapse and trials run
			}
			rec := get(t, srv, paths[i%len(paths)])
			switch {
			case rec.Code == http.StatusOK && rec.Header().Get("Gamma-Degraded") != "":
				degraded++
			case rec.Code == http.StatusOK:
				ok++
			case rec.Code == http.StatusServiceUnavailable:
				unavailable++
			default:
				t.Fatalf("GET %s = %d", paths[i%len(paths)], rec.Code)
			}
		}
		return ok, degraded, unavailable
	}
	t.Log("fault_rate threshold ok degraded unavailable (of 600)")
	for _, rate := range []float64{0.05, 0.2, 0.5} {
		for _, threshold := range []int{3, 5} {
			ok1, dg1, un1 := run(rate, threshold)
			ok2, dg2, un2 := run(rate, threshold)
			if ok1 != ok2 || dg1 != dg2 || un1 != un2 {
				t.Fatalf("rate %.2f threshold %d: sweep not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
					rate, threshold, ok1, dg1, un1, ok2, dg2, un2)
			}
			if ok1+dg1+un1 != 600 {
				t.Fatalf("rate %.2f threshold %d: responses do not sum: %d", rate, threshold, ok1+dg1+un1)
			}
			t.Logf("%.2f %d %d %d %d", rate, threshold, ok1, dg1, un1)
		}
	}
}
