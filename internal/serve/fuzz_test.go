package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/sched"
)

// FuzzRoutePath is the router's totality proof: for arbitrary path bytes,
// route never panics, known endpoints only come from well-formed paths,
// and everything else is served as a structured 404 — never a raw
// http.Error string, never a 500.
func FuzzRoutePath(f *testing.F) {
	for _, seed := range []string{
		"/v1/countries", "/v1/countries/pk", "/v1/countries/PK/",
		"/v1/trackers/ads.example", "/v1/trackers/a%2fb", "/v1/figures/fig5",
		"/v1/flows", "/healthz", "/debug/metrics", "/admin/reload",
		"/", "", "//", "/v1/countries//pk", "/v1/countries/%zz",
		"/v1/countries/..%2f..%2fetc", "/v1/\x00", "/v1/countries/\xff\xfe",
		strings.Repeat("/v1/countries/", 50), "/V1/COUNTRIES",
	} {
		f.Add(seed)
	}

	snap := buildTestSnapshot(f, 0, "fuzz")
	st, err := NewStore(snap)
	if err != nil {
		f.Fatal(err)
	}
	srv := New(st, Options{Clock: sched.NewFakeClock(time.Unix(1700000000, 0))})

	f.Fuzz(func(t *testing.T, path string) {
		ep, arg := route(path) // must not panic on any input
		if ep != epUnknown && ep != epCount {
			// A resolved parameterized route always carries a non-empty,
			// slash-free argument.
			if (ep == epCountry || ep == epTracker || ep == epFigure) &&
				(arg == "" || strings.ContainsRune(arg, '/')) {
				t.Fatalf("route(%q) = (%v, %q): malformed argument", path, ep, arg)
			}
		}

		// Drive the full handler with the raw path. httptest.NewRequest
		// parses the URL itself, so bypass it the way a hostile client
		// bypasses well-formedness: hand-build the request.
		req := &http.Request{
			Method: http.MethodGet,
			URL:    &url.URL{Path: path},
			Proto:  "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Host: "fuzz.local",
		}
		req = req.WithContext(t.Context())
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic either

		switch rec.Code {
		case http.StatusOK, http.StatusMethodNotAllowed:
		case http.StatusNotFound:
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("GET %q: 404 body is not structured JSON: %s", path, rec.Body.Bytes())
			}
			if eb.Status != http.StatusNotFound {
				t.Fatalf("GET %q: 404 body claims status %d", path, eb.Status)
			}
		default:
			t.Fatalf("GET %q = %d, outside the contract {200, 404, 405}", path, rec.Code)
		}
	})
}

// FuzzPartition is the partition function's totality proof: for
// arbitrary key bytes and any admissible shard count, shardOf never
// panics, always lands in [0, n), returns the same shard on every call,
// and is insensitive to ASCII letter case — the property that lets the
// sharded single-key path probe with the request's own spelling instead
// of allocating a folded copy.
func FuzzPartition(f *testing.F) {
	for _, key := range []string{
		"", "PK", "pk", "ads.tracker-x.example", "fig5", "table1",
		flowsPartitionKey, "AA", "zz", "a", strings.Repeat("x", 300),
		"\x00", "\xff\xfe", "Ünïcode.example", "MIXED.Case.Example",
	} {
		f.Add(key, uint8(4))
	}
	f.Add("PK", uint8(0))
	f.Add("PK", uint8(255))

	f.Fuzz(func(t *testing.T, key string, nRaw uint8) {
		// Byte-wise ASCII folds: shardOf's case-insensitivity contract is
		// over ASCII letters only (non-ASCII bytes hash as-is), so fold
		// per byte rather than with the Unicode-aware strings.ToLower.
		lo := make([]byte, len(key))
		hi := make([]byte, len(key))
		for i := 0; i < len(key); i++ {
			c := key[i]
			lo[i], hi[i] = c, c
			if c >= 'A' && c <= 'Z' {
				lo[i] = c + ('a' - 'A')
			}
			if c >= 'a' && c <= 'z' {
				hi[i] = c - ('a' - 'A')
			}
		}
		counts := []int{1, 2, 3, 4, 7, MaxShards, int(nRaw)%MaxShards + 1}
		for _, n := range counts {
			i := shardOf(key, n) // must not panic on any input
			if i < 0 || i >= n {
				t.Fatalf("shardOf(%q, %d) = %d, outside [0, %d)", key, n, i, n)
			}
			if j := shardOf(key, n); j != i {
				t.Fatalf("shardOf(%q, %d) unstable across calls: %d then %d", key, n, i, j)
			}
			if j := shardOf(string(lo), n); j != i {
				t.Fatalf("shardOf(%q, %d) = %d but its ASCII-lowercase spelling maps to %d", key, n, i, j)
			}
			if j := shardOf(string(hi), n); j != i {
				t.Fatalf("shardOf(%q, %d) = %d but its ASCII-uppercase spelling maps to %d", key, n, i, j)
			}
		}
		if shardOf(key, 1) != 0 {
			t.Fatalf("shardOf(%q, 1) != 0", key)
		}
	})
}
