package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/sched"
)

// FuzzRoutePath is the router's totality proof: for arbitrary path bytes,
// route never panics, known endpoints only come from well-formed paths,
// and everything else is served as a structured 404 — never a raw
// http.Error string, never a 500.
func FuzzRoutePath(f *testing.F) {
	for _, seed := range []string{
		"/v1/countries", "/v1/countries/pk", "/v1/countries/PK/",
		"/v1/trackers/ads.example", "/v1/trackers/a%2fb", "/v1/figures/fig5",
		"/v1/flows", "/healthz", "/debug/metrics", "/admin/reload",
		"/", "", "//", "/v1/countries//pk", "/v1/countries/%zz",
		"/v1/countries/..%2f..%2fetc", "/v1/\x00", "/v1/countries/\xff\xfe",
		strings.Repeat("/v1/countries/", 50), "/V1/COUNTRIES",
	} {
		f.Add(seed)
	}

	snap := buildTestSnapshot(f, 0, "fuzz")
	st, err := NewStore(snap)
	if err != nil {
		f.Fatal(err)
	}
	srv := New(st, Options{Clock: sched.NewFakeClock(time.Unix(1700000000, 0))})

	f.Fuzz(func(t *testing.T, path string) {
		ep, arg := route(path) // must not panic on any input
		if ep != epUnknown && ep != epCount {
			// A resolved parameterized route always carries a non-empty,
			// slash-free argument.
			if (ep == epCountry || ep == epTracker || ep == epFigure) &&
				(arg == "" || strings.ContainsRune(arg, '/')) {
				t.Fatalf("route(%q) = (%v, %q): malformed argument", path, ep, arg)
			}
		}

		// Drive the full handler with the raw path. httptest.NewRequest
		// parses the URL itself, so bypass it the way a hostile client
		// bypasses well-formedness: hand-build the request.
		req := &http.Request{
			Method: http.MethodGet,
			URL:    &url.URL{Path: path},
			Proto:  "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Host: "fuzz.local",
		}
		req = req.WithContext(t.Context())
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req) // must not panic either

		switch rec.Code {
		case http.StatusOK, http.StatusMethodNotAllowed:
		case http.StatusNotFound:
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("GET %q: 404 body is not structured JSON: %s", path, rec.Body.Bytes())
			}
			if eb.Status != http.StatusNotFound {
				t.Fatalf("GET %q: 404 body claims status %d", path, eb.Status)
			}
		default:
			t.Fatalf("GET %q = %d, outside the contract {200, 404, 405}", path, rec.Code)
		}
	})
}
