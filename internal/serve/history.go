package serve

import (
	"fmt"
	"sync"
	"time"
)

// DefaultHistoryDepth is how many installed snapshots a backend keeps
// addressable when no explicit depth is configured: the live one plus
// three predecessors.
const DefaultHistoryDepth = 4

// SnapshotDesc is one row of the /v1/snapshots listing: an installed
// generation a client can still read via ?snapshot=<id>, newest first.
type SnapshotDesc struct {
	ID        string    `json:"id"`
	BuiltAt   time.Time `json:"built_at"`
	Countries int       `json:"countries"`
	Trackers  int       `json:"trackers"`
	Live      bool      `json:"live,omitempty"`
}

// SnapshotsPayload is the /v1/snapshots response body.
type SnapshotsPayload struct {
	Count     int            `json:"count"`
	Depth     int            `json:"depth"`
	Snapshots []SnapshotDesc `json:"snapshots"`
}

// snapHistory is the ring of the last N installed snapshots, oldest
// first; the live generation is always the last entry. Both backends
// embed one: Store serves historical reads straight from the ring, and
// ShardSet keeps the monolithic source snapshots so a rollback can
// re-partition the predecessor without re-running analysis. All methods
// are mutex-guarded — history is only touched on install, rollback, and
// the (cold) ?snapshot=/listing paths, never on the live hot path.
type snapHistory struct {
	mu      sync.Mutex
	depth   int
	entries []*Snapshot
}

func (h *snapHistory) init(depth int, first *Snapshot) {
	if depth <= 0 {
		depth = DefaultHistoryDepth
	}
	h.depth = depth
	h.entries = append(h.entries[:0], first)
}

// push appends a newly installed snapshot, evicting the oldest entry
// beyond the configured depth.
func (h *snapHistory) push(s *Snapshot) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = append(h.entries, s)
	if len(h.entries) > h.depth {
		over := len(h.entries) - h.depth
		h.entries = append(h.entries[:0], h.entries[over:]...)
	}
}

// predecessor peeks at the generation a rollback would restore.
func (h *snapHistory) predecessor() (*Snapshot, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) < 2 {
		return nil, false
	}
	return h.entries[len(h.entries)-2], true
}

// pop discards the newest entry. Callers pair it with predecessor():
// peek, rebuild/validate, then pop once the restore is committed — so a
// failed rollback never loses history.
func (h *snapHistory) pop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.entries) > 1 {
		h.entries = h.entries[:len(h.entries)-1]
	}
}

// errNoPredecessor is the structured refusal for a rollback with no
// remaining predecessor.
var errNoPredecessor = fmt.Errorf("serve: no predecessor snapshot in history to roll back to")

// byID resolves a still-addressable snapshot; when the same ID was
// installed more than once, the newest wins.
func (h *snapHistory) byID(id string) (*Snapshot, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := len(h.entries) - 1; i >= 0; i-- {
		if h.entries[i].meta.ID == id {
			return h.entries[i], true
		}
	}
	return nil, false
}

// list materializes the /v1/snapshots rows, newest first.
func (h *snapHistory) list() SnapshotsPayload {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := SnapshotsPayload{
		Count:     len(h.entries),
		Depth:     h.depth,
		Snapshots: make([]SnapshotDesc, 0, len(h.entries)),
	}
	for i := len(h.entries) - 1; i >= 0; i-- {
		s := h.entries[i]
		out.Snapshots = append(out.Snapshots, SnapshotDesc{
			ID:        s.meta.ID,
			BuiltAt:   s.meta.BuiltAt,
			Countries: len(s.codes),
			Trackers:  len(s.domains),
			Live:      i == len(h.entries)-1,
		})
	}
	return out
}
