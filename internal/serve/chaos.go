package serve

import (
	"errors"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/sched"
)

// shardAccess is the decorable seam in front of one shard's generation
// pointer: every shard read the ShardSet performs — single-key lookups,
// degraded listing merges, post-install self-probes — goes through it.
// The production implementation is a direct atomic load that can
// neither fail nor block; chaos decorators inject error bursts, latency
// spikes, and wedged shards behind the same contract.
//
// The deadline contract is cooperative: budget is the most time a load
// may take, and an implementation that cannot produce a generation
// within it must return an error instead of blocking past it. All
// waiting happens on the injected clock, so chaos tests advance a
// FakeClock instead of sleeping — and the circuit breaker in front of
// the seam turns repeated deadline errors into an open circuit that
// stops touching the shard at all.
type shardAccess interface {
	load(clock sched.Clock, budget time.Duration) (*Shard, error)
}

// directAccess is the production seam: one atomic pointer load through
// the owning ShardSet, which trivially satisfies any budget. It ignores
// the clock, so the healthy hot path never reads time.
type directAccess struct {
	ss *ShardSet
	i  int
}

func (d directAccess) load(sched.Clock, time.Duration) (*Shard, error) {
	return d.ss.shards[d.i].Load(), nil
}

// Shard-fault sentinels. Predeclared so the failure path does not
// allocate error values per request.
var (
	errShardWedged = errors.New("serve: shard wedged: no response within the load budget")
	errShardSlow   = errors.New("serve: shard latency exceeded the load budget")
	errShardFault  = errors.New("serve: injected shard fault")
)

// chaosMode selects what a chaosAccess does to each load.
type chaosMode int32

const (
	// chaosHealthy passes loads through untouched — with a zero fault
	// rate the decorated set must be byte-indistinguishable from an
	// undecorated one (TestChaosZeroFaultsByteIdentical).
	chaosHealthy chaosMode = iota
	// chaosFail fails loads fast (seeded Bernoulli at rate) without
	// consuming any virtual time.
	chaosFail
	// chaosSlow delays faulted loads by latency on the injected clock;
	// a latency at or beyond the caller's budget becomes a deadline
	// error after exactly the budget elapses.
	chaosSlow
	// chaosWedged never answers: every load burns the full budget on
	// the clock and times out — the stuck-shard scenario.
	chaosWedged
)

// chaosAccess decorates a shard's access seam with deterministic,
// seeded faults — the serving-plane analogue of sched's Flaky*
// measurement drivers. Each call draws from an rng keyed by
// (seed, scope, call#), so a given seed reproduces the exact same
// fault pattern run after run, which is what lets chaos tests assert
// breaker transitions exactly rather than statistically.
type chaosAccess struct {
	inner   shardAccess
	seed    uint64
	scope   string
	rate    float64       // fault probability in chaosFail/chaosSlow modes
	latency time.Duration // injected delay in chaosSlow mode

	mode  atomic.Int32
	calls atomic.Int64 // loads that reached the decorator
	fired atomic.Int64 // loads that were faulted or delayed
}

// newChaosAccess decorates inner. scope should identify the shard so
// each shard draws from an independent fault stream.
func newChaosAccess(inner shardAccess, seed uint64, scope string, rate float64, latency time.Duration) *chaosAccess {
	return &chaosAccess{inner: inner, seed: seed, scope: scope, rate: rate, latency: latency}
}

// setMode switches the fault regime; safe to call while loads are in
// flight (tests heal a shard mid-run to drive breaker recovery).
func (c *chaosAccess) setMode(m chaosMode) { c.mode.Store(int32(m)) }

// counts reports loads seen and faults fired, for test assertions —
// notably that an open breaker stops loads from reaching the shard.
func (c *chaosAccess) counts() (calls, fired int64) { return c.calls.Load(), c.fired.Load() }

// load implements shardAccess.
//
//gamma:coldpath chaos decorator body: seeded draws and clock waits are the point, never on the healthy path
func (c *chaosAccess) load(clock sched.Clock, budget time.Duration) (*Shard, error) {
	n := c.calls.Add(1)
	switch chaosMode(c.mode.Load()) {
	case chaosWedged:
		c.fired.Add(1)
		<-clock.After(budget)
		return nil, errShardWedged
	case chaosFail:
		if c.draw(n) {
			c.fired.Add(1)
			return nil, errShardFault
		}
	case chaosSlow:
		if c.draw(n) {
			c.fired.Add(1)
			if c.latency >= budget {
				<-clock.After(budget)
				return nil, errShardSlow
			}
			<-clock.After(c.latency)
		}
	}
	return c.inner.load(clock, budget)
}

// draw is the seeded per-call fault decision, reusing the
// sched/fault.go keying idiom: (seed, scope, call#) → Bernoulli(rate).
func (c *chaosAccess) draw(call int64) bool {
	if c.rate >= 1 {
		return true
	}
	if c.rate <= 0 {
		return false
	}
	r := rng.New(c.seed, "serve-chaos", c.scope, strconv.FormatInt(call, 10))
	return rng.Bernoulli(r, c.rate)
}
