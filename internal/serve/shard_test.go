package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/sched"
)

func newTestShardSet(t testing.TB, snap *Snapshot, n int) *ShardSet {
	t.Helper()
	set, err := NewShardSet(snap, n)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func newTestShardServer(t testing.TB, snap *Snapshot, n int, opts Options) (*Server, *ShardSet) {
	t.Helper()
	set := newTestShardSet(t, snap, n)
	if opts.Clock == nil {
		opts.Clock = sched.NewFakeClock(time.Unix(1700000000, 0))
	}
	return NewSharded(set, opts), set
}

// --- partition function ---

func TestShardOfProperties(t *testing.T) {
	keys := []string{"", "AA", "aa", "Aa", "ads.tracker-x.example", "fig5", flowsPartitionKey, "ZZ", "\xff\x00é"}
	for _, key := range keys {
		if got := shardOf(key, 1); got != 0 {
			t.Errorf("shardOf(%q, 1) = %d, want 0", key, got)
		}
		for _, n := range []int{2, 3, 4, 7, MaxShards} {
			i := shardOf(key, n)
			if i < 0 || i >= n {
				t.Fatalf("shardOf(%q, %d) = %d, out of range", key, n, i)
			}
			if j := shardOf(key, n); j != i {
				t.Fatalf("shardOf(%q, %d) unstable: %d then %d", key, n, i, j)
			}
			if j := shardOf(lowerASCII(key), n); j != i {
				t.Fatalf("shardOf(%q, %d) = %d but lowercase spelling = %d", key, n, i, j)
			}
			if j := shardOf(upperASCII(key), n); j != i {
				t.Fatalf("shardOf(%q, %d) = %d but uppercase spelling = %d", key, n, i, j)
			}
		}
	}
}

// --- construction and validation ---

func TestNewShardSetValidation(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	if _, err := NewShardSet(snap, 0); err == nil {
		t.Error("NewShardSet accepted 0 shards")
	}
	if _, err := NewShardSet(snap, MaxShards+1); err == nil {
		t.Errorf("NewShardSet accepted %d shards", MaxShards+1)
	}
	if _, err := NewShardSet(nil, 2); err == nil {
		t.Error("NewShardSet accepted a nil snapshot")
	}
	if _, err := NewShardSet(&Snapshot{}, 2); err == nil {
		t.Error("NewShardSet accepted a zero-value snapshot")
	}
	empty, err := Build(&pipeline.Result{Countries: map[string]*pipeline.CountryResult{}},
		testRegistry(t), nil, Meta{ID: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardSet(empty, 2); err == nil {
		t.Error("NewShardSet accepted an empty corpus")
	}
	set := newTestShardSet(t, snap, 4)
	if set.Shards() != 4 {
		t.Errorf("Shards() = %d, want 4", set.Shards())
	}
	if set.Meta().ID != "unit" {
		t.Errorf("Meta().ID = %q", set.Meta().ID)
	}
}

// TestShardSetBodiesMatchMonolith is the unit-scale equivalence check:
// at every shard count, every endpoint the monolithic snapshot
// enumerates resolves through the scatter-gather set to byte-identical
// bodies. (TestShardedResponsesByteIdentical re-proves this on the full
// study corpus over real HTTP.)
func TestShardSetBodiesMatchMonolith(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	eps := snap.Endpoints()
	for _, n := range []int{1, 2, 3, 4, 7, MaxShards} {
		set := newTestShardSet(t, snap, n)
		got := set.Endpoints()
		if len(got) != len(eps) {
			t.Fatalf("n=%d: %d endpoints, want %d", n, len(got), len(eps))
		}
		for i := range eps {
			if got[i] != eps[i] {
				t.Fatalf("n=%d: endpoint[%d] = %q, want %q", n, i, got[i], eps[i])
			}
		}
		for _, p := range eps {
			want, _ := snap.Body(p)
			body, ok := set.Body(p)
			if !ok {
				t.Fatalf("n=%d: set cannot resolve %s", n, p)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("n=%d: %s differs from the monolithic payload", n, p)
			}
		}
		if _, ok := set.Body("/v1/countries/zz"); ok {
			t.Errorf("n=%d: resolved an unknown country", n)
		}
		if _, ok := set.Body("/nope"); ok {
			t.Errorf("n=%d: resolved an unknown path", n)
		}
	}
}

// TestShardSetLookupIsCaseTolerant pins that the partition function and
// the dual-case shard maps agree: both letter-case spellings of a
// country code route to the same shard and resolve the same payload.
func TestShardSetLookupIsCaseTolerant(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	set := newTestShardSet(t, snap, 4)
	want, _ := snap.Body("/v1/countries/aa")
	for _, p := range []string{"/v1/countries/AA", "/v1/countries/aa", "/v1/countries/Aa"} {
		body, ok := set.Body(p)
		if !ok || !bytes.Equal(body, want) {
			t.Errorf("%s: ok=%v, byte-identical=%v", p, ok, bytes.Equal(body, want))
		}
	}
}

// --- install semantics ---

func TestShardSetInstallValidatesAndRollsBack(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "A")
	snapB := buildTestSnapshot(t, 1, "B")
	set := newTestShardSet(t, snapA, 3)

	empty, err := Build(&pipeline.Result{Countries: map[string]*pipeline.CountryResult{}},
		testRegistry(t), nil, Meta{ID: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Install(empty); err == nil {
		t.Fatal("Install accepted an empty corpus")
	}
	if err := set.InstallShard(empty, 0); err == nil {
		t.Fatal("InstallShard accepted an empty corpus")
	}
	if err := set.InstallShard(snapB, -1); err == nil {
		t.Fatal("InstallShard accepted index -1")
	}
	if err := set.InstallShard(snapB, 3); err == nil {
		t.Fatal("InstallShard accepted an out-of-range index")
	}
	if err := set.InstallShard(nil, 0); err == nil {
		t.Fatal("InstallShard accepted a nil snapshot")
	}
	if set.Swaps() != 0 {
		t.Fatalf("failed installs counted as swaps: %d", set.Swaps())
	}
	for _, p := range snapA.Endpoints() {
		want, _ := snapA.Body(p)
		if body, ok := set.Body(p); !ok || !bytes.Equal(body, want) {
			t.Fatalf("failed install disturbed %s", p)
		}
	}

	if err := set.Install(snapB); err != nil {
		t.Fatal(err)
	}
	if set.Swaps() != 1 || set.Meta().ID != "B" {
		t.Fatalf("swaps=%d meta=%q after install", set.Swaps(), set.Meta().ID)
	}
	for _, p := range snapB.Endpoints() {
		want, _ := snapB.Body(p)
		if body, ok := set.Body(p); !ok || !bytes.Equal(body, want) {
			t.Fatalf("install did not converge on %s", p)
		}
	}
	for _, row := range set.shardStats() {
		if row.Swaps != 1 {
			t.Fatalf("shard %d swaps = %d, want 1", row.Shard, row.Swaps)
		}
	}
}

// TestShardSetStaggeredInstall walks a new corpus across the set one
// shard at a time and checks every intermediate state: keys owned by
// already-swapped shards serve the new generation, the rest serve the
// old, and the merged listings always equal a deterministic re-merge of
// exactly the shard generations live at that step.
func TestShardSetStaggeredInstall(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "A")
	snapB := buildTestSnapshot(t, 1, "B")
	const n = 4
	set := newTestShardSet(t, snapA, n)

	installed := map[int]bool{}
	for i := 0; i < n; i++ {
		if err := set.InstallShard(snapB, i); err != nil {
			t.Fatal(err)
		}
		installed[i] = true

		// Single-key endpoints: generation decided by the owning shard.
		for _, cc := range snapA.CountryCodes() {
			oracle := snapA
			if installed[shardOf(cc, n)] {
				oracle = snapB
			}
			want, _ := oracle.Body("/v1/countries/" + lowerASCII(cc))
			got, ok := set.Body("/v1/countries/" + lowerASCII(cc))
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("step %d: country %s not consistent with its shard generation", i, cc)
			}
		}
		for _, d := range snapA.TrackerDomains() {
			oracle := snapA
			if installed[shardOf(d, n)] {
				oracle = snapB
			}
			want, _ := oracle.Body("/v1/trackers/" + d)
			got, ok := set.Body("/v1/trackers/" + d)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("step %d: tracker %s not consistent with its shard generation", i, d)
			}
		}

		// Listings: must equal the deterministic merge of the exact
		// generation mix live right now.
		cur := make([]*Shard, n)
		for j := 0; j < n; j++ {
			src := snapA
			if installed[j] {
				src = snapB
			}
			sh, err := buildShard(src.view, j, n)
			if err != nil {
				t.Fatal(err)
			}
			cur[j] = sh
		}
		m, err := buildMergedView(cur, snapB.meta)
		if err != nil {
			t.Fatal(err)
		}
		for p, want := range map[string][]byte{
			"/v1/countries": m.countries.body,
			"/v1/trackers":  m.trackers.body,
			"/v1/figures":   m.figIndex.body,
		} {
			got, ok := set.Body(p)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("step %d: %s is not the merge of the live shard generations", i, p)
			}
		}
	}
	// Fully staggered over: everything must equal the B oracle.
	for _, p := range snapB.Endpoints() {
		want, _ := snapB.Body(p)
		if got, ok := set.Body(p); !ok || !bytes.Equal(got, want) {
			t.Fatalf("after full stagger, %s differs from the new oracle", p)
		}
	}
}

// TestScatterGatherRaceUnderStaggeredSwaps is the sharded analogue of
// TestSwapUnderLoadZeroDowntime, run under -race in CI: 8 readers hammer
// every endpoint through the full HTTP handler while shards are
// staggered back and forth between two corpora. Every response must be a
// 200, and every body must be byte-identical to a state one generation
// of the owning shard (single-key) or one recorded merge of a live
// generation mix (listings) can produce — never an error, never a torn
// merge.
func TestScatterGatherRaceUnderStaggeredSwaps(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "A")
	snapB := buildTestSnapshot(t, 1, "B")
	const n = 4
	const passes = 6
	srv, set := newTestShardServer(t, snapA, n, Options{})

	paths := snapA.Endpoints()

	// Precompute the allowed body set per path by stepping a shadow set
	// through the exact install sequence the writer below performs. The
	// shadow pass enumerates every reachable state: all-A, B-over-A
	// prefixes, all-B, and A-over-B prefixes.
	allowed := map[string]map[string]bool{}
	record := func(shadow *ShardSet) {
		for _, p := range paths {
			body, ok := shadow.Body(p)
			if !ok {
				t.Fatalf("shadow set cannot resolve %s", p)
			}
			if allowed[p] == nil {
				allowed[p] = map[string]bool{}
			}
			allowed[p][string(body)] = true
		}
	}
	shadow := newTestShardSet(t, snapA, n)
	record(shadow)
	for _, target := range []*Snapshot{snapB, snapA} {
		for i := 0; i < n; i++ {
			if err := shadow.InstallShard(target, i); err != nil {
				t.Fatal(err)
			}
			record(shadow)
		}
	}

	stop := make(chan struct{})
	errc := make(chan error, 8)
	var wg, firstSweep sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		firstSweep.Add(1)
		go func() {
			var once sync.Once
			swept := func() { once.Do(firstSweep.Done) }
			defer swept()
			defer wg.Done()
			for sweep := 0; ; sweep++ {
				if sweep >= 1 {
					swept()
					select {
					case <-stop:
						return
					default:
					}
				}
				for _, p := range paths {
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
					if rec.Code != http.StatusOK {
						select {
						case errc <- fmt.Errorf("GET %s = %d during staggered swaps", p, rec.Code):
						default:
						}
						return
					}
					if !allowed[p][rec.Body.String()] {
						select {
						case errc <- fmt.Errorf("GET %s served a body matching no single shard generation", p):
						default:
						}
						return
					}
				}
			}
		}()
	}
	// Let every reader finish one full sweep before the first install, so
	// swaps demonstrably land while requests are in flight.
	firstSweep.Wait()
	for pass := 0; pass < passes; pass++ {
		target := snapB
		if pass%2 == 1 {
			target = snapA
		}
		for i := 0; i < n; i++ {
			if err := set.InstallShard(target, i); err != nil {
				t.Fatalf("pass %d shard %d: %v", pass, i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	var routed uint64
	for _, row := range set.shardStats() {
		if row.Swaps != passes {
			t.Fatalf("shard %d swaps = %d, want %d", row.Shard, row.Swaps, passes)
		}
		routed += row.Requests
	}
	if routed == 0 {
		t.Fatal("no single-key requests were routed to any shard")
	}
}

// --- sharded serving through the HTTP front end ---

func TestShardedServerEndToEnd(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "sharded")
	srv, set := newTestShardServer(t, snap, 4, Options{})
	for _, path := range snap.Endpoints() {
		rec := get(t, srv, path)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d", path, rec.Code)
			continue
		}
		want, _ := snap.Body(path)
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Errorf("GET %s body differs from the monolithic payload", path)
		}
		if got := rec.Header().Get("X-Gamma-Snapshot"); got != "sharded" {
			t.Errorf("GET %s snapshot header = %q", path, got)
		}
	}
	if rec := get(t, srv, "/v1/countries/zz"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown country = %d, want 404", rec.Code)
	}
	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}

	// Metrics must carry one row per shard, jointly covering the corpus.
	rec := get(t, srv, "/debug/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	var mp MetricsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &mp); err != nil {
		t.Fatal(err)
	}
	if mp.Snapshot.ID != "sharded" || mp.Snapshot.Countries != 2 || mp.Snapshot.Trackers != 1 {
		t.Errorf("snapshot info = %+v", mp.Snapshot)
	}
	if len(mp.Shards) != 4 {
		t.Fatalf("%d shard rows, want 4", len(mp.Shards))
	}
	countries, trackers, figures, requests := 0, 0, 0, uint64(0)
	flowsOwners := 0
	for i, row := range mp.Shards {
		if row.Shard != i {
			t.Errorf("shard row %d labeled %d", i, row.Shard)
		}
		countries += row.Countries
		trackers += row.Trackers
		figures += row.Figures
		requests += row.Requests
		if row.Flows {
			flowsOwners++
		}
	}
	if countries != 2 || trackers != 1 || figures != 9 || flowsOwners != 1 {
		t.Errorf("shard coverage: countries=%d trackers=%d figures=%d flowsOwners=%d",
			countries, trackers, figures, flowsOwners)
	}
	if requests == 0 {
		t.Error("no routed requests recorded across shards")
	}
	if err := set.Install(snap); err != nil {
		t.Fatal(err)
	}
	if set.Swaps() != 1 {
		t.Errorf("swaps = %d", set.Swaps())
	}
}

// TestShardedReloadThroughAdminEndpoint drives the sharded backend's
// install path the way production does: POST /admin/reload builds a
// monolithic snapshot and the ShardSet re-partitions it.
func TestShardedReloadThroughAdminEndpoint(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "A")
	snapB := buildTestSnapshot(t, 1, "B")
	reloadOK := true
	set := newTestShardSet(t, snapA, 4)
	srv := NewSharded(set, Options{
		Clock: sched.NewFakeClock(time.Unix(1700000000, 0)),
		Reload: func(context.Context, url.Values) (*Snapshot, error) {
			if !reloadOK {
				return nil, fmt.Errorf("synthetic corruption")
			}
			return snapB, nil
		},
	})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload = %d: %s", rec.Code, rec.Body.Bytes())
	}
	var rr reloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Swapped || rr.Snapshot != "B" || rr.Swaps != 1 {
		t.Errorf("reload response = %+v", rr)
	}
	want, _ := snapB.Body("/v1/countries")
	if got := get(t, srv, "/v1/countries"); !bytes.Equal(got.Body.Bytes(), want) {
		t.Error("reload did not converge the sharded listing")
	}

	reloadOK = false
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("failed reload = %d", rec.Code)
	}
	if set.Swaps() != 1 || set.Meta().ID != "B" {
		t.Fatal("failed reload disturbed the serving generation")
	}
}
