package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/sched"
)

// --- synthetic corpus fixtures (no study run needed) ---

func testRegistry(t testing.TB) *geo.Registry {
	t.Helper()
	reg, err := geo.NewRegistry([]geo.Country{
		{Code: "AA", Name: "Alphaland", Continent: geo.Europe,
			Cities: []geo.City{{Name: "Alpha", Country: "AA"}}},
		{Code: "BB", Name: "Betastan", Continent: geo.Asia,
			Cities: []geo.City{{Name: "Beta", Country: "BB"}}},
		{Code: "CC", Name: "Gammaria", Continent: geo.Europe,
			Cities: []geo.City{{Name: "Gamma", Country: "CC"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// makeResult hand-builds a small analyzed corpus. Distinct variants have
// the same endpoint set (countries, tracker domains, figure ids) but
// different counts, so their response bodies differ byte-wise — exactly
// what the swap tests need.
func makeResult(variant int) *pipeline.Result {
	res := &pipeline.Result{
		Countries:      map[string]*pipeline.CountryResult{},
		TrackerDomains: map[string]string{},
	}
	for i, cc := range []string{"AA", "BB"} {
		dest := "CC"
		tracker := pipeline.DomainObs{
			Domain:      "ads.tracker-x.example",
			Addr:        fmt.Sprintf("192.0.2.%d", i+1),
			Class:       geoloc.NonLocal,
			DestCountry: dest,
			DestCity:    "Gamma, CC",
			IsTracker:   true, TrackerSource: "easylist",
			Org: "TrackCo", OrgCountry: dest, HostASN: 64500,
		}
		local := pipeline.DomainObs{
			Domain: "local-site.example", Addr: "198.51.100.7", Class: geoloc.Local,
		}
		cr := &pipeline.CountryResult{
			Country:     cc,
			City:        geo.City{Name: map[string]string{"AA": "Alpha", "BB": "Beta"}[cc], Country: cc},
			TraceOrigin: "volunteer",
			Targets:     10 + variant, // the variant knob: shifts every derived count
			LoadedOK:    8 + variant,
			Verdicts: map[string]pipeline.DomainObs{
				tracker.Domain: tracker,
				local.Domain:   local,
			},
		}
		for s := 0; s < 3+variant; s++ {
			cr.Sites = append(cr.Sites, pipeline.SiteResult{
				Country: cc,
				Site:    fmt.Sprintf("site-%d.%s.example", s, cc),
				Kind:    core.KindRegional,
				LoadOK:  true,
				Domains: []pipeline.DomainObs{tracker},
			})
		}
		cr.Funnel = geoloc.FunnelCounts{Total: 2, Local: 1, NonLocal: 1}
		res.Countries[cc] = cr
		res.TrackerDomains[tracker.Domain] = tracker.TrackerSource
	}
	res.Funnel.Trackers = 2
	return res
}

func buildTestSnapshot(t testing.TB, variant int, id string) *Snapshot {
	t.Helper()
	snap, err := Build(makeResult(variant), testRegistry(t), map[string]analysis.PolicyInfo{
		"AA": {Type: "CS", Enacted: true},
		"BB": {Type: "NR"},
	}, Meta{ID: id})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func newTestServer(t testing.TB, snap *Snapshot, opts Options) (*Server, *Store) {
	t.Helper()
	st, err := NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Clock == nil {
		opts.Clock = sched.NewFakeClock(time.Unix(1700000000, 0))
	}
	return New(st, opts), st
}

func get(t testing.TB, srv *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// --- router ---

func TestRouteTable(t *testing.T) {
	cases := []struct {
		path string
		ep   endpoint
		arg  string
	}{
		{"/v1/countries", epCountries, ""},
		{"/v1/countries/", epCountries, ""},
		{"/v1/countries///", epCountries, ""},
		{"/v1/countries/pk", epCountry, "pk"},
		{"/v1/countries/PK/", epCountry, "PK"},
		{"/v1/countries/p%6b", epCountry, "pk"},
		{"/v1/countries/a/b", epUnknown, ""},
		{"/v1/trackers", epTrackers, ""},
		{"/v1/trackers/ads.tracker-x.example", epTracker, "ads.tracker-x.example"},
		{"/v1/trackers/a%2Fb", epUnknown, ""},
		{"/v1/trackers/%zz", epUnknown, ""},
		{"/v1/flows", epFlows, ""},
		{"/v1/figures", epFigures, ""},
		{"/v1/figures/fig5", epFigure, "fig5"},
		{"/healthz", epHealth, ""},
		{"/debug/metrics", epMetrics, ""},
		{"/admin/reload", epReload, ""},
		{"/", epUnknown, ""},
		{"", epUnknown, ""},
		{"/v2/countries", epUnknown, ""},
		{"/v1/Countries", epUnknown, ""},
	}
	for _, tc := range cases {
		ep, arg := route(tc.path)
		if ep != tc.ep || arg != tc.arg {
			t.Errorf("route(%q) = (%v, %q), want (%v, %q)", tc.path, ep, arg, tc.ep, tc.arg)
		}
	}
}

// --- store: validation before swap, rollback on bad input ---

func TestStoreRejectsInvalidSnapshots(t *testing.T) {
	good := buildTestSnapshot(t, 0, "good")
	if _, err := NewStore(nil); err == nil {
		t.Fatal("NewStore(nil) succeeded")
	}
	empty, err := Build(&pipeline.Result{Countries: map[string]*pipeline.CountryResult{}},
		testRegistry(t), nil, Meta{ID: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(empty); err == nil {
		t.Fatal("NewStore accepted an empty corpus")
	}

	st, err := NewStore(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Install(empty); err == nil {
		t.Fatal("Install accepted an empty corpus")
	}
	if st.Load() != good {
		t.Fatal("failed install did not keep the previous snapshot serving")
	}
	if st.Swaps() != 0 {
		t.Fatalf("failed install counted as a swap: %d", st.Swaps())
	}

	next := buildTestSnapshot(t, 1, "next")
	if err := st.Install(next); err != nil {
		t.Fatal(err)
	}
	if st.Load() != next || st.Swaps() != 1 {
		t.Fatalf("valid install not applied: snap=%p swaps=%d", st.Load(), st.Swaps())
	}
}

// --- endpoint behaviour ---

func TestEndpointsServeSnapshotBodies(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	srv, _ := newTestServer(t, snap, Options{})
	for _, path := range snap.Endpoints() {
		rec := get(t, srv, path)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d", path, rec.Code)
			continue
		}
		want, ok := snap.Body(path)
		if !ok {
			t.Errorf("snapshot cannot resolve its own endpoint %s", path)
			continue
		}
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Errorf("GET %s body differs from precomputed payload", path)
		}
		if got := rec.Header().Get("X-Gamma-Snapshot"); got != "unit" {
			t.Errorf("GET %s snapshot header = %q", path, got)
		}
		if got := rec.Header().Get("Content-Length"); got != fmt.Sprint(len(want)) {
			t.Errorf("GET %s content-length = %q, want %d", path, got, len(want))
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Errorf("GET %s body is not valid JSON", path)
		}
	}
}

func TestCountryLookupIsCaseAndSlashTolerant(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	srv, _ := newTestServer(t, snap, Options{})
	want, _ := snap.Body("/v1/countries/aa")
	for _, path := range []string{"/v1/countries/AA", "/v1/countries/aa", "/v1/countries/Aa", "/v1/countries/aa/", "/v1/countries/%61a"} {
		rec := get(t, srv, path)
		if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), want) {
			t.Errorf("GET %s = %d, body match=%v", path, rec.Code, bytes.Equal(rec.Body.Bytes(), want))
		}
	}
	var profile CountryProfile
	if err := json.Unmarshal(want, &profile); err != nil {
		t.Fatal(err)
	}
	if profile.Code != "AA" || profile.Continent != "Europe" || len(profile.NonLocalTrackers) != 1 {
		t.Errorf("profile = %+v", profile)
	}
	if len(profile.Destinations) != 1 || profile.Destinations[0].Country != "CC" {
		t.Errorf("destinations = %+v", profile.Destinations)
	}
}

func TestTrackerReverseIndex(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	srv, _ := newTestServer(t, snap, Options{})
	rec := get(t, srv, "/v1/trackers/ads.tracker-x.example")
	if rec.Code != http.StatusOK {
		t.Fatalf("tracker lookup = %d", rec.Code)
	}
	var tp TrackerProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &tp); err != nil {
		t.Fatal(err)
	}
	if tp.Domain != "ads.tracker-x.example" || tp.Org != "TrackCo" {
		t.Errorf("tracker profile = %+v", tp)
	}
	if len(tp.Countries) != 2 || tp.Countries[0] != "AA" || tp.Countries[1] != "BB" {
		t.Errorf("observing countries = %v", tp.Countries)
	}
	if len(tp.DestCountries) != 1 || tp.DestCountries[0] != "CC" {
		t.Errorf("dest countries = %v", tp.DestCountries)
	}
}

func TestUnknownPathsReturnStructured404(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	srv, _ := newTestServer(t, snap, Options{})
	for _, path := range []string{
		"/", "/v1", "/v1/countries/zz", "/v1/trackers/never-seen.example",
		"/v1/figures/fig99", "/nope", "/v1/countries/a/b",
	} {
		rec := get(t, srv, path)
		if rec.Code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, rec.Code)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
			t.Errorf("GET %s: 404 body not JSON: %v", path, err)
			continue
		}
		if eb.Status != http.StatusNotFound || eb.Error == "" {
			t.Errorf("GET %s: 404 body = %+v", path, eb)
		}
	}
}

func TestMethodDiscipline(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "unit")
	srv, _ := newTestServer(t, snap, Options{})

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/countries", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "GET, HEAD" {
		t.Errorf("POST /v1/countries = %d, Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/v1/countries", nil))
	want, _ := snap.Body("/v1/countries")
	if rec.Code != http.StatusOK || rec.Body.Len() != 0 ||
		rec.Header().Get("Content-Length") != fmt.Sprint(len(want)) {
		t.Errorf("HEAD = %d, body %d bytes, CL=%q", rec.Code, rec.Body.Len(), rec.Header().Get("Content-Length"))
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/reload", nil))
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("Allow") != "POST" {
		t.Errorf("GET /admin/reload = %d, Allow=%q", rec.Code, rec.Header().Get("Allow"))
	}
}

func TestMetricsEndpoint(t *testing.T) {
	clock := sched.NewFakeClock(time.Unix(1700000000, 0))
	snap := buildTestSnapshot(t, 0, "metrics-test")
	srv, _ := newTestServer(t, snap, Options{Clock: clock})

	get(t, srv, "/v1/countries")
	get(t, srv, "/v1/countries")
	get(t, srv, "/v1/countries/zz") // 404 → error counter on the country endpoint

	rec := get(t, srv, "/debug/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	var mp MetricsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &mp); err != nil {
		t.Fatal(err)
	}
	if mp.Snapshot.ID != "metrics-test" || mp.Snapshot.Countries != 2 || mp.Snapshot.Trackers != 1 {
		t.Errorf("snapshot info = %+v", mp.Snapshot)
	}
	rows := map[string]EndpointStats{}
	for _, row := range mp.Endpoints {
		rows[row.Endpoint] = row
	}
	if got := rows["countries"]; got.Requests != 2 || got.Errors != 0 {
		t.Errorf("countries stats = %+v", got)
	}
	if got := rows["country"]; got.Requests != 1 || got.Errors != 1 {
		t.Errorf("country stats = %+v", got)
	}
	// All fake-clock requests take zero virtual time → first bucket.
	if got := rows["countries"].Latency[0].Count; got != 2 {
		t.Errorf("latency bucket[0] = %d, want 2", got)
	}
}

func TestAdmissionControlShedsWith503(t *testing.T) {
	clock := sched.NewFakeClock(time.Unix(1700000000, 0))
	snap := buildTestSnapshot(t, 0, "limit")
	srv, _ := newTestServer(t, snap, Options{Clock: clock, MaxConcurrent: 1, AcquireTimeout: time.Second})

	// Occupy the only slot.
	srv.sem <- struct{}{}
	done := make(chan *httptest.ResponseRecorder)
	go func() {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/flows", nil))
		done <- rec
	}()
	clock.BlockUntilWaiters(1) // the request is parked on clock.After
	clock.Advance(time.Second)
	rec := <-done
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server = %d, want 503", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Status != http.StatusServiceUnavailable {
		t.Fatalf("503 body = %s (err %v)", rec.Body.Bytes(), err)
	}
	<-srv.sem // free the slot; the next request must succeed
	if rec := get(t, srv, "/v1/flows"); rec.Code != http.StatusOK {
		t.Fatalf("after release = %d", rec.Code)
	}
	if srv.m.overloads.Load() != 1 {
		t.Fatalf("overloads = %d, want 1", srv.m.overloads.Load())
	}
}

// --- hot reload ---

func TestAdminReloadSwapsAndRollsBack(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "A")
	snapB := buildTestSnapshot(t, 1, "B")
	reloadErr := false
	srv, st := newTestServer(t, snapA, Options{
		Reload: func(_ context.Context, params url.Values) (*Snapshot, error) {
			if reloadErr {
				return nil, fmt.Errorf("synthetic dataset corruption (variant %s)", params.Get("variant"))
			}
			return snapB, nil
		},
	})

	post := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload?variant=1", nil))
		return rec
	}
	rec := post()
	if rec.Code != http.StatusOK {
		t.Fatalf("reload = %d: %s", rec.Code, rec.Body.Bytes())
	}
	var rr reloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Swapped || rr.Snapshot != "B" || rr.Swaps != 1 {
		t.Errorf("reload response = %+v", rr)
	}
	if st.Load() != snapB {
		t.Fatal("reload did not swap the snapshot")
	}
	if got := get(t, srv, "/v1/countries").Header().Get("X-Gamma-Snapshot"); got != "B" {
		t.Errorf("post-swap snapshot header = %q", got)
	}

	// A failing reloader reports 422 and leaves B serving.
	reloadErr = true
	if rec := post(); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("failed reload = %d", rec.Code)
	}
	if st.Load() != snapB || st.Swaps() != 1 {
		t.Fatal("failed reload disturbed the serving snapshot")
	}
}

// TestSwapUnderLoadZeroDowntime hammers every endpoint from concurrent
// readers while the snapshot is swapped back and forth. Run under -race
// (CI does), this is the zero-downtime proof: every response during the
// swap window is a 200 whose body is byte-identical to one of the two
// snapshots' precomputed payloads — never an error, never a torn mix.
func TestSwapUnderLoadZeroDowntime(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "A")
	snapB := buildTestSnapshot(t, 1, "B")
	srv, st := newTestServer(t, snapA, Options{})

	paths := snapA.Endpoints()
	wantA := map[string][]byte{}
	wantB := map[string][]byte{}
	for _, p := range paths {
		a, okA := snapA.Body(p)
		b, okB := snapB.Body(p)
		if !okA || !okB {
			t.Fatalf("endpoint %s not servable by both snapshots", p)
		}
		wantA[p], wantB[p] = a, b
	}

	const readers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range paths {
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, p, nil))
					if rec.Code != http.StatusOK {
						select {
						case errc <- fmt.Errorf("GET %s = %d during swap", p, rec.Code):
						default:
						}
						return
					}
					body := rec.Body.Bytes()
					if !bytes.Equal(body, wantA[p]) && !bytes.Equal(body, wantB[p]) {
						select {
						case errc <- fmt.Errorf("GET %s served a body matching neither snapshot", p):
						default:
						}
						return
					}
				}
			}
		}()
	}
	for swap := 0; swap < 40; swap++ {
		next := snapA
		if swap%2 == 0 {
			next = snapB
		}
		if err := st.Install(next); err != nil {
			t.Fatalf("swap %d: %v", swap, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if st.Swaps() != 40 {
		t.Fatalf("swaps = %d, want 40", st.Swaps())
	}
}

// --- the zero-allocation contract ---

// nopResponseWriter is a reusable http.ResponseWriter whose header map
// persists across requests, isolating the handler's own allocation
// behaviour from the recorder's.
type nopResponseWriter struct {
	h      http.Header
	status int
	n      int
}

func (w *nopResponseWriter) Header() http.Header { return w.h }
func (w *nopResponseWriter) WriteHeader(s int)   { w.status = s }
func (w *nopResponseWriter) Write(b []byte) (int, error) {
	w.n += len(b)
	return len(b), nil
}

// TestHotEndpointsZeroAllocs pins the steady-state contract: serving a
// precomputed payload allocates nothing. Every hot GET endpoint is
// measured through the full ServeHTTP path (routing, admission, metrics,
// header+body write) with a reused writer and request — against both
// backends, so the sharded single-key path (hash to owning shard, probe
// its map) is held to the same zero-allocation bar as the monolith.
func TestHotEndpointsZeroAllocs(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "alloc")
	backends := map[string]*Server{}
	srv, _ := newTestServer(t, snap, Options{})
	backends["monolith"] = srv
	srv4, _ := newTestShardServer(t, snap, 4, Options{})
	backends["sharded-4"] = srv4
	for name, srv := range backends {
		for _, path := range []string{
			"/v1/countries",
			"/v1/countries/aa",
			"/v1/countries/AA", // canonical case: folded map hit, no fold alloc
			"/v1/trackers",
			"/v1/trackers/ads.tracker-x.example",
			"/v1/flows",
			"/v1/figures",
			"/v1/figures/fig5",
			"/healthz",
		} {
			w := &nopResponseWriter{h: make(http.Header)}
			r := httptest.NewRequest(http.MethodGet, path, nil)
			if allocs := testing.AllocsPerRun(200, func() {
				srv.ServeHTTP(w, r)
			}); allocs != 0 {
				t.Errorf("%s: GET %s allocates %.1f times per request, want 0", name, path, allocs)
			}
			if w.status != http.StatusOK || w.n == 0 {
				t.Errorf("%s: GET %s = %d (%d bytes)", name, path, w.status, w.n)
			}
		}
	}
}

// TestPanicRecovery routes a request that panics inside the handler and
// checks the 500 is structured and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "panic")
	srv, _ := newTestServer(t, snap, Options{
		Reload: func(context.Context, url.Values) (*Snapshot, error) { panic("reloader exploded") },
	})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Status != http.StatusInternalServerError {
		t.Fatalf("500 body = %s", rec.Body.Bytes())
	}
	if srv.m.panics.Load() != 1 {
		t.Fatalf("panics counter = %d", srv.m.panics.Load())
	}
	if rec := get(t, srv, "/v1/countries"); rec.Code != http.StatusOK {
		t.Fatalf("server dead after panic: %d", rec.Code)
	}
}

// TestBodyMatchesEndpointEnumeration pins that Endpoints() and Body()
// agree: every enumerated path resolves, and resolution round-trips
// through the same router the HTTP layer uses.
func TestBodyMatchesEndpointEnumeration(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "enum")
	eps := snap.Endpoints()
	if len(eps) < 4+2+1+len(analysis.FigureIDs()) {
		t.Fatalf("only %d endpoints enumerated", len(eps))
	}
	seen := map[string]bool{}
	for _, p := range eps {
		if seen[p] {
			t.Errorf("duplicate endpoint %s", p)
		}
		seen[p] = true
		if !strings.HasPrefix(p, "/v1/") {
			t.Errorf("endpoint %s outside /v1", p)
		}
		if _, ok := snap.Body(p); !ok {
			t.Errorf("Body cannot resolve enumerated endpoint %s", p)
		}
	}
	if _, ok := snap.Body("/v1/countries/zz"); ok {
		t.Error("Body resolved an unknown country")
	}
}

// TestAdminRequestBodyBounds pins the admin-abuse guards: both admin
// endpoints refuse oversized request bodies and oversized query strings
// with a structured 413 before any expensive work runs, and a
// Content-Length lie is caught by draining through the bounded reader.
func TestAdminRequestBodyBounds(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "bounds")
	srv, _ := newTestServer(t, snap, Options{
		Reload: func(context.Context, url.Values) (*Snapshot, error) {
			t.Error("reloader ran for a request that should have been refused")
			return nil, nil
		},
	})
	post := func(target string, body io.Reader, declare int64) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, target, body)
		if declare >= 0 {
			req.ContentLength = declare
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	check413 := func(name string, rec *httptest.ResponseRecorder) {
		t.Helper()
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s = %d, want 413", name, rec.Code)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: unstructured 413 body: %s", name, rec.Body.Bytes())
		}
	}
	oversized := func() io.Reader { return bytes.NewReader(make([]byte, maxAdminBody+1)) }
	for _, target := range []string{"/admin/reload", "/admin/rollback"} {
		check413(target+" declared oversize", post(target, oversized(), maxAdminBody+1))
		// Undeclared length (chunked-style): caught while draining.
		check413(target+" undeclared oversize", post(target, oversized(), -1))
		check413(target+" oversized query", post(target+"?pad="+strings.Repeat("x", maxQueryBytes+1), nil, 0))
	}
	// A body at exactly the bound is accepted (rollback with an empty
	// history answers 409, proving the request got past the guards).
	rec := post("/admin/rollback", bytes.NewReader(make([]byte, maxAdminBody)), maxAdminBody)
	if rec.Code != http.StatusConflict {
		t.Fatalf("bounded body refused: %d: %s", rec.Code, rec.Body.String())
	}
}

// TestMetricsRowsAllNamed pins the observability contract for the route
// table: every endpoint row /debug/metrics emits carries a non-empty,
// unique name — adding an endpoint without naming it is a test failure,
// not a silent "unknown" row — and the row set covers the full enum.
func TestMetricsRowsAllNamed(t *testing.T) {
	snap := buildTestSnapshot(t, 0, "named")
	srv, _ := newTestServer(t, snap, Options{})
	var mp MetricsPayload
	if err := json.Unmarshal(get(t, srv, "/debug/metrics").Body.Bytes(), &mp); err != nil {
		t.Fatal(err)
	}
	if len(mp.Endpoints) != int(epCount) {
		t.Fatalf("%d endpoint rows, want %d", len(mp.Endpoints), epCount)
	}
	seen := map[string]bool{}
	for i, row := range mp.Endpoints {
		if row.Endpoint == "" {
			t.Errorf("endpoint row %d has no name", i)
		}
		if seen[row.Endpoint] {
			t.Errorf("duplicate endpoint row %q", row.Endpoint)
		}
		seen[row.Endpoint] = true
	}
	// The enum, the name table, and the route map stay in lockstep.
	if len(endpointNames) != int(epCount) {
		t.Fatalf("endpointNames has %d entries, epCount is %d", len(endpointNames), epCount)
	}
	for _, path := range []string{"/v1/snapshots", "/admin/rollback", "/debug/metrics", "/admin/reload"} {
		ep, _ := route(path)
		if ep == epUnknown {
			t.Errorf("%s does not route", path)
			continue
		}
		if !seen[endpointNames[ep]] {
			t.Errorf("%s routes to %q which has no metrics row", path, endpointNames[ep])
		}
	}
}
