package serve

// Partitioning for sharded snapshots. Every routable key — a country
// code, a tracker domain, a figure id, or the flows singleton — is
// assigned to exactly one shard by a pure hash of the key, so the
// single-key hot path can jump straight to the owning shard without
// consulting any routing table.

const (
	// MaxShards bounds the shard count a ShardSet accepts. The limit is a
	// sanity rail, not a scaling ceiling: the corpus has hundreds of keys,
	// so more shards than this only fragments the heap.
	MaxShards = 64

	// FNV-1a constants, the same hashing idiom internal/filterlist uses
	// for its reverse token index.
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	// flowsPartitionKey assigns the /v1/flows singleton payload to a shard
	// like any other key, so it participates in per-shard swaps.
	flowsPartitionKey = "/v1/flows"
)

// shardOf maps a key to its owning shard in [0, n). It is total (any
// byte sequence is a valid key), stable (a pure function of its inputs),
// and ASCII case-insensitive — "PK" and "pk" hash identically, which is
// what lets the case-tolerant country lookup route without allocating a
// folded copy. FuzzPartition is the proof obligation for all three.
func shardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		h = (h ^ uint32(c)) * fnvPrime32
	}
	return int(h % uint32(n))
}
