package serve

import (
	"net/url"
	"strings"
)

// endpoint identifies one API route. The zero value is the structured-404
// route; every request resolves to exactly one endpoint, which is also the
// per-endpoint metrics key.
type endpoint int8

const (
	epUnknown endpoint = iota
	epHealth
	epCountries
	epCountry
	epTrackers
	epTracker
	epFlows
	epFigures
	epFigure
	epSnapshots
	epMetrics
	epReload
	epRollback
	epCount
)

// endpointNames label the metrics output; indexed by endpoint. Every
// endpoint — including the snapshots/rollback admin surface — has a
// name, so /debug/metrics never shows an unnamed row
// (TestMetricsRowsAllNamed is the proof obligation).
var endpointNames = [epCount]string{
	"unknown", "healthz", "countries", "country", "trackers", "tracker",
	"flows", "figures", "figure", "snapshots", "metrics", "reload", "rollback",
}

// route resolves a request path to its endpoint and decoded argument.
// It is a total function: any input — traversal attempts, stray slashes,
// malformed percent-escapes, arbitrary bytes — resolves to epUnknown
// rather than panicking (FuzzRoutePath is the proof obligation), and the
// canonical forms resolve without allocating.
func route(path string) (endpoint, string) {
	path = trimTrailingSlashes(path)
	switch path {
	case "/healthz":
		return epHealth, ""
	case "/debug/metrics":
		return epMetrics, ""
	case "/admin/reload":
		return epReload, ""
	case "/admin/rollback":
		return epRollback, ""
	case "/v1/snapshots":
		return epSnapshots, ""
	case "/v1/countries":
		return epCountries, ""
	case "/v1/trackers":
		return epTrackers, ""
	case "/v1/flows":
		return epFlows, ""
	case "/v1/figures":
		return epFigures, ""
	}
	if rest, ok := strings.CutPrefix(path, "/v1/countries/"); ok {
		return argRoute(epCountry, rest)
	}
	if rest, ok := strings.CutPrefix(path, "/v1/trackers/"); ok {
		return argRoute(epTracker, rest)
	}
	if rest, ok := strings.CutPrefix(path, "/v1/figures/"); ok {
		return argRoute(epFigure, rest)
	}
	return epUnknown, ""
}

// argRoute validates and decodes the trailing path segment of a
// parameterized route.
func argRoute(ep endpoint, raw string) (endpoint, string) {
	arg, ok := decodeArg(raw)
	if !ok || arg == "" {
		return epUnknown, ""
	}
	return ep, arg
}

// decodeArg rejects nested segments and percent-decodes only when an
// escape is present, keeping the canonical-path fast path allocation-free.
func decodeArg(raw string) (string, bool) {
	if strings.IndexByte(raw, '/') >= 0 {
		return "", false
	}
	if strings.IndexByte(raw, '%') < 0 {
		return raw, true
	}
	dec, err := url.PathUnescape(raw)
	if err != nil || strings.IndexByte(dec, '/') >= 0 {
		return "", false
	}
	return dec, true
}

// trimTrailingSlashes drops redundant trailing slashes without copying.
func trimTrailingSlashes(p string) string {
	for len(p) > 1 && p[len(p)-1] == '/' {
		p = p[:len(p)-1]
	}
	return p
}

// lowerASCII lowercases ASCII letters, returning s unchanged (and
// unallocated) when it is already lowercase.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return strings.ToLower(s)
		}
	}
	return s
}

// upperASCII uppercases ASCII letters, returning s unchanged (and
// unallocated) when it is already uppercase.
func upperASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'a' && c <= 'z' {
			return strings.ToUpper(s)
		}
	}
	return s
}
