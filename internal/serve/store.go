package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gamma-suite/gamma/internal/sched"
)

// lookupCode classifies one backend lookup. The zero value is not-found,
// so a zero lookup is a 404.
type lookupCode int8

const (
	// lookupNotFound: the key does not exist in the live generation.
	lookupNotFound lookupCode = iota
	// lookupOK: full-fidelity payload from a healthy generation.
	lookupOK
	// lookupDegraded: a listing merged from the surviving shards only —
	// served 200 with the Gamma-Degraded header.
	lookupDegraded
	// lookupUnavailable: the owning shard's circuit is open (or no shard
	// answered a listing) — served as a structured 503 with Retry-After.
	lookupUnavailable
)

// lookup is one backend read result. It is returned by value and carries
// only preallocated slices, so the hot path stays allocation-free; the
// degraded/unavailable fields are populated only on those (cold) paths.
type lookup struct {
	pl       payload
	id       []string // X-Gamma-Snapshot header value
	degraded []string // Gamma-Degraded header value (lookupDegraded only)
	code     lookupCode

	// Degradation detail for error bodies and the Retry-After header.
	healthy    int
	total      int
	retryAfter time.Duration
}

// backend is what the Server serves from: a monolithic Store or a
// sharded ShardSet. get is the hot path and must not allocate for
// canonical-case arguments; install/rollback are the validation-gated
// swaps the admin handlers drive; historical/snapshots expose the
// history ring; info/swapCount/shardStats feed /debug/metrics.
type backend interface {
	get(ep endpoint, arg string) lookup
	install(snap *Snapshot) error
	rollback() (*Snapshot, error)
	historical(id string) (*Snapshot, bool)
	snapshots() SnapshotsPayload
	info() SnapshotInfo
	swapCount() uint64
	shardStats() []ShardStats
}

// Store publishes the live Snapshot to concurrent readers. Readers Load
// the pointer once per request and see a fully consistent view for the
// whole request; Install swaps the pointer atomically, so a reload is
// zero-downtime by construction — there is no moment when a request can
// observe a partial or absent snapshot.
type Store struct {
	cur   atomic.Pointer[Snapshot]
	swaps atomic.Uint64

	mu   sync.Mutex // serializes Install/Rollback so cur tracks the ring's newest entry
	hist snapHistory
}

// StoreOptions tunes a Store beyond the zero-config default.
type StoreOptions struct {
	// HistoryDepth is how many installed snapshots stay addressable via
	// ?snapshot=<id> and rollback; <= 0 uses DefaultHistoryDepth.
	HistoryDepth int
}

// NewStore creates a store serving snap with default options. The
// initial snapshot is held to the same validation bar as later installs.
func NewStore(snap *Snapshot) (*Store, error) {
	return NewStoreWithOptions(snap, StoreOptions{})
}

// NewStoreWithOptions creates a store serving snap.
func NewStoreWithOptions(snap *Snapshot, opts StoreOptions) (*Store, error) {
	if err := snap.validate(); err != nil {
		return nil, err
	}
	st := &Store{}
	st.cur.Store(snap)
	st.hist.init(opts.HistoryDepth, snap)
	return st, nil
}

// Load returns the live snapshot. It never returns nil: NewStore and
// Install both refuse snapshots that fail validation.
func (st *Store) Load() *Snapshot { return st.cur.Load() }

// Install validates snap and atomically swaps it in, recording the
// outgoing generation in the history ring. On validation failure the
// previous snapshot keeps serving untouched — this is the rollback half
// of the hot-reload contract.
func (st *Store) Install(snap *Snapshot) error {
	if err := snap.validate(); err != nil {
		return fmt.Errorf("install rejected, previous snapshot still serving: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.cur.Store(snap)
	st.swaps.Add(1)
	st.hist.push(snap)
	return nil
}

// Rollback restores the previously installed snapshot from the history
// ring and counts as a swap. With no predecessor left it refuses with
// errNoPredecessor and the live snapshot keeps serving.
func (st *Store) Rollback() (*Snapshot, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	prev, ok := st.hist.predecessor()
	if !ok {
		return nil, errNoPredecessor
	}
	st.cur.Store(prev)
	st.swaps.Add(1)
	st.hist.pop()
	return prev, nil
}

// Swaps reports how many snapshots have been installed after the initial
// one; rollbacks count too.
func (st *Store) Swaps() uint64 { return st.swaps.Load() }

// --- backend plumbing ---

//gamma:hotpath per-request lookup: one pointer load and a map probe
func (st *Store) get(ep endpoint, arg string) lookup {
	snap := st.Load()
	pl, ok := snap.payloadFor(ep, arg)
	if !ok {
		return lookup{}
	}
	return lookup{pl: pl, id: snap.idHeader, code: lookupOK}
}

func (st *Store) install(snap *Snapshot) error           { return st.Install(snap) }
func (st *Store) rollback() (*Snapshot, error)           { return st.Rollback() }
func (st *Store) historical(id string) (*Snapshot, bool) { return st.hist.byID(id) }
func (st *Store) snapshots() SnapshotsPayload            { return st.hist.list() }
func (st *Store) swapCount() uint64                      { return st.Swaps() }
func (st *Store) shardStats() []ShardStats               { return nil }

func (st *Store) info() SnapshotInfo {
	snap := st.Load()
	return SnapshotInfo{
		ID:        snap.meta.ID,
		BuiltAt:   snap.meta.BuiltAt,
		Countries: len(snap.codes),
		Trackers:  len(snap.domains),
	}
}

// ShardSet publishes a partitioned snapshot: N independently built,
// independently swappable Shards plus an atomically swapped merged view
// of the listing payloads. Single-key requests route straight to the
// owning shard (hash, breaker check, pointer load, map probe — zero
// allocations); listing requests serve the pre-merged scatter-gather
// result, rebuilt and re-swapped after every shard install.
//
// Every shard read goes through two fault-tolerance layers: a per-shard
// circuit breaker (sched.Breaker, driven by the injected clock) and the
// decorable shardAccess seam with a cooperative per-request load budget.
// While any breaker is non-closed, listings fall back to a deterministic
// degraded merge of the surviving shards; single-key requests whose
// owning shard is open are refused with a structured 503.
//
// Installs are per-shard atomic, not set-atomic: during a staggered
// Install, readers may observe some shards at the old generation and
// some at the new. Every individual response is still fully consistent
// with exactly one generation of the shard (or merge) that produced it —
// the same per-request consistency the monolithic Store gives, at shard
// granularity.
type ShardSet struct {
	n        int
	flowsIdx int // owner of the /v1/flows singleton, fixed by the partition

	clock  sched.Clock
	budget time.Duration // per-read shard load budget

	shards   []atomic.Pointer[Shard]
	access   []shardAccess   // decorable read seam, one per shard; fixed after construction
	breakers []sched.Breaker // one per shard; indexed by pointer, never copied
	merged   atomic.Pointer[mergedView]

	mu         sync.Mutex // serializes installs, rollbacks, and merge rebuilds
	hist       snapHistory
	memo       degradedMemo
	swaps      atomic.Uint64
	shardSwaps []atomic.Uint64
	shardHits  []atomic.Uint64
}

// ShardSetOptions tunes a ShardSet beyond the zero-config default.
type ShardSetOptions struct {
	// Clock drives the circuit breakers and the shard load budget. Nil
	// uses sched.Wall(); chaos tests inject sched.NewFakeClock.
	Clock sched.Clock
	// Breaker configures every per-shard circuit breaker; the zero value
	// selects sched's defaults (5 consecutive failures, 10s cooldown).
	Breaker sched.BreakerConfig
	// LoadBudget bounds one shard read through the access seam; <= 0
	// uses 100ms. The production seam is a single atomic load that can
	// never exceed it — the budget exists for decorated (chaos) seams
	// and any future remote shard transport.
	LoadBudget time.Duration
	// HistoryDepth is how many installed generations stay addressable
	// via ?snapshot=<id> and rollback; <= 0 uses DefaultHistoryDepth.
	HistoryDepth int
}

// NewShardSet partitions a built snapshot across n shards with default
// options. The snapshot must come from Build (it carries the structured
// corpus view the partitioner consumes); n must be in [1, MaxShards].
func NewShardSet(snap *Snapshot, n int) (*ShardSet, error) {
	return NewShardSetWithOptions(snap, n, ShardSetOptions{})
}

// NewShardSetWithOptions partitions a built snapshot across n shards.
func NewShardSetWithOptions(snap *Snapshot, n int, opts ShardSetOptions) (*ShardSet, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("serve: shard count %d outside [1, %d]", n, MaxShards)
	}
	clock := opts.Clock
	if clock == nil {
		clock = sched.Wall()
	}
	budget := opts.LoadBudget
	if budget <= 0 {
		budget = 100 * time.Millisecond
	}
	ss := &ShardSet{
		n:          n,
		flowsIdx:   shardOf(flowsPartitionKey, n),
		clock:      clock,
		budget:     budget,
		shards:     make([]atomic.Pointer[Shard], n),
		access:     make([]shardAccess, n),
		breakers:   make([]sched.Breaker, n),
		shardSwaps: make([]atomic.Uint64, n),
		shardHits:  make([]atomic.Uint64, n),
	}
	for i := range ss.access {
		ss.access[i] = directAccess{ss: ss, i: i}
		ss.breakers[i].Configure(opts.Breaker)
	}
	shards, merged, err := ss.buildAll(snap)
	if err != nil {
		return nil, err
	}
	for i := range shards {
		ss.shards[i].Store(shards[i])
	}
	ss.merged.Store(merged)
	ss.hist.init(opts.HistoryDepth, snap)
	return ss, nil
}

// setAccess swaps shard i's access seam for a decorated one. It is a
// construction-time hook for the chaos harness — call it before the set
// sees traffic; mid-run fault-regime changes go through the decorator's
// own (atomic) controls.
func (ss *ShardSet) setAccess(i int, a shardAccess) { ss.access[i] = a }

// buildAll partitions snap into a full candidate generation — every
// shard built and validated, the merged view encoded — without touching
// any live pointer. An error here therefore rolls back for free: nothing
// was installed.
func (ss *ShardSet) buildAll(snap *Snapshot) ([]*Shard, *mergedView, error) {
	if snap == nil || snap.view == nil {
		return nil, nil, fmt.Errorf("serve: sharding requires a Build-produced snapshot")
	}
	if err := snap.validate(); err != nil {
		return nil, nil, err
	}
	shards := make([]*Shard, ss.n)
	for i := range shards {
		sh, err := buildShard(snap.view, i, ss.n)
		if err == nil {
			err = sh.validate()
		}
		if err != nil {
			return nil, nil, err
		}
		shards[i] = sh
	}
	merged, err := buildMergedView(shards, snap.meta)
	if err != nil {
		return nil, nil, err
	}
	return shards, merged, nil
}

// Shards reports the shard count.
func (ss *ShardSet) Shards() int { return ss.n }

// Meta returns the provenance label of the newest installed generation.
func (ss *ShardSet) Meta() Meta { return ss.merged.Load().meta }

// Swaps reports how many full generations have been installed after the
// initial one; rollbacks count too. Per-shard swap counts are exposed
// via /debug/metrics.
func (ss *ShardSet) Swaps() uint64 { return ss.swaps.Load() }

// Install partitions snap and installs it as the new generation, one
// shard at a time, then records it in the history ring. The whole
// candidate generation is built and validated before any pointer moves,
// so a bad snapshot rolls back without a trace; the per-shard swaps are
// staggered deliberately — readers keep being served throughout, each
// response consistent with one generation of its shard.
func (ss *ShardSet) Install(snap *Snapshot) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	shards, merged, err := ss.buildAll(snap)
	if err != nil {
		return fmt.Errorf("install rejected, previous shards still serving: %w", err)
	}
	for i := range shards {
		ss.shards[i].Store(shards[i])
		ss.shardSwaps[i].Add(1)
	}
	ss.merged.Store(merged)
	ss.swaps.Add(1)
	ss.hist.push(snap)
	return nil
}

// Rollback re-partitions the previously installed snapshot from the
// history ring and installs it, counting as a swap. The candidate is
// fully rebuilt and validated before any pointer moves and the history
// entry is only consumed once the restore is committed, so a failed
// rollback leaves both the live generation and the ring untouched.
func (ss *ShardSet) Rollback() (*Snapshot, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	prev, ok := ss.hist.predecessor()
	if !ok {
		return nil, errNoPredecessor
	}
	shards, merged, err := ss.buildAll(prev)
	if err != nil {
		return nil, fmt.Errorf("rollback rejected, current generation still serving: %w", err)
	}
	for i := range shards {
		ss.shards[i].Store(shards[i])
		ss.shardSwaps[i].Add(1)
	}
	ss.merged.Store(merged)
	ss.swaps.Add(1)
	ss.hist.pop()
	return prev, nil
}

// InstallShard rebuilds and swaps a single shard from snap, then
// re-merges the listings against the other shards' current generations.
// This is the staggered-rollout primitive: a caller can walk a new
// corpus across the set shard by shard, serving a mixed-generation view
// that is per-shard consistent at every step. Partial generations are
// not rollback points, so InstallShard does not touch the history ring.
func (ss *ShardSet) InstallShard(snap *Snapshot, i int) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if i < 0 || i >= ss.n {
		return fmt.Errorf("serve: shard index %d outside [0, %d)", i, ss.n)
	}
	if snap == nil || snap.view == nil {
		return fmt.Errorf("serve: sharding requires a Build-produced snapshot")
	}
	if err := snap.validate(); err != nil {
		return fmt.Errorf("shard %d install rejected, previous shard still serving: %w", i, err)
	}
	sh, err := buildShard(snap.view, i, ss.n)
	if err == nil {
		err = sh.validate()
	}
	if err != nil {
		return fmt.Errorf("shard %d install rejected, previous shard still serving: %w", i, err)
	}
	cur := make([]*Shard, ss.n)
	for j := range cur {
		cur[j] = ss.shards[j].Load()
	}
	cur[i] = sh
	merged, err := buildMergedView(cur, snap.meta)
	if err != nil {
		return fmt.Errorf("shard %d install rejected, previous shard still serving: %w", i, err)
	}
	ss.shards[i].Store(sh)
	ss.shardSwaps[i].Add(1)
	ss.merged.Store(merged)
	return nil
}

// Body resolves a request path to its precomputed response body through
// the same router and scatter-gather lookup the HTTP server uses.
// Degraded listings resolve too — Body answers "what bytes would this
// path serve", whatever the fidelity. The returned slice is a shard's
// own buffer; callers must not mutate it.
func (ss *ShardSet) Body(path string) ([]byte, bool) {
	ep, arg := route(path)
	lk := ss.get(ep, arg)
	if lk.code != lookupOK && lk.code != lookupDegraded {
		return nil, false
	}
	return lk.pl.body, true
}

// Endpoints enumerates every GET path the set serves, sorted — the same
// list the equivalent monolithic snapshot enumerates.
func (ss *ShardSet) Endpoints() []string {
	out := []string{"/v1/countries", "/v1/trackers", "/v1/flows", "/v1/figures"}
	for i := range ss.shards {
		sh := ss.shards[i].Load()
		for _, cc := range sh.codes {
			out = append(out, "/v1/countries/"+lowerASCII(cc))
		}
		for _, domain := range sh.domains {
			out = append(out, "/v1/trackers/"+domain)
		}
		for _, id := range sh.figIDs {
			out = append(out, "/v1/figures/"+id)
		}
	}
	sort.Strings(out)
	return out
}

// --- backend plumbing ---

// allClosed reports whether every shard's circuit is closed — the
// listing fast-path predicate. One atomic state load per shard, no
// clock reads, no allocation.
//
//gamma:hotpath listing fast path scans n breaker state words
func (ss *ShardSet) allClosed() bool {
	for i := range ss.breakers {
		if ss.breakers[i].State() != sched.BreakerClosed {
			return false
		}
	}
	return true
}

// acquireShard is the guarded shard read every keyed lookup and every
// degraded-merge probe goes through: breaker admission, then the access
// seam under the load budget, with the outcome fed back to the breaker.
// The healthy path is an atomic state load, an atomic pointer load, and
// an elided success write — no clock reads, no allocation.
//
//gamma:hotpath guarded shard read on every single-key lookup
func (ss *ShardSet) acquireShard(i int) (*Shard, lookup) {
	ss.shardHits[i].Add(1)
	br := &ss.breakers[i]
	ok, retry := br.Allow(ss.clock)
	if !ok {
		return nil, lookup{code: lookupUnavailable, retryAfter: retry}
	}
	sh, err := ss.access[i].load(ss.clock, ss.budget)
	if err != nil || sh == nil {
		br.Failure(ss.clock)
		return nil, lookup{code: lookupUnavailable}
	}
	br.Success()
	return sh, lookup{code: lookupOK}
}

// degradedListing is the listing slow path, taken only while at least
// one breaker is non-closed: probe every shard through its breaker and
// seam, then serve the deterministic merge of the survivors. All shards
// answering means the set healed mid-flight — serve the premerged view,
// byte-identical to the healthy path. No shard answering is a 503.
//
//gamma:coldpath degraded scatter-gather re-merges surviving shards; only runs while a breaker is non-closed
func (ss *ShardSet) degradedListing(ep endpoint, m *mergedView) lookup {
	alive := make([]*Shard, ss.n)
	healthy := 0
	var retry time.Duration
	for i := 0; i < ss.n; i++ {
		sh, lk := ss.acquireShard(i)
		if lk.code == lookupOK {
			alive[i] = sh
			healthy++
		} else if lk.retryAfter > retry {
			retry = lk.retryAfter
		}
	}
	if healthy == ss.n {
		return ss.listingFrom(ep, m)
	}
	if healthy == 0 {
		return lookup{code: lookupUnavailable, healthy: 0, total: ss.n, retryAfter: retry}
	}
	dv, err := ss.memo.view(alive, m.meta)
	if err != nil {
		return lookup{code: lookupUnavailable, healthy: healthy, total: ss.n, retryAfter: retry}
	}
	lk := lookup{id: dv.idHeader, degraded: dv.header, code: lookupDegraded, healthy: healthy, total: ss.n}
	switch ep {
	case epCountries:
		lk.pl = dv.listings.countries
	case epTrackers:
		lk.pl = dv.listings.trackers
	default: // epFigures
		lk.pl = dv.listings.figIndex
	}
	return lk
}

// listingFrom serves one listing payload from the premerged view.
//
//gamma:hotpath listing emission is a field select on the premerged view
func (ss *ShardSet) listingFrom(ep endpoint, m *mergedView) lookup {
	switch ep {
	case epCountries:
		return lookup{pl: m.countries, id: m.idHeader, code: lookupOK}
	case epTrackers:
		return lookup{pl: m.trackers, id: m.idHeader, code: lookupOK}
	default: // epFigures
		return lookup{pl: m.figIndex, id: m.idHeader, code: lookupOK}
	}
}

// get routes one lookup. Listings come from the premerged view while
// every circuit is closed and from the degraded merge otherwise;
// single-key lookups hash the argument to its owning shard and probe
// there through the breaker and access seam, using the same dual-case
// strategy as the monolithic snapshot so canonical arguments resolve
// without allocating.
//
//gamma:hotpath per-request scatter-gather lookup: hash, breaker check, pointer load, probe
func (ss *ShardSet) get(ep endpoint, arg string) lookup {
	m := ss.merged.Load()
	switch ep {
	case epCountries, epTrackers, epFigures:
		if ss.allClosed() {
			return ss.listingFrom(ep, m)
		}
		return ss.degradedListing(ep, m)
	case epFlows:
		sh, lk := ss.acquireShard(ss.flowsIdx)
		if lk.code != lookupOK {
			return lk
		}
		if !sh.hasFlows {
			return lookup{}
		}
		return lookup{pl: sh.flows, id: m.idHeader, code: lookupOK}
	case epCountry:
		sh, lk := ss.acquireShard(shardOf(arg, ss.n))
		if lk.code != lookupOK {
			return lk
		}
		if pl, ok := sh.country[arg]; ok {
			return lookup{pl: pl, id: m.idHeader, code: lookupOK}
		}
		if pl, ok := sh.country[upperASCII(arg)]; ok {
			return lookup{pl: pl, id: m.idHeader, code: lookupOK}
		}
		return lookup{}
	case epTracker:
		sh, lk := ss.acquireShard(shardOf(arg, ss.n))
		if lk.code != lookupOK {
			return lk
		}
		if pl, ok := sh.tracker[arg]; ok {
			return lookup{pl: pl, id: m.idHeader, code: lookupOK}
		}
		if pl, ok := sh.tracker[lowerASCII(arg)]; ok {
			return lookup{pl: pl, id: m.idHeader, code: lookupOK}
		}
		return lookup{}
	case epFigure:
		sh, lk := ss.acquireShard(shardOf(arg, ss.n))
		if lk.code != lookupOK {
			return lk
		}
		if pl, ok := sh.figure[arg]; ok {
			return lookup{pl: pl, id: m.idHeader, code: lookupOK}
		}
		return lookup{}
	default:
		return lookup{}
	}
}

func (ss *ShardSet) install(snap *Snapshot) error           { return ss.Install(snap) }
func (ss *ShardSet) rollback() (*Snapshot, error)           { return ss.Rollback() }
func (ss *ShardSet) historical(id string) (*Snapshot, bool) { return ss.hist.byID(id) }
func (ss *ShardSet) snapshots() SnapshotsPayload            { return ss.hist.list() }
func (ss *ShardSet) swapCount() uint64                      { return ss.Swaps() }

func (ss *ShardSet) info() SnapshotInfo {
	m := ss.merged.Load()
	return SnapshotInfo{
		ID:        m.meta.ID,
		BuiltAt:   m.meta.BuiltAt,
		Countries: m.nCountries,
		Trackers:  m.nTrackers,
	}
}

// shardStats materializes the per-shard counters for /debug/metrics.
func (ss *ShardSet) shardStats() []ShardStats {
	out := make([]ShardStats, ss.n)
	for i := range out {
		sh := ss.shards[i].Load()
		br := &ss.breakers[i]
		out[i] = ShardStats{
			Shard:     i,
			Countries: len(sh.codes),
			Trackers:  len(sh.domains),
			Figures:   len(sh.figIDs),
			Flows:     sh.hasFlows,
			Breaker:   br.State().String(),
			Trips:     br.Trips(),
			Swaps:     ss.shardSwaps[i].Load(),
			Requests:  ss.shardHits[i].Load(),
		}
	}
	return out
}
