package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// backend is what the Server serves from: a monolithic Store or a
// sharded ShardSet. get is the hot path and must not allocate for
// canonical-case arguments; install is the validation-gated swap the
// reload handler drives; info/swapCount/shardStats feed /debug/metrics.
type backend interface {
	get(ep endpoint, arg string) (payload, []string, bool)
	install(snap *Snapshot) error
	info() SnapshotInfo
	swapCount() uint64
	shardStats() []ShardStats
}

// Store publishes the live Snapshot to concurrent readers. Readers Load
// the pointer once per request and see a fully consistent view for the
// whole request; Install swaps the pointer atomically, so a reload is
// zero-downtime by construction — there is no moment when a request can
// observe a partial or absent snapshot.
type Store struct {
	cur   atomic.Pointer[Snapshot]
	swaps atomic.Uint64
}

// NewStore creates a store serving snap. The initial snapshot is held to
// the same validation bar as later installs.
func NewStore(snap *Snapshot) (*Store, error) {
	if err := snap.validate(); err != nil {
		return nil, err
	}
	st := &Store{}
	st.cur.Store(snap)
	return st, nil
}

// Load returns the live snapshot. It never returns nil: NewStore and
// Install both refuse snapshots that fail validation.
func (st *Store) Load() *Snapshot { return st.cur.Load() }

// Install validates snap and atomically swaps it in. On validation
// failure the previous snapshot keeps serving untouched — this is the
// rollback half of the hot-reload contract.
func (st *Store) Install(snap *Snapshot) error {
	if err := snap.validate(); err != nil {
		return fmt.Errorf("install rejected, previous snapshot still serving: %w", err)
	}
	st.cur.Store(snap)
	st.swaps.Add(1)
	return nil
}

// Swaps reports how many snapshots have been installed after the initial
// one.
func (st *Store) Swaps() uint64 { return st.swaps.Load() }

// --- backend plumbing ---

//gamma:hotpath per-request lookup: one pointer load and a map probe
func (st *Store) get(ep endpoint, arg string) (payload, []string, bool) {
	snap := st.Load()
	pl, ok := snap.payloadFor(ep, arg)
	return pl, snap.idHeader, ok
}

func (st *Store) install(snap *Snapshot) error { return st.Install(snap) }
func (st *Store) swapCount() uint64            { return st.Swaps() }
func (st *Store) shardStats() []ShardStats     { return nil }

func (st *Store) info() SnapshotInfo {
	snap := st.Load()
	return SnapshotInfo{
		ID:        snap.meta.ID,
		BuiltAt:   snap.meta.BuiltAt,
		Countries: len(snap.codes),
		Trackers:  len(snap.domains),
	}
}

// ShardSet publishes a partitioned snapshot: N independently built,
// independently swappable Shards plus an atomically swapped merged view
// of the listing payloads. Single-key requests route straight to the
// owning shard (hash, pointer load, map probe — zero allocations);
// listing requests serve the pre-merged scatter-gather result, rebuilt
// and re-swapped after every shard install.
//
// Installs are per-shard atomic, not set-atomic: during a staggered
// Install, readers may observe some shards at the old generation and
// some at the new. Every individual response is still fully consistent
// with exactly one generation of the shard (or merge) that produced it —
// the same per-request consistency the monolithic Store gives, at shard
// granularity.
type ShardSet struct {
	n        int
	flowsIdx int // owner of the /v1/flows singleton, fixed by the partition

	shards []atomic.Pointer[Shard]
	merged atomic.Pointer[mergedView]

	mu         sync.Mutex // serializes installs and merge rebuilds
	swaps      atomic.Uint64
	shardSwaps []atomic.Uint64
	shardHits  []atomic.Uint64
}

// NewShardSet partitions a built snapshot across n shards. The snapshot
// must come from Build (it carries the structured corpus view the
// partitioner consumes); n must be in [1, MaxShards].
func NewShardSet(snap *Snapshot, n int) (*ShardSet, error) {
	if n < 1 || n > MaxShards {
		return nil, fmt.Errorf("serve: shard count %d outside [1, %d]", n, MaxShards)
	}
	ss := &ShardSet{
		n:          n,
		flowsIdx:   shardOf(flowsPartitionKey, n),
		shards:     make([]atomic.Pointer[Shard], n),
		shardSwaps: make([]atomic.Uint64, n),
		shardHits:  make([]atomic.Uint64, n),
	}
	shards, merged, err := ss.buildAll(snap)
	if err != nil {
		return nil, err
	}
	for i := range shards {
		ss.shards[i].Store(shards[i])
	}
	ss.merged.Store(merged)
	return ss, nil
}

// buildAll partitions snap into a full candidate generation — every
// shard built and validated, the merged view encoded — without touching
// any live pointer. An error here therefore rolls back for free: nothing
// was installed.
func (ss *ShardSet) buildAll(snap *Snapshot) ([]*Shard, *mergedView, error) {
	if snap == nil || snap.view == nil {
		return nil, nil, fmt.Errorf("serve: sharding requires a Build-produced snapshot")
	}
	if err := snap.validate(); err != nil {
		return nil, nil, err
	}
	shards := make([]*Shard, ss.n)
	for i := range shards {
		sh, err := buildShard(snap.view, i, ss.n)
		if err == nil {
			err = sh.validate()
		}
		if err != nil {
			return nil, nil, err
		}
		shards[i] = sh
	}
	merged, err := buildMergedView(shards, snap.meta)
	if err != nil {
		return nil, nil, err
	}
	return shards, merged, nil
}

// Shards reports the shard count.
func (ss *ShardSet) Shards() int { return ss.n }

// Meta returns the provenance label of the newest installed generation.
func (ss *ShardSet) Meta() Meta { return ss.merged.Load().meta }

// Swaps reports how many full generations have been installed after the
// initial one. Per-shard swap counts are exposed via /debug/metrics.
func (ss *ShardSet) Swaps() uint64 { return ss.swaps.Load() }

// Install partitions snap and installs it as the new generation, one
// shard at a time. The whole candidate generation is built and validated
// before any pointer moves, so a bad snapshot rolls back without a
// trace; the per-shard swaps are staggered deliberately — readers keep
// being served throughout, each response consistent with one generation
// of its shard.
func (ss *ShardSet) Install(snap *Snapshot) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	shards, merged, err := ss.buildAll(snap)
	if err != nil {
		return fmt.Errorf("install rejected, previous shards still serving: %w", err)
	}
	for i := range shards {
		ss.shards[i].Store(shards[i])
		ss.shardSwaps[i].Add(1)
	}
	ss.merged.Store(merged)
	ss.swaps.Add(1)
	return nil
}

// InstallShard rebuilds and swaps a single shard from snap, then
// re-merges the listings against the other shards' current generations.
// This is the staggered-rollout primitive: a caller can walk a new
// corpus across the set shard by shard, serving a mixed-generation view
// that is per-shard consistent at every step.
func (ss *ShardSet) InstallShard(snap *Snapshot, i int) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if i < 0 || i >= ss.n {
		return fmt.Errorf("serve: shard index %d outside [0, %d)", i, ss.n)
	}
	if snap == nil || snap.view == nil {
		return fmt.Errorf("serve: sharding requires a Build-produced snapshot")
	}
	if err := snap.validate(); err != nil {
		return fmt.Errorf("shard %d install rejected, previous shard still serving: %w", i, err)
	}
	sh, err := buildShard(snap.view, i, ss.n)
	if err == nil {
		err = sh.validate()
	}
	if err != nil {
		return fmt.Errorf("shard %d install rejected, previous shard still serving: %w", i, err)
	}
	cur := make([]*Shard, ss.n)
	for j := range cur {
		cur[j] = ss.shards[j].Load()
	}
	cur[i] = sh
	merged, err := buildMergedView(cur, snap.meta)
	if err != nil {
		return fmt.Errorf("shard %d install rejected, previous shard still serving: %w", i, err)
	}
	ss.shards[i].Store(sh)
	ss.shardSwaps[i].Add(1)
	ss.merged.Store(merged)
	return nil
}

// Body resolves a request path to its precomputed response body through
// the same router and scatter-gather lookup the HTTP server uses. The
// returned slice is a shard's own buffer; callers must not mutate it.
func (ss *ShardSet) Body(path string) ([]byte, bool) {
	ep, arg := route(path)
	pl, _, ok := ss.get(ep, arg)
	if !ok {
		return nil, false
	}
	return pl.body, true
}

// Endpoints enumerates every GET path the set serves, sorted — the same
// list the equivalent monolithic snapshot enumerates.
func (ss *ShardSet) Endpoints() []string {
	out := []string{"/v1/countries", "/v1/trackers", "/v1/flows", "/v1/figures"}
	for i := range ss.shards {
		sh := ss.shards[i].Load()
		for _, cc := range sh.codes {
			out = append(out, "/v1/countries/"+lowerASCII(cc))
		}
		for _, domain := range sh.domains {
			out = append(out, "/v1/trackers/"+domain)
		}
		for _, id := range sh.figIDs {
			out = append(out, "/v1/figures/"+id)
		}
	}
	sort.Strings(out)
	return out
}

// --- backend plumbing ---

// get routes one lookup. Listings come from the merged view; single-key
// lookups hash the argument to its owning shard and probe there, using
// the same dual-case strategy as the monolithic snapshot so canonical
// arguments resolve without allocating.
//
//gamma:hotpath per-request scatter-gather lookup: hash, pointer load, probe
func (ss *ShardSet) get(ep endpoint, arg string) (payload, []string, bool) {
	m := ss.merged.Load()
	switch ep {
	case epCountries:
		return m.countries, m.idHeader, true
	case epTrackers:
		return m.trackers, m.idHeader, true
	case epFigures:
		return m.figIndex, m.idHeader, true
	case epFlows:
		ss.shardHits[ss.flowsIdx].Add(1)
		sh := ss.shards[ss.flowsIdx].Load()
		if !sh.hasFlows {
			return payload{}, nil, false
		}
		return sh.flows, m.idHeader, true
	case epCountry:
		i := shardOf(arg, ss.n)
		ss.shardHits[i].Add(1)
		sh := ss.shards[i].Load()
		if pl, ok := sh.country[arg]; ok {
			return pl, m.idHeader, true
		}
		pl, ok := sh.country[upperASCII(arg)]
		return pl, m.idHeader, ok
	case epTracker:
		i := shardOf(arg, ss.n)
		ss.shardHits[i].Add(1)
		sh := ss.shards[i].Load()
		if pl, ok := sh.tracker[arg]; ok {
			return pl, m.idHeader, true
		}
		pl, ok := sh.tracker[lowerASCII(arg)]
		return pl, m.idHeader, ok
	case epFigure:
		i := shardOf(arg, ss.n)
		ss.shardHits[i].Add(1)
		pl, ok := ss.shards[i].Load().figure[arg]
		return pl, m.idHeader, ok
	default:
		return payload{}, nil, false
	}
}

func (ss *ShardSet) install(snap *Snapshot) error { return ss.Install(snap) }
func (ss *ShardSet) swapCount() uint64            { return ss.Swaps() }

func (ss *ShardSet) info() SnapshotInfo {
	m := ss.merged.Load()
	return SnapshotInfo{
		ID:        m.meta.ID,
		BuiltAt:   m.meta.BuiltAt,
		Countries: m.nCountries,
		Trackers:  m.nTrackers,
	}
}

// shardStats materializes the per-shard counters for /debug/metrics.
func (ss *ShardSet) shardStats() []ShardStats {
	out := make([]ShardStats, ss.n)
	for i := range out {
		sh := ss.shards[i].Load()
		out[i] = ShardStats{
			Shard:     i,
			Countries: len(sh.codes),
			Trackers:  len(sh.domains),
			Figures:   len(sh.figIDs),
			Flows:     sh.hasFlows,
			Swaps:     ss.shardSwaps[i].Load(),
			Requests:  ss.shardHits[i].Load(),
		}
	}
	return out
}
