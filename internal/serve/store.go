package serve

import (
	"fmt"
	"sync/atomic"
)

// Store publishes the live Snapshot to concurrent readers. Readers Load
// the pointer once per request and see a fully consistent view for the
// whole request; Install swaps the pointer atomically, so a reload is
// zero-downtime by construction — there is no moment when a request can
// observe a partial or absent snapshot.
type Store struct {
	cur   atomic.Pointer[Snapshot]
	swaps atomic.Uint64
}

// NewStore creates a store serving snap. The initial snapshot is held to
// the same validation bar as later installs.
func NewStore(snap *Snapshot) (*Store, error) {
	if err := snap.validate(); err != nil {
		return nil, err
	}
	st := &Store{}
	st.cur.Store(snap)
	return st, nil
}

// Load returns the live snapshot. It never returns nil: NewStore and
// Install both refuse snapshots that fail validation.
func (st *Store) Load() *Snapshot { return st.cur.Load() }

// Install validates snap and atomically swaps it in. On validation
// failure the previous snapshot keeps serving untouched — this is the
// rollback half of the hot-reload contract.
func (st *Store) Install(snap *Snapshot) error {
	if err := snap.validate(); err != nil {
		return fmt.Errorf("install rejected, previous snapshot still serving: %w", err)
	}
	st.cur.Store(snap)
	st.swaps.Add(1)
	return nil
}

// Swaps reports how many snapshots have been installed after the initial
// one.
func (st *Store) Swaps() uint64 { return st.swaps.Load() }
