package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/sched"
)

// BenchmarkServeQueries measures the steady-state hot path: route →
// admission → snapshot load → precomputed payload write, with a reused
// writer so the numbers are the handler's own (0 allocs/op is the
// contract pinned by TestHotEndpointsZeroAllocs).
func BenchmarkServeQueries(b *testing.B) {
	snap := buildTestSnapshot(b, 0, "bench")
	st, err := NewStore(snap)
	if err != nil {
		b.Fatal(err)
	}
	srv := New(st, Options{Clock: sched.NewFakeClock(time.Unix(1700000000, 0))})
	for _, path := range []string{
		"/v1/countries",
		"/v1/countries/aa",
		"/v1/trackers/ads.tracker-x.example",
		"/v1/flows",
		"/v1/figures/fig5",
	} {
		b.Run(path, func(b *testing.B) {
			w := &nopResponseWriter{h: make(http.Header)}
			r := httptest.NewRequest(http.MethodGet, path, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.ServeHTTP(w, r)
			}
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		})
	}
	b.Run("parallel/v1/flows", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			w := &nopResponseWriter{h: make(http.Header)}
			r := httptest.NewRequest(http.MethodGet, "/v1/flows", nil)
			for pb.Next() {
				srv.ServeHTTP(w, r)
			}
		})
	})
}

// BenchmarkServeQueriesSharded measures the same hot paths through a
// ShardSet at representative shard counts. Single-key routes add one
// FNV hash and an extra pointer load over the monolith; listings serve
// the pre-merged view, so their cost must not scale with shard count.
func BenchmarkServeQueriesSharded(b *testing.B) {
	snap := buildTestSnapshot(b, 0, "bench")
	for _, n := range []int{1, 4} {
		set, err := NewShardSet(snap, n)
		if err != nil {
			b.Fatal(err)
		}
		srv := NewSharded(set, Options{Clock: sched.NewFakeClock(time.Unix(1700000000, 0))})
		for _, path := range []string{
			"/v1/countries",
			"/v1/countries/aa",
			"/v1/trackers/ads.tracker-x.example",
			"/v1/flows",
			"/v1/figures/fig5",
		} {
			b.Run(fmt.Sprintf("shards=%d%s", n, path), func(b *testing.B) {
				w := &nopResponseWriter{h: make(http.Header)}
				r := httptest.NewRequest(http.MethodGet, path, nil)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					srv.ServeHTTP(w, r)
				}
				if w.status != http.StatusOK {
					b.Fatalf("status %d", w.status)
				}
			})
		}
	}
}

// BenchmarkSnapshotBuild measures the cold path a reload pays: indexing
// and encoding every payload from an analyzed corpus.
func BenchmarkSnapshotBuild(b *testing.B) {
	res := makeResult(0)
	reg := testRegistry(b)
	policies := map[string]analysis.PolicyInfo{"AA": {Type: "CS", Enacted: true}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(res, reg, policies, Meta{ID: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwapUnderLoad measures Install while readers are hammering the
// store — the cost a live reload imposes on in-flight traffic.
func BenchmarkSwapUnderLoad(b *testing.B) {
	snapA := buildTestSnapshot(b, 0, "A")
	snapB := buildTestSnapshot(b, 1, "B")
	st, err := NewStore(snapA)
	if err != nil {
		b.Fatal(err)
	}
	srv := New(st, Options{Clock: sched.NewFakeClock(time.Unix(1700000000, 0))})
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < 4; i++ {
		go func() {
			w := &nopResponseWriter{h: make(http.Header)}
			r := httptest.NewRequest(http.MethodGet, "/v1/countries", nil)
			for {
				select {
				case <-stop:
					return
				default:
					srv.ServeHTTP(w, r)
				}
			}
		}()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := snapA
		if i%2 == 0 {
			next = snapB
		}
		if err := st.Install(next); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScatterGatherDegraded measures the degraded listing path: one
// shard's circuit held open, so every listing request re-probes the set,
// hits the memoized surviving-shards merge, and writes the marked
// response. This is the cold path by design — the number to watch is
// that it stays within an order of magnitude of the healthy premerged
// serve, since a degraded cluster still has to ride out its load.
func BenchmarkScatterGatherDegraded(b *testing.B) {
	snap := buildTestSnapshot(b, 0, "bench")
	clock := sched.NewFakeClock(time.Unix(1700000000, 0))
	set, err := NewShardSetWithOptions(snap, 4, ShardSetOptions{
		Clock:   clock,
		Breaker: sched.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour},
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewSharded(set, Options{Clock: clock})
	(&set.breakers[shardOf("AA", 4)]).Failure(clock)
	for _, path := range []string{"/v1/countries", "/v1/trackers", "/v1/figures"} {
		b.Run(path, func(b *testing.B) {
			w := &nopResponseWriter{h: make(http.Header)}
			r := httptest.NewRequest(http.MethodGet, path, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.ServeHTTP(w, r)
			}
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		})
	}
}
