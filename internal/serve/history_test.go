package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/sched"
)

// historyBackend abstracts the two production backends so every history
// assertion runs against both: the monolithic Store and the ShardSet.
type historyBackend interface {
	backend
	Install(*Snapshot) error
	Rollback() (*Snapshot, error)
	Swaps() uint64
}

// historyHarness builds (server, backend) pairs for both backends at a
// given history depth, on the shared fake clock the serve tests use.
func historyHarness(t *testing.T, snap *Snapshot, depth int) map[string]struct {
	srv  *Server
	back historyBackend
} {
	t.Helper()
	clock := sched.NewFakeClock(time.Unix(1700000000, 0))
	st, err := NewStoreWithOptions(snap, StoreOptions{HistoryDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewShardSetWithOptions(snap, 4, ShardSetOptions{Clock: clock, HistoryDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]struct {
		srv  *Server
		back historyBackend
	}{
		"monolithic": {New(st, Options{Clock: clock}), st},
		"sharded":    {NewSharded(set, Options{Clock: clock}), set},
	}
}

// TestHistoryRingEvictsOldestAtDepth: the retention ring holds exactly
// -history generations; installing past the depth silently drops the
// oldest, whose ?snapshot= address stops resolving with a structured 404.
func TestHistoryRingEvictsOldestAtDepth(t *testing.T) {
	gens := []*Snapshot{
		buildTestSnapshot(t, 0, "gen-0"),
		buildTestSnapshot(t, 1, "gen-1"),
		buildTestSnapshot(t, 0, "gen-2"),
	}
	for name, h := range historyHarness(t, gens[0], 2) {
		t.Run(name, func(t *testing.T) {
			for _, g := range gens[1:] {
				if err := h.back.Install(g); err != nil {
					t.Fatal(err)
				}
			}
			var sp SnapshotsPayload
			if err := json.Unmarshal(get(t, h.srv, "/v1/snapshots").Body.Bytes(), &sp); err != nil {
				t.Fatal(err)
			}
			if sp.Count != 2 || sp.Depth != 2 || len(sp.Snapshots) != 2 {
				t.Fatalf("after 3 installs at depth 2: %+v", sp)
			}
			// Newest first, live flagged on the head only.
			if sp.Snapshots[0].ID != "gen-2" || !sp.Snapshots[0].Live {
				t.Fatalf("head row: %+v", sp.Snapshots[0])
			}
			if sp.Snapshots[1].ID != "gen-1" || sp.Snapshots[1].Live {
				t.Fatalf("second row: %+v", sp.Snapshots[1])
			}
			// The retained predecessor time-travels; the evicted one 404s.
			rec := get(t, h.srv, "/v1/countries?snapshot=gen-1")
			want, _ := gens[1].Body("/v1/countries")
			if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), want) {
				t.Fatalf("retained generation: GET = %d", rec.Code)
			}
			rec = get(t, h.srv, "/v1/countries?snapshot=gen-0")
			if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "not in history") {
				t.Fatalf("evicted generation: GET = %d: %s", rec.Code, rec.Body.String())
			}
		})
	}
}

// TestHistoryTimeTravelReads pins the ?snapshot= read contract: every
// endpoint of a retained generation serves its original bytes with its
// original ETag (conditional requests included), unknown ids 404,
// malformed queries 400, and non-snapshot parameters fall through to the
// live generation untouched.
func TestHistoryTimeTravelReads(t *testing.T) {
	snapA := buildTestSnapshot(t, 0, "hist-a")
	snapB := buildTestSnapshot(t, 1, "hist-b")
	for name, h := range historyHarness(t, snapA, DefaultHistoryDepth) {
		t.Run(name, func(t *testing.T) {
			if err := h.back.Install(snapB); err != nil {
				t.Fatal(err)
			}
			for _, path := range snapA.Endpoints() {
				rec := get(t, h.srv, path+"?snapshot=hist-a")
				want, _ := snapA.Body(path)
				if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), want) {
					t.Fatalf("historical GET %s = %d or wrong bytes", path, rec.Code)
				}
				live := get(t, h.srv, path)
				wantLive, _ := snapB.Body(path)
				if !bytes.Equal(live.Body.Bytes(), wantLive) {
					t.Fatalf("live GET %s does not serve the installed generation", path)
				}
			}
			// Conditional requests revalidate against the historical tag.
			rec := get(t, h.srv, "/v1/countries?snapshot=hist-a")
			req := httptest.NewRequest(http.MethodGet, "/v1/countries?snapshot=hist-a", nil)
			req.Header.Set("If-None-Match", rec.Header().Get("Etag"))
			cond := httptest.NewRecorder()
			h.srv.ServeHTTP(cond, req)
			if cond.Code != http.StatusNotModified {
				t.Fatalf("historical conditional GET = %d, want 304", cond.Code)
			}
			// The live id resolves through the same parameter.
			liveByID := get(t, h.srv, "/v1/countries?snapshot=hist-b")
			wantB, _ := snapB.Body("/v1/countries")
			if liveByID.Code != http.StatusOK || !bytes.Equal(liveByID.Body.Bytes(), wantB) {
				t.Fatalf("live-by-id GET = %d", liveByID.Code)
			}
			if rec := get(t, h.srv, "/v1/countries?snapshot=never-installed"); rec.Code != http.StatusNotFound {
				t.Fatalf("unknown snapshot id = %d, want 404", rec.Code)
			}
			if rec := get(t, h.srv, "/v1/countries?snapshot=%zz"); rec.Code != http.StatusBadRequest {
				t.Fatalf("malformed query = %d, want 400", rec.Code)
			}
			rec2 := get(t, h.srv, "/v1/countries?unrelated=1")
			if rec2.Code != http.StatusOK || !bytes.Equal(rec2.Body.Bytes(), wantB) {
				t.Fatalf("non-snapshot query param did not fall through to live: %d", rec2.Code)
			}
		})
	}
}

// TestHistoryRollbackChainAndMethodGuard: POST /admin/rollback restores
// predecessors one by one until the ring is a single generation, at which
// point further rollbacks 409; the endpoint is POST-only.
func TestHistoryRollbackChainAndMethodGuard(t *testing.T) {
	gens := []*Snapshot{
		buildTestSnapshot(t, 0, "chain-0"),
		buildTestSnapshot(t, 1, "chain-1"),
		buildTestSnapshot(t, 0, "chain-2"),
	}
	for name, h := range historyHarness(t, gens[0], DefaultHistoryDepth) {
		t.Run(name, func(t *testing.T) {
			for _, g := range gens[1:] {
				if err := h.back.Install(g); err != nil {
					t.Fatal(err)
				}
			}
			if rec := get(t, h.srv, "/admin/rollback"); rec.Code != http.StatusMethodNotAllowed {
				t.Fatalf("GET /admin/rollback = %d, want 405", rec.Code)
			}
			post := func() *httptest.ResponseRecorder {
				rec := httptest.NewRecorder()
				h.srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/rollback", nil))
				return rec
			}
			for i, wantID := range []string{"chain-1", "chain-0"} {
				rec := post()
				if rec.Code != http.StatusOK {
					t.Fatalf("rollback %d = %d: %s", i+1, rec.Code, rec.Body.String())
				}
				var rr rollbackResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
					t.Fatal(err)
				}
				if !rr.RolledBack || rr.Snapshot != wantID {
					t.Fatalf("rollback %d restored %q, want %q", i+1, rr.Snapshot, wantID)
				}
				want, _ := gens[1-i].Body("/v1/countries")
				if rec := get(t, h.srv, "/v1/countries"); !bytes.Equal(rec.Body.Bytes(), want) {
					t.Fatalf("after rollback %d the live listing is not generation %s", i+1, wantID)
				}
			}
			rec := post()
			if rec.Code != http.StatusConflict || !strings.Contains(rec.Body.String(), `"status":409`) {
				t.Fatalf("rollback with no predecessor = %d: %s", rec.Code, rec.Body.String())
			}
			// 2 installs + 2 rollbacks, every one a swap.
			if h.back.Swaps() != 4 {
				t.Fatalf("swaps = %d, want 4", h.back.Swaps())
			}
		})
	}
}
