package serve

import (
	"strconv"
	"sync"
)

// degradedView is one memoized degraded scatter-gather merge: the
// listing payloads re-merged from the shard generations that were still
// answering, plus the preallocated response decorations. It is keyed by
// the exact generation pointers it was built from (nil = that shard's
// circuit was open), so byte-determinism follows from immutability: the
// same surviving generations always serve the same cached bytes.
type degradedView struct {
	from     []*Shard // generation pointers the merge was built from; nil = excluded
	listings listingSet
	header   []string // Gamma-Degraded value, "shards=<healthy>/<total>"
	idHeader []string
	healthy  int
}

// degradedMemo caches the most recent degraded merge. Degradation is a
// stable condition — a breaker stays open for a whole cooldown — so one
// entry absorbs the re-merge cost for every listing request in that
// window, and the cache invalidates itself by pointer identity the
// moment a shard heals, trips, or swaps generations.
type degradedMemo struct {
	mu  sync.Mutex
	cur *degradedView
}

// view returns the merge for exactly the given surviving generations,
// reusing the cached one when the pointer set is unchanged.
//
//gamma:coldpath degraded merges happen only while a breaker is non-closed
func (m *degradedMemo) view(alive []*Shard, meta Meta) (*degradedView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur != nil && sameShards(m.cur.from, alive) {
		return m.cur, nil
	}
	ls, err := mergeListings(alive, false)
	if err != nil {
		return nil, err
	}
	dv := &degradedView{
		from:     append([]*Shard(nil), alive...),
		listings: ls,
		idHeader: []string{meta.ID},
	}
	for _, sh := range alive {
		if sh != nil {
			dv.healthy++
		}
	}
	dv.header = []string{"shards=" + strconv.Itoa(dv.healthy) + "/" + strconv.Itoa(len(alive))}
	m.cur = dv
	return dv, nil
}

// sameShards reports element-wise pointer identity.
func sameShards(a, b []*Shard) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
