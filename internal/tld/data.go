package tld

import "sync"

// defaultPSL is the embedded public-suffix snapshot covering every TLD the
// synthetic web uses. It intentionally mirrors the structure of the real
// publicsuffix.org list, including wildcard and exception rules.
const defaultPSL = `
// Generic TLDs
com
org
net
io
info
biz
edu
gov
mil
int
cloud
app
dev
news
tv
me
co

// Country-code TLDs with second-level registration structure
uk
co.uk
org.uk
gov.uk
ac.uk
net.uk
au
com.au
net.au
org.au
gov.au
edu.au
ar
com.ar
gob.ar
gov.ar
org.ar
net.ar
ru
com.ru
org.ru
gov.ru
jp
co.jp
go.jp
ne.jp
or.jp
ac.jp
nz
co.nz
govt.nz
org.nz
net.nz
ac.nz
pk
com.pk
gov.pk
org.pk
edu.pk
qa
com.qa
gov.qa
org.qa
sa
com.sa
gov.sa
org.sa
tw
com.tw
gov.tw
org.tw
lb
com.lb
gov.lb
org.lb
eg
com.eg
gov.eg
org.eg
dz
com.dz
gov.dz
org.dz
rw
co.rw
gov.rw
org.rw
ug
co.ug
go.ug
or.ug
ac.ug
az
com.az
gov.az
org.az
edu.az
lk
com.lk
gov.lk
org.lk
th
co.th
go.th
or.th
ac.th
in.th
ae
com.ae
gov.ae
org.ae
in
co.in
gov.in
nic.in
org.in
net.in
ca
gc.ca
my
com.my
gov.my
sg
com.sg
gov.sg
hk
com.hk
gov.hk
ke
co.ke
go.ke
or.ke
br
com.br
gov.br
tr
com.tr
gov.tr
za
co.za
gov.za
ng
com.ng
gov.ng
il
co.il
gov.il
mx
com.mx
gob.mx
fr
gouv.fr
de
nl
be
ch
it
es
pt
ie
fi
se
no
dk
cz
at
pl
gr
hu
ro
ua
bg
lu
ee
cy
kz
kw
bh
om
jo
gov.jo
com.jo
org.jo
ma
tn
gh
com.gh
gov.gh
et
tz
go.tz
co.tz
sn
np
gov.np
com.np
bd
gov.bd
com.bd
id
co.id
go.id
vn
com.vn
gov.vn
ph
gov.ph
com.ph
kr
co.kr
go.kr
cn
com.cn
gov.cn
cl
gob.cl
pe
gob.pe
uy
gub.uy
com.uy
fj
gov.fj
com.fj
us
cc
ai

// Wildcard and exception rules (PSL semantics exercised in tests)
*.ck
!www.ck
`

var defaultList = sync.OnceValue(func() *List { return Parse(defaultPSL) })

// Default returns the shared embedded list.
func Default() *List { return defaultList() }

// GovSuffixes maps each source country to the TLD suffixes its national
// government registers under (§3.2: some countries use more than one, e.g.
// Argentina's gob.ar and gov.ar).
var GovSuffixes = map[string][]string{
	"AZ": {"gov.az"},
	"DZ": {"gov.dz"},
	"EG": {"gov.eg"},
	"RW": {"gov.rw"},
	"UG": {"go.ug"},
	"AR": {"gob.ar", "gov.ar"},
	"RU": {"gov.ru"},
	"LK": {"gov.lk"},
	"TH": {"go.th"},
	"AE": {"gov.ae"},
	"GB": {"gov.uk"},
	"AU": {"gov.au"},
	"CA": {"gc.ca"},
	"IN": {"gov.in", "nic.in"},
	"JP": {"go.jp"},
	"JO": {"gov.jo"},
	"NZ": {"govt.nz"},
	"PK": {"gov.pk"},
	"QA": {"gov.qa"},
	"SA": {"gov.sa"},
	"TW": {"gov.tw"},
	"US": {"gov"},
	"LB": {"gov.lb"},
}

// IsGov reports whether domain is an official government domain of the
// given country, i.e. it falls under one of the country's government TLDs.
func IsGov(domain, countryCode string) bool {
	for _, suffix := range GovSuffixes[countryCode] {
		if IsSubdomainOf(domain, suffix) && domain != suffix {
			return true
		}
	}
	return false
}

// GovCountryOf returns the country whose government TLD the domain falls
// under, if any. The longest matching suffix wins, so dost.gov.az resolves
// to Azerbaijan rather than the bare US ".gov" rule.
func GovCountryOf(domain string) (string, bool) {
	bestLen := 0
	var best string
	for cc, suffixes := range GovSuffixes {
		for _, suffix := range suffixes {
			if IsSubdomainOf(domain, suffix) && domain != suffix && len(suffix) > bestLen {
				bestLen, best = len(suffix), cc
			}
		}
	}
	return best, bestLen > 0
}
