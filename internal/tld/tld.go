// Package tld implements public-suffix-list semantics: effective TLD
// (public suffix) determination and registrable-domain (eTLD+1) extraction,
// as used in §4.2 of the paper to aggregate tracker hostnames, plus the
// government TLD registry used in §3.2 to compile T_gov (e.g., .gov.au is
// only registered by the Australian government; Argentina uses both gob.ar
// and gov.ar).
package tld

import (
	"fmt"
	"strings"
)

type ruleKind uint8

const (
	ruleNormal ruleKind = iota
	ruleWildcard
	ruleException
)

// List is a public suffix list. The zero value contains no rules; use
// Parse or Default. Lookup follows the publicsuffix.org algorithm:
// exception rules beat wildcard/normal rules, longer rules beat shorter
// ones, and an unmatched domain falls back to the rightmost-label rule.
type List struct {
	rules map[string]ruleKind
}

// Parse reads rules in public-suffix-list text format: one rule per line,
// "//" comments, "*." wildcard prefixes, and "!" exception prefixes.
func Parse(text string) *List {
	l := &List{rules: make(map[string]ruleKind)}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		l.addRule(line)
	}
	return l
}

func (l *List) addRule(rule string) {
	rule = strings.ToLower(strings.TrimSuffix(rule, "."))
	switch {
	case strings.HasPrefix(rule, "!"):
		l.rules[rule[1:]] = ruleException
	case strings.HasPrefix(rule, "*."):
		l.rules[rule[2:]] = ruleWildcard
	default:
		l.rules[rule] = ruleNormal
	}
}

// normalize lowercases and strips any trailing dot.
func normalize(domain string) string {
	return strings.ToLower(strings.TrimSuffix(strings.TrimSpace(domain), "."))
}

// PublicSuffix returns the effective TLD of domain under the list.
func (l *List) PublicSuffix(domain string) string {
	domain = normalize(domain)
	if domain == "" {
		return ""
	}
	labels := strings.Split(domain, ".")
	// Walk suffixes from longest to shortest so the longest matching rule
	// wins; handle exceptions and wildcards per the PSL algorithm.
	for i := 0; i < len(labels); i++ {
		suffix := strings.Join(labels[i:], ".")
		kind, ok := l.rules[suffix]
		if !ok {
			continue
		}
		switch kind {
		case ruleException:
			// Public suffix is the exception rule minus its leftmost label.
			return strings.Join(labels[i+1:], ".")
		case ruleWildcard:
			// Wildcard covers one label to the left of the rule.
			if i > 0 {
				return strings.Join(labels[i-1:], ".")
			}
			return suffix
		default:
			return suffix
		}
	}
	// Default rule "*": the rightmost label.
	return labels[len(labels)-1]
}

// ETLDPlusOne returns the registrable domain: the public suffix plus the
// label to its left. It errors when the domain is itself a public suffix.
func (l *List) ETLDPlusOne(domain string) (string, error) {
	domain = normalize(domain)
	if domain == "" {
		return "", fmt.Errorf("tld: empty domain")
	}
	suffix := l.PublicSuffix(domain)
	if domain == suffix {
		return "", fmt.Errorf("tld: %q is a public suffix", domain)
	}
	rest := strings.TrimSuffix(domain, "."+suffix)
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix, nil
}

// RegistrableOrSelf is a tolerant variant of ETLDPlusOne used when
// aggregating observed hostnames: if the hostname is itself a public suffix
// or otherwise malformed, it is returned unchanged.
func (l *List) RegistrableOrSelf(domain string) string {
	if r, err := l.ETLDPlusOne(domain); err == nil {
		return r
	}
	return normalize(domain)
}

// IsSubdomainOf reports whether sub equals domain or is a DNS child of it.
func IsSubdomainOf(sub, domain string) bool {
	sub, domain = normalize(sub), normalize(domain)
	return sub == domain || strings.HasSuffix(sub, "."+domain)
}
