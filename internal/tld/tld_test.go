package tld

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPublicSuffix(t *testing.T) {
	l := Default()
	cases := []struct{ domain, want string }{
		{"www.google.com", "com"},
		{"google.com", "com"},
		{"bbc.co.uk", "co.uk"},
		{"news.bbc.co.uk", "co.uk"},
		{"dost.gov.az", "gov.az"},
		{"example.gob.ar", "gob.ar"},
		{"WWW.Example.COM.", "com"},
		{"something.unknowntld", "unknowntld"}, // default * rule
		{"a.b.example.ck", "example.ck"},       // wildcard *.ck covers one label
		{"www.ck", "ck"},                       // exception !www.ck
	}
	for _, tc := range cases {
		if got := l.PublicSuffix(tc.domain); got != tc.want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", tc.domain, got, tc.want)
		}
	}
}

func TestETLDPlusOne(t *testing.T) {
	l := Default()
	cases := []struct{ domain, want string }{
		{"www.a.b.c.com", "c.com"},
		{"www.q.w.c.com", "c.com"},
		{"googletagmanager.com", "googletagmanager.com"},
		{"693.safeframe.googlesyndication.com", "googlesyndication.com"},
		{"news.bbc.co.uk", "bbc.co.uk"},
		{"edu.gov.az", "edu.gov.az"},
		{"google.com.eg", "google.com.eg"},
	}
	for _, tc := range cases {
		got, err := l.ETLDPlusOne(tc.domain)
		if err != nil {
			t.Errorf("ETLDPlusOne(%q) error: %v", tc.domain, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", tc.domain, got, tc.want)
		}
	}
	if _, err := l.ETLDPlusOne("com"); err == nil {
		t.Error("bare public suffix should error")
	}
	if _, err := l.ETLDPlusOne(""); err == nil {
		t.Error("empty domain should error")
	}
	if got := l.RegistrableOrSelf("co.uk"); got != "co.uk" {
		t.Errorf("RegistrableOrSelf on suffix = %q", got)
	}
}

func TestETLDPlusOneIdempotentProperty(t *testing.T) {
	l := Default()
	labels := []string{"a", "tracker", "cdn", "www", "x1"}
	suffixes := []string{"com", "co.uk", "gov.au", "net", "org.ar"}
	f := func(i, j, n uint) bool {
		host := suffixes[j%uint(len(suffixes))]
		depth := int(n%4) + 1
		for k := 0; k < depth; k++ {
			host = labels[(i+uint(k))%uint(len(labels))] + "." + host
		}
		e1, err := l.ETLDPlusOne(host)
		if err != nil {
			return false
		}
		e2, err := l.ETLDPlusOne(e1)
		return err == nil && e1 == e2 && IsSubdomainOf(host, e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseHandlesComments(t *testing.T) {
	l := Parse("// a comment\n\ncom\n  co.uk  \n!metro.tokyo.jp\n*.tokyo.jp\njp\n")
	if got := l.PublicSuffix("x.shinjuku.tokyo.jp"); got != "shinjuku.tokyo.jp" {
		t.Errorf("wildcard rule: got %q", got)
	}
	if got := l.PublicSuffix("metro.tokyo.jp"); got != "tokyo.jp" {
		t.Errorf("exception rule: got %q", got)
	}
}

func TestGovTLDs(t *testing.T) {
	cases := []struct {
		domain, country string
		want            bool
	}{
		{"services.gov.au", "AU", true},
		{"example.com.au", "AU", false},
		{"dost.gov.az", "AZ", true},
		{"afip.gob.ar", "AR", true},
		{"anses.gov.ar", "AR", true}, // Argentina's second gov TLD
		{"whitehouse.gov", "US", true},
		{"data.go.th", "TH", true},
		{"ura.go.ug", "UG", true},
		{"gov.au", "AU", false}, // the bare suffix is not a gov site
	}
	for _, tc := range cases {
		if got := IsGov(tc.domain, tc.country); got != tc.want {
			t.Errorf("IsGov(%q, %s) = %v, want %v", tc.domain, tc.country, got, tc.want)
		}
	}
}

func TestGovCountryOfPrefersLongestSuffix(t *testing.T) {
	cc, ok := GovCountryOf("dost.gov.az")
	if !ok || cc != "AZ" {
		t.Errorf("GovCountryOf(dost.gov.az) = %q (%v), want AZ", cc, ok)
	}
	cc, ok = GovCountryOf("irs.gov")
	if !ok || cc != "US" {
		t.Errorf("GovCountryOf(irs.gov) = %q (%v), want US", cc, ok)
	}
	if _, ok := GovCountryOf("example.com"); ok {
		t.Error("example.com should not be a gov domain")
	}
}

func TestAllSourceCountriesHaveGovSuffix(t *testing.T) {
	want := 23
	if len(GovSuffixes) != want {
		t.Errorf("GovSuffixes has %d countries, want %d", len(GovSuffixes), want)
	}
	for cc, suffixes := range GovSuffixes {
		if len(suffixes) == 0 {
			t.Errorf("country %s has no gov suffix", cc)
		}
		for _, s := range suffixes {
			if s == "" || strings.HasPrefix(s, ".") {
				t.Errorf("country %s has malformed suffix %q", cc, s)
			}
		}
	}
}

func TestIsSubdomainOf(t *testing.T) {
	if !IsSubdomainOf("a.b.com", "b.com") {
		t.Error("a.b.com should be subdomain of b.com")
	}
	if !IsSubdomainOf("b.com", "b.com") {
		t.Error("domain is subdomain of itself")
	}
	if IsSubdomainOf("ab.com", "b.com") {
		t.Error("ab.com is NOT a subdomain of b.com (label boundary)")
	}
}
