// Package stats provides the descriptive statistics used throughout the
// paper's analysis: means and standard deviations (§6.1, §6.2), Pearson
// correlation (the 0.89 T_reg/T_gov correlation), box-plot five-number
// summaries with IQR outlier detection (Figure 4), skewness, and histograms
// (Figure 9 / Appendix A).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the slices differ in length, are shorter than two
// elements, or either has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation between xs and ys —
// appropriate when one variable is ordinal, like Table 1's policy
// strictness classes. Ties receive average ranks.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks converts values to average ranks (1-based).
func ranks(xs []float64) []float64 {
	type iv struct {
		idx int
		v   float64
	}
	s := make([]iv, len(xs))
	for i, v := range xs {
		s[i] = iv{i, v}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].v < s[j].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j].v == s[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[s[k].idx] = avg
		}
		i = j
	}
	return out
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// BoxPlot is the five-number summary plus IQR outliers, as drawn in Fig 4.
type BoxPlot struct {
	N        int       `json:"n"`
	Min      float64   `json:"min"` // lowest non-outlier (lower whisker)
	Q1       float64   `json:"q1"`
	Median   float64   `json:"median"`
	Q3       float64   `json:"q3"`
	Max      float64   `json:"max"` // highest non-outlier (upper whisker)
	Mean     float64   `json:"mean"`
	StdDev   float64   `json:"stddev"`
	Outliers []float64 `json:"outliers,omitempty"`
}

// IQR returns the interquartile range Q3-Q1.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }

// NewBoxPlot computes the summary for xs using the 1.5*IQR whisker rule.
func NewBoxPlot(xs []float64) BoxPlot {
	if len(xs) == 0 {
		return BoxPlot{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	b := BoxPlot{
		N:      len(s),
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Mean:   Mean(s),
		StdDev: StdDev(s),
	}
	loFence := b.Q1 - 1.5*b.IQR()
	hiFence := b.Q3 + 1.5*b.IQR()
	b.Min, b.Max = math.Inf(1), math.Inf(-1)
	for _, x := range s {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.Min {
			b.Min = x
		}
		if x > b.Max {
			b.Max = x
		}
	}
	if math.IsInf(b.Min, 1) { // every point is an outlier (degenerate)
		b.Min, b.Max = s[0], s[len(s)-1]
		b.Outliers = nil
	}
	return b
}

// Skewness returns the adjusted Fisher-Pearson sample skewness. Positive
// skew means a concentration of low values with a long right tail — the
// shape the paper reports for most countries' per-site tracker counts.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Histogram counts values into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Width    float64
	Counts   []int
}

// NewHistogram builds a histogram with the given number of bins. Values
// outside [min, max] are clamped into the end bins.
func NewHistogram(xs []float64, bins int, min, max float64) Histogram {
	if bins < 1 {
		bins = 1
	}
	if max <= min {
		max = min + 1
	}
	h := Histogram{Min: min, Max: max, Width: (max - min) / float64(bins), Counts: make([]int, bins)}
	for _, x := range xs {
		i := int((x - min) / h.Width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Total returns the number of samples in the histogram.
func (h Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Percent formats a fraction as a percentage with two decimals, matching the
// paper's reporting style (e.g., 74.39%).
func Percent(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
