package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !approx(m, 5, 1e-9) {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); !approx(s, 2, 1e-9) {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice mean/stddev should be 0")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !approx(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation: r=%v err=%v", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil || !approx(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation: r=%v err=%v", r, err)
	}
	if _, err := Pearson(xs, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("too few points should error")
	}
	if _, err := Pearson(xs, []float64{3, 3, 3, 3, 3}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestPearsonBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		xs, ys := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r, err := Pearson(xs, ys)
		if err != nil {
			return true
		}
		return r >= -1-1e-9 && r <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q := Quantile(xs, 0.5); !approx(q, 2.5, 1e-9) {
		t.Errorf("median = %v, want 2.5", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v, want 4", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestBoxPlot(t *testing.T) {
	// A concentrated distribution with one extreme value.
	xs := []float64{1, 2, 2, 3, 3, 3, 4, 4, 5, 100}
	b := NewBoxPlot(xs)
	if b.N != 10 {
		t.Errorf("N = %d", b.N)
	}
	if b.Median != 3 {
		t.Errorf("median = %v, want 3", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", b.Outliers)
	}
	if b.Max > 5 {
		t.Errorf("upper whisker = %v should exclude the outlier", b.Max)
	}
	if b.Min != 1 {
		t.Errorf("lower whisker = %v, want 1", b.Min)
	}
}

func TestBoxPlotInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := NewBoxPlot(xs)
		ordered := b.Q1 <= b.Median && b.Median <= b.Q3
		whiskers := b.Min <= b.Q1+1e-9 && b.Max >= b.Q3-1e-9 || len(xs) < 2
		count := b.N == len(xs)
		return ordered && whiskers && count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkewness(t *testing.T) {
	rightSkewed := []float64{1, 1, 1, 2, 2, 3, 9, 15}
	if s := Skewness(rightSkewed); s <= 0 {
		t.Errorf("right-skewed data should have positive skewness, got %v", s)
	}
	symmetric := []float64{1, 2, 3, 4, 5}
	if s := Skewness(symmetric); !approx(s, 0, 1e-9) {
		t.Errorf("symmetric data skewness = %v, want 0", s)
	}
	if Skewness([]float64{1, 2}) != 0 {
		t.Error("skewness of <3 points should be 0")
	}
	if Skewness([]float64{5, 5, 5, 5}) != 0 {
		t.Error("skewness of constant data should be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 10, -5}
	h := NewHistogram(xs, 5, 0, 5)
	if h.Total() != len(xs) {
		t.Errorf("total = %d, want %d", h.Total(), len(xs))
	}
	if h.Counts[0] < 2 { // 0 and clamped -5
		t.Errorf("first bin should hold clamped low values: %v", h.Counts)
	}
	if h.Counts[4] < 2 { // 5 (clamped edge) and clamped 10... 4,5,10 in last bin
		t.Errorf("last bin should hold clamped high values: %v", h.Counts)
	}
	h2 := NewHistogram(xs, 0, 3, 3) // degenerate params get repaired
	if len(h2.Counts) != 1 {
		t.Errorf("degenerate histogram bins = %d, want 1", len(h2.Counts))
	}
}

func TestPercent(t *testing.T) {
	if p := Percent(43, 100); p != 43 {
		t.Errorf("Percent = %v", p)
	}
	if p := Percent(1, 0); p != 0 {
		t.Errorf("divide by zero Percent = %v, want 0", p)
	}
	if p := Percent(2, 3); !approx(p, 66.6667, 0.001) {
		t.Errorf("Percent(2,3) = %v", p)
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but nonlinear relation: Spearman = 1, Pearson < 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	s, err := Spearman(xs, ys)
	if err != nil || !approx(s, 1, 1e-12) {
		t.Errorf("Spearman = %v (%v), want 1", s, err)
	}
	p, _ := Pearson(xs, ys)
	if p >= 1 {
		t.Errorf("Pearson on cubic should be < 1, got %v", p)
	}
	// Ties get average ranks.
	s, err = Spearman([]float64{1, 1, 2, 3}, []float64{10, 10, 20, 30})
	if err != nil || !approx(s, 1, 1e-12) {
		t.Errorf("tied Spearman = %v (%v)", s, err)
	}
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
}
