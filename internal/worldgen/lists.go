package worldgen

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/websim"
)

// similarwebMissing lists source countries for which the similarweb-style
// source publishes no regional ranking; target selection falls back to the
// semrush-style source there (§3.2).
var similarwebMissing = map[string]bool{"RW": true, "AZ": true}

// buildRankings materializes the three ranking sources, the Tranco-style
// global list, and the volunteers' opt-out choices.
func (b *builder) buildRankings() error {
	if b.lists == nil {
		return fmt.Errorf("worldgen: buildRankings before buildSites")
	}
	rank := &Rankings{
		Similarweb: make(map[string][]string),
		Semrush:    make(map[string][]string),
		Ahrefs:     make(map[string][]string),
	}

	// mix interleaves the country's adult decoys into a ranking list.
	mix := func(cc string, base []string, r interface{ IntN(int) int }) []string {
		out := append([]string(nil), base...)
		for i := 0; i < 2; i++ {
			pos := r.IntN(len(out) + 1)
			out = append(out[:pos], append([]string{adultSiteName(cc, i)}, out[pos:]...)...)
		}
		return out
	}

	for _, cc := range b.world.SourceCountries() {
		r := rng.New(b.seed, "rankings", cc)
		top := b.lists.top50[cc]
		extra := b.lists.extra[cc]

		if !similarwebMissing[cc] {
			rank.Similarweb[cc] = mix(cc, top, r)
		}
		// Semrush: 33/50 overlap (66%) with the true top list — except
		// where it is the primary source, where it carries the full list.
		if similarwebMissing[cc] {
			rank.Semrush[cc] = mix(cc, top, r)
		} else {
			rank.Semrush[cc] = mix(cc, overlapList(top, extra, 33, r), r)
		}
		// Ahrefs: 24/50 overlap (48%).
		rank.Ahrefs[cc] = mix(cc, overlapList(top, extra, 24, r), r)
	}

	// Synthetic rankings for non-source countries complete the 58-country
	// overlap sample.
	var complete []string
	for _, cc := range b.world.SourceCountries() {
		if !similarwebMissing[cc] {
			complete = append(complete, cc)
		}
	}
	for _, country := range b.reg.Countries() {
		if len(complete) >= 58 {
			break
		}
		cc := country.Code
		if _, isSource := b.world.Specs[cc]; isSource {
			continue
		}
		r := rng.New(b.seed, "rankings-synth", cc)
		var names []string
		for i := 0; i < 70; i++ {
			n, _ := regionalSiteName("US", i, r) // generic names; never crawled
			names = append(names, strings.TrimSuffix(n, ".com")+"."+strings.ToLower(cc))
		}
		top := names[:50]
		rank.Similarweb[cc] = top
		rank.Semrush[cc] = overlapList(top, names[50:], 33, r)
		rank.Ahrefs[cc] = overlapList(top, names[50:], 24, r)
		complete = append(complete, cc)
	}
	sort.Strings(complete)
	rank.Complete = complete
	b.world.Rankings = rank

	// Tranco-style global list: all crawled sites plus a sampled subset of
	// government sites (gov-sparse countries keep what little they have).
	r := rng.New(b.seed, "tranco")
	var tranco []string
	for _, s := range b.web.Sites() {
		switch s.Kind {
		case websim.Government:
			if rng.Bernoulli(r, 0.80) {
				tranco = append(tranco, s.Domain)
			}
		default:
			tranco = append(tranco, s.Domain)
		}
	}
	r.Shuffle(len(tranco), func(i, j int) { tranco[i], tranco[j] = tranco[j], tranco[i] })
	b.world.Tranco = tranco

	// Volunteer opt-outs: the first N of the country's own target list.
	for _, cc := range b.world.SourceCountries() {
		spec := b.world.Specs[cc]
		if spec.OptOutSites == 0 {
			continue
		}
		vol := b.world.Volunteers[cc]
		all := append(append([]string(nil), b.lists.top50[cc]...), b.lists.gov[cc]...)
		rr := rng.New(b.seed, "opt-out", cc)
		rr.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		for i := 0; i < spec.OptOutSites && i < len(all); i++ {
			vol.OptOutSites = append(vol.OptOutSites, all[i])
		}
		sort.Strings(vol.OptOutSites)
	}
	return nil
}

// overlapList keeps the first `keep` entries of top (after a shuffle) and
// fills to len(top) from the fallback pool.
func overlapList(top, pool []string, keep int, r interface {
	IntN(int) int
	Shuffle(int, func(int, int))
}) []string {
	shuffled := append([]string(nil), top...)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if keep > len(shuffled) {
		keep = len(shuffled)
	}
	out := append([]string(nil), shuffled[:keep]...)
	for _, p := range pool {
		if len(out) >= len(top) {
			break
		}
		out = append(out, p)
	}
	// Pad with synthesized names when the pool is short.
	for i := 0; len(out) < len(top); i++ {
		out = append(out, fmt.Sprintf("filler-%d.example", i))
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// buildFilterLists generates the EasyList/EasyPrivacy equivalents plus the
// regional lists, holding out the manually-identified domains (§4.2).
func (b *builder) buildFilterLists() error {
	r := rng.New(b.seed, "filterlists")

	// Manual hold-outs: smaller orgs' base domains that no list covers.
	// TheOzoneProject is the paper's worked example of a manual label.
	manualBases := map[string]bool{"theozone-project.com": true}
	var smallBases []string
	for _, rt := range b.orgRTs {
		isMajor := rt.spec.Weight >= 2
		for _, d := range rt.spec.Domains {
			if !isMajor && d != "theozone-project.com" {
				smallBases = append(smallBases, d)
			}
		}
	}
	sort.Strings(smallBases)
	r.Shuffle(len(smallBases), func(i, j int) { smallBases[i], smallBases[j] = smallBases[j], smallBases[i] })
	for i := 0; i < 8 && i < len(smallBases); i++ {
		manualBases[smallBases[i]] = true
	}
	b.world.ManualTrackers = manualBases

	var easylist, easyprivacy strings.Builder
	easylist.WriteString("[Adblock Plus 2.0]\n! Title: EasyList (synthetic)\n")
	easyprivacy.WriteString("[Adblock Plus 2.0]\n! Title: EasyPrivacy (synthetic)\n")
	// Generic cosmetic/path rules for realism.
	easylist.WriteString("/adbanner/*\n/popunder.\n")
	easyprivacy.WriteString("/telemetry/collect^\n")

	for _, rt := range b.orgRTs {
		for _, d := range rt.spec.Domains {
			if manualBases[d] {
				continue
			}
			rule := "||" + d + "^"
			switch rt.spec.Category {
			case "analytics", "social":
				easyprivacy.WriteString(rule + "$third-party\n")
			default:
				easylist.WriteString(rule + "\n")
			}
		}
	}
	// A few full-hostname rules, mirroring the handful of FQDN entries in
	// the paper's identified set.
	easylist.WriteString("||pixel.googlesyndication.com^\n")
	easyprivacy.WriteString("||collect.google-analytics.com^$third-party\n")

	b.world.EasyList = filterlist.ParseList("easylist", easylist.String())
	b.world.EasyPrivacy = filterlist.ParseList("easyprivacy", easyprivacy.String())

	// Regional lists (India, Sri Lanka) cover region-specific orgs even
	// when the global lists miss them.
	regional := map[string][]string{
		"IN": {"affle-mediasmart.com"},
		"LK": {"lanka-adnet.com", "adstudio.cloud"},
	}
	for cc, domains := range regional {
		var sb strings.Builder
		fmt.Fprintf(&sb, "! Title: regional list %s\n", cc)
		for _, d := range domains {
			sb.WriteString("||" + d + "^\n")
			delete(b.world.ManualTrackers, d) // covered by a list after all
		}
		b.world.RegionalLists[cc] = filterlist.ParseList("regional-"+strings.ToLower(cc), sb.String())
	}
	return nil
}

// buildGeoDBs derives the IPmap-style database (with curated error cases)
// and the reference latency tables.
func (b *builder) buildGeoDBs() error {
	b.world.IPMap = geodb.Build("ripe-ipmap", b.net, b.reg, geodb.DefaultBuildConfig(b.seed))

	// Commercial databases answer for everything but are wrong more often —
	// the unreliability the §4.1 literature documents. Error profiles are
	// loosely inspired by published country-level accuracy comparisons.
	b.world.AltDBs = map[string]*geodb.DB{
		"maxmind-sim": geodb.Build("maxmind-sim", b.net, b.reg, geodb.BuildConfig{
			Seed: b.seed + 1, Coverage: 1.0,
			WrongCityProb: 0.30, WrongCountryNearProb: 0.09, WrongCountryFarProb: 0.03, NearKm: 1500,
		}),
		"dbip-sim": geodb.Build("dbip-sim", b.net, b.reg, geodb.BuildConfig{
			Seed: b.seed + 2, Coverage: 1.0,
			WrongCityProb: 0.38, WrongCountryNearProb: 0.13, WrongCountryFarProb: 0.05, NearKm: 2000,
		}),
		"ipinfo-sim": geodb.Build("ipinfo-sim", b.net, b.reg, geodb.BuildConfig{
			Seed: b.seed + 3, Coverage: 0.99,
			WrongCityProb: 0.26, WrongCountryNearProb: 0.08, WrongCountryFarProb: 0.02, NearKm: 1500,
		}),
	}

	// Curated error, mirroring §4.1.3's worked example: a Google edge
	// serving Pakistan is misplaced by the database into Al Fujairah (AE),
	// while its reverse DNS betrays the true city.
	google := b.byOrg["Google"]
	if si, ok := google.serve["PK"]; ok && si.Dest != "PK" {
		addr := google.addrFor("PK", "doubleclick.net")
		if fuj, found := b.reg.City("Al Fujairah, AE"); found && addr.IsValid() {
			b.world.IPMap.Set(addr, fuj)
			if host, ok := b.net.HostByAddr(addr); ok {
				b.dns.SetPTR(addr, geodb.HintHostname(host.City, "doubleclick.net", 9))
			}
		}
	}

	latency := b.net.BaseRTTMs
	b.world.RefLat = geodb.DefaultRefTables(latency, b.seed)
	return nil
}
