// Package worldgen builds the calibrated synthetic world the study runs
// against: 23 source countries with volunteers, 60+ destination countries
// hosting tracker infrastructure, ~70 tracker organizations with GeoDNS
// steering, a web of ~2000 regional and government sites, filter lists,
// ranking sources, a Tranco-style global list, an Atlas-style probe mesh,
// and an IPmap-style geolocation database with realistic errors.
//
// Calibration targets come from the paper's published aggregates (Table 1,
// Figures 2-9, §5-§7); the measurement pipeline then *measures* this world
// through the same lossy instruments the paper used.
package worldgen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"
	"strings"
	"time"

	"github.com/gamma-suite/gamma/internal/atlas"
	"github.com/gamma-suite/gamma/internal/browser"
	"github.com/gamma-suite/gamma/internal/dnssim"
	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/tld"
	"github.com/gamma-suite/gamma/internal/tlsprobe"
	"github.com/gamma-suite/gamma/internal/trackerdb"
	"github.com/gamma-suite/gamma/internal/websim"
)

// Volunteer is one participant running Gamma in a source country.
type Volunteer struct {
	Country          string     `json:"country"`
	City             geo.City   `json:"city"`
	VantageID        string     `json:"vantage_id"`
	ASN              uint32     `json:"asn"`
	Addr             netip.Addr `json:"addr"`
	TracerouteOptOut bool       `json:"traceroute_opt_out"`
	LoadFailureProb  float64    `json:"load_failure_prob"`
	OptOutSites      []string   `json:"opt_out_sites,omitempty"`
}

// Rankings holds the three top-list sources used for target selection and
// the §3.2 overlap experiment.
type Rankings struct {
	Similarweb map[string][]string
	Semrush    map[string][]string
	Ahrefs     map[string][]string
	// Complete lists the countries for which all three sources publish
	// full top-50 lists (the paper's 58-country overlap sample).
	Complete []string
}

// World is the fully-built synthetic study environment.
type World struct {
	Seed     uint64
	Registry *geo.Registry
	Net      *netsim.Network
	DNS      *dnssim.Server
	Web      *websim.Web
	Mesh     *atlas.Mesh
	IPMap    *geodb.DB
	RefLat   *geodb.RefTable
	Orgs     *trackerdb.DB
	// TLS holds every host's TLS deployment, probed by the optional C3
	// security scans (§3: Nmap/testssl-style probes).
	TLS *tlsprobe.Registry
	// AltDBs are commercial-style geolocation databases with different
	// coverage/error profiles (§4.1 cites studies showing they are not
	// fully reliable); used by the database-comparison experiment.
	AltDBs map[string]*geodb.DB

	// Pages is the study-wide parsed-homepage memo every volunteer's
	// browser shares (nil when built with Options.DisableCaches).
	Pages *browser.ParseCache

	EasyList      *filterlist.List
	EasyPrivacy   *filterlist.List
	RegionalLists map[string]*filterlist.List

	// ManualTrackers are registrable tracker domains absent from every
	// list; the pipeline identifies them via WhoTracksMe-style inspection
	// (the paper's 64 manually-labelled domains).
	ManualTrackers map[string]bool

	Volunteers map[string]*Volunteer
	// SecondaryVolunteers exist only when built with
	// Options.SecondaryVantages: a second vantage per country on another
	// ISP, for intra-country variance studies.
	SecondaryVolunteers map[string]*Volunteer
	Specs               map[string]*CountrySpec

	Rankings *Rankings
	Tranco   []string
	// GovIndex is the full government web per country — the search-scrape
	// fallback source when Tranco carries fewer than 50 gov sites.
	GovIndex map[string][]string

	// TrackerHostnames maps every tracker FQDN to its owning org (ground
	// truth, used by tests and the world report).
	TrackerHostnames map[string]string
	// CloakedDomains maps first-party-looking cloak names to the tracker
	// hostnames they CNAME onto (ground truth for the cloaking analysis).
	CloakedDomains map[string]string
	// BannedSites lists, per source country, domains that are nationally
	// blocked; §3.2 removes them from target lists alongside adult sites.
	BannedSites map[string][]string
}

// SourceCountries returns the 23 measurement countries in stable order.
func (w *World) SourceCountries() []string { return geo.SourceCountryCodes() }

// orgRuntime carries per-org build state.
type orgRuntime struct {
	spec      OrgSpec
	asn       uint32
	hostnames []string
	hostBase  map[string]string       // hostname -> base domain
	localBase map[string]bool         // bases served from in-country caches
	hosts     map[string][]netip.Addr // city ID -> host addrs
	defAddr   netip.Addr
	serve     map[string]serveInfo // source country -> serving decision
	// localAddrs hold per-source-country cache hosts for LocalDomains.
	localAddrs map[string][]netip.Addr
}

// effectiveDest reports where one hostname is served from for a source
// country: cache domains stay local, everything else follows the org's
// serving decision.
func (rt *orgRuntime) effectiveDest(cc, hostname string) (string, bool) {
	if rt.localBase[rt.hostBase[hostname]] {
		return cc, true
	}
	si, ok := rt.serve[cc]
	if !ok {
		return "", false
	}
	return si.Dest, true
}

type serveInfo struct {
	Dest string
	// Addrs are the responsive serving addresses in the destination city;
	// different base domains of the org resolve to different ones.
	Addrs []netip.Addr
}

// addrFor returns the serving address for one of the org's base domains in
// a source country: base domains spread across the destination city's
// edges, so a page touching several of the org's properties produces
// several distinct server IPs, as real CDNs do.
func (rt *orgRuntime) addrFor(cc, baseDomain string) netip.Addr {
	if rt.localBase[baseDomain] {
		if addrs := rt.localAddrs[cc]; len(addrs) > 0 {
			return addrs[rng.Hash(rt.spec.Name, cc, baseDomain)%uint64(len(addrs))]
		}
	}
	si, ok := rt.serve[cc]
	if !ok || len(si.Addrs) == 0 {
		return rt.defAddr
	}
	return si.Addrs[rng.Hash(rt.spec.Name, cc, baseDomain)%uint64(len(si.Addrs))]
}

// infraService is a non-tracker third-party dependency (fonts, JS
// mirrors, image CDNs) with nearest-PoP steering.
type infraService struct {
	Hostname string
	PoPs     []string // city IDs
}

var infraServices = []infraService{
	{Hostname: "fonts.webfontdepot.com", PoPs: []string{"Ashburn, US", "Frankfurt, DE", "Singapore, SG", "Sao Paulo, BR", "Johannesburg, ZA"}},
	{Hostname: "cdn.jslib-mirror.net", PoPs: []string{"Ashburn, US", "Amsterdam, NL", "Singapore, SG", "Sydney, AU"}},
	{Hostname: "img.imagecloud-cdn.net", PoPs: []string{"Ashburn, US", "Paris, FR", "Hong Kong, HK", "Johannesburg, ZA"}},
	{Hostname: "tiles.mapserve-basemaps.com", PoPs: []string{"Ashburn, US", "Frankfurt, DE", "Tokyo, JP"}},
	{Hostname: "media.vidstream-edge.com", PoPs: []string{"Ashburn, US", "Dublin, IE", "Singapore, SG", "Sao Paulo, BR"}},
	{Hostname: "assets.bundlehost-static.net", PoPs: []string{"Ashburn, US", "Frankfurt, DE", "Mumbai, IN"}},
	{Hostname: "push.notifyrelay-hub.com", PoPs: []string{"Ashburn, US", "Amsterdam, NL", "Tokyo, JP"}},
	{Hostname: "captcha.humancheck-api.com", PoPs: []string{"Ashburn, US", "London, GB", "Singapore, SG"}},
	{Hostname: "avatars.profilepic-cdn.net", PoPs: []string{"Ashburn, US", "Paris, FR", "Sydney, AU"}},
	{Hostname: "rss.feedproxy-mirror.org", PoPs: []string{"Ashburn, US", "Frankfurt, DE", "Sao Paulo, BR"}},
}

type builder struct {
	seed  uint64
	reg   *geo.Registry
	net   *netsim.Network
	dns   *dnssim.Server
	web   *websim.Web
	orgdb *trackerdb.DB

	specs   []CountrySpec
	orgRTs  []*orgRuntime
	byOrg   map[string]*orgRuntime
	nextASN uint32

	hostingHosts map[string][]netip.Addr // country -> shared web-hosting addrs
	lists        *siteLists
	opts         Options
	world        *World

	// matchMemo caches matchingHostnames per (org, country, locality).
	// Its inputs (hostnames, serving maps) are frozen by the time site
	// building starts, and the builder is single-threaded, so a plain map
	// suffices. Site generation queries the same few hundred combinations
	// tens of thousands of times.
	matchMemo map[matchKey][]string
}

// matchKey identifies one matchingHostnames result.
type matchKey struct {
	org     string
	cc      string
	foreign bool
}

// Options customizes world construction for scenario studies.
type Options struct {
	// Localize lists source countries whose tracking infrastructure has
	// moved in-country — the world *after* a data-localization law with
	// teeth (the §8 longitudinal-baseline use case). Every organization
	// serving a listed country is forced onto domestic edges.
	Localize []string
	// SecondaryVantages recruits a second volunteer per country on a
	// different ISP (and different city where available) — the study's
	// stated "single ISP in each country" limitation, lifted.
	SecondaryVantages bool
	// DisableCaches turns off every measurement-plane memo (netsim path
	// parameters, websim page markup, the browser parse cache, dnssim
	// resolution). The caches are behaviorally invisible — the
	// cached-vs-uncached equivalence test runs a full study both ways and
	// compares bytes — so this exists for that test and for profiling the
	// unmemoized baseline.
	DisableCaches bool
}

// Build constructs the world for a seed. Identical seeds produce identical
// worlds, byte for byte.
func Build(seed uint64) (*World, error) { return BuildWithOptions(seed, Options{}) }

// BuildWithOptions constructs a world with scenario overrides applied.
func BuildWithOptions(seed uint64, opts Options) (*World, error) {
	ncfg := netsim.DefaultConfig(seed)
	ncfg.DisablePathCache = opts.DisableCaches
	b := &builder{
		seed:         seed,
		reg:          geo.Default(),
		net:          netsim.New(ncfg),
		specs:        countrySpecs(),
		byOrg:        make(map[string]*orgRuntime),
		nextASN:      orgASNBase,
		hostingHosts: make(map[string][]netip.Addr),
		opts:         opts,
	}
	b.dns = dnssim.NewServer(b.net)
	b.web = websim.NewWeb()
	b.orgdb = trackerdb.NewDB(tld.Default())
	if opts.DisableCaches {
		b.web.SetPageCacheDisabled(true)
		b.dns.SetResolveMemoDisabled(true)
	}
	b.world = &World{
		Seed:                seed,
		Registry:            b.reg,
		Net:                 b.net,
		DNS:                 b.dns,
		Web:                 b.web,
		Orgs:                b.orgdb,
		RegionalLists:       make(map[string]*filterlist.List),
		ManualTrackers:      make(map[string]bool),
		Volunteers:          make(map[string]*Volunteer),
		SecondaryVolunteers: make(map[string]*Volunteer),
		Specs:               make(map[string]*CountrySpec),
		GovIndex:            make(map[string][]string),
		TrackerHostnames:    make(map[string]string),
		CloakedDomains:      make(map[string]string),
		BannedSites:         make(map[string][]string),
	}
	if !opts.DisableCaches {
		b.world.Pages = browser.NewParseCache()
	}
	steps := []func() error{
		b.buildCloudASes,
		b.buildVolunteers,
		b.buildMesh,
		b.buildOrgs,
		b.assignServing,
		b.registerOrgDNS,
		b.buildInfraServices,
		b.buildHostingPools,
		b.buildSites,
		b.buildRankings,
		b.buildFilterLists,
		b.buildGeoDBs,
		b.buildTLS,
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return b.world, nil
}

func (b *builder) buildCloudASes() error {
	for _, as := range []netsim.AS{
		{Number: awsASN, Name: "AMAZON-02", Org: "Amazon", Country: "US"},
		{Number: gcpASN, Name: "GOOGLE-CLOUD-PLATFORM", Org: "Google", Country: "US"},
	} {
		if err := b.net.AddAS(as); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) buildVolunteers() error {
	// Volunteer site opt-outs (≈0.99% of 2005 targets across the study).
	optOutCounts := map[string]int{
		"EG": 3, "JO": 2, "RU": 2, "LB": 3, "PK": 2, "SA": 2, "AZ": 2, "TW": 2,
	}
	asn := uint32(vantagePrivateASNBase)
	for i := range b.specs {
		spec := &b.specs[i]
		b.world.Specs[spec.Code] = spec
		city, ok := b.reg.City(spec.VolunteerCity)
		if !ok {
			return fmt.Errorf("worldgen: volunteer city %q missing", spec.VolunteerCity)
		}
		if err := b.net.AddAS(netsim.AS{
			Number: asn, Name: "ISP-" + spec.Code,
			Org: "Residential ISP " + spec.Code, Country: spec.Code,
		}); err != nil {
			return err
		}
		vid := "vol-" + strings.ToLower(spec.Code)
		v, err := b.net.AddVantage(netsim.Vantage{
			ID:                vid,
			City:              city,
			ASN:               asn,
			AccessDelayMs:     spec.AccessDelayMs,
			TracerouteBlocked: spec.TracerouteBlocked,
		})
		if err != nil {
			return err
		}
		spec.OptOutSites = optOutCounts[spec.Code]
		b.world.Volunteers[spec.Code] = &Volunteer{
			Country:          spec.Code,
			City:             city,
			VantageID:        vid,
			ASN:              asn,
			Addr:             v.Addr,
			TracerouteOptOut: spec.TracerouteOptOut,
			LoadFailureProb:  spec.LoadFailureProb,
		}
		asn++

		if b.opts.SecondaryVantages {
			country, _ := b.reg.Country(spec.Code)
			city2 := city
			if len(country.Cities) > 1 {
				city2 = country.Cities[1]
			}
			if err := b.net.AddAS(netsim.AS{
				Number: asn, Name: "ISP2-" + spec.Code,
				Org: "Second Residential ISP " + spec.Code, Country: spec.Code,
			}); err != nil {
				return err
			}
			vid2 := "vol2-" + strings.ToLower(spec.Code)
			// The second ISP has its own middlebox policy: a network that
			// filters probes on one provider often does not on another.
			v2, err := b.net.AddVantage(netsim.Vantage{
				ID:            vid2,
				City:          city2,
				ASN:           asn,
				AccessDelayMs: spec.AccessDelayMs * 1.4,
			})
			if err != nil {
				return err
			}
			b.world.SecondaryVolunteers[spec.Code] = &Volunteer{
				Country:         spec.Code,
				City:            city2,
				VantageID:       vid2,
				ASN:             asn,
				Addr:            v2.Addr,
				LoadFailureProb: spec.LoadFailureProb * 0.8,
			}
			asn++
		}
	}
	return nil
}

func (b *builder) buildMesh() error {
	mesh, err := atlas.BuildMesh(b.net, b.reg, atlas.DefaultMeshConfig(b.seed))
	if err != nil {
		return err
	}
	b.world.Mesh = mesh
	return nil
}

func (b *builder) buildOrgs() error {
	for _, spec := range orgCatalog() {
		rt := &orgRuntime{
			spec:       spec,
			hostBase:   make(map[string]string),
			localBase:  make(map[string]bool),
			hosts:      make(map[string][]netip.Addr),
			serve:      make(map[string]serveInfo),
			localAddrs: make(map[string][]netip.Addr),
		}
		for _, d := range spec.LocalDomains {
			rt.localBase[d] = true
		}
		switch spec.Hosting {
		case "aws":
			rt.asn = awsASN
		case "gcp":
			rt.asn = gcpASN
		default:
			if spec.ASN != 0 {
				rt.asn = spec.ASN
			} else {
				rt.asn = b.nextASN
				b.nextASN++
			}
			if _, exists := b.net.ASByNumber(rt.asn); !exists {
				if err := b.net.AddAS(netsim.AS{
					Number: rt.asn, Name: strings.ToUpper(spec.Name),
					Org: spec.Name, Country: spec.Country,
				}); err != nil {
					return err
				}
			}
		}
		// Hostnames: the bare base domain plus operator-style prefixes.
		r := rng.New(b.seed, "org-hostnames", spec.Name)
		for _, base := range spec.Domains {
			rt.hostnames = append(rt.hostnames, base)
			rt.hostBase[base] = base
			offset := r.IntN(len(hostnamePrefixes))
			for k := 1; k < spec.HostnamesPerDomain; k++ {
				prefix := hostnamePrefixes[(offset+k)%len(hostnamePrefixes)]
				h := prefix + "." + base
				rt.hostnames = append(rt.hostnames, h)
				rt.hostBase[h] = base
			}
		}
		for _, h := range rt.hostnames {
			b.world.TrackerHostnames[h] = spec.Name
		}
		b.orgRTs = append(b.orgRTs, rt)
		b.byOrg[spec.Name] = rt
		// Register ownership knowledge (WhoTracksMe-style).
		domains := append([]string(nil), spec.Domains...)
		domains = append(domains, spec.SiteDomains...)
		if err := b.orgdb.AddOrg(trackerdb.Org{
			Name: spec.Name, Country: spec.Country,
			Category: spec.Category, Domains: domains,
			ConsumerDomains: spec.SiteDomains,
		}); err != nil {
			return err
		}
	}
	return nil
}

// ensureOrgHosts materializes an org's serving hosts in a country and
// returns their addresses.
func (b *builder) ensureOrgHosts(rt *orgRuntime, country string) ([]netip.Addr, error) {
	cityID, ok := hostingCity[country]
	if !ok {
		c, found := b.reg.Country(country)
		if !found {
			return nil, fmt.Errorf("worldgen: unknown hosting country %q", country)
		}
		cityID = c.Capital().ID()
	}
	if addrs, ok := rt.hosts[cityID]; ok {
		return addrs, nil
	}
	city, ok := b.reg.City(cityID)
	if !ok {
		return nil, fmt.Errorf("worldgen: unknown hosting city %q", cityID)
	}
	r := rng.New(b.seed, "org-hosts", rt.spec.Name, cityID)
	var addrs []netip.Addr
	n := 4
	for i := 0; i < n; i++ {
		// The first edge in every city always answers probes; real
		// anycast edges do, and a fully silent deployment would be
		// invisible to the study.
		h, err := b.net.AddHost(netsim.Host{
			City:       city,
			ASN:        rt.asn,
			Responsive: i == 0 || rng.Bernoulli(r, 0.85),
		})
		if err != nil {
			return nil, err
		}
		// Reverse DNS policy: most edges publish a geo-hinted PTR, some an
		// opaque one, some none at all (§4.1.3).
		switch {
		case rng.Bernoulli(r, 0.60):
			b.dns.SetPTR(h.Addr, geodb.HintHostname(city, rt.spec.Domains[0], i+1))
		case rng.Bernoulli(r, 0.60):
			b.dns.SetPTR(h.Addr, geodb.OpaqueHostname(rt.spec.Domains[0], r.IntN(900000)+100000))
		}
		addrs = append(addrs, h.Addr)
	}
	rt.hosts[cityID] = addrs
	return addrs, nil
}

// destFor decides where an org serves one source country from.
func (b *builder) destFor(spec *CountrySpec, rt *orgRuntime, r *rand.Rand) string {
	org := rt.spec
	if contains(b.opts.Localize, spec.Code) {
		return spec.Code // scenario: the country's data-localization law worked
	}
	if d, ok := org.DestOverrides[spec.Code]; ok {
		return d
	}
	if org.ServeOnlyFromUS {
		return "US"
	}
	if org.Name == "Google" {
		if spec.GoogleDest != "" {
			return spec.GoogleDest
		}
		return spec.Code
	}
	isMajor := org.Name == "Twitter" || org.Name == "Facebook" || org.Name == "Amazon" || org.Name == "Yahoo"
	if spec.MajorsLocal && isMajor {
		return spec.Code
	}
	if len(org.OnlyCountries) == 0 && org.Country == spec.Code {
		return spec.Code // domestic orgs serve domestically
	}
	// Pick from the country's calibrated mix, excluding the US (reached
	// only through ServeOnlyFromUS orgs).
	var dests []string
	var total float64
	for d, w := range spec.DestMix {
		if d == "US" || w <= 0 {
			continue
		}
		dests = append(dests, d)
		total += w
	}
	if len(dests) == 0 || total <= 0 {
		return spec.Code
	}
	// A slice of orgs serves in-country even in high-foreign markets.
	if rng.Bernoulli(r, 0.18) {
		return spec.Code
	}
	// The destination is the inverse-CDF of the mix at the org's global
	// hosting affinity u, with destinations in a canonical priority order.
	// Using one u per org (not per country) correlates the org's choices
	// across source countries: an org hosting in Frankfurt serves MOST of
	// its markets from Frankfurt. Without this, every organization would
	// eventually appear in every popular destination and the Fig 7
	// hosting-country counts would collapse into uniformity.
	sort.Slice(dests, func(i, j int) bool {
		ri, rj := destRank(dests[i]), destRank(dests[j])
		if ri != rj {
			return ri < rj
		}
		return dests[i] < dests[j]
	})
	u := rng.New(b.seed, "org-affinity", rt.spec.Name).Float64()
	cum := 0.0
	for _, d := range dests {
		cum += spec.DestMix[d] / total
		if u < cum {
			return d
		}
	}
	return dests[len(dests)-1]
}

// destPriority fixes the canonical destination ordering for affinity
// sampling; destinations not listed sort after, alphabetically.
var destPriority = map[string]int{
	"FR": 0, "DE": 1, "GB": 2, "KE": 3, "AU": 4, "MY": 5, "SG": 6,
	"HK": 7, "JP": 8, "FI": 9, "BR": 10, "NL": 11, "IE": 12, "IT": 13,
	"AE": 14, "OM": 15, "BH": 16,
}

func destRank(cc string) int {
	if r, ok := destPriority[cc]; ok {
		return r
	}
	return 100
}

func (b *builder) assignServing() error {
	for i := range b.specs {
		spec := &b.specs[i]
		for _, rt := range b.orgRTs {
			if len(rt.spec.OnlyCountries) > 0 && !contains(rt.spec.OnlyCountries, spec.Code) {
				continue
			}
			r := rng.New(b.seed, "serving", rt.spec.Name, spec.Code)
			dest := b.destFor(spec, rt, r)
			addrs, err := b.ensureOrgHosts(rt, dest)
			if err != nil {
				return err
			}
			responsive := addrs[:0:0]
			for _, a := range addrs {
				if h, ok := b.net.HostByAddr(a); ok && h.Responsive {
					responsive = append(responsive, a)
				}
			}
			rt.serve[spec.Code] = serveInfo{Dest: dest, Addrs: responsive}
		}
	}
	return nil
}

func (b *builder) registerOrgDNS() error {
	for _, rt := range b.orgRTs {
		// Default PoP: the org's HQ country (fallback: US).
		defCountry := rt.spec.Country
		if _, ok := b.reg.Country(defCountry); !ok {
			defCountry = "US"
		}
		defAddrs, err := b.ensureOrgHosts(rt, defCountry)
		if err != nil {
			return err
		}
		rt.defAddr = defAddrs[0]
		// Cache domains get in-country hosts in every source market.
		// (Iteration must be ordered: host creation order determines
		// address assignment, and the whole world must be reproducible.)
		if len(rt.localBase) > 0 {
			ccs := make([]string, 0, len(rt.serve))
			for cc := range rt.serve {
				ccs = append(ccs, cc)
			}
			sort.Strings(ccs)
			for _, cc := range ccs {
				addrs, err := b.ensureOrgHosts(rt, cc)
				if err != nil {
					return err
				}
				rt.localAddrs[cc] = addrs
			}
		}
		for _, base := range rt.spec.Domains {
			byCountry := make(map[string]netip.Addr, len(rt.serve))
			for cc := range rt.serve {
				byCountry[cc] = rt.addrFor(cc, base)
			}
			if err := b.dns.Register(dnssim.Service{
				Domain:    base,
				Wildcard:  true,
				PoPs:      []netip.Addr{rt.defAddr},
				ByCountry: byCountry,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (b *builder) buildInfraServices() error {
	if err := b.net.AddAS(netsim.AS{Number: 20940, Name: "INFRA-CDN", Org: "Edge Infrastructure CDN", Country: "US"}); err != nil {
		return err
	}
	for _, svc := range infraServices {
		var pops []netip.Addr
		for _, cityID := range svc.PoPs {
			city, ok := b.reg.City(cityID)
			if !ok {
				return fmt.Errorf("worldgen: infra city %q missing", cityID)
			}
			h, err := b.net.AddHost(netsim.Host{City: city, ASN: 20940, Responsive: true})
			if err != nil {
				return err
			}
			b.dns.SetPTR(h.Addr, geodb.HintHostname(city, websim.DomainOf("https://"+svc.Hostname+"/"), 1))
			pops = append(pops, h.Addr)
		}
		base := svc.Hostname[strings.Index(svc.Hostname, ".")+1:]
		if err := b.dns.Register(dnssim.Service{
			Domain:   base,
			Wildcard: true,
			PoPs:     pops,
			Nearest:  true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// buildHostingPools creates shared web-hosting hosts per country plus the
// European/US pools used by foreign-hosted sites.
func (b *builder) buildHostingPools() error {
	hostingCountries := append([]string{}, geo.SourceCountryCodes()...)
	hostingCountries = append(hostingCountries, "FR", "DE")
	asn := uint32(398000)
	for _, cc := range hostingCountries {
		country, ok := b.reg.Country(cc)
		if !ok {
			return fmt.Errorf("worldgen: hosting country %q missing", cc)
		}
		if err := b.net.AddAS(netsim.AS{
			Number: asn, Name: "WEBHOST-" + cc,
			Org: "Web Hosting " + country.Name, Country: cc,
		}); err != nil {
			return err
		}
		r := rng.New(b.seed, "hosting", cc)
		for i := 0; i < 6; i++ {
			city := country.Cities[r.IntN(len(country.Cities))]
			h, err := b.net.AddHost(netsim.Host{City: city, ASN: asn, Responsive: rng.Bernoulli(r, 0.85)})
			if err != nil {
				return err
			}
			if rng.Bernoulli(r, 0.5) {
				b.dns.SetPTR(h.Addr, geodb.HintHostname(city, "webhost-"+strings.ToLower(cc)+".net", i+1))
			}
			b.hostingHosts[cc] = append(b.hostingHosts[cc], h.Addr)
		}
		asn++
	}
	return nil
}

// buildTLS assigns a TLS deployment to every host: organization edges run
// modern stacks, infra CDNs modern-to-dated, shared web hosting uses
// SNI-issued certificates with mixed maintenance, and a tail of servers is
// plainly neglected.
func (b *builder) buildTLS() error {
	reg := tlsprobe.NewRegistry()
	now := studyDate()
	for _, h := range b.net.Hosts() {
		r := rng.New(b.seed, "tls-profile", h.Addr.String())
		as, _ := b.net.ASByNumber(h.ASN)
		var profile tlsprobe.Profile
		sni := false
		subject := "edge.invalid"
		switch {
		case h.ASN == awsASN || h.ASN == gcpASN || h.ASN == 15169 || h.ASN == 32934 || h.ASN == 13414:
			profile = tlsprobe.ProfileModern
			subject = hostSubject(b, h.Addr, as)
		case strings.HasPrefix(as.Name, "WEBHOST-"):
			sni = true
			if rng.Bernoulli(r, 0.25) {
				profile = tlsprobe.ProfileNeglected
			} else if rng.Bernoulli(r, 0.5) {
				profile = tlsprobe.ProfileDated
			} else {
				profile = tlsprobe.ProfileModern
			}
		case strings.HasPrefix(as.Name, "PROBE-HOST-"):
			profile = tlsprobe.ProfileDated
		default:
			profile = tlsprobe.ProfileModern
			if rng.Bernoulli(r, 0.3) {
				profile = tlsprobe.ProfileDated
			}
			subject = hostSubject(b, h.Addr, as)
		}
		d := tlsprobe.GenerateDeployment(b.seed, h.Addr, subject, profile, now)
		d.SNICert = sni
		if rt, ok := b.byOrg[as.Org]; ok {
			for _, base := range rt.spec.Domains {
				d.Cert.SANs = append(d.Cert.SANs, base, "*."+base)
			}
		}
		reg.Set(d)
	}
	b.world.TLS = reg
	return nil
}

// hostSubject picks the certificate subject for an org-operated host: the
// org's primary domain with a wildcard SAN, which covers all its endpoint
// hostnames.
func hostSubject(b *builder, addr netip.Addr, as netsim.AS) string {
	if rt, ok := b.byOrg[as.Org]; ok && len(rt.spec.Domains) > 0 {
		return rt.spec.Domains[0]
	}
	return strings.ToLower(as.Name) + ".example"
}

// studyDate anchors certificate validity to the data-collection date.
func studyDate() time.Time { return time.Date(2024, 3, 16, 0, 0, 0, 0, time.UTC) }

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func round(x float64) int { return int(math.Round(x)) }
