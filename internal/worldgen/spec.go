package worldgen

// PolicyType is a data-localization regulation class, Table 1's taxonomy,
// ordered by decreasing strictness.
type PolicyType string

// Policy classes from Table 1.
const (
	PolicyCS PolicyType = "CS" // consent of subject required
	PolicyPA PolicyType = "PA" // prior government approval/registration
	PolicyAC PolicyType = "AC" // transfers allowed to pre-approved countries
	PolicyTA PolicyType = "TA" // transfers allowed with comparable protections
	PolicyNR PolicyType = "NR" // no restrictions
)

// Strictness ranks policies for the Table 1 ordering (higher = stricter).
func (p PolicyType) Strictness() int {
	switch p {
	case PolicyCS:
		return 4
	case PolicyPA:
		return 3
	case PolicyAC:
		return 2
	case PolicyTA:
		return 1
	default:
		return 0
	}
}

// CountrySpec calibrates one source country's slice of the synthetic world.
// Percentages and behaviour flags come from the paper's published
// aggregates; the generated world is then *measured*, not transcribed.
type CountrySpec struct {
	Code          string
	VolunteerCity string // "City, CC" of the volunteer
	AccessDelayMs float64

	// TracerouteBlocked: volunteer probes failed in the field (AU, IN, QA,
	// JO); TracerouteOptOut: the volunteer declined traceroutes (EG). In
	// both cases the suite falls back to Atlas probes near the volunteer.
	TracerouteBlocked bool
	TracerouteOptOut  bool

	// LoadFailureProb calibrates Fig 2b (Japan 0.36, Saudi Arabia 0.44).
	LoadFailureProb float64

	// GovSiteCount is how many government sites exist on this country's
	// web (Fig 2a: Lebanon, Russia and Algeria are gov-sparse).
	GovSiteCount int

	// RegNonlocalPct / GovNonlocalPct calibrate Fig 3: the share of sites
	// of each kind that embed at least one non-local tracker.
	RegNonlocalPct, GovNonlocalPct float64

	// ForeignMean/ForeignSpread shape the per-site count of non-local
	// tracker domains among sites that have any (Fig 4).
	ForeignMean, ForeignSpread float64

	// LocalMean shapes the per-site count of locally-served trackers.
	LocalMean float64

	// DestMix weights the destination countries for this country's foreign
	// trackers (Fig 5/6/7 shapes).
	DestMix map[string]float64

	// GoogleDest pins where Google serves this country from ("" = sample
	// from DestMix; the country's own code = serve locally). Google's bulk
	// makes this the single most important steering decision per country.
	GoogleDest string

	// MajorsLocal marks the non-Google majors as serving from in-country
	// infrastructure (US, Canada, India... per §6.3's "all the major
	// tracking networks have servers in India").
	MajorsLocal bool

	// OptOutSites is how many target sites the volunteer declined (§5
	// reports 0.99% across the study).
	OptOutSites int

	// Policy fields reproduce Table 1.
	Policy        PolicyType
	PolicyEnacted bool
	PolicyNote    string
}

// countrySpecs returns the 23 calibrated source-country specs.
func countrySpecs() []CountrySpec {
	return []CountrySpec{
		{Code: "AZ", VolunteerCity: "Baku, AZ", AccessDelayMs: 9, LoadFailureProb: 0.07,
			GovSiteCount: 50, RegNonlocalPct: 82, GovNonlocalPct: 65, ForeignMean: 6.5, ForeignSpread: 5, LocalMean: 2,
			DestMix:    map[string]float64{"FR": 0.38, "DE": 0.14, "GB": 0.14, "BG": 0.12, "TR": 0.10, "NL": 0.06, "KZ": 0.04, "US": 0.02},
			GoogleDest: "FR", Policy: PolicyCS, PolicyEnacted: true},
		{Code: "DZ", VolunteerCity: "Algiers, DZ", AccessDelayMs: 12, LoadFailureProb: 0.11,
			GovSiteCount: 15, RegNonlocalPct: 52, GovNonlocalPct: 44, ForeignMean: 5, ForeignSpread: 4, LocalMean: 2,
			DestMix:    map[string]float64{"FR": 0.45, "DE": 0.18, "ES": 0.10, "IT": 0.09, "GB": 0.09, "NL": 0.06, "US": 0.03},
			GoogleDest: "FR", Policy: PolicyPA, PolicyEnacted: true},
		{Code: "EG", VolunteerCity: "Cairo, EG", AccessDelayMs: 11, TracerouteOptOut: true, LoadFailureProb: 0.10,
			GovSiteCount: 50, RegNonlocalPct: 75, GovNonlocalPct: 65, ForeignMean: 16, ForeignSpread: 11, LocalMean: 2,
			DestMix:    map[string]float64{"DE": 0.44, "FR": 0.18, "GB": 0.15, "IT": 0.08, "NL": 0.07, "CH": 0.05, "US": 0.03},
			GoogleDest: "DE", Policy: PolicyPA, PolicyEnacted: true},
		{Code: "RW", VolunteerCity: "Kigali, RW", AccessDelayMs: 14, LoadFailureProb: 0.13,
			GovSiteCount: 48, RegNonlocalPct: 93, GovNonlocalPct: 31, ForeignMean: 18, ForeignSpread: 13, LocalMean: 1,
			DestMix:    map[string]float64{"KE": 0.64, "FR": 0.14, "DE": 0.10, "GB": 0.08, "NL": 0.04, "ZA": 0.04, "US": 0.02},
			GoogleDest: "FR", Policy: PolicyPA, PolicyEnacted: true},
		{Code: "UG", VolunteerCity: "Kampala, UG", AccessDelayMs: 14, LoadFailureProb: 0.12,
			GovSiteCount: 50, RegNonlocalPct: 67, GovNonlocalPct: 83, ForeignMean: 9, ForeignSpread: 8, LocalMean: 1,
			DestMix:    map[string]float64{"KE": 0.68, "FR": 0.10, "DE": 0.07, "GB": 0.09, "IE": 0.03, "ZA": 0.04, "GH": 0.02, "US": 0.03},
			GoogleDest: "FR", Policy: PolicyPA, PolicyEnacted: true},
		{Code: "AR", VolunteerCity: "Buenos Aires, AR", AccessDelayMs: 9, LoadFailureProb: 0.08,
			GovSiteCount: 50, RegNonlocalPct: 63, GovNonlocalPct: 60, ForeignMean: 2, ForeignSpread: 1.4, LocalMean: 3,
			DestMix:    map[string]float64{"BR": 0.36, "US": 0.18, "FR": 0.20, "CL": 0.09, "DE": 0.09, "UY": 0.05, "GB": 0.03},
			GoogleDest: "BR", Policy: PolicyAC, PolicyEnacted: true},
		{Code: "RU", VolunteerCity: "Moscow, RU", AccessDelayMs: 8, LoadFailureProb: 0.06,
			GovSiteCount: 18, RegNonlocalPct: 16, GovNonlocalPct: 0, ForeignMean: 2, ForeignSpread: 1.2, LocalMean: 4,
			DestMix:    map[string]float64{"FI": 0.42, "DE": 0.28, "NL": 0.18, "FR": 0.12},
			GoogleDest: "FI", Policy: PolicyAC, PolicyEnacted: true},
		{Code: "LK", VolunteerCity: "Colombo, LK", AccessDelayMs: 13, LoadFailureProb: 0.09,
			GovSiteCount: 50, RegNonlocalPct: 12, GovNonlocalPct: 7, ForeignMean: 2.5, ForeignSpread: 1.5, LocalMean: 3,
			DestMix:    map[string]float64{"JP": 0.40, "SG": 0.26, "FR": 0.14, "GB": 0.12, "IN": 0.05, "US": 0.03},
			GoogleDest: "LK", MajorsLocal: true, Policy: PolicyAC, PolicyEnacted: true,
			PolicyNote: "Yahoo trackers route to Japan after the 2021 India news shutdown"},
		{Code: "TH", VolunteerCity: "Bangkok, TH", AccessDelayMs: 8, LoadFailureProb: 0.07,
			GovSiteCount: 50, RegNonlocalPct: 62, GovNonlocalPct: 56, ForeignMean: 7, ForeignSpread: 6, LocalMean: 2,
			DestMix:    map[string]float64{"MY": 0.34, "SG": 0.28, "HK": 0.20, "JP": 0.15, "US": 0.03},
			GoogleDest: "MY", Policy: PolicyAC, PolicyEnacted: false,
			PolicyNote: "PDPA enacted after data collection ended"},
		{Code: "AE", VolunteerCity: "Dubai, AE", AccessDelayMs: 6, LoadFailureProb: 0.05,
			GovSiteCount: 50, RegNonlocalPct: 26, GovNonlocalPct: 40, ForeignMean: 4, ForeignSpread: 3, LocalMean: 3,
			DestMix:    map[string]float64{"FR": 0.24, "DE": 0.20, "US": 0.20, "GB": 0.15, "IN": 0.11, "BH": 0.10},
			GoogleDest: "FR", Policy: PolicyAC, PolicyEnacted: true,
			PolicyNote: "approved-country list not yet published"},
		{Code: "GB", VolunteerCity: "London, GB", AccessDelayMs: 5, LoadFailureProb: 0.04,
			GovSiteCount: 50, RegNonlocalPct: 42, GovNonlocalPct: 35, ForeignMean: 3, ForeignSpread: 2, LocalMean: 5,
			DestMix:    map[string]float64{"FR": 0.38, "DE": 0.18, "NL": 0.20, "IE": 0.14, "US": 0.10},
			GoogleDest: "GB", MajorsLocal: true, Policy: PolicyAC, PolicyEnacted: true},
		{Code: "AU", VolunteerCity: "Sydney, AU", AccessDelayMs: 6, TracerouteBlocked: true, LoadFailureProb: 0.04,
			GovSiteCount: 50, RegNonlocalPct: 12, GovNonlocalPct: 1, ForeignMean: 2, ForeignSpread: 1, LocalMean: 5,
			DestMix:    map[string]float64{"US": 0.38, "SG": 0.30, "JP": 0.17, "FR": 0.15},
			GoogleDest: "AU", MajorsLocal: true, Policy: PolicyTA, PolicyEnacted: true},
		{Code: "CA", VolunteerCity: "Toronto, CA", AccessDelayMs: 5, LoadFailureProb: 0.03,
			GovSiteCount: 50, RegNonlocalPct: 0, GovNonlocalPct: 0, ForeignMean: 0, ForeignSpread: 0, LocalMean: 6,
			DestMix:    map[string]float64{},
			GoogleDest: "CA", MajorsLocal: true, Policy: PolicyTA, PolicyEnacted: true},
		{Code: "IN", VolunteerCity: "Mumbai, IN", AccessDelayMs: 9, TracerouteBlocked: true, LoadFailureProb: 0.08,
			GovSiteCount: 50, RegNonlocalPct: 2, GovNonlocalPct: 0, ForeignMean: 1, ForeignSpread: 0.5, LocalMean: 5,
			DestMix:    map[string]float64{"FR": 1.0},
			GoogleDest: "IN", MajorsLocal: true, Policy: PolicyTA, PolicyEnacted: false,
			PolicyNote: "DPDP Act passed but not yet in effect"},
		{Code: "JP", VolunteerCity: "Tokyo, JP", AccessDelayMs: 4, LoadFailureProb: 0.36,
			GovSiteCount: 50, RegNonlocalPct: 25, GovNonlocalPct: 20, ForeignMean: 3.5, ForeignSpread: 2.5, LocalMean: 4,
			DestMix:    map[string]float64{"US": 0.34, "SG": 0.25, "HK": 0.20, "KR": 0.11, "FR": 0.10},
			GoogleDest: "JP", MajorsLocal: true, Policy: PolicyTA, PolicyEnacted: true,
			PolicyNote: "transfers allowed after opt-out period"},
		{Code: "JO", VolunteerCity: "Amman, JO", AccessDelayMs: 10, TracerouteBlocked: true, LoadFailureProb: 0.08,
			GovSiteCount: 50, RegNonlocalPct: 57, GovNonlocalPct: 51, ForeignMean: 21, ForeignSpread: 14, LocalMean: 1,
			DestMix:    map[string]float64{"FR": 0.36, "DE": 0.16, "GB": 0.16, "AE": 0.12, "IT": 0.07, "PL": 0.05, "CY": 0.04, "US": 0.04},
			GoogleDest: "FR", Policy: PolicyTA, PolicyEnacted: true,
			PolicyNote: "PDPL effective 2024-03-17, the day after data collection"},
		{Code: "NZ", VolunteerCity: "Auckland, NZ", AccessDelayMs: 6, LoadFailureProb: 0.05,
			GovSiteCount: 50, RegNonlocalPct: 81, GovNonlocalPct: 85, ForeignMean: 8, ForeignSpread: 3, LocalMean: 1,
			DestMix:    map[string]float64{"AU": 0.74, "US": 0.11, "SG": 0.09, "JP": 0.04, "FJ": 0.02},
			GoogleDest: "AU", Policy: PolicyTA, PolicyEnacted: true},
		{Code: "PK", VolunteerCity: "Karachi, PK", AccessDelayMs: 13, LoadFailureProb: 0.10,
			GovSiteCount: 50, RegNonlocalPct: 68, GovNonlocalPct: 63, ForeignMean: 7, ForeignSpread: 5, LocalMean: 2,
			DestMix:    map[string]float64{"FR": 0.40, "DE": 0.21, "AE": 0.16, "OM": 0.12, "GB": 0.08, "US": 0.03},
			GoogleDest: "FR", Policy: PolicyTA, PolicyEnacted: false,
			PolicyNote: "Personal Data Protection Bill not yet in effect"},
		{Code: "QA", VolunteerCity: "Doha, QA", AccessDelayMs: 7, TracerouteBlocked: true, LoadFailureProb: 0.06,
			GovSiteCount: 50, RegNonlocalPct: 83, GovNonlocalPct: 62, ForeignMean: 2.5, ForeignSpread: 2, LocalMean: 2,
			DestMix:    map[string]float64{"FR": 0.36, "DE": 0.12, "GB": 0.20, "AE": 0.15, "IN": 0.10, "US": 0.07},
			GoogleDest: "FR", Policy: PolicyTA, PolicyEnacted: true},
		{Code: "SA", VolunteerCity: "Riyadh, SA", AccessDelayMs: 8, LoadFailureProb: 0.44,
			GovSiteCount: 50, RegNonlocalPct: 73, GovNonlocalPct: 70, ForeignMean: 5, ForeignSpread: 4, LocalMean: 2,
			DestMix:    map[string]float64{"FR": 0.36, "DE": 0.16, "GB": 0.16, "AE": 0.14, "BH": 0.10, "IE": 0.05, "US": 0.03},
			GoogleDest: "FR", Policy: PolicyTA, PolicyEnacted: true},
		{Code: "TW", VolunteerCity: "Taipei, TW", AccessDelayMs: 5, LoadFailureProb: 0.05,
			GovSiteCount: 50, RegNonlocalPct: 5, GovNonlocalPct: 10, ForeignMean: 2, ForeignSpread: 1, LocalMean: 4,
			DestMix:    map[string]float64{"JP": 0.40, "HK": 0.28, "SG": 0.20, "US": 0.12},
			GoogleDest: "TW", MajorsLocal: true, Policy: PolicyTA, PolicyEnacted: true,
			PolicyNote: "excluding mainland China"},
		{Code: "US", VolunteerCity: "Ashburn, US", AccessDelayMs: 4, LoadFailureProb: 0.02,
			GovSiteCount: 50, RegNonlocalPct: 0, GovNonlocalPct: 0, ForeignMean: 0, ForeignSpread: 0, LocalMean: 8,
			DestMix:    map[string]float64{},
			GoogleDest: "US", MajorsLocal: true, Policy: PolicyTA, PolicyEnacted: true,
			PolicyNote: "sector-specific protections (e.g., health records)"},
		{Code: "LB", VolunteerCity: "Beirut, LB", AccessDelayMs: 15, LoadFailureProb: 0.12,
			GovSiteCount: 12, RegNonlocalPct: 22, GovNonlocalPct: 14, ForeignMean: 2.5, ForeignSpread: 1.5, LocalMean: 2,
			DestMix:    map[string]float64{"FR": 0.40, "DE": 0.28, "GB": 0.20, "CY": 0.12},
			GoogleDest: "FR", Policy: PolicyNR, PolicyEnacted: true},
	}
}

// hostingCity maps a destination country to the city where tracker
// infrastructure concentrates (Kenya's Nairobi AWS edge, Frankfurt, etc.).
// Countries not listed use their registry capital.
var hostingCity = map[string]string{
	"KE": "Nairobi, KE", "DE": "Frankfurt, DE", "FR": "Paris, FR",
	"MY": "Kuala Lumpur, MY", "US": "Ashburn, US", "GB": "London, GB",
	"AU": "Sydney, AU", "BR": "Sao Paulo, BR", "FI": "Hamina, FI",
	"NL": "Amsterdam, NL", "IE": "Dublin, IE", "BE": "Saint-Ghislain, BE",
	"IN": "Mumbai, IN", "SG": "Singapore, SG", "HK": "Hong Kong, HK",
	"JP": "Tokyo, JP", "CH": "Zurich, CH", "IT": "Milan, IT",
}

// vantagePrivateASNBase numbers per-country residential ISP ASes.
const vantagePrivateASNBase = 64512

// orgASNBase numbers organization ASes without an explicit assignment.
const orgASNBase = 394000

// Well-known cloud ASNs hosting third-party trackers (§6.5).
const (
	awsASN = 16509
	gcpASN = 396982
)
