package worldgen

// OrgSpec declares one tracker-operating organization in the synthetic
// world: its headquarters country (§6.5 reports ~50% US, ~10% UK, ~4% NL,
// ~4% IL), the registrable tracker domains it owns, how its edge
// infrastructure is hosted (own network, AWS, or Google Cloud — §6.5 found
// 50 trackers on AWS and 5 on GCP), and optionally the only source
// countries whose websites embed it (the paper found orgs exclusive to
// Jordan, Qatar, the UK, Rwanda, Uganda and Sri Lanka).
type OrgSpec struct {
	Name     string
	Country  string // HQ country ISO code
	Category string // advertising, analytics, social, video, commerce, search, cdn
	Hosting  string // "self", "aws", "gcp"
	ASN      uint32 // assigned when nonzero, else sequential
	// Domains are owned registrable domains; the first is the primary.
	Domains []string
	// SiteDomains are consumer-facing site domains the org also owns
	// (drives the first-party analysis, §6.7).
	SiteDomains []string
	// Weight is the relative chance a site embeds this org's trackers.
	Weight float64
	// OnlyCountries restricts which source countries' sites embed the org.
	OnlyCountries []string
	// DestOverrides pins the serving country for specific source countries
	// (e.g., Yahoo serves Sri Lanka from Japan after shutting its Indian
	// operation, §7).
	DestOverrides map[string]string
	// ServeOnlyFromUS marks orgs whose entire infrastructure sits in the
	// US; they are the reason the USA receives small flows from many source
	// countries while hosting few distinct tracking domains (§6.3, Fig 7).
	ServeOnlyFromUS bool
	// LocalDomains are base domains served from in-country caches even
	// where the org's ad domains serve from abroad (Google's static-content
	// domains ride in-network caches; doubleclick does not). They explain
	// why major-owned consumer sites rarely show first-party non-local
	// trackers (§6.7: only 23 sites).
	LocalDomains []string
	// HostnamesPerDomain bounds how many distinct FQDNs each base domain
	// contributes to pages (Google famously fans out across many).
	HostnamesPerDomain int
}

// orgCatalog returns the full organization catalog: 5 majors + ~65 smaller
// orgs, 70 in total, with HQ-country shares matching §6.5.
func orgCatalog() []OrgSpec {
	majors := []OrgSpec{
		{Name: "Google", Country: "US", Category: "advertising", Hosting: "self", ASN: 15169, Weight: 10, HostnamesPerDomain: 6,
			Domains: []string{
				"googletagmanager.com", "doubleclick.net", "google-analytics.com",
				"googleapis.com", "googlesyndication.com", "googleadservices.com",
				"gstatic.com", "googleusercontent.com", "ggpht.com", "googleoptimize.com",
				"googletagservices.com", "admob-api.com", "google-adwords.com",
			},
			LocalDomains: []string{"gstatic.com", "googleusercontent.com", "ggpht.com"},
			SiteDomains: []string{
				"google.com", "youtube.com", "google.com.eg", "google.co.th",
				"google.com.qa", "google.jo", "google.com.pk", "google.az",
				"google.lk", "google.ae", "google.dz", "google.rw",
			}},
		{Name: "Twitter", Country: "US", Category: "social", Hosting: "self", ASN: 13414, Weight: 3, HostnamesPerDomain: 4,
			LocalDomains: []string{"twimg.com"},
			Domains:      []string{"ads-twitter.com", "twimg.com", "twitter-analytics.com", "t-metrics.co"},
			SiteDomains:  []string{"twitter.com"}},
		{Name: "Facebook", Country: "US", Category: "social", Hosting: "self", ASN: 32934, Weight: 3, HostnamesPerDomain: 4,
			LocalDomains: []string{"fbcdn.net"},
			Domains:      []string{"facebook.net", "fbcdn.net", "fb-pixel.com", "meta-measure.com"},
			SiteDomains:  []string{"facebook.com", "instagram.com", "whatsapp.com"}},
		{Name: "Amazon", Country: "US", Category: "advertising", Hosting: "self", ASN: 16509, Weight: 2.5, HostnamesPerDomain: 4,
			Domains:     []string{"amazon-adsystem.com", "amazon-analytics.io", "a2z-tags.net"},
			SiteDomains: []string{"amazon.com"}},
		{Name: "Yahoo", Country: "US", Category: "advertising", Hosting: "self", ASN: 10310, Weight: 2, HostnamesPerDomain: 4,
			DestOverrides: map[string]string{"LK": "JP"},
			Domains:       []string{"yahoo-pixel.com", "yimg-tags.com", "gemini-ads.net"},
			SiteDomains:   []string{"yahoo.com"}},
	}

	// Smaller organizations. HQ country distribution across all 70 orgs:
	// 35 US (incl. 5 majors), 7 UK, 3 NL, 3 IL, and a long tail.
	smaller := []OrgSpec{
		// --- US (30 more to reach 35) ---
		{Name: "ScorecardResearch", Country: "US", Category: "analytics", Hosting: "aws", Weight: 1.2, DestOverrides: map[string]string{"UG": "KE", "RW": "KE"}, Domains: []string{"scorecardresearch.com"}},
		{Name: "Lotame", Country: "US", Category: "advertising", Hosting: "aws", Weight: 0.8, DestOverrides: map[string]string{"UG": "KE", "RW": "KE"}, Domains: []string{"crwdcntrl-tags.net", "lotame-dmp.com"}},
		{Name: "Snapchat", Country: "US", Category: "social", Hosting: "aws", Weight: 0.8, DestOverrides: map[string]string{"UG": "KE", "RW": "KE"}, Domains: []string{"sc-static-pixel.net", "snap-adkit.com"}},
		{Name: "SoundCloud", Country: "US", Category: "video", Hosting: "aws", Weight: 0.6, DestOverrides: map[string]string{"UG": "KE", "RW": "KE"}, Domains: []string{"sndcdn-metrics.com"}},
		{Name: "SpotIM", Country: "US", Category: "social", Hosting: "aws", Weight: 0.7, DestOverrides: map[string]string{"UG": "KE", "RW": "KE"}, Domains: []string{"spot-im-tags.com", "openweb-metrics.co"}},
		{Name: "33Across", Country: "US", Category: "advertising", Hosting: "aws", Weight: 0.6, Domains: []string{"tynt-tags.com", "x33across-hb.com"}},
		{Name: "OpenX", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.8, Domains: []string{"openx-market.net", "ox-cdn-tags.com"}},
		{Name: "Dotomi", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.6, Domains: []string{"dotomi-media.net"}},
		{Name: "Taboola", Country: "US", Category: "advertising", Hosting: "self", Weight: 1.0, Domains: []string{"taboola-widget.com", "tbl-cdn.net"}},
		{Name: "Adobe", Country: "US", Category: "analytics", Hosting: "self", Weight: 1.2, Domains: []string{"demdex-edge.net", "omtrdc-metrics.net", "adobe-target.io"}},
		{Name: "Oracle", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.9, Domains: []string{"bluekai-tags.com", "addthis-widgets.com"}},
		{Name: "Microsoft", Country: "US", Category: "advertising", Hosting: "self", Weight: 1.1, Domains: []string{"clarity-ms.net", "bing-ads-tags.com"}, SiteDomains: []string{"linkedin.com", "microsoft.com"}},
		{Name: "ComScore", Country: "US", Category: "analytics", Hosting: "self", Weight: 0.7, Domains: []string{"comscore-beacon.com"}},
		{Name: "Quantcast", Country: "US", Category: "analytics", Hosting: "self", Weight: 0.7, Domains: []string{"quantserve-tags.com"}},
		{Name: "TheTradeDesk", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.9, Domains: []string{"adsrvr-pixel.org"}},
		{Name: "Pubmatic", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.8, Domains: []string{"pubmatic-hb.com"}},
		{Name: "Magnite", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.7, Domains: []string{"rubicon-fastlane.com"}},
		{Name: "LiveRamp", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.6, Domains: []string{"pippio-sync.com", "rlcdn-tags.com"}},
		{Name: "Nielsen", Country: "US", Category: "analytics", Hosting: "self", Weight: 0.6, Domains: []string{"imrworldwide-sdk.com"}},
		{Name: "Chartbeat", Country: "US", Category: "analytics", Hosting: "self", Weight: 0.6, Domains: []string{"chartbeat-ping.com"}},
		{Name: "Parsely", Country: "US", Category: "analytics", Hosting: "aws", Weight: 0.5, Domains: []string{"parsely-metrics.com"}},
		{Name: "Branch", Country: "US", Category: "analytics", Hosting: "aws", Weight: 0.5, Domains: []string{"branch-links.io"}},
		{Name: "Amplitude", Country: "US", Category: "analytics", Hosting: "aws", Weight: 0.6, Domains: []string{"amplitude-events.com"}},
		{Name: "Mixpanel", Country: "US", Category: "analytics", Hosting: "gcp", Weight: 0.6, Domains: []string{"mixpanel-events.com"}},
		{Name: "Segment", Country: "US", Category: "analytics", Hosting: "aws", Weight: 0.6, Domains: []string{"segment-cdp.com"}},
		{Name: "Heap", Country: "US", Category: "analytics", Hosting: "gcp", Weight: 0.4, Domains: []string{"heap-capture.io"}},
		{Name: "VerveGroup", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.6, ServeOnlyFromUS: true, Domains: []string{"verve-bidder.com"}},
		{Name: "Sharethrough", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.6, ServeOnlyFromUS: true, Domains: []string{"sharethrough-native.com"}},
		{Name: "MediaMath", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.6, ServeOnlyFromUS: true, Domains: []string{"mathtag-pixel.com"}},
		{Name: "Outbrain", Country: "US", Category: "advertising", Hosting: "self", Weight: 0.8, Domains: []string{"outbrain-widgets.com"}},

		// --- UK (7) ---
		{Name: "TheOzoneProject", Country: "GB", Category: "advertising", Hosting: "aws", Weight: 0.7, Domains: []string{"theozone-project.com"}},
		{Name: "Permutive", Country: "GB", Category: "analytics", Hosting: "gcp", Weight: 0.6, Domains: []string{"permutive-edge.com"}},
		{Name: "Captify", Country: "GB", Category: "advertising", Hosting: "self", Weight: 0.5, Domains: []string{"captify-search.com"}},
		{Name: "Adform", Country: "GB", Category: "advertising", Hosting: "self", Weight: 0.6, Domains: []string{"adform-serving.net"}},
		{Name: "LoopMe", Country: "GB", Category: "advertising", Hosting: "aws", Weight: 0.4, Domains: []string{"loopme-vast.com"}},
		{Name: "BritePool", Country: "GB", Category: "advertising", Hosting: "self", Weight: 0.3, Domains: []string{"britepool-id.com"}, OnlyCountries: []string{"GB"}},
		{Name: "Illuma", Country: "GB", Category: "advertising", Hosting: "aws", Weight: 0.3, Domains: []string{"illuma-contextual.com"}, OnlyCountries: []string{"GB"}},

		// --- NL (3) ---
		{Name: "Improve360", Country: "NL", Category: "advertising", Hosting: "self", Weight: 0.7, Domains: []string{"improve360-yield.com", "yield360-cdn.net"}},
		{Name: "AdscienceNL", Country: "NL", Category: "advertising", Hosting: "self", Weight: 0.4, Domains: []string{"adscience-rtb.nl"}},
		{Name: "ORTEC", Country: "NL", Category: "advertising", Hosting: "self", Weight: 0.3, Domains: []string{"ortec-adscience.net"}},

		// --- IL (3) ---
		{Name: "Smaato", Country: "IL", Category: "advertising", Hosting: "self", Weight: 0.6, Domains: []string{"smaato-sdk.net"}},
		{Name: "Start-io", Country: "IL", Category: "advertising", Hosting: "aws", Weight: 0.4, Domains: []string{"startapp-sdk.io"}},
		{Name: "Similarweb", Country: "IL", Category: "analytics", Hosting: "gcp", Weight: 0.4, Domains: []string{"similartech-beacon.com"}},

		// --- Long tail: FR, DE, SG, IN, JP, RU, AU, SE, NO, CN, KR, BR, ES, CA, CH, AT, PL, BE ---
		{Name: "Criteo", Country: "FR", Category: "advertising", Hosting: "self", Weight: 1.0, Domains: []string{"criteo-rtb.com", "criteo-pixel.net"}},
		{Name: "SmartAdserver", Country: "FR", Category: "advertising", Hosting: "self", Weight: 0.6, Domains: []string{"smartadserver-eq.com"}},
		{Name: "AdTonos", Country: "PL", Category: "advertising", Hosting: "self", Weight: 0.3, Domains: []string{"adtonos-audio.com"}},
		{Name: "Adition", Country: "DE", Category: "advertising", Hosting: "self", Weight: 0.5, Domains: []string{"adition-tech.com"}},
		{Name: "IVW", Country: "DE", Category: "analytics", Hosting: "self", Weight: 0.4, Domains: []string{"ivwbox-metrics.de"}},
		{Name: "Innity", Country: "MY", Category: "advertising", Hosting: "self", Weight: 0.5, Domains: []string{"innity-network.com"}},
		{Name: "AdAsia", Country: "SG", Category: "advertising", Hosting: "aws", Weight: 0.5, Domains: []string{"adasia-holdings.com"}},
		{Name: "Affle", Country: "IN", Category: "advertising", Hosting: "self", Weight: 0.5, Domains: []string{"affle-mediasmart.com"}},
		{Name: "AdstudioCloud", Country: "IN", Category: "advertising", Hosting: "gcp", Weight: 0.3, Domains: []string{"adstudio.cloud"}, OnlyCountries: []string{"LK"}, DestOverrides: map[string]string{"LK": "IN"}},
		{Name: "Dentsu", Country: "JP", Category: "advertising", Hosting: "self", Weight: 0.5, Domains: []string{"dentsu-dan.jp"}},
		{Name: "YandexAds", Country: "RU", Category: "advertising", Hosting: "self", Weight: 0.7, Domains: []string{"yandex-metrica.ru", "yandex-direct.ru"}},
		{Name: "MailRuGroup", Country: "RU", Category: "advertising", Hosting: "self", Weight: 0.4, Domains: []string{"vk-top-counter.ru"}},
		{Name: "Nexxen", Country: "AU", Category: "advertising", Hosting: "self", Weight: 0.4, Domains: []string{"unruly-media.co"}},
		{Name: "AdGear", Country: "CA", Category: "advertising", Hosting: "self", Weight: 0.4, Domains: []string{"adgear-samsung.com"}},
		{Name: "Kameleoon", Country: "CH", Category: "analytics", Hosting: "self", Weight: 0.3, Domains: []string{"kameleoon-ab.eu"}},
		{Name: "Didomi", Country: "ES", Category: "analytics", Hosting: "gcp", Weight: 0.4, Domains: []string{"didomi-cmp.io"}},
		{Name: "Seznam", Country: "CZ", Category: "advertising", Hosting: "self", Weight: 0.3, Domains: []string{"seznam-sklik.cz"}},
		{Name: "Jubnaadserve", Country: "JO", Category: "advertising", Hosting: "self", Weight: 0.8, Domains: []string{"jubnaadserve.com", "jubna-delivery.net"}, OnlyCountries: []string{"JO"}},
		{Name: "Onetag", Country: "IT", Category: "advertising", Hosting: "self", Weight: 0.8, Domains: []string{"onetag-sys.com", "onetag-marketplace.net"}, OnlyCountries: []string{"JO"}},
		{Name: "Optad360", Country: "PL", Category: "advertising", Hosting: "self", Weight: 0.8, Domains: []string{"optad360-yield.com", "optad360-hb.net"}, OnlyCountries: []string{"JO"}},
		{Name: "QatarAdNet", Country: "QA", Category: "advertising", Hosting: "self", Weight: 0.4, Domains: []string{"gulfadnet-qa.com"}, OnlyCountries: []string{"QA"}},
		{Name: "RwandaMediaHub", Country: "RW", Category: "advertising", Hosting: "aws", Weight: 0.4, Domains: []string{"rw-mediahub.africa"}, OnlyCountries: []string{"RW"}},
		{Name: "KampalaAds", Country: "UG", Category: "advertising", Hosting: "aws", Weight: 0.4, Domains: []string{"ug-adx.africa"}, OnlyCountries: []string{"UG"}},
		{Name: "LankaAdNetwork", Country: "LK", Category: "advertising", Hosting: "self", Weight: 0.4, Domains: []string{"lanka-adnet.com"}, OnlyCountries: []string{"LK"}},
		{Name: "Booking", Country: "NL", Category: "commerce", Hosting: "self", Weight: 0.5, Domains: []string{"booking-affiliate-tags.com"}, SiteDomains: []string{"booking.com"}},
		{Name: "BBC", Country: "GB", Category: "analytics", Hosting: "self", Weight: 0.4, Domains: []string{"bbc-echo-metrics.co.uk"}, SiteDomains: []string{"bbc.co.uk"}},
		{Name: "OpenAI", Country: "US", Category: "analytics", Hosting: "self", Weight: 0.3, Domains: []string{"oai-telemetry.com"}, SiteDomains: []string{"openai.com"}},
		{Name: "Wikimedia", Country: "US", Category: "analytics", Hosting: "self", Weight: 0.2, Domains: []string{"wikimedia-stats.org"}, SiteDomains: []string{"wikipedia.org"}},
		{Name: "Teads", Country: "LU", Category: "advertising", Hosting: "self", Weight: 0.5, Domains: []string{"teads-player.com"}},
	}

	out := append(majors, smaller...)
	for i := range out {
		if out[i].HostnamesPerDomain == 0 {
			out[i].HostnamesPerDomain = 3
		}
		if out[i].Hosting == "" {
			out[i].Hosting = "self"
		}
	}
	return out
}

// hostnamePrefixes are the subdomain labels under which tracker endpoints
// appear in real pages.
var hostnamePrefixes = []string{"www", "cdn", "stats", "pixel", "tags", "sync", "collect", "beacon", "ads", "api"}
