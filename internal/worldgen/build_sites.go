package worldgen

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/dnssim"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/tld"
	"github.com/gamma-suite/gamma/internal/websim"
)

// extraGlobalSites appear in a minority of countries' top lists; their
// owners account for the non-Google first-party non-local cases (§6.7).
var extraGlobalSites = []struct {
	Domain string
	Org    string
}{
	{"yahoo.com", "Yahoo"},
	{"booking.com", "Booking"},
	{"bbc.co.uk", "BBC"},
	{"microsoft.com", "Microsoft"},
	{"amazon.com", "Amazon"},
}

// quotaInflation compensates site-level foreign quotas for downstream
// constraint losses: sites with few foreign trackers are likelier to lose
// them all to the conservative cascade, so low-count countries need more
// headroom.
func quotaInflation(foreignMean float64) float64 {
	return 1 + 0.30/(1+foreignMean/3)
}

// top50 retains each country's regional ranking for the rankings step.
type siteLists struct {
	top50 map[string][]string // country -> T_reg ranking (50 proper sites)
	extra map[string][]string // country -> rank 51+ pool (ranking fodder)
	gov   map[string][]string // country -> all gov domains
}

// foreignHostnamePick samples n tracker hostnames served non-locally for
// the country, weighted by org prominence. Google's weight means most
// selections include several Google endpoints, matching the outlier
// anatomy in §6.2.
func (b *builder) pickTrackerHostnames(cc string, n int, foreign, gov bool, r *rand.Rand) []string {
	type cand struct {
		rt *orgRuntime
		w  float64
	}
	var cands []cand
	for _, rt := range b.orgRTs {
		if _, ok := rt.serve[cc]; !ok {
			continue
		}
		if gov && rt.spec.ServeOnlyFromUS && cc != "AE" {
			// Government sites direct flows to the US only from the UAE
			// in the observed data (§6.3).
			continue
		}
		// The org qualifies if it has at least one hostname whose
		// effective destination matches the requested locality (cache
		// domains are always local; ad domains follow the serving map).
		if len(b.matchingHostnames(rt, cc, foreign)) == 0 {
			continue
		}
		cands = append(cands, cand{rt, rt.spec.Weight})
	}
	if len(cands) == 0 || n <= 0 {
		return nil
	}
	weights := make([]float64, len(cands))
	for i, c := range cands {
		weights[i] = c.w
	}
	used := map[string]bool{}
	var out []string
	for len(out) < n {
		idx := rng.WeightedIndex(r, weights)
		if idx < 0 {
			break
		}
		rt := cands[idx].rt
		pool := b.matchingHostnames(rt, cc, foreign)
		h := pool[r.IntN(len(pool))]
		if used[h] {
			// Allow a bounded number of re-draws before giving up on this
			// round; large orgs have plenty of hostnames.
			if retry := pool[r.IntN(len(pool))]; !used[retry] {
				h = retry
			} else {
				weights[idx] *= 0.5
				allZero := true
				for _, w := range weights {
					if w > 0.01 {
						allZero = false
						break
					}
				}
				if allZero {
					break
				}
				continue
			}
		}
		used[h] = true
		out = append(out, h)
	}
	return out
}

// foreignTrackerPool picks one foreign-serving tracker hostname for cc.
func (b *builder) foreignTrackerPool(cc string, r *rand.Rand) string {
	for tries := 0; tries < 16; tries++ {
		rt := b.orgRTs[r.IntN(len(b.orgRTs))]
		if len(rt.spec.OnlyCountries) > 0 && !contains(rt.spec.OnlyCountries, cc) {
			continue
		}
		if pool := b.matchingHostnames(rt, cc, true); len(pool) > 0 {
			return pool[r.IntN(len(pool))]
		}
	}
	return ""
}

// matchingHostnames returns an org's hostnames whose effective destination
// for cc is foreign (true) or local (false). Results are memoized; callers
// must treat the returned slice as read-only.
func (b *builder) matchingHostnames(rt *orgRuntime, cc string, foreign bool) []string {
	key := matchKey{org: rt.spec.Name, cc: cc, foreign: foreign}
	if out, ok := b.matchMemo[key]; ok {
		return out
	}
	var out []string
	for _, h := range rt.hostnames {
		dest, ok := rt.effectiveDest(cc, h)
		if !ok {
			continue
		}
		if foreign == (dest != cc) {
			out = append(out, h)
		}
	}
	if b.matchMemo == nil {
		b.matchMemo = make(map[matchKey][]string)
	}
	b.matchMemo[key] = out
	return out
}

// orgOfHostname resolves a tracker hostname to its org name.
func (b *builder) orgOfHostname(h string) string { return b.world.TrackerHostnames[h] }

// firstPartyResources returns the site's own static assets.
func firstPartyResources(domain string, r *rand.Rand) []websim.Resource {
	out := []websim.Resource{
		{URL: "https://static." + domain + "/styles.css", Type: "css"},
		{URL: "https://static." + domain + "/logo.png", Type: "img"},
	}
	if r.IntN(2) == 0 {
		out = append(out, websim.Resource{URL: "https://static." + domain + "/hero.jpg", Type: "img"})
	}
	if r.IntN(2) == 0 {
		out = append(out, websim.Resource{URL: "https://cdn." + domain + "/bundle.js", Type: "script"})
	}
	if r.IntN(3) == 0 {
		out = append(out, websim.Resource{URL: "https://api." + domain + "/session", Type: "xhr"})
	}
	return out
}

// infraResources picks 2-3 shared-infrastructure dependencies.
func infraResources(r *rand.Rand) []websim.Resource {
	n := 2 + r.IntN(2)
	perm := r.Perm(len(infraServices))
	var out []websim.Resource
	for _, i := range perm[:n] {
		svc := infraServices[i]
		typ := "css"
		if strings.HasPrefix(svc.Hostname, "img") || strings.HasPrefix(svc.Hostname, "media") {
			typ = "img"
		} else if strings.HasPrefix(svc.Hostname, "cdn") || strings.HasPrefix(svc.Hostname, "tiles") {
			typ = "script"
		}
		out = append(out, websim.Resource{URL: "https://" + svc.Hostname + "/lib", Type: typ})
	}
	return out
}

// assembleSiteResources builds a full homepage resource set.
func (b *builder) assembleSiteResources(cc, domain string, nForeign, nLocal int, gov bool, r *rand.Rand) []websim.Resource {
	res := firstPartyResources(domain, r)
	res = append(res, infraResources(r)...)
	var hostnames []string
	hostnames = append(hostnames, b.pickTrackerHostnames(cc, nForeign, true, gov, r)...)
	hostnames = append(hostnames, b.pickTrackerHostnames(cc, nLocal, false, gov, r)...)
	res = append(res, composeTrackerResources(hostnames, b.orgOfHostname, cc+"/"+domain, r)...)
	return res
}

// sampleCount draws a clamped normal count.
func sampleCount(r *rand.Rand, mean, spread float64, min, max int) int {
	if mean <= 0 {
		return 0
	}
	n := round(mean + r.NormFloat64()*spread)
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}

// renderTime draws a page render duration in ms; ~1% of pages wedge past
// the 180 s hard timeout.
func renderTime(r *rand.Rand) float64 {
	if rng.Bernoulli(r, 0.01) {
		return rng.Float64InRange(r, 200000, 400000)
	}
	base := rng.Float64InRange(r, 1200, 4000)
	tail := rng.Float64InRange(r, 0, 1)
	return base + tail*tail*14000
}

// registerSiteDNS hosts a site and makes its domain (and static.* etc.)
// resolvable. Foreign-hosted sites resolve to European hosting pools.
func (b *builder) registerSiteDNS(cc, domain string, r *rand.Rand, foreignHostProb float64) error {
	pool := b.hostingHosts[cc]
	if rng.Bernoulli(r, foreignHostProb) {
		if rng.Bernoulli(r, 0.5) {
			pool = b.hostingHosts["FR"]
		} else {
			pool = b.hostingHosts["DE"]
		}
	}
	if len(pool) == 0 {
		return fmt.Errorf("worldgen: no hosting pool for %s", cc)
	}
	return b.dns.Register(dnssim.Service{
		Domain:   domain,
		Wildcard: true,
		PoPs:     []netip.Addr{pool[r.IntN(len(pool))]},
	})
}

func (b *builder) buildSites() error {
	lists := &siteLists{
		top50: make(map[string][]string),
		extra: make(map[string][]string),
		gov:   make(map[string][]string),
	}
	if err := b.buildGlobalSites(); err != nil {
		return err
	}
	for i := range b.specs {
		if err := b.buildCountrySites(&b.specs[i], lists); err != nil {
			return err
		}
	}
	b.lists = lists
	return nil
}

// globalSiteDomains collects every registered global-site domain.
func (b *builder) buildGlobalSites() error {
	register := func(domain, org string, resources []websim.Resource, variants map[string][]websim.Resource, r *rand.Rand) error {
		site := websim.Site{
			Domain:    domain,
			Kind:      websim.Global,
			Category:  "global",
			OwnerOrg:  org,
			Resources: resources,
			Variants:  variants,
			RenderMs:  renderTime(r),
		}
		if err := b.web.AddSite(site); err != nil {
			return err
		}
		// Global sites are hosted on their owner's infrastructure and
		// steered like its trackers: the same GeoDNS map.
		rt := b.byOrg[org]
		byCountry := make(map[string]netip.Addr, len(rt.serve))
		for cc := range rt.serve {
			byCountry[cc] = rt.addrFor(cc, domain)
		}
		return b.dns.Register(dnssim.Service{
			Domain:    domain,
			Wildcard:  true,
			PoPs:      []netip.Addr{rt.defAddr},
			ByCountry: byCountry,
		})
	}

	// ownTrackers picks n of the owner org's hostnames. Consumer-facing
	// sites of the majors predominantly embed their cache/static domains
	// (served in-country), which keeps first-party NON-LOCAL trackers rare
	// (§6.7); adOnly selects advertising domains only (the Google ccTLD
	// sites and the Azerbaijan youtube outlier).
	ownTrackers := func(org string, n int, adOnly bool, tag string, r *rand.Rand) []websim.Resource {
		rt := b.byOrg[org]
		var cache, ads []string
		for _, h := range rt.hostnames {
			if rt.localBase[rt.hostBase[h]] {
				cache = append(cache, h)
			} else {
				ads = append(ads, h)
			}
		}
		pool := ads
		if !adOnly {
			// Consumer pages pull the org's cache-served assets only; orgs
			// without cache infrastructure embed nothing by default.
			pool = cache
		}
		if len(pool) == 0 {
			return nil
		}
		var hostnames []string
		used := map[string]bool{}
		for tries := 0; len(hostnames) < n && tries < 8*n; tries++ {
			h := pool[r.IntN(len(pool))]
			if !used[h] {
				used[h] = true
				hostnames = append(hostnames, h)
			}
		}
		return composeTrackerResources(hostnames, b.orgOfHostname, tag, r)
	}

	// Consumer sites of the majors embed cache-served assets by default;
	// a seeded minority of countries receives an ad-instrumented variant,
	// which is what keeps first-party NON-LOCAL trackers rare (§6.7: only
	// 23 of 575 sites; the paper's §8 yahoo.com example shows exactly this
	// per-country variation).
	allGlobals := append([]struct {
		Domain string
		Org    string
	}{}, extraGlobalSites...)
	for _, g := range globalSiteOwners {
		allGlobals = append(allGlobals, struct {
			Domain string
			Org    string
		}{g.Domain, g.Org})
	}
	for _, g := range allGlobals {
		r := rng.New(b.seed, "global-site", g.Domain)
		res := firstPartyResources(g.Domain, r)
		res = append(res, infraResources(r)...)
		res = append(res, ownTrackers(g.Org, 3+r.IntN(4), false, g.Domain+"/base", r)...)
		variants := map[string][]websim.Resource{}
		for _, cc := range geo.SourceCountryCodes() {
			if rng.Bernoulli(r, 0.12) {
				vres := firstPartyResources(g.Domain, r)
				vres = append(vres, infraResources(r)...)
				vres = append(vres, ownTrackers(g.Org, 1+r.IntN(3), true, g.Domain+"/"+cc, r)...)
				variants[cc] = vres
			}
		}
		if g.Domain == "youtube.com" {
			// The Azerbaijan outlier: 32 Google tracking domains (§6.2).
			vres := firstPartyResources(g.Domain, r)
			vres = append(vres, ownTrackers("Google", 32, true, g.Domain+"/AZ-outlier", r)...)
			variants["AZ"] = vres
		}
		if len(variants) == 0 {
			variants = nil
		}
		if err := register(g.Domain, g.Org, res, variants, r); err != nil {
			return err
		}
	}
	// Register ccTLD sites in sorted order: site registration order decides
	// first-wins ties in the web's shared cookie/children indices, so a map
	// range here would vary the built web from run to run.
	cctldCCs := make([]string, 0, len(googleCCTLDSite))
	for cc := range googleCCTLDSite {
		cctldCCs = append(cctldCCs, cc)
	}
	sort.Strings(cctldCCs)
	for _, cc := range cctldCCs {
		domain := googleCCTLDSite[cc]
		r := rng.New(b.seed, "global-site", domain)
		res := firstPartyResources(domain, r)
		res = append(res, ownTrackers("Google", 3+r.IntN(3), true, domain+"/cctld", r)...)
		if err := register(domain, "Google", res, nil, r); err != nil {
			return err
		}
	}
	return nil
}

// globalPresence decides which globally-ranked sites appear in a country's
// top-50 list.
func (b *builder) globalPresence(cc string) []string {
	r := rng.New(b.seed, "global-presence", cc)
	out := []string{"google.com", "wikipedia.org"}
	for _, g := range globalSiteOwners {
		if g.Everywhere {
			continue
		}
		if rng.Bernoulli(r, 0.78) {
			out = append(out, g.Domain)
		}
	}
	for _, g := range extraGlobalSites {
		if rng.Bernoulli(r, 0.30) {
			out = append(out, g.Domain)
		}
	}
	if d, ok := googleCCTLDSite[cc]; ok {
		out = append(out, d)
	}
	return out
}

// siteHasForeignTrackers checks (by ground truth) whether a registered
// site's resource set for a country includes a foreign-served tracker.
func (b *builder) siteHasForeignTrackers(domain, cc string) bool {
	site, ok := b.web.Site(domain)
	if !ok {
		return false
	}
	var walk func(rs []websim.Resource) bool
	walk = func(rs []websim.Resource) bool {
		for _, r := range rs {
			h := r.Domain()
			if org, isTracker := b.world.TrackerHostnames[h]; isTracker {
				if si, ok := b.byOrg[org].serve[cc]; ok && si.Dest != cc {
					return true
				}
			}
			if walk(r.Children) {
				return true
			}
		}
		return false
	}
	return walk(site.ResourcesFor(cc))
}

func (b *builder) buildCountrySites(spec *CountrySpec, lists *siteLists) error {
	cc := spec.Code
	r := rng.New(b.seed, "country-sites", cc)

	// ---- Regional list (T_reg candidates) ----
	globals := b.globalPresence(cc)
	// Quotas are inflated ~12% because the conservative constraint cascade
	// discards a share of genuine foreign claims downstream.
	foreignQuota := round(spec.RegNonlocalPct / 100 * 50 * quotaInflation(spec.ForeignMean))
	for _, d := range globals {
		if b.siteHasForeignTrackers(d, cc) {
			foreignQuota--
		}
	}

	var regional []string
	regional = append(regional, globals...)
	specials := b.specialSites(cc)
	for _, sp := range specials {
		if err := b.addGeneratedSite(spec, sp, "news", websim.Regional, true, r); err != nil {
			return err
		}
	}
	regional = append(regional, specials...)
	foreignQuota -= len(specials) // special outlier sites are all foreign

	seen := map[string]bool{}
	for len(regional) < 50 {
		domain, category := regionalSiteName(cc, len(regional), r)
		if seen[domain] {
			continue
		}
		if _, exists := b.web.Site(domain); exists {
			continue
		}
		seen[domain] = true
		isForeign := foreignQuota > 0
		if isForeign {
			foreignQuota--
		}
		if err := b.addGeneratedSite(spec, domain, category, websim.Regional, isForeign, r); err != nil {
			return err
		}
		regional = append(regional, domain)
	}
	// Shuffle into a "ranking" order deterministically.
	r.Shuffle(len(regional), func(i, j int) { regional[i], regional[j] = regional[j], regional[i] })
	lists.top50[cc] = regional

	// Extra lower-ranked sites: ranking fodder for the overlap experiment.
	var extra []string
	for len(extra) < 20 {
		domain, category := regionalSiteName(cc, 100+len(extra), r)
		if _, exists := b.web.Site(domain); exists {
			continue
		}
		if err := b.addGeneratedSite(spec, domain, category, websim.Regional, rng.Bernoulli(r, spec.RegNonlocalPct/100), r); err != nil {
			return err
		}
		extra = append(extra, domain)
	}
	lists.extra[cc] = extra

	// ---- Government sites ----
	suffixes := tld.GovSuffixes[cc]
	govForeign := round(spec.GovNonlocalPct / 100 * float64(spec.GovSiteCount) * quotaInflation(spec.ForeignMean))
	var gov []string
	for i := 0; i < spec.GovSiteCount && i < len(govAgencies); i++ {
		suffix := suffixes[i%len(suffixes)]
		domain := govAgencies[i] + "." + suffix
		isForeign := i < govForeign
		if err := b.addGovSite(spec, domain, isForeign, r); err != nil {
			return err
		}
		gov = append(gov, domain)
	}
	r.Shuffle(len(gov), func(i, j int) { gov[i], gov[j] = gov[j], gov[i] })
	lists.gov[cc] = gov
	b.world.GovIndex[cc] = append([]string(nil), gov...)

	// Adult sites polluting rankings (filtered by target selection, §3.2).
	for i := 0; i < 2; i++ {
		domain := adultSiteName(cc, i)
		if err := b.addGeneratedSite(spec, domain, "adult", websim.Regional, false, r); err != nil {
			return err
		}
		lists.extra[cc] = append(lists.extra[cc], domain)
	}
	// Nationally banned sites (§3.2 removes these too): a few countries
	// block specific popular sites; the ranking still lists them, the
	// selection must not visit them.
	if bannedIn[cc] {
		for i := 0; i < 2; i++ {
			domain := fmt.Sprintf("blocked-portal-%s-%d.com", strings.ToLower(cc), i)
			if err := b.addGeneratedSite(spec, domain, "portal", websim.Regional, false, r); err != nil {
				return err
			}
			b.world.BannedSites[cc] = append(b.world.BannedSites[cc], domain)
			// Banned sites sit IN the ranking, displacing nothing.
			lists.extra[cc] = append(lists.extra[cc], domain)
		}
	}
	return nil
}

// bannedIn marks countries that block popular sites (RU, CN-adjacent
// regimes in the sample: RU, EG, AE, PK).
var bannedIn = map[string]bool{"RU": true, "EG": true, "AE": true, "PK": true}

// specialSites returns the named outlier sites from §6.2.
func (b *builder) specialSites(cc string) []string {
	switch cc {
	case "QA":
		return []string{"manoramaonline.com"}
	case "UG":
		return []string{"koora.com"}
	default:
		return nil
	}
}

func (b *builder) addGeneratedSite(spec *CountrySpec, domain, category string, kind websim.Kind, foreign bool, r *rand.Rand) error {
	cc := spec.Code
	nF, nL := 0, sampleCount(r, spec.LocalMean, spec.LocalMean/2, 0, 14)
	if foreign {
		nF = sampleCount(r, spec.ForeignMean, spec.ForeignSpread, 1, 45)
	}
	if category == "adult" {
		nF, nL = 0, 1 // adult decoys are never analyzed; keep them light
	}
	switch domain {
	case "manoramaonline.com":
		// Qatar's diverse-tracker outlier: majors plus many third parties.
		nF, nL = 16, 0
	case "koora.com":
		nF, nL = 18, 0
	}
	res := b.assembleSiteResources(cc, domain, nF, nL, false, r)
	// CNAME cloaking: a slice of sites hide a foreign tracker behind a
	// first-party-looking subdomain. Filter lists cannot match it by
	// domain; only the recorded DNS chain betrays it.
	if foreign && rng.Bernoulli(r, 0.10) {
		if pool := b.foreignTrackerPool(cc, r); pool != "" {
			cloak := "metrics." + domain
			if err := b.dns.Register(dnssim.Service{Domain: cloak, CNAME: pool}); err == nil {
				res = append(res, websim.Resource{URL: "https://" + cloak + "/ca.js", Type: "script"})
				b.world.CloakedDomains[cloak] = pool
			}
		}
	}
	// Jordan's exclusive ad networks (Jubnaadserve, Onetag, Optad360)
	// appear on a sample of Jordanian sites and nowhere else (§6.5).
	if cc == "JO" && foreign && r.IntN(4) == 0 {
		var exclusive []*orgRuntime
		for _, rt := range b.orgRTs {
			if len(rt.spec.OnlyCountries) == 1 && rt.spec.OnlyCountries[0] == "JO" {
				exclusive = append(exclusive, rt)
			}
		}
		if len(exclusive) > 0 {
			rt := exclusive[r.IntN(len(exclusive))]
			if pool := b.matchingHostnames(rt, cc, true); len(pool) > 0 {
				h := pool[r.IntN(len(pool))]
				res = append(res, websim.Resource{URL: "https://" + h + trackerPath("script"), Type: "script"})
			}
		}
	}
	foreignHostProb := 0.22
	if cont, _ := b.reg.ContinentOf(cc); cont == "Africa" {
		foreignHostProb = 0.45
	}
	if err := b.registerSiteDNS(cc, domain, r, foreignHostProb); err != nil {
		return err
	}
	site := websim.Site{
		Domain:    domain,
		Country:   cc,
		Kind:      kind,
		Category:  category,
		Resources: res,
		RenderMs:  renderTime(r),
	}
	// Ad-slot rotation: foreign-tracking sites fill 1-2 slots per visit
	// from a larger pool, so repeated visits surface different trackers.
	if foreign && category != "adult" {
		pool := b.pickTrackerHostnames(cc, 4+r.IntN(4), true, false, r)
		for _, h := range pool {
			site.Rotating = append(site.Rotating, websim.Resource{
				URL: "https://" + h + "/slot.js?rot=1", Type: "script",
			})
		}
		if len(site.Rotating) > 0 {
			site.RotateK = 1 + r.IntN(2)
		}
	}
	return b.web.AddSite(site)
}

func (b *builder) addGovSite(spec *CountrySpec, domain string, foreign bool, r *rand.Rand) error {
	cc := spec.Code
	nF, nL := 0, sampleCount(r, spec.LocalMean*0.8, spec.LocalMean/2, 0, 10)
	if foreign {
		nF = sampleCount(r, spec.ForeignMean*0.9, spec.ForeignSpread, 1, 40)
	}
	// Azerbaijan's gov outliers (dost.gov.az-style Google fan-out, §6.2).
	if cc == "AZ" && (strings.HasPrefix(domain, "education.") || strings.HasPrefix(domain, "health.")) && foreign {
		nF = 24 + r.IntN(8)
	}
	res := b.assembleSiteResources(cc, domain, nF, nL, true, r)
	// The UAE is the only source whose government sites direct flows to
	// the USA (§6.3): a subset embeds a US-only org's tracker.
	if cc == "AE" && foreign && r.IntN(3) == 0 {
		for _, rt := range b.orgRTs {
			if rt.spec.ServeOnlyFromUS {
				if pool := b.matchingHostnames(rt, cc, true); len(pool) > 0 {
					h := pool[r.IntN(len(pool))]
					res = append(res, websim.Resource{URL: "https://" + h + trackerPath("img"), Type: "img"})
				}
				break
			}
		}
	}
	if err := b.registerSiteDNS(cc, domain, r, 0.05); err != nil {
		return err
	}
	return b.web.AddSite(websim.Site{
		Domain:    domain,
		Country:   cc,
		Kind:      websim.Government,
		Category:  "government",
		Resources: res,
		RenderMs:  renderTime(r),
	})
}
