package worldgen

import (
	"strings"
	"testing"

	"github.com/gamma-suite/gamma/internal/dnssim"
	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/websim"
)

// buildOnce caches a world across tests in this package.
var cachedWorld *World

func testWorld(t *testing.T) *World {
	t.Helper()
	if cachedWorld == nil {
		w, err := Build(42)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		cachedWorld = w
	}
	return cachedWorld
}

func TestBuildSucceeds(t *testing.T) {
	w := testWorld(t)
	if len(w.Volunteers) != 23 {
		t.Errorf("volunteers = %d, want 23", len(w.Volunteers))
	}
	if w.Web.Len() < 1500 {
		t.Errorf("web has %d sites, want >= 1500", w.Web.Len())
	}
	if w.Mesh.Len() < 100 {
		t.Errorf("mesh has %d probes", w.Mesh.Len())
	}
	if w.Orgs.Len() < 65 {
		t.Errorf("orgs = %d, want ~70", w.Orgs.Len())
	}
	if len(w.TrackerHostnames) < 200 {
		t.Errorf("tracker hostnames = %d, want hundreds", len(w.TrackerHostnames))
	}
}

func TestOrgHQDistribution(t *testing.T) {
	w := testWorld(t)
	share := w.Orgs.HQShare()
	if share["US"] < 0.40 || share["US"] > 0.60 {
		t.Errorf("US HQ share = %.2f, want ~0.50", share["US"])
	}
	if share["GB"] < 0.06 || share["GB"] > 0.15 {
		t.Errorf("UK HQ share = %.2f, want ~0.10", share["GB"])
	}
	if share["NL"] == 0 || share["IL"] == 0 {
		t.Error("NL and IL must host org HQs")
	}
}

func TestVolunteerProbeBehaviour(t *testing.T) {
	w := testWorld(t)
	blocked := map[string]bool{"AU": true, "IN": true, "QA": true, "JO": true}
	for cc, vol := range w.Volunteers {
		v, ok := w.Net.VantageByID(vol.VantageID)
		if !ok {
			t.Fatalf("vantage %s missing", vol.VantageID)
		}
		if v.TracerouteBlocked != blocked[cc] {
			t.Errorf("country %s: TracerouteBlocked = %v, want %v", cc, v.TracerouteBlocked, blocked[cc])
		}
	}
	if !w.Volunteers["EG"].TracerouteOptOut {
		t.Error("Egypt volunteer must opt out of traceroutes")
	}
}

func TestGeoDNSSteeringMatchesSpecs(t *testing.T) {
	w := testWorld(t)
	// Google serves New Zealand from Australia, Egypt from Germany,
	// Pakistan from France, Russia from Finland; India locally.
	cases := []struct{ cc, wantDest string }{
		{"NZ", "AU"}, {"EG", "DE"}, {"PK", "FR"}, {"RU", "FI"}, {"IN", "IN"}, {"US", "US"},
	}
	for _, tc := range cases {
		vol := w.Volunteers[tc.cc]
		addr, err := w.DNS.Resolve("www.doubleclick.net", dnssim.Client{Country: tc.cc, City: vol.City})
		if err != nil {
			t.Fatalf("%s: resolve: %v", tc.cc, err)
		}
		host, ok := w.Net.HostByAddr(addr)
		if !ok {
			t.Fatalf("%s: resolved addr %s has no host", tc.cc, addr)
		}
		if host.City.Country != tc.wantDest {
			t.Errorf("Google serving %s from %s, want %s", tc.cc, host.City.Country, tc.wantDest)
		}
	}
}

func TestYahooServesSriLankaFromJapan(t *testing.T) {
	w := testWorld(t)
	vol := w.Volunteers["LK"]
	addr, err := w.DNS.Resolve("yahoo-pixel.com", dnssim.Client{Country: "LK", City: vol.City})
	if err != nil {
		t.Fatal(err)
	}
	host, _ := w.Net.HostByAddr(addr)
	if host.City.Country != "JP" {
		t.Errorf("Yahoo serves LK from %s, want JP", host.City.Country)
	}
}

func TestUgandaRwandaServedFromKenya(t *testing.T) {
	w := testWorld(t)
	// A sizeable share of foreign-serving orgs for UG/RW must sit in Kenya.
	for _, cc := range []string{"UG", "RW"} {
		vol := w.Volunteers[cc]
		kenya, total := 0, 0
		for hostname := range w.TrackerHostnames {
			addr, err := w.DNS.Resolve(hostname, dnssim.Client{Country: cc, City: vol.City})
			if err != nil {
				continue
			}
			host, ok := w.Net.HostByAddr(addr)
			if !ok {
				continue
			}
			if host.City.Country == cc {
				continue // local serving
			}
			total++
			if host.City.Country == "KE" {
				kenya++
			}
		}
		if total == 0 || float64(kenya)/float64(total) < 0.25 {
			t.Errorf("%s: only %d/%d foreign tracker hostnames served from Kenya", cc, kenya, total)
		}
	}
}

func TestTop50Lists(t *testing.T) {
	w := testWorld(t)
	for _, cc := range w.SourceCountries() {
		list := w.Rankings.Similarweb[cc]
		if similarwebMissing[cc] {
			if list != nil {
				t.Errorf("%s should have no similarweb list", cc)
			}
			list = w.Rankings.Semrush[cc]
		}
		if len(list) != 52 { // 50 proper + 2 adult decoys
			t.Errorf("%s: ranking has %d entries, want 52", cc, len(list))
		}
		var hasGoogle, hasWiki bool
		for _, d := range list {
			if d == "google.com" {
				hasGoogle = true
			}
			if d == "wikipedia.org" {
				hasWiki = true
			}
		}
		if !hasGoogle || !hasWiki {
			t.Errorf("%s: google.com/wikipedia.org missing from top list", cc)
		}
	}
}

func TestSevenGlobalsInTwoThirdsOfCountries(t *testing.T) {
	w := testWorld(t)
	counts := map[string]int{}
	for _, cc := range w.SourceCountries() {
		list := w.Rankings.Similarweb[cc]
		if list == nil {
			list = w.Rankings.Semrush[cc]
		}
		for _, d := range list {
			counts[d]++
		}
	}
	for _, g := range globalSiteOwners {
		if g.Everywhere {
			continue
		}
		if counts[g.Domain] < 12 { // comfortably above half; target two-thirds
			t.Errorf("global site %s appears in only %d countries", g.Domain, counts[g.Domain])
		}
	}
}

func TestGovSparseCountries(t *testing.T) {
	w := testWorld(t)
	if n := len(w.GovIndex["LB"]); n > 20 {
		t.Errorf("Lebanon gov sites = %d, want sparse", n)
	}
	if n := len(w.GovIndex["AU"]); n != 50 {
		t.Errorf("Australia gov sites = %d, want 50", n)
	}
	for cc, sites := range w.GovIndex {
		for _, d := range sites {
			if !strings.Contains(d, ".") {
				t.Errorf("%s: malformed gov domain %q", cc, d)
			}
		}
	}
}

func TestFilterListsCoverMostTrackerBases(t *testing.T) {
	w := testWorld(t)
	if len(w.ManualTrackers) < 5 {
		t.Errorf("manual tracker hold-outs = %d, want a handful", len(w.ManualTrackers))
	}
	if w.EasyList == nil || len(w.EasyList.Rules) < 40 {
		t.Fatalf("easylist too small")
	}
	eng := filterlist.NewEngine(w.EasyList, w.EasyPrivacy)
	for _, l := range w.RegionalLists {
		eng.AddList(l)
	}
	// Manual domains must not be matched by any list...
	for d := range w.ManualTrackers {
		if eng.MatchDomain("www."+d, "some-site.example") {
			t.Errorf("manual domain %s is covered by a list", d)
		}
	}
	// ...while listed major tracker domains must be.
	for _, d := range []string{"stats.doubleclick.net", "www.google-analytics.com", "connect.facebook.net"} {
		if !eng.MatchDomain(d, "some-site.example") {
			t.Errorf("listed tracker %s not matched by the engine", d)
		}
	}
}

func TestRankingOverlapShape(t *testing.T) {
	w := testWorld(t)
	overlap := func(a, b []string) float64 {
		if len(a) > 50 {
			a = a[:50]
		}
		if len(b) > 50 {
			b = b[:50]
		}
		set := map[string]bool{}
		for _, x := range a {
			set[x] = true
		}
		n := 0
		for _, x := range b {
			if set[x] {
				n++
			}
		}
		return float64(n) / float64(len(a))
	}
	var semrushSum, ahrefsSum float64
	count := 0
	for _, cc := range w.Rankings.Complete {
		sw := w.Rankings.Similarweb[cc]
		if sw == nil {
			continue
		}
		semrushSum += overlap(sw, w.Rankings.Semrush[cc])
		ahrefsSum += overlap(sw, w.Rankings.Ahrefs[cc])
		count++
	}
	semrush := semrushSum / float64(count) * 100
	ahrefs := ahrefsSum / float64(count) * 100
	if semrush < 55 || semrush > 75 {
		t.Errorf("semrush overlap = %.1f%%, want ~65%%", semrush)
	}
	if ahrefs < 40 || ahrefs > 58 {
		t.Errorf("ahrefs overlap = %.1f%%, want ~48%%", ahrefs)
	}
	if ahrefs >= semrush {
		t.Error("semrush must overlap more than ahrefs")
	}
	if len(w.Rankings.Complete) != 58 {
		t.Errorf("complete-overlap sample = %d countries, want 58", len(w.Rankings.Complete))
	}
}

func TestDeterministicBuild(t *testing.T) {
	w1, err := Build(7)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Build(7)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Web.Len() != w2.Web.Len() {
		t.Error("site counts differ between identical seeds")
	}
	s1, s2 := w1.Web.Sites(), w2.Web.Sites()
	for i := range s1 {
		if s1[i].Domain != s2[i].Domain || len(s1[i].Resources) != len(s2[i].Resources) {
			t.Fatalf("site %d differs between identical seeds", i)
		}
	}
	if len(w1.Tranco) != len(w2.Tranco) {
		t.Error("tranco differs")
	}
}

func TestCuratedIPMapError(t *testing.T) {
	w := testWorld(t)
	// The Google host serving Pakistan is deliberately misplaced into
	// Al Fujairah while its PTR names the true city.
	vol := w.Volunteers["PK"]
	addr, err := w.DNS.Resolve("doubleclick.net", dnssim.Client{Country: "PK", City: vol.City})
	if err != nil {
		t.Fatal(err)
	}
	claimed, ok := w.IPMap.Lookup(addr)
	if !ok {
		t.Fatal("curated host missing from IPMap")
	}
	if claimed.ID() != "Al Fujairah, AE" {
		t.Errorf("curated claim = %s, want Al Fujairah, AE", claimed.ID())
	}
	ptr, ok := w.DNS.ReversePTR(addr)
	if !ok {
		t.Fatal("curated host must publish PTR")
	}
	hint, ok := geodb.ParseHintCountry(ptr, w.Registry)
	truth, _ := w.Net.HostByAddr(addr)
	if !ok || hint != truth.City.Country {
		t.Errorf("PTR %q should hint the true country %s", ptr, truth.City.Country)
	}
}

func TestOrgDomainsCarryNoCityCodeTokens(t *testing.T) {
	// rDNS hint parsing scans hostname tokens; org domains must not
	// accidentally embed a city code or every PTR would carry a bogus hint.
	w := testWorld(t)
	for hostname := range w.TrackerHostnames {
		base := hostname
		if i := strings.Index(base, "."); i > 0 && strings.Count(base, ".") > 1 {
			base = base[i+1:]
		}
		if c, ok := geodb.ParseHintCity("edge-zz9.r."+base, w.Registry); ok {
			t.Errorf("org domain %q embeds city-code token (%s)", base, c.ID())
		}
	}
}

func TestSiteVariants(t *testing.T) {
	w := testWorld(t)
	yt, ok := w.Web.Site("youtube.com")
	if !ok {
		t.Fatal("youtube.com missing")
	}
	az := yt.ResourcesFor("AZ")
	def := yt.ResourcesFor("GB")
	countTrackers := func(rs []websim.Resource) int {
		n := 0
		var walk func([]websim.Resource)
		walk = func(rs []websim.Resource) {
			for _, r := range rs {
				if _, ok := w.TrackerHostnames[r.Domain()]; ok {
					n++
				}
				walk(r.Children)
			}
		}
		walk(rs)
		return n
	}
	if countTrackers(az) < 25 {
		t.Errorf("AZ youtube variant has %d trackers, want ~32", countTrackers(az))
	}
	if countTrackers(def) >= countTrackers(az) {
		t.Error("default youtube must embed fewer trackers than the AZ outlier variant")
	}
}

func TestWorldValidates(t *testing.T) {
	w := testWorld(t)
	if problems := w.Validate(); len(problems) != 0 {
		for _, p := range problems {
			t.Error(p)
		}
	}
}

func TestLocalizedWorldDeterministicAndValid(t *testing.T) {
	a, err := BuildWithOptions(9, Options{Localize: []string{"JO", "TH"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildWithOptions(9, Options{Localize: []string{"JO", "TH"}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Web.Len() != b.Web.Len() || len(a.TrackerHostnames) != len(b.TrackerHostnames) {
		t.Error("localized worlds must be deterministic")
	}
	if problems := a.Validate(); len(problems) != 0 {
		t.Errorf("localized world invalid: %v", problems[:min(3, len(problems))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSecondaryVantages(t *testing.T) {
	w, err := BuildWithOptions(5, Options{SecondaryVantages: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.SecondaryVolunteers) != 23 {
		t.Fatalf("secondary volunteers = %d, want 23", len(w.SecondaryVolunteers))
	}
	for cc, sec := range w.SecondaryVolunteers {
		prim := w.Volunteers[cc]
		if sec.ASN == prim.ASN {
			t.Errorf("%s: secondary volunteer shares the primary's ISP", cc)
		}
		if v, ok := w.Net.VantageByID(sec.VantageID); !ok || v.TracerouteBlocked {
			t.Errorf("%s: secondary vantage missing or blocked", cc)
		}
	}
	// Countries with multiple cities place the second volunteer elsewhere.
	if w.SecondaryVolunteers["AU"].City.ID() == w.Volunteers["AU"].City.ID() {
		t.Error("AU secondary volunteer should sit in a different city")
	}
	// Default worlds have none.
	plain, err := Build(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.SecondaryVolunteers) != 0 {
		t.Error("default world must have no secondary volunteers")
	}
}
