package worldgen

import (
	"fmt"

	"github.com/gamma-suite/gamma/internal/dnssim"
	"github.com/gamma-suite/gamma/internal/websim"
)

// Validate cross-checks the world's internal consistency: every target
// site and tracker hostname must resolve from every source country, every
// resolution must land on a registered host, every volunteer must have a
// vantage, every source country must have a working filter/tracker setup,
// and the probe mesh must cover the destination countries the serving map
// actually uses. It returns every violation found (empty = sound world).
//
// The validator runs in worldgen's tests and behind `cmd/worldgen
// -validate`; a world that fails validation would silently corrupt the
// study, so it is checked before anything is measured.
func (w *World) Validate() []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Volunteers and their vantages.
	for _, cc := range w.SourceCountries() {
		vol, ok := w.Volunteers[cc]
		if !ok {
			addf("country %s has no volunteer", cc)
			continue
		}
		if _, ok := w.Net.VantageByID(vol.VantageID); !ok {
			addf("volunteer %s has no vantage %q", cc, vol.VantageID)
		}
		if _, ok := w.Registry.City(vol.City.ID()); !ok {
			addf("volunteer %s city %q not in registry", cc, vol.City.ID())
		}
	}

	// Every site resolves from its home market and its resources' tracker
	// hostnames resolve too.
	resolveOK := func(domain, cc string) bool {
		vol, ok := w.Volunteers[cc]
		if !ok {
			return true
		}
		addr, err := w.DNS.Resolve(domain, dnssim.Client{Country: cc, City: vol.City})
		if err != nil {
			return false
		}
		_, hostOK := w.Net.HostByAddr(addr)
		return hostOK
	}
	siteCount := 0
	for _, site := range w.Web.Sites() {
		siteCount++
		cc := site.Country
		if cc == "" {
			cc = "US" // global sites: validate from one market
		}
		if !resolveOK(site.Domain, cc) {
			addf("site %s does not resolve from %s", site.Domain, cc)
		}
		var walk func(rs []websim.Resource)
		walk = func(rs []websim.Resource) {
			for _, r := range rs {
				d := r.Domain()
				if _, isTracker := w.TrackerHostnames[d]; isTracker && !resolveOK(d, cc) {
					addf("site %s tracker resource %s does not resolve from %s", site.Domain, d, cc)
				}
				walk(r.Children)
			}
		}
		walk(site.ResourcesFor(cc))
	}
	if siteCount == 0 {
		addf("world has no sites")
	}

	// Tracker hostnames resolve from every source country.
	for _, cc := range w.SourceCountries() {
		bad := 0
		for h := range w.TrackerHostnames {
			if !resolveOK(h, cc) {
				bad++
			}
		}
		if bad > 0 {
			addf("%d tracker hostnames unresolvable from %s", bad, cc)
		}
	}

	// Cloaked domains alias onto known tracker hostnames.
	for cloak, target := range w.CloakedDomains {
		if _, ok := w.TrackerHostnames[target]; !ok {
			addf("cloak %s targets unknown tracker %s", cloak, target)
		}
	}

	// Probe mesh sanity.
	if w.Mesh.Len() == 0 {
		addf("probe mesh is empty")
	}
	for _, cc := range []string{"FR", "DE", "KE", "US"} {
		country, _ := w.Registry.Country(cc)
		if _, ok := w.Mesh.ProbeInCountry(cc, country.Capital().Coord); !ok {
			addf("no probe in key destination %s", cc)
		}
	}

	// IPmap should cover most hosts.
	hosts := len(w.Net.Hosts())
	if hosts == 0 {
		addf("no hosts")
	} else if float64(w.IPMap.Len())/float64(hosts) < 0.9 {
		addf("IPmap covers %d of %d hosts", w.IPMap.Len(), hosts)
	}

	// Ranking lists exist for every source country under some source.
	for _, cc := range w.SourceCountries() {
		if w.Rankings.Similarweb[cc] == nil && w.Rankings.Semrush[cc] == nil {
			addf("country %s has no usable regional ranking", cc)
		}
		if len(w.GovIndex[cc]) == 0 {
			addf("country %s has no government web", cc)
		}
	}
	return problems
}
