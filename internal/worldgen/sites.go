package worldgen

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/websim"
)

// Regional-site name fragments. Combined as <adjective><noun>.<suffix>.
var nameAdjectives = []string{
	"daily", "metro", "prime", "gulf", "pearl", "lotus", "nile", "savanna",
	"alpine", "coral", "royal", "crescent", "panorama", "horizon", "zenith",
	"aurora", "summit", "harbor", "velvet", "golden", "urban", "national",
	"pacific", "eastern", "western", "unity", "liberty", "capital",
}

var nameNouns = []string{
	"news", "times", "market", "shop", "bank", "sport", "tech", "media",
	"portal", "travel", "health", "radio", "jobs", "auto", "food", "music",
	"weather", "estate", "express", "gazette", "bazaar", "wallet", "stream",
	"forum", "classifieds", "recipes", "tickets", "academy",
}

// nounCategory maps a noun to the site category used in reporting.
var nounCategory = map[string]string{
	"news": "news", "times": "news", "gazette": "news", "express": "news",
	"market": "e-commerce", "shop": "e-commerce", "bazaar": "e-commerce", "tickets": "e-commerce",
	"bank": "finance", "wallet": "finance", "estate": "real-estate",
	"sport": "sports", "tech": "technology", "media": "media", "stream": "video",
	"portal": "portal", "travel": "travel", "health": "health", "radio": "media",
	"jobs": "classifieds", "auto": "classifieds", "classifieds": "classifieds",
	"food": "lifestyle", "recipes": "lifestyle", "music": "entertainment",
	"weather": "news", "forum": "social", "academy": "education",
}

// ccTLDSuffixes gives each source country its common commercial suffixes.
var ccTLDSuffixes = map[string][]string{
	"AZ": {"az", "com.az", "com"}, "DZ": {"dz", "com.dz", "com"},
	"EG": {"com.eg", "eg", "com"}, "RW": {"rw", "co.rw", "com"},
	"UG": {"co.ug", "ug", "com"}, "AR": {"com.ar", "ar", "com"},
	"RU": {"ru", "com.ru", "com"}, "LK": {"lk", "com.lk", "com"},
	"TH": {"co.th", "th", "com"}, "AE": {"ae", "com.ae", "com"},
	"GB": {"co.uk", "uk", "com"}, "AU": {"com.au", "au", "com"},
	"CA": {"ca", "com", "net"}, "IN": {"in", "co.in", "com"},
	"JP": {"co.jp", "jp", "com"}, "JO": {"jo", "com.jo", "com"},
	"NZ": {"co.nz", "nz", "com"}, "PK": {"com.pk", "pk", "com"},
	"QA": {"com.qa", "qa", "com"}, "SA": {"com.sa", "sa", "com"},
	"TW": {"com.tw", "tw", "com"}, "US": {"com", "net", "org"},
	"LB": {"com.lb", "lb", "com"},
}

// govAgencies are the 50 agency labels used to mint government sites.
var govAgencies = []string{
	"health", "finance", "interior", "education", "tax", "customs",
	"immigration", "statistics", "parliament", "justice", "transport",
	"agriculture", "energy", "labor", "foreign-affairs", "environment",
	"telecom-authority", "central-bank", "elections", "municipality",
	"police", "civil-service", "tourism", "sports-authority",
	"water-authority", "housing", "planning", "culture", "science",
	"defense", "postal", "ports", "aviation", "railways",
	"social-security", "pensions", "veterans", "youth", "women-affairs",
	"minerals", "fisheries", "forestry", "meteorology", "disaster-mgmt",
	"anti-corruption", "human-rights", "archives", "library", "museums",
	"passports",
}

// globalSiteOwners lists the globally-ranked sites and their owning orgs.
// google.com and wikipedia.org appear in every country's top list; the
// other seven appear in at least two-thirds of countries (§3.2).
var globalSiteOwners = []struct {
	Domain     string
	Org        string
	Everywhere bool
}{
	{"google.com", "Google", true},
	{"wikipedia.org", "Wikimedia", true},
	{"instagram.com", "Facebook", false},
	{"youtube.com", "Google", false},
	{"facebook.com", "Facebook", false},
	{"openai.com", "OpenAI", false},
	{"twitter.com", "Twitter", false},
	{"whatsapp.com", "Facebook", false},
	{"linkedin.com", "Microsoft", false},
}

// googleCCTLDSite maps source countries to Google's country-specific site
// appearing in their top lists (first-party non-local cases, §6.7).
var googleCCTLDSite = map[string]string{
	"EG": "google.com.eg", "TH": "google.co.th", "QA": "google.com.qa",
	"JO": "google.jo", "PK": "google.com.pk", "AZ": "google.az",
	"LK": "google.lk", "AE": "google.ae", "DZ": "google.dz", "RW": "google.rw",
}

// regionalSiteName mints a deterministic unique regional domain.
func regionalSiteName(cc string, idx int, r *rand.Rand) (domain, category string) {
	adj := nameAdjectives[r.IntN(len(nameAdjectives))]
	noun := nameNouns[r.IntN(len(nameNouns))]
	suffixes := ccTLDSuffixes[cc]
	if len(suffixes) == 0 {
		suffixes = []string{"com"}
	}
	suffix := suffixes[r.IntN(len(suffixes))]
	name := adj + noun
	if idx >= len(nameAdjectives)*2 { // ensure uniqueness at scale
		name = fmt.Sprintf("%s%s%d", adj, noun, idx)
	}
	return fmt.Sprintf("%s.%s", name, suffix), nounCategory[noun]
}

// adultSiteName mints names for the adult sites the target-selection step
// must filter out of rankings (§3.2).
func adultSiteName(cc string, idx int) string {
	return fmt.Sprintf("adult-stream-%s-%d.com", strings.ToLower(cc), idx)
}

// trackerPath returns the URL path a tracker hostname is fetched under.
func trackerPath(resType string) string {
	switch resType {
	case "script":
		return "/tag.js"
	case "img":
		return "/pixel.gif"
	default:
		return "/collect"
	}
}

// composeTrackerResources arranges tracker hostnames into page resources.
// When Google's tag manager is among them, it becomes a script whose
// children are the other Google endpoints — reproducing the chained-load
// shape the browser records in the field. The tag (site domain + variant)
// uniquifies the container URL, exactly like real GTM container IDs: the
// web's chained-load index is keyed by URL, and two sites sharing a root
// URL would otherwise leak each other's tracker chains.
func composeTrackerResources(hostnames []string, orgOf func(string) string, tag string, r *rand.Rand) []websim.Resource {
	var googleHosts, otherHosts []string
	for _, h := range hostnames {
		if orgOf(h) == "Google" {
			googleHosts = append(googleHosts, h)
		} else {
			otherHosts = append(otherHosts, h)
		}
	}
	var out []websim.Resource
	types := []string{"script", "img", "xhr"}
	cookiesFor := func(h string) []string {
		// Most tracking endpoints set an identifier cookie, some a session
		// cookie too — the mechanism third-party-cookie studies count.
		if r.IntN(10) < 7 {
			cs := []string{"_uid_" + shortOrg(orgOf(h))}
			if r.IntN(3) == 0 {
				cs = append(cs, "_trk_sess")
			}
			return cs
		}
		return nil
	}
	if len(googleHosts) > 0 {
		root := websim.Resource{
			URL:     fmt.Sprintf("https://%s/gtm.js?id=GTM-%08X", googleHosts[0], rng.Hash("gtm-container", tag)&0xffffffff),
			Type:    "script",
			Cookies: cookiesFor(googleHosts[0]),
		}
		for _, h := range googleHosts[1:] {
			typ := types[r.IntN(len(types))]
			root.Children = append(root.Children, websim.Resource{
				URL: "https://" + h + trackerPath(typ), Type: typ, Cookies: cookiesFor(h),
			})
		}
		out = append(out, root)
	}
	for _, h := range otherHosts {
		typ := types[r.IntN(len(types))]
		out = append(out, websim.Resource{
			URL: "https://" + h + trackerPath(typ), Type: typ, Cookies: cookiesFor(h),
		})
	}
	return out
}

// shortOrg produces a compact lowercase cookie-name fragment for an org.
func shortOrg(name string) string {
	if name == "" {
		return "x"
	}
	s := strings.ToLower(name)
	if len(s) > 6 {
		s = s[:6]
	}
	return s
}
