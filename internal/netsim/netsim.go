// Package netsim is the data-plane substrate: a deterministic simulator of
// the Internet's packet-forwarding behaviour as observed by the study's
// measurement probes. It models autonomous systems, city-placed hosts with
// public IP addresses, a physically-grounded latency model (fiber
// propagation never exceeding the 133 km/ms speed-of-light constraint from
// §4.1), traceroute and ping engines with realistic failure modes, and the
// country-specific probe blocking the paper encountered (volunteer
// traceroutes failed in Australia, India, Qatar and Jordan; the volunteer
// in Egypt opted out of traceroutes entirely).
package netsim

import (
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"github.com/gamma-suite/gamma/internal/geo"
)

// AS is an autonomous system owning address space and hosts.
type AS struct {
	Number  uint32 `json:"asn"`
	Name    string `json:"name"`
	Org     string `json:"org"`
	Country string `json:"country"`
}

// Host is a server (or router) placed in a city.
type Host struct {
	Addr netip.Addr `json:"addr"`
	City geo.City   `json:"city"`
	ASN  uint32     `json:"asn"`
	// RDNS is the PTR hostname, empty when the operator publishes none.
	RDNS string `json:"rdns,omitempty"`
	// Responsive reports whether the host answers ICMP (traceroute can
	// terminate at it). CDN edges usually answer; some origins do not.
	Responsive bool `json:"responsive"`
}

// Vantage is a measurement origin: a volunteer machine or an Atlas probe.
type Vantage struct {
	ID   string   `json:"id"`
	City geo.City `json:"city"`
	ASN  uint32   `json:"asn"`
	// AccessDelayMs is the local last-mile delay added to every probe
	// (DSL/cable/wireless access, home router queueing).
	AccessDelayMs float64 `json:"access_delay_ms"`
	// TracerouteBlocked models networks whose middleboxes drop outbound
	// UDP/ICMP probes: every traceroute fails with no responding hops.
	TracerouteBlocked bool `json:"traceroute_blocked"`
	// Addr is the public address the vantage appears from (NAT exterior).
	Addr netip.Addr `json:"addr"`
}

// Hop is one row of a traceroute result.
type Hop struct {
	Index     int        `json:"hop"`
	Addr      netip.Addr `json:"addr,omitempty"`
	RTTMs     []float64  `json:"rtt_ms,omitempty"` // one entry per probe packet
	Responded bool       `json:"responded"`
}

// BestRTT returns the minimum probe RTT for the hop, or 0 if unresponsive.
func (h Hop) BestRTT() float64 {
	if !h.Responded || len(h.RTTMs) == 0 {
		return 0
	}
	best := h.RTTMs[0]
	for _, v := range h.RTTMs[1:] {
		if v < best {
			best = v
		}
	}
	return best
}

// TraceResult is a completed (or failed) traceroute.
type TraceResult struct {
	From    string     `json:"from"` // vantage ID
	Dst     netip.Addr `json:"dst"`
	Hops    []Hop      `json:"hops"`
	Reached bool       `json:"reached"`
}

// FirstHopRTT returns the earliest responding hop's best RTT (the paper
// subtracts it to remove local-network delay), or 0 if none responded.
func (t TraceResult) FirstHopRTT() float64 {
	for _, h := range t.Hops {
		if h.Responded {
			return h.BestRTT()
		}
	}
	return 0
}

// LastHopRTT returns the destination hop's best RTT when the trace reached
// it, or 0 otherwise.
func (t TraceResult) LastHopRTT() float64 {
	if !t.Reached || len(t.Hops) == 0 {
		return 0
	}
	return t.Hops[len(t.Hops)-1].BestRTT()
}

// Config tunes the simulator's stochastic behaviour.
type Config struct {
	Seed uint64
	// PathInflationMin/Max bound the ratio of fiber-path length to
	// great-circle distance. The minimum must stay above 1.50 so that true
	// locations never violate the 133 km/ms SOL constraint (see geo).
	PathInflationMin float64
	PathInflationMax float64
	// FiberKmPerMs is the one-way signal speed in deployed fiber (~2c/3).
	FiberKmPerMs float64
	// HopNoResponseProb is the chance an intermediate router hides from
	// traceroute (common for MPLS cores and filtered routers).
	HopNoResponseProb float64
	// TraceLossProb is the chance an otherwise-fine traceroute dies in the
	// network before reaching a responsive destination.
	TraceLossProb float64
	// JitterMaxMs bounds per-probe queueing jitter.
	JitterMaxMs float64
	// DisablePathCache forces every probe to re-derive the path model
	// instead of reading the memo — the reference mode equivalence tests
	// compare against. Outputs are byte-identical either way; only the
	// work repeats.
	DisablePathCache bool
}

// DefaultConfig returns production-calibrated defaults.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:              seed,
		PathInflationMin:  1.55,
		PathInflationMax:  2.20,
		FiberKmPerMs:      200.0,
		HopNoResponseProb: 0.12,
		TraceLossProb:     0.09,
		JitterMaxMs:       1.8,
	}
}

// Network is the simulated data plane. It is safe for concurrent probing
// once construction (AddAS/AddHost/AddVantage) has finished.
type Network struct {
	cfg Config

	// pairs memoizes the seeded path model per unordered city pair; see
	// cache.go. It is internally synchronized and must not be copied.
	pairs pairCache

	mu       sync.RWMutex
	ases     map[uint32]*AS
	hosts    map[netip.Addr]*Host
	vantages map[string]*Vantage
	nextIP   uint32 // allocation cursor within 20.0.0.0/6-ish space
}

// New creates an empty network with the given configuration.
func New(cfg Config) *Network {
	if cfg.FiberKmPerMs == 0 {
		disable := cfg.DisablePathCache
		cfg = DefaultConfig(cfg.Seed)
		cfg.DisablePathCache = disable
	}
	return &Network{
		cfg:      cfg,
		ases:     make(map[uint32]*AS),
		hosts:    make(map[netip.Addr]*Host),
		vantages: make(map[string]*Vantage),
		nextIP:   0x14000000, // 20.0.0.0
	}
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// AddAS registers an autonomous system.
func (n *Network) AddAS(as AS) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.ases[as.Number]; dup {
		return fmt.Errorf("netsim: duplicate ASN %d", as.Number)
	}
	n.ases[as.Number] = &as
	return nil
}

// ASByNumber returns a registered AS.
func (n *Network) ASByNumber(asn uint32) (AS, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	as, ok := n.ases[asn]
	if !ok {
		return AS{}, false
	}
	return *as, true
}

// AllocAddr mints a fresh unique public address.
func (n *Network) AllocAddr() netip.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.allocAddrLocked()
}

func (n *Network) allocAddrLocked() netip.Addr {
	for {
		v := n.nextIP
		n.nextIP++
		b := [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
		// Skip .0 and .255 so addresses look like real host addresses.
		if b[3] == 0 || b[3] == 255 {
			continue
		}
		addr := netip.AddrFrom4(b)
		if _, taken := n.hosts[addr]; !taken {
			return addr
		}
	}
}

// AddHost places a host; a zero Addr allocates one. Returns the host.
func (n *Network) AddHost(h Host) (Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !h.Addr.IsValid() {
		h.Addr = n.allocAddrLocked()
	}
	if _, dup := n.hosts[h.Addr]; dup {
		return Host{}, fmt.Errorf("netsim: duplicate host %s", h.Addr)
	}
	if _, ok := n.ases[h.ASN]; !ok {
		return Host{}, fmt.Errorf("netsim: host %s references unknown ASN %d", h.Addr, h.ASN)
	}
	hc := h
	n.hosts[h.Addr] = &hc
	return h, nil
}

// HostByAddr returns the host at an address.
func (n *Network) HostByAddr(addr netip.Addr) (Host, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[addr]
	if !ok {
		return Host{}, false
	}
	return *h, true
}

// Hosts returns all hosts sorted by address (stable iteration for tests).
func (n *Network) Hosts() []Host {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// AddVantage registers a measurement origin; a zero Addr allocates one.
func (n *Network) AddVantage(v Vantage) (Vantage, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if v.ID == "" {
		return Vantage{}, fmt.Errorf("netsim: vantage needs an ID")
	}
	if _, dup := n.vantages[v.ID]; dup {
		return Vantage{}, fmt.Errorf("netsim: duplicate vantage %q", v.ID)
	}
	if !v.Addr.IsValid() {
		v.Addr = n.allocAddrLocked()
	}
	vc := v
	n.vantages[v.ID] = &vc
	return v, nil
}

// VantageByID returns a registered vantage.
func (n *Network) VantageByID(id string) (Vantage, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	v, ok := n.vantages[id]
	if !ok {
		return Vantage{}, false
	}
	return *v, true
}
