package netsim

import (
	"testing"
	"testing/quick"

	"github.com/gamma-suite/gamma/internal/geo"
)

// allCities flattens the registry for indexed property access.
func allCities(t *testing.T) []geo.City {
	t.Helper()
	var out []geo.City
	for _, c := range geo.Default().Countries() {
		out = append(out, c.Cities...)
	}
	if len(out) == 0 {
		t.Fatal("no cities")
	}
	return out
}

// TestBaseRTTSOLProperty: for ANY pair of real cities and ANY seed, the
// floor RTT must respect the 133 km/ms speed-of-light bound — the
// invariant the whole geolocation framework leans on.
func TestBaseRTTSOLProperty(t *testing.T) {
	cities := allCities(t)
	f := func(seed uint64, i, j uint16) bool {
		n := New(DefaultConfig(seed % 1000))
		a := cities[int(i)%len(cities)]
		b := cities[int(j)%len(cities)]
		rtt := n.BaseRTTMs(a, b)
		d := geo.DistanceKm(a.Coord, b.Coord)
		return rtt > 0 && !geo.ViolatesSOL(d, rtt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestBaseRTTSymmetryProperty: the latency model is direction-free.
func TestBaseRTTSymmetryProperty(t *testing.T) {
	cities := allCities(t)
	n := New(DefaultConfig(5))
	f := func(i, j uint16) bool {
		a := cities[int(i)%len(cities)]
		b := cities[int(j)%len(cities)]
		return n.BaseRTTMs(a, b) == n.BaseRTTMs(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestTracerouteInvariants: any simulated trace has monotone hop indexes,
// a Reached bit consistent with its final hop, and per-probe RTTs that
// never undercut the physical floor at the destination.
func TestTracerouteInvariants(t *testing.T) {
	cities := allCities(t)
	n := New(DefaultConfig(17))
	if err := n.AddAS(AS{Number: 1, Name: "p", Org: "p", Country: "FR"}); err != nil {
		t.Fatal(err)
	}
	src := cities[0]
	v, err := n.AddVantage(Vantage{ID: "prop", City: src, ASN: 1, AccessDelayMs: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(i uint16, responsive bool) bool {
		dstCity := cities[int(i)%len(cities)]
		h, err := n.AddHost(Host{City: dstCity, ASN: 1, Responsive: responsive})
		if err != nil {
			return false
		}
		res, err := n.Traceroute(v.ID, h.Addr)
		if err != nil {
			return false
		}
		for k, hop := range res.Hops {
			if hop.Index != k+1 {
				return false
			}
		}
		last := res.Hops[len(res.Hops)-1]
		if res.Reached != (last.Responded && last.Addr == h.Addr) {
			return false
		}
		if !responsive && res.Reached {
			return false
		}
		if res.Reached {
			d := geo.DistanceKm(src.Coord, dstCity.Coord)
			if geo.ViolatesSOL(d, res.LastHopRTT()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
