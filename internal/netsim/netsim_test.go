package netsim

import (
	"net/netip"
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
)

func testNetwork(t *testing.T) (*Network, Vantage, Host) {
	t.Helper()
	n := New(DefaultConfig(42))
	reg := geo.Default()
	if err := n.AddAS(AS{Number: 64500, Name: "TestISP", Org: "Test ISP Ltd", Country: "GB"}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddAS(AS{Number: 64501, Name: "TestCloud", Org: "Cloud Inc", Country: "FR"}); err != nil {
		t.Fatal(err)
	}
	london, _ := reg.City("London, GB")
	paris, _ := reg.City("Paris, FR")
	host, err := n.AddHost(Host{City: paris, ASN: 64501, Responsive: true})
	if err != nil {
		t.Fatal(err)
	}
	v, err := n.AddVantage(Vantage{ID: "vol-gb", City: london, ASN: 64500, AccessDelayMs: 5})
	if err != nil {
		t.Fatal(err)
	}
	return n, v, host
}

func TestAllocAddrUnique(t *testing.T) {
	n := New(DefaultConfig(1))
	seen := map[netip.Addr]bool{}
	for i := 0; i < 2000; i++ {
		a := n.AllocAddr()
		if seen[a] {
			t.Fatalf("duplicate address %s", a)
		}
		if !a.Is4() {
			t.Fatalf("expected IPv4, got %s", a)
		}
		b := a.As4()
		if b[3] == 0 || b[3] == 255 {
			t.Fatalf("allocated network/broadcast-looking address %s", a)
		}
		seen[a] = true
	}
}

func TestAddHostValidation(t *testing.T) {
	n := New(DefaultConfig(1))
	city, _ := geo.Default().City("Paris, FR")
	if _, err := n.AddHost(Host{City: city, ASN: 999}); err == nil {
		t.Error("host with unknown ASN should fail")
	}
	_ = n.AddAS(AS{Number: 999, Name: "x", Org: "x", Country: "FR"})
	h, err := n.AddHost(Host{City: city, ASN: 999})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddHost(Host{Addr: h.Addr, City: city, ASN: 999}); err == nil {
		t.Error("duplicate host address should fail")
	}
	got, ok := n.HostByAddr(h.Addr)
	if !ok || got.ASN != 999 {
		t.Errorf("HostByAddr = %+v (%v)", got, ok)
	}
}

func TestVantageValidation(t *testing.T) {
	n := New(DefaultConfig(1))
	city, _ := geo.Default().City("Doha, QA")
	if _, err := n.AddVantage(Vantage{City: city}); err == nil {
		t.Error("vantage without ID should fail")
	}
	v, err := n.AddVantage(Vantage{ID: "p1", City: city})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Addr.IsValid() {
		t.Error("vantage should get an allocated address")
	}
	if _, err := n.AddVantage(Vantage{ID: "p1", City: city}); err == nil {
		t.Error("duplicate vantage ID should fail")
	}
}

func TestBaseRTTRespectsSOL(t *testing.T) {
	n := New(DefaultConfig(7))
	reg := geo.Default()
	cities := []string{"London, GB", "Paris, FR", "Tokyo, JP", "Sydney, AU", "Nairobi, KE", "Ashburn, US", "Kigali, RW", "Auckland, NZ"}
	for _, a := range cities {
		for _, b := range cities {
			ca, _ := reg.City(a)
			cb, _ := reg.City(b)
			rtt := n.BaseRTTMs(ca, cb)
			d := geo.DistanceKm(ca.Coord, cb.Coord)
			if geo.ViolatesSOL(d, rtt) {
				t.Errorf("BaseRTT %s->%s = %.2f ms violates SOL for %.0f km", a, b, rtt, d)
			}
			if rtt <= 0 {
				t.Errorf("BaseRTT %s->%s = %.2f must be positive", a, b, rtt)
			}
		}
	}
}

func TestBaseRTTSymmetricAndScales(t *testing.T) {
	n := New(DefaultConfig(3))
	reg := geo.Default()
	ldn, _ := reg.City("London, GB")
	par, _ := reg.City("Paris, FR")
	syd, _ := reg.City("Sydney, AU")
	if n.BaseRTTMs(ldn, par) != n.BaseRTTMs(par, ldn) {
		t.Error("BaseRTT must be symmetric")
	}
	if n.BaseRTTMs(ldn, syd) <= n.BaseRTTMs(ldn, par) {
		t.Error("longer paths must have larger RTT")
	}
}

func TestTracerouteReachesResponsiveHost(t *testing.T) {
	// Scan across many destinations; with loss ~6% most traces must reach.
	n := New(DefaultConfig(11))
	reg := geo.Default()
	_ = n.AddAS(AS{Number: 1, Name: "isp", Org: "isp", Country: "GB"})
	ldn, _ := reg.City("London, GB")
	par, _ := reg.City("Paris, FR")
	v, _ := n.AddVantage(Vantage{ID: "v", City: ldn, ASN: 1, AccessDelayMs: 4})
	reached, total := 0, 200
	for i := 0; i < total; i++ {
		h, err := n.AddHost(Host{City: par, ASN: 1, Responsive: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Traceroute(v.ID, h.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached {
			reached++
			last := res.Hops[len(res.Hops)-1]
			if last.Addr != h.Addr {
				t.Fatalf("reached trace must end at destination, got %s", last.Addr)
			}
			if res.LastHopRTT() <= 0 {
				t.Fatal("reached trace must have positive last-hop RTT")
			}
			if fh := res.FirstHopRTT(); fh > 0 && fh > res.LastHopRTT()+15 {
				t.Fatalf("first hop RTT %.2f wildly above last hop %.2f", fh, res.LastHopRTT())
			}
		}
	}
	if reached < total*80/100 {
		t.Errorf("only %d/%d traces reached a responsive host", reached, total)
	}
	if reached == total {
		t.Error("expected some traces to fail (loss model)")
	}
}

func TestTracerouteLastHopRespectsSOL(t *testing.T) {
	n := New(DefaultConfig(13))
	reg := geo.Default()
	_ = n.AddAS(AS{Number: 1, Name: "isp", Org: "isp", Country: "PK"})
	khi, _ := reg.City("Karachi, PK")
	v, _ := n.AddVantage(Vantage{ID: "v", City: khi, ASN: 1, AccessDelayMs: 6})
	dests := []string{"Paris, FR", "Frankfurt, DE", "Dubai, AE", "Muscat, OM", "Singapore, SG"}
	for _, cid := range dests {
		c, _ := reg.City(cid)
		h, _ := n.AddHost(Host{City: c, ASN: 1, Responsive: true})
		res, err := n.Traceroute(v.ID, h.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached {
			continue
		}
		d := geo.DistanceKm(khi.Coord, c.Coord)
		if geo.ViolatesSOL(d, res.LastHopRTT()) {
			t.Errorf("trace to %s: RTT %.2f ms violates SOL for %.0f km", cid, res.LastHopRTT(), d)
		}
	}
}

func TestTracerouteBlockedVantage(t *testing.T) {
	n, _, h := testNetwork(t)
	reg := geo.Default()
	sydney, _ := reg.City("Sydney, AU")
	v, _ := n.AddVantage(Vantage{ID: "vol-au", City: sydney, ASN: 64500, AccessDelayMs: 8, TracerouteBlocked: true})
	res, err := n.Traceroute(v.ID, h.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Error("blocked vantage must never reach")
	}
	for _, hop := range res.Hops {
		if hop.Responded {
			t.Error("blocked vantage must see no responding hops")
		}
	}
	if res.FirstHopRTT() != 0 || res.LastHopRTT() != 0 {
		t.Error("blocked trace must report zero RTTs")
	}
}

func TestTracerouteUnknownDestination(t *testing.T) {
	n, v, _ := testNetwork(t)
	res, err := n.Traceroute(v.ID, netip.MustParseAddr("203.0.113.7"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Error("unknown destination must not be reached")
	}
}

func TestTracerouteUnknownVantage(t *testing.T) {
	n, _, h := testNetwork(t)
	if _, err := n.Traceroute("nobody", h.Addr); err == nil {
		t.Error("unknown vantage should error")
	}
}

func TestTracerouteUnresponsiveDestination(t *testing.T) {
	n, v, _ := testNetwork(t)
	reg := geo.Default()
	paris, _ := reg.City("Paris, FR")
	for i := 0; i < 20; i++ {
		h, _ := n.AddHost(Host{City: paris, ASN: 64501, Responsive: false})
		res, err := n.Traceroute(v.ID, h.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reached {
			t.Fatal("unresponsive destination must never be reached")
		}
	}
}

func TestTracerouteDeterministic(t *testing.T) {
	n1, v1, h1 := testNetwork(t)
	r1, _ := n1.Traceroute(v1.ID, h1.Addr)
	n2, v2, h2 := testNetwork(t)
	r2, _ := n2.Traceroute(v2.ID, h2.Addr)
	if len(r1.Hops) != len(r2.Hops) || r1.Reached != r2.Reached {
		t.Fatal("identical seeds must give identical traces")
	}
	for i := range r1.Hops {
		if r1.Hops[i].BestRTT() != r2.Hops[i].BestRTT() {
			t.Fatal("hop RTTs must be deterministic")
		}
	}
}

func TestPing(t *testing.T) {
	n, v, h := testNetwork(t)
	rtt, ok, err := n.Ping(v.ID, h.Addr)
	if err != nil || !ok {
		t.Fatalf("ping failed: ok=%v err=%v", ok, err)
	}
	if rtt <= v.AccessDelayMs {
		t.Errorf("ping RTT %.2f must include access delay %.2f", rtt, v.AccessDelayMs)
	}
	if _, ok, _ := n.Ping(v.ID, netip.MustParseAddr("203.0.113.9")); ok {
		t.Error("ping to unknown host must fail")
	}
	if _, _, err := n.Ping("nobody", h.Addr); err == nil {
		t.Error("ping from unknown vantage should error")
	}
}

func TestHostsSorted(t *testing.T) {
	n, _, _ := testNetwork(t)
	reg := geo.Default()
	paris, _ := reg.City("Paris, FR")
	for i := 0; i < 10; i++ {
		if _, err := n.AddHost(Host{City: paris, ASN: 64501, Responsive: true}); err != nil {
			t.Fatal(err)
		}
	}
	hosts := n.Hosts()
	for i := 1; i < len(hosts); i++ {
		if !hosts[i-1].Addr.Less(hosts[i].Addr) {
			t.Fatal("Hosts() must be sorted by address")
		}
	}
}

func TestHopBestRTT(t *testing.T) {
	h := Hop{Responded: true, RTTMs: []float64{5.2, 4.1, 6.3}}
	if h.BestRTT() != 4.1 {
		t.Errorf("BestRTT = %v, want 4.1", h.BestRTT())
	}
	if (Hop{}).BestRTT() != 0 {
		t.Error("unresponsive hop BestRTT should be 0")
	}
}
