package netsim

import (
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
)

func benchNet(b *testing.B) (*Network, Vantage, Host) {
	b.Helper()
	n := New(DefaultConfig(1))
	reg := geo.Default()
	if err := n.AddAS(AS{Number: 1, Name: "b", Org: "b", Country: "GB"}); err != nil {
		b.Fatal(err)
	}
	ldn, _ := reg.City("London, GB")
	tok, _ := reg.City("Tokyo, JP")
	v, err := n.AddVantage(Vantage{ID: "b", City: ldn, ASN: 1, AccessDelayMs: 5})
	if err != nil {
		b.Fatal(err)
	}
	h, err := n.AddHost(Host{City: tok, ASN: 1, Responsive: true})
	if err != nil {
		b.Fatal(err)
	}
	return n, v, h
}

func BenchmarkTraceroute(b *testing.B) {
	n, v, h := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Traceroute(v.ID, h.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseRTT(b *testing.B) {
	n, v, h := benchNet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.BaseRTTMs(v.City, h.City)
	}
}
