package netsim

import (
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
)

func benchNet(b *testing.B) (*Network, Vantage, Host) {
	b.Helper()
	n := New(DefaultConfig(1))
	reg := geo.Default()
	if err := n.AddAS(AS{Number: 1, Name: "b", Org: "b", Country: "GB"}); err != nil {
		b.Fatal(err)
	}
	ldn, _ := reg.City("London, GB")
	tok, _ := reg.City("Tokyo, JP")
	v, err := n.AddVantage(Vantage{ID: "b", City: ldn, ASN: 1, AccessDelayMs: 5})
	if err != nil {
		b.Fatal(err)
	}
	h, err := n.AddHost(Host{City: tok, ASN: 1, Responsive: true})
	if err != nil {
		b.Fatal(err)
	}
	return n, v, h
}

// BenchmarkTraceroute measures the responsive-host probe path as the study
// drives it: a reused TraceBuf, so the engine's zero-allocation discipline
// shows up as allocs/op = 0.
func BenchmarkTraceroute(b *testing.B) {
	n, v, h := benchNet(b)
	var buf TraceBuf
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.TracerouteInto(v.ID, h.Addr, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerouteFresh measures the allocating convenience wrapper.
func BenchmarkTracerouteFresh(b *testing.B) {
	n, v, h := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Traceroute(v.ID, h.Addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaseRTT(b *testing.B) {
	n, v, h := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.BaseRTTMs(v.City, h.City)
	}
}

// BenchmarkPing measures the best-of-three RTT probe.
func BenchmarkPing(b *testing.B) {
	n, v, h := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := n.Ping(v.ID, h.Addr); err != nil || !ok {
			b.Fatal("ping failed")
		}
	}
}
