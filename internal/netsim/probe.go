package netsim

import (
	"fmt"
	"math"
	"net/netip"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/rng"
)

const maxHops = 30

// pathInflation returns the deterministic fiber-path stretch factor for an
// unordered city pair. Real paths are never great circles; the factor stays
// above Config.PathInflationMin (> 1.50), which guarantees that probes to a
// host's true location can never appear faster than the 133 km/ms SOL bound.
func (n *Network) pathInflation(a, b geo.City) float64 {
	ka, kb := a.ID(), b.ID()
	if kb < ka {
		ka, kb = kb, ka
	}
	r := rng.New(n.cfg.Seed, "path-inflation", ka, kb)
	return rng.Float64InRange(r, n.cfg.PathInflationMin, n.cfg.PathInflationMax)
}

// hopCount returns the number of router hops on the path between two cities.
// Like pathInflation it is symmetric in its arguments.
func (n *Network) hopCount(a, b geo.City) int {
	d := geo.DistanceKm(a.Coord, b.Coord)
	ka, kb := a.ID(), b.ID()
	if kb < ka {
		ka, kb = kb, ka
	}
	r := rng.New(n.cfg.Seed, "hop-count", ka, kb)
	h := 3 + int(d/900) + r.IntN(4)
	if h > 22 {
		h = 22
	}
	return h
}

// BaseRTTMs returns the deterministic floor round-trip time between two
// cities: fiber propagation over the inflated path plus per-hop forwarding
// overhead, with no queueing jitter. Same-city pairs still pay metro delay.
func (n *Network) BaseRTTMs(a, b geo.City) float64 {
	d := geo.DistanceKm(a.Coord, b.Coord)
	infl := n.pathInflation(a, b)
	prop := 2 * d * infl / n.cfg.FiberKmPerMs
	perHop := 0.08 * float64(n.hopCount(a, b))
	metro := 0.4 // intra-facility switching floor
	return prop + perHop + metro
}

// routerAddr derives a stable pseudo-address for an intermediate hop. The
// 198.18.0.0/15 benchmarking range keeps router addresses disjoint from
// simulated host space.
func routerAddr(seed uint64, pathKey string, hop int) netip.Addr {
	h := rng.Hash(pathKey, fmt.Sprintf("hop-%d-%d", hop, seed))
	return netip.AddrFrom4([4]byte{198, 18 + byte(h>>16&1), byte(h >> 8), 1 + byte(h%254)})
}

// Traceroute launches a traceroute from a registered vantage toward dst,
// reproducing the behaviours Gamma has to cope with in the field: blocked
// probes, silent routers, unresponsive destinations, and in-flight loss.
func (n *Network) Traceroute(vantageID string, dst netip.Addr) (TraceResult, error) {
	v, ok := n.VantageByID(vantageID)
	if !ok {
		return TraceResult{}, fmt.Errorf("netsim: unknown vantage %q", vantageID)
	}
	res := TraceResult{From: vantageID, Dst: dst}
	if v.TracerouteBlocked {
		// Middlebox swallows every probe: the volunteer sees rows of "* * *".
		for i := 1; i <= 5; i++ {
			res.Hops = append(res.Hops, Hop{Index: i})
		}
		return res, nil
	}

	host, known := n.HostByAddr(dst)
	pathKey := v.ID + "->" + dst.String()
	r := rng.New(n.cfg.Seed, "trace", pathKey)

	if !known {
		// No such destination: probes wander then die.
		hops := 4 + r.IntN(5)
		for i := 1; i <= hops; i++ {
			res.Hops = append(res.Hops, Hop{Index: i})
		}
		return res, nil
	}

	hops := n.hopCount(v.City, host.City)
	base := n.BaseRTTMs(v.City, host.City)
	lost := rng.Bernoulli(r, n.cfg.TraceLossProb)
	lossAt := hops + 1
	if lost || !host.Responsive {
		// The trace never completes; probes stop answering partway or at the end.
		lossAt = 1 + r.IntN(hops)
		if !host.Responsive && !lost {
			lossAt = hops // silent destination: all intermediate hops respond
		}
	}

	for i := 1; i <= hops; i++ {
		hop := Hop{Index: i}
		isDst := i == hops
		if i > lossAt || (isDst && (lost || !host.Responsive)) {
			res.Hops = append(res.Hops, hop)
			continue
		}
		if !isDst && i > 1 && rng.Bernoulli(r, n.cfg.HopNoResponseProb) {
			// The first hop is the volunteer's own gateway and always
			// answers; silence starts at provider routers. This matters:
			// when hop 1 is missing, the source constraint falls back to
			// the raw last-hop RTT (access delay included), which lets
			// geolocation errors slip past the SOL check.
			res.Hops = append(res.Hops, hop)
			continue
		}
		// RTT grows along the path: the first hop is the local gateway
		// (access delay only), later hops add a progressive share of the
		// end-to-end base RTT, and the destination pays it in full. This
		// keeps (last hop - first hop) ≈ base, which the source-based
		// constraint relies on when subtracting local-network delay.
		frac := 0.0
		if hops > 1 {
			frac = float64(i-1) / float64(hops-1)
		}
		if isDst {
			frac = 1.0
		}
		hopBase := v.AccessDelayMs + base*frac
		hop.Responded = true
		if isDst {
			hop.Addr = dst
		} else {
			hop.Addr = routerAddr(n.cfg.Seed, pathKey, i)
		}
		for p := 0; p < 3; p++ {
			jitter := rng.Float64InRange(r, 0, n.cfg.JitterMaxMs)
			if rng.Bernoulli(r, 0.03) { // occasional queue spike
				jitter += rng.Float64InRange(r, 2, 12)
			}
			hop.RTTMs = append(hop.RTTMs, round2(hopBase+jitter))
		}
		res.Hops = append(res.Hops, hop)
	}
	last := res.Hops[len(res.Hops)-1]
	res.Reached = last.Responded && last.Addr == dst
	return res, nil
}

// Ping measures the best-of-three RTT from a vantage to dst. ok is false
// when the destination does not answer.
func (n *Network) Ping(vantageID string, dst netip.Addr) (rtt float64, ok bool, err error) {
	v, vok := n.VantageByID(vantageID)
	if !vok {
		return 0, false, fmt.Errorf("netsim: unknown vantage %q", vantageID)
	}
	host, known := n.HostByAddr(dst)
	if !known || !host.Responsive {
		return 0, false, nil
	}
	r := rng.New(n.cfg.Seed, "ping", v.ID, dst.String())
	base := v.AccessDelayMs + n.BaseRTTMs(v.City, host.City)
	best := math.Inf(1)
	for p := 0; p < 3; p++ {
		sample := base + rng.Float64InRange(r, 0, n.cfg.JitterMaxMs)
		if sample < best {
			best = sample
		}
	}
	return round2(best), true, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
