package netsim

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/rng"
)

const (
	maxHops      = 30
	probesPerHop = 3
)

// pathInflation returns the deterministic fiber-path stretch factor for an
// unordered city pair. Real paths are never great circles; the factor stays
// above Config.PathInflationMin (> 1.50), which guarantees that probes to a
// host's true location can never appear faster than the 133 km/ms SOL bound.
func (n *Network) pathInflation(a, b geo.City) float64 { return n.pairParams(a, b).inflation }

// hopCount returns the number of router hops on the path between two cities.
// Like pathInflation it is symmetric in its arguments.
func (n *Network) hopCount(a, b geo.City) int { return n.pairParams(a, b).hops }

// BaseRTTMs returns the deterministic floor round-trip time between two
// cities: fiber propagation over the inflated path plus per-hop forwarding
// overhead, with no queueing jitter. Same-city pairs still pay metro delay.
func (n *Network) BaseRTTMs(a, b geo.City) float64 { return n.pairParams(a, b).baseRTT }

// routerAddrFrom maps a hop hash into a stable pseudo-address. The
// 198.18.0.0/15 benchmarking range keeps router addresses disjoint from
// simulated host space.
func routerAddrFrom(h uint64) netip.Addr {
	return netip.AddrFrom4([4]byte{198, 18 + byte(h>>16&1), byte(h >> 8), 1 + byte(h%254)})
}

// TraceBuf holds reusable backing storage for TracerouteInto. A zero value
// is ready to use; the first trace sizes it. Results returned through a
// buffer alias its arrays, so a result is valid only until the next
// TracerouteInto call with the same buffer — callers that keep results
// must copy them (or use Traceroute, which allocates fresh storage).
type TraceBuf struct {
	hops []Hop
	rtts []float64
}

// grow sizes the buffer for the deepest possible trace.
//
//gamma:coldpath buffer growth runs once per TraceBuf lifetime
func (b *TraceBuf) grow() {
	b.hops = make([]Hop, 0, maxHops)
	b.rtts = make([]float64, 0, probesPerHop*maxHops)
}

// errUnknownVantage builds the unknown-vantage error.
//
//gamma:coldpath error construction: an unknown vantage is a caller bug, not probe traffic
func errUnknownVantage(id string) error {
	return fmt.Errorf("netsim: unknown vantage %q", id)
}

// Traceroute launches a traceroute from a registered vantage toward dst,
// reproducing the behaviours Gamma has to cope with in the field: blocked
// probes, silent routers, unresponsive destinations, and in-flight loss.
// It allocates a fresh result; the study's probe loop uses TracerouteInto
// with a reused buffer instead.
func (n *Network) Traceroute(vantageID string, dst netip.Addr) (TraceResult, error) {
	var buf TraceBuf
	return n.TracerouteInto(vantageID, dst, &buf)
}

// TracerouteInto is the zero-allocation probe engine behind Traceroute:
// identical draws, identical bytes, but hop and RTT storage comes from buf
// and the seeded stream keys are folded through stack buffers instead of
// fmt.Sprintf and string concatenation. The returned result aliases buf
// (see TraceBuf).
//
//gamma:hotpath per-probe engine: one call per (volunteer, resolved address); reused buffers, stack-built keys
func (n *Network) TracerouteInto(vantageID string, dst netip.Addr, buf *TraceBuf) (TraceResult, error) {
	v, ok := n.VantageByID(vantageID)
	if !ok {
		return TraceResult{}, errUnknownVantage(vantageID)
	}
	if cap(buf.hops) < maxHops || cap(buf.rtts) < probesPerHop*maxHops {
		buf.grow()
	}
	hops := buf.hops[:0]
	rtts := buf.rtts[:0]

	res := TraceResult{From: vantageID, Dst: dst}
	if v.TracerouteBlocked {
		// Middlebox swallows every probe: the volunteer sees rows of "* * *".
		for i := 1; i <= 5; i++ {
			hops = append(hops, Hop{Index: i})
		}
		res.Hops = hops
		return res, nil
	}

	host, known := n.HostByAddr(dst)

	// The jitter stream is keyed ("trace", v.ID + "->" + dst.String());
	// fold the path key from fragments so no string is materialized. The
	// same fragments minus the "trace" prefix seed every router address on
	// the path, so that partial hash is kept for the hop loop.
	var ab [48]byte
	adst := dst.AppendTo(ab[:0])
	r := rng.NewStream(n.cfg.Seed, rng.NewHasher().Key("trace").Write(v.ID).Write("->").KeyBytes(adst).Sum())
	pathHash := rng.NewHasher().Write(v.ID).Write("->").KeyBytes(adst)

	if !known {
		// No such destination: probes wander then die.
		wander := 4 + r.IntN(5)
		for i := 1; i <= wander; i++ {
			hops = append(hops, Hop{Index: i})
		}
		res.Hops = hops
		return res, nil
	}

	pp := n.pairParams(v.City, host.City)
	nHops := pp.hops
	base := pp.baseRTT
	lost := r.Bernoulli(n.cfg.TraceLossProb)
	lossAt := nHops + 1
	if lost || !host.Responsive {
		// The trace never completes; probes stop answering partway or at the end.
		lossAt = 1 + r.IntN(nHops)
		if !host.Responsive && !lost {
			lossAt = nHops // silent destination: all intermediate hops respond
		}
	}

	// Router-address hashes append "hop-<i>-<seed>" to the path key; the
	// seed's decimal suffix is loop-invariant, so render it once.
	var sb [24]byte
	seedSuf := strconv.AppendUint(append(sb[:0], '-'), n.cfg.Seed, 10)

	for i := 1; i <= nHops; i++ {
		hop := Hop{Index: i}
		isDst := i == nHops
		if i > lossAt || (isDst && (lost || !host.Responsive)) {
			hops = append(hops, hop)
			continue
		}
		if !isDst && i > 1 && r.Bernoulli(n.cfg.HopNoResponseProb) {
			// The first hop is the volunteer's own gateway and always
			// answers; silence starts at provider routers. This matters:
			// when hop 1 is missing, the source constraint falls back to
			// the raw last-hop RTT (access delay included), which lets
			// geolocation errors slip past the SOL check.
			hops = append(hops, hop)
			continue
		}
		// RTT grows along the path: the first hop is the local gateway
		// (access delay only), later hops add a progressive share of the
		// end-to-end base RTT, and the destination pays it in full. This
		// keeps (last hop - first hop) ≈ base, which the source-based
		// constraint relies on when subtracting local-network delay.
		frac := 0.0
		if nHops > 1 {
			frac = float64(i-1) / float64(nHops-1)
		}
		if isDst {
			frac = 1.0
		}
		hopBase := v.AccessDelayMs + base*frac
		hop.Responded = true
		if isDst {
			hop.Addr = dst
		} else {
			var hb [32]byte
			hk := strconv.AppendInt(append(hb[:0], "hop-"...), int64(i), 10)
			hk = append(hk, seedSuf...)
			hop.Addr = routerAddrFrom(pathHash.KeyBytes(hk).Sum())
		}
		start := len(rtts)
		for p := 0; p < probesPerHop; p++ {
			jitter := r.Float64InRange(0, n.cfg.JitterMaxMs)
			if r.Bernoulli(0.03) { // occasional queue spike
				jitter += r.Float64InRange(2, 12)
			}
			rtts = append(rtts, round2(hopBase+jitter))
		}
		hop.RTTMs = rtts[start : start+probesPerHop : start+probesPerHop]
		hops = append(hops, hop)
	}
	last := hops[len(hops)-1]
	res.Hops = hops
	res.Reached = last.Responded && last.Addr == dst
	return res, nil
}

// Ping measures the best-of-three RTT from a vantage to dst. ok is false
// when the destination does not answer.
//
//gamma:hotpath best-of-three RTT probe; one call per resolved address
func (n *Network) Ping(vantageID string, dst netip.Addr) (rtt float64, ok bool, err error) {
	v, vok := n.VantageByID(vantageID)
	if !vok {
		return 0, false, errUnknownVantage(vantageID)
	}
	host, known := n.HostByAddr(dst)
	if !known || !host.Responsive {
		return 0, false, nil
	}
	var ab [48]byte
	adst := dst.AppendTo(ab[:0])
	r := rng.NewStream(n.cfg.Seed, rng.NewHasher().Key("ping").Key(v.ID).KeyBytes(adst).Sum())
	base := v.AccessDelayMs + n.pairParams(v.City, host.City).baseRTT
	best := math.Inf(1)
	for p := 0; p < probesPerHop; p++ {
		sample := base + r.Float64InRange(0, n.cfg.JitterMaxMs)
		if sample < best {
			best = sample
		}
	}
	return round2(best), true, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
