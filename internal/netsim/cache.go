package netsim

import (
	"sync"
	"sync/atomic"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/rng"
)

// The path model — inflation factor, hop count, base RTT — is a pure
// function of (seed, unordered city pair): its draws come from dedicated
// "path-inflation"/"hop-count" streams keyed only by the pair, never from
// the per-probe "trace"/"ping" jitter streams. That makes it memoizable
// without touching a single output byte; before this cache every
// Traceroute re-ran haversine plus two keyed-RNG derivations (and computed
// geo.DistanceKm twice — once in hopCount, once in BaseRTTMs). A study
// probes the same (vantage city, host city) pair thousands of times, so
// the cache turns the per-probe path model into one sharded map read.
//
// The layout follows geoloc's destCache (PR 2): fixed shards picked by
// key hash, read-mostly RWMutex access, atomic hit/miss counters, and
// single-flight derivation — a global fill lock plus a re-check means each
// unordered pair is derived exactly once per Network, which the race test
// asserts. Both orientations of a pair are stored so the hot lookup never
// has to canonicalize (comparing full city IDs would mean rebuilding the
// "Name, CC" strings; the derivation still canonicalizes by ID to hit the
// seeded streams).

// pathParams bundles every derived quantity of the seeded path model for
// one unordered city pair.
type pathParams struct {
	distKm    float64
	inflation float64
	hops      int
	baseRTT   float64
}

const pairShards = 16

// pairKey identifies a city pair in the orientation the caller supplied.
type pairKey struct {
	aName, aCountry string
	bName, bCountry string
}

type pairShard struct {
	mu      sync.RWMutex
	entries map[pairKey]pathParams
}

// pairCache is the sharded, read-mostly memo for the path model.
type pairCache struct {
	shards [pairShards]pairShard

	// fillMu serializes derivations: a miss re-probes under it before
	// deriving, so concurrent first probes of the same pair produce one
	// derivation (single-flight). Derivation is microseconds of arithmetic,
	// so a single fill lock never becomes a steady-state bottleneck — after
	// warmup every access is a shard RLock.
	fillMu sync.Mutex

	hits        atomic.Uint64
	misses      atomic.Uint64
	derivations atomic.Uint64
}

// PathCacheStats is a point-in-time snapshot of the path-model memo.
type PathCacheStats struct {
	// Hits counts probes served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts probes that had to enter the fill path (several early
	// probes of one pair can miss concurrently; all but one then find the
	// entry under the fill lock).
	Misses uint64 `json:"misses"`
	// Derivations counts actual path-model computations — exactly one per
	// unique unordered pair probed.
	Derivations uint64 `json:"derivations"`
}

// PathCacheStats returns the current cache counters.
func (n *Network) PathCacheStats() PathCacheStats {
	return PathCacheStats{
		Hits:        n.pairs.hits.Load(),
		Misses:      n.pairs.misses.Load(),
		Derivations: n.pairs.derivations.Load(),
	}
}

// pairShardOf picks the shard for a key without building the key strings.
func (c *pairCache) pairShardOf(a, b geo.City) *pairShard {
	h := rng.NewHasher().Key(a.Name).Key(a.Country).Key(b.Name).Key(b.Country).Sum()
	return &c.shards[h%pairShards]
}

// pairParams returns the memoized path model for (a, b), deriving it on
// first use. It sits on the probe hot path: a hit is one hash, one shard
// RLock, and one map read, with no allocation.
func (n *Network) pairParams(a, b geo.City) pathParams {
	if n.cfg.DisablePathCache {
		return n.derivePathParams(a, b)
	}
	sh := n.pairs.pairShardOf(a, b)
	k := pairKey{a.Name, a.Country, b.Name, b.Country}
	sh.mu.RLock()
	p, ok := sh.entries[k]
	sh.mu.RUnlock()
	if ok {
		n.pairs.hits.Add(1)
		return p
	}
	return n.pairFill(a, b)
}

// pairFill derives and stores the path model for a pair under the
// single-flight fill lock.
//
//gamma:coldpath cache miss: each unordered pair is derived once per Network
func (n *Network) pairFill(a, b geo.City) pathParams {
	c := &n.pairs
	c.misses.Add(1)
	c.fillMu.Lock()
	defer c.fillMu.Unlock()

	k := pairKey{a.Name, a.Country, b.Name, b.Country}
	sh := c.pairShardOf(a, b)
	sh.mu.RLock()
	p, ok := sh.entries[k]
	sh.mu.RUnlock()
	if ok {
		// Another goroutine derived the pair while we waited on fillMu.
		return p
	}

	p = n.derivePathParams(a, b)
	c.derivations.Add(1)
	c.storePair(k, p)
	if rk := (pairKey{b.Name, b.Country, a.Name, a.Country}); rk != k {
		c.storePair(rk, p)
	}
	return p
}

func (c *pairCache) storePair(k pairKey, p pathParams) {
	sh := &c.shards[rng.NewHasher().Key(k.aName).Key(k.aCountry).Key(k.bName).Key(k.bCountry).Sum()%pairShards]
	sh.mu.Lock()
	if sh.entries == nil {
		sh.entries = make(map[pairKey]pathParams)
	}
	sh.entries[k] = p
	sh.mu.Unlock()
}

// derivePathParams computes the full path model for a pair from the seeded
// streams. It is the reference implementation the cache memoizes and the
// only path taken when Config.DisablePathCache is set; equivalence tests
// compare study outputs across the two modes byte for byte. The haversine
// distance is computed exactly once and shared by the hop-count and
// base-RTT formulas (the pre-memoization code called geo.DistanceKm from
// both hopCount and BaseRTTMs).
//
//gamma:coldpath reference derivation: allocates keyed RNG streams; runs once per pair (or per call in DisablePathCache mode)
func (n *Network) derivePathParams(a, b geo.City) pathParams {
	d := geo.DistanceKm(a.Coord, b.Coord)
	ka, kb := a.ID(), b.ID()
	if kb < ka {
		ka, kb = kb, ka
	}
	ri := rng.New(n.cfg.Seed, "path-inflation", ka, kb)
	infl := rng.Float64InRange(ri, n.cfg.PathInflationMin, n.cfg.PathInflationMax)
	rh := rng.New(n.cfg.Seed, "hop-count", ka, kb)
	h := 3 + int(d/900) + rh.IntN(4)
	if h > 22 {
		h = 22
	}
	prop := 2 * d * infl / n.cfg.FiberKmPerMs
	perHop := 0.08 * float64(h)
	metro := 0.4 // intra-facility switching floor
	return pathParams{distKm: d, inflation: infl, hops: h, baseRTT: prop + perHop + metro}
}
