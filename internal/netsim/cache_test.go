package netsim

import (
	"fmt"
	"sync"
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
)

// raceCities returns a working set of cities for cache hammering.
func raceCities(t *testing.T, n int) []geo.City {
	t.Helper()
	reg := geo.Default()
	var all []geo.City
	for _, c := range reg.Countries() {
		all = append(all, c.Cities...)
	}
	if len(all) < n {
		t.Fatalf("registry has %d cities, need %d", len(all), n)
	}
	return all[:n]
}

// TestPairCacheConcurrentRace hammers the path-model memo from 8 goroutines
// over overlapping city pairs. Run under -race this is the regression test
// for the pair cache; the stats assertions prove the single-flight
// invariant: exactly one derivation per unique unordered pair, no matter
// how many goroutines ask or in which orientation.
func TestPairCacheConcurrentRace(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
		nCities    = 6
	)
	cities := raceCities(t, nCities)
	net := New(DefaultConfig(7))

	// Serial reference on an identical network with the cache disabled: the
	// derivation is deterministic, so both modes must agree exactly.
	refCfg := DefaultConfig(7)
	refCfg.DisablePathCache = true
	ref := New(refCfg)
	type pair struct{ a, b geo.City }
	var pairs []pair
	want := map[[2]string]float64{}
	for _, a := range cities {
		for _, b := range cities {
			pairs = append(pairs, pair{a, b})
			want[[2]string{a.ID(), b.ID()}] = ref.BaseRTTMs(a, b)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the pairs at a different phase so
				// fills overlap in every interleaving.
				for i := range pairs {
					p := pairs[(i+g)%len(pairs)]
					got := net.BaseRTTMs(p.a, p.b)
					if w := want[[2]string{p.a.ID(), p.b.ID()}]; got != w {
						select {
						case errs <- fmt.Sprintf("%s->%s: got %v want %v", p.a.ID(), p.b.ID(), got, w):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := net.PathCacheStats()
	// nCities choose 2 unordered pairs plus the same-city diagonals.
	unordered := uint64(nCities*(nCities-1)/2 + nCities)
	if st.Derivations != unordered {
		t.Errorf("derivations = %d, want exactly one per unordered pair (%d)", st.Derivations, unordered)
	}
	total := uint64(goroutines * rounds * len(pairs))
	if st.Hits+st.Misses != total {
		t.Errorf("hits(%d)+misses(%d) != calls(%d)", st.Hits, st.Misses, total)
	}
	if st.Misses < st.Derivations {
		t.Errorf("misses(%d) < derivations(%d): every derivation starts as a miss", st.Misses, st.Derivations)
	}
}

// TestPairCacheMatchesReference pins the memoized path model against the
// DisablePathCache reference across every registry pair, in both
// orientations, covering pathInflation, hopCount, and BaseRTTMs.
func TestPairCacheMatchesReference(t *testing.T) {
	cities := raceCities(t, 10)
	cached := New(DefaultConfig(11))
	refCfg := DefaultConfig(11)
	refCfg.DisablePathCache = true
	ref := New(refCfg)
	for _, a := range cities {
		for _, b := range cities {
			if g, w := cached.BaseRTTMs(a, b), ref.BaseRTTMs(a, b); g != w {
				t.Fatalf("BaseRTTMs(%s, %s) = %v, reference %v", a.ID(), b.ID(), g, w)
			}
			if g, w := cached.hopCount(a, b), ref.hopCount(a, b); g != w {
				t.Fatalf("hopCount(%s, %s) = %v, reference %v", a.ID(), b.ID(), g, w)
			}
			if g, w := cached.pathInflation(a, b), ref.pathInflation(a, b); g != w {
				t.Fatalf("pathInflation(%s, %s) = %v, reference %v", a.ID(), b.ID(), g, w)
			}
		}
	}
	if st := ref.PathCacheStats(); st.Hits != 0 || st.Misses != 0 || st.Derivations != 0 {
		t.Errorf("reference network touched the cache: %+v", st)
	}
}

// TestPairCacheSymmetric pins that both orientations of a pair read the
// same entry: after warming one orientation, the reverse is a hit.
func TestPairCacheSymmetric(t *testing.T) {
	cities := raceCities(t, 2)
	net := New(DefaultConfig(3))
	a, b := cities[0], cities[1]
	fwd := net.BaseRTTMs(a, b)
	if st := net.PathCacheStats(); st.Derivations != 1 {
		t.Fatalf("derivations after first probe = %d, want 1", st.Derivations)
	}
	rev := net.BaseRTTMs(b, a)
	if fwd != rev {
		t.Fatalf("asymmetric base RTT: %v vs %v", fwd, rev)
	}
	st := net.PathCacheStats()
	if st.Derivations != 1 {
		t.Fatalf("reverse orientation re-derived: derivations = %d", st.Derivations)
	}
	if st.Hits != 1 {
		t.Fatalf("reverse orientation missed: hits = %d", st.Hits)
	}
}
