package lint

import (
	"go/types"
	"strings"
)

// wallTimeFuncs are the time-package functions that read or pace the wall
// clock. Pure construction/formatting (time.Date, time.Parse, durations)
// is fine anywhere.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// wallTimeAllowedFiles may touch the wall clock directly: the one place
// that adapts it into the injectable sched.Clock. Test files are excluded
// from analysis altogether (the loader skips them by default), which is
// the _test.go half of the allowlist.
var wallTimeAllowedFiles = map[string]bool{
	"internal/sched/clock.go": true,
}

// taintEntryPkgs are the packages (matched by import-path suffix) whose
// exported functions and methods are serving entry points: anything they
// transitively reach is on a request or pipeline path, so a wall-clock or
// ambient-rand leaf anywhere below them is reported at the entry point
// with the full call chain.
var taintEntryPkgs = []string{"internal/serve", "internal/pipeline", "internal/filterlist"}

// isTaintEntryPkg reports whether importPath hosts taint entry points.
func isTaintEntryPkg(importPath string) bool {
	for _, suffix := range taintEntryPkgs {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

// isEntryPoint reports whether n is an exported function, or an exported
// method on an exported named type — the API surface other packages (and
// net/http) call into.
func isEntryPoint(n *FuncNode) bool {
	if n.Obj == nil || !n.Obj.Exported() {
		return false
	}
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	recv := sig.Recv()
	if recv == nil {
		return true
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Exported()
}

// checkWallTime flags wall-clock reads and sleeps: directly at the use
// site (call or value reference), and — for exported entry points of the
// serving packages — transitively, with the call chain from the entry
// point to the leaf. All timing in the suite must flow through sched.Clock
// so campaigns are replayable under a fake clock and identical seeds yield
// byte-identical outputs.
func checkWallTime(pkg *Package, g *CallGraph, r *Reporter) {
	for _, n := range g.PkgNodes(pkg) {
		for _, f := range n.timeFacts {
			if f.valueRef {
				r.Reportf(f.pos, "time.%s captured as a value; route timing through the injectable sched.Clock (sched.Wall() at the edge)", f.name)
			} else {
				r.Reportf(f.pos, "direct time.%s call; route timing through the injectable sched.Clock (sched.Wall() at the edge)", f.name)
			}
		}
	}
	if !isTaintEntryPkg(pkg.ImportPath) {
		return
	}
	for _, root := range g.PkgNodes(pkg) {
		if !isEntryPoint(root) {
			continue
		}
		order, parents := g.Reach(root, nil)
		for _, m := range order {
			if m == root {
				continue // the root's own leaves are already reported above
			}
			for _, f := range m.timeFacts {
				chain := g.ChainTo(parents, root, m)
				p := m.Pkg.Fset.Position(f.pos)
				r.ReportChainf(root.declPos(), chain,
					"exported %s transitively reaches time.%s (%s:%d) via %s; route timing through the injectable sched.Clock",
					root.Name, f.name, m.Pkg.Rel(p.Filename), p.Line, chainString(chain))
			}
		}
	}
}
