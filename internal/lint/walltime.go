package lint

import (
	"go/ast"
	"strings"
)

// wallTimeFuncs are the time-package functions that read or pace the wall
// clock. Pure construction/formatting (time.Date, time.Parse, durations)
// is fine anywhere.
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// wallTimeAllowedFiles may touch the wall clock directly: the one place
// that adapts it into the injectable sched.Clock. Test files are excluded
// from analysis altogether (the loader skips them by default), which is
// the _test.go half of the allowlist.
var wallTimeAllowedFiles = map[string]bool{
	"internal/sched/clock.go": true,
}

// checkWallTime flags direct wall-clock reads and sleeps. All timing in
// the suite must flow through sched.Clock so campaigns are replayable
// under a fake clock and identical seeds yield byte-identical outputs.
func checkWallTime(pkg *Package, r *Reporter) {
	for _, f := range pkg.Files {
		pos := pkg.Fset.Position(f.Pos())
		rel := pkg.Rel(pos.Filename)
		if wallTimeAllowedFiles[rel] || strings.HasSuffix(rel, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncCall(pkg.Info, call)
			if ok && path == "time" && wallTimeFuncs[name] {
				r.Reportf(call.Pos(), "direct time.%s call; route timing through the injectable sched.Clock (sched.Wall() at the edge)", name)
			}
			return true
		})
	}
}
