package lint

import (
	"strconv"
	"strings"
)

// randSourceConstructors create raw math/rand/v2 sources. Only the seeded
// keying layer (internal/rng) and worldgen's seeded builders may touch
// them; everyone else derives streams via rng.New(seed, keys...) so every
// draw is keyed off the campaign seed.
var randSourceConstructors = map[string]bool{
	"NewPCG": true, "NewChaCha8": true,
}

// randConstructorPkgs may construct raw sources (suffix match on the
// package import path).
var randConstructorPkgs = []string{"internal/rng", "internal/worldgen"}

// isRandConstructorPkg reports whether importPath may construct raw
// math/rand/v2 sources.
func isRandConstructorPkg(importPath string) bool {
	for _, suffix := range randConstructorPkgs {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

// randWrapperFuncs are order-preserving wrappers that take an explicit
// source or *Rand and are fine anywhere.
var randWrapperFuncs = map[string]bool{
	"New": true, "NewZipf": true,
}

// randFactMessage renders a leaf ambient-randomness fact.
func randFactMessage(f randFact) string {
	use := "rand." + f.name
	if f.valueRef {
		use += " captured as a value"
	}
	switch f.kind {
	case randRawSource:
		return "raw " + use + " source outside the seeded constructors; derive streams with rng.New(seed, keys...)"
	default:
		return "ambient " + use + " draws from the process-global source; use a stream from rng.New keyed off the study seed"
	}
}

// checkAmbientRand flags ambient randomness: any import of the legacy
// math/rand package (its global source cannot be keyed per-study), uses of
// math/rand/v2 top-level convenience functions (they draw from the shared
// ChaCha8 source seeded at process start), and raw source construction
// outside the seeded-constructor packages — directly at the use site, and
// transitively from exported entry points of the serving packages with the
// call chain attached.
func checkAmbientRand(pkg *Package, g *CallGraph, r *Reporter) {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "math/rand" {
				r.Reportf(imp.Pos(), "import of legacy math/rand; use seeded streams from internal/rng (math/rand/v2 PCG under the hood)")
			}
		}
	}
	for _, n := range g.PkgNodes(pkg) {
		for _, f := range n.randFacts {
			r.Reportf(f.pos, "%s", randFactMessage(f))
		}
	}
	if !isTaintEntryPkg(pkg.ImportPath) {
		return
	}
	for _, root := range g.PkgNodes(pkg) {
		if !isEntryPoint(root) {
			continue
		}
		order, parents := g.Reach(root, nil)
		for _, m := range order {
			if m == root {
				continue // the root's own leaves are already reported above
			}
			for _, f := range m.randFacts {
				chain := g.ChainTo(parents, root, m)
				p := m.Pkg.Fset.Position(f.pos)
				r.ReportChainf(root.declPos(), chain,
					"exported %s transitively draws ambient randomness via rand.%s (%s:%d) through %s; key every stream off the study seed",
					root.Name, f.name, m.Pkg.Rel(p.Filename), p.Line, chainString(chain))
			}
		}
	}
}
