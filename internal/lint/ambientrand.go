package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// randSourceConstructors create raw math/rand/v2 sources. Only the seeded
// keying layer (internal/rng) and worldgen's seeded builders may touch
// them; everyone else derives streams via rng.New(seed, keys...) so every
// draw is keyed off the campaign seed.
var randSourceConstructors = map[string]bool{
	"NewPCG": true, "NewChaCha8": true,
}

// randConstructorPkgs may construct raw sources (suffix match on the
// package import path).
var randConstructorPkgs = []string{"internal/rng", "internal/worldgen"}

// randWrapperFuncs are order-preserving wrappers that take an explicit
// source or *Rand and are fine anywhere.
var randWrapperFuncs = map[string]bool{
	"New": true, "NewZipf": true,
}

// checkAmbientRand flags ambient randomness: any import of the legacy
// math/rand package (its global source cannot be keyed per-study), calls
// to math/rand/v2 top-level convenience functions (they draw from the
// shared ChaCha8 source seeded at process start), and raw source
// construction outside the seeded-constructor packages.
func checkAmbientRand(pkg *Package, r *Reporter) {
	inConstructorPkg := false
	for _, suffix := range randConstructorPkgs {
		if strings.HasSuffix(pkg.ImportPath, suffix) {
			inConstructorPkg = true
		}
	}
	inRNG := strings.HasSuffix(pkg.ImportPath, "internal/rng")
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "math/rand" {
				r.Reportf(imp.Pos(), "import of legacy math/rand; use seeded streams from internal/rng (math/rand/v2 PCG under the hood)")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncCall(pkg.Info, call)
			if !ok || path != "math/rand/v2" {
				return true
			}
			switch {
			case randSourceConstructors[name]:
				if !inConstructorPkg {
					r.Reportf(call.Pos(), "raw rand.%s source outside the seeded constructors; derive streams with rng.New(seed, keys...)", name)
				}
			case randWrapperFuncs[name]:
				// explicit-source wrappers are fine; the source itself is
				// what must be seeded.
			case isPkgLevelFunc(pkg.Info, call):
				if !inRNG {
					r.Reportf(call.Pos(), "ambient rand.%s draws from the process-global source; use a stream from rng.New keyed off the study seed", name)
				}
			}
			return true
		})
	}
}

// isPkgLevelFunc reports whether the call's selector resolves to a
// package-level function (as opposed to a type conversion or type name).
func isPkgLevelFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	_, ok = info.Uses[sel.Sel].(*types.Func)
	return ok
}
