package lint

import (
	"go/ast"
	"go/types"
)

// checkMapOrder flags `range` loops over map-typed expressions whose body
// leaks Go's randomized iteration order into an ordered sink: appending
// to a slice declared outside the loop, writing through a writer/encoder,
// or sending on a channel. A loop whose only sinks are appends is excused
// when every appended-to slice is sorted (sort.* / slices.Sort*) later in
// the same function — the collect-then-sort idiom the codebase uses to
// make map iteration deterministic.
//
// This is the bug class behind all three nondeterminism fixes to date
// (websim.AddSite, worldgen ccTLD registration, pipeline TrackerDomains),
// each of which survived review and was caught only by manual audit.
func checkMapOrder(pkg *Package, _ *CallGraph, r *Reporter) {
	for _, f := range pkg.Files {
		for _, fb := range functionBodies(f) {
			checkMapOrderFunc(pkg, r, fb)
		}
	}
}

// mapSinks records how a map-range body leaks iteration order.
type mapSinks struct {
	appendTargets []types.Object // slices appended to, declared outside the loop
	hardSinkPos   ast.Node       // first writer/encoder call or channel send
	hardSinkKind  string
}

func checkMapOrderFunc(pkg *Package, r *Reporter, fb funcBody) {
	info := pkg.Info
	inspectShallow(fb.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapExpr(info, rng.X) {
			return true
		}
		sinks := collectMapSinks(info, rng)
		if sinks.hardSinkPos != nil {
			r.Reportf(rng.Pos(), "map iteration over %s feeds %s in nondeterministic order; iterate sorted keys instead",
				types.ExprString(rng.X), sinks.hardSinkKind)
			return true
		}
		for _, target := range sinks.appendTargets {
			if !sortedInFunc(info, fb.body, target) {
				r.Reportf(rng.Pos(), "map iteration over %s appends to %s in nondeterministic order; sort %s afterwards (slices.Sort) or iterate sorted keys",
					types.ExprString(rng.X), target.Name(), target.Name())
				break
			}
		}
		return true
	})
}

// collectMapSinks scans a map-range body for order-sensitive sinks.
func collectMapSinks(info *types.Info, rng *ast.RangeStmt) mapSinks {
	var sinks mapSinks
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sinks.hardSinkPos != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sinks.hardSinkPos = n
			sinks.hardSinkKind = "a channel send"
		case *ast.CallExpr:
			if isBuiltin(info, n, "append") && len(n.Args) > 0 {
				if obj := rootObject(info, n.Args[0]); obj != nil && !declaredWithin(obj, rng.Body) {
					sinks.appendTargets = append(sinks.appendTargets, obj)
				}
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && emissionMethods[sel.Sel.Name] {
				// A writer that lives inside the loop body (one builder
				// per iteration) never leaks iteration order.
				target := sel.X
				if path, _, isPkg := pkgFuncCall(info, n); isPkg && path == "fmt" && len(n.Args) > 0 {
					target = n.Args[0] // fmt.Fprint*(w, ...): order leaks into w
				}
				if obj := rootObject(info, target); obj != nil && declaredWithin(obj, rng.Body) {
					return true
				}
				sinks.hardSinkPos = n
				sinks.hardSinkKind = "a " + sel.Sel.Name + " call"
			}
		}
		return true
	})
	return sinks
}

// emissionMethods are selector names that emit bytes/rows/values in call
// order, so feeding them from a map range leaks iteration order into
// output.
var emissionMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRow": true, "Encode": true, "EncodeElement": true, "EncodeToken": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// rootObject resolves the base identifier of expr (x, x.f, x[i], *x) to
// its declaring object.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortedInFunc reports whether the function body contains a recognized
// sort call whose argument resolves to target — the collect-then-sort
// idiom that makes a map-range append order-invariant.
func sortedInFunc(info *types.Info, body *ast.BlockStmt, target types.Object) bool {
	found := false
	inspectShallow(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name, ok := pkgFuncCall(info, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !(path == "sort" && sortPkgFuncs[name]) && !(path == "slices" && slicesPkgFuncs[name]) {
			return true
		}
		arg := call.Args[0]
		// Unwrap sort.Sort(byName(s))-style single-argument conversions.
		if conv, isCall := arg.(*ast.CallExpr); isCall && len(conv.Args) == 1 {
			arg = conv.Args[0]
		}
		if obj := rootObject(info, arg); obj == target {
			found = true
			return false
		}
		return true
	})
	return found
}

var sortPkgFuncs = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
}

var slicesPkgFuncs = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
}
