package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkSharedMap flags writes to package-level or struct-field maps from
// inside work launched concurrently — `go` statements, closures submitted
// to the sched pool as Unit.Run, or net/http handler literals (the server
// runs each connection on its own goroutine, so a HandlerFunc closure is
// concurrent work even though no `go` appears at the registration site) —
// when no sync.Mutex/RWMutex is associated with the map (a lock field in
// the owning struct, a package-level lock var, or an explicit Lock/RLock
// call in the closure). This is the exact shape of the geoloc destCache
// race PR 2 fixed with a sharded, per-shard-mutex cache.
func checkSharedMap(pkg *Package, _ *CallGraph, r *Reporter) {
	for _, f := range pkg.Files {
		for _, lit := range concurrentLiterals(pkg.Info, f) {
			checkConcurrentLiteral(pkg, r, lit)
		}
	}
}

// concurrentLiterals finds function literals that run concurrently with
// their creator: goroutine bodies, sched.Unit Run closures, and HTTP
// handler literals.
func concurrentLiterals(info *types.Info, f *ast.File) []*ast.FuncLit {
	var lits []*ast.FuncLit
	seen := map[*ast.FuncLit]bool{}
	add := func(l *ast.FuncLit) {
		if l != nil && !seen[l] {
			seen[l] = true
			lits = append(lits, l)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal with the http.HandlerFunc signature is served on a
			// per-connection goroutine regardless of how it is registered
			// (mux.HandleFunc, http.HandlerFunc conversion, middleware).
			if isHTTPHandlerSig(info.TypeOf(n)) {
				add(n)
			}
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				add(lit)
			}
		case *ast.CompositeLit:
			if !isSchedUnit(info.TypeOf(n)) {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Run" {
					if lit, ok := kv.Value.(*ast.FuncLit); ok {
						add(lit)
					}
				}
			}
		case *ast.AssignStmt:
			// u.Run = func(...){...} on a sched.Unit value.
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Run" || i >= len(n.Rhs) {
					continue
				}
				if lit, ok := n.Rhs[i].(*ast.FuncLit); ok && isSchedUnit(info.TypeOf(sel.X)) {
					add(lit)
				}
			}
		}
		return true
	})
	return lits
}

// isSchedUnit reports whether t is (a pointer to) the scheduler's Unit
// type, matched by type name and package path suffix so fixture
// stand-ins qualify too.
func isSchedUnit(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Unit" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sched" || strings.HasSuffix(path, "/sched")
}

// isHTTPHandlerSig reports whether t is the net/http handler shape:
// func(http.ResponseWriter, *http.Request) with no results.
func isHTTPHandlerSig(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 0 || sig.Variadic() {
		return false
	}
	if !isNetHTTPType(sig.Params().At(0).Type(), "ResponseWriter") {
		return false
	}
	ptr, ok := sig.Params().At(1).Type().(*types.Pointer)
	return ok && isNetHTTPType(ptr.Elem(), "Request")
}

// isNetHTTPType reports whether t is the named net/http type with the
// given name.
func isNetHTTPType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// checkConcurrentLiteral reports unguarded shared-map writes in one
// concurrently-running closure.
func checkConcurrentLiteral(pkg *Package, r *Reporter, lit *ast.FuncLit) {
	info := pkg.Info
	if bodyLocks(info, lit.Body) {
		return // closure takes a lock itself; trust its critical section
	}
	reported := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var written ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isMapExpr(info, idx.X) {
					written = idx.X
				}
			}
		case *ast.IncDecStmt:
			if idx, ok := n.X.(*ast.IndexExpr); ok && isMapExpr(info, idx.X) {
				written = idx.X
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "delete") && len(n.Args) > 0 && isMapExpr(info, n.Args[0]) {
				written = n.Args[0]
			}
		}
		if written == nil {
			return true
		}
		expr := types.ExprString(written)
		if reported[expr] || sharedMapGuarded(pkg, written) {
			return true
		}
		reported[expr] = true
		r.Reportf(written.Pos(), "map %s written from concurrently-launched work without an associated sync.Mutex/RWMutex; guard it or use a sharded cache", expr)
		return true
	})
}

// sharedMapGuarded decides whether the written map expression is outside
// this check's scope (a closure-local map) or has an associated mutex.
func sharedMapGuarded(pkg *Package, written ast.Expr) bool {
	info := pkg.Info
	switch e := written.(type) {
	case *ast.SelectorExpr:
		// Struct-field map: excused when the owning struct also carries a
		// lock (incl. sharded caches, whose shard structs hold one each).
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return structHasLock(sel.Recv())
		}
		// Qualified package-level var from another package: treat like a
		// package-level map with no visible lock.
		return false
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return true
		}
		if pkg.Types != nil && obj.Parent() == pkg.Types.Scope() {
			return packageHasLockVar(pkg.Types)
		}
		// Locals (including captured ones) are out of scope for this
		// check: the spec targets package-level and struct-field maps.
		return true
	default:
		return true
	}
}

// bodyLocks reports whether the closure calls Lock/RLock on anything —
// an explicit critical section.
func bodyLocks(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			found = true
			return false
		}
		return true
	})
	return found
}

// packageHasLockVar reports whether the package declares any top-level
// sync.Mutex/RWMutex variable.
func packageHasLockVar(tpkg *types.Package) bool {
	scope := tpkg.Scope()
	for _, name := range scope.Names() {
		if v, ok := scope.Lookup(name).(*types.Var); ok && isSyncLock(v.Type()) {
			return true
		}
	}
	return false
}
