package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtureGraph loads one testdata package and builds its single-package
// call graph, the same shape RunPackage uses.
func loadFixtureGraph(t *testing.T, fixture string) (*Package, *CallGraph) {
	t.Helper()
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", filepath.FromSlash(fixture))
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
	}
	return pkg, BuildCallGraph([]*Package{pkg})
}

func nodeByName(t *testing.T, g *CallGraph, pkg *Package, name string) *FuncNode {
	t.Helper()
	for _, n := range g.PkgNodes(pkg) {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

// edgeNames collects callee names of one node, optionally filtered by kind.
func edgeNames(n *FuncNode, kind EdgeKind, filter bool) []string {
	var out []string
	for _, e := range n.Edges {
		if filter && e.Kind != kind {
			continue
		}
		out = append(out, e.Callee.Name)
	}
	return out
}

// TestCallGraphEdges pins the core construction rules: direct calls edge to
// their callee, interface calls devirtualize to every module implementer
// (value and pointer method sets both), referencing a function as a value
// adds a one-hop funcvalue edge, and package-level initializer expressions
// hang off the <package-init> pseudo-node.
func TestCallGraphEdges(t *testing.T) {
	pkg, g := loadFixtureGraph(t, "callgraph")

	direct := nodeByName(t, g, pkg, "callgraph.direct")
	if got := edgeNames(direct, EdgeDirect, true); len(got) != 1 || got[0] != "callgraph.helper" {
		t.Errorf("direct edges = %v, want [callgraph.helper]", got)
	}

	via := nodeByName(t, g, pkg, "callgraph.viaInterface")
	got := edgeNames(via, EdgeDevirt, true)
	want := map[string]bool{"callgraph.bell.ring": true, "callgraph.(*horn).ring": true}
	if len(got) != len(want) {
		t.Fatalf("devirt edges = %v, want both implementers", got)
	}
	for _, name := range got {
		if !want[name] {
			t.Errorf("unexpected devirt target %q", name)
		}
	}

	val := nodeByName(t, g, pkg, "callgraph.viaValue")
	if got := edgeNames(val, EdgeFuncValue, true); len(got) != 1 || got[0] != "callgraph.helper" {
		t.Errorf("funcvalue edges = %v, want [callgraph.helper]", got)
	}

	initNode := nodeByName(t, g, pkg, "callgraph.<package-init>")
	if got := edgeNames(initNode, EdgeDirect, true); len(got) != 1 || got[0] != "callgraph.helper" {
		t.Errorf("package-init edges = %v, want [callgraph.helper]", got)
	}
}

// TestReachAndChain pins BFS reachability and chain reconstruction on the
// hotalloc fixture's Probe -> lookup -> grow spine, plus coldpath pruning
// on Guarded -> slowPath.
func TestReachAndChain(t *testing.T) {
	pkg, g := loadFixtureGraph(t, "hotalloc")

	probe := nodeByName(t, g, pkg, "hotalloc.Probe")
	grow := nodeByName(t, g, pkg, "hotalloc.grow")
	order, parents := g.Reach(probe, nil)
	found := false
	for _, n := range order {
		if n == grow {
			found = true
		}
	}
	if !found {
		t.Fatal("Reach(Probe) does not include grow")
	}
	chain := g.ChainTo(parents, probe, grow)
	var names []string
	for _, fr := range chain {
		names = append(names, fr.Func)
	}
	if got := strings.Join(names, " -> "); got != "hotalloc.Probe -> hotalloc.lookup -> hotalloc.grow" {
		t.Errorf("chain = %q", got)
	}
	for _, fr := range chain[1:] {
		if fr.File == "" || fr.Line == 0 {
			t.Errorf("frame %+v missing call-site position", fr)
		}
	}

	guarded := nodeByName(t, g, pkg, "hotalloc.Guarded")
	slow := nodeByName(t, g, pkg, "hotalloc.slowPath")
	if !slow.Cold {
		t.Fatal("slowPath not marked cold")
	}
	order, _ = g.Reach(guarded, func(n *FuncNode) bool { return n.Cold })
	for _, n := range order {
		if n == slow {
			t.Error("coldpath node reached through pruned traversal")
		}
	}
}

// TestDumpDeterministic pins that -graph output is byte-identical across
// builds of the same package and carries the annotation markers.
func TestDumpDeterministic(t *testing.T) {
	var outs [2]string
	for i := range outs {
		pkg, g := loadFixtureGraph(t, "hotalloc")
		var sb strings.Builder
		g.Dump(&sb, []*Package{pkg})
		outs[i] = sb.String()
	}
	if outs[0] != outs[1] {
		t.Error("Dump output differs across identical builds")
	}
	if !strings.Contains(outs[0], "[hotpath]") || !strings.Contains(outs[0], "[coldpath]") {
		t.Errorf("Dump output missing annotation markers:\n%s", outs[0])
	}
}
