package lint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// BaselineEntry identifies one grandfathered finding. Line numbers are
// deliberately absent so unrelated edits above a finding don't invalidate
// the baseline; a finding matches on check + file + message.
type BaselineEntry struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Message string `json:"message"`
}

// Baseline is the committed set of grandfathered findings. The goal state
// is an empty baseline: it exists so the linter can land green and debt
// can be burned down finding by finding, never to hide new regressions.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline as stable, indented JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diagnostics into new findings and baselined ones.
// Matching is multiset-style: each baseline entry absorbs at most one
// diagnostic, so a second instance of a grandfathered finding still
// fails.
func (b *Baseline) Filter(diags []Diagnostic) (fresh, grandfathered []Diagnostic) {
	budget := map[BaselineEntry]int{}
	for _, e := range b.Findings {
		budget[e]++
	}
	for _, d := range diags {
		key := BaselineEntry{Check: d.Check, File: d.File, Message: d.Message}
		if budget[key] > 0 {
			budget[key]--
			grandfathered = append(grandfathered, d)
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, grandfathered
}

// FromDiagnostics builds the baseline that would absorb exactly diags.
func FromDiagnostics(diags []Diagnostic) *Baseline {
	b := &Baseline{Findings: []BaselineEntry{}}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{Check: d.Check, File: d.File, Message: d.Message})
	}
	return b
}
