package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// EdgeKind classifies how a call-graph edge was discovered.
type EdgeKind uint8

const (
	// EdgeDirect is a plain call of a declared function.
	EdgeDirect EdgeKind = iota
	// EdgeMethod is a method call on a concrete receiver.
	EdgeMethod
	// EdgeDevirt is a method call on an interface value, resolved to every
	// module named type whose method set satisfies the interface.
	EdgeDevirt
	// EdgeFuncValue is a one-hop function-value edge: the function is
	// referenced as a value (assigned, passed, stored) and conservatively
	// assumed callable from the referencing function.
	EdgeFuncValue
)

// String renders the kind for -graph dumps.
func (k EdgeKind) String() string {
	switch k {
	case EdgeDirect:
		return "direct"
	case EdgeMethod:
		return "method"
	case EdgeDevirt:
		return "devirt"
	case EdgeFuncValue:
		return "funcvalue"
	}
	return "?"
}

// CallEdge is one outgoing edge with its call-site position.
type CallEdge struct {
	Callee *FuncNode
	Kind   EdgeKind
	Pos    token.Pos
}

// timeFact records a wall-clock use (call or value reference) that is not
// excused by the sanctioned-file allowlist. Facts are collected once at
// graph-build time; the walltime check reports them directly (leaf form)
// and through taint traversal (chain form).
type timeFact struct {
	name     string
	pos      token.Pos
	valueRef bool
}

// randKind distinguishes the two ambient-randomness offences.
type randKind uint8

const (
	// randRawSource is rand.NewPCG/NewChaCha8 outside the seeded
	// constructor packages.
	randRawSource randKind = iota
	// randAmbient is a top-level math/rand/v2 convenience function, which
	// draws from the process-global source.
	randAmbient
)

// randFact records an ambient-randomness use, pre-filtered by the
// package-level allowances (internal/rng, internal/worldgen).
type randFact struct {
	name     string
	kind     randKind
	pos      token.Pos
	valueRef bool
}

// FuncNode is one call-graph node: a declared function or method, with
// closures attributed to their enclosing declaration, or the per-package
// pseudo-node that owns package-level variable initializer expressions.
type FuncNode struct {
	Obj  *types.Func   // nil for the initializer pseudo-node
	Decl *ast.FuncDecl // nil for the initializer pseudo-node
	Pkg  *Package
	Name string // display name, e.g. "serve.(*Server).ServeHTTP"
	Hot  bool   // annotated //gamma:hotpath: a zero-allocation root
	Cold bool   // annotated //gamma:coldpath: pruned from hot-path traversal

	Edges []CallEdge

	timeFacts []timeFact
	randFacts []randFact

	allocs       []allocFact
	allocScanned bool
}

// declPos is the position diagnostics anchored at this node use.
func (n *FuncNode) declPos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Name.Pos()
	}
	return token.NoPos
}

// CallGraph is the module-wide static call graph the interprocedural
// checks traverse. Nodes cover every declared function of the packages it
// was built over; edges stay inside that set, with external leaf uses of
// the wall clock and ambient randomness recorded as facts on the caller.
type CallGraph struct {
	byObj map[*types.Func]*FuncNode
	byPkg map[string][]*FuncNode // import path -> nodes in source order
	pkgs  []*Package             // graph scope, sorted by import path
	named []*types.Named         // module named types, deterministic order
	impls map[*types.Interface][]*types.Named
}

// BuildCallGraph builds the graph over pkgs. Node and edge order is
// deterministic: packages sort by import path, nodes follow source order,
// edges follow call-site order.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	g := &CallGraph{
		byObj: map[*types.Func]*FuncNode{},
		byPkg: map[string][]*FuncNode{},
		pkgs:  sorted,
		impls: map[*types.Interface][]*types.Named{},
	}
	for _, pkg := range sorted {
		g.collectNamed(pkg)
		g.addNodes(pkg)
	}
	for _, pkg := range sorted {
		for _, n := range g.byPkg[pkg.ImportPath] {
			g.scan(n)
		}
	}
	return g
}

// PkgNodes returns the nodes owned by pkg in source order (the pseudo
// initializer node last).
func (g *CallGraph) PkgNodes(pkg *Package) []*FuncNode { return g.byPkg[pkg.ImportPath] }

// collectNamed gathers pkg's package-level named types for interface
// devirtualization. Generic types are skipped: without an instantiation
// they have no method set to satisfy an interface with.
func (g *CallGraph) collectNamed(pkg *Package) {
	if pkg.Types == nil {
		return
	}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || named.TypeParams().Len() > 0 {
			continue
		}
		g.named = append(g.named, named)
	}
}

// addNodes creates one node per function declaration plus the package's
// initializer pseudo-node, applying //gamma: annotations from doc comments.
func (g *CallGraph) addNodes(pkg *Package) {
	di := pkg.directiveInfo()
	pkgName := pkg.ImportPath
	if pkg.Types != nil {
		pkgName = pkg.Types.Name()
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Name: funcDisplayName(obj)}
			g.applyAnnotations(di, pkg, fd, n)
			g.byObj[obj] = n
			g.byPkg[pkg.ImportPath] = append(g.byPkg[pkg.ImportPath], n)
		}
	}
	g.byPkg[pkg.ImportPath] = append(g.byPkg[pkg.ImportPath],
		&FuncNode{Pkg: pkg, Name: pkgName + ".<package-init>"})
}

// applyAnnotations attaches //gamma: annotations found in fd's doc comment
// to its node, marking them consumed; annotations left unconsumed after a
// build surface as directive diagnostics.
func (g *CallGraph) applyAnnotations(di *dirInfo, pkg *Package, fd *ast.FuncDecl, n *FuncNode) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		ann := di.anns[c.Pos()]
		if ann == nil {
			continue
		}
		ann.used = true
		switch ann.verb {
		case annHotpath:
			n.Hot = true
		case annColdpath:
			n.Cold = true
		}
	}
	if n.Hot && n.Cold {
		pos := pkg.Fset.Position(fd.Name.Pos())
		di.diags = append(di.diags, Diagnostic{
			Check: directiveCheck, Severity: Error,
			Pos: pos, File: pkg.Rel(pos.Filename), Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf("%s is annotated both //gamma:hotpath and //gamma:coldpath; pick one", fd.Name.Name),
		})
	}
}

// scan walks one node's body (or, for the pseudo-node, every package-level
// variable initializer) recording edges and external leaf facts.
func (g *CallGraph) scan(n *FuncNode) {
	if n.Decl != nil {
		if n.Decl.Body != nil {
			g.scanBody(n, n.Decl.Body)
		}
		return
	}
	for _, f := range n.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					g.scanBody(n, v)
				}
			}
		}
	}
}

// scanBody records calls (direct, method, devirtualized) and one-hop
// function-value references. Idents/selectors in call position are marked
// so they are not double-counted as value references.
func (g *CallGraph) scanBody(n *FuncNode, body ast.Node) {
	info := n.Pkg.Info
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			skip[fun] = true
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				skip[sel.Sel] = true
			}
			g.addCall(n, x, fun)
		case *ast.SelectorExpr:
			if skip[x] {
				return true
			}
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				if fn, ok := sel.Obj().(*types.Func); ok {
					skip[x.Sel] = true
					if types.IsInterface(sel.Recv()) {
						g.addDevirt(n, sel.Recv(), fn, x.Pos(), EdgeFuncValue)
					} else {
						g.edgeTo(n, fn, EdgeFuncValue, x.Pos(), true)
					}
				}
				return true
			}
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				skip[x.Sel] = true
				g.edgeTo(n, fn, EdgeFuncValue, x.Pos(), true)
			}
		case *ast.Ident:
			if skip[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				g.edgeTo(n, fn, EdgeFuncValue, x.Pos(), true)
			}
		}
		return true
	})
}

// addCall resolves one call expression to edges.
func (g *CallGraph) addCall(n *FuncNode, call *ast.CallExpr, fun ast.Expr) {
	info := n.Pkg.Info
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			g.edgeTo(n, fn, EdgeDirect, call.Pos(), false)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			if sel.Kind() == types.MethodVal && types.IsInterface(sel.Recv()) {
				g.addDevirt(n, sel.Recv(), fn, call.Pos(), EdgeDevirt)
				return
			}
			g.edgeTo(n, fn, EdgeMethod, call.Pos(), false)
			return
		}
		// Package-qualified call: pkg.F(...).
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			g.edgeTo(n, fn, EdgeDirect, call.Pos(), false)
		}
	}
	// Calls through func-typed variables/fields and called literals resolve
	// to nothing here: literals are scanned as part of the enclosing node,
	// func-typed storage is covered (one hop) at the point the function
	// value is taken. See DESIGN.md §13 for the soundness caveats.
}

// addDevirt resolves an interface method use to every module named type
// implementing the interface. Constraint interfaces (type sets) have no
// method-set semantics and are skipped.
func (g *CallGraph) addDevirt(n *FuncNode, recv types.Type, m *types.Func, pos token.Pos, kind EdgeKind) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok || !iface.IsMethodSet() {
		return
	}
	for _, impl := range g.implementers(iface) {
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(impl), false, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			g.edgeTo(n, fn, kind, pos, kind == EdgeFuncValue)
		}
	}
}

// implementers returns the module named types satisfying iface, cached.
func (g *CallGraph) implementers(iface *types.Interface) []*types.Named {
	if impls, ok := g.impls[iface]; ok {
		return impls
	}
	impls := []*types.Named{}
	for _, named := range g.named {
		if types.IsInterface(named) {
			continue
		}
		if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
			impls = append(impls, named)
		}
	}
	g.impls[iface] = impls
	return impls
}

// edgeTo adds an edge when the callee is a module function with a node;
// otherwise the use is recorded as an external leaf fact.
func (g *CallGraph) edgeTo(n *FuncNode, fn *types.Func, kind EdgeKind, pos token.Pos, valueRef bool) {
	fn = fn.Origin()
	if callee, ok := g.byObj[fn]; ok {
		n.Edges = append(n.Edges, CallEdge{Callee: callee, Kind: kind, Pos: pos})
		return
	}
	g.externFact(n, fn, pos, valueRef)
}

// externFact records wall-clock and ambient-randomness uses of external
// packages, pre-filtered by the file and package allowlists so checks can
// report every stored fact.
func (g *CallGraph) externFact(n *FuncNode, fn *types.Func, pos token.Pos, valueRef bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	switch pkg.Path() {
	case "time":
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // time.Time/Timer methods (After, Sub, Stop) are pure or explicit
		}
		if !wallTimeFuncs[fn.Name()] {
			return
		}
		rel := n.Pkg.Rel(n.Pkg.Fset.Position(pos).Filename)
		if wallTimeAllowedFiles[rel] || strings.HasSuffix(rel, "_test.go") {
			return
		}
		n.timeFacts = append(n.timeFacts, timeFact{name: fn.Name(), pos: pos, valueRef: valueRef})
	case "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // explicit-source methods (rand.Rand, rand.Zipf) are fine
		}
		name := fn.Name()
		switch {
		case randSourceConstructors[name]:
			if !isRandConstructorPkg(n.Pkg.ImportPath) {
				n.randFacts = append(n.randFacts, randFact{name: name, kind: randRawSource, pos: pos, valueRef: valueRef})
			}
		case randWrapperFuncs[name]:
			// explicit-source wrappers are fine anywhere.
		default:
			if !strings.HasSuffix(n.Pkg.ImportPath, "internal/rng") {
				n.randFacts = append(n.randFacts, randFact{name: name, kind: randAmbient, pos: pos, valueRef: valueRef})
			}
		}
	}
}

// --- traversal and chain reporting ---

// callSite is the BFS parent link: which node reached a callee, and where.
type callSite struct {
	from *FuncNode
	pos  token.Pos
}

// Reach returns every node reachable from root (root first, BFS order)
// plus parent links for chain reconstruction. skip prunes traversal into
// matching nodes — the //gamma:coldpath escape hatch.
func (g *CallGraph) Reach(root *FuncNode, skip func(*FuncNode) bool) ([]*FuncNode, map[*FuncNode]callSite) {
	order := []*FuncNode{root}
	parents := map[*FuncNode]callSite{}
	seen := map[*FuncNode]bool{root: true}
	for i := 0; i < len(order); i++ {
		for _, e := range order[i].Edges {
			if seen[e.Callee] || (skip != nil && skip(e.Callee)) {
				continue
			}
			seen[e.Callee] = true
			parents[e.Callee] = callSite{from: order[i], pos: e.Pos}
			order = append(order, e.Callee)
		}
	}
	return order, parents
}

// Frame is one hop of a reported call chain: the function entered and the
// call site (or declaration, for the first frame) that entered it.
type Frame struct {
	Func string `json:"func"`
	File string `json:"file"`
	Line int    `json:"line"`
}

// ChainTo reconstructs the shortest discovered chain root -> target from
// BFS parent links.
func (g *CallGraph) ChainTo(parents map[*FuncNode]callSite, root, target *FuncNode) []Frame {
	var rev []Frame
	for cur := target; cur != root; {
		site, ok := parents[cur]
		if !ok {
			break
		}
		p := cur.Pkg.Fset.Position(site.pos)
		rev = append(rev, Frame{Func: cur.Name, File: site.from.Pkg.Rel(p.Filename), Line: p.Line})
		cur = site.from
	}
	rp := root.Pkg.Fset.Position(root.declPos())
	frames := make([]Frame, 0, len(rev)+1)
	frames = append(frames, Frame{Func: root.Name, File: root.Pkg.Rel(rp.Filename), Line: rp.Line})
	for i := len(rev) - 1; i >= 0; i-- {
		frames = append(frames, rev[i])
	}
	return frames
}

// chainString renders a chain compactly for diagnostic messages.
func chainString(frames []Frame) string {
	parts := make([]string, len(frames))
	for i, f := range frames {
		parts[i] = f.Func
	}
	return strings.Join(parts, " -> ")
}

// --- graph dump (-graph) ---

// LoadGraph builds the module call graph for the packages matched by
// patterns (the graph itself spans every module package they pull in).
func LoadGraph(root string, patterns []string) (*CallGraph, []*Package, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		return nil, nil, err
	}
	return BuildCallGraph(loader.Loaded()), pkgs, nil
}

// Dump writes a deterministic text rendering of the graph restricted to
// pkgs: packages by import path, nodes by display name, edges in call-site
// order with their resolution kind.
func (g *CallGraph) Dump(w io.Writer, pkgs []*Package) {
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, pkg := range sorted {
		fmt.Fprintf(w, "package %s\n", pkg.ImportPath)
		nodes := append([]*FuncNode(nil), g.byPkg[pkg.ImportPath]...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
		for _, n := range nodes {
			mark := ""
			if n.Hot {
				mark = " [hotpath]"
			}
			if n.Cold {
				mark = " [coldpath]"
			}
			fmt.Fprintf(w, "  %s%s\n", n.Name, mark)
			for _, e := range n.Edges {
				p := n.Pkg.Fset.Position(e.Pos)
				fmt.Fprintf(w, "    -> %s (%s) %s:%d\n", e.Callee.Name, e.Kind, n.Pkg.Rel(p.Filename), p.Line)
			}
		}
	}
}

// funcDisplayName renders a *types.Func as pkg.Func or pkg.(*Recv).Method.
func funcDisplayName(obj *types.Func) string {
	prefix := ""
	if p := obj.Pkg(); p != nil {
		prefix = p.Name() + "."
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			star = "*"
		}
		name := "?"
		switch t := t.(type) {
		case *types.Named:
			name = t.Obj().Name()
		case *types.TypeParam:
			name = t.Obj().Name()
		}
		if star != "" {
			return prefix + "(*" + name + ")." + obj.Name()
		}
		return prefix + name + "." + obj.Name()
	}
	return prefix + obj.Name()
}
