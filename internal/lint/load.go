package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully parsed and type-checked package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects non-fatal type-check errors; analysis proceeds
	// with whatever type information survived.
	TypeErrors []error
	// Rel maps an absolute filename to its module-relative slash path.
	Rel func(string) string

	// dinfo memoizes the parsed directives and annotations; packages are
	// shared between the suppression pass and the call-graph build, so the
	// comment scan runs once.
	dinfo *dirInfo
}

// Loader discovers, parses and type-checks the packages of one module
// using only the standard library: module-internal imports are resolved
// recursively by the loader itself, everything else (the standard
// library) through go/importer's source importer.
type Loader struct {
	Root    string // module root (dir containing go.mod)
	ModPath string // module path from go.mod

	fset    *token.FileSet
	ctx     build.Context
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
	// IncludeTests adds *_test.go files of the package itself (not
	// external _test packages) to the analysis. Off by default: the
	// determinism invariants govern output-producing code, and tests are
	// the designated home of wall-clock allowances.
	IncludeTests bool
}

// NewLoader reads go.mod under root and prepares a loader.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// The source importer type-checks dependencies from GOROOT source via
	// build.Default; with cgo disabled every such package resolves to its
	// pure-Go variant, which is all the analyzer needs.
	build.Default.CgoEnabled = false
	ctx := build.Default
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Root:    abs,
		ModPath: modPath,
		fset:    fset,
		ctx:     ctx,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (run from the module root or pass -C)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Match resolves package patterns ("./...", "./internal/...", "./cmd/gamma",
// or plain directories) to loaded packages in deterministic path order.
func (l *Loader) Match(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Root, dir)
		}
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a directory", pat)
		}
		if !recursive {
			dirSet[dir] = true
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			dirSet[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the package in dir (which must lie
// inside the module). Results are memoized by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.importPathFor(abs), abs)
}

// importPathFor derives the module import path for a directory.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// dirForImport inverts importPathFor for module-internal import paths.
func (l *Loader) dirForImport(path string) (string, bool) {
	if path == l.ModPath {
		return l.Root, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// load parses and type-checks one module directory.
func (l *Loader) load(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err // includes *build.NoGoError for Go-free dirs
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Rel:        l.relFunc(),
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Loaded returns every package loaded so far — matched packages plus the
// module-internal dependencies type-checking pulled in — sorted by import
// path. The call graph is built over this set so traversals cross package
// boundaries.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, l.pkgs[path])
	}
	return out
}

// relFunc returns the absolute-path → module-relative mapping for
// diagnostics and allowlists.
func (l *Loader) relFunc() func(string) string {
	return func(filename string) string {
		rel, err := filepath.Rel(l.Root, filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(filename)
		}
		return filepath.ToSlash(rel)
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the loader itself, everything else through the stdlib source
// importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir, ok := l.dirForImport(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}
