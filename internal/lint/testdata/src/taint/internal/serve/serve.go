// Package serve sits under a testdata path whose import path ends in
// internal/serve, so the taint checks treat its exported functions and
// methods as entry points exactly as they treat the real serving package.
package serve

import (
	"math/rand/v2"
	"time"
)

// stamp is the unexported leaf the exported entries reach.
func stamp() time.Time {
	return time.Now() // want `direct time\.Now call`
}

func viaHelper() time.Time { return stamp() }

// Handle is an exported entry point two hops above the clock.
func Handle() time.Time { // want `exported serve\.Handle transitively reaches time\.Now \(.*serve\.go:\d+\) via serve\.Handle -> serve\.viaHelper -> serve\.stamp`
	return viaHelper()
}

// Server's exported method is an entry point too.
type Server struct{}

func (s *Server) Serve() time.Time { // want `exported serve\.\(\*Server\)\.Serve transitively reaches time\.Now \(.*serve\.go:\d+\) via serve\.\(\*Server\)\.Serve -> serve\.viaHelper -> serve\.stamp`
	return viaHelper()
}

// Direct's own leaf is reported at the call line only; the taint pass does
// not duplicate a root's own facts as a one-frame chain.
func Direct() time.Time {
	return time.Now() // want `direct time\.Now call`
}

// internalOnly is unexported: no entry point, no chain — the leaf inside
// stamp is already reported once above.
func internalOnly() time.Time { return viaHelper() }

// worker is unexported, so its exported method is not an entry point.
type worker struct{}

func (w worker) Poke() time.Time { return viaHelper() }

// roll is the ambient-randomness leaf.
func roll() int {
	return rand.IntN(6) // want `ambient rand\.IntN draws from the process-global source`
}

// Dice is an exported entry point above the ambient draw.
func Dice() int { // want `exported serve\.Dice transitively draws ambient randomness via rand\.IntN \(.*serve\.go:\d+\) through serve\.Dice -> serve\.roll`
	return roll()
}
