package maporder

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

func leaksToSlice(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to out`
		out = append(out, k)
	}
	return out
}

func sortedAfterwards(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func slicesSortedAfterwards(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func printsDirect(m map[string]int) {
	for k, v := range m { // want `feeds a Printf call`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func writesBuilder(m map[string]int, sb *strings.Builder) {
	for k := range m { // want `feeds a WriteString call`
		sb.WriteString(k)
	}
}

func perIterationWriter(m map[string][]string) map[string]string {
	out := map[string]string{}
	for k, vs := range m {
		var sb strings.Builder
		for _, v := range vs {
			sb.WriteString(v)
		}
		fmt.Fprintf(&sb, "(%d)", len(vs))
		out[k] = sb.String()
	}
	return out
}

func sendsOnChannel(m map[string]int, ch chan string) {
	for k := range m { // want `feeds a channel send`
		ch <- k
	}
}

func mapToMap(m map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sliceRangeFine(xs []string, ch chan string) {
	for _, x := range xs {
		ch <- x
	}
}

func accumulatorFine(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func suppressedStandalone(m map[string]int, ch chan int) {
	//gammavet:ignore maporder every value sent is the zero key count, order cannot matter
	for range m {
		ch <- 0
	}
}
