// Package rng mirrors the real internal/rng import-path suffix so the
// fixture suite can assert the ambientrand allowlist: seeded-constructor
// packages may build raw sources and even use package-level draws.
package rng

import "math/rand/v2"

func New(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 7))
}

func Jitter() float64 {
	return rand.Float64()
}
