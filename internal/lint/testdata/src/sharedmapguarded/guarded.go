package sharedmapguarded

import (
	"context"
	"sync"

	"github.com/gamma-suite/gamma/internal/lint/testdata/src/sched"
)

var (
	tableMu sync.Mutex
	table   = map[string]int{}
)

type cache struct {
	mu      sync.RWMutex
	entries map[string]string
}

type shardedCache struct {
	shards [4]struct {
		mu sync.Mutex
		m  map[string]int
	}
}

func goPackageLevelGuarded() {
	go func() {
		tableMu.Lock()
		table["x"] = 1
		tableMu.Unlock()
	}()
}

func structFieldGuarded(c *cache) sched.Unit[string] {
	return sched.Unit[string]{
		ID: "g",
		Run: func(ctx context.Context) (string, error) {
			c.entries["k"] = "v" // owning struct carries the lock
			return "", nil
		},
	}
}

func explicitLockInClosure(c *cache) sched.Unit[string] {
	var u sched.Unit[string]
	u.Run = func(ctx context.Context) (string, error) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.entries["k"] = "v"
		return "", nil
	}
	return u
}

func shardWrite(s *shardedCache, i int) {
	go func() {
		s.shards[i].mu.Lock()
		s.shards[i].m["k"]++
		s.shards[i].mu.Unlock()
	}()
}
