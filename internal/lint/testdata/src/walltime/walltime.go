package walltime

import "time"

func stamps() time.Time {
	return time.Now() // want `direct time.Now call`
}

func paces() {
	time.Sleep(time.Millisecond) // want `direct time.Sleep call`
	<-time.After(time.Second)    // want `direct time.After call`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `direct time.Since call`
}

func pureConstructionFine() time.Time {
	d := 3 * time.Second
	return time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC).Add(d)
}

func suppressedTrailing() time.Time {
	return time.Now() //gammavet:ignore walltime fixture exercises trailing-directive suppression
}
