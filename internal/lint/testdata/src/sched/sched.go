// Package sched is a minimal stand-in for the real scheduler: the
// sharedmap check matches Unit by type name plus import-path suffix, so
// fixtures can exercise pool-submission detection without dragging the
// full scheduler (and its stdlib closure) into every fixture load.
package sched

import "context"

type Unit[T any] struct {
	ID  string
	Run func(ctx context.Context) (T, error)
}
