package ambientrand

import (
	legacy "math/rand" // want `import of legacy math/rand`
	"math/rand/v2"
)

func legacyDraw() int {
	return legacy.Intn(3)
}

func globalDraw() int {
	return rand.IntN(10) // want `ambient rand.IntN draws from the process-global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `ambient rand.Shuffle`
}

func rawSource() *rand.Rand {
	return rand.New(rand.NewPCG(1, 2)) // want `raw rand.NewPCG source`
}

func explicitStreamFine(r *rand.Rand) int {
	return r.IntN(10)
}

func typeUseFine(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, 1.2, 1, 100)
}
