package sharedmap

import (
	"context"

	"github.com/gamma-suite/gamma/internal/lint/testdata/src/sched"
)

var hits = map[string]int{}

type collector struct {
	counts map[string]int
}

func goWrite() {
	go func() {
		hits["x"]++ // want `map hits written from concurrently-launched work`
	}()
}

func goDelete() {
	go func() {
		delete(hits, "x") // want `map hits written from concurrently-launched work`
	}()
}

func unitWrite(c *collector) sched.Unit[int] {
	return sched.Unit[int]{
		ID: "u",
		Run: func(ctx context.Context) (int, error) {
			c.counts["k"] = 1 // want `map c.counts written from concurrently-launched work`
			return 0, nil
		},
	}
}

func assignedRunWrite(c *collector) sched.Unit[int] {
	var u sched.Unit[int]
	u.Run = func(ctx context.Context) (int, error) {
		c.counts["z"]++ // want `map c.counts written from concurrently-launched work`
		return 0, nil
	}
	return u
}

func closureLocalFine() {
	go func() {
		local := map[string]int{}
		local["x"] = 1
	}()
}

func synchronousWriteFine(c *collector) {
	c.counts["k"] = 1
}

func readOnlyFine() {
	go func() {
		_ = hits["x"]
	}()
}

func suppressed() {
	go func() {
		hits["warm"] = 1 //gammavet:ignore sharedmap single warm-up goroutine joined before any reader starts
	}()
}
