package hotalloc

import "fmt"

type entry struct {
	key string
	val int
}

type sink struct{ rows []entry }

var shared []entry

// grow allocates deliberately; it sits two hops below the hot root so the
// diagnostic must carry the full chain.
func grow(n int) []byte {
	return make([]byte, n)
}

func lookup(n int) int {
	return len(grow(n))
}

//gamma:hotpath fixture: transitive reach through lookup into grow
func Probe(n int) int { // want `hot path hotalloc\.Probe reaches a make call at .*hotalloc\.go:17 via hotalloc\.Probe -> hotalloc\.lookup -> hotalloc\.grow`
	return lookup(n)
}

//gamma:hotpath fixture: allocations in the root itself
func Render(e entry) string { // want `hot path hotalloc\.Render reaches a heap-escaping composite literal \(&hotalloc\.sink\{\.\.\.\}\)` `hot path hotalloc\.Render reaches a fmt\.Sprintf call`
	p := &sink{}
	p.rows = nil
	return fmt.Sprintf("%s=%d", e.key, e.val)
}

//gamma:hotpath fixture: concat, boxing, and shared append in one body
func Mutate(k string, v int) { // want `string concatenation` `an interface conversion of int` `an append to the non-local slice shared`
	id := k + "!"
	var x interface{} = v
	_ = x
	shared = append(shared, entry{key: id, val: v})
}

type matcher interface{ match(string) bool }

type fancy struct{}

func (fancy) match(s string) bool {
	return len(fmt.Sprint(s)) > 0
}

//gamma:hotpath fixture: a devirtualized interface call reaches the impl
func Dispatch(m matcher, s string) bool { // want `hot path hotalloc\.Dispatch reaches a fmt\.Sprint call .* via hotalloc\.Dispatch -> hotalloc\.fancy\.match`
	return m.match(s)
}

//gamma:hotpath fixture: stack buffers, value literals, and called closures stay legal
func Canonical(host string) int {
	var buf [64]byte
	b := append(buf[:0], "https://"...)
	b = append(b, host...)
	e := entry{key: host, val: len(b)}
	f := func() int { return e.val }
	return f() + func() int { return len(b) }()
}

// slowPath allocates deliberately; the coldpath annotation keeps it out of
// hot-reach traversal.
//
//gamma:coldpath fixture: deliberate slow work behind the boundary
func slowPath(msg string) error {
	return fmt.Errorf("slow: %s", msg)
}

//gamma:hotpath fixture: the coldpath boundary prunes traversal
func Guarded(ok bool) error {
	if ok {
		return nil
	}
	return slowPath("fallback")
}

//gamma:hotpath fixture: suppressed finding
//gammavet:ignore hotalloc fixture exercises chain-diagnostic suppression at the root
func Suppressed() []byte {
	return make([]byte, 8)
}
