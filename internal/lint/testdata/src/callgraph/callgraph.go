// Package callgraph is a pure structural fixture for the call-graph unit
// tests: no check is expected to fire here. It exercises direct calls,
// interface devirtualization over value and pointer method sets, one-hop
// function values, and the package-initializer pseudo-node.
package callgraph

type ringer interface{ ring() string }

type bell struct{}

func (b bell) ring() string { return "ding" }

type horn struct{}

func (h *horn) ring() string { return "honk" }

func helper() string { return "h" }

func direct() string { return helper() }

func viaInterface(r ringer) string { return r.ring() }

func viaValue() string {
	f := helper
	return f()
}

var initialized = helper()

func use() string { return direct() + viaInterface(bell{}) + viaValue() + initialized }
