package directive

import "time"

func missingCheckID() time.Time {
	//gammavet:ignore
	// want-1 `directive missing check ID`
	return time.Now() // want `direct time.Now call`
}

func missingReason() time.Time {
	//gammavet:ignore walltime
	// want-1 `directive for "walltime" missing reason`
	return time.Now() // want `direct time.Now call`
}

func unknownCheck() time.Time {
	//gammavet:ignore flibbertigibbet the check does not exist
	// want-1 `directive names unknown check "flibbertigibbet"`
	return time.Now() // want `direct time.Now call`
}

func mangledShape() time.Time {
	//gammavet:ignorewalltime oops
	// want-1 `malformed directive`
	return time.Now() // want `direct time.Now call`
}

func wellFormedSuppresses() time.Time {
	//gammavet:ignore walltime fixture records consent wall-clock stamps on purpose
	return time.Now()
}
