package annotation

// malformedShapes hosts every parse-time rejection; a broken annotation is
// itself a diagnostic, never a silent no-op.
func malformedShapes() {
	//gamma: hotpath
	// want-1 `malformed annotation "//gamma: hotpath": want //gamma:hotpath or //gamma:coldpath <reason>`
	//gamma:fastpath whoops
	// want-1 `unknown annotation //gamma:fastpath \(want hotpath or coldpath\)`
	//gamma:coldpath
	// want-1 `//gamma:coldpath missing reason: every hot-path exemption must say why it may allocate`
	_ = 0
}

//gamma:hotpath this comment hangs in space and attaches to nothing
// want-1 `//gamma:hotpath is not attached to a function declaration's doc comment; it has no effect`

var sentinel = 0

func inlineHasNoEffect() int {
	//gamma:hotpath inline annotations cannot mark a hot root
	// want-1 `//gamma:hotpath is not attached to a function declaration's doc comment; it has no effect`
	return sentinel
}

//gamma:hotpath fixture: conflicting pair
//gamma:coldpath fixture: the conflicting pair must say why
func conflicted() { // want `conflicted is annotated both //gamma:hotpath and //gamma:coldpath; pick one`
}

//gamma:hotpath a reason is optional on hotpath
func hotFine() {}

//gamma:coldpath slow by design; the reason is mandatory here
func coldFine() {}
