// Package httphandler fixtures the sharedmap and walltime checks over
// net/http handler closures: the server runs every connection on its own
// goroutine, so a HandlerFunc literal is concurrent work even though no
// `go` statement appears anywhere near it.
package httphandler

import (
	"net/http"
	"time"
)

var requestCounts = map[string]int{}

type clock interface {
	Now() time.Time
}

// Registering through a mux: the literal is served concurrently, so the
// unguarded package-level map write is a race.
func muxRegistration(mux *http.ServeMux) {
	mux.HandleFunc("/hit", func(w http.ResponseWriter, r *http.Request) {
		requestCounts[r.URL.Path]++ // want `map requestCounts written from concurrently-launched work`
	})
}

// Conversion to http.HandlerFunc — same concurrency, same race.
func converted() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delete(requestCounts, r.URL.Path) // want `map requestCounts written from concurrently-launched work`
	})
}

// Reading the wall clock inside a handler breaks replayability the same
// way it does in the pipeline: timing must come through an injected clock.
func stamped(w http.ResponseWriter, r *http.Request) {
	_ = time.Now() // want `direct time.Now call`
}

// A handler-shaped literal assigned to a plain variable still serves
// concurrently once registered — the signature, not the call site, is
// what makes it concurrent work.
var topLevelHandler = func(w http.ResponseWriter, r *http.Request) {
	requestCounts["total"]++ // want `map requestCounts written from concurrently-launched work`
}

// Negative: a handler writing a map it created itself races with nobody.
func localMapFine(mux *http.ServeMux) {
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		seen := map[string]bool{}
		seen[r.URL.Path] = true
	})
}

// Negative: clock-interface timing inside a handler is the sanctioned
// pattern (sched.Clock in the real tree).
func clockedHandler(c clock) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_ = c.Now()
	}
}

// Negative: reads don't trip the check.
func readOnlyFine() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		_ = requestCounts[r.URL.Path]
	}
}

// Negative: a handler that takes a lock is trusted to have a critical
// section (same contract as goroutine bodies).
type lockedCounter struct {
	mu     chan struct{} // stand-in; any Lock call excuses the body
	counts map[string]int
}

func (c *lockedCounter) Lock() {}

func lockedHandler(c *lockedCounter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.Lock()
		c.counts[r.URL.Path]++
	}
}

// Negative: a two-arg literal that is not handler-shaped is not
// concurrent work.
func notAHandler() {
	visit := func(key string, n int) {
		requestCounts[key] = n
	}
	visit("x", 1)
}
