package atomicdiscipline

import (
	"sync"
	"sync/atomic"
)

// counters carries an atomic at depth and must travel by pointer.
type counters struct {
	hits atomic.Int64
	name string
}

// guarded embeds a mutex and must also travel by pointer.
type guarded struct {
	mu   sync.Mutex
	rows map[string]int
}

func (c counters) snapshotByValue() int64 { // want `receiver of atomic/lock-bearing type atomicdiscipline\.counters travels by value`
	return c.hits.Load()
}

func (c *counters) bump() { c.hits.Add(1) }

func mergeByValue(a counters) int64 { // want `parameter of atomic/lock-bearing type atomicdiscipline\.counters travels by value`
	return a.hits.Load()
}

func lockedByValue(g guarded) int { // want `parameter of atomic/lock-bearing type atomicdiscipline\.guarded travels by value`
	return len(g.rows)
}

func produce() counters { // want `result of atomic/lock-bearing type atomicdiscipline\.counters travels by value`
	var c counters
	return c
}

func copies(c *counters, list []counters) {
	dup := *c // want `assignment copies the atomic/lock-bearing value \*c`
	_ = dup.name
	for _, v := range list { // want `range copies atomic/lock-bearing atomicdiscipline\.counters values`
		_ = v.name
	}
	mergeByValue(list[0]) // want `call passes the atomic/lock-bearing value list\[0\]`
}

func record(p *atomic.Int64) { p.Add(1) }

func leakByReturn(c *counters) *atomic.Int64 {
	return &c.hits // want `address of atomic value c\.hits escapes`
}

func leakByArg(c *counters) {
	record(&c.hits) // want `address of atomic value c\.hits escapes`
}

type holder struct{ p *atomic.Int64 }

func stash(c *counters) holder {
	return holder{p: &c.hits} // want `address of atomic value c\.hits escapes`
}

// localAliasFine pins the em := &m.endpoints[ep] idiom: a plain assignment
// keeps the alias local and is the sanctioned access pattern.
func localAliasFine(c *counters) {
	h := &c.hits
	h.Add(1)
}

// constructionFine pins that composite literals and call results are fresh
// values, not copies of live state.
func constructionFine() {
	c := counters{name: "fresh"}
	c.hits.Add(1)
}

// lenCapFine pins the len/cap exemption: measuring is not copying.
func lenCapFine() int {
	var arr [4]counters
	return len(arr) + cap(arr[:])
}

func suppressed(c *counters) {
	dup := *c //gammavet:ignore atomicdiscipline fixture exercises trailing-directive suppression
	_ = dup.name
}
