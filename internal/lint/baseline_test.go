package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func diag(check, file, msg string) Diagnostic {
	return Diagnostic{Check: check, Severity: Error, File: file, Line: 1, Col: 1, Message: msg}
}

// TestBaselineFilter pins the multiset semantics: each baseline entry
// absorbs exactly one matching diagnostic, so a second instance of a
// grandfathered finding is fresh and fails the build.
func TestBaselineFilter(t *testing.T) {
	b := &Baseline{Findings: []BaselineEntry{
		{Check: "maporder", File: "a.go", Message: "old finding"},
	}}
	diags := []Diagnostic{
		diag("maporder", "a.go", "old finding"),
		diag("maporder", "a.go", "old finding"), // duplicate beyond the budget
		diag("walltime", "b.go", "new finding"),
	}
	fresh, grandfathered := b.Filter(diags)
	if len(grandfathered) != 1 {
		t.Fatalf("grandfathered = %d, want 1", len(grandfathered))
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %d, want 2", len(fresh))
	}
	if fresh[0].Check != "maporder" || fresh[1].Check != "walltime" {
		t.Fatalf("fresh = %v", fresh)
	}
}

// TestBaselineRoundTrip covers save → load → filter and the
// missing-file-is-empty contract.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")

	empty, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Findings) != 0 {
		t.Fatalf("missing baseline loaded %d findings", len(empty.Findings))
	}

	diags := []Diagnostic{
		diag("sharedmap", "x.go", "unguarded map"),
		diag("ambientrand", "y.go", "ambient draw"),
	}
	if err := FromDiagnostics(diags).Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, grandfathered := loaded.Filter(diags)
	if len(fresh) != 0 || len(grandfathered) != 2 {
		t.Fatalf("round trip: fresh=%d grandfathered=%d, want 0/2", len(fresh), len(grandfathered))
	}
}

// TestBaselineRejectsGarbage: a corrupt baseline must be a hard error,
// not an empty baseline — silently dropping it would unbaseline nothing
// and baseline nothing, both wrong.
func TestBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("corrupt baseline loaded without error")
	}
}
