package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// directiveCheck is the pseudo-check ID under which malformed suppression
// directives and //gamma: annotations are reported. A directive can
// suppress real findings and an annotation can redirect interprocedural
// traversal, so a broken one is itself a build-failing diagnostic, never
// silently inert.
const directiveCheck = "directive"

// directivePrefix introduces a suppression comment:
//
//	//gammavet:ignore <check-id> <reason...>
//
// The directive suppresses diagnostics of <check-id> on its own line
// (trailing-comment form) or on the line directly below (standalone form).
const directivePrefix = "//gammavet:ignore"

// annPrefix introduces a hot-path annotation on a function declaration's
// doc comment:
//
//	//gamma:hotpath [reason...]
//	//gamma:coldpath <reason...>
//
// hotpath marks the function as a zero-allocation root for the hotalloc
// check; coldpath exempts a deliberately-allocating slow path (and
// everything only reachable through it) from hot-path traversal, and must
// say why.
const annPrefix = "//gamma:"

// Annotation verbs.
const (
	annHotpath  = "hotpath"
	annColdpath = "coldpath"
)

// directives indexes suppression lines by file and check ID.
type directives struct {
	// lines[file][check] holds the source lines carrying a well-formed
	// directive for that check.
	lines map[string]map[string]map[int]bool
}

// suppresses reports whether d is covered by a directive on its line or
// the line above.
func (ds directives) suppresses(d Diagnostic) bool {
	byCheck, ok := ds.lines[d.File]
	if !ok {
		return false
	}
	lines, ok := byCheck[d.Check]
	if !ok {
		return false
	}
	return lines[d.Line] || lines[d.Line-1]
}

// annotation is one parsed //gamma: comment. The graph build marks it used
// when it attaches to a function declaration's doc comment; an annotation
// that stays unused (inline comment, detached line) is reported — an
// annotation that silently fails to attach would be a hole in the
// hot-path proof.
type annotation struct {
	verb   string
	reason string
	key    annKey
	used   bool
}

// annKey sorts annotations deterministically for the unused-annotation
// sweep.
type annKey struct {
	file string
	line int
	col  int
}

// dirInfo is the per-package memo of everything comment-directive related:
// the suppression index, parsed annotations keyed by comment position, and
// the diagnostics produced while parsing (plus any appended during graph
// build, e.g. hotpath/coldpath conflicts).
type dirInfo struct {
	dirs  directives
	anns  map[token.Pos]*annotation
	diags []Diagnostic
}

// directiveInfo parses (once) and returns the package's directive state.
func (pkg *Package) directiveInfo() *dirInfo {
	if pkg.dinfo == nil {
		pkg.dinfo = parseDirectives(pkg)
	}
	return pkg.dinfo
}

// parseDirectives scans every comment of the package for gammavet
// suppression directives and //gamma: annotations. Well-formed directives
// populate the suppression index and well-formed annotations the
// annotation map; malformed ones (missing check ID, unknown check ID,
// missing reason, unknown verb) become diagnostics.
func parseDirectives(pkg *Package) *dirInfo {
	di := &dirInfo{
		dirs: directives{lines: map[string]map[string]map[int]bool{}},
		anns: map[token.Pos]*annotation{},
	}
	valid := checkIDs()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				file := pkg.Rel(pos.Filename)
				bad := func(format string, args ...any) {
					di.diags = append(di.diags, Diagnostic{
						Check: directiveCheck, Severity: Error,
						Pos: pos, File: file, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf(format, args...),
					})
				}
				if text, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
					parseIgnore(di, valid, file, pos.Line, c.Text, text, bad)
					continue
				}
				if text, ok := strings.CutPrefix(c.Text, annPrefix); ok {
					parseAnnotation(di, c.Pos(), annKey{file, pos.Line, pos.Column}, text, bad)
				}
			}
		}
	}
	return di
}

// parseIgnore validates one //gammavet:ignore directive.
func parseIgnore(di *dirInfo, valid map[string]bool, file string, line int, full, text string, bad func(string, ...any)) {
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		bad("malformed directive %q: want %q", full, directivePrefix+" <check> <reason>")
		return
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		bad("directive missing check ID: want %q", directivePrefix+" <check> <reason>")
		return
	}
	check := fields[0]
	if !valid[check] {
		bad("directive names unknown check %q", check)
		return
	}
	if len(fields) < 2 {
		bad("directive for %q missing reason: every suppression must say why", check)
		return
	}
	byCheck := di.dirs.lines[file]
	if byCheck == nil {
		byCheck = map[string]map[int]bool{}
		di.dirs.lines[file] = byCheck
	}
	if byCheck[check] == nil {
		byCheck[check] = map[int]bool{}
	}
	byCheck[check][line] = true
}

// parseAnnotation validates one //gamma:<verb> annotation.
func parseAnnotation(di *dirInfo, pos token.Pos, key annKey, text string, bad func(string, ...any)) {
	if text == "" || text[0] == ' ' || text[0] == '\t' {
		bad("malformed annotation %q: want //gamma:hotpath or //gamma:coldpath <reason>", annPrefix+text)
		return
	}
	verb, reason, _ := strings.Cut(text, " ")
	reason = strings.TrimSpace(reason)
	switch verb {
	case annHotpath:
		// reason optional: the annotation is self-describing.
	case annColdpath:
		if reason == "" {
			bad("//gamma:coldpath missing reason: every hot-path exemption must say why it may allocate")
			return
		}
	default:
		bad("unknown annotation //gamma:%s (want hotpath or coldpath)", verb)
		return
	}
	di.anns[pos] = &annotation{verb: verb, reason: reason, key: key}
}

// annotationDiags returns the package's directive diagnostics: parse
// errors plus any annotation the call-graph build did not consume — i.e.
// a //gamma: comment that is not part of a function declaration's doc
// comment. Must run after BuildCallGraph over the package.
func annotationDiags(pkg *Package) []Diagnostic {
	di := pkg.directiveInfo()
	diags := append([]Diagnostic(nil), di.diags...)
	unused := make([]*annotation, 0, len(di.anns))
	for _, ann := range di.anns {
		if !ann.used {
			unused = append(unused, ann)
		}
	}
	sort.Slice(unused, func(i, j int) bool {
		a, b := unused[i].key, unused[j].key
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	for _, ann := range unused {
		diags = append(diags, Diagnostic{
			Check: directiveCheck, Severity: Error,
			File: ann.key.file, Line: ann.key.line, Col: ann.key.col,
			Message: fmt.Sprintf("//gamma:%s is not attached to a function declaration's doc comment; it has no effect", ann.verb),
		})
	}
	return diags
}
