package lint

import (
	"fmt"
	"strings"
)

// directiveCheck is the pseudo-check ID under which malformed suppression
// directives are reported. A directive can suppress real findings, so a
// broken one is itself a build-failing diagnostic, never silently inert.
const directiveCheck = "directive"

// directivePrefix introduces a suppression comment:
//
//	//gammavet:ignore <check-id> <reason...>
//
// The directive suppresses diagnostics of <check-id> on its own line
// (trailing-comment form) or on the line directly below (standalone form).
const directivePrefix = "//gammavet:ignore"

// directives indexes suppression lines by file and check ID.
type directives struct {
	// lines[file][check] holds the source lines carrying a well-formed
	// directive for that check.
	lines map[string]map[string]map[int]bool
}

// suppresses reports whether d is covered by a directive on its line or
// the line above.
func (ds directives) suppresses(d Diagnostic) bool {
	byCheck, ok := ds.lines[d.File]
	if !ok {
		return false
	}
	lines, ok := byCheck[d.Check]
	if !ok {
		return false
	}
	return lines[d.Line] || lines[d.Line-1]
}

// parseDirectives scans every comment of the package for gammavet
// directives. Well-formed ones populate the suppression index; malformed
// ones (missing check ID, unknown check ID, or missing reason) become
// diagnostics.
func parseDirectives(pkg *Package) (directives, []Diagnostic) {
	ds := directives{lines: map[string]map[string]map[int]bool{}}
	var diags []Diagnostic
	valid := checkIDs()
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				file := pkg.Rel(pos.Filename)
				bad := func(format string, args ...any) {
					diags = append(diags, Diagnostic{
						Check: directiveCheck, Severity: Error,
						Pos: pos, File: file, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf(format, args...),
					})
				}
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					bad("malformed directive %q: want %q", c.Text, directivePrefix+" <check> <reason>")
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					bad("directive missing check ID: want %q", directivePrefix+" <check> <reason>")
					continue
				}
				check := fields[0]
				if !valid[check] {
					bad("directive names unknown check %q", check)
					continue
				}
				if len(fields) < 2 {
					bad("directive for %q missing reason: every suppression must say why", check)
					continue
				}
				byCheck := ds.lines[file]
				if byCheck == nil {
					byCheck = map[string]map[int]bool{}
					ds.lines[file] = byCheck
				}
				if byCheck[check] == nil {
					byCheck[check] = map[int]bool{}
				}
				byCheck[check][pos.Line] = true
			}
		}
	}
	return ds, diags
}
