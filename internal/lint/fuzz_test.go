package lint

import (
	"fmt"
	"go/token"
	"strings"
	"testing"
)

// FuzzDirective drives arbitrary comment text through the //gammavet:ignore
// and //gamma: parsers. Invariants: no panic on any input; a comment
// carrying either prefix is exactly one of (a) well-formed and recorded or
// (b) rejected with exactly one diagnostic — never silently accepted,
// never both.
func FuzzDirective(f *testing.F) {
	seeds := []string{
		"//gammavet:ignore walltime the reason",
		"//gammavet:ignore",
		"//gammavet:ignore walltime",
		"//gammavet:ignore flibbertigibbet no such check",
		"//gammavet:ignorewalltime mangled",
		"//gammavet:ignore\twalltime\ttabbed reason",
		"//gamma:hotpath",
		"//gamma:hotpath with a reason",
		"//gamma:coldpath slow by design",
		"//gamma:coldpath",
		"//gamma: hotpath",
		"//gamma:\thotpath",
		"//gamma:fastpath nope",
		"//gamma:",
		"//gamma:hotpath\x00nul",
		"// an unrelated comment",
		"//gammavet:ignore maporder \xff\xfe non-utf8 reason",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	valid := checkIDs()
	f.Fuzz(func(t *testing.T, comment string) {
		di := &dirInfo{
			dirs: directives{lines: map[string]map[string]map[int]bool{}},
			anns: map[token.Pos]*annotation{},
		}
		var diags []string
		bad := func(format string, args ...any) {
			diags = append(diags, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(comment, directivePrefix):
			text := comment[len(directivePrefix):]
			parseIgnore(di, valid, "fuzz.go", 1, comment, text, bad)
			recorded := len(di.dirs.lines) > 0
			if recorded == (len(diags) > 0) {
				t.Fatalf("ignore directive %q: recorded=%v diags=%v — want exactly one", comment, recorded, diags)
			}
			if len(diags) > 1 {
				t.Fatalf("ignore directive %q: %d diagnostics, want at most one", comment, len(diags))
			}
			if recorded {
				// A recorded suppression must name a real check and carry a reason.
				fields := strings.Fields(text)
				if len(fields) < 2 || !valid[fields[0]] {
					t.Fatalf("ignore directive %q recorded without check+reason", comment)
				}
			}
		case strings.HasPrefix(comment, annPrefix):
			text := comment[len(annPrefix):]
			parseAnnotation(di, token.Pos(1), annKey{file: "fuzz.go", line: 1, col: 1}, text, bad)
			recorded := len(di.anns) > 0
			if recorded == (len(diags) > 0) {
				t.Fatalf("annotation %q: recorded=%v diags=%v — want exactly one", comment, recorded, diags)
			}
			if recorded {
				ann := di.anns[token.Pos(1)]
				if ann.verb != annHotpath && ann.verb != annColdpath {
					t.Fatalf("annotation %q recorded with unknown verb %q", comment, ann.verb)
				}
				if ann.verb == annColdpath && ann.reason == "" {
					t.Fatalf("coldpath annotation %q recorded without a reason", comment)
				}
			}
		default:
			// Not a directive; nothing may be recorded or reported.
			if len(diags) != 0 || len(di.anns) != 0 || len(di.dirs.lines) != 0 {
				t.Fatalf("non-directive comment %q produced state", comment)
			}
		}
	})
}
