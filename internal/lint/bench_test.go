package lint

import "testing"

// BenchmarkSelfRun times the full acceptance-bar run: load every module
// package, type-check, build the interprocedural call graph, and run all
// seven checks. scripts/bench.sh runs this once to watch the analyzer's
// own latency budget (the bar is well under ten seconds).
func BenchmarkSelfRun(b *testing.B) {
	root := moduleRoot(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		diags, err := Run(root, []string{"./..."}, Checks())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("self-run findings: %v", diags)
		}
	}
}
