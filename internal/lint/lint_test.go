package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// expectation is one parsed `// want` comment. Wants anchor to their own
// line; `want-1` / `want+1` shift the anchor so diagnostics on comment
// lines (malformed directives) stay assertable.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var (
	wantRe    = regexp.MustCompile("^//\\s*want([+-][0-9]+)?\\s+(.*)$")
	patternRe = regexp.MustCompile("`([^`]+)`")
)

// parseWants extracts expectations from a loaded fixture package.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					off, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s: bad want offset %q", pos, m[1])
					}
					line += off
				}
				pats := patternRe.FindAllStringSubmatch(m[2], -1)
				if len(pats) == 0 {
					t.Fatalf("%s: want comment without a `pattern`", pos)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern: %v", pos, err)
					}
					wants = append(wants, &expectation{
						file: pkg.Rel(pos.Filename), line: line, pattern: re,
					})
				}
			}
		}
	}
	return wants
}

// checksByID selects a subset of the registered checks.
func checksByID(t *testing.T, ids ...string) []Check {
	t.Helper()
	byID := map[string]Check{}
	for _, c := range Checks() {
		byID[c.ID] = c
	}
	var out []Check
	for _, id := range ids {
		c, ok := byID[id]
		if !ok {
			t.Fatalf("unknown check %q", id)
		}
		out = append(out, c)
	}
	return out
}

// TestFixtures drives every check over its testdata package and diffs
// actual diagnostics against the // want expectations — positive and
// negative cases both: a diagnostic with no want or a want with no
// diagnostic each fail.
func TestFixtures(t *testing.T) {
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		fixture string
		checks  []string
	}{
		{"maporder", []string{"maporder"}},
		{"walltime", []string{"walltime"}},
		{"ambientrand", []string{"ambientrand"}},
		{"allowed/internal/rng", []string{"ambientrand"}}, // allowlist: zero wants
		{"sharedmap", []string{"sharedmap"}},
		{"sharedmapguarded", []string{"sharedmap"}}, // guarded: zero wants
		{"httphandler", []string{"sharedmap", "walltime"}},
		{"directive", []string{"walltime"}},
		{"hotalloc", []string{"hotalloc"}},
		{"atomicdiscipline", []string{"atomicdiscipline"}},
		{"taint/internal/serve", []string{"walltime", "ambientrand"}},
		{"annotation", []string{"hotalloc"}}, // annotation errors surface via the directive pseudo-check
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join(root, "internal", "lint", "testdata", "src", filepath.FromSlash(tc.fixture))
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkg.TypeErrors) > 0 {
				t.Fatalf("fixture has type errors: %v", pkg.TypeErrors)
			}
			diags := RunPackage(pkg, checksByID(t, tc.checks...))
			wants := parseWants(t, pkg)
			for _, d := range diags {
				found := false
				for _, w := range wants {
					if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
						w.matched = true
						found = true
						break
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
				}
			}
		})
	}
}

// TestSelfRun enforces the analyzer's acceptance bar on the real tree:
// all seven checks over every package in the module, zero findings with
// an empty baseline. It also covers the allowlists in the negative —
// internal/sched/clock.go touches time.Now/time.After and internal/rng
// builds raw PCG sources, and neither may be flagged — and the hot-path
// annotations seeded on the serving and filter-matching paths, which must
// hold allocation-free under the interprocedural hotalloc sweep.
func TestSelfRun(t *testing.T) {
	root := moduleRoot(t)
	diags, err := Run(root, []string{"./..."}, Checks())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("self-run finding: %s", d)
	}
}

// TestDiagnosticOrdering pins the output contract: diagnostics sort by
// file, line, column, check regardless of insertion order.
func TestDiagnosticOrdering(t *testing.T) {
	diags := []Diagnostic{
		{File: "b.go", Line: 2, Col: 1, Check: "walltime"},
		{File: "a.go", Line: 9, Col: 3, Check: "maporder"},
		{File: "a.go", Line: 9, Col: 3, Check: "ambientrand"},
		{File: "a.go", Line: 2, Col: 7, Check: "sharedmap"},
	}
	Sort(diags)
	got := ""
	for _, d := range diags {
		got += d.File + ":" + strconv.Itoa(d.Line) + ":" + d.Check + " "
	}
	want := "a.go:2:sharedmap a.go:9:ambientrand a.go:9:maporder b.go:2:walltime "
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}
