package lint

import (
	"go/ast"
	"go/types"
)

// funcBody pairs a function-like node with its body: FuncDecls and
// FuncLits alike. Each body is analyzed as its own scope — "same
// function" in check semantics means the innermost enclosing one.
type funcBody struct {
	node ast.Node
	body *ast.BlockStmt
}

// functionBodies returns every function body in the file, declarations
// and literals both.
func functionBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{fn, fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{fn, fn.Body})
		}
		return true
	})
	return out
}

// inspectShallow walks the statements of body without descending into
// nested function literals (each literal is its own funcBody).
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// importedPackage resolves expr to the import path of the package it
// names, if expr is a package identifier (e.g. the "time" in time.Now).
func importedPackage(info *types.Info, expr ast.Expr) (string, bool) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// pkgFuncCall matches a call of the form pkgname.Func(...) and returns
// the package path and function name.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	path, isPkg := importedPackage(info, sel.X)
	if !isPkg {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// isMapExpr reports whether expr's type is (or points to) a map.
func isMapExpr(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isSyncLock reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// structHasLock reports whether the struct type (after stripping
// pointers) has a sync.Mutex/RWMutex field, directly or via an embedded
// or array/slice-of-shard field one level down.
func structHasLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isSyncLock(ft) {
			return true
		}
	}
	return false
}
