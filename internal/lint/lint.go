// Package lint implements gammavet, the suite's custom static analyzer.
// It enforces the determinism and concurrency invariants that back the
// golden-harness guarantee (seed → byte-identical datasets, figures and
// tables): no unsorted map iteration feeding output, no ambient wall
// time, no ambient randomness, no unguarded shared-map writes from
// pool-submitted work.
//
// The analyzer is written against stdlib go/ast, go/parser and go/types
// only — no golang.org/x/tools dependency — with a recursive source
// importer so every package in the module is fully type-checked.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Severity grades a diagnostic.
type Severity string

const (
	// Error findings fail the build (exit nonzero) unless baselined.
	Error Severity = "error"
	// Warn findings are reported but do not affect the exit code.
	Warn Severity = "warn"
)

// Diagnostic is one finding with a stable check ID and file:line position.
type Diagnostic struct {
	Check    string         `json:"check"`
	Severity Severity       `json:"severity"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"` // module-relative, slash-separated
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one invariant the analyzer enforces over a type-checked package.
type Check struct {
	ID  string
	Doc string
	Run func(pkg *Package, r *Reporter)
}

// Checks returns the full check set in stable order.
func Checks() []Check {
	return []Check{
		{ID: "maporder", Doc: "range over a map feeding a slice, writer/encoder, or channel without a sorted-keys idiom", Run: checkMapOrder},
		{ID: "walltime", Doc: "direct time.Now/Since/Sleep (and friends) outside the injectable Clock", Run: checkWallTime},
		{ID: "ambientrand", Doc: "math/rand global functions or raw sources outside internal/rng seeded constructors", Run: checkAmbientRand},
		{ID: "sharedmap", Doc: "package-level or struct-field map written from go/sched-submitted work without an associated mutex", Run: checkSharedMap},
	}
}

// checkIDs is the set of valid IDs an ignore directive may name.
func checkIDs() map[string]bool {
	ids := map[string]bool{directiveCheck: true}
	for _, c := range Checks() {
		ids[c.ID] = true
	}
	return ids
}

// Reporter accumulates diagnostics for one check over one package.
type Reporter struct {
	check    string
	severity Severity
	fset     *token.FileSet
	rel      func(string) string
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	r.diags = append(r.diags, Diagnostic{
		Check:    r.check,
		Severity: r.severity,
		Pos:      p,
		File:     r.rel(p.Filename),
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run loads every package matched by patterns under the module rooted at
// root and returns all diagnostics, sorted by file, line, column, check.
// Suppression directives are applied; malformed directives surface as
// "directive" diagnostics.
func Run(root string, patterns []string, checks []Check) ([]Diagnostic, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, RunPackage(pkg, checks)...)
	}
	Sort(all)
	return all, nil
}

// RunPackage runs the checks over one loaded package and applies its
// suppression directives.
func RunPackage(pkg *Package, checks []Check) []Diagnostic {
	dirs, diags := parseDirectives(pkg)
	for _, c := range checks {
		r := &Reporter{check: c.ID, severity: Error, fset: pkg.Fset, rel: pkg.Rel}
		c.Run(pkg, r)
		for _, d := range r.diags {
			if !dirs.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	return diags
}

// Sort orders diagnostics by file, line, column, then check ID, so output
// is deterministic regardless of check or package visit order.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}
