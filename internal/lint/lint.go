// Package lint implements gammavet, the suite's custom static analyzer.
// It enforces the determinism and concurrency invariants that back the
// golden-harness guarantee (seed → byte-identical datasets, figures and
// tables): no unsorted map iteration feeding output, no ambient wall
// time, no ambient randomness, no unguarded shared-map writes from
// pool-submitted work — plus the serving layer's hot-path invariants:
// no allocations reachable from //gamma:hotpath roots and no by-value
// traffic in atomic/lock-bearing types.
//
// The analyzer is written against stdlib go/ast, go/parser and go/types
// only — no golang.org/x/tools dependency — with a recursive source
// importer so every package in the module is fully type-checked. The
// interprocedural checks (walltime/ambientrand taint, hotalloc) run over
// a module-wide static call graph; see callgraph.go and DESIGN.md §13.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Severity grades a diagnostic.
type Severity string

const (
	// Error findings fail the build (exit nonzero) unless baselined.
	Error Severity = "error"
	// Warn findings are reported but do not affect the exit code.
	Warn Severity = "warn"
)

// Diagnostic is one finding with a stable check ID and file:line position.
// Interprocedural findings additionally carry the call chain from the
// anchoring root to the offending leaf.
type Diagnostic struct {
	Check    string         `json:"check"`
	Severity Severity       `json:"severity"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"` // module-relative, slash-separated
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	Chain    []Frame        `json:"chain,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one invariant the analyzer enforces over a type-checked
// package. Run receives the module call graph so checks can traverse
// beyond the package; a nil Run marks a pseudo-check (directive) that is
// always on and listed for discoverability.
type Check struct {
	ID  string
	Doc string
	Run func(pkg *Package, g *CallGraph, r *Reporter)
}

// Checks returns the full check set in stable order.
func Checks() []Check {
	return []Check{
		{ID: "maporder", Doc: "range over a map feeding a slice, writer/encoder, or channel without a sorted-keys idiom", Run: checkMapOrder},
		{ID: "walltime", Doc: "wall-clock reads outside the injectable Clock, direct or transitively from exported serving entry points", Run: checkWallTime},
		{ID: "ambientrand", Doc: "ambient randomness outside internal/rng seeded constructors, direct or transitively from exported entry points", Run: checkAmbientRand},
		{ID: "sharedmap", Doc: "package-level or struct-field map written from go/sched-submitted work without an associated mutex", Run: checkSharedMap},
		{ID: "hotalloc", Doc: "allocating constructs reachable from //gamma:hotpath roots (escape with a reasoned //gamma:coldpath)", Run: checkHotAlloc},
		{ID: "atomicdiscipline", Doc: "atomic/lock-bearing values copied, passed by value, or with atomic field addresses escaping", Run: checkAtomicDiscipline},
		{ID: directiveCheck, Doc: "malformed //gammavet:ignore directives and //gamma: annotations (always enabled)", Run: nil},
	}
}

// checkIDs is the set of valid IDs an ignore directive may name.
func checkIDs() map[string]bool {
	ids := map[string]bool{}
	for _, c := range Checks() {
		ids[c.ID] = true
	}
	return ids
}

// Reporter accumulates diagnostics for one check over one package.
type Reporter struct {
	check    string
	severity Severity
	fset     *token.FileSet
	rel      func(string) string
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	r.report(pos, nil, format, args...)
}

// ReportChainf records a finding at pos carrying the call chain that
// produced it (rendered by gammavet -chains and serialized under -json).
func (r *Reporter) ReportChainf(pos token.Pos, chain []Frame, format string, args ...any) {
	r.report(pos, chain, format, args...)
}

func (r *Reporter) report(pos token.Pos, chain []Frame, format string, args ...any) {
	p := r.fset.Position(pos)
	r.diags = append(r.diags, Diagnostic{
		Check:    r.check,
		Severity: r.severity,
		Pos:      p,
		File:     r.rel(p.Filename),
		Line:     p.Line,
		Col:      p.Column,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Run loads every package matched by patterns under the module rooted at
// root, builds the module call graph, and returns all diagnostics, sorted
// by file, line, column, check. Suppression directives are applied;
// malformed directives surface as "directive" diagnostics.
func Run(root string, patterns []string, checks []Check) ([]Diagnostic, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		return nil, err
	}
	// The graph spans every module package the matched set pulled in, so
	// taint and hotalloc traversals cross package boundaries even when only
	// a subset of packages is being reported on.
	g := BuildCallGraph(loader.Loaded())
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, runPackage(pkg, g, checks)...)
	}
	Sort(all)
	return all, nil
}

// RunPackage runs the checks over one loaded package in isolation: the
// call graph covers just that package, so cross-package edges resolve only
// within it. Fixture tests use this; whole-module analysis goes through
// Run.
func RunPackage(pkg *Package, checks []Check) []Diagnostic {
	g := BuildCallGraph([]*Package{pkg})
	diags := runPackage(pkg, g, checks)
	Sort(diags)
	return diags
}

// runPackage applies checks and suppression directives to one package
// against a prebuilt graph.
func runPackage(pkg *Package, g *CallGraph, checks []Check) []Diagnostic {
	di := pkg.directiveInfo()
	diags := annotationDiags(pkg)
	for _, c := range checks {
		if c.Run == nil {
			continue
		}
		r := &Reporter{check: c.ID, severity: Error, fset: pkg.Fset, rel: pkg.Rel}
		c.Run(pkg, g, r)
		for _, d := range r.diags {
			if !di.dirs.suppresses(d) {
				diags = append(diags, d)
			}
		}
	}
	return diags
}

// Sort orders diagnostics by file, line, column, check ID, then message,
// so output is deterministic regardless of check or package visit order
// (chain diagnostics can anchor several messages to one declaration line).
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}
