package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicTypeNames are the sync/atomic value types that must only be
// touched through their methods.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// syncNoCopyNames are the sync types whose values must not be copied after
// first use.
var syncNoCopyNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "Once": true, "WaitGroup": true,
	"Cond": true, "Pool": true, "Map": true,
}

// isAtomicType reports whether t is a sync/atomic value type (including
// instantiated atomic.Pointer[T]).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

// isSyncNoCopy reports whether t is a no-copy sync type.
func isSyncNoCopy(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncNoCopyNames[obj.Name()]
}

// mustNotCopy reports whether values of t must never travel by value:
// atomic and sync types themselves, and any struct or array containing one
// at any depth.
func mustNotCopy(t types.Type) bool {
	return mustNotCopy1(t, map[types.Type]bool{})
}

func mustNotCopy1(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if isAtomicType(t) || isSyncNoCopy(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mustNotCopy1(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return mustNotCopy1(u.Elem(), seen)
	}
	return false
}

// isCopyRead reports whether expr reads an existing value (identifier,
// field, element, dereference) as opposed to constructing a fresh one
// (composite literal, call result) — only reads of existing values are
// copies of live state.
func isCopyRead(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = e
		return true
	}
	return false
}

// checkAtomicDiscipline is a stricter, typed copylocks scoped to the
// module's atomics-based concurrency style: values whose type carries a
// sync/atomic field (Store.cur, ShardSet counters, metrics histograms) or
// a sync lock must move by pointer only. It flags by-value receivers,
// parameters and results; assignments and range clauses that copy a live
// value; call arguments passed by value; and atomic fields whose address
// escapes into a call or return — the shapes that silently tear or fork
// counter state.
func checkAtomicDiscipline(pkg *Package, _ *CallGraph, r *Reporter) {
	info := pkg.Info
	for _, f := range pkg.Files {
		var stack []ast.Node
		parent := func() ast.Node {
			if len(stack) == 0 {
				return nil
			}
			return stack[len(stack)-1]
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv != nil {
					checkFieldList(info, r, x.Recv, "receiver")
				}
				checkFieldList(info, r, x.Type.Params, "parameter")
				checkFieldList(info, r, x.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(info, r, x.Type.Params, "parameter")
				checkFieldList(info, r, x.Type.Results, "result")
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for _, rhs := range x.Rhs {
						if isCopyRead(rhs) && mustNotCopy(info.TypeOf(rhs)) {
							r.Reportf(rhs.Pos(), "assignment copies the atomic/lock-bearing value %s (type %s); take a pointer instead",
								types.ExprString(rhs), typeLabel(info, rhs))
						}
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil && mustNotCopy(info.TypeOf(x.Value)) {
					r.Reportf(x.Value.Pos(), "range copies atomic/lock-bearing %s values; iterate by index and take pointers",
						typeLabel(info, x.Value))
				}
			case *ast.CallExpr:
				if isBuiltin(info, x, "len") || isBuiltin(info, x, "cap") {
					break
				}
				for _, arg := range x.Args {
					if isCopyRead(arg) && mustNotCopy(info.TypeOf(arg)) {
						r.Reportf(arg.Pos(), "call passes the atomic/lock-bearing value %s (type %s) by value; pass a pointer",
							types.ExprString(arg), typeLabel(info, arg))
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND && isAtomicType(info.TypeOf(x.X)) && addrEscapes(info, parent()) {
					r.Reportf(x.Pos(), "address of atomic value %s escapes; access atomics only through their methods on the owning struct",
						types.ExprString(x.X))
				}
			}
			stack = append(stack, n)
			return true
		})
	}
}

// checkFieldList flags by-value atomic/lock-bearing types in a receiver,
// parameter, or result list.
func checkFieldList(info *types.Info, r *Reporter, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, ok := t.(*types.Pointer); ok {
			continue
		}
		if mustNotCopy(t) {
			r.Reportf(field.Type.Pos(), "%s of atomic/lock-bearing type %s travels by value; use a pointer",
				kind, types.TypeString(t, func(p *types.Package) string { return p.Name() }))
		}
	}
}

// addrEscapes reports whether &x in the given parent context hands the
// pointer to code that may retain it: call arguments, returns, and
// composite-literal storage. A plain assignment keeps the alias local
// (the em := &m.endpoints[ep] idiom).
func addrEscapes(info *types.Info, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.CallExpr:
		// Calling a method ON the atomic ((&x.f).Store(v)) is the access
		// discipline itself, not an escape; passing &x.f as an argument is.
		return true
	case *ast.ReturnStmt:
		_ = p
		return true
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	}
	return false
}
