package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// allocFact is one allocating construct found in a function body.
type allocFact struct {
	pos  token.Pos
	what string
}

// checkHotAlloc proves the zero-allocation contract statically: every
// function annotated //gamma:hotpath, and everything it transitively
// calls, must be free of allocating constructs. Traversal stops at
// //gamma:coldpath functions — the reasoned escape hatch for error paths
// and admin endpoints that may allocate. Diagnostics anchor at the
// annotated root and carry the full call chain down to the allocation, so
// a violation three calls deep is as actionable as a local one.
//
// Flagged constructs: escaping composite literals (&T{...}, new, make,
// slice/map literals), append to non-local slices, non-constant string
// concatenation and string<->[]byte/[]rune conversions, fmt calls,
// closures that capture and escape, go statements, and interface
// conversions that box a concrete value. Struct value literals, appends to
// function-local slices, and immediately-invoked closures stay legal —
// they compile to stack traffic. External calls other than fmt are
// trusted (strings.ToUpper on a miss path, for example); the runtime
// allocs-per-op pins remain the backstop for those. See DESIGN.md §13.
func checkHotAlloc(pkg *Package, g *CallGraph, r *Reporter) {
	for _, root := range g.PkgNodes(pkg) {
		if !root.Hot {
			continue
		}
		order, parents := g.Reach(root, func(n *FuncNode) bool { return n.Cold })
		for _, m := range order {
			for _, f := range allocFactsOf(m) {
				chain := g.ChainTo(parents, root, m)
				p := m.Pkg.Fset.Position(f.pos)
				r.ReportChainf(root.declPos(), chain,
					"hot path %s reaches %s at %s:%d via %s; hot paths must not allocate (move deliberate slow work behind //gamma:coldpath)",
					root.Name, f.what, m.Pkg.Rel(p.Filename), p.Line, chainString(chain))
			}
		}
	}
}

// allocFactsOf lazily scans and memoizes a node's allocating constructs.
// The pseudo initializer node is exempt: package-level vars allocate once
// at startup, never per request.
func allocFactsOf(n *FuncNode) []allocFact {
	if n.Decl == nil || n.Decl.Body == nil {
		return nil
	}
	if !n.allocScanned {
		n.allocs = allocScan(n.Pkg, n.Decl)
		n.allocScanned = true
	}
	return n.allocs
}

// allocScan walks one declaration (closures included — they execute as
// part of the enclosing function) collecting allocating constructs.
func allocScan(pkg *Package, decl *ast.FuncDecl) []allocFact {
	info := pkg.Info
	var facts []allocFact
	add := func(pos token.Pos, what string) {
		facts = append(facts, allocFact{pos: pos, what: what})
	}

	// stack tracks ancestry so constructs can be classified by context
	// (&lit vs bare lit, closure parent, enclosing function for returns).
	var stack []ast.Node
	parent := func() ast.Node {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1]
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					add(x.Pos(), "a heap-escaping composite literal (&"+typeLabel(info, x.X)+"{...})")
				}
			}
		case *ast.CompositeLit:
			// &lit is reported at the UnaryExpr; a bare slice/map literal
			// allocates backing storage either way. Struct and array VALUE
			// literals (payload{}, struct{}{}) are plain stack values.
			if ue, ok := parent().(*ast.UnaryExpr); !ok || ue.Op != token.AND {
				switch info.TypeOf(x).Underlying().(type) {
				case *types.Slice:
					add(x.Pos(), "a slice literal ("+typeLabel(info, x)+"{...})")
				case *types.Map:
					add(x.Pos(), "a map literal ("+typeLabel(info, x)+"{...})")
				}
			}
		case *ast.CallExpr:
			scanCall(info, decl, x, add)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x) && !isConstExpr(info, x) {
				add(x.Pos(), "string concatenation")
			}
		case *ast.GoStmt:
			add(x.Pos(), "a go statement (goroutine launch)")
		case *ast.FuncLit:
			if lit := classifyFuncLit(info, decl, x, parent()); lit != "" {
				add(x.Pos(), lit)
			}
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					if boxes(info, info.TypeOf(x.Lhs[i]), rhs) {
						add(rhs.Pos(), "an interface conversion of "+typeLabel(info, rhs))
					}
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				for _, v := range x.Values {
					if boxes(info, info.TypeOf(x.Type), v) {
						add(v.Pos(), "an interface conversion of "+typeLabel(info, v))
					}
				}
			}
		case *ast.ReturnStmt:
			sig := enclosingSignature(info, stack, decl)
			if sig != nil && sig.Results().Len() == len(x.Results) {
				for i, res := range x.Results {
					if boxes(info, sig.Results().At(i).Type(), res) {
						add(res.Pos(), "an interface conversion of "+typeLabel(info, res)+" at return")
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return facts
}

// scanCall classifies one call expression: allocating builtins, allocating
// conversions, fmt, and interface-boxing arguments.
func scanCall(info *types.Info, decl *ast.FuncDecl, call *ast.CallExpr, add func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "a make call")
			case "new":
				add(call.Pos(), "a new call")
			case "append":
				if len(call.Args) > 0 && !appendTargetIsLocal(info, decl, call.Args[0]) {
					add(call.Pos(), "an append to the non-local slice "+types.ExprString(call.Args[0]))
				}
			}
			return
		}
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if what := convAllocLabel(info, tv.Type, call); what != "" {
			add(call.Pos(), what)
		}
		return
	}
	if path, name, ok := pkgFuncCall(info, call); ok && path == "fmt" {
		add(call.Pos(), "a fmt."+name+" call")
		return
	}
	// Interface-boxing arguments: a concrete non-pointer value passed for
	// an interface parameter escapes to the heap.
	sigType := info.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			add(arg.Pos(), "an interface conversion of "+typeLabel(info, arg)+" at a call argument")
		}
	}
}

// appendTargetIsLocal reports whether the append target is (a slice of) a
// plain identifier declared within decl (parameters and receivers count):
// appending to a local — including the append(buf[:0], ...) stack-buffer
// idiom — is pre-sized stack traffic; appending to a field, global, or
// element grows shared storage.
func appendTargetIsLocal(info *types.Info, decl *ast.FuncDecl, target ast.Expr) bool {
	expr := ast.Unparen(target)
	for {
		sl, ok := expr.(*ast.SliceExpr)
		if !ok {
			break
		}
		expr = ast.Unparen(sl.X)
	}
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && declaredWithin(obj, decl)
}

// convAllocLabel labels a type conversion that allocates: string <->
// []byte/[]rune and integer-to-string. Constant-folded conversions are
// free.
func convAllocLabel(info *types.Info, target types.Type, call *ast.CallExpr) string {
	if len(call.Args) != 1 || isConstExpr(info, call) {
		return ""
	}
	src := info.TypeOf(call.Args[0])
	if src == nil {
		return ""
	}
	if tb, ok := target.Underlying().(*types.Basic); ok && tb.Info()&types.IsString != 0 {
		switch su := src.Underlying().(type) {
		case *types.Slice:
			return "a string(" + types.ExprString(call.Args[0]) + ") conversion"
		case *types.Basic:
			if su.Info()&types.IsInteger != 0 {
				return "an integer-to-string conversion"
			}
		}
	}
	if _, ok := target.Underlying().(*types.Slice); ok {
		if sb, ok := src.Underlying().(*types.Basic); ok && sb.Info()&types.IsString != 0 {
			return "a " + types.TypeString(target, types.RelativeTo(nil)) + "(string) conversion"
		}
	}
	return ""
}

// classifyFuncLit decides whether a function literal allocates: only
// closures that capture enclosing variables AND escape do. Immediately
// invoked literals (incl. defer/go call position) and literals assigned to
// function-local variables are exempt; non-capturing literals are static
// function values.
func classifyFuncLit(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit, parent ast.Node) string {
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			return "" // immediately invoked: func(){...}(), defer func(){...}()
		}
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if rhs != lit || i >= len(p.Lhs) {
				continue
			}
			if id, ok := p.Lhs[i].(*ast.Ident); ok {
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && declaredWithin(obj, decl) {
					return "" // bound to a local: the consider := func(...) idiom
				}
			}
		}
	}
	if !capturesOuter(info, decl, lit) {
		return ""
	}
	return "a capturing closure that escapes"
}

// capturesOuter reports whether lit references variables declared in decl
// but outside lit itself.
func capturesOuter(info *types.Info, decl *ast.FuncDecl, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if declaredWithin(v, decl) && !declaredWithin(v, lit) {
			captures = true
		}
		return true
	})
	return captures
}

// boxes reports whether assigning src to a destination of type dst
// performs an allocating interface conversion: dst is a plain interface,
// src is a concrete, non-nil, non-pointer-shaped, non-zero-size value.
func boxes(info *types.Info, dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return false
	}
	if !types.IsInterface(dst) {
		return false
	}
	tv, ok := info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	st := tv.Type
	if _, ok := st.(*types.TypeParam); ok {
		return false
	}
	if types.IsInterface(st) {
		return false
	}
	switch st.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return false // pointer-shaped: stored directly in the interface word
	}
	if wordSizes.Sizeof(st) == 0 {
		return false // zero-size values box to a shared sentinel
	}
	return true
}

// wordSizes sizes types for the zero-size boxing exemption; 64-bit words
// match every platform the suite targets.
var wordSizes = &types.StdSizes{WordSize: 8, MaxAlign: 8}

// enclosingSignature finds the signature of the innermost function
// enclosing the current node (a literal on the stack, else decl itself).
func enclosingSignature(info *types.Info, stack []ast.Node, decl *ast.FuncDecl) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			sig, _ := info.TypeOf(lit).(*types.Signature)
			return sig
		}
	}
	if obj, ok := info.Defs[decl.Name].(*types.Func); ok {
		sig, _ := obj.Type().(*types.Signature)
		return sig
	}
	return nil
}

// isStringExpr reports whether expr has (underlying) string type.
func isStringExpr(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether the expression constant-folds (no runtime
// work at all).
func isConstExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}

// typeLabel renders an expression's type compactly for messages.
func typeLabel(info *types.Info, expr ast.Expr) string {
	t := info.TypeOf(expr)
	if t == nil {
		return types.ExprString(expr)
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
