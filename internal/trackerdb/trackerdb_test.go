package trackerdb

import (
	"math"
	"testing"

	"github.com/gamma-suite/gamma/internal/tld"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB(tld.Default())
	orgs := []Org{
		{Name: "Google", Country: "US", Category: "advertising",
			Domains: []string{"google.com", "google.com.eg", "googletagmanager.com", "doubleclick.net", "google-analytics.com", "googlesyndication.com", "youtube.com"}},
		{Name: "Meta", Country: "US", Category: "social",
			Domains: []string{"facebook.com", "facebook.net", "instagram.com"}},
		{Name: "Criteo", Country: "FR", Category: "advertising", Domains: []string{"criteo.com", "criteo.net"}},
	}
	for _, o := range orgs {
		if err := db.AddOrg(o); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOrgOfResolvesSubdomains(t *testing.T) {
	db := testDB(t)
	cases := []struct{ host, want string }{
		{"stats.g.doubleclick.net", "Google"},
		{"www.googletagmanager.com", "Google"},
		{"693.safeframe.googlesyndication.com", "Google"},
		{"connect.facebook.net", "Meta"},
		{"static.criteo.net", "Criteo"},
	}
	for _, tc := range cases {
		o, ok := db.OrgOf(tc.host)
		if !ok || o.Name != tc.want {
			t.Errorf("OrgOf(%q) = %q (%v), want %q", tc.host, o.Name, ok, tc.want)
		}
	}
	if _, ok := db.OrgOf("independent.example"); ok {
		t.Error("unowned domain should not resolve to an org")
	}
}

func TestOwnershipExclusive(t *testing.T) {
	db := testDB(t)
	err := db.AddOrg(Org{Name: "Imposter", Country: "XX", Domains: []string{"tags.doubleclick.net"}})
	if err == nil {
		t.Error("claiming another org's registrable domain must fail")
	}
	if err := db.AddOrg(Org{Name: "Google", Country: "US"}); err == nil {
		t.Error("duplicate org name must fail")
	}
	if err := db.AddOrg(Org{}); err == nil {
		t.Error("empty org name must fail")
	}
}

func TestIsFirstParty(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		site, tracker string
		want          bool
	}{
		// The paper's canonical case: Google ccTLD site + Google tracker.
		{"google.com.eg", "www.googletagmanager.com", true},
		{"www.youtube.com", "stats.g.doubleclick.net", true},
		{"news.example.eg", "www.googletagmanager.com", false},
		// Same registrable domain is always first-party, even unowned.
		{"shop.example.org", "cdn.example.org", true},
		{"facebook.com", "connect.facebook.net", true},
		{"criteo.com", "connect.facebook.net", false},
	}
	for _, tc := range cases {
		if got := db.IsFirstParty(tc.site, tc.tracker); got != tc.want {
			t.Errorf("IsFirstParty(%q, %q) = %v, want %v", tc.site, tc.tracker, got, tc.want)
		}
	}
}

func TestHQShare(t *testing.T) {
	db := testDB(t)
	share := db.HQShare()
	if math.Abs(share["US"]-2.0/3.0) > 1e-9 {
		t.Errorf("US share = %v, want 2/3", share["US"])
	}
	if math.Abs(share["FR"]-1.0/3.0) > 1e-9 {
		t.Errorf("FR share = %v, want 1/3", share["FR"])
	}
	empty := NewDB(nil)
	if empty.HQShare() != nil {
		t.Error("empty DB share should be nil")
	}
}

func TestOrgsSortedAndLen(t *testing.T) {
	db := testDB(t)
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
	orgs := db.Orgs()
	if orgs[0].Name != "Criteo" || orgs[2].Name != "Meta" {
		t.Errorf("Orgs() order: %v", orgs)
	}
}

func TestAddOrgCopiesDomains(t *testing.T) {
	db := NewDB(nil)
	domains := []string{"a-corp.com"}
	if err := db.AddOrg(Org{Name: "A", Country: "US", Domains: domains}); err != nil {
		t.Fatal(err)
	}
	domains[0] = "mutated.com"
	o, _ := db.OrgByName("A")
	if o.Domains[0] != "a-corp.com" {
		t.Error("AddOrg must defensively copy domain slices")
	}
}
