// Package trackerdb is the organization-knowledge substrate: the
// WhoTracksMe-style database of tracker-operating organizations, the
// domains they own, their headquarters countries, and the first-/third-
// party relationship between a website and a tracker (§4.2, §6.5, §6.7).
// A tracker is first-party when the site embedding it belongs to the same
// organization (the paper's example: google.com.eg embedding Google
// trackers).
package trackerdb

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/tld"
)

// Org is a tracker-operating (or site-operating) organization.
type Org struct {
	Name string `json:"name"`
	// Country is the headquarters country (ISO code); §6.5 reports ~50% of
	// tracker owners are US-based.
	Country string `json:"country"`
	// Category describes the primary business: advertising, analytics,
	// social, cdn, video, commerce, search.
	Category string `json:"category"`
	// Domains are the registrable (eTLD+1) domains the org owns — both its
	// tracker domains and its consumer-facing site domains.
	Domains []string `json:"domains"`
	// ConsumerDomains are the subset of Domains that are consumer-facing
	// websites (google.com, facebook.com) rather than tracking endpoints;
	// manual tracker identification must not label them trackers.
	ConsumerDomains []string `json:"consumer_domains,omitempty"`
}

// DB indexes organizations by name and by owned registrable domain.
type DB struct {
	psl      *tld.List
	orgs     map[string]*Org
	byDomain map[string]*Org
}

// NewDB creates an empty database resolving domains through psl.
func NewDB(psl *tld.List) *DB {
	if psl == nil {
		psl = tld.Default()
	}
	return &DB{psl: psl, orgs: make(map[string]*Org), byDomain: make(map[string]*Org)}
}

// AddOrg registers an organization and claims its domains. Claiming a
// domain another org already owns is an error — ownership is exclusive.
func (db *DB) AddOrg(o Org) error {
	if o.Name == "" {
		return fmt.Errorf("trackerdb: org needs a name")
	}
	if _, dup := db.orgs[o.Name]; dup {
		return fmt.Errorf("trackerdb: duplicate org %q", o.Name)
	}
	cp := o
	cp.Domains = append([]string(nil), o.Domains...)
	for i, d := range cp.Domains {
		reg := db.psl.RegistrableOrSelf(d)
		cp.Domains[i] = reg
		if owner, taken := db.byDomain[reg]; taken && owner.Name != o.Name {
			return fmt.Errorf("trackerdb: domain %q already owned by %q", reg, owner.Name)
		}
	}
	db.orgs[cp.Name] = &cp
	for _, d := range cp.Domains {
		db.byDomain[d] = &cp
	}
	return nil
}

// IsConsumerDomain reports whether a hostname falls under one of the
// org's consumer-facing site domains.
func (db *DB) IsConsumerDomain(hostname string) bool {
	reg := db.psl.RegistrableOrSelf(hostname)
	o, ok := db.byDomain[reg]
	if !ok {
		return false
	}
	for _, d := range o.ConsumerDomains {
		if db.psl.RegistrableOrSelf(d) == reg {
			return true
		}
	}
	return false
}

// OrgOf resolves any hostname to its owning organization via eTLD+1.
func (db *DB) OrgOf(hostname string) (Org, bool) {
	reg := db.psl.RegistrableOrSelf(hostname)
	o, ok := db.byDomain[reg]
	if !ok {
		return Org{}, false
	}
	return *o, true
}

// OrgByName looks an organization up directly.
func (db *DB) OrgByName(name string) (Org, bool) {
	o, ok := db.orgs[name]
	if !ok {
		return Org{}, false
	}
	return *o, true
}

// Orgs returns all organizations sorted by name.
func (db *DB) Orgs() []Org {
	out := make([]Org, 0, len(db.orgs))
	for _, o := range db.orgs {
		out = append(out, *o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of organizations.
func (db *DB) Len() int { return len(db.orgs) }

// IsFirstParty reports whether a tracker host is first-party to the site
// embedding it: same registrable domain, or both owned by one organization.
func (db *DB) IsFirstParty(siteDomain, trackerHost string) bool {
	siteReg := db.psl.RegistrableOrSelf(siteDomain)
	trkReg := db.psl.RegistrableOrSelf(trackerHost)
	if strings.EqualFold(siteReg, trkReg) {
		return true
	}
	so, sok := db.byDomain[siteReg]
	to, tok := db.byDomain[trkReg]
	return sok && tok && so.Name == to.Name
}

// HQShare tallies organizations by headquarters country, as fractions of
// all orgs — the §6.5 ownership-concentration statistic.
func (db *DB) HQShare() map[string]float64 {
	if len(db.orgs) == 0 {
		return nil
	}
	counts := map[string]int{}
	for _, o := range db.orgs {
		counts[o.Country]++
	}
	out := make(map[string]float64, len(counts))
	for cc, n := range counts {
		out[cc] = float64(n) / float64(len(db.orgs))
	}
	return out
}
