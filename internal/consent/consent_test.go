package consent

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var testTime = time.Date(2024, 3, 1, 10, 0, 0, 0, time.UTC)

func TestDocumentContents(t *testing.T) {
	doc := Document(DefaultStudy())
	for _, want := range []string{
		"CONSENT TO PARTICIPATE",
		"23 countries",
		"traceroutes",
		"entirely voluntary",
		"opt out of visiting any website",
		"anonymized",
		"isolated",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("consent document missing %q", want)
		}
	}
}

func TestAcceptanceBindsToWording(t *testing.T) {
	doc := Document(DefaultStudy())
	a := Accept("vol-eg", doc, testTime, "traceroute")
	if !a.Covers(doc) {
		t.Error("acceptance must cover the document it was made for")
	}
	if a.Covers(doc + " amended") {
		t.Error("acceptance must not cover changed wording")
	}
	if !a.DeclinedComponent("traceroute") {
		t.Error("traceroute opt-out missing")
	}
	if a.DeclinedComponent("tls") {
		t.Error("tls was not declined")
	}
}

func TestSaveLoad(t *testing.T) {
	doc := Document(DefaultStudy())
	a := Accept("vol-pk", doc, testTime)
	path := filepath.Join(t.TempDir(), "consent.json")
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.VolunteerID != "vol-pk" || !got.Covers(doc) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestLoadRejectsIncomplete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := Save(path, Acceptance{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("incomplete acceptance must be rejected")
	}
}

func TestHashStable(t *testing.T) {
	doc := Document(DefaultStudy())
	if DocumentHash(doc) != DocumentHash(doc) {
		t.Error("hash must be stable")
	}
	if len(DocumentHash(doc)) != 64 {
		t.Error("hash must be hex sha-256")
	}
}
