// Package consent implements the volunteer-facing study governance from
// §3.3 and §3.5: the consent document volunteers review before running
// Gamma (what is recorded, how data is stored, the right to withdraw and
// to opt out of any component), and a verifiable acceptance record the
// suite requires before measuring. The paper accommodated per-volunteer
// choices — one declined traceroutes entirely — and those choices are
// first-class here.
package consent

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// Study describes the study for the consent document.
type Study struct {
	Title         string
	Contact       string
	Countries     int
	TargetsPerRun int
	// Records enumerates exactly what the tool collects.
	Records []string
}

// DefaultStudy mirrors the paper's study description.
func DefaultStudy() Study {
	return Study{
		Title:         "Mapping Web Tracking Flow Across Diverse Geographic Regions",
		Contact:       "study-team@example.edu",
		Countries:     23,
		TargetsPerRun: 100,
		Records: []string{
			"the domains your browser contacts while loading each target website",
			"forward and reverse DNS lookups for those domains",
			"traceroutes (hop addresses and round-trip times) to the resolved servers",
			"your public IP address (anonymized after analysis) and your city",
		},
	}
}

// Document renders the consent text volunteers review.
func Document(s Study) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CONSENT TO PARTICIPATE: %s\n\n", s.Title)
	fmt.Fprintf(&b, "You are invited to run a measurement tool (\"Gamma\") on your own\n")
	fmt.Fprintf(&b, "computer and Internet connection, as one of the volunteers across\n")
	fmt.Fprintf(&b, "%d countries. A full run visits about %d websites and takes a few\n", s.Countries, s.TargetsPerRun)
	fmt.Fprintf(&b, "hours; you may run it in chunks, and the tool resumes where it\nstopped.\n\n")
	b.WriteString("WHAT IS RECORDED\n")
	for _, r := range s.Records {
		fmt.Fprintf(&b, "  - %s\n", r)
	}
	b.WriteString(`
WHAT IS NOT RECORDED
  - no pre-existing data on your machine is accessed
  - browser sessions are isolated: your accounts, cookies and history
    are never touched

YOUR RIGHTS
  - participation is entirely voluntary; you may withdraw at any time
  - you may opt out of visiting any website on the target list
  - you may opt out of any measurement component (e.g., traceroutes)
  - you may request a demonstration run before deciding

DATA HANDLING
  - data minimization is applied: only the items above are recorded
  - your IP address is anonymized in the dataset after analysis
`)
	fmt.Fprintf(&b, "\nQuestions: %s\n", s.Contact)
	return b.String()
}

// DocumentHash returns the hex SHA-256 of the consent text, binding an
// acceptance to the exact wording reviewed.
func DocumentHash(doc string) string {
	sum := sha256.Sum256([]byte(doc))
	return hex.EncodeToString(sum[:])
}

// Acceptance records a volunteer's agreement.
type Acceptance struct {
	VolunteerID  string    `json:"volunteer_id"`
	DocumentHash string    `json:"document_hash"`
	AcceptedAt   time.Time `json:"accepted_at"`
	// OptOuts lists components declined ("traceroute", "tls", ...).
	OptOuts []string `json:"opt_outs,omitempty"`
}

// Accept creates an acceptance for the given document.
func Accept(volunteerID, doc string, at time.Time, optOuts ...string) Acceptance {
	return Acceptance{
		VolunteerID:  volunteerID,
		DocumentHash: DocumentHash(doc),
		AcceptedAt:   at,
		OptOuts:      optOuts,
	}
}

// Covers reports whether the acceptance matches the document text (i.e.
// the volunteer agreed to this exact wording).
func (a Acceptance) Covers(doc string) bool {
	return a.DocumentHash == DocumentHash(doc)
}

// DeclinedComponent reports whether the volunteer opted out of a component.
func (a Acceptance) DeclinedComponent(name string) bool {
	for _, c := range a.OptOuts {
		if c == name {
			return true
		}
	}
	return false
}

// Save persists an acceptance record as JSON.
func Save(path string, a Acceptance) error {
	raw, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return fmt.Errorf("consent: encode: %w", err)
	}
	return os.WriteFile(path, raw, 0o644)
}

// Load reads an acceptance record.
func Load(path string) (Acceptance, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Acceptance{}, fmt.Errorf("consent: read: %w", err)
	}
	var a Acceptance
	if err := json.Unmarshal(raw, &a); err != nil {
		return Acceptance{}, fmt.Errorf("consent: decode: %w", err)
	}
	if a.VolunteerID == "" || a.DocumentHash == "" {
		return Acceptance{}, fmt.Errorf("consent: incomplete acceptance record")
	}
	return a, nil
}
