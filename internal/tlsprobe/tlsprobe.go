// Package tlsprobe is the security-parameter probe from Gamma's C3
// component (§3): the paper's tool can deploy TLS scans — via Nmap and
// testssl.sh in the field — against servers discovered during browser
// sessions, evaluating protocol versions, cipher suites, and certificate
// hygiene. This package models server TLS deployments deterministically
// and implements a testssl-style scanner and grader over them.
package tlsprobe

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"github.com/gamma-suite/gamma/internal/rng"
)

// Version is a TLS protocol version.
type Version int

// Protocol versions, oldest to newest.
const (
	SSL30 Version = iota
	TLS10
	TLS11
	TLS12
	TLS13
)

// String names the version as testssl does.
func (v Version) String() string {
	switch v {
	case SSL30:
		return "SSLv3"
	case TLS10:
		return "TLS 1.0"
	case TLS11:
		return "TLS 1.1"
	case TLS12:
		return "TLS 1.2"
	case TLS13:
		return "TLS 1.3"
	default:
		return fmt.Sprintf("Version(%d)", int(v))
	}
}

// CipherSuite is one negotiable suite with its strength class.
type CipherSuite struct {
	Name string
	// Weak marks export/RC4/3DES/CBC-with-SHA1-era suites.
	Weak bool
	// ForwardSecrecy marks (EC)DHE key exchange.
	ForwardSecrecy bool
}

// Standard suite catalog used by the deployment generator.
var suiteCatalog = []CipherSuite{
	{Name: "TLS_AES_128_GCM_SHA256", ForwardSecrecy: true},
	{Name: "TLS_AES_256_GCM_SHA384", ForwardSecrecy: true},
	{Name: "TLS_CHACHA20_POLY1305_SHA256", ForwardSecrecy: true},
	{Name: "ECDHE-RSA-AES128-GCM-SHA256", ForwardSecrecy: true},
	{Name: "ECDHE-RSA-AES256-GCM-SHA384", ForwardSecrecy: true},
	{Name: "ECDHE-ECDSA-CHACHA20-POLY1305", ForwardSecrecy: true},
	{Name: "AES128-SHA", Weak: true},
	{Name: "AES256-SHA", Weak: true},
	{Name: "DES-CBC3-SHA", Weak: true},
	{Name: "RC4-SHA", Weak: true},
}

// Certificate is the served leaf certificate's relevant fields.
type Certificate struct {
	Subject   string    `json:"subject"` // CN
	SANs      []string  `json:"sans"`
	Issuer    string    `json:"issuer"`
	NotBefore time.Time `json:"not_before"`
	NotAfter  time.Time `json:"not_after"`
	// SelfSigned certificates fail chain validation.
	SelfSigned bool `json:"self_signed,omitempty"`
	// KeyBits is the public-key modulus size.
	KeyBits int `json:"key_bits"`
}

// Covers reports whether the certificate is valid for a hostname,
// honouring single-label wildcards in SANs.
func (c Certificate) Covers(hostname string) bool {
	hostname = strings.ToLower(hostname)
	names := append([]string{c.Subject}, c.SANs...)
	for _, n := range names {
		n = strings.ToLower(n)
		if n == hostname {
			return true
		}
		if strings.HasPrefix(n, "*.") {
			rest := n[2:]
			if i := strings.IndexByte(hostname, '.'); i > 0 && hostname[i+1:] == rest {
				return true
			}
		}
	}
	return false
}

// Deployment is one server's TLS configuration.
type Deployment struct {
	Addr     netip.Addr    `json:"addr"`
	Versions []Version     `json:"versions"` // offered protocol versions
	Suites   []CipherSuite `json:"suites"`
	Cert     Certificate   `json:"cert"`
	// HSTS reports whether Strict-Transport-Security is sent.
	HSTS bool `json:"hsts"`
	// SNICert models shared hosting with per-site automated certificates
	// (Let's Encrypt style): the served certificate always matches the SNI
	// hostname the client asked for.
	SNICert bool `json:"sni_cert,omitempty"`
}

// SupportsVersion reports whether the deployment offers v.
func (d Deployment) SupportsVersion(v Version) bool {
	for _, x := range d.Versions {
		if x == v {
			return true
		}
	}
	return false
}

// Registry stores deployments by address.
type Registry struct {
	byAddr map[netip.Addr]Deployment
}

// NewRegistry creates an empty deployment registry.
func NewRegistry() *Registry {
	return &Registry{byAddr: make(map[netip.Addr]Deployment)}
}

// Set installs a deployment.
func (r *Registry) Set(d Deployment) { r.byAddr[d.Addr] = d }

// Get returns the deployment at an address.
func (r *Registry) Get(addr netip.Addr) (Deployment, bool) {
	d, ok := r.byAddr[addr]
	return d, ok
}

// Len returns the number of deployments.
func (r *Registry) Len() int { return len(r.byAddr) }

// Profile classifies how an operator maintains TLS.
type Profile int

// Maintenance profiles.
const (
	ProfileModern    Profile = iota // TLS1.2/1.3, strong suites, valid cert
	ProfileDated                    // TLS1.0-1.2, some weak suites
	ProfileNeglected                // legacy versions, weak suites, cert problems
)

// GenerateDeployment fabricates a deterministic deployment for a host.
// now anchors certificate validity windows.
func GenerateDeployment(seed uint64, addr netip.Addr, hostname string, profile Profile, now time.Time) Deployment {
	r := rng.New(seed, "tls", addr.String())
	d := Deployment{Addr: addr}
	switch profile {
	case ProfileModern:
		d.Versions = []Version{TLS12, TLS13}
		d.Suites = pickSuites(r, false, 3+r.IntN(3))
		d.HSTS = rng.Bernoulli(r, 0.8)
	case ProfileDated:
		d.Versions = []Version{TLS10, TLS11, TLS12}
		if rng.Bernoulli(r, 0.4) {
			d.Versions = append(d.Versions, TLS13)
		}
		d.Suites = pickSuites(r, true, 4+r.IntN(4))
		d.HSTS = rng.Bernoulli(r, 0.3)
	default: // neglected
		d.Versions = []Version{SSL30, TLS10, TLS11, TLS12}
		d.Suites = pickSuites(r, true, 5+r.IntN(4))
		d.HSTS = false
	}

	issuer := "SynthTrust CA"
	keyBits := 2048
	selfSigned := false
	notAfter := now.AddDate(0, 0, 60+r.IntN(300))
	switch profile {
	case ProfileModern:
		keyBits = 2048 + 2048*r.IntN(2)
	case ProfileNeglected:
		if rng.Bernoulli(r, 0.3) {
			selfSigned = true
			issuer = hostname
		}
		if rng.Bernoulli(r, 0.25) {
			notAfter = now.AddDate(0, 0, -(1 + r.IntN(200))) // expired
		}
		if rng.Bernoulli(r, 0.2) {
			keyBits = 1024
		}
	}
	d.Cert = Certificate{
		Subject:    hostname,
		SANs:       []string{hostname, "*." + baseOf(hostname)},
		Issuer:     issuer,
		NotBefore:  now.AddDate(0, 0, -30-r.IntN(300)),
		NotAfter:   notAfter,
		SelfSigned: selfSigned,
		KeyBits:    keyBits,
	}
	return d
}

func baseOf(hostname string) string {
	parts := strings.Split(hostname, ".")
	if len(parts) <= 2 {
		return hostname
	}
	return strings.Join(parts[len(parts)-2:], ".")
}

func pickSuites(r interface{ IntN(int) int }, allowWeak bool, n int) []CipherSuite {
	var pool []CipherSuite
	for _, s := range suiteCatalog {
		if s.Weak && !allowWeak {
			continue
		}
		pool = append(pool, s)
	}
	seen := map[string]bool{}
	var out []CipherSuite
	for tries := 0; len(out) < n && tries < 8*n; tries++ {
		s := pool[r.IntN(len(pool))]
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Grade is a testssl-style letter grade.
type Grade string

// Grades, best to worst.
const (
	GradeAPlus Grade = "A+"
	GradeA     Grade = "A"
	GradeB     Grade = "B"
	GradeC     Grade = "C"
	GradeF     Grade = "F"
)

// Finding is one issue a scan surfaces.
type Finding struct {
	Severity string `json:"severity"` // LOW, MEDIUM, HIGH, CRITICAL
	Message  string `json:"message"`
}

// ScanResult is the output of one TLS scan.
type ScanResult struct {
	Addr      netip.Addr `json:"addr"`
	Hostname  string     `json:"hostname"`
	Reachable bool       `json:"reachable"`
	Grade     Grade      `json:"grade,omitempty"`
	Findings  []Finding  `json:"findings,omitempty"`
	// Negotiated is the best protocol version the scanner agreed on.
	Negotiated Version `json:"negotiated,omitempty"`
}

// Scanner evaluates deployments, testssl-style.
type Scanner struct {
	reg *Registry
	now time.Time
}

// NewScanner builds a scanner against a registry with a fixed clock.
func NewScanner(reg *Registry, now time.Time) *Scanner {
	return &Scanner{reg: reg, now: now}
}

// Scan probes one server for the given hostname.
func (s *Scanner) Scan(addr netip.Addr, hostname string) ScanResult {
	out := ScanResult{Addr: addr, Hostname: hostname}
	d, ok := s.reg.Get(addr)
	if !ok {
		return out
	}
	out.Reachable = true
	out.Negotiated = best(d.Versions)
	if d.SNICert {
		d.Cert.Subject = hostname
		d.Cert.SANs = []string{hostname}
	}

	addFinding := func(sev, msg string) {
		out.Findings = append(out.Findings, Finding{Severity: sev, Message: msg})
	}
	if d.SupportsVersion(SSL30) {
		addFinding("CRITICAL", "SSLv3 offered (POODLE)")
	}
	if d.SupportsVersion(TLS10) || d.SupportsVersion(TLS11) {
		addFinding("MEDIUM", "deprecated TLS 1.0/1.1 offered")
	}
	weak := 0
	fs := false
	for _, suite := range d.Suites {
		if suite.Weak {
			weak++
		}
		if suite.ForwardSecrecy {
			fs = true
		}
	}
	if weak > 0 {
		addFinding("HIGH", fmt.Sprintf("%d weak cipher suite(s) offered", weak))
	}
	if !fs {
		addFinding("HIGH", "no forward-secrecy suites")
	}
	if !d.Cert.Covers(hostname) {
		addFinding("HIGH", "certificate does not match hostname")
	}
	if d.Cert.SelfSigned {
		addFinding("HIGH", "self-signed certificate")
	}
	if s.now.After(d.Cert.NotAfter) {
		addFinding("CRITICAL", "certificate expired")
	}
	if d.Cert.KeyBits < 2048 {
		addFinding("HIGH", fmt.Sprintf("weak %d-bit key", d.Cert.KeyBits))
	}
	if !d.HSTS {
		addFinding("LOW", "no HSTS header")
	}

	out.Grade = grade(out.Findings, d)
	return out
}

func best(vs []Version) Version {
	b := SSL30
	for _, v := range vs {
		if v > b {
			b = v
		}
	}
	return b
}

func grade(findings []Finding, d Deployment) Grade {
	crit, high, med, low := 0, 0, 0, 0
	for _, f := range findings {
		switch f.Severity {
		case "CRITICAL":
			crit++
		case "HIGH":
			high++
		case "MEDIUM":
			med++
		default:
			low++
		}
	}
	switch {
	case crit > 0:
		return GradeF
	case high > 0:
		return GradeC
	case med > 0:
		return GradeB
	case low > 0:
		return GradeA
	default:
		if d.SupportsVersion(TLS13) && d.HSTS {
			return GradeAPlus
		}
		return GradeA
	}
}

// Summary aggregates scan grades.
type Summary struct {
	Scanned   int           `json:"scanned"`
	Reachable int           `json:"reachable"`
	ByGrade   map[Grade]int `json:"by_grade"`
}

// Summarize tallies results.
func Summarize(results []ScanResult) Summary {
	s := Summary{ByGrade: map[Grade]int{}}
	for _, r := range results {
		s.Scanned++
		if r.Reachable {
			s.Reachable++
			s.ByGrade[r.Grade]++
		}
	}
	return s
}
