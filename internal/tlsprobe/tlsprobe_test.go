package tlsprobe

import (
	"net/netip"
	"testing"
	"time"
)

var testNow = time.Date(2024, 3, 16, 0, 0, 0, 0, time.UTC)

func addr(i byte) netip.Addr { return netip.AddrFrom4([4]byte{20, 0, 1, i}) }

func TestGenerateDeploymentProfiles(t *testing.T) {
	modern := GenerateDeployment(1, addr(1), "tracker.example", ProfileModern, testNow)
	if modern.SupportsVersion(SSL30) || modern.SupportsVersion(TLS10) {
		t.Error("modern profile must not offer legacy versions")
	}
	if !modern.SupportsVersion(TLS13) {
		t.Error("modern profile must offer TLS 1.3")
	}
	for _, s := range modern.Suites {
		if s.Weak {
			t.Errorf("modern profile offered weak suite %s", s.Name)
		}
	}
	neglectedSeen := false
	for i := byte(10); i < 60; i++ {
		n := GenerateDeployment(1, addr(i), "old.example", ProfileNeglected, testNow)
		if !n.SupportsVersion(SSL30) {
			t.Fatal("neglected profile must offer SSLv3")
		}
		if n.Cert.SelfSigned || testNow.After(n.Cert.NotAfter) || n.Cert.KeyBits < 2048 {
			neglectedSeen = true
		}
	}
	if !neglectedSeen {
		t.Error("neglected profiles should sometimes have certificate problems")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := GenerateDeployment(7, addr(1), "x.example", ProfileDated, testNow)
	b := GenerateDeployment(7, addr(1), "x.example", ProfileDated, testNow)
	if len(a.Suites) != len(b.Suites) || a.Cert.NotAfter != b.Cert.NotAfter {
		t.Error("deployments must be deterministic per (seed, addr)")
	}
}

func TestCertificateCovers(t *testing.T) {
	c := Certificate{Subject: "tracker.example.com", SANs: []string{"tracker.example.com", "*.example.com"}}
	cases := []struct {
		host string
		want bool
	}{
		{"tracker.example.com", true},
		{"TRACKER.example.com", true},
		{"cdn.example.com", true},  // wildcard
		{"a.b.example.com", false}, // wildcard is single-label
		{"example.com", false},     // wildcard does not cover apex
		{"other.example.org", false},
	}
	for _, tc := range cases {
		if got := c.Covers(tc.host); got != tc.want {
			t.Errorf("Covers(%q) = %v, want %v", tc.host, got, tc.want)
		}
	}
}

func TestScanGrading(t *testing.T) {
	reg := NewRegistry()
	modern := GenerateDeployment(1, addr(1), "good.example", ProfileModern, testNow)
	reg.Set(modern)

	// Hand-build an F-grade deployment: expired cert + SSLv3.
	reg.Set(Deployment{
		Addr:     addr(2),
		Versions: []Version{SSL30, TLS10},
		Suites:   []CipherSuite{{Name: "RC4-SHA", Weak: true}},
		Cert: Certificate{
			Subject: "bad.example", SANs: []string{"bad.example"},
			NotBefore: testNow.AddDate(-2, 0, 0), NotAfter: testNow.AddDate(-1, 0, 0),
			KeyBits: 1024,
		},
	})
	// Mismatched certificate.
	reg.Set(Deployment{
		Addr:     addr(3),
		Versions: []Version{TLS12, TLS13},
		Suites:   []CipherSuite{{Name: "TLS_AES_128_GCM_SHA256", ForwardSecrecy: true}},
		Cert: Certificate{
			Subject: "other.example", SANs: []string{"other.example"},
			NotBefore: testNow.AddDate(0, -1, 0), NotAfter: testNow.AddDate(1, 0, 0),
			KeyBits: 2048,
		},
		HSTS: true,
	})

	s := NewScanner(reg, testNow)
	good := s.Scan(addr(1), "good.example")
	if !good.Reachable {
		t.Fatal("registered deployment must be reachable")
	}
	if good.Grade != GradeA && good.Grade != GradeAPlus {
		t.Errorf("modern deployment grade = %s, findings %v", good.Grade, good.Findings)
	}
	if good.Negotiated != TLS13 {
		t.Errorf("negotiated = %v, want TLS 1.3", good.Negotiated)
	}

	bad := s.Scan(addr(2), "bad.example")
	if bad.Grade != GradeF {
		t.Errorf("expired+SSLv3 grade = %s, want F", bad.Grade)
	}
	foundExpired, foundPoodle := false, false
	for _, f := range bad.Findings {
		if f.Message == "certificate expired" {
			foundExpired = true
		}
		if f.Message == "SSLv3 offered (POODLE)" {
			foundPoodle = true
		}
	}
	if !foundExpired || !foundPoodle {
		t.Errorf("findings missing: %v", bad.Findings)
	}

	mismatch := s.Scan(addr(3), "good.example")
	if mismatch.Grade != GradeC {
		t.Errorf("hostname mismatch grade = %s, want C: %v", mismatch.Grade, mismatch.Findings)
	}

	unreachable := s.Scan(addr(99), "ghost.example")
	if unreachable.Reachable || unreachable.Grade != "" {
		t.Error("unknown address must be unreachable with no grade")
	}
}

func TestSummarize(t *testing.T) {
	results := []ScanResult{
		{Reachable: true, Grade: GradeA},
		{Reachable: true, Grade: GradeA},
		{Reachable: true, Grade: GradeF},
		{Reachable: false},
	}
	s := Summarize(results)
	if s.Scanned != 4 || s.Reachable != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.ByGrade[GradeA] != 2 || s.ByGrade[GradeF] != 1 {
		t.Errorf("grades = %v", s.ByGrade)
	}
}

func TestVersionString(t *testing.T) {
	if TLS13.String() != "TLS 1.3" || SSL30.String() != "SSLv3" {
		t.Error("version names wrong")
	}
}
