package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"

	"github.com/gamma-suite/gamma/internal/driver"
	"github.com/gamma-suite/gamma/internal/sched"
	"github.com/gamma-suite/gamma/internal/tracert"
)

// faultFirst injects one driver.Fault per key before delegating, modelling a
// transient infrastructure failure that a retry of the same call absorbs.
type faultFirst struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (f *faultFirst) hit(key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seen == nil {
		f.seen = map[string]bool{}
	}
	if f.seen[key] {
		return nil
	}
	f.seen[key] = true
	return driver.Fault(fmt.Errorf("injected: connection reset (%s)", key))
}

type faultFirstBrowser struct {
	faultFirst
	inner Browser
}

func (b *faultFirstBrowser) Load(ctx context.Context, site string) (PageRecord, error) {
	if err := b.hit(site); err != nil {
		return PageRecord{}, err
	}
	return b.inner.Load(ctx, site)
}

type faultFirstResolver struct {
	faultFirst
	inner Resolver
}

func (r *faultFirstResolver) Resolve(ctx context.Context, domain string) (netip.Addr, error) {
	if err := r.hit(domain); err != nil {
		return netip.Addr{}, err
	}
	return r.inner.Resolve(ctx, domain)
}

func (r *faultFirstResolver) Reverse(ctx context.Context, addr netip.Addr) (string, bool) {
	return r.inner.Reverse(ctx, addr)
}

type faultFirstProber struct {
	faultFirst
	inner Prober
}

func (p *faultFirstProber) Traceroute(ctx context.Context, dst netip.Addr) (tracert.Normalized, error) {
	if err := p.hit(dst.String()); err != nil {
		return tracert.Normalized{}, err
	}
	return p.inner.Traceroute(ctx, dst)
}

func datasetJSON(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	b, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNegativeParallelismRejected(t *testing.T) {
	env, _, _ := testEnv()
	cfg := testConfig()
	cfg.Parallelism = -2
	_, err := New(cfg, env)
	if err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
	if !strings.Contains(err.Error(), "parallelism") || !strings.Contains(err.Error(), "-2") {
		t.Errorf("error should name the field and value: %v", err)
	}
	// The zero value stays valid and means serial execution.
	cfg.Parallelism = 0
	if _, err := New(cfg, env); err != nil {
		t.Errorf("zero parallelism is the documented default: %v", err)
	}
}

func TestDriverRetryAbsorbsTransientFaults(t *testing.T) {
	env, _, _ := testEnv()
	s, err := New(testConfig(), env)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	flakyEnv, _, _ := testEnv()
	flakyEnv.Browser = &faultFirstBrowser{inner: flakyEnv.Browser}
	flakyEnv.Resolver = &faultFirstResolver{inner: flakyEnv.Resolver}
	flakyEnv.Prober = &faultFirstProber{inner: flakyEnv.Prober}
	cfg := testConfig()
	cfg.DriverRetry = sched.RetryPolicy{MaxAttempts: 3}
	fs, err := New(cfg, flakyEnv)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs.Run(context.Background())
	if err != nil {
		t.Fatalf("retries should absorb every injected fault: %v", err)
	}
	if string(datasetJSON(t, got)) != string(datasetJSON(t, want)) {
		t.Error("dataset with retried transient faults must be byte-identical to the fault-free dataset")
	}
}

func TestDriverFaultExhaustionFailsTarget(t *testing.T) {
	env, _, _ := testEnv()
	env.Browser = &alwaysFaultBrowser{}
	cfg := testConfig()
	cfg.DriverRetry = sched.RetryPolicy{MaxAttempts: 2}
	s, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "browser") {
		t.Fatalf("exhausted driver retries must fail the run: %v", err)
	}
}

type alwaysFaultBrowser struct{}

func (alwaysFaultBrowser) Load(context.Context, string) (PageRecord, error) {
	return PageRecord{}, driver.Fault(fmt.Errorf("injected: network down"))
}

// countingResolver counts Resolve calls per domain on top of fakeResolver.
type countingResolver struct {
	inner Resolver
	mu    sync.Mutex
	calls map[string]int
}

func (r *countingResolver) Resolve(ctx context.Context, domain string) (netip.Addr, error) {
	r.mu.Lock()
	if r.calls == nil {
		r.calls = map[string]int{}
	}
	r.calls[domain]++
	r.mu.Unlock()
	return r.inner.Resolve(ctx, domain)
}

func (r *countingResolver) Reverse(ctx context.Context, addr netip.Addr) (string, bool) {
	return r.inner.Reverse(ctx, addr)
}

func TestNXDOMAINRecordedNotRetried(t *testing.T) {
	env, _, _ := testEnv()
	// Drop static.site-a.example so its lookup is a definitive NXDOMAIN.
	cr := &countingResolver{inner: &fakeResolver{addrs: map[string]string{
		"site-a.example":        "20.0.0.1",
		"site-b.example":        "20.0.0.3",
		"static.site-b.example": "20.0.0.4",
		"t.tracker.example":     "20.0.0.9",
	}}}
	env.Resolver = cr
	cfg := testConfig()
	cfg.DriverRetry = sched.RetryPolicy{MaxAttempts: 5}
	s, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// static.site-a.example is unknown to the fake resolver: a definitive
	// NXDOMAIN is data, so it must be recorded once, not retried 5 times.
	if n := cr.calls["static.site-a.example"]; n != 1 {
		t.Errorf("NXDOMAIN resolved %d times, want 1 (no retry on permanent answers)", n)
	}
	var rec *DNSRecord
	for _, p := range ds.Pages {
		for i := range p.DNS {
			if p.DNS[i].Domain == "static.site-a.example" {
				rec = &p.DNS[i]
			}
		}
	}
	if rec == nil || !strings.Contains(rec.Err, "NXDOMAIN") {
		t.Errorf("NXDOMAIN must be recorded as data: %+v", rec)
	}
}

// failFirstTargetBrowser fails its very first load with a plain (non-fault)
// error, so the whole target attempt fails and only TargetRetry can save it.
type failFirstTargetBrowser struct {
	inner Browser
	mu    sync.Mutex
	calls int
}

func (b *failFirstTargetBrowser) Load(ctx context.Context, site string) (PageRecord, error) {
	b.mu.Lock()
	b.calls++
	first := b.calls == 1
	b.mu.Unlock()
	if first {
		return PageRecord{}, fmt.Errorf("injected: browser crashed")
	}
	return b.inner.Load(ctx, site)
}

func TestTargetRetryRerunsWholeTarget(t *testing.T) {
	env, _, _ := testEnv()
	s, _ := New(testConfig(), env)
	want, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	env2, _, _ := testEnv()
	env2.Browser = &failFirstTargetBrowser{inner: env2.Browser}
	cfg := testConfig()
	cfg.TargetRetry = sched.RetryPolicy{MaxAttempts: 2}
	s2, err := New(cfg, env2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Run(context.Background())
	if err != nil {
		t.Fatalf("target retry should rerun the failed target: %v", err)
	}
	if string(datasetJSON(t, got)) != string(datasetJSON(t, want)) {
		t.Error("retried target must reproduce the fault-free dataset")
	}
	st := s2.SchedStats()
	if st.Retries < 1 || st.Succeeded != len(testConfig().Targets) {
		t.Errorf("stats should show the retry: %+v", st)
	}
}

func TestSchedStatsCount(t *testing.T) {
	env, _, _ := testEnv()
	s, _ := New(testConfig(), env)
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.SchedStats()
	n := len(testConfig().Targets)
	if st.Units != n || st.Succeeded != n || st.Attempts != n || st.Failed != 0 {
		t.Errorf("stats = %+v, want %d clean units", st, n)
	}
}
