package core

import (
	"context"
	"net/netip"
	"testing"

	"github.com/gamma-suite/gamma/internal/tlsprobe"
)

type fakeTLS struct{ scans int }

func (f *fakeTLS) Scan(_ context.Context, addr netip.Addr, hostname string) (tlsprobe.ScanResult, error) {
	f.scans++
	return tlsprobe.ScanResult{Addr: addr, Hostname: hostname, Reachable: true, Grade: tlsprobe.GradeA}, nil
}

type fakePinger struct{ pings int }

func (f *fakePinger) Ping(_ context.Context, addr netip.Addr) (float64, bool, error) {
	f.pings++
	return 12.5, true, nil
}

func TestExtraProbesRun(t *testing.T) {
	env, _, _ := testEnv()
	ftls, fping := &fakeTLS{}, &fakePinger{}
	env.TLS = ftls
	env.Pinger = fping
	cfg := testConfig()
	cfg.TLSScanEnabled = true
	cfg.PingEnabled = true
	s, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var scans, pings int
	for _, p := range ds.Pages {
		scans += len(p.TLSScans)
		pings += len(p.Pings)
		if p.Load.OK && len(p.TLSScans) == 0 {
			t.Errorf("loaded page %s has no TLS scans", p.Target.Domain)
		}
	}
	// 2 loaded pages x 3 resolved domains each; pings dedupe per address.
	if scans != 6 {
		t.Errorf("TLS scans recorded = %d, want 6", scans)
	}
	if pings != 6 {
		t.Errorf("pings recorded = %d, want 6", pings)
	}
	if ftls.scans != scans || fping.pings != pings {
		t.Error("driver call counts disagree with recorded results")
	}
	for _, p := range ds.Pages {
		for _, sc := range p.TLSScans {
			if sc.Grade != tlsprobe.GradeA {
				t.Errorf("unexpected grade %s", sc.Grade)
			}
		}
		for _, pg := range p.Pings {
			if !pg.OK || pg.RTTMs != 12.5 {
				t.Errorf("unexpected ping record %+v", pg)
			}
		}
	}
}

func TestExtraProbesValidation(t *testing.T) {
	env, _, _ := testEnv()
	cfg := testConfig()
	cfg.TLSScanEnabled = true
	if _, err := New(cfg, env); err == nil {
		t.Error("TLS enabled without driver must fail")
	}
	cfg = testConfig()
	cfg.PingEnabled = true
	if _, err := New(cfg, env); err == nil {
		t.Error("ping enabled without driver must fail")
	}
}

func TestExtraProbesDisabledByDefault(t *testing.T) {
	env, _, _ := testEnv()
	env.TLS = &fakeTLS{}
	env.Pinger = &fakePinger{}
	s, err := New(testConfig(), env) // flags off
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Pages {
		if len(p.TLSScans) != 0 || len(p.Pings) != 0 {
			t.Fatal("probes must not run when disabled")
		}
	}
}
