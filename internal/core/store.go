package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// SaveDataset writes a dataset as indented JSON, creating parent
// directories as needed. A ".gz" suffix gzip-compresses the file —
// volunteers on slow uplinks upload the compressed form.
func SaveDataset(path string, ds *Dataset) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("core: create dataset dir: %w", err)
	}
	raw, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode dataset: %w", err)
	}
	if strings.HasSuffix(path, ".gz") {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(raw); err != nil {
			return fmt.Errorf("core: compress dataset: %w", err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("core: compress dataset: %w", err)
		}
		raw = buf.Bytes()
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("core: write dataset: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadDataset reads a dataset saved by SaveDataset, transparently
// decompressing ".gz" files.
func LoadDataset(path string) (*Dataset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: read dataset: %w", err)
	}
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("core: decompress dataset: %w", err)
		}
		raw, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("core: decompress dataset: %w", err)
		}
	}
	var ds Dataset
	if err := json.Unmarshal(raw, &ds); err != nil {
		return nil, fmt.Errorf("core: decode dataset %s: %w", path, err)
	}
	if ds.SchemaVersion != 1 {
		return nil, fmt.Errorf("core: unsupported dataset schema %d", ds.SchemaVersion)
	}
	return &ds, nil
}
