package core

import (
	"context"
	"fmt"
	"net/netip"

	"github.com/gamma-suite/gamma/internal/tlsprobe"
)

// TLSProber is the optional C3 security probe (Nmap/testssl-style): it
// evaluates a discovered server's TLS posture for a given SNI hostname.
type TLSProber interface {
	Scan(ctx context.Context, addr netip.Addr, hostname string) (tlsprobe.ScanResult, error)
}

// Pinger is the optional C3 latency/reachability probe.
type Pinger interface {
	Ping(ctx context.Context, addr netip.Addr) (rttMs float64, ok bool, err error)
}

// PingRecord is one ping measurement.
type PingRecord struct {
	Addr  string  `json:"addr"`
	RTTMs float64 `json:"rtt_ms,omitempty"`
	OK    bool    `json:"ok"`
}

// runExtraProbes executes the optional C3 probes for a page's resolved
// servers, deduplicated per address.
func (s *Suite) runExtraProbes(ctx context.Context, out *PageResult, resolved map[string]netip.Addr) error {
	if s.cfg.TLSScanEnabled && s.env.TLS != nil {
		scanned := map[netip.Addr]bool{}
		for _, rec := range out.DNS {
			addr, ok := resolved[rec.Domain]
			if !ok || scanned[addr] {
				continue
			}
			scanned[addr] = true
			res, err := s.env.TLS.Scan(ctx, addr, rec.Domain)
			if err != nil {
				return fmt.Errorf("tls scan: %w", err)
			}
			out.TLSScans = append(out.TLSScans, res)
		}
	}
	if s.cfg.PingEnabled && s.env.Pinger != nil {
		pinged := map[netip.Addr]bool{}
		for _, rec := range out.DNS {
			addr, ok := resolved[rec.Domain]
			if !ok || pinged[addr] {
				continue
			}
			pinged[addr] = true
			rtt, up, err := s.env.Pinger.Ping(ctx, addr)
			if err != nil {
				return fmt.Errorf("ping: %w", err)
			}
			out.Pings = append(out.Pings, PingRecord{Addr: addr.String(), RTTMs: rtt, OK: up})
		}
	}
	return nil
}
