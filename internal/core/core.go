// Package core is Gamma itself: the lightweight, highly configurable
// measurement suite from §3 of the paper. It orchestrates the three
// components — C1 browser-level interaction, C2 network information
// gathering (DNS/reverse DNS), and C3 active measurement probes
// (traceroutes to every resolved IP) — against pluggable drivers, records
// everything in a portable JSON dataset, supports volunteer opt-outs and
// resuming interrupted runs, and anonymizes volunteer IPs after analysis.
//
// The driver interfaces (declared in internal/driver and aliased here) are
// the portability boundary the paper describes: in the field they are
// backed by Selenium, the system resolver and the OS traceroute/tracert
// tools; in this repository they are backed by the simulation substrates.
// core itself imports neither.
//
// Targets are scheduled through internal/sched: a bounded worker pool with
// deterministic retry/backoff. Transient driver faults (marked with
// driver.Fault) are retried per call under Config.DriverRetry; whole-target
// attempts are retried under Config.TargetRetry and bounded by
// Config.TargetTimeout.
package core

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"github.com/gamma-suite/gamma/internal/driver"
	"github.com/gamma-suite/gamma/internal/sched"
	"github.com/gamma-suite/gamma/internal/tlsprobe"
	"github.com/gamma-suite/gamma/internal/tracert"
)

// RequestRecord is one network request observed during a page load.
type RequestRecord = driver.RequestRecord

// PageRecord is the C1 outcome for one target site.
type PageRecord = driver.PageRecord

// Browser drives isolated browser sessions (C1).
type Browser = driver.Browser

// Resolver performs forward and reverse DNS (C2).
type Resolver = driver.Resolver

// ChainResolver is an optional Resolver capability: it reports the CNAME
// chain a resolution traversed. Gamma records chains when available — they
// are how the pipeline detects CNAME-cloaked trackers.
type ChainResolver = driver.ChainResolver

// Prober launches active measurement probes (C3). Implementations shell
// out to OS-specific tools; results arrive already normalized through the
// tracert portability layer.
type Prober = driver.Prober

// Clock abstracts time for deterministic datasets.
type Clock interface{ Now() time.Time }

// FixedClock always returns the same instant; the study anchor is the
// data-collection date noted in §8 (the day before Jordan's PDPL).
type FixedClock time.Time

// Now implements Clock.
func (c FixedClock) Now() time.Time { return time.Time(c) }

// StudyClock returns the study's canonical anchor date.
func StudyClock() Clock {
	return FixedClock(time.Date(2024, 3, 16, 9, 0, 0, 0, time.UTC))
}

// Env bundles the drivers the suite runs against. Prober, TLS and Pinger
// are optional capabilities (§3: Gamma "supports the deployment of other
// probes, e.g., ping and TLS").
type Env struct {
	Browser  Browser
	Resolver Resolver
	Prober   Prober
	TLS      TLSProber
	Pinger   Pinger
	Clock    Clock
	// Timer paces scheduler retries and timeouts (backoff waits, attempt
	// deadlines). Nil uses the wall clock; tests inject sched.NewFakeClock
	// so nothing ever sleeps for real.
	Timer sched.Clock
}

func (e Env) validate() error {
	if e.Browser == nil {
		return fmt.Errorf("core: Env.Browser is required")
	}
	if e.Resolver == nil {
		return fmt.Errorf("core: Env.Resolver is required")
	}
	// Prober may be nil: a volunteer can opt out of traceroutes entirely.
	if e.Clock == nil {
		return fmt.Errorf("core: Env.Clock is required")
	}
	return nil
}

// TargetKind classifies targets.
type TargetKind string

// Target kinds.
const (
	KindRegional   TargetKind = "regional"
	KindGovernment TargetKind = "government"
)

// Target is one website to measure.
type Target struct {
	Domain string     `json:"domain"`
	Kind   TargetKind `json:"kind"`
}

// Config tunes a volunteer's run (§3.1).
type Config struct {
	VolunteerID string `json:"volunteer_id"`
	Country     string `json:"country"`
	// City is the location the volunteer disclosed.
	City string `json:"city"`
	// VolunteerIP is logged by the tool (and anonymized after analysis).
	VolunteerIP string `json:"volunteer_ip"`

	Targets []Target `json:"targets"`
	// OptOutSites are targets the volunteer declined to visit.
	OptOutSites map[string]bool `json:"opt_out_sites,omitempty"`
	// TracerouteEnabled is false when the volunteer opted out of probes.
	TracerouteEnabled bool `json:"traceroute_enabled"`
	// TLSScanEnabled adds testssl-style security scans of every resolved
	// server (off in the paper's main study configuration).
	TLSScanEnabled bool `json:"tls_scan_enabled,omitempty"`
	// PingEnabled adds best-of-three ping probes per resolved server.
	PingEnabled bool `json:"ping_enabled,omitempty"`
	// Parallelism is the number of simultaneous browser instances. The
	// zero value defaults to 1, the paper's single-thread volunteer mode;
	// negative values are a configuration error.
	Parallelism int `json:"parallelism"`

	// DriverRetry retries individual driver calls (a page load, one
	// resolution, one traceroute) that report transient infrastructure
	// faults (driver.Fault) — the cheapest level at which flaky volunteer
	// machines can be absorbed. The zero value makes a single attempt.
	DriverRetry sched.RetryPolicy `json:"driver_retry,omitempty"`
	// TargetRetry re-runs a whole target measurement when an attempt
	// fails terminally. The zero value makes a single attempt.
	TargetRetry sched.RetryPolicy `json:"target_retry,omitempty"`
	// TargetTimeout bounds one target attempt (0 = unbounded), measured
	// on Env.Timer.
	TargetTimeout time.Duration `json:"target_timeout_ns,omitempty"`
	// SchedSeed keys the deterministic backoff jitter draws; campaigns
	// pass the study seed so retry timing reproduces run to run.
	SchedSeed uint64 `json:"sched_seed,omitempty"`
}

// DNSRecord is one C2 resolution result.
type DNSRecord struct {
	Domain string `json:"domain"`
	Addr   string `json:"addr,omitempty"`
	RDNS   string `json:"rdns,omitempty"`
	// CNAMEChain lists the aliases traversed (queried name first), when the
	// resolver reports them and the chain has more than one link.
	CNAMEChain []string `json:"cname_chain,omitempty"`
	Err        string   `json:"err,omitempty"`
}

// PageResult bundles everything recorded for one target.
type PageResult struct {
	Target      Target                `json:"target"`
	OptedOut    bool                  `json:"opted_out,omitempty"`
	Load        PageRecord            `json:"load"`
	DNS         []DNSRecord           `json:"dns,omitempty"`
	Traceroutes []tracert.Normalized  `json:"traceroutes,omitempty"`
	TLSScans    []tlsprobe.ScanResult `json:"tls_scans,omitempty"`
	Pings       []PingRecord          `json:"pings,omitempty"`
}

// Dataset is the complete recording a volunteer uploads.
type Dataset struct {
	SchemaVersion int    `json:"schema_version"`
	VolunteerID   string `json:"volunteer_id"`
	Country       string `json:"country"`
	City          string `json:"city"`
	// VolunteerIP is the only identifying datum the tool records; it is
	// blanked by Anonymize after downstream analysis (§3.5).
	VolunteerIP string       `json:"volunteer_ip,omitempty"`
	Anonymized  bool         `json:"anonymized,omitempty"`
	StartedAt   time.Time    `json:"started_at"`
	Pages       []PageResult `json:"pages"`
}

// Anonymize strips the volunteer's IP address in place.
func (d *Dataset) Anonymize() {
	d.VolunteerIP = ""
	d.Anonymized = true
}

// Completed reports which targets already have a result (used by resume).
func (d *Dataset) Completed() map[string]bool {
	done := make(map[string]bool, len(d.Pages))
	for _, p := range d.Pages {
		done[p.Target.Domain] = true
	}
	return done
}

// LoadedOK counts targets whose page load succeeded.
func (d *Dataset) LoadedOK() int {
	n := 0
	for _, p := range d.Pages {
		if p.Load.OK {
			n++
		}
	}
	return n
}

// Suite is a configured Gamma instance.
type Suite struct {
	cfg  Config
	env  Env
	pool *sched.Pool[PageResult]
}

// New validates the configuration and builds a suite.
func New(cfg Config, env Env) (*Suite, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if cfg.VolunteerID == "" {
		return nil, fmt.Errorf("core: config needs a volunteer ID")
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("core: config needs targets")
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("core: config parallelism must not be negative, got %d (leave 0 for the single-thread default)", cfg.Parallelism)
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.TracerouteEnabled && env.Prober == nil {
		return nil, fmt.Errorf("core: traceroutes enabled but Env.Prober is nil")
	}
	if cfg.TLSScanEnabled && env.TLS == nil {
		return nil, fmt.Errorf("core: TLS scans enabled but Env.TLS is nil")
	}
	if cfg.PingEnabled && env.Pinger == nil {
		return nil, fmt.Errorf("core: pings enabled but Env.Pinger is nil")
	}
	s := &Suite{cfg: cfg, env: env}
	s.pool = sched.New[PageResult](sched.Options{
		Workers:  cfg.Parallelism,
		Timeout:  cfg.TargetTimeout,
		Retry:    cfg.TargetRetry,
		Seed:     cfg.SchedSeed,
		Clock:    env.Timer,
		FailFast: true,
	})
	return s, nil
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// SchedStats snapshots the target scheduler's counters (attempts, retries,
// latencies), accumulated across Run/Resume calls.
func (s *Suite) SchedStats() sched.Stats { return s.pool.Stats() }

// timer returns the clock pacing retries and timeouts.
func (s *Suite) timer() sched.Clock {
	if s.env.Timer != nil {
		return s.env.Timer
	}
	return sched.Wall()
}

// NewDataset returns the empty dataset a fresh run would fill. Pair it
// with Resume when the dataset must outlive individual attempts (campaign
// retries, disk checkpoints).
func (s *Suite) NewDataset() *Dataset {
	return &Dataset{
		SchemaVersion: 1,
		VolunteerID:   s.cfg.VolunteerID,
		Country:       s.cfg.Country,
		City:          s.cfg.City,
		VolunteerIP:   s.cfg.VolunteerIP,
		StartedAt:     s.env.Clock.Now(),
	}
}

// Run executes the full measurement and returns a fresh dataset.
func (s *Suite) Run(ctx context.Context) (*Dataset, error) {
	ds := s.NewDataset()
	return ds, s.Resume(ctx, ds)
}

// Resume continues an interrupted run, skipping targets already recorded —
// Gamma "is designed to resume from where it was last stopped" (§3.3).
func (s *Suite) Resume(ctx context.Context, ds *Dataset) error {
	return s.ResumeLimit(ctx, ds, 0)
}

// ResumeLimit resumes but measures at most limit pending targets (0 = all):
// the "run it in chunks" mode the paper offered volunteers.
//
// Pending targets are scheduled through the suite's worker pool
// (Config.Parallelism workers, per-target retry and timeout). Pages are
// recorded in target order up to the first terminal failure, so a later
// Resume continues exactly where this one stopped and the final dataset is
// byte-identical however many attempts it took.
func (s *Suite) ResumeLimit(ctx context.Context, ds *Dataset, limit int) error {
	done := ds.Completed()
	var pending []Target
	for _, t := range s.cfg.Targets {
		if !done[t.Domain] {
			pending = append(pending, t)
		}
	}
	if limit > 0 && len(pending) > limit {
		pending = pending[:limit]
	}
	units := make([]sched.Unit[PageResult], len(pending))
	for i, t := range pending {
		t := t
		units[i] = sched.Unit[PageResult]{
			ID: s.cfg.VolunteerID + "/target/" + t.Domain,
			Run: func(ctx context.Context) (PageResult, error) {
				return s.measureTarget(ctx, t)
			},
		}
	}
	results, _ := s.pool.Run(ctx, units)

	// Append completed pages in target order, stopping at the first unit
	// that did not succeed: resume keys on recorded domains, and keeping
	// the record a strict in-order prefix of the pending list is what
	// makes retried runs byte-identical to uninterrupted ones. The
	// reported error is the first *causal* failure — in-flight units
	// cancelled by fail-fast carry context.Canceled and must not mask it.
	appendUpTo := len(results)
	var firstErr error
	for i, r := range results {
		if r.Err == nil {
			continue
		}
		if i < appendUpTo {
			appendUpTo = i
		}
		if firstErr == nil && !r.Skipped && !errors.Is(r.Err, context.Canceled) {
			firstErr = fmt.Errorf("core: target %s: %w", pending[i].Domain, r.Err)
		}
	}
	for _, r := range results[:appendUpTo] {
		ds.Pages = append(ds.Pages, r.Value)
	}
	if firstErr != nil {
		return firstErr
	}
	if appendUpTo < len(results) {
		// Only cancellations remain: surface the context's error.
		if err := ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	}
	return nil
}

// measureTarget runs C1 -> C2 -> C3 for one site. Individual driver calls
// are retried under Config.DriverRetry; transient infrastructure faults
// (driver.Fault) that survive every retry abort the attempt rather than
// polluting the dataset, while negative measurement results (NXDOMAIN,
// failed page loads) are recorded as data.
func (s *Suite) measureTarget(ctx context.Context, t Target) (PageResult, error) {
	out := PageResult{Target: t}
	if s.cfg.OptOutSites[t.Domain] {
		out.OptedOut = true
		out.Load = PageRecord{Site: t.Domain, FailReason: "volunteer opt-out"}
		return out, nil
	}
	retryID := s.cfg.VolunteerID + "/" + t.Domain

	// C1: browser session. Load errors are infrastructure failures (the
	// simulator reports unreachable pages as data, not errors), so every
	// one is retryable.
	page, err := sched.Do(ctx, s.timer(), s.cfg.DriverRetry, s.cfg.SchedSeed, retryID+"/load",
		func(ctx context.Context) (PageRecord, error) {
			return s.env.Browser.Load(ctx, t.Domain)
		})
	if err != nil {
		return out, fmt.Errorf("browser: %w", err)
	}
	out.Load = page
	if !page.OK {
		return out, nil
	}

	// C2: forward and reverse DNS for every distinct requested domain.
	type resolution struct {
		addr  netip.Addr
		chain []string
	}
	seen := map[string]bool{}
	resolved := map[string]netip.Addr{}
	for _, req := range page.Requests {
		if req.Blocked || seen[req.Domain] {
			continue
		}
		seen[req.Domain] = true
		rec := DNSRecord{Domain: req.Domain}
		res, err := sched.Do(ctx, s.timer(), s.cfg.DriverRetry, s.cfg.SchedSeed, retryID+"/resolve/"+req.Domain,
			func(ctx context.Context) (resolution, error) {
				var r resolution
				var err error
				if chainRes, ok := s.env.Resolver.(ChainResolver); ok {
					r.addr, r.chain, err = chainRes.ResolveChain(ctx, req.Domain)
				} else {
					r.addr, err = s.env.Resolver.Resolve(ctx, req.Domain)
				}
				if err != nil && !driver.IsFault(err) {
					// A definitive negative answer (NXDOMAIN) is a
					// measurement result; don't burn retries on it.
					err = sched.Permanent(err)
				}
				return r, err
			})
		switch {
		case err != nil && driver.IsFault(err):
			// Transient fault survived every retry: abort the attempt so
			// the fault is never recorded as data.
			return out, fmt.Errorf("resolver: %w", err)
		case err != nil:
			rec.Err = err.Error()
		default:
			rec.Addr = res.addr.String()
			if len(res.chain) > 1 {
				rec.CNAMEChain = res.chain
			}
			resolved[req.Domain] = res.addr
			if name, ok := s.env.Resolver.Reverse(ctx, res.addr); ok {
				rec.RDNS = name
			}
		}
		out.DNS = append(out.DNS, rec)
	}

	// C3 extras: optional TLS and ping probes.
	if err := s.runExtraProbes(ctx, &out, resolved); err != nil {
		return out, err
	}

	// C3: traceroute to every resolved IP (deduplicated per page).
	if s.cfg.TracerouteEnabled && s.env.Prober != nil {
		traced := map[netip.Addr]bool{}
		for _, rec := range out.DNS {
			addr, ok := resolved[rec.Domain]
			if !ok || traced[addr] {
				continue
			}
			traced[addr] = true
			tr, err := sched.Do(ctx, s.timer(), s.cfg.DriverRetry, s.cfg.SchedSeed, retryID+"/trace/"+addr.String(),
				func(ctx context.Context) (tracert.Normalized, error) {
					return s.env.Prober.Traceroute(ctx, addr)
				})
			if err != nil {
				return out, fmt.Errorf("prober: %w", err)
			}
			out.Traceroutes = append(out.Traceroutes, tr)
		}
	}
	return out, nil
}
