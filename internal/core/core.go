// Package core is Gamma itself: the lightweight, highly configurable
// measurement suite from §3 of the paper. It orchestrates the three
// components — C1 browser-level interaction, C2 network information
// gathering (DNS/reverse DNS), and C3 active measurement probes
// (traceroutes to every resolved IP) — against pluggable drivers, records
// everything in a portable JSON dataset, supports volunteer opt-outs and
// resuming interrupted runs, and anonymizes volunteer IPs after analysis.
//
// The driver interfaces are the portability boundary the paper describes:
// in the field they are backed by Selenium, the system resolver, and the
// OS traceroute/tracert tools; in this repository they are backed by the
// simulation substrates. core itself imports neither.
package core

import (
	"context"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"github.com/gamma-suite/gamma/internal/tlsprobe"
	"github.com/gamma-suite/gamma/internal/tracert"
)

// RequestRecord is one network request observed during a page load.
type RequestRecord struct {
	URL       string `json:"url"`
	Domain    string `json:"domain"`
	Type      string `json:"type"`
	Initiator string `json:"initiator"`
	Blocked   bool   `json:"blocked,omitempty"`
	// ThirdParty marks requests to a different site than the page.
	ThirdParty bool `json:"third_party,omitempty"`
	// SetCookies names cookies the response set.
	SetCookies []string `json:"set_cookies,omitempty"`
}

// PageRecord is the C1 outcome for one target site.
type PageRecord struct {
	Site       string          `json:"site"`
	URL        string          `json:"url"`
	OK         bool            `json:"ok"`
	FailReason string          `json:"fail_reason,omitempty"`
	DurationMs float64         `json:"duration_ms"`
	Requests   []RequestRecord `json:"requests,omitempty"`
}

// Browser drives isolated browser sessions (C1).
type Browser interface {
	Load(ctx context.Context, siteDomain string) (PageRecord, error)
}

// Resolver performs forward and reverse DNS (C2).
type Resolver interface {
	Resolve(ctx context.Context, domain string) (netip.Addr, error)
	Reverse(ctx context.Context, addr netip.Addr) (string, bool)
}

// ChainResolver is an optional Resolver capability: it reports the CNAME
// chain a resolution traversed. Gamma records chains when available — they
// are how the pipeline detects CNAME-cloaked trackers.
type ChainResolver interface {
	ResolveChain(ctx context.Context, domain string) (netip.Addr, []string, error)
}

// Prober launches active measurement probes (C3). Implementations shell
// out to OS-specific tools; results arrive already normalized through the
// tracert portability layer.
type Prober interface {
	Traceroute(ctx context.Context, dst netip.Addr) (tracert.Normalized, error)
}

// Clock abstracts time for deterministic datasets.
type Clock interface{ Now() time.Time }

// FixedClock always returns the same instant; the study anchor is the
// data-collection date noted in §8 (the day before Jordan's PDPL).
type FixedClock time.Time

// Now implements Clock.
func (c FixedClock) Now() time.Time { return time.Time(c) }

// StudyClock returns the study's canonical anchor date.
func StudyClock() Clock {
	return FixedClock(time.Date(2024, 3, 16, 9, 0, 0, 0, time.UTC))
}

// Env bundles the drivers the suite runs against. Prober, TLS and Pinger
// are optional capabilities (§3: Gamma "supports the deployment of other
// probes, e.g., ping and TLS").
type Env struct {
	Browser  Browser
	Resolver Resolver
	Prober   Prober
	TLS      TLSProber
	Pinger   Pinger
	Clock    Clock
}

func (e Env) validate() error {
	if e.Browser == nil {
		return fmt.Errorf("core: Env.Browser is required")
	}
	if e.Resolver == nil {
		return fmt.Errorf("core: Env.Resolver is required")
	}
	// Prober may be nil: a volunteer can opt out of traceroutes entirely.
	if e.Clock == nil {
		return fmt.Errorf("core: Env.Clock is required")
	}
	return nil
}

// TargetKind classifies targets.
type TargetKind string

// Target kinds.
const (
	KindRegional   TargetKind = "regional"
	KindGovernment TargetKind = "government"
)

// Target is one website to measure.
type Target struct {
	Domain string     `json:"domain"`
	Kind   TargetKind `json:"kind"`
}

// Config tunes a volunteer's run (§3.1).
type Config struct {
	VolunteerID string `json:"volunteer_id"`
	Country     string `json:"country"`
	// City is the location the volunteer disclosed.
	City string `json:"city"`
	// VolunteerIP is logged by the tool (and anonymized after analysis).
	VolunteerIP string `json:"volunteer_ip"`

	Targets []Target `json:"targets"`
	// OptOutSites are targets the volunteer declined to visit.
	OptOutSites map[string]bool `json:"opt_out_sites,omitempty"`
	// TracerouteEnabled is false when the volunteer opted out of probes.
	TracerouteEnabled bool `json:"traceroute_enabled"`
	// TLSScanEnabled adds testssl-style security scans of every resolved
	// server (off in the paper's main study configuration).
	TLSScanEnabled bool `json:"tls_scan_enabled,omitempty"`
	// PingEnabled adds best-of-three ping probes per resolved server.
	PingEnabled bool `json:"ping_enabled,omitempty"`
	// Parallelism is the number of simultaneous browser instances; the
	// study ran volunteers in single-thread mode (1).
	Parallelism int `json:"parallelism"`
}

// DNSRecord is one C2 resolution result.
type DNSRecord struct {
	Domain string `json:"domain"`
	Addr   string `json:"addr,omitempty"`
	RDNS   string `json:"rdns,omitempty"`
	// CNAMEChain lists the aliases traversed (queried name first), when the
	// resolver reports them and the chain has more than one link.
	CNAMEChain []string `json:"cname_chain,omitempty"`
	Err        string   `json:"err,omitempty"`
}

// PageResult bundles everything recorded for one target.
type PageResult struct {
	Target      Target                `json:"target"`
	OptedOut    bool                  `json:"opted_out,omitempty"`
	Load        PageRecord            `json:"load"`
	DNS         []DNSRecord           `json:"dns,omitempty"`
	Traceroutes []tracert.Normalized  `json:"traceroutes,omitempty"`
	TLSScans    []tlsprobe.ScanResult `json:"tls_scans,omitempty"`
	Pings       []PingRecord          `json:"pings,omitempty"`
}

// Dataset is the complete recording a volunteer uploads.
type Dataset struct {
	SchemaVersion int    `json:"schema_version"`
	VolunteerID   string `json:"volunteer_id"`
	Country       string `json:"country"`
	City          string `json:"city"`
	// VolunteerIP is the only identifying datum the tool records; it is
	// blanked by Anonymize after downstream analysis (§3.5).
	VolunteerIP string       `json:"volunteer_ip,omitempty"`
	Anonymized  bool         `json:"anonymized,omitempty"`
	StartedAt   time.Time    `json:"started_at"`
	Pages       []PageResult `json:"pages"`
}

// Anonymize strips the volunteer's IP address in place.
func (d *Dataset) Anonymize() {
	d.VolunteerIP = ""
	d.Anonymized = true
}

// Completed reports which targets already have a result (used by resume).
func (d *Dataset) Completed() map[string]bool {
	done := make(map[string]bool, len(d.Pages))
	for _, p := range d.Pages {
		done[p.Target.Domain] = true
	}
	return done
}

// LoadedOK counts targets whose page load succeeded.
func (d *Dataset) LoadedOK() int {
	n := 0
	for _, p := range d.Pages {
		if p.Load.OK {
			n++
		}
	}
	return n
}

// Suite is a configured Gamma instance.
type Suite struct {
	cfg Config
	env Env
}

// New validates the configuration and builds a suite.
func New(cfg Config, env Env) (*Suite, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	if cfg.VolunteerID == "" {
		return nil, fmt.Errorf("core: config needs a volunteer ID")
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("core: config needs targets")
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.TracerouteEnabled && env.Prober == nil {
		return nil, fmt.Errorf("core: traceroutes enabled but Env.Prober is nil")
	}
	if cfg.TLSScanEnabled && env.TLS == nil {
		return nil, fmt.Errorf("core: TLS scans enabled but Env.TLS is nil")
	}
	if cfg.PingEnabled && env.Pinger == nil {
		return nil, fmt.Errorf("core: pings enabled but Env.Pinger is nil")
	}
	return &Suite{cfg: cfg, env: env}, nil
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// Run executes the full measurement and returns a fresh dataset.
func (s *Suite) Run(ctx context.Context) (*Dataset, error) {
	ds := &Dataset{
		SchemaVersion: 1,
		VolunteerID:   s.cfg.VolunteerID,
		Country:       s.cfg.Country,
		City:          s.cfg.City,
		VolunteerIP:   s.cfg.VolunteerIP,
		StartedAt:     s.env.Clock.Now(),
	}
	return ds, s.Resume(ctx, ds)
}

// Resume continues an interrupted run, skipping targets already recorded —
// Gamma "is designed to resume from where it was last stopped" (§3.3).
func (s *Suite) Resume(ctx context.Context, ds *Dataset) error {
	return s.ResumeLimit(ctx, ds, 0)
}

// ResumeLimit resumes but measures at most limit pending targets (0 = all):
// the "run it in chunks" mode the paper offered volunteers.
func (s *Suite) ResumeLimit(ctx context.Context, ds *Dataset, limit int) error {
	done := ds.Completed()
	var pending []Target
	for _, t := range s.cfg.Targets {
		if !done[t.Domain] {
			pending = append(pending, t)
		}
	}
	if limit > 0 && len(pending) > limit {
		pending = pending[:limit]
	}
	results := make([]PageResult, len(pending))
	errs := make([]error, len(pending))

	sem := make(chan struct{}, s.cfg.Parallelism)
	var wg sync.WaitGroup
	for i, t := range pending {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, t Target) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = s.measureTarget(ctx, t)
		}(i, t)
	}
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			return fmt.Errorf("core: target %s: %w", pending[i].Domain, errs[i])
		}
		ds.Pages = append(ds.Pages, results[i])
	}
	return ctx.Err()
}

// measureTarget runs C1 -> C2 -> C3 for one site.
func (s *Suite) measureTarget(ctx context.Context, t Target) (PageResult, error) {
	out := PageResult{Target: t}
	if s.cfg.OptOutSites[t.Domain] {
		out.OptedOut = true
		out.Load = PageRecord{Site: t.Domain, FailReason: "volunteer opt-out"}
		return out, nil
	}

	// C1: browser session.
	page, err := s.env.Browser.Load(ctx, t.Domain)
	if err != nil {
		return out, fmt.Errorf("browser: %w", err)
	}
	out.Load = page
	if !page.OK {
		return out, nil
	}

	// C2: forward and reverse DNS for every distinct requested domain.
	seen := map[string]bool{}
	resolved := map[string]netip.Addr{}
	for _, req := range page.Requests {
		if req.Blocked || seen[req.Domain] {
			continue
		}
		seen[req.Domain] = true
		rec := DNSRecord{Domain: req.Domain}
		var addr netip.Addr
		var err error
		if chainRes, ok := s.env.Resolver.(ChainResolver); ok {
			var chain []string
			addr, chain, err = chainRes.ResolveChain(ctx, req.Domain)
			if err == nil && len(chain) > 1 {
				rec.CNAMEChain = chain
			}
		} else {
			addr, err = s.env.Resolver.Resolve(ctx, req.Domain)
		}
		if err != nil {
			rec.Err = err.Error()
		} else {
			rec.Addr = addr.String()
			resolved[req.Domain] = addr
			if name, ok := s.env.Resolver.Reverse(ctx, addr); ok {
				rec.RDNS = name
			}
		}
		out.DNS = append(out.DNS, rec)
	}

	// C3 extras: optional TLS and ping probes.
	if err := s.runExtraProbes(ctx, &out, resolved); err != nil {
		return out, err
	}

	// C3: traceroute to every resolved IP (deduplicated per page).
	if s.cfg.TracerouteEnabled && s.env.Prober != nil {
		traced := map[netip.Addr]bool{}
		for _, rec := range out.DNS {
			addr, ok := resolved[rec.Domain]
			if !ok || traced[addr] {
				continue
			}
			traced[addr] = true
			tr, err := s.env.Prober.Traceroute(ctx, addr)
			if err != nil {
				return out, fmt.Errorf("prober: %w", err)
			}
			out.Traceroutes = append(out.Traceroutes, tr)
		}
	}
	return out, nil
}
