package core

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"github.com/gamma-suite/gamma/internal/tracert"
)

// --- fake drivers ---

type fakeBrowser struct {
	loads atomic.Int64
	fail  map[string]string // domain -> fail reason
}

func (f *fakeBrowser) Load(_ context.Context, site string) (PageRecord, error) {
	f.loads.Add(1)
	if reason, bad := f.fail[site]; bad {
		return PageRecord{Site: site, FailReason: reason}, nil
	}
	return PageRecord{
		Site: site, URL: "https://" + site + "/", OK: true,
		Requests: []RequestRecord{
			{URL: "https://" + site + "/", Domain: site, Type: "document", Initiator: "document"},
			{URL: "https://static." + site + "/a.css", Domain: "static." + site, Type: "css", Initiator: "document"},
			{URL: "https://t.tracker.example/t.js", Domain: "t.tracker.example", Type: "script", Initiator: "document"},
			{URL: "https://t.tracker.example/t2.js", Domain: "t.tracker.example", Type: "script", Initiator: "document"},
			{URL: "https://blocked.example/x.js", Domain: "blocked.example", Type: "script", Initiator: "document", Blocked: true},
		},
	}, nil
}

type fakeResolver struct {
	addrs map[string]string
}

func (f *fakeResolver) Resolve(_ context.Context, domain string) (netip.Addr, error) {
	if a, ok := f.addrs[domain]; ok {
		return netip.MustParseAddr(a), nil
	}
	return netip.Addr{}, fmt.Errorf("NXDOMAIN %s", domain)
}

func (f *fakeResolver) Reverse(_ context.Context, addr netip.Addr) (string, bool) {
	if addr.String() == "20.0.0.9" {
		return "edge-par1.r.tracker.example", true
	}
	return "", false
}

type fakeProber struct{ count atomic.Int64 }

func (f *fakeProber) Traceroute(_ context.Context, dst netip.Addr) (tracert.Normalized, error) {
	f.count.Add(1)
	return tracert.Normalized{
		Target:  dst.String(),
		Reached: true,
		Hops: []tracert.NormHop{
			{Hop: 1, Addr: "10.0.0.1", RTTMs: []float64{4}},
			{Hop: 2, Addr: dst.String(), RTTMs: []float64{30}},
		},
	}, nil
}

func testEnv() (Env, *fakeBrowser, *fakeProber) {
	fb := &fakeBrowser{fail: map[string]string{"broken.example": "connection: load failed"}}
	fp := &fakeProber{}
	env := Env{
		Browser: fb,
		Resolver: &fakeResolver{addrs: map[string]string{
			"site-a.example":        "20.0.0.1",
			"static.site-a.example": "20.0.0.2",
			"site-b.example":        "20.0.0.3",
			"static.site-b.example": "20.0.0.4",
			"t.tracker.example":     "20.0.0.9",
		}},
		Prober: fp,
		Clock:  StudyClock(),
	}
	return env, fb, fp
}

func testConfig() Config {
	return Config{
		VolunteerID: "vol-test",
		Country:     "PK",
		City:        "Karachi, PK",
		VolunteerIP: "203.0.113.50",
		Targets: []Target{
			{Domain: "site-a.example", Kind: KindRegional},
			{Domain: "site-b.example", Kind: KindGovernment},
			{Domain: "broken.example", Kind: KindRegional},
			{Domain: "optout.example", Kind: KindRegional},
		},
		OptOutSites:       map[string]bool{"optout.example": true},
		TracerouteEnabled: true,
	}
}

func TestRunFullPipeline(t *testing.T) {
	env, fb, fp := testEnv()
	s, err := New(testConfig(), env)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pages) != 4 {
		t.Fatalf("pages = %d, want 4", len(ds.Pages))
	}
	if ds.LoadedOK() != 2 {
		t.Errorf("loaded OK = %d, want 2", ds.LoadedOK())
	}
	if fb.loads.Load() != 3 {
		t.Errorf("browser loads = %d, want 3 (opt-out skipped)", fb.loads.Load())
	}
	byDomain := map[string]PageResult{}
	for _, p := range ds.Pages {
		byDomain[p.Target.Domain] = p
	}
	a := byDomain["site-a.example"]
	if len(a.DNS) != 3 { // site, static, tracker (blocked excluded, dup deduped)
		t.Errorf("site-a DNS records = %d, want 3: %+v", len(a.DNS), a.DNS)
	}
	var trackerRec *DNSRecord
	for i := range a.DNS {
		if a.DNS[i].Domain == "t.tracker.example" {
			trackerRec = &a.DNS[i]
		}
	}
	if trackerRec == nil || trackerRec.RDNS != "edge-par1.r.tracker.example" {
		t.Errorf("tracker rDNS missing: %+v", trackerRec)
	}
	if len(a.Traceroutes) != 3 {
		t.Errorf("site-a traceroutes = %d, want 3 (one per resolved IP)", len(a.Traceroutes))
	}
	if fp.count.Load() != 6 { // 3 per OK page
		t.Errorf("total traceroutes = %d, want 6", fp.count.Load())
	}
	optout := byDomain["optout.example"]
	if !optout.OptedOut || optout.Load.OK {
		t.Error("opt-out target must be skipped")
	}
	broken := byDomain["broken.example"]
	if broken.Load.OK || len(broken.DNS) != 0 {
		t.Error("failed load must not produce DNS records")
	}
}

func TestTracerouteOptOut(t *testing.T) {
	env, _, fp := testEnv()
	cfg := testConfig()
	cfg.TracerouteEnabled = false
	s, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fp.count.Load() != 0 {
		t.Error("prober must not run when traceroutes are disabled")
	}
	for _, p := range ds.Pages {
		if len(p.Traceroutes) != 0 {
			t.Error("dataset must carry no traceroutes when opted out")
		}
	}
}

func TestResumeSkipsCompleted(t *testing.T) {
	env, fb, _ := testEnv()
	s, err := New(testConfig(), env)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	before := fb.loads.Load()
	if err := s.Resume(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if fb.loads.Load() != before {
		t.Error("resume over a complete dataset must do no work")
	}
	if len(ds.Pages) != 4 {
		t.Errorf("resume must not duplicate pages: %d", len(ds.Pages))
	}
	// Partial dataset: drop two results and resume.
	ds.Pages = ds.Pages[:2]
	if err := s.Resume(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if len(ds.Pages) != 4 {
		t.Errorf("resume must complete the remaining targets: %d", len(ds.Pages))
	}
}

func TestConfigValidation(t *testing.T) {
	env, _, _ := testEnv()
	if _, err := New(Config{}, env); err == nil {
		t.Error("empty config must fail")
	}
	cfg := testConfig()
	cfg.VolunteerID = ""
	if _, err := New(cfg, env); err == nil {
		t.Error("missing volunteer ID must fail")
	}
	cfg = testConfig()
	env2 := env
	env2.Browser = nil
	if _, err := New(cfg, env2); err == nil {
		t.Error("missing browser must fail")
	}
	env3 := env
	env3.Prober = nil
	if _, err := New(cfg, env3); err == nil {
		t.Error("traceroutes enabled without prober must fail")
	}
	cfg.TracerouteEnabled = false
	if _, err := New(cfg, env3); err != nil {
		t.Errorf("prober optional when traceroutes disabled: %v", err)
	}
}

func TestParallelism(t *testing.T) {
	env, _, _ := testEnv()
	cfg := testConfig()
	cfg.Parallelism = 4
	s, err := New(cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Target order must be preserved regardless of scheduling.
	for i, p := range ds.Pages {
		if p.Target.Domain != cfg.Targets[i].Domain {
			t.Fatalf("page %d out of order: %s", i, p.Target.Domain)
		}
	}
}

func TestAnonymize(t *testing.T) {
	env, _, _ := testEnv()
	s, _ := New(testConfig(), env)
	ds, _ := s.Run(context.Background())
	if ds.VolunteerIP == "" {
		t.Fatal("dataset should carry volunteer IP before anonymization")
	}
	ds.Anonymize()
	if ds.VolunteerIP != "" || !ds.Anonymized {
		t.Error("Anonymize must blank the IP and set the flag")
	}
}

func TestSaveLoadDataset(t *testing.T) {
	env, _, _ := testEnv()
	s, _ := New(testConfig(), env)
	ds, _ := s.Run(context.Background())
	path := filepath.Join(t.TempDir(), "data", "vol-test.json")
	if err := SaveDataset(path, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.VolunteerID != ds.VolunteerID || len(got.Pages) != len(ds.Pages) {
		t.Error("dataset did not round-trip")
	}
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

func TestContextCancellation(t *testing.T) {
	env, _, _ := testEnv()
	s, _ := New(testConfig(), env)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

func TestSaveLoadDatasetGzip(t *testing.T) {
	env, _, _ := testEnv()
	s, _ := New(testConfig(), env)
	ds, _ := s.Run(context.Background())
	dir := t.TempDir()
	plain := filepath.Join(dir, "d.json")
	zipped := filepath.Join(dir, "d.json.gz")
	if err := SaveDataset(plain, ds); err != nil {
		t.Fatal(err)
	}
	if err := SaveDataset(zipped, ds); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if got.VolunteerID != ds.VolunteerID || len(got.Pages) != len(ds.Pages) {
		t.Error("gzip round trip mismatch")
	}
	pi, _ := os.Stat(plain)
	zi, _ := os.Stat(zipped)
	if zi.Size() >= pi.Size() {
		t.Errorf("gzip (%d) should be smaller than plain (%d)", zi.Size(), pi.Size())
	}
}
