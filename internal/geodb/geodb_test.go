package geodb

import (
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
)

func buildWorld(t *testing.T, nHosts int) (*netsim.Network, *geo.Registry) {
	t.Helper()
	n := netsim.New(netsim.DefaultConfig(77))
	reg := geo.Default()
	if err := n.AddAS(netsim.AS{Number: 1, Name: "a", Org: "a", Country: "DE"}); err != nil {
		t.Fatal(err)
	}
	cities := []string{"Frankfurt, DE", "Paris, FR", "Nairobi, KE", "Singapore, SG", "Amsterdam, NL"}
	for i := 0; i < nHosts; i++ {
		c, _ := reg.City(cities[i%len(cities)])
		if _, err := n.AddHost(netsim.Host{City: c, ASN: 1, Responsive: true}); err != nil {
			t.Fatal(err)
		}
	}
	return n, reg
}

func TestBuildCoverageAndErrors(t *testing.T) {
	n, reg := buildWorld(t, 1000)
	cfg := DefaultBuildConfig(9)
	db := Build("ripe-ipmap", n, reg, cfg)

	if db.Name() != "ripe-ipmap" {
		t.Errorf("name = %q", db.Name())
	}
	hosts := n.Hosts()
	covered, wrongCountry, wrongCity := 0, 0, 0
	for _, h := range hosts {
		c, ok := db.Lookup(h.Addr)
		if !ok {
			continue
		}
		covered++
		if c.Country != h.City.Country {
			wrongCountry++
		} else if c.Name != h.City.Name {
			wrongCity++
		}
	}
	covFrac := float64(covered) / float64(len(hosts))
	if covFrac < 0.92 || covFrac > 0.99 {
		t.Errorf("coverage = %.3f, want ~0.96", covFrac)
	}
	wcFrac := float64(wrongCountry) / float64(covered)
	if wcFrac < 0.04 || wcFrac > 0.13 {
		t.Errorf("wrong-country rate = %.3f, want ~0.08", wcFrac)
	}
	if wrongCity == 0 {
		t.Error("expected some same-country wrong-city errors")
	}
}

func TestBuildDeterministic(t *testing.T) {
	n, reg := buildWorld(t, 100)
	a := Build("ipmap", n, reg, DefaultBuildConfig(3))
	b := Build("ipmap", n, reg, DefaultBuildConfig(3))
	if a.Len() != b.Len() {
		t.Fatal("same seed must give same coverage")
	}
	for _, addr := range a.Addrs() {
		ca, _ := a.Lookup(addr)
		cb, ok := b.Lookup(addr)
		if !ok || ca != cb {
			t.Fatal("same seed must give identical entries")
		}
	}
}

func TestPerfectDB(t *testing.T) {
	n, reg := buildWorld(t, 50)
	db := Build("truth", n, reg, BuildConfig{Seed: 1, Coverage: 1})
	for _, h := range n.Hosts() {
		c, ok := db.Lookup(h.Addr)
		if !ok || c != h.City {
			t.Fatalf("zero-error build must return ground truth; got %v (%v)", c, ok)
		}
	}
}

func TestRefTableFallbackChain(t *testing.T) {
	reg := geo.Default()
	lat := func(a, b geo.City) float64 { return geo.MinRTTMs(geo.DistanceKm(a.Coord, b.Coord)) * 1.6 }
	chain := DefaultRefTables(lat, 5)
	fra, _ := reg.City("Frankfurt, DE")
	cities := []string{"Paris, FR", "Nairobi, KE", "Tokyo, JP", "Doha, QA", "Kigali, RW", "Auckland, NZ", "Lima, PE", "Dakar, SN"}
	verizonHits, wonderHits := 0, 0
	for _, id := range cities {
		c, _ := reg.City(id)
		ms, src, ok := chain.Lookup(fra, c)
		if !ok {
			t.Fatalf("chained lookup must always succeed (pair %s)", id)
		}
		if ms < 0.85*lat(fra, c) {
			t.Errorf("reference %.2f must sit near typical %.2f for %s", ms, lat(fra, c), id)
		}
		switch src {
		case "verizon":
			verizonHits++
		case "wondernetwork":
			wonderHits++
		default:
			t.Errorf("unexpected source %q", src)
		}
	}
	if verizonHits == 0 {
		t.Error("primary provider should cover some pairs")
	}
}

func TestRefTableNoFallback(t *testing.T) {
	reg := geo.Default()
	lat := func(a, b geo.City) float64 { return 10 }
	table := NewRefTable("only", lat, 0.0, 1.1, 7, nil)
	a, _ := reg.City("Paris, FR")
	b, _ := reg.City("Tokyo, JP")
	if _, _, ok := table.Lookup(a, b); ok {
		t.Error("zero-coverage table without fallback must miss")
	}
}

func TestRefTableSymmetricSource(t *testing.T) {
	reg := geo.Default()
	lat := func(a, b geo.City) float64 { return geo.MinRTTMs(geo.DistanceKm(a.Coord, b.Coord)) * 1.6 }
	chain := DefaultRefTables(lat, 5)
	a, _ := reg.City("Paris, FR")
	b, _ := reg.City("Tokyo, JP")
	m1, s1, _ := chain.Lookup(a, b)
	m2, s2, _ := chain.Lookup(b, a)
	if m1 != m2 || s1 != s2 {
		t.Error("reference stats must be symmetric in the pair")
	}
}

func TestCityCodesUniqueAndComplete(t *testing.T) {
	reg := geo.Default()
	missing := 0
	for _, country := range reg.Countries() {
		for _, c := range country.Cities {
			if _, ok := CityCode(c); !ok {
				missing++
				t.Errorf("city %s has no hostname code", c.ID())
			}
		}
	}
	_ = missing
}

func TestHintHostnameRoundTrip(t *testing.T) {
	reg := geo.Default()
	for _, cityID := range []string{"Amsterdam, NL", "Frankfurt, DE", "Nairobi, KE", "Al Fujairah, AE"} {
		c, _ := reg.City(cityID)
		name := HintHostname(c, "adnexus-cdn.net", 3)
		got, ok := ParseHintCity(name, reg)
		if !ok {
			t.Errorf("hostname %q should carry a hint", name)
			continue
		}
		if got.ID() != cityID {
			t.Errorf("hostname %q parsed to %s, want %s", name, got.ID(), cityID)
		}
		cc, ok := ParseHintCountry(name, reg)
		if !ok || cc != c.Country {
			t.Errorf("country hint for %q = %q (%v)", name, cc, ok)
		}
	}
}

func TestOpaqueHostnameHasNoHint(t *testing.T) {
	reg := geo.Default()
	name := OpaqueHostname("trackpixel.io", 123456)
	if _, ok := ParseHintCity(name, reg); ok {
		t.Errorf("opaque hostname %q should carry no hint", name)
	}
}

func TestParseHintFullCityName(t *testing.T) {
	reg := geo.Default()
	c, ok := ParseHintCity("core1.frankfurt.example.net", reg)
	if !ok || c.Name != "Frankfurt" {
		t.Errorf("full city name should parse: %v (%v)", c, ok)
	}
	c, ok = ParseHintCity("ix.hongkongcity.example.net", reg)
	if ok {
		t.Errorf("partial token should not match: %v", c)
	}
}

func TestParseHintNoFalsePositiveOnCommonWords(t *testing.T) {
	reg := geo.Default()
	for _, name := range []string{"www.example.com", "static.cdn.assets.example", "api.gateway.example.net"} {
		if c, ok := ParseHintCity(name, reg); ok {
			t.Errorf("hostname %q should not hint a city, got %s", name, c.ID())
		}
	}
}
