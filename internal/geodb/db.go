// Package geodb models IP-geolocation knowledge sources and their known
// unreliability (§4.1): an IPmap-style database with seeded error
// injection, provider-style reference latency tables (Verizon statistics
// with WonderNetwork fallback), and reverse-DNS hostname geo-hints in the
// style routers and CDN edges actually publish.
//
// The paper's entire constraint cascade exists because these databases are
// wrong often enough to matter; the simulator therefore injects realistic
// errors (e.g., a Google edge in Amsterdam geolocated to Al Fujairah) that
// the downstream constraints must catch.
package geodb

import (
	"net/netip"
	"sort"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/rng"
)

// DB is an IP-geolocation database: a point-in-time snapshot mapping
// addresses to cities. It never answers for addresses it has no entry for
// (RIPE IPmap behaviour), unlike commercial databases that always guess.
type DB struct {
	name    string
	entries map[netip.Addr]geo.City
}

// New creates an empty database with a provider name.
func New(name string) *DB {
	return &DB{name: name, entries: make(map[netip.Addr]geo.City)}
}

// Name returns the provider name (e.g., "ripe-ipmap").
func (d *DB) Name() string { return d.name }

// Set records (or overwrites) the location for an address.
func (d *DB) Set(addr netip.Addr, city geo.City) { d.entries[addr] = city }

// Lookup returns the database's belief about an address.
func (d *DB) Lookup(addr netip.Addr) (geo.City, bool) {
	c, ok := d.entries[addr]
	return c, ok
}

// Len returns the number of covered addresses.
func (d *DB) Len() int { return len(d.entries) }

// Addrs returns all covered addresses, sorted, for deterministic dumps.
func (d *DB) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(d.entries))
	for a := range d.entries {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// BuildConfig controls error injection when deriving a database from the
// simulated ground truth.
type BuildConfig struct {
	Seed uint64
	// Coverage is the fraction of hosts the DB has any entry for.
	Coverage float64
	// WrongCityProb: entry points to a different city in the same country
	// (harmless for this study's local/non-local classification).
	WrongCityProb float64
	// WrongCountryNearProb: entry points to a city in a *different* country
	// within NearKm — the dangerous error class the constraint cascade
	// must catch (e.g., Amsterdam edge attributed to Al Fujairah).
	WrongCountryNearProb float64
	// NearKm bounds the near-error distance (default 1100 km).
	NearKm float64
	// WrongCountryFarProb: entry points somewhere wildly wrong; usually
	// caught by the speed-of-light constraints alone.
	WrongCountryFarProb float64
}

// DefaultBuildConfig mirrors measured IPmap characteristics.
func DefaultBuildConfig(seed uint64) BuildConfig {
	return BuildConfig{
		Seed:                 seed,
		Coverage:             0.96,
		WrongCityProb:        0.22,
		WrongCountryNearProb: 0.06,
		WrongCountryFarProb:  0.02,
		NearKm:               1100,
	}
}

// Build derives a database for every host in the network, injecting errors
// per the configuration. Deterministic in (seed, network contents).
func Build(name string, n *netsim.Network, reg *geo.Registry, cfg BuildConfig) *DB {
	db := New(name)
	cities := allCities(reg)
	for _, h := range n.Hosts() {
		r := rng.New(cfg.Seed, "geodb", name, h.Addr.String())
		if !rng.Bernoulli(r, cfg.Coverage) {
			continue
		}
		truth := h.City
		switch {
		case rng.Bernoulli(r, cfg.WrongCountryFarProb):
			if c, ok := pickCity(r, cities, func(c geo.City) bool {
				return c.Country != truth.Country && geo.DistanceKm(c.Coord, truth.Coord) > 4000
			}); ok {
				db.Set(h.Addr, c)
				continue
			}
		case rng.Bernoulli(r, cfg.WrongCountryNearProb):
			nearKm := cfg.NearKm
			if nearKm == 0 {
				nearKm = 1100
			}
			if c, ok := pickCity(r, cities, func(c geo.City) bool {
				return c.Country != truth.Country && geo.DistanceKm(c.Coord, truth.Coord) <= nearKm
			}); ok {
				db.Set(h.Addr, c)
				continue
			}
		case rng.Bernoulli(r, cfg.WrongCityProb):
			if c, ok := pickCity(r, cities, func(c geo.City) bool {
				return c.Country == truth.Country && c.Name != truth.Name
			}); ok {
				db.Set(h.Addr, c)
				continue
			}
		}
		db.Set(h.Addr, truth)
	}
	return db
}

func allCities(reg *geo.Registry) []geo.City {
	var out []geo.City
	for _, c := range reg.Countries() {
		out = append(out, c.Cities...)
	}
	return out
}

// pickCity samples a city satisfying the predicate, trying a bounded number
// of draws before giving up.
func pickCity(r interface{ IntN(int) int }, cities []geo.City, pred func(geo.City) bool) (geo.City, bool) {
	for tries := 0; tries < 64; tries++ {
		c := cities[r.IntN(len(cities))]
		if pred(c) {
			return c, true
		}
	}
	return geo.City{}, false
}
