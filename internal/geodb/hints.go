package geodb

import (
	"fmt"
	"strings"

	"github.com/gamma-suite/gamma/internal/geo"
)

// cityCodes maps "City, CC" identifiers to the airport-style codes that
// operators embed in router and edge hostnames (the convention CAIDA's
// hoiho learns from real rDNS data; §4.1.3 cites it via Luckie et al.).
var cityCodes = map[string]string{
	"Baku, AZ": "bak", "Algiers, DZ": "alg", "Oran, DZ": "orn",
	"Cairo, EG": "cai", "Alexandria, EG": "alx", "Kigali, RW": "kgl",
	"Kampala, UG": "kla", "Buenos Aires, AR": "eze", "Cordoba, AR": "cor",
	"Moscow, RU": "mow", "Saint Petersburg, RU": "led", "Colombo, LK": "cmb",
	"Bangkok, TH": "bkk", "Chiang Mai, TH": "cnx", "Dubai, AE": "dxb",
	"Abu Dhabi, AE": "auh", "Al Fujairah, AE": "fjr", "London, GB": "lon",
	"Manchester, GB": "man", "Sydney, AU": "syd", "Melbourne, AU": "mel",
	"Perth, AU": "per", "Toronto, CA": "yyz", "Montreal, CA": "yul",
	"Vancouver, CA": "yvr", "Mumbai, IN": "bom", "Delhi, IN": "del",
	"Chennai, IN": "maa", "Tokyo, JP": "tyo", "Osaka, JP": "osa",
	"Amman, JO": "amm", "Auckland, NZ": "akl", "Wellington, NZ": "wlg",
	"Karachi, PK": "khi", "Lahore, PK": "lhe", "Islamabad, PK": "isb",
	"Doha, QA": "doh", "Riyadh, SA": "ruh", "Jeddah, SA": "jed",
	"Taipei, TW": "tpe", "Ashburn, US": "iad", "New York, US": "nyc",
	"San Francisco, US": "sfo", "Dallas, US": "dfw", "Beirut, LB": "bey",
	"Paris, FR": "par", "Marseille, FR": "mrs", "Frankfurt, DE": "fra",
	"Berlin, DE": "ber", "Nairobi, KE": "nbo", "Mombasa, KE": "mba",
	"Kuala Lumpur, MY": "kul", "Singapore, SG": "sin", "Hong Kong, HK": "hkg",
	"Muscat, OM": "mct", "Sofia, BG": "sof", "Sao Paulo, BR": "gru",
	"Rio de Janeiro, BR": "gig", "Helsinki, FI": "hel", "Hamina, FI": "hmn",
	"Amsterdam, NL": "ams", "Tel Aviv, IL": "tlv", "Milan, IT": "mil",
	"Rome, IT": "rom", "Dublin, IE": "dub", "Brussels, BE": "bru",
	"Saint-Ghislain, BE": "ghs", "Accra, GH": "acc", "Istanbul, TR": "ist",
	"Zurich, CH": "zrh", "Madrid, ES": "mad", "Warsaw, PL": "waw",
	"Stockholm, SE": "sto", "Oslo, NO": "osl", "Copenhagen, DK": "cph",
	"Prague, CZ": "prg", "Vienna, AT": "vie", "Lisbon, PT": "lis",
	"Johannesburg, ZA": "jnb", "Cape Town, ZA": "cpt", "Lagos, NG": "los",
	"Casablanca, MA": "cmn", "Jakarta, ID": "jkt", "Ho Chi Minh City, VN": "sgn",
	"Manila, PH": "mnl", "Seoul, KR": "sel", "Shanghai, CN": "sha",
	"Mexico City, MX": "mex", "Queretaro, MX": "qro", "Santiago, CL": "scl",
	"Bogota, CO": "bog", "Montevideo, UY": "mvd", "Lima, PE": "lim",
	"Athens, GR": "ath", "Budapest, HU": "bud", "Bucharest, RO": "buh",
	"Kyiv, UA": "iev", "Almaty, KZ": "ala", "Kuwait City, KW": "kwi",
	"Manama, BH": "bah", "Nicosia, CY": "nco", "Luxembourg, LU": "lux",
	"Tallinn, EE": "tll", "Dhaka, BD": "dac", "Kathmandu, NP": "ktm",
	"Addis Ababa, ET": "add", "Dar es Salaam, TZ": "dar", "Dakar, SN": "dkr",
	"Tunis, TN": "tun", "Suva, FJ": "suv",
}

// codeToCity is the inverse index, built once at init.
var codeToCity = func() map[string]string {
	m := make(map[string]string, len(cityCodes))
	for cityID, code := range cityCodes {
		if prev, dup := m[code]; dup {
			panic(fmt.Sprintf("geodb: city code %q used by both %q and %q", code, prev, cityID))
		}
		m[code] = cityID
	}
	return m
}()

// CityCode returns the airport-style hostname code for a city.
func CityCode(c geo.City) (string, bool) {
	code, ok := cityCodes[c.ID()]
	return code, ok
}

// HintHostname fabricates the kind of PTR record a CDN or tracker operator
// publishes for an edge server, embedding the true city's code, e.g.
// "edge-ams3.r.adnexus-cdn.net" for an Amsterdam edge of adnexus-cdn.net.
func HintHostname(c geo.City, orgDomain string, idx int) string {
	code, ok := CityCode(c)
	if !ok {
		code = "gw"
	}
	return fmt.Sprintf("edge-%s%d.r.%s", code, idx, orgDomain)
}

// OpaqueHostname fabricates a PTR record with no usable location hint,
// as published by operators that name hosts after serial numbers.
func OpaqueHostname(orgDomain string, idx int) string {
	return fmt.Sprintf("host-%06d.%s", idx, orgDomain)
}

// ParseHintCity extracts a location hint from an rDNS hostname: any
// hostname token that is a known city code or a full city name resolves to
// that city. ok is false when the name carries no recognizable hint.
func ParseHintCity(hostname string, reg *geo.Registry) (geo.City, bool) {
	hostname = strings.ToLower(hostname)
	for _, token := range splitTokens(hostname) {
		if cityID, ok := codeToCity[token]; ok {
			if c, ok := reg.City(cityID); ok {
				return c, true
			}
		}
	}
	// Full city names (rare but real: "frankfurt.de.example.net").
	for cityID := range cityCodes {
		name := strings.ToLower(strings.SplitN(cityID, ",", 2)[0])
		name = strings.ReplaceAll(name, " ", "")
		for _, token := range splitTokens(hostname) {
			if token == name {
				if c, ok := reg.City(cityID); ok {
					return c, true
				}
			}
		}
	}
	return geo.City{}, false
}

// ParseHintCountry is ParseHintCity lifted to country granularity, which is
// what the reverse-DNS constraint actually compares (§4.1.3).
func ParseHintCountry(hostname string, reg *geo.Registry) (string, bool) {
	c, ok := ParseHintCity(hostname, reg)
	if !ok {
		return "", false
	}
	return c.Country, true
}

// splitTokens breaks a hostname into letter runs: digits and punctuation
// separate tokens, so "edge-fra2.r.x.net" yields [edge fra r x net].
func splitTokens(hostname string) []string {
	return strings.FieldsFunc(hostname, func(r rune) bool {
		return r < 'a' || r > 'z'
	})
}
