package geodb

import (
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/rng"
)

// LatencyFn returns a typical round-trip time in milliseconds between two
// cities. The reference tables wrap such a function the way Verizon's
// published IP-latency statistics wrap their backbone measurements.
type LatencyFn func(a, b geo.City) float64

// RefTable is a provider of city-pair latency statistics. The primary
// provider (Verizon in the paper) covers only a subset of pairs; the
// fallback (WonderNetwork) covers everything. The source-based constraint
// (§4.1.1) discards non-local classifications whose observed latency is
// below 80% of these statistics.
type RefTable struct {
	name     string
	fallback *RefTable
	latency  LatencyFn
	coverage float64
	seed     uint64
	// inflation models that published statistics are means over congested
	// paths, so they sit above the physical floor.
	inflation float64
}

// NewRefTable builds a provider. coverage in [0,1] is the fraction of city
// pairs the provider publishes statistics for (decided deterministically
// per pair). A nil fallback means lookups can fail.
func NewRefTable(name string, latency LatencyFn, coverage, inflation float64, seed uint64, fallback *RefTable) *RefTable {
	if inflation <= 0 {
		inflation = 1.0
	}
	return &RefTable{
		name:      name,
		fallback:  fallback,
		latency:   latency,
		coverage:  coverage,
		seed:      seed,
		inflation: inflation,
	}
}

// Lookup returns the published statistic for the pair and the providing
// table's name. ok is false when neither this provider nor any fallback
// covers the pair.
func (t *RefTable) Lookup(a, b geo.City) (ms float64, source string, ok bool) {
	ka, kb := a.ID(), b.ID()
	if kb < ka {
		ka, kb = kb, ka
	}
	r := rng.New(t.seed, "reftable", t.name, ka, kb)
	if rng.Bernoulli(r, t.coverage) {
		base := t.latency(a, b)
		// Published statistics wobble around the typical value.
		wobble := rng.Float64InRange(r, 0.92, 1.08)
		return base * t.inflation * wobble, t.name, true
	}
	if t.fallback != nil {
		return t.fallback.Lookup(a, b)
	}
	return 0, "", false
}

// DefaultRefTables builds the paper's provider chain: a Verizon-style
// primary covering most major routes with a WonderNetwork-style fallback
// covering all pairs.
func DefaultRefTables(latency LatencyFn, seed uint64) *RefTable {
	wonder := NewRefTable("wondernetwork", latency, 1.0, 1.08, seed, nil)
	return NewRefTable("verizon", latency, 0.70, 1.06, seed, wonder)
}
