package browser

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/gamma-suite/gamma/internal/websim"
)

// TestHTMLEmbedParseBijection: whatever resource set a site declares, the
// generated markup parses back to exactly the top-level resources, in
// order, with their types intact.
func TestHTMLEmbedParseBijection(t *testing.T) {
	types := []string{"css", "script", "img", "iframe", "xhr"}
	f := func(count uint8, typeSeed uint32, pathSeed uint16) bool {
		n := int(count % 12)
		var resources []websim.Resource
		for i := 0; i < n; i++ {
			typ := types[int(typeSeed>>(uint(i%8)*2))%len(types)]
			resources = append(resources, websim.Resource{
				URL:  fmt.Sprintf("https://host-%d.example/res-%d-%d", i, pathSeed, i),
				Type: typ,
			})
		}
		site := websim.Site{Domain: "prop.example", Resources: resources}
		refs := ParseHTML(site.HTML())
		if len(refs) != len(resources) {
			return false
		}
		// The generator emits css+script in <head> then img/iframe/xhr in
		// <body>; compare as multisets of (url, type).
		want := map[string]string{}
		for _, r := range resources {
			want[r.URL] = r.Type
		}
		for _, ref := range refs {
			if want[ref.URL] != ref.Type {
				return false
			}
			delete(want, ref.URL)
		}
		return len(want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParseHTMLNeverPanics: arbitrary byte soup must parse (to something)
// without panicking — the browser sees hostile markup in the field.
func TestParseHTMLNeverPanics(t *testing.T) {
	f := func(doc string) bool {
		_ = ParseHTML(doc)
		_ = ParseHTML("<script src=\"" + doc + "\">")
		_ = ParseHTML("<" + doc)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
