package browser

import (
	"sync"
	"sync/atomic"

	"github.com/gamma-suite/gamma/internal/websim"
)

// refKey identifies a parsed homepage: countries the site serves no
// variant to collapse onto the base document (""), matching the websim
// page memo's keying.
type refKey struct{ domain, country string }

// ParseCacheStats counts parse-memo traffic. Hits+Misses is the number of
// lookups; Derivations is how many documents were actually parsed.
type ParseCacheStats struct {
	Hits, Misses, Derivations uint64
}

// ParseCache memoizes ParseHTML output per distinct homepage document.
// The reference list a page yields is a pure function of the site's
// registered state, so a study that loads the same site from many
// sessions — every volunteer in the same country, every repeat visit —
// was re-rendering and re-parsing identical markup each time. One cache
// is shared across all of a study's browsers (each volunteer gets its own
// Browser; wire the world's cache in through Config.Pages), so it is safe
// for concurrent use. Cached slices are capacity-clipped before they are
// stored: callers append session-specific rotating resources to the
// returned slice, and the clip forces that append to copy.
type ParseCache struct {
	mu      sync.RWMutex
	m       map[refKey][]ResourceRef
	fillMu  sync.Mutex
	hits    atomic.Uint64
	misses  atomic.Uint64
	derived atomic.Uint64
}

// NewParseCache creates an empty parse memo.
func NewParseCache() *ParseCache {
	return &ParseCache{m: make(map[refKey][]ResourceRef)}
}

// Stats returns a snapshot of the memo counters.
func (c *ParseCache) Stats() ParseCacheStats {
	return ParseCacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Derivations: c.derived.Load(),
	}
}

// refs returns the parsed resource references of the document web serves
// for (site, country), deriving each distinct document at most once.
func (c *ParseCache) refs(web *websim.Web, site websim.Site, country string) []ResourceRef {
	key := refKey{domain: site.Domain}
	if _, variant := site.Variants[country]; variant {
		key.country = country
	}
	c.mu.RLock()
	refs, cached := c.m[key]
	c.mu.RUnlock()
	if cached {
		c.hits.Add(1)
		return refs
	}
	return c.fill(web, site, key)
}

// fill parses and stores a document on a cache miss, serialized so
// concurrent sessions landing on the same page parse it once.
func (c *ParseCache) fill(web *websim.Web, site websim.Site, key refKey) []ResourceRef {
	c.misses.Add(1)
	c.fillMu.Lock()
	defer c.fillMu.Unlock()
	c.mu.RLock()
	refs, cached := c.m[key]
	c.mu.RUnlock()
	if cached {
		return refs
	}
	c.derived.Add(1)
	html, _ := web.PageHTML(site.Domain, key.country)
	refs = ParseHTML(html)
	refs = refs[:len(refs):len(refs)]
	c.mu.Lock()
	c.m[key] = refs
	c.mu.Unlock()
	return refs
}
