package browser

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/websim"
)

func testWeb(t *testing.T) *websim.Web {
	t.Helper()
	w := websim.NewWeb()
	err := w.AddSite(websim.Site{
		Domain:   "news.example.pk",
		Country:  "PK",
		Kind:     websim.Regional,
		RenderMs: 6000,
		Resources: []websim.Resource{
			{URL: "https://static.news.example.pk/site.css", Type: "css"},
			{URL: "https://static.news.example.pk/logo.png", Type: "img"},
			{URL: "https://tagmanager.trk.example/gtm.js", Type: "script", Children: []websim.Resource{
				{URL: "https://analytics.trk.example/ga.js", Type: "script", Children: []websim.Resource{
					{URL: "https://collect.trk.example/beacon", Type: "xhr"},
				}},
			}},
			{URL: "https://ads.adnet.example/frame", Type: "iframe"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddSite(websim.Site{Domain: "slow.example", RenderMs: 400000}); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestParseHTMLExtractsAllTypes(t *testing.T) {
	s := websim.Site{
		Domain: "x.example",
		Resources: []websim.Resource{
			{URL: "https://a/1.css", Type: "css"},
			{URL: "https://a/2.js", Type: "script"},
			{URL: "https://a/3.png", Type: "img"},
			{URL: "https://a/4", Type: "iframe"},
			{URL: "https://a/5", Type: "xhr"},
		},
	}
	refs := ParseHTML(s.HTML())
	if len(refs) != 5 {
		t.Fatalf("parsed %d refs, want 5: %+v", len(refs), refs)
	}
	types := map[string]bool{}
	for _, r := range refs {
		types[r.Type] = true
	}
	for _, want := range []string{"css", "script", "img", "iframe", "xhr"} {
		if !types[want] {
			t.Errorf("missing resource type %q", want)
		}
	}
}

func TestParseHTMLMalformed(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<script src=",
		"<script src='unterminated",
		"plain text only",
		"<!-- comment --><script src=\"https://x/1.js\"></script>",
		"<SCRIPT SRC=\"https://x/2.js\"></SCRIPT>",
		"<img src=https://x/bare.png alt=x>",
	}
	for _, doc := range cases {
		refs := ParseHTML(doc) // must never panic
		_ = refs
	}
	refs := ParseHTML("<SCRIPT SRC=\"https://x/2.js\"></SCRIPT>")
	if len(refs) != 1 || refs[0].URL != "https://x/2.js" {
		t.Errorf("uppercase tag should parse: %+v", refs)
	}
	refs = ParseHTML("<img src=https://x/bare.png alt=x>")
	if len(refs) != 1 || refs[0].URL != "https://x/bare.png" {
		t.Errorf("unquoted attribute should parse: %+v", refs)
	}
}

func TestLoadRecordsChainedRequests(t *testing.T) {
	w := testWeb(t)
	b := New(w, DefaultConfig(1, "vol-pk"))
	pl := b.Load("news.example.pk")
	if !pl.OK {
		t.Fatalf("load failed: %s", pl.FailReason)
	}
	domains := pl.Domains()
	joined := strings.Join(domains, ",")
	for _, want := range []string{"tagmanager.trk.example", "analytics.trk.example", "collect.trk.example", "ads.adnet.example"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing chained/embedded domain %s in %v", want, domains)
		}
	}
	// Chained loads carry their initiator.
	var foundChild bool
	for _, r := range pl.Requests {
		if r.Domain == "analytics.trk.example" && r.Initiator == "https://tagmanager.trk.example/gtm.js" {
			foundChild = true
		}
	}
	if !foundChild {
		t.Error("chained request should record its initiating script")
	}
}

func TestWebdriverNoiseInjected(t *testing.T) {
	w := testWeb(t)
	b := New(w, DefaultConfig(1, "vol-pk"))
	pl := b.Load("news.example.pk")
	noise := 0
	for _, r := range pl.Requests {
		if r.Initiator == "webdriver" {
			noise++
			if !strings.Contains(r.Domain, "googleapis") {
				t.Errorf("unexpected webdriver noise domain %s", r.Domain)
			}
		}
	}
	if noise != 3 {
		t.Errorf("webdriver noise requests = %d, want 3", noise)
	}
}

func TestHardTimeoutKillsInstance(t *testing.T) {
	w := testWeb(t)
	b := New(w, DefaultConfig(1, "vol-x"))
	pl := b.Load("slow.example")
	if pl.OK {
		t.Fatal("render longer than hard timeout must fail")
	}
	if !strings.HasPrefix(pl.FailReason, "timeout") {
		t.Errorf("fail reason = %q", pl.FailReason)
	}
	if pl.DurationMs != 180000 {
		t.Errorf("duration = %v, want hard limit", pl.DurationMs)
	}
}

func TestUnknownSiteFailsDNS(t *testing.T) {
	w := testWeb(t)
	b := New(w, DefaultConfig(1, "vol-x"))
	pl := b.Load("nonexistent.example")
	if pl.OK || !strings.HasPrefix(pl.FailReason, "dns") {
		t.Errorf("unknown site: ok=%v reason=%q", pl.OK, pl.FailReason)
	}
}

func TestLoadFailureProbability(t *testing.T) {
	w := websim.NewWeb()
	for i := 0; i < 200; i++ {
		if err := w.AddSite(websim.Site{Domain: site(i), RenderMs: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig(5, "vol-jp")
	cfg.LoadFailureProb = 0.36 // Japan's observed failure rate
	b := New(w, cfg)
	failed := 0
	for i := 0; i < 200; i++ {
		if pl := b.Load(site(i)); !pl.OK {
			failed++
		}
	}
	if failed < 50 || failed > 95 {
		t.Errorf("failures = %d/200, want ~72", failed)
	}
	// Determinism: same seed+session gives identical outcomes.
	b2 := New(w, cfg)
	for i := 0; i < 200; i++ {
		if b.Load(site(i)).OK != b2.Load(site(i)).OK {
			t.Fatal("load outcomes must be deterministic")
		}
	}
}

func site(i int) string {
	return "site-" + string(rune('a'+i%26)) + "-" + string(rune('a'+(i/26)%26)) + ".example"
}

func TestBraveBlocksTrackers(t *testing.T) {
	w := testWeb(t)
	eng := filterlist.NewEngine(filterlist.ParseList("easyprivacy", "||trk.example^$third-party"))
	cfg := DefaultConfig(1, "vol-br")
	cfg.Kind = Brave
	cfg.Blocker = eng
	b := New(w, cfg)
	pl := b.Load("news.example.pk")
	if !pl.OK {
		t.Fatalf("load failed: %s", pl.FailReason)
	}
	var blockedTag, sawChild bool
	for _, r := range pl.Requests {
		if r.Domain == "tagmanager.trk.example" && r.Blocked {
			blockedTag = true
		}
		if r.Domain == "analytics.trk.example" {
			sawChild = true
		}
	}
	if !blockedTag {
		t.Error("Brave should block the tag manager request")
	}
	if sawChild {
		t.Error("blocked script must not trigger chained loads")
	}
	// Unblocked first-party assets still load.
	if len(pl.Domains()) == 0 {
		t.Error("first-party assets should still be recorded")
	}
}

func TestMaxDepthBoundsChains(t *testing.T) {
	w := websim.NewWeb()
	// Build a 6-deep chain.
	leaf := websim.Resource{URL: "https://d6.example/x", Type: "xhr"}
	chain := leaf
	for i := 5; i >= 1; i-- {
		chain = websim.Resource{
			URL: "https://d" + string(rune('0'+i)) + ".example/s.js", Type: "script",
			Children: []websim.Resource{chain},
		}
	}
	if err := w.AddSite(websim.Site{Domain: "deep.example", RenderMs: 100, Resources: []websim.Resource{chain}}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1, "v")
	cfg.MaxDepth = 2
	b := New(w, cfg)
	pl := b.Load("deep.example")
	for _, r := range pl.Requests {
		if r.Domain == "d4.example" || r.Domain == "d6.example" {
			t.Errorf("depth limit exceeded: fetched %s", r.Domain)
		}
	}
}

func TestHARExport(t *testing.T) {
	w := testWeb(t)
	b := New(w, DefaultConfig(1, "vol-pk"))
	pl := b.Load("news.example.pk")
	start := time.Date(2024, 3, 16, 12, 0, 0, 0, time.UTC)
	har := pl.ToHAR(start)
	if har.Log.Version != "1.2" {
		t.Errorf("HAR version = %q", har.Log.Version)
	}
	if len(har.Log.Entries) != len(pl.Requests) {
		t.Errorf("entries = %d, want %d", len(har.Log.Entries), len(pl.Requests))
	}
	raw, err := har.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("HAR JSON does not round-trip: %v", err)
	}
	if !strings.Contains(string(raw), "2024-03-16T12:00:00Z") {
		t.Error("HAR should anchor to the provided clock")
	}
}

func TestKindString(t *testing.T) {
	if Chrome.String() != "chrome" || Firefox.String() != "firefox" || Brave.String() != "brave" {
		t.Error("browser kind names wrong")
	}
}
