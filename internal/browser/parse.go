package browser

import (
	"strings"
)

// ResourceRef is a subresource reference extracted from page markup.
type ResourceRef struct {
	URL  string
	Type string // script, img, css, iframe, xhr
}

// ParseHTML scans an HTML document for subresource references: script
// src, img src, stylesheet link href, iframe src, and data-endpoint
// attributes (XHR endpoints the page's bootstrap fetches). The scanner is a
// forgiving tag tokenizer in the spirit of real browsers: unknown tags,
// stray text and malformed attributes are skipped, never fatal.
func ParseHTML(doc string) []ResourceRef {
	var out []ResourceRef
	for i := 0; i < len(doc); {
		lt := strings.IndexByte(doc[i:], '<')
		if lt < 0 {
			break
		}
		i += lt + 1
		if i >= len(doc) {
			break
		}
		if doc[i] == '!' || doc[i] == '/' { // doctype, comment, closing tag
			if gt := strings.IndexByte(doc[i:], '>'); gt >= 0 {
				i += gt + 1
			} else {
				break
			}
			continue
		}
		gt := strings.IndexByte(doc[i:], '>')
		if gt < 0 {
			break
		}
		tag := doc[i : i+gt]
		i += gt + 1

		name, attrs := splitTag(tag)
		switch name {
		case "script":
			if src := attrs["src"]; src != "" {
				out = append(out, ResourceRef{URL: src, Type: "script"})
			}
		case "img":
			if src := attrs["src"]; src != "" {
				out = append(out, ResourceRef{URL: src, Type: "img"})
			}
		case "link":
			if strings.EqualFold(attrs["rel"], "stylesheet") && attrs["href"] != "" {
				out = append(out, ResourceRef{URL: attrs["href"], Type: "css"})
			}
		case "iframe":
			if src := attrs["src"]; src != "" {
				out = append(out, ResourceRef{URL: src, Type: "iframe"})
			}
		default:
			if ep := attrs["data-endpoint"]; ep != "" {
				out = append(out, ResourceRef{URL: ep, Type: "xhr"})
			}
		}
	}
	return out
}

// splitTag separates a tag's name from its attribute map.
func splitTag(tag string) (string, map[string]string) {
	tag = strings.TrimSuffix(strings.TrimSpace(tag), "/")
	sp := strings.IndexFunc(tag, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' })
	if sp < 0 {
		return strings.ToLower(tag), nil
	}
	name := strings.ToLower(tag[:sp])
	attrs := make(map[string]string)
	rest := tag[sp+1:]
	for len(rest) > 0 {
		rest = strings.TrimLeft(rest, " \t\n")
		if rest == "" {
			break
		}
		eq := strings.IndexByte(rest, '=')
		spc := strings.IndexAny(rest, " \t\n")
		if eq < 0 || (spc >= 0 && spc < eq) {
			// Bare attribute (e.g. async).
			end := spc
			if end < 0 {
				end = len(rest)
			}
			attrs[strings.ToLower(rest[:end])] = ""
			rest = rest[end:]
			continue
		}
		key := strings.ToLower(strings.TrimSpace(rest[:eq]))
		rest = strings.TrimLeft(rest[eq+1:], " \t\n")
		if rest == "" {
			break
		}
		var val string
		switch rest[0] {
		case '"', '\'':
			q := rest[0]
			end := strings.IndexByte(rest[1:], q)
			if end < 0 {
				val, rest = rest[1:], ""
			} else {
				val, rest = rest[1:1+end], rest[end+2:]
			}
		default:
			end := strings.IndexAny(rest, " \t\n")
			if end < 0 {
				val, rest = rest, ""
			} else {
				val, rest = rest[:end], rest[end:]
			}
		}
		attrs[key] = val
	}
	return name, attrs
}
