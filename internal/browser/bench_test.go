package browser

import (
	"fmt"
	"testing"

	"github.com/gamma-suite/gamma/internal/websim"
)

func BenchmarkLoadPage(b *testing.B) {
	w := websim.NewWeb()
	var resources []websim.Resource
	for i := 0; i < 20; i++ {
		resources = append(resources, websim.Resource{
			URL: fmt.Sprintf("https://t%d.example/x.js", i), Type: "script",
			Children: []websim.Resource{{URL: fmt.Sprintf("https://c%d.example/y", i), Type: "xhr"}},
		})
	}
	if err := w.AddSite(websim.Site{Domain: "bench.example", RenderMs: 1000, Resources: resources}); err != nil {
		b.Fatal(err)
	}
	br := New(w, DefaultConfig(1, "bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pl := br.Load("bench.example"); !pl.OK {
			b.Fatal("load failed")
		}
	}
}

func BenchmarkParseHTML(b *testing.B) {
	var resources []websim.Resource
	for i := 0; i < 30; i++ {
		resources = append(resources, websim.Resource{URL: fmt.Sprintf("https://t%d.example/x.js", i), Type: "script"})
	}
	doc := websim.Site{Domain: "bench.example", Resources: resources}.HTML()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParseHTML(doc)
	}
}
