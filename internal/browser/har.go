package browser

import (
	"encoding/json"
	"time"
)

// HAR is the HTTP Archive 1.2 document Gamma can persist for each page
// load. Only the fields the analysis pipeline consumes are materialized,
// but the structure follows the spec so standard HAR viewers open it.
type HAR struct {
	Log HARLog `json:"log"`
}

// HARLog is the top-level log object.
type HARLog struct {
	Version string     `json:"version"`
	Creator HARCreator `json:"creator"`
	Pages   []HARPage  `json:"pages"`
	Entries []HAREntry `json:"entries"`
}

// HARCreator identifies the producing tool.
type HARCreator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// HARPage describes one loaded page.
type HARPage struct {
	StartedDateTime string         `json:"startedDateTime"`
	ID              string         `json:"id"`
	Title           string         `json:"title"`
	PageTimings     HARPageTimings `json:"pageTimings"`
}

// HARPageTimings carries page-level milestones.
type HARPageTimings struct {
	OnLoad float64 `json:"onLoad"`
}

// HAREntry is one request/response pair.
type HAREntry struct {
	Pageref         string      `json:"pageref"`
	StartedDateTime string      `json:"startedDateTime"`
	Time            float64     `json:"time"`
	Request         HARRequest  `json:"request"`
	Response        HARResponse `json:"response"`
}

// HARRequest is the request half of an entry.
type HARRequest struct {
	Method string `json:"method"`
	URL    string `json:"url"`
}

// HARResponse is the response half of an entry.
type HARResponse struct {
	Status     int    `json:"status"`
	StatusText string `json:"statusText"`
}

// ToHAR converts a page load into a HAR document. start anchors the
// timeline (the suite passes the study clock, keeping output deterministic).
func (p PageLoad) ToHAR(start time.Time) HAR {
	h := HAR{Log: HARLog{
		Version: "1.2",
		Creator: HARCreator{Name: "gamma", Version: "1.0"},
		Pages: []HARPage{{
			StartedDateTime: start.UTC().Format(time.RFC3339),
			ID:              "page_1",
			Title:           p.SiteURL,
			PageTimings:     HARPageTimings{OnLoad: p.DurationMs},
		}},
	}}
	for i, r := range p.Requests {
		status, text := 200, "OK"
		if r.Blocked {
			status, text = 0, "blocked by client"
		}
		h.Log.Entries = append(h.Log.Entries, HAREntry{
			Pageref:         "page_1",
			StartedDateTime: start.UTC().Add(time.Duration(i) * time.Millisecond).Format(time.RFC3339),
			Time:            1,
			Request:         HARRequest{Method: "GET", URL: r.URL},
			Response:        HARResponse{Status: status, StatusText: text},
		})
	}
	return h
}

// JSON renders the HAR document.
func (h HAR) JSON() ([]byte, error) { return json.MarshalIndent(h, "", "  ") }
