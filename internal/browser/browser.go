// Package browser is Gamma's C1 component (§3): it drives isolated browser
// sessions that load target websites and record every network request made
// during the load. The emulation supports the major browser profiles the
// tool supports in the field — Chrome, Firefox, and the privacy-focused
// Brave (which ships a filter-list blocker) — plus the two timing controls
// the paper tuned: a render wait (20 s) and a hard 180 s timeout after
// which a wedged instance is killed and the tool moves on. It also injects
// the background Google-services requests the Chrome webdriver generates,
// which the analysis pipeline must strip (§5).
package browser

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/websim"
)

// Kind selects the browser profile.
type Kind int

// Supported browsers.
const (
	Chrome Kind = iota
	Firefox
	Brave
)

// String names the browser.
func (k Kind) String() string {
	switch k {
	case Chrome:
		return "chrome"
	case Firefox:
		return "firefox"
	case Brave:
		return "brave"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config tunes a browser session, mirroring Gamma's tuning knobs (§3.1).
type Config struct {
	Kind Kind
	// RenderWaitMs is how long the session waits for a page to render
	// fully before collecting requests (the study used 20 000 ms).
	RenderWaitMs float64
	// HardTimeoutMs kills a non-responsive instance (the study: 180 000 ms).
	HardTimeoutMs float64
	// MaxDepth bounds chained script loads.
	MaxDepth int
	// Blocker is applied by privacy browsers (Brave); matching requests are
	// blocked before they leave the browser.
	Blocker *filterlist.Engine
	// LoadFailureProb models the vantage's connection quality: each site
	// load independently fails with this probability.
	LoadFailureProb float64
	// Seed and SessionID make failures deterministic per volunteer.
	Seed      uint64
	SessionID string
	// Country is the client's country (ISO code); sites may serve
	// country-adapted content (regional tracker variants).
	Country string
	// Pages, when set, is a study-wide memo of parsed homepage documents
	// shared across sessions; page markup is pure per (site, country
	// variant), so sharing it is invisible in the outputs.
	Pages *ParseCache
	// WebdriverNoise lists background requests the automation stack itself
	// issues during every page load.
	WebdriverNoise []string
}

// DefaultConfig returns the study's tuned configuration.
func DefaultConfig(seed uint64, sessionID string) Config {
	return Config{
		Kind:          Chrome,
		RenderWaitMs:  20000,
		HardTimeoutMs: 180000,
		MaxDepth:      4,
		Seed:          seed,
		SessionID:     sessionID,
		WebdriverNoise: []string{
			"https://update.googleapis.com/service/update2",
			"https://optimizationguide-pa.googleapis.com/downloads",
			"https://safebrowsing.googleapis.com/v4/threatListUpdates",
		},
	}
}

// NetRequest is one recorded network request.
type NetRequest struct {
	URL       string `json:"url"`
	Domain    string `json:"domain"`
	Type      string `json:"type"`
	Initiator string `json:"initiator"` // "document", parent URL, or "webdriver"
	Blocked   bool   `json:"blocked,omitempty"`
	// ThirdParty marks requests to a different site than the page.
	ThirdParty bool `json:"third_party,omitempty"`
	// SetCookies names the cookies the response set.
	SetCookies []string `json:"set_cookies,omitempty"`
}

// PageLoad is the outcome of one browser session on one target site.
type PageLoad struct {
	SiteURL    string       `json:"site_url"`
	SiteDomain string       `json:"site_domain"`
	OK         bool         `json:"ok"`
	FailReason string       `json:"fail_reason,omitempty"`
	DurationMs float64      `json:"duration_ms"`
	Requests   []NetRequest `json:"requests,omitempty"`
}

// Domains returns the distinct requested (non-blocked) domains, sorted.
func (p PageLoad) Domains() []string {
	seen := map[string]bool{}
	for _, r := range p.Requests {
		if !r.Blocked {
			seen[r.Domain] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Browser drives sessions against the synthetic web.
type Browser struct {
	web *websim.Web
	cfg Config
}

// New creates a browser over the given web.
func New(web *websim.Web, cfg Config) *Browser {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	return &Browser{web: web, cfg: cfg}
}

// Config returns the session configuration.
func (b *Browser) Config() Config { return b.cfg }

// Load opens an isolated session on the target site and records the network
// requests observed during the page load.
func (b *Browser) Load(siteDomain string) PageLoad {
	siteDomain = strings.ToLower(siteDomain)
	out := PageLoad{SiteDomain: siteDomain, SiteURL: "https://" + siteDomain + "/"}

	site, ok := b.web.Site(siteDomain)
	if !ok {
		out.FailReason = "dns: no such host"
		return out
	}
	out.SiteURL = site.URL()

	r := rng.New(b.cfg.Seed, "browser-load", b.cfg.SessionID, siteDomain)
	if rng.Bernoulli(r, b.cfg.LoadFailureProb) {
		out.FailReason = "connection: load failed"
		out.DurationMs = rng.Float64InRange(r, 1000, b.cfg.HardTimeoutMs)
		return out
	}
	if b.cfg.HardTimeoutMs > 0 && site.RenderMs > b.cfg.HardTimeoutMs {
		out.FailReason = "timeout: instance killed after hard limit"
		out.DurationMs = b.cfg.HardTimeoutMs
		return out
	}

	// Parse the homepage markup exactly as delivered to this country.
	refs := b.pageRefs(site)
	// Ad slots fill dynamically: each session draws RotateK resources from
	// the site's rotation pool (why single-visit studies undercount).
	if site.RotateK > 0 && len(site.Rotating) > 0 {
		rr := rng.New(b.cfg.Seed, "ad-rotation", b.cfg.SessionID, siteDomain)
		perm := rr.Perm(len(site.Rotating))
		k := site.RotateK
		if k > len(perm) {
			k = len(perm)
		}
		for _, idx := range perm[:k] {
			res := site.Rotating[idx]
			refs = append(refs, ResourceRef{URL: res.URL, Type: res.Type})
		}
	}
	// The navigation itself is the first recorded request.
	out.Requests = append(out.Requests, NetRequest{
		URL: out.SiteURL, Domain: siteDomain, Type: "document", Initiator: "navigation",
	})
	// The webdriver's own background traffic shows up in the request log.
	for _, u := range b.cfg.WebdriverNoise {
		out.Requests = append(out.Requests, NetRequest{
			URL: u, Domain: websim.DomainOf(u), Type: "xhr", Initiator: "webdriver",
		})
	}
	// Breadth-first over document resources and chained script loads.
	type item struct {
		ref       ResourceRef
		initiator string
		depth     int
	}
	queue := make([]item, 0, len(refs))
	for _, ref := range refs {
		queue = append(queue, item{ref: ref, initiator: "document", depth: 0})
	}
	seen := map[string]bool{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if seen[it.ref.URL] {
			continue
		}
		seen[it.ref.URL] = true
		req := NetRequest{
			URL:        it.ref.URL,
			Domain:     websim.DomainOf(it.ref.URL),
			Type:       it.ref.Type,
			Initiator:  it.initiator,
			ThirdParty: !sameSite(websim.DomainOf(it.ref.URL), siteDomain),
		}
		req.SetCookies = b.web.ResourceCookies(it.ref.URL)
		if b.cfg.Blocker != nil {
			blocked, _ := b.cfg.Blocker.Match(filterlist.Request{
				URL:        req.URL,
				Domain:     req.Domain,
				PageDomain: siteDomain,
				ThirdParty: !sameSite(req.Domain, siteDomain),
				Type:       resourceType(req.Type),
			})
			req.Blocked = blocked
		}
		out.Requests = append(out.Requests, req)
		if req.Blocked || it.depth >= b.cfg.MaxDepth {
			continue
		}
		for _, child := range b.web.ResourceChildren(it.ref.URL) {
			queue = append(queue, item{
				ref:       ResourceRef{URL: child.URL, Type: child.Type},
				initiator: it.ref.URL,
				depth:     it.depth + 1,
			})
		}
	}

	out.OK = true
	out.DurationMs = site.RenderMs
	if wait := b.cfg.RenderWaitMs; wait > out.DurationMs {
		out.DurationMs = wait
	}
	return out
}

// pageRefs resolves the homepage's parsed resource list: through the
// study-wide parse memo when one is wired in, else via the web's page
// memo (markup cached, parse per load).
func (b *Browser) pageRefs(site websim.Site) []ResourceRef {
	if b.cfg.Pages != nil {
		return b.cfg.Pages.refs(b.web, site, b.cfg.Country)
	}
	html, ok := b.web.PageHTML(site.Domain, b.cfg.Country)
	if !ok {
		html = site.HTMLFor(b.cfg.Country)
	}
	return ParseHTML(html)
}

func sameSite(a, b string) bool {
	return a == b || strings.HasSuffix(a, "."+b) || strings.HasSuffix(b, "."+a)
}

func resourceType(t string) filterlist.ResourceType {
	switch t {
	case "script":
		return filterlist.TypeScript
	case "img":
		return filterlist.TypeImage
	case "css":
		return filterlist.TypeStylesheet
	case "iframe":
		return filterlist.TypeSubdocument
	case "xhr":
		return filterlist.TypeXHR
	default:
		return filterlist.TypeOther
	}
}
