package browser

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/gamma-suite/gamma/internal/websim"
)

// parseCacheWeb builds sites with scripts, a DE variant on even sites, and
// a rotating ad pool — the last so sessions append to the cached reference
// slice, exercising the capacity-clip copy protection.
func parseCacheWeb(t *testing.T, n int) *websim.Web {
	t.Helper()
	w := websim.NewWeb()
	for i := 0; i < n; i++ {
		site := websim.Site{
			Domain:  fmt.Sprintf("site%02d.example", i),
			RotateK: 1,
			Rotating: []websim.Resource{
				{URL: fmt.Sprintf("https://ads.example/slot%da.js", i), Type: "script"},
				{URL: fmt.Sprintf("https://ads.example/slot%db.js", i), Type: "script"},
				{URL: fmt.Sprintf("https://ads.example/slot%dc.js", i), Type: "script"},
			},
			Resources: []websim.Resource{
				{URL: fmt.Sprintf("https://cdn.example/app%d.js", i), Type: "script"},
				{URL: fmt.Sprintf("https://img.example/hero%d.png", i), Type: "img"},
			},
		}
		if i%2 == 0 {
			site.Variants = map[string][]websim.Resource{"DE": {
				{URL: fmt.Sprintf("https://tracker.de/pixel%d.gif", i), Type: "img"},
			}}
		}
		if err := w.AddSite(site); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestParseCacheLoadEquivalence pins that sessions sharing a parse cache
// record exactly the loads an uncached browser records — including the
// session-specific rotating resources appended after the cached refs.
func TestParseCacheLoadEquivalence(t *testing.T) {
	const n = 4
	web := parseCacheWeb(t, n)
	cache := NewParseCache()
	for _, cc := range []string{"", "DE", "US"} {
		for session := 0; session < 3; session++ {
			cfg := DefaultConfig(9, fmt.Sprintf("v-%s-%d", cc, session))
			cfg.Country = cc
			cached := cfg
			cached.Pages = cache
			for i := 0; i < n; i++ {
				domain := fmt.Sprintf("site%02d.example", i)
				got := New(web, cached).Load(domain)
				want := New(web, cfg).Load(domain)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cached load of %s for %q session %d diverged:\n got %+v\nwant %+v",
						domain, cc, session, got, want)
				}
			}
		}
	}
	// Distinct documents: one base per site, one DE variant per even site.
	wantDocs := uint64(n + (n+1)/2)
	if st := cache.Stats(); st.Derivations != wantDocs || st.Hits == 0 {
		t.Errorf("stats = %+v, want %d derivations and repeat hits", st, wantDocs)
	}
}

// TestParseCacheConcurrentRace hammers one shared parse cache from 8
// goroutine "volunteers" loading overlapping sites. Run under -race this
// is the locking regression test; the stats prove each distinct document
// parses exactly once.
func TestParseCacheConcurrentRace(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
		nSites     = 4
	)
	web := parseCacheWeb(t, nSites)
	cache := NewParseCache()
	countries := []string{"", "DE", "US"}
	type load struct {
		domain, cc string
	}
	var loads []load
	want := map[load]PageLoad{}
	for i := 0; i < nSites; i++ {
		domain := fmt.Sprintf("site%02d.example", i)
		for _, cc := range countries {
			cfg := DefaultConfig(9, "shared-session")
			cfg.Country = cc
			loads = append(loads, load{domain, cc})
			want[load{domain, cc}] = New(web, cfg).Load(domain)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Phase-shifted walk so fills overlap in every interleaving.
				for i := range loads {
					l := loads[(i+g)%len(loads)]
					cfg := DefaultConfig(9, "shared-session")
					cfg.Country = l.cc
					cfg.Pages = cache
					got := New(web, cfg).Load(l.domain)
					if !reflect.DeepEqual(got, want[l]) {
						select {
						case errs <- fmt.Sprintf("load %s for %q diverged under contention", l.domain, l.cc):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := cache.Stats()
	wantDocs := uint64(nSites + (nSites+1)/2)
	if st.Derivations != wantDocs {
		t.Errorf("derivations = %d, want one per distinct document (%d)", st.Derivations, wantDocs)
	}
	total := uint64(goroutines * rounds * len(loads))
	if st.Hits+st.Misses != total {
		t.Errorf("hits(%d)+misses(%d) != lookups(%d)", st.Hits, st.Misses, total)
	}
	if st.Misses < st.Derivations {
		t.Errorf("misses(%d) < derivations(%d)", st.Misses, st.Derivations)
	}
}
