package filterlist

import (
	"fmt"
	"sync"
	"testing"
)

func cacheTestEngine() *Engine {
	list := ParseList("test", `
||tracker.example^$third-party
||ads.example^
@@||ads.example/allowed^
/banner/*$script
||cdn.example^$domain=news.example
`)
	return NewEngine(list)
}

func cacheTestRequests() []Request {
	var reqs []Request
	domains := []string{
		"tracker.example", "sub.tracker.example", "ads.example",
		"cdn.example", "clean.example", "banner.clean.example",
	}
	for _, d := range domains {
		for _, page := range []string{"news.example", "other.example"} {
			for _, third := range []bool{true, false} {
				reqs = append(reqs, Request{
					URL:        "https://" + d + "/",
					Domain:     d,
					PageDomain: page,
					ThirdParty: third,
					Type:       TypeScript,
				})
			}
		}
	}
	reqs = append(reqs, Request{
		URL: "https://clean.example/banner/x.js", Domain: "clean.example",
		PageDomain: "news.example", ThirdParty: true, Type: TypeScript,
	})
	return reqs
}

// TestCachedEngineEquivalence proves cached and uncached verdicts are
// identical — same decision and the same *Rule pointer — on first and
// repeat lookups.
func TestCachedEngineEquivalence(t *testing.T) {
	e := cacheTestEngine()
	c := NewCachedEngine(e)
	reqs := cacheTestRequests()
	for round := 0; round < 3; round++ {
		for i, req := range reqs {
			wantB, wantR := e.Match(req)
			gotB, gotR := c.Match(req)
			if gotB != wantB || gotR != wantR {
				t.Fatalf("round %d req %d: cached (%v,%p) != uncached (%v,%p)",
					round, i, gotB, gotR, wantB, wantR)
			}
		}
	}
	st := c.Stats()
	if st.Misses != int64(len(reqs)) {
		t.Errorf("misses = %d, want one per unique request (%d)", st.Misses, len(reqs))
	}
	if st.Hits != int64(2*len(reqs)) {
		t.Errorf("hits = %d, want %d", st.Hits, 2*len(reqs))
	}
}

// TestCachedEngineConcurrent hammers the cache from 8 goroutines; run under
// -race it proves the shard locking is sound.
func TestCachedEngineConcurrent(t *testing.T) {
	c := NewCachedEngine(cacheTestEngine())
	reqs := cacheTestRequests()
	want := make([]bool, len(reqs))
	for i, req := range reqs {
		want[i], _ = c.engine.Match(req)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 200; round++ {
				for i := range reqs {
					j := (i + g) % len(reqs)
					if got, _ := c.Match(reqs[j]); got != want[j] {
						select {
						case errs <- fmt.Sprintf("req %d: got %v want %v", j, got, want[j]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := c.Stats()
	if st.Hits+st.Misses != int64(8*200*len(reqs)) {
		t.Errorf("hits(%d)+misses(%d) != calls(%d)", st.Hits, st.Misses, 8*200*len(reqs))
	}
}
