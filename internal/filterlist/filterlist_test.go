package filterlist

import (
	"strings"
	"testing"
	"testing/quick"
)

func engine(rules ...string) *Engine {
	return NewEngine(ParseList("test", strings.Join(rules, "\n")))
}

func req(url, domain, page string, third bool) Request {
	return Request{URL: url, Domain: domain, PageDomain: page, ThirdParty: third, Type: TypeScript}
}

func TestDomainAnchorRule(t *testing.T) {
	e := engine("||doubleclick.net^")
	cases := []struct {
		domain string
		want   bool
	}{
		{"doubleclick.net", true},
		{"ad.doubleclick.net", true},
		{"stats.g.doubleclick.net", true},
		{"notdoubleclick.net", false},
		{"doubleclick.net.evil.com", false},
	}
	for _, tc := range cases {
		got, _ := e.Match(req("https://"+tc.domain+"/x.js", tc.domain, "example.com", true))
		if got != tc.want {
			t.Errorf("domain %q: blocked=%v, want %v", tc.domain, got, tc.want)
		}
	}
}

func TestDomainAnchorWithPath(t *testing.T) {
	e := engine("||example.com/ads/")
	if got, _ := e.Match(req("https://example.com/ads/banner.png", "example.com", "a.com", true)); !got {
		t.Error("should block /ads/ path")
	}
	if got, _ := e.Match(req("https://example.com/news/", "example.com", "a.com", true)); got {
		t.Error("should not block /news/ path")
	}
}

func TestSubstringAndWildcard(t *testing.T) {
	e := engine("/advert/*banner")
	if got, _ := e.Match(req("https://x.com/advert/img/banner.gif", "x.com", "y.com", true)); !got {
		t.Error("wildcard pattern should match")
	}
	if got, _ := e.Match(req("https://x.com/advert/img/logo.gif", "x.com", "y.com", true)); got {
		t.Error("pattern requires 'banner'")
	}
}

func TestSeparator(t *testing.T) {
	e := engine("||ads.example.com^")
	// ^ should match ':' '/' '?' or end of string but not a letter.
	if got, _ := e.Match(req("https://ads.example.com:8080/x", "ads.example.com", "p.com", true)); !got {
		t.Error("separator should match port colon")
	}
}

func TestStartEndAnchors(t *testing.T) {
	e := engine("|https://tracker.io/pixel.gif|")
	if got, _ := e.Match(req("https://tracker.io/pixel.gif", "tracker.io", "p.com", true)); !got {
		t.Error("exact anchored URL should match")
	}
	if got, _ := e.Match(req("https://tracker.io/pixel.gif?x=1", "tracker.io", "p.com", true)); got {
		t.Error("end anchor should prevent suffix match")
	}
}

func TestExceptionRule(t *testing.T) {
	e := engine(
		"||analytics.example^",
		"@@||analytics.example/allowed^",
	)
	if got, _ := e.Match(req("https://analytics.example/track.js", "analytics.example", "p.com", true)); !got {
		t.Error("block rule should apply")
	}
	blocked, rule := e.Match(req("https://analytics.example/allowed/x.js", "analytics.example", "p.com", true))
	if blocked {
		t.Error("exception should rescue the request")
	}
	if rule == nil || !rule.Exception {
		t.Errorf("deciding rule should be the exception, got %v", rule)
	}
}

func TestThirdPartyOption(t *testing.T) {
	e := engine("||cdn.site.com^$third-party")
	if got, _ := e.Match(req("https://cdn.site.com/app.js", "cdn.site.com", "site.com", false)); got {
		t.Error("first-party request should not match $third-party rule")
	}
	if got, _ := e.Match(req("https://cdn.site.com/app.js", "cdn.site.com", "other.com", true)); !got {
		t.Error("third-party request should match")
	}
	e2 := engine("||cdn.site.com^$~third-party")
	if got, _ := e2.Match(req("https://cdn.site.com/app.js", "cdn.site.com", "other.com", true)); got {
		t.Error("third-party request should not match $~third-party rule")
	}
}

func TestDomainOption(t *testing.T) {
	e := engine("||widget.io^$domain=news.example|~sports.news.example")
	if got, _ := e.Match(req("https://widget.io/w.js", "widget.io", "news.example", true)); !got {
		t.Error("should match on included domain")
	}
	if got, _ := e.Match(req("https://widget.io/w.js", "widget.io", "sports.news.example", true)); got {
		t.Error("excluded subdomain should not match")
	}
	if got, _ := e.Match(req("https://widget.io/w.js", "widget.io", "blog.example", true)); got {
		t.Error("unrelated page domain should not match")
	}
}

func TestResourceTypeOption(t *testing.T) {
	e := engine("||media.example^$image,media")
	r := Request{URL: "https://media.example/a.png", Domain: "media.example", PageDomain: "p.com", ThirdParty: true, Type: TypeImage}
	if got, _ := e.Match(r); !got {
		t.Error("image should match $image rule")
	}
	r.Type = TypeScript
	if got, _ := e.Match(r); got {
		t.Error("script should not match $image,media rule")
	}
	inv := engine("||media.example^$~image")
	r.Type = TypeImage
	if got, _ := inv.Match(r); got {
		t.Error("image should not match $~image rule")
	}
	r.Type = TypeScript
	if got, _ := inv.Match(r); !got {
		t.Error("script should match $~image rule")
	}
}

func TestCommentsHeadersCosmetic(t *testing.T) {
	l := ParseList("easylist", `[Adblock Plus 2.0]
! Title: EasyList
! comment
example.com##.ad-banner
example.com#@#.ok
||realrule.com^
`)
	if len(l.Rules) != 1 {
		t.Fatalf("expected 1 network rule, got %d", len(l.Rules))
	}
	if l.Skipped != 2 {
		t.Errorf("expected 2 skipped cosmetic rules, got %d", l.Skipped)
	}
	if l.Rules[0].List != "easylist" {
		t.Errorf("rule list name = %q", l.Rules[0].List)
	}
}

func TestUnknownOptionsTolerated(t *testing.T) {
	l := ParseList("t", "||popup.example^$popup,websocket")
	if len(l.Rules) != 1 {
		t.Fatalf("rule with unknown options should parse, got %d rules", len(l.Rules))
	}
}

func TestMatchDomain(t *testing.T) {
	e := engine("||google-analytics.com^$third-party", "||doubleclick.net^")
	if !e.MatchDomain("www.google-analytics.com", "shop.example") {
		t.Error("GA subdomain should be identified as tracker")
	}
	if e.MatchDomain("www.google-analytics.com", "google-analytics.com") {
		t.Error("first-party GA request should not match third-party rule")
	}
	if !e.MatchDomain("ad.doubleclick.net", "news.example") {
		t.Error("doubleclick should match")
	}
	if e.MatchDomain("example.org", "news.example") {
		t.Error("unlisted domain should not match")
	}
}

func TestNumRules(t *testing.T) {
	e := engine("||a.com^", "||b.com^", "/generic/ad")
	if n := e.NumRules(); n != 3 {
		t.Errorf("NumRules = %d, want 3", n)
	}
}

func TestCaseInsensitiveMatching(t *testing.T) {
	e := engine("||Tracker.Example^")
	if got, _ := e.Match(req("https://TRACKER.example/x", "TRACKER.example", "p.com", true)); !got {
		t.Error("matching should be case-insensitive")
	}
}

func TestAnchorDomainNeverMatchesUnrelatedProperty(t *testing.T) {
	e := engine("||blocked.example^")
	hosts := []string{"a.com", "blocked.example.com", "xblocked.example", "example", "safe.net"}
	f := func(i uint) bool {
		h := hosts[i%uint(len(hosts))]
		got, _ := e.Match(req("https://"+h+"/", h, "page.com", true))
		return !got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndMalformedRules(t *testing.T) {
	l := ParseList("t", "||^\n@@\n$third-party\n")
	for _, r := range l.Rules {
		// Whatever parsed must at least not panic when matched.
		r.Matches(req("https://x.com/", "x.com", "y.com", true))
	}
}
