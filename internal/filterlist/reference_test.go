package filterlist

import (
	"regexp"
	"strings"
	"testing"
)

// This file keeps the pre-index engine alive as a test oracle: the exact
// pattern-to-regexp translation and linear exception-interleaved scan the
// engine used before the tokenized matcher. The differential tests and
// FuzzMatchDifferential assert the production engine agrees with it on
// every ASCII input. (The oracle is ASCII-only by design: regexp (?i) does
// Unicode rune folding and its `^` class consumes runes, while the
// production matcher is byte-oriented — real request URLs are ASCII.)

// patternToRegexp translates Adblock wildcard syntax to a Go regexp. Moved
// verbatim out of the production engine when matcher.go replaced it.
func patternToRegexp(pattern string) (*regexp.Regexp, error) {
	var b strings.Builder
	i := 0
	switch {
	case strings.HasPrefix(pattern, "||"):
		b.WriteString(`^[a-z][a-z0-9+.-]*://(?:[^/?#]*\.)?`)
		i = 2
	case strings.HasPrefix(pattern, "|"):
		b.WriteString(`^`)
		i = 1
	}
	endAnchor := false
	end := len(pattern)
	if strings.HasSuffix(pattern, "|") && end > i {
		endAnchor = true
		end--
	}
	for ; i < end; i++ {
		switch c := pattern[i]; c {
		case '*':
			b.WriteString(`.*`)
		case '^':
			b.WriteString(`(?:[^a-zA-Z0-9_.%-]|$)`)
		default:
			b.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	if endAnchor {
		b.WriteString(`$`)
	}
	return regexp.Compile(`(?i)` + b.String())
}

// refRule wraps a production *Rule with the oracle's compiled regexp, so
// rule identity is comparable across the two engines by pointer.
type refRule struct {
	r  *Rule
	re *regexp.Regexp // nil when the anchor-domain check suffices
}

// compileRefRule re-derives the pattern from the raw rule text with the
// same stripping logic as parseRule and compiles it the pre-index way.
func compileRefRule(t *testing.T, r *Rule) refRule {
	t.Helper()
	pattern := r.Raw
	pattern = strings.TrimPrefix(pattern, "@@")
	if i := strings.LastIndex(pattern, "$"); i >= 0 && !strings.Contains(pattern[i:], "/") {
		pattern = pattern[:i]
	}
	rr := refRule{r: r}
	if strings.HasPrefix(pattern, "||") {
		rest := pattern[2:]
		cut := strings.IndexAny(rest, "^/*|")
		domain := rest
		if cut >= 0 {
			domain = rest[:cut]
		}
		tail := rest[len(domain):]
		if tail == "" || tail == "^" || tail == "^*" || tail == "*" {
			return rr // anchor-domain fast path, no regexp
		}
		re, err := patternToRegexp("||" + rest)
		if err != nil {
			t.Fatalf("oracle compile %q: %v", r.Raw, err)
		}
		rr.re = re
		return rr
	}
	re, err := patternToRegexp(pattern)
	if err != nil {
		t.Fatalf("oracle compile %q: %v", r.Raw, err)
	}
	rr.re = re
	return rr
}

func refDomainOrSub(host, domain string) bool {
	host, domain = strings.ToLower(host), strings.ToLower(domain)
	return host == domain || strings.HasSuffix(host, "."+domain)
}

func (rr refRule) matches(req Request) bool {
	if !rr.r.matchesOptions(&req) {
		return false
	}
	if rr.r.anchorDomain != "" {
		if !refDomainOrSub(req.Domain, rr.r.anchorDomain) {
			return false
		}
		if rr.re == nil {
			return true
		}
	}
	url := req.URL
	if url == "" {
		url = "https://" + req.Domain + "/"
	}
	return rr.re.MatchString(url)
}

// refEngine is the pre-index engine: an anchor-domain map plus a linear
// scan of generic rules, exceptions interleaved in insertion order.
type refEngine struct {
	byDomain map[string][]refRule
	generic  []refRule
}

func newRefEngine(t *testing.T, lists ...*List) *refEngine {
	t.Helper()
	e := &refEngine{byDomain: make(map[string][]refRule)}
	for _, l := range lists {
		for _, r := range l.Rules {
			rr := compileRefRule(t, r)
			if r.anchorDomain != "" {
				e.byDomain[r.anchorDomain] = append(e.byDomain[r.anchorDomain], rr)
			} else {
				e.generic = append(e.generic, rr)
			}
		}
	}
	return e
}

// Match replicates the pre-index Engine.Match verbatim: walk the hostname's
// parent domains through the index, then scan the generic rules; the first
// matching exception wins immediately.
func (e *refEngine) Match(req Request) (bool, *Rule) {
	var blockRule *Rule
	consider := func(rr refRule) bool {
		if !rr.matches(req) {
			return false
		}
		if rr.r.Exception {
			blockRule = rr.r
			return true
		}
		if blockRule == nil {
			blockRule = rr.r
		}
		return false
	}
	host := strings.ToLower(req.Domain)
	for h := host; h != ""; {
		for _, rr := range e.byDomain[h] {
			if consider(rr) {
				return false, blockRule
			}
		}
		dot := strings.IndexByte(h, '.')
		if dot < 0 {
			break
		}
		h = h[dot+1:]
	}
	for _, rr := range e.generic {
		if consider(rr) {
			return false, blockRule
		}
	}
	return blockRule != nil && !blockRule.Exception, blockRule
}

func isASCII(ss ...string) bool {
	for _, s := range ss {
		for i := 0; i < len(s); i++ {
			if s[i] >= 0x80 {
				return false
			}
		}
	}
	return true
}

// checkAgainstOracle asserts the production engine and the oracle agree on
// one request: same verdict always; same winning *Rule whenever blocked;
// and when the production engine reports a rescuing exception, it is the
// rule the oracle reported. (The one sanctioned divergence: when nothing
// blocks, the production engine skips the exception index and returns a nil
// rule, while the oracle may name a matching exception.)
func checkAgainstOracle(t *testing.T, e *Engine, ref *refEngine, req Request) {
	t.Helper()
	wantB, wantR := ref.Match(req)
	gotB, gotR := e.Match(req)
	if gotB != wantB {
		t.Fatalf("verdict mismatch on %+v: engine=%v oracle=%v (oracle rule %v)", req, gotB, wantB, wantR)
	}
	if gotB && gotR != wantR {
		t.Fatalf("winning rule mismatch on %+v: engine=%v oracle=%v", req, gotR, wantR)
	}
	if !gotB && gotR != nil && gotR != wantR {
		t.Fatalf("exception mismatch on %+v: engine=%v oracle=%v", req, gotR, wantR)
	}
}

// easyListShapes is a corpus of real EasyList/EasyPrivacy rule shapes.
var easyListShapes = []string{
	"||doubleclick.net^",
	"||google-analytics.com^$third-party",
	"||ads.example.com^$script,image",
	"||example.com/ads/*$third-party",
	"||cdn.example^$domain=a.com|~b.a.com",
	"||pixel.example/track?id=*&ref=^",
	"@@||ads.example.com/allowed^",
	"@@||cdn.example^$~third-party",
	"/adbanner/*",
	"/banner-468x60.",
	"/telemetry/collect^",
	"&ad_type=",
	"-ad-loader.",
	"_adtracker.js",
	"|https://tracker.io/pixel.gif|",
	"|http://",
	".gif|",
	"*$image",
	"||Tracker.Example^",
	"||sub.deep.tracker.example^",
	"@@/adbanner/*$domain=news.example",
	"||a.b^*/path",
	"^promo^banner^",
	"||multi.example/a/*/b/*/c|",
}

var shapeURLs = []struct {
	url, domain string
}{
	{"https://doubleclick.net/x.js", "doubleclick.net"},
	{"https://ad.doubleclick.net/adbanner/img.gif", "ad.doubleclick.net"},
	{"https://stats.g.doubleclick.net/r/collect?ad_type=banner", "stats.g.doubleclick.net"},
	{"https://notdoubleclick.net/", "notdoubleclick.net"},
	{"https://doubleclick.net.evil.com/", "doubleclick.net.evil.com"},
	{"https://ads.example.com:8080/allowed/x", "ads.example.com"},
	{"https://ads.example.com/allowed", "ads.example.com"},
	{"https://example.com/ads/banner.png", "example.com"},
	{"https://example.com/news/", "example.com"},
	{"https://x.com/advert/img/banner-468x60.gif", "x.com"},
	{"https://x.com/telemetry/collect", "x.com"},
	{"https://x.com/telemetry/collector", "x.com"},
	{"https://tracker.io/pixel.gif", "tracker.io"},
	{"https://tracker.io/pixel.gif?x=1", "tracker.io"},
	{"http://insecure.example/ad-loader.js", "insecure.example"},
	{"HTTPS://TRACKER.EXAMPLE/A/B", "TRACKER.EXAMPLE"},
	{"https://sub.deep.tracker.example/", "sub.deep.tracker.example"},
	{"https://a.b/x/path", "a.b"},
	{"https://p.example/!promo!banner!", "p.example"},
	{"https://multi.example/a/x/b/y/c", "multi.example"},
	{"https://multi.example/a/x/b/y/c/d", "multi.example"},
	{"https://cdn.example/w.js?_adtracker.js", "cdn.example"},
	{"ftp://odd.example/adbanner/x", "odd.example"},
	{"//no-scheme/adbanner/", "no-scheme"},
	{"", "bare-probe.example"},
	{"", "ad.doubleclick.net"},
}

// TestDifferentialEasyListShapes runs the full shape corpus — one engine
// over all rules at once, plus one engine per individual rule — against the
// oracle, across page domains, party-ness and resource types.
func TestDifferentialEasyListShapes(t *testing.T) {
	lists := []*List{
		ParseList("easylist", strings.Join(easyListShapes[:len(easyListShapes)/2], "\n")),
		ParseList("easyprivacy", strings.Join(easyListShapes[len(easyListShapes)/2:], "\n")),
	}
	engines := []*Engine{NewEngine(lists...)}
	oracles := []*refEngine{newRefEngine(t, lists...)}
	for _, shape := range easyListShapes {
		l := ParseList("single", shape)
		engines = append(engines, NewEngine(l))
		oracles = append(oracles, newRefEngine(t, l))
	}
	for i := range engines {
		for _, u := range shapeURLs {
			for _, page := range []string{"news.example", "a.com", "b.a.com"} {
				for _, third := range []bool{true, false} {
					for _, typ := range []ResourceType{TypeScript, TypeImage, TypeOther} {
						checkAgainstOracle(t, engines[i], oracles[i], Request{
							URL: u.url, Domain: u.domain, PageDomain: page,
							ThirdParty: third, Type: typ,
						})
					}
				}
			}
		}
	}
}

// FuzzMatchDifferential fuzzes (list text, URL, domain, page, options)
// against the oracle. The engine's token index, bespoke matcher and
// tie-break must agree with the regexp reference on every verdict — for the
// URL as given, and for the bare-hostname probe implied by an empty URL.
func FuzzMatchDifferential(f *testing.F) {
	for _, shape := range easyListShapes {
		f.Add(shape, "https://ad.doubleclick.net/adbanner/img.gif?ad_type=banner",
			"ad.doubleclick.net", "news.example", true, uint16(TypeScript))
	}
	// Seeds inherited from FuzzParseList plus adversarial shapes.
	for _, s := range []string{
		"||doubleclick.net^",
		"@@||analytics.example/allowed^$third-party",
		"/adbanner/*$image,domain=a.com|~b.a.com",
		"|https://x/|",
		"||a^$unknownopt,~third-party",
		"*$*", "|", "^", "*", "^^", "||a.b.c.d^",
		"a*", "*a", "a**b", "^|", "|^|", "ad",
	} {
		f.Add(s, "https://tracker.example/x.js", "tracker.example", "page.example", true, uint16(TypeScript))
		f.Add(s, "a://b.c/", "b.c", "p", false, uint16(TypeImage))
	}
	f.Fuzz(func(t *testing.T, list, url, domain, page string, third bool, typ uint16) {
		if !isASCII(list, url, domain, page) {
			t.Skip("oracle is rune-oriented; production matcher is byte-oriented ASCII")
		}
		l := ParseList("fuzz", list)
		e := NewEngine(l)
		ref := newRefEngine(t, l)
		req := Request{URL: url, Domain: domain, PageDomain: page,
			ThirdParty: third, Type: ResourceType(typ)}
		checkAgainstOracle(t, e, ref, req)
		// The bare-hostname probe path (stack-assembled virtual URL).
		req.URL = ""
		checkAgainstOracle(t, e, ref, req)
	})
}
