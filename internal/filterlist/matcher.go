package filterlist

import "strings"

// This file is the regexp-free pattern matcher: it interprets Adblock
// pattern syntax — `||` host anchors, `|` start/end anchors, `*` wildcards
// and `^` separators — directly over the URL bytes, ASCII case-folded, with
// zero allocations. It replaces the eagerly-compiled regexps the engine used
// before; `patternToRegexp` survives in reference_test.go as the
// differential-testing oracle the matcher is fuzzed against.
//
// Semantics are byte-oriented ASCII, matching the oracle on any ASCII input:
// request URLs are ASCII in practice (browsers percent-encode IRIs), and the
// oracle's Unicode niceties ((?i) rune folding, rune-wide `^` classes) never
// fire on them.

// byteseq lets the matcher run over a URL string or a stack-assembled
// []byte (the no-materialization path for bare-hostname probes) without
// conversions or copies.
type byteseq interface{ ~string | ~[]byte }

// sepClass marks the bytes the Adblock `^` separator matches: everything
// except [a-zA-Z0-9_.%-]. End-of-URL also counts as a separator; the glob
// routine handles that case explicitly.
var sepClass = func() (t [256]bool) {
	for i := range t {
		c := byte(i)
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		t[i] = !(alnum || c == '_' || c == '.' || c == '%' || c == '-')
	}
	return
}()

// foldByte lower-cases one ASCII byte.
func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		c += 'a' - 'A'
	}
	return c
}

// isSchemeByte reports whether a folded byte may appear in a URL scheme
// after the first character ([a-z0-9+.-]).
func isSchemeByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '+' || c == '.' || c == '-'
}

// matcher is one compiled pattern. The body keeps `*` and `^` as
// metacharacters; literal bytes are pre-lowercased so matching folds only
// the URL side.
type matcher struct {
	body  string // pattern body, ASCII-lowercased
	glob  string // body with an implicit leading '*' when the start floats
	host  bool   // `||` anchor: match just after a hostname label boundary
	start bool   // `|` anchor: match at URL start
	end   bool   // trailing `|`: match must consume the URL
}

// compileMatcher translates an Adblock pattern (anchors included) into a
// matcher. It mirrors patternToRegexp's parse exactly: prefix `||` beats
// `|`, and a trailing `|` is an end anchor only when it is not the same
// byte as the start anchor.
func compileMatcher(pattern string) matcher {
	var m matcher
	p := pattern
	switch {
	case strings.HasPrefix(p, "||"):
		m.host = true
		p = p[2:]
	case strings.HasPrefix(p, "|"):
		m.start = true
		p = p[1:]
	}
	if strings.HasSuffix(p, "|") && len(p) > 0 {
		m.end = true
		p = p[:len(p)-1]
	}
	m.body = strings.ToLower(p)
	m.glob = m.body
	if !m.host && !m.start && !strings.HasPrefix(m.body, "*") {
		m.glob = "*" + m.body
	}
	return m
}

// matchPattern reports whether the compiled pattern matches the URL.
func matchPattern[S byteseq](m *matcher, url S) bool {
	if m.host {
		return matchHostAnchored(m, url)
	}
	if m.start {
		return globFrom(m.body, url, m.end)
	}
	return globFrom(m.glob, url, m.end)
}

// matchHostAnchored implements the `||` anchor: the oracle's
// ^[a-z][a-z0-9+.-]*://(?:[^/?#]*\.)? prefix. The body must match at the
// start of the URL's authority or just after any dot inside it.
func matchHostAnchored[S byteseq](m *matcher, s S) bool {
	n := len(s)
	if n == 0 {
		return false
	}
	if c := foldByte(s[0]); c < 'a' || c > 'z' {
		return false
	}
	k := 1
	for k < n && isSchemeByte(foldByte(s[k])) {
		k++
	}
	if k+2 >= n || s[k] != ':' || s[k+1] != '/' || s[k+2] != '/' {
		return false
	}
	a := k + 3
	if globFrom(m.body, s[a:], m.end) {
		return true
	}
	for p := a; p < n; p++ {
		switch s[p] {
		case '/', '?', '#':
			return false
		case '.':
			if globFrom(m.body, s[p+1:], m.end) {
				return true
			}
		}
	}
	return false
}

// globFrom matches pat against s anchored at s[0]. pat may contain `*`
// wildcards and `^` separators; literal bytes must already be lowercase.
// With anchorEnd false an implicit trailing `*` lets the match stop
// anywhere; with anchorEnd true the pattern must consume s exactly. The
// algorithm is the classic greedy two-pointer glob with one backtrack point
// per `*`, extended with the separator class and its match-at-end rule.
func globFrom[S byteseq](pat string, s S, anchorEnd bool) bool {
	i, j := 0, 0
	star, mark := -1, 0
	for j < len(s) {
		if i < len(pat) {
			switch c := pat[i]; {
			case c == '*':
				star, mark = i, j
				i++
				continue
			case c == '^' && sepClass[s[j]]:
				i++
				j++
				continue
			case c != '^' && c == foldByte(s[j]):
				i++
				j++
				continue
			}
		}
		if i == len(pat) && !anchorEnd {
			return true
		}
		if star < 0 {
			return false
		}
		mark++
		i, j = star+1, mark
	}
	// s exhausted: `^` matches end-of-input, `*` matches the empty tail.
	for i < len(pat) && (pat[i] == '*' || pat[i] == '^') {
		i++
	}
	return i == len(pat)
}
