package filterlist

import (
	"sync"
	"sync/atomic"

	"github.com/gamma-suite/gamma/internal/rng"
)

// matchKey identifies one memoizable Match call. Engines are immutable once
// built and Match is a pure function of the request, so the full request is
// the complete cache key; the engine identity is carried by the CachedEngine
// wrapping it.
type matchKey struct {
	url        string
	domain     string
	pageDomain string
	thirdParty bool
	typ        ResourceType
}

type matchVal struct {
	blocked bool
	rule    *Rule
}

// matchShards bounds lock contention when many analysis workers consult the
// same engine: the Box-2 pipeline asks about the same tracker URLs from all
// 23 countries at once.
const matchShards = 32

// CachedEngine memoizes Engine.Match results. It is safe for concurrent use;
// the underlying Engine is read-only after construction, so duplicate
// concurrent computations of the same key are harmless and simply race to
// store identical values.
type CachedEngine struct {
	engine *Engine
	shards [matchShards]struct {
		mu sync.RWMutex
		m  map[matchKey]matchVal
	}
	hits, misses atomic.Int64
}

// NewCachedEngine wraps an engine in a memoizing, concurrency-safe cache.
func NewCachedEngine(e *Engine) *CachedEngine {
	c := &CachedEngine{engine: e}
	for i := range c.shards {
		c.shards[i].m = make(map[matchKey]matchVal)
	}
	return c
}

// Engine returns the wrapped engine.
func (c *CachedEngine) Engine() *Engine { return c.engine }

// MatchCacheStats snapshots the cache counters.
type MatchCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Stats returns a snapshot of the cache counters; safe to call while Match
// runs.
func (c *CachedEngine) Stats() MatchCacheStats {
	return MatchCacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Match evaluates the request, consulting the cache first. Cached and
// uncached calls return identical verdicts and the identical *Rule pointer:
// Engine.Match is deterministic and rules are never copied.
func (c *CachedEngine) Match(req Request) (bool, *Rule) {
	key := matchKey{
		url:        req.URL,
		domain:     req.Domain,
		pageDomain: req.PageDomain,
		thirdParty: req.ThirdParty,
		typ:        req.Type,
	}
	s := &c.shards[rng.Hash(key.url, key.domain, key.pageDomain)%matchShards]
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return v.blocked, v.rule
	}
	c.misses.Add(1)
	blocked, rule := c.engine.Match(req)
	s.mu.Lock()
	s.m[key] = matchVal{blocked: blocked, rule: rule}
	s.mu.Unlock()
	return blocked, rule
}

// MatchName is the memoized counterpart of Engine.MatchName: the bare
// third-party hostname probe, cached under an empty-URL key so it never
// materializes a URL string on hit or miss.
//
//gamma:hotpath memoized per-row probe: shard hash plus one RLock'd map read
func (c *CachedEngine) MatchName(domain, pageDomain string) (bool, *Rule) {
	return c.Match(Request{
		Domain:     domain,
		PageDomain: pageDomain,
		ThirdParty: !domainOrSub(domain, pageDomain) && !domainOrSub(pageDomain, domain),
		Type:       TypeScript,
	})
}
