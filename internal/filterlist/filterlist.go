// Package filterlist implements an Adblock-Plus-compatible filter-list
// engine: the rule syntax used by EasyList and EasyPrivacy, which the paper
// (§4.2) uses — together with regional lists — to identify advertising and
// tracking domains among observed network requests.
//
// Supported syntax: `!` comments, `[Adblock ...]` headers, `||` domain
// anchors, `|` start/end anchors, `*` wildcards, the `^` separator,
// `@@` exception rules, and the `$` option suffix with third-party,
// domain=, and resource-type options. Element-hiding rules (`##`, `#@#`)
// are recognized and skipped, as they never match network requests.
package filterlist

import (
	"fmt"
	"regexp"
	"strings"
)

// ResourceType classifies the kind of network request being filtered.
type ResourceType uint16

// Resource types, mirroring the Adblock Plus option names.
const (
	TypeOther ResourceType = 1 << iota
	TypeScript
	TypeImage
	TypeStylesheet
	TypeXHR
	TypeSubdocument
	TypeFont
	TypeMedia
	TypeDocument
	TypeAny ResourceType = 0xffff
)

var typeNames = map[string]ResourceType{
	"other":          TypeOther,
	"script":         TypeScript,
	"image":          TypeImage,
	"stylesheet":     TypeStylesheet,
	"xmlhttprequest": TypeXHR,
	"subdocument":    TypeSubdocument,
	"font":           TypeFont,
	"media":          TypeMedia,
	"document":       TypeDocument,
}

// Request is a network request to evaluate against the engine.
type Request struct {
	URL        string       // full request URL
	Domain     string       // request hostname
	PageDomain string       // hostname of the page issuing the request
	ThirdParty bool         // whether request and page belong to different sites
	Type       ResourceType // resource type; TypeOther if unknown
}

// Rule is one parsed network-filter rule.
type Rule struct {
	Raw       string // original rule text
	List      string // name of the list the rule came from
	Exception bool   // @@ rule

	// anchorDomain is set for ||domain... rules; it allows indexed lookup.
	anchorDomain string
	// re matches the request URL (nil when the anchor-domain check suffices).
	re *regexp.Regexp

	// Options.
	thirdParty     int8 // 0 unset, +1 require third-party, -1 require first-party
	types          ResourceType
	invTypes       ResourceType
	includeDomains []string
	excludeDomains []string
}

// String returns the original rule text.
func (r *Rule) String() string { return r.Raw }

// List is a named, parsed filter list.
type List struct {
	Name    string
	Rules   []*Rule
	Skipped int // cosmetic/unsupported lines skipped
}

// ParseList parses filter-list text. Unparseable lines are skipped and
// counted rather than failing the whole list, matching ad-blocker behavior.
func ParseList(name, text string) *List {
	l := &List{Name: name}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") ||
			(strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]")) {
			continue
		}
		// Element-hiding and snippet rules target page DOM, not requests.
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			l.Skipped++
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			l.Skipped++
			continue
		}
		r.List = name
		l.Rules = append(l.Rules, r)
	}
	return l
}

func parseRule(line string) (*Rule, error) {
	r := &Rule{Raw: line, types: TypeAny}
	pattern := line
	if strings.HasPrefix(pattern, "@@") {
		r.Exception = true
		pattern = pattern[2:]
	}
	// Split off options at the last unescaped '$'. A '$' inside a regexp-style
	// rule (/.../) is out of scope; EasyList network rules use plain '$'.
	if i := strings.LastIndex(pattern, "$"); i >= 0 && !strings.Contains(pattern[i:], "/") {
		opts := pattern[i+1:]
		pattern = pattern[:i]
		if err := r.parseOptions(opts); err != nil {
			return nil, err
		}
	}
	if pattern == "" {
		return nil, fmt.Errorf("filterlist: empty pattern in %q", line)
	}
	if err := r.compile(pattern); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Rule) parseOptions(opts string) error {
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		neg := strings.HasPrefix(opt, "~")
		name := strings.TrimPrefix(opt, "~")
		switch {
		case name == "third-party":
			if neg {
				r.thirdParty = -1
			} else {
				r.thirdParty = +1
			}
		case strings.HasPrefix(name, "domain="):
			for _, d := range strings.Split(name[len("domain="):], "|") {
				d = strings.ToLower(strings.TrimSpace(d))
				if d == "" {
					continue
				}
				if strings.HasPrefix(d, "~") {
					r.excludeDomains = append(r.excludeDomains, d[1:])
				} else {
					r.includeDomains = append(r.includeDomains, d)
				}
			}
		case typeNames[name] != 0:
			if neg {
				r.invTypes |= typeNames[name]
			} else {
				if r.types == TypeAny {
					r.types = 0
				}
				r.types |= typeNames[name]
			}
		default:
			// Unknown options (popup, websocket, csp=...) are tolerated so
			// real-world lists parse; the rule simply ignores them.
		}
	}
	return nil
}

// compile turns the Adblock pattern into either an anchor-domain fast path
// or a regular expression over the request URL.
func (r *Rule) compile(pattern string) error {
	if strings.HasPrefix(pattern, "||") {
		rest := pattern[2:]
		// Fast path: ||domain^ or ||domain (possibly with trailing ^ or /).
		cut := strings.IndexAny(rest, "^/*|")
		domain := rest
		if cut >= 0 {
			domain = rest[:cut]
		}
		if domain == "" {
			return fmt.Errorf("filterlist: anchor rule with no domain: %q", pattern)
		}
		r.anchorDomain = strings.ToLower(domain)
		tail := rest[len(domain):]
		if tail == "" || tail == "^" || tail == "^*" || tail == "*" {
			return nil // domain match alone decides
		}
		re, err := patternToRegexp("||" + rest)
		if err != nil {
			return err
		}
		r.re = re
		return nil
	}
	re, err := patternToRegexp(pattern)
	if err != nil {
		return err
	}
	r.re = re
	return nil
}

// patternToRegexp translates Adblock wildcard syntax to a Go regexp.
func patternToRegexp(pattern string) (*regexp.Regexp, error) {
	var b strings.Builder
	i := 0
	switch {
	case strings.HasPrefix(pattern, "||"):
		b.WriteString(`^[a-z][a-z0-9+.-]*://(?:[^/?#]*\.)?`)
		i = 2
	case strings.HasPrefix(pattern, "|"):
		b.WriteString(`^`)
		i = 1
	}
	endAnchor := false
	end := len(pattern)
	if strings.HasSuffix(pattern, "|") && end > i {
		endAnchor = true
		end--
	}
	for ; i < end; i++ {
		switch c := pattern[i]; c {
		case '*':
			b.WriteString(`.*`)
		case '^':
			b.WriteString(`(?:[^a-zA-Z0-9_.%-]|$)`)
		default:
			b.WriteString(regexp.QuoteMeta(string(c)))
		}
	}
	if endAnchor {
		b.WriteString(`$`)
	}
	return regexp.Compile(`(?i)` + b.String())
}

// matchesOptions checks the $-options against the request.
func (r *Rule) matchesOptions(req Request) bool {
	if r.thirdParty == +1 && !req.ThirdParty {
		return false
	}
	if r.thirdParty == -1 && req.ThirdParty {
		return false
	}
	typ := req.Type
	if typ == 0 {
		typ = TypeOther
	}
	if r.types&typ == 0 {
		return false
	}
	if r.invTypes&typ != 0 {
		return false
	}
	if len(r.includeDomains) > 0 {
		ok := false
		for _, d := range r.includeDomains {
			if domainOrSub(req.PageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.excludeDomains {
		if domainOrSub(req.PageDomain, d) {
			return false
		}
	}
	return true
}

// Matches reports whether the rule matches the request.
func (r *Rule) Matches(req Request) bool {
	if !r.matchesOptions(req) {
		return false
	}
	if r.anchorDomain != "" {
		if !domainOrSub(req.Domain, r.anchorDomain) {
			return false
		}
		if r.re == nil {
			return true
		}
	}
	url := req.URL
	if url == "" {
		url = "https://" + req.Domain + "/"
	}
	return r.re.MatchString(url)
}

func domainOrSub(host, domain string) bool {
	host, domain = strings.ToLower(host), strings.ToLower(domain)
	return host == domain || strings.HasSuffix(host, "."+domain)
}

// Engine evaluates requests against a set of filter lists, with an index
// over anchor domains for the common ||domain^ case.
type Engine struct {
	lists    []*List
	byDomain map[string][]*Rule // anchorDomain -> rules
	generic  []*Rule
}

// NewEngine builds an engine over the given lists.
func NewEngine(lists ...*List) *Engine {
	e := &Engine{byDomain: make(map[string][]*Rule)}
	for _, l := range lists {
		e.AddList(l)
	}
	return e
}

// AddList appends a list's rules to the engine.
func (e *Engine) AddList(l *List) {
	e.lists = append(e.lists, l)
	for _, r := range l.Rules {
		if r.anchorDomain != "" {
			e.byDomain[r.anchorDomain] = append(e.byDomain[r.anchorDomain], r)
		} else {
			e.generic = append(e.generic, r)
		}
	}
}

// NumRules returns the total number of network rules loaded.
func (e *Engine) NumRules() int {
	n := len(e.generic)
	for _, rs := range e.byDomain {
		n += len(rs)
	}
	return n
}

// Match evaluates the request. It returns whether the request is blocked
// and the rule that decided (the blocking rule, or the exception rule that
// rescued the request).
func (e *Engine) Match(req Request) (bool, *Rule) {
	var blockRule *Rule
	consider := func(r *Rule) bool { // returns true to stop: exception wins
		if !r.Matches(req) {
			return false
		}
		if r.Exception {
			blockRule = r
			return true
		}
		if blockRule == nil {
			blockRule = r
		}
		return false
	}
	// Walk the request hostname's parent domains through the index.
	host := strings.ToLower(req.Domain)
	for h := host; h != ""; {
		for _, r := range e.byDomain[h] {
			if consider(r) {
				return false, blockRule
			}
		}
		dot := strings.IndexByte(h, '.')
		if dot < 0 {
			break
		}
		h = h[dot+1:]
	}
	for _, r := range e.generic {
		if consider(r) {
			return false, blockRule
		}
	}
	return blockRule != nil && !blockRule.Exception, blockRule
}

// MatchDomain is the convenience used for tracker identification: it checks
// whether a bare third-party request to the domain would be blocked.
func (e *Engine) MatchDomain(domain, pageDomain string) bool {
	blocked, _ := e.Match(Request{
		URL:        "https://" + domain + "/",
		Domain:     domain,
		PageDomain: pageDomain,
		ThirdParty: !domainOrSub(domain, pageDomain) && !domainOrSub(pageDomain, domain),
		Type:       TypeScript,
	})
	return blocked
}
