// Package filterlist implements an Adblock-Plus-compatible filter-list
// engine: the rule syntax used by EasyList and EasyPrivacy, which the paper
// (§4.2) uses — together with regional lists — to identify advertising and
// tracking domains among observed network requests.
//
// Supported syntax: `!` comments, `[Adblock ...]` headers, `||` domain
// anchors, `|` start/end anchors, `*` wildcards, the `^` separator,
// `@@` exception rules, and the `$` option suffix with third-party,
// domain=, and resource-type options. Element-hiding rules (`##`, `#@#`)
// are recognized and skipped, as they never match network requests.
//
// Matching is regexp-free: patterns are interpreted directly over the URL
// bytes (matcher.go), and the engine finds candidate rules through a
// uBlock-style reverse token index (token.go, index.go) instead of scanning
// the rule list, so cost scales with the request, not the list.
package filterlist

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// ResourceType classifies the kind of network request being filtered.
type ResourceType uint16

// Resource types, mirroring the Adblock Plus option names.
const (
	TypeOther ResourceType = 1 << iota
	TypeScript
	TypeImage
	TypeStylesheet
	TypeXHR
	TypeSubdocument
	TypeFont
	TypeMedia
	TypeDocument
	TypeAny ResourceType = 0xffff
)

var typeNames = map[string]ResourceType{
	"other":          TypeOther,
	"script":         TypeScript,
	"image":          TypeImage,
	"stylesheet":     TypeStylesheet,
	"xmlhttprequest": TypeXHR,
	"subdocument":    TypeSubdocument,
	"font":           TypeFont,
	"media":          TypeMedia,
	"document":       TypeDocument,
}

// Request is a network request to evaluate against the engine.
type Request struct {
	URL        string       // full request URL; empty implies https://Domain/
	Domain     string       // request hostname
	PageDomain string       // hostname of the page issuing the request
	ThirdParty bool         // whether request and page belong to different sites
	Type       ResourceType // resource type; TypeOther if unknown
}

// Rule is one parsed network-filter rule.
type Rule struct {
	Raw       string // original rule text
	List      string // name of the list the rule came from
	Exception bool   // @@ rule

	// anchorDomain is set for ||domain... rules; it allows indexed lookup.
	anchorDomain string
	// m matches the request URL (nil when the anchor-domain check suffices).
	m *matcher

	// Options.
	thirdParty     int8 // 0 unset, +1 require third-party, -1 require first-party
	types          ResourceType
	invTypes       ResourceType
	includeDomains []string
	excludeDomains []string
}

// String returns the original rule text.
func (r *Rule) String() string { return r.Raw }

// List is a named, parsed filter list.
type List struct {
	Name    string
	Rules   []*Rule
	Skipped int // cosmetic/unsupported lines skipped
}

// ParseList parses filter-list text. Unparseable lines are skipped and
// counted rather than failing the whole list, matching ad-blocker behavior.
// Parsing compiles no regexps: a rule is a few slices into its own text.
func ParseList(name, text string) *List {
	l := &List{Name: name}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") ||
			(strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]")) {
			continue
		}
		// Element-hiding and snippet rules target page DOM, not requests.
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			l.Skipped++
			continue
		}
		r, err := parseRule(line)
		if err != nil {
			l.Skipped++
			continue
		}
		r.List = name
		l.Rules = append(l.Rules, r)
	}
	return l
}

func parseRule(line string) (*Rule, error) {
	r := &Rule{Raw: line, types: TypeAny}
	pattern := line
	if strings.HasPrefix(pattern, "@@") {
		r.Exception = true
		pattern = pattern[2:]
	}
	// Split off options at the last unescaped '$'. A '$' inside a regexp-style
	// rule (/.../) is out of scope; EasyList network rules use plain '$'.
	if i := strings.LastIndex(pattern, "$"); i >= 0 && !strings.Contains(pattern[i:], "/") {
		opts := pattern[i+1:]
		pattern = pattern[:i]
		if err := r.parseOptions(opts); err != nil {
			return nil, err
		}
	}
	if pattern == "" {
		return nil, fmt.Errorf("filterlist: empty pattern in %q", line)
	}
	if err := r.compile(pattern); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Rule) parseOptions(opts string) error {
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		neg := strings.HasPrefix(opt, "~")
		name := strings.TrimPrefix(opt, "~")
		switch {
		case name == "third-party":
			if neg {
				r.thirdParty = -1
			} else {
				r.thirdParty = +1
			}
		case strings.HasPrefix(name, "domain="):
			for _, d := range strings.Split(name[len("domain="):], "|") {
				d = strings.ToLower(strings.TrimSpace(d))
				if d == "" {
					continue
				}
				if strings.HasPrefix(d, "~") {
					r.excludeDomains = append(r.excludeDomains, d[1:])
				} else {
					r.includeDomains = append(r.includeDomains, d)
				}
			}
		case typeNames[name] != 0:
			if neg {
				r.invTypes |= typeNames[name]
			} else {
				if r.types == TypeAny {
					r.types = 0
				}
				r.types |= typeNames[name]
			}
		default:
			// Unknown options (popup, websocket, csp=...) are tolerated so
			// real-world lists parse; the rule simply ignores them.
		}
	}
	return nil
}

// compile turns the Adblock pattern into either an anchor-domain fast path
// or a compiled pattern matcher over the request URL.
func (r *Rule) compile(pattern string) error {
	if strings.HasPrefix(pattern, "||") {
		rest := pattern[2:]
		// Fast path: ||domain^ or ||domain (possibly with trailing ^ or /).
		cut := strings.IndexAny(rest, "^/*|")
		domain := rest
		if cut >= 0 {
			domain = rest[:cut]
		}
		if domain == "" {
			return fmt.Errorf("filterlist: anchor rule with no domain: %q", pattern)
		}
		r.anchorDomain = strings.ToLower(domain)
		tail := rest[len(domain):]
		if tail == "" || tail == "^" || tail == "^*" || tail == "*" {
			return nil // domain match alone decides
		}
		m := compileMatcher("||" + rest)
		r.m = &m
		return nil
	}
	m := compileMatcher(pattern)
	r.m = &m
	return nil
}

// matchesOptions checks the $-options against the request.
func (r *Rule) matchesOptions(req *Request) bool {
	if r.thirdParty == +1 && !req.ThirdParty {
		return false
	}
	if r.thirdParty == -1 && req.ThirdParty {
		return false
	}
	typ := req.Type
	if typ == 0 {
		typ = TypeOther
	}
	if r.types&typ == 0 {
		return false
	}
	if r.invTypes&typ != 0 {
		return false
	}
	if len(r.includeDomains) > 0 {
		ok := false
		for _, d := range r.includeDomains {
			if domainOrSub(req.PageDomain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.excludeDomains {
		if domainOrSub(req.PageDomain, d) {
			return false
		}
	}
	return true
}

// Matches reports whether the rule matches the request.
func (r *Rule) Matches(req Request) bool { return r.matches(&req) }

func (r *Rule) matches(req *Request) bool {
	if !r.matchesOptions(req) {
		return false
	}
	if r.anchorDomain != "" {
		if !domainOrSub(req.Domain, r.anchorDomain) {
			return false
		}
		if r.m == nil {
			return true
		}
	}
	if req.URL != "" {
		return matchPattern(r.m, req.URL)
	}
	// Bare-hostname probe: evaluate against the virtual URL
	// https://<domain>/ assembled on the stack, never materialized.
	var buf [200]byte
	b := append(buf[:0], "https://"...)
	b = append(b, req.Domain...)
	b = append(b, '/')
	return matchPattern(r.m, b)
}

// domainOrSub reports whether host equals domain or is a subdomain of it,
// comparing ASCII case-insensitively without allocating.
func domainOrSub(host, domain string) bool {
	if len(host) < len(domain) {
		return false
	}
	off := len(host) - len(domain)
	for i := 0; i < len(domain); i++ {
		if foldByte(host[off+i]) != foldByte(domain[i]) {
			return false
		}
	}
	return off == 0 || host[off-1] == '.'
}

// Engine evaluates requests against a set of filter lists through the
// reverse token index (index.go). It is immutable after the last AddList
// call — Match goroutines share it without locks; the only writes Match
// performs are the atomic stats counters.
type Engine struct {
	lists   []*List
	nextIdx uint64 // global insertion counter feeding makePrio

	block  ruleSet // blocking rules
	except ruleSet // @@ exception rules

	matches   atomic.Int64
	inspected atomic.Int64
}

// NewEngine builds an engine over the given lists.
func NewEngine(lists ...*List) *Engine {
	e := &Engine{}
	for _, l := range lists {
		e.AddList(l)
	}
	return e
}

// AddList appends a list's rules to the engine and rebuilds the indexes.
// Not safe to call concurrently with Match.
func (e *Engine) AddList(l *List) {
	e.lists = append(e.lists, l)
	for _, r := range l.Rules {
		ir := idxRule{r: r, prio: makePrio(r.anchorDomain, e.nextIdx)}
		e.nextIdx++
		if r.Exception {
			e.except.rules = append(e.except.rules, ir)
		} else {
			e.block.rules = append(e.block.rules, ir)
		}
	}
	e.rebuild()
}

// NumRules returns the total number of network rules loaded.
func (e *Engine) NumRules() int {
	return len(e.block.rules) + len(e.except.rules)
}

// maxStackTokens bounds the stack-resident URL token buffer; longer URLs
// spill to the heap but stay correct.
const maxStackTokens = 64

// Match evaluates the request. It returns whether the request is blocked
// and the rule that decided (the blocking rule, or the exception rule that
// rescued it). The verdict and the winning rule are deterministic: ties are
// broken by lowest list order then rule order, exactly the scan order of
// the pre-index engine, independent of index layout. Exceptions are only
// consulted after a blocking candidate fires, so an unmatched request costs
// one index probe; a request nothing blocks returns (false, nil).
func (e *Engine) Match(req Request) (bool, *Rule) {
	host := req.Domain
	if !isLowerASCII(host) {
		host = strings.ToLower(host)
	}
	var tokArr [maxStackTokens]uint32
	toks := tokArr[:0]
	if req.URL != "" {
		toks = appendTokens(toks, req.URL)
	} else {
		toks = append(toks, httpsToken)
		toks = appendTokens(toks, req.Domain)
	}

	inspected := 0
	block := e.block.find(&req, host, toks, &inspected)
	var exc *Rule
	if block != nil {
		exc = e.except.find(&req, host, toks, &inspected)
	}
	e.matches.Add(1)
	e.inspected.Add(int64(inspected))

	if exc != nil {
		return false, exc
	}
	if block != nil {
		return true, block
	}
	return false, nil
}

// isLowerASCII reports whether s is pure ASCII with no upper-case letters —
// the common case for request hostnames, skipping the ToLower pass.
func isLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' || c >= 0x80 {
			return false
		}
	}
	return true
}

// MatchName evaluates the canonical tracker-identification probe — a bare
// third-party script request to domain — without materializing a URL
// string, and returns the deciding rule.
//
//gamma:hotpath pipeline probes every request-log row through here
func (e *Engine) MatchName(domain, pageDomain string) (bool, *Rule) {
	return e.Match(Request{
		Domain:     domain,
		PageDomain: pageDomain,
		ThirdParty: !domainOrSub(domain, pageDomain) && !domainOrSub(pageDomain, domain),
		Type:       TypeScript,
	})
}

// MatchDomain is the convenience used for tracker identification: it checks
// whether a bare third-party request to the domain would be blocked.
func (e *Engine) MatchDomain(domain, pageDomain string) bool {
	blocked, _ := e.MatchName(domain, pageDomain)
	return blocked
}
