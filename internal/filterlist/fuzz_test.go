package filterlist

import "testing"

// FuzzParseList: arbitrary list text must parse without panicking, and the
// resulting engine must evaluate requests without panicking.
func FuzzParseList(f *testing.F) {
	seeds := []string{
		"||doubleclick.net^",
		"@@||analytics.example/allowed^$third-party",
		"/adbanner/*$image,domain=a.com|~b.a.com",
		"|https://x/|\n!comment\n[Adblock Plus 2.0]",
		"||^", "$", "@@", "||a^$unknownopt,~third-party",
		"example.com##.ad", "*$*",
	}
	for _, s := range seeds {
		f.Add(s, "https://tracker.example/x.js", "tracker.example", "page.example")
	}
	f.Fuzz(func(t *testing.T, list, url, domain, page string) {
		l := ParseList("fuzz", list)
		e := NewEngine(l)
		blocked, rule := e.Match(Request{
			URL: url, Domain: domain, PageDomain: page,
			ThirdParty: true, Type: TypeScript,
		})
		if blocked && rule == nil {
			t.Error("blocked without a deciding rule")
		}
		if rule != nil && rule.Exception && blocked {
			t.Error("exception rule cannot block")
		}
	})
}
