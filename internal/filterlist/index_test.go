package filterlist

import "testing"

// TestTieBreakAnchorBeatsGeneric: the pre-index engine scanned the domain
// buckets before the generic rules, so an anchored rule must win over a
// generic rule that also matches — even when the generic rule was listed
// first. The token index iterates buckets in arbitrary order; the prio
// tie-break has to restore this.
func TestTieBreakAnchorBeatsGeneric(t *testing.T) {
	e := NewEngine(ParseList("l", "/x/*\n||t.example^\n"))
	req := Request{URL: "https://t.example/x/y", Domain: "t.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
	blocked, rule := e.Match(req)
	if !blocked || rule == nil {
		t.Fatalf("Match = (%v, %v), want blocked", blocked, rule)
	}
	if rule.Raw != "||t.example^" {
		t.Errorf("winner = %q, want the anchored rule", rule.Raw)
	}
}

// TestTieBreakDeeperAnchorWins: the old byDomain walk visited the hostname's
// parent domains from most to least specific, so the deeper anchor wins
// regardless of insertion order.
func TestTieBreakDeeperAnchorWins(t *testing.T) {
	for _, text := range []string{
		"||example^\n||t.example^\n",
		"||t.example^\n||example^\n",
	} {
		e := NewEngine(ParseList("l", text))
		req := Request{URL: "https://a.t.example/x", Domain: "a.t.example",
			PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
		blocked, rule := e.Match(req)
		if !blocked || rule == nil {
			t.Fatalf("list %q: Match not blocked", text)
		}
		if rule.Raw != "||t.example^" {
			t.Errorf("list %q: winner = %q, want ||t.example^", text, rule.Raw)
		}
	}
}

// TestTieBreakGenericListOrder: among generic rules the first listed wins,
// even if the index files them under different token buckets.
func TestTieBreakGenericListOrder(t *testing.T) {
	e := NewEngine(ParseList("l", "/banner/\n/creative/\n"))
	req := Request{URL: "https://x.example/banner/creative/a.gif", Domain: "x.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeImage}
	blocked, rule := e.Match(req)
	if !blocked || rule == nil {
		t.Fatal("Match not blocked")
	}
	if rule.Raw != "/banner/" {
		t.Errorf("winner = %q, want the first-listed generic rule", rule.Raw)
	}
}

// TestMatchNameEquivalence: the bare-hostname probe must agree with the
// materialized-URL request it replaces, verdict and rule pointer both.
func TestMatchNameEquivalence(t *testing.T) {
	e := NewEngine(ParseList("l",
		"||tracker.example^\n||ads.example^$third-party\n/banner/*\n@@||safe.example^\n||safe.example^\n"))
	const page = "unrelated-page.example"
	for _, d := range []string{
		"tracker.example", "sub.tracker.example", "ads.example",
		"safe.example", "clean.example", "banner.example",
	} {
		urlB, urlR := e.Match(Request{URL: "https://" + d + "/", Domain: d,
			PageDomain: page, ThirdParty: true, Type: TypeScript})
		nameB, nameR := e.MatchName(d, page)
		if urlB != nameB || urlR != nameR {
			t.Errorf("%s: Match=(%v,%v) MatchName=(%v,%v)", d, urlB, urlR, nameB, nameR)
		}
		if domB := e.MatchDomain(d, page); domB != nameB {
			t.Errorf("%s: MatchDomain=%v MatchName=%v", d, domB, nameB)
		}
	}
}

// TestMatchZeroAllocs pins the hot path at zero allocations per call: hit,
// miss, and the bare-hostname probe (which assembles its virtual URL on the
// stack).
func TestMatchZeroAllocs(t *testing.T) {
	e := buildBigEngine(10000)
	hit := Request{URL: "https://sub.tracker-4000.example/x.js", Domain: "sub.tracker-4000.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
	miss := Request{URL: "https://www.innocent.example/app.js", Domain: "www.innocent.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
	cases := map[string]func(){
		"hit":  func() { e.Match(hit) },
		"miss": func() { e.Match(miss) },
		"name": func() { e.MatchName("sub.tracker-4000.example", "page.example") },
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s path: %v allocs/op, want 0", name, n)
		}
	}
}

// TestStatsShape sanity-checks the index-shape counters against a corpus
// whose composition is known by construction.
func TestStatsShape(t *testing.T) {
	e := NewEngine(ParseList("l",
		"||a.example^\n||b.example^\n/banner/*\n/creative/*\n*\n@@||a.example/allow\n"))
	st := e.Stats()
	if st.Rules != e.NumRules() {
		t.Errorf("Rules = %d, want %d", st.Rules, e.NumRules())
	}
	// The `||` rules — including the `@@||` exception — live in the domain
	// tier regardless of their tails.
	if st.AnchorRules != 3 {
		t.Errorf("AnchorRules = %d, want 3", st.AnchorRules)
	}
	// "/banner/*" and "/creative/*" each carry a safe token; the bare "*"
	// cannot and must land in the fallback tier.
	if st.TokenRules != 2 {
		t.Errorf("TokenRules = %d, want 2", st.TokenRules)
	}
	if st.FallbackRules != 1 {
		t.Errorf("FallbackRules = %d, want 1", st.FallbackRules)
	}
	if got := st.AnchorRules + st.TokenRules + st.FallbackRules; got != st.Rules {
		t.Errorf("tier sum = %d, want %d", got, st.Rules)
	}
	for _, pair := range st.BucketSizes() {
		if pair[0] < 1 || pair[1] < 1 {
			t.Errorf("BucketSizes contains non-positive entry %v", pair)
		}
	}
}
