package filterlist

import (
	"fmt"
	"strings"
	"testing"
)

// buildBigEngine assembles an EasyList-scale engine (~10k rules).
func buildBigEngine(n int) *Engine {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "||tracker-%d.example^\n", i)
		case 1:
			fmt.Fprintf(&sb, "||ads-%d.example^$third-party\n", i)
		case 2:
			fmt.Fprintf(&sb, "/banner-%d/*\n", i)
		default:
			fmt.Fprintf(&sb, "@@||safe-%d.example^\n", i)
		}
	}
	return NewEngine(ParseList("bench", sb.String()))
}

func BenchmarkEngineMatchHit(b *testing.B) {
	e := buildBigEngine(10000)
	req := Request{URL: "https://sub.tracker-4000.example/x.js", Domain: "sub.tracker-4000.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Match(req)
	}
}

func BenchmarkEngineMatchMiss(b *testing.B) {
	e := buildBigEngine(10000)
	req := Request{URL: "https://www.innocent.example/app.js", Domain: "www.innocent.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Match(req)
	}
}

func BenchmarkParseList(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "||tracker-%d.example^$third-party\n", i)
	}
	text := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParseList("bench", text)
	}
}
