package filterlist

import (
	"fmt"
	"strings"
	"testing"
)

// benchText builds an EasyList-scale rule corpus (~n rules) with the same
// shape mix as real lists: domain anchors, optioned anchors, generic path
// rules, and exceptions.
func benchText(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "||tracker-%d.example^\n", i)
		case 1:
			fmt.Fprintf(&sb, "||ads-%d.example^$third-party\n", i)
		case 2:
			fmt.Fprintf(&sb, "/banner-%d/*\n", i)
		default:
			fmt.Fprintf(&sb, "@@||safe-%d.example^\n", i)
		}
	}
	return sb.String()
}

func benchLists(n int) *List { return ParseList("bench", benchText(n)) }

// buildBigEngine assembles an EasyList-scale engine (~10k rules).
func buildBigEngine(n int) *Engine {
	return NewEngine(benchLists(n))
}

// BenchmarkMatchHit measures the blocked path: the request's domain has an
// indexed rule.
func BenchmarkMatchHit(b *testing.B) {
	e := buildBigEngine(10000)
	req := Request{URL: "https://sub.tracker-4000.example/x.js", Domain: "sub.tracker-4000.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Match(req)
	}
}

// BenchmarkMatchMiss measures the allowed path: no rule matches, so every
// candidate the engine considers is wasted work. This is the generic-rule
// hot path the token index exists for.
func BenchmarkMatchMiss(b *testing.B) {
	e := buildBigEngine(10000)
	req := Request{URL: "https://www.innocent.example/app.js", Domain: "www.innocent.example",
		PageDomain: "page.example", ThirdParty: true, Type: TypeScript}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Match(req)
	}
}

// BenchmarkMatchDomain measures the tracker-identification probe the Box 2
// pipeline issues for every non-local domain observation.
func BenchmarkMatchDomain(b *testing.B) {
	e := buildBigEngine(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MatchDomain("sub.tracker-4000.example", "page.example")
	}
}

// BenchmarkEngineBuild measures NewEngine over a pre-parsed 10k-rule list:
// the index construction cost, separated from text parsing.
func BenchmarkEngineBuild(b *testing.B) {
	l := benchLists(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewEngine(l)
	}
}

// BenchmarkParseList parses the mixed 2000-rule corpus: with generic path
// rules present, the pre-index engine paid regexp compilation here.
func BenchmarkParseList(b *testing.B) {
	text := benchText(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ParseList("bench", text)
	}
}

// BenchmarkParseAndBuild is the end-to-end list-load cost: text to ready
// engine. The token index moved work from parse time to build time, so
// this combined number is the fair before/after comparison.
func BenchmarkParseAndBuild(b *testing.B) {
	text := benchText(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewEngine(ParseList("bench", text))
	}
}
