package filterlist

import (
	"sort"
	"strings"
)

// The reverse index, uBlock-style. Rules split into two polarities (blocks
// and exceptions), each held in a ruleSet with three tiers:
//
//   - `||domain` rules sit in a map keyed by their anchor domain and are
//     found by walking the request hostname's parent domains — exact, cheap,
//     and independent of the URL bytes;
//   - every other rule is indexed under the *rarest* of its safe tokens
//     (see appendSafeTokens), so a match probes only the buckets whose token
//     actually occurs in the URL;
//   - rules with no safe token land in a small always-checked fallback.
//
// Concurrency invariant: a ruleSet is built single-threaded inside
// Engine.AddList and is read-only afterwards; Match goroutines share it
// without locks. TestMatchConcurrentRace is the -race regression test for
// this invariant — mutating a ruleSet after AddList is a bug.

// idxRule pairs a rule with its engine-local match priority. Priorities are
// engine-local (not stored on the Rule) so one parsed List can back several
// engines.
type idxRule struct {
	r    *Rule
	prio uint64
}

// makePrio encodes the deterministic tie-break order: the exact scan order
// of the pre-index engine, so the indexed engine returns bit-identical
// verdicts AND the identical winning *Rule no matter how its buckets are
// iterated. The old engine walked the hostname's parent domains from most
// to least specific (deeper anchors first), each bucket in insertion order,
// then the generic rules in insertion order — hence: anchor label depth
// (descending) in the high bits, generic rules above every anchored depth,
// global insertion index (list order, then rule order) in the low bits.
func makePrio(anchorDomain string, idx uint64) uint64 {
	depth := uint64(0xff)
	if anchorDomain != "" {
		labels := uint64(1 + strings.Count(anchorDomain, "."))
		if labels > 254 {
			labels = 254
		}
		depth = 0xff - labels
	}
	return depth<<48 | idx&0xffffffffffff
}

// ruleSet indexes one polarity of rules.
type ruleSet struct {
	rules    []idxRule            // insertion order; the build source
	byDomain map[string][]idxRule // `||` rules keyed by anchor domain
	buckets  map[uint32][]idxRule // generic rules keyed by rarest safe token
	fallback []idxRule            // generic rules with no safe token
}

// rebuild recomputes both rule sets' indexes. Token rarity is counted over
// every generic rule in the engine (both polarities) so bucket sizes stay
// balanced however the rules split. Deterministic by construction: it
// iterates only insertion-ordered slices; maps are written by key.
func (e *Engine) rebuild() {
	counts := map[uint32]int{}
	var scratch []uint32
	for _, s := range [2]*ruleSet{&e.block, &e.except} {
		for _, ir := range s.rules {
			if ir.r.anchorDomain != "" {
				continue
			}
			scratch = ir.r.m.appendSafeTokens(scratch[:0])
			for _, t := range scratch {
				counts[t]++
			}
		}
	}
	for _, s := range [2]*ruleSet{&e.block, &e.except} {
		s.byDomain = make(map[string][]idxRule)
		s.buckets = make(map[uint32][]idxRule)
		s.fallback = nil
		for _, ir := range s.rules {
			if ir.r.anchorDomain != "" {
				s.byDomain[ir.r.anchorDomain] = append(s.byDomain[ir.r.anchorDomain], ir)
				continue
			}
			scratch = ir.r.m.appendSafeTokens(scratch[:0])
			best, bestCount := uint32(0), -1
			for _, t := range scratch {
				// Strict less-than: ties go to the earliest token in the
				// pattern, keeping the choice deterministic.
				if c := counts[t]; bestCount < 0 || c < bestCount {
					best, bestCount = t, c
				}
			}
			if bestCount < 0 {
				s.fallback = append(s.fallback, ir)
			} else {
				s.buckets[best] = append(s.buckets[best], ir)
			}
		}
	}
}

// find returns the matching rule with the lowest priority — the rule the
// pre-index engine's scan would have reported — or nil. host must be
// lowercase; toks are the request URL's token hashes. inspected accumulates
// how many candidate rules the indexes surfaced.
func (s *ruleSet) find(req *Request, host string, toks []uint32, inspected *int) *Rule {
	var best *Rule
	bestPrio := ^uint64(0)
	consider := func(rs []idxRule) {
		*inspected += len(rs)
		for _, ir := range rs {
			if ir.prio < bestPrio && ir.r.matches(req) {
				best, bestPrio = ir.r, ir.prio
			}
		}
	}
	if len(s.byDomain) > 0 {
		for h := host; h != ""; {
			if rs, ok := s.byDomain[h]; ok {
				consider(rs)
			}
			dot := strings.IndexByte(h, '.')
			if dot < 0 {
				break
			}
			h = h[dot+1:]
		}
	}
	for _, t := range toks {
		if rs, ok := s.buckets[t]; ok {
			consider(rs)
		}
	}
	consider(s.fallback)
	return best
}

// EngineStats describes the index shape and, cumulatively, how much work
// Match has done: CandidatesInspected / Matches is the average number of
// rules the indexes surface per request (the pre-index engine inspected
// every rule, every time).
type EngineStats struct {
	Matches             int64 `json:"matches"`
	CandidatesInspected int64 `json:"candidates_inspected"`

	Rules         int `json:"rules"`
	AnchorRules   int `json:"anchor_rules"`   // in domain buckets
	TokenRules    int `json:"token_rules"`    // in token buckets
	FallbackRules int `json:"fallback_rules"` // always checked
	DomainBuckets int `json:"domain_buckets"`
	TokenBuckets  int `json:"token_buckets"`

	// TokenBucketHist maps bucket size -> number of token buckets of that
	// size; MaxTokenBucket is its largest key.
	TokenBucketHist map[int]int `json:"token_bucket_hist"`
	MaxTokenBucket  int         `json:"max_token_bucket"`
}

// Stats snapshots the engine's index shape and match counters. Safe to call
// while Match runs.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Matches:             e.matches.Load(),
		CandidatesInspected: e.inspected.Load(),
		TokenBucketHist:     make(map[int]int),
	}
	for _, s := range [2]*ruleSet{&e.block, &e.except} {
		st.Rules += len(s.rules)
		st.FallbackRules += len(s.fallback)
		st.DomainBuckets += len(s.byDomain)
		st.TokenBuckets += len(s.buckets)
		for _, rs := range s.byDomain {
			st.AnchorRules += len(rs)
		}
		for _, rs := range s.buckets {
			st.TokenRules += len(rs)
			st.TokenBucketHist[len(rs)]++
			if len(rs) > st.MaxTokenBucket {
				st.MaxTokenBucket = len(rs)
			}
		}
	}
	return st
}

// BucketSizes returns the token-bucket occupancy histogram as sorted
// (size, buckets) pairs, for stable reporting.
func (st EngineStats) BucketSizes() [][2]int {
	out := make([][2]int, 0, len(st.TokenBucketHist))
	for size, n := range st.TokenBucketHist {
		out = append(out, [2]int{size, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
