package filterlist

// Token extraction for the reverse index. A token is a maximal run of
// [0-9a-z] bytes (ASCII case-folded); everything else — including `_`, `%`
// and `-`, which the `^` separator does NOT match — is a boundary. Tokens
// are represented by a 32-bit FNV-1a hash: a collision only merges two
// buckets, adding false candidates, never hiding a rule.

const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func isTokenByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}

// hashToken hashes an already-lowercase token literal.
func hashToken(s string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime32
	}
	return h
}

// httpsToken stands in for the scheme of the virtual "https://<domain>/"
// URL that bare-hostname probes imply without ever materializing it.
var httpsToken = hashToken("https")

// appendTokens appends the hash of every token in s to dst and returns it.
// Callers pass a stack-backed dst so the common case allocates nothing.
func appendTokens[S byteseq](dst []uint32, s S) []uint32 {
	h := uint32(fnvOffset32)
	in := false
	for i := 0; i < len(s); i++ {
		if c := foldByte(s[i]); isTokenByte(c) {
			h = (h ^ uint32(c)) * fnvPrime32
			in = true
		} else if in {
			dst = append(dst, h)
			h, in = fnvOffset32, false
		}
	}
	if in {
		dst = append(dst, h)
	}
	return dst
}

// appendSafeTokens appends the hashes of the pattern's safe tokens: token
// runs every matching URL is guaranteed to contain as complete URL tokens.
// A run qualifies only when both of its pattern-side boundaries are hard: a
// non-alphanumeric literal byte or a `^` separator inside the body, or the
// body edge when an anchor pins it there (`|`/`||` on the left, trailing
// `|` on the right). A `*` wildcard or an unanchored edge leaves the
// neighbouring URL byte unconstrained — it could extend the run — so the
// token is unsafe and contributes nothing.
func (m *matcher) appendSafeTokens(dst []uint32) []uint32 {
	body := m.body
	for i := 0; i < len(body); {
		if !isTokenByte(body[i]) {
			i++
			continue
		}
		j := i
		h := uint32(fnvOffset32)
		for j < len(body) && isTokenByte(body[j]) {
			h = (h ^ uint32(body[j])) * fnvPrime32
			j++
		}
		leftOK := i > 0 && body[i-1] != '*' || i == 0 && (m.start || m.host)
		rightOK := j < len(body) && body[j] != '*' || j == len(body) && m.end
		if leftOK && rightOK {
			dst = append(dst, h)
		}
		i = j
	}
	return dst
}
