package filterlist

import (
	"fmt"
	"sync"
	"testing"
)

// raceRequests mixes hit, miss, exception-rescued and bare-hostname probes
// so the goroutines exercise every index tier.
func raceRequests() []Request {
	reqs := []Request{
		{URL: "https://sub.tracker-40.example/x.js", Domain: "sub.tracker-40.example",
			PageDomain: "page.example", ThirdParty: true, Type: TypeScript},
		{URL: "https://www.innocent.example/app.js", Domain: "www.innocent.example",
			PageDomain: "page.example", ThirdParty: true, Type: TypeScript},
		{URL: "https://x.example/banner-42/ad.gif", Domain: "x.example",
			PageDomain: "page.example", ThirdParty: true, Type: TypeImage},
		{URL: "https://safe-43.example/x.js", Domain: "safe-43.example",
			PageDomain: "page.example", ThirdParty: true, Type: TypeScript},
		{URL: "https://ads-41.example/a", Domain: "ads-41.example",
			PageDomain: "ads-41.example", ThirdParty: false, Type: TypeScript},
		{Domain: "tracker-80.example", PageDomain: "page.example",
			ThirdParty: true, Type: TypeScript}, // empty URL: virtual probe
		{Domain: "clean.example", PageDomain: "page.example",
			ThirdParty: true, Type: TypeScript},
	}
	return reqs
}

// TestMatchConcurrentRace hammers Match from 8 goroutines over a shared
// engine. Run under -race it is the regression test for the token index's
// read-only invariant: buckets are built once at AddList time and never
// mutated by Match (the stats counters are the only writes, and they are
// atomic). Mirrors geoloc's TestClassifyConcurrentRace.
func TestMatchConcurrentRace(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 200
	)
	list := benchLists(200)
	e := NewEngine(list)
	// Serial baseline on a second engine over the SAME parsed list, so the
	// expected *Rule pointers are comparable across engines.
	serial := NewEngine(list)
	reqs := raceRequests()
	wantB := make([]bool, len(reqs))
	wantR := make([]*Rule, len(reqs))
	for i, req := range reqs {
		wantB[i], wantR[i] = serial.Match(req)
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the requests at a different phase so
				// probes overlap in every interleaving.
				for i := range reqs {
					j := (i + g) % len(reqs)
					gotB, gotR := e.Match(reqs[j])
					if gotB != wantB[j] || gotR != wantR[j] {
						select {
						case errs <- fmt.Sprintf("req %d: got (%v,%v) want (%v,%v)",
							j, gotB, gotR, wantB[j], wantR[j]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := e.Stats()
	if st.Matches != int64(goroutines*rounds*len(reqs)) {
		t.Errorf("stats.Matches = %d, want %d", st.Matches, goroutines*rounds*len(reqs))
	}
	if st.Rules != e.NumRules() {
		t.Errorf("stats.Rules = %d, want %d", st.Rules, e.NumRules())
	}
}
