package geoloc

import (
	"testing"

	"github.com/gamma-suite/gamma/internal/atlas"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/tracert"
)

// benchSetup builds a Karachi vantage observing a Paris host with a
// lossless network, a probe mesh, a perfect IPmap, and a reached trace.
func benchSetup(b *testing.B) (*geodb.DB, *geodb.RefTable, *atlas.Mesh, *geo.Registry, geo.City, Candidate) {
	b.Helper()
	reg := geo.Default()
	cfg := netsim.DefaultConfig(3)
	cfg.TraceLossProb = 0
	net := netsim.New(cfg)
	if err := net.AddAS(netsim.AS{Number: 1, Name: "b", Org: "b", Country: "FR"}); err != nil {
		b.Fatal(err)
	}
	khi, _ := reg.City("Karachi, PK")
	paris, _ := reg.City("Paris, FR")
	host, err := net.AddHost(netsim.Host{City: paris, ASN: 1, Responsive: true})
	if err != nil {
		b.Fatal(err)
	}
	v, err := net.AddVantage(netsim.Vantage{ID: "b", City: khi, ASN: 1, AccessDelayMs: 8})
	if err != nil {
		b.Fatal(err)
	}
	mesh, err := atlas.BuildMesh(net, reg, atlas.DefaultMeshConfig(3))
	if err != nil {
		b.Fatal(err)
	}
	ipmap := geodb.Build("ipmap", net, reg, geodb.BuildConfig{Seed: 1, Coverage: 1})
	ref := geodb.DefaultRefTables(net.BaseRTTMs, 3)
	res, err := net.Traceroute(v.ID, host.Addr)
	if err != nil || !res.Reached {
		b.Fatalf("trace failed: %v reached=%v", err, res.Reached)
	}
	norm := tracert.FromResult(res)
	return ipmap, ref, mesh, reg, khi, Candidate{Domain: "bench.example", Addr: host.Addr, Trace: &norm}
}

// BenchmarkClassifyNonLocal times one full constraint-cascade evaluation
// with a cold destination cache each iteration.
func BenchmarkClassifyNonLocal(b *testing.B) {
	ipmap, ref, mesh, reg, khi, cand := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw := New(DefaultConfig(), ipmap, ref, mesh, reg)
		if verdict := fw.Classify("PK", khi, cand); verdict.Class != NonLocal {
			b.Fatalf("verdict = %v (%v)", verdict.Class, verdict.Stage)
		}
	}
}

// BenchmarkClassifyCached times re-classification with a warm destination
// cache, the common case inside one country's analysis.
func BenchmarkClassifyCached(b *testing.B) {
	ipmap, ref, mesh, reg, khi, cand := benchSetup(b)
	fw := New(DefaultConfig(), ipmap, ref, mesh, reg)
	fw.Classify("PK", khi, cand) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Classify("PK", khi, cand)
	}
}
