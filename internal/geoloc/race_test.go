package geoloc

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"github.com/gamma-suite/gamma/internal/atlas"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/netsim"
)

// raceSetup builds a Karachi observer and a set of Paris-hosted servers so
// every candidate is claimed non-local and must pass through the destination
// constraint (the cached, single-flight hot path).
func raceSetup(t *testing.T, hosts int) (*Framework, geo.City, []Candidate) {
	t.Helper()
	reg := geo.Default()
	cfg := netsim.DefaultConfig(7)
	cfg.TraceLossProb = 0
	net := netsim.New(cfg)
	if err := net.AddAS(netsim.AS{Number: 1, Name: "r", Org: "r", Country: "FR"}); err != nil {
		t.Fatal(err)
	}
	khi, _ := reg.City("Karachi, PK")
	paris, _ := reg.City("Paris, FR")
	var cands []Candidate
	for i := 0; i < hosts; i++ {
		h, err := net.AddHost(netsim.Host{City: paris, ASN: 1, Responsive: true})
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, Candidate{Domain: fmt.Sprintf("h%d.example", i), Addr: h.Addr})
	}
	mesh, err := atlas.BuildMesh(net, reg, atlas.DefaultMeshConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ipmap := geodb.Build("ipmap", net, reg, geodb.BuildConfig{Seed: 1, Coverage: 1})
	fcfg := DefaultConfig()
	// Skip the source and rDNS constraints so every call exercises the
	// destination cache.
	fcfg.DisableSourceConstraint = true
	fcfg.DisableRDNSConstraint = true
	fw := New(fcfg, ipmap, nil, mesh, reg)
	return fw, khi, cands
}

// TestClassifyConcurrentRace hammers Classify from 8 goroutines over
// overlapping destination IPs. Run under -race this is the regression test
// for the destCache data race; the stats assertions prove the single-flight
// invariant: exactly one destination traceroute per unique IP, no matter
// how many goroutines ask.
func TestClassifyConcurrentRace(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
	)
	fw, khi, cands := raceSetup(t, 12)

	// Serial baseline on an identical, independent framework: the simulator
	// is deterministic, so the two frameworks must agree exactly.
	serial, _, _ := raceSetup(t, 12)
	want := map[netip.Addr]Verdict{}
	for _, c := range cands {
		want[c.Addr] = serial.Classify("PK", khi, c)
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the candidates at a different phase so
				// lookups overlap in every interleaving.
				for i := range cands {
					c := cands[(i+g)%len(cands)]
					got := fw.Classify("PK", khi, c)
					if got.Class != want[c.Addr].Class || got.Stage != want[c.Addr].Stage {
						select {
						case errs <- fmt.Sprintf("%s: got %v/%v want %v/%v",
							c.Domain, got.Class, got.Stage, want[c.Addr].Class, want[c.Addr].Stage):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := fw.Stats()
	if st.Misses != int64(len(cands)) {
		t.Errorf("misses = %d, want exactly one launch per unique IP (%d)", st.Misses, len(cands))
	}
	total := int64(goroutines * rounds * len(cands))
	if st.Hits+st.Inflight+st.Misses != total {
		t.Errorf("hits(%d)+inflight(%d)+misses(%d) != calls(%d)", st.Hits, st.Inflight, st.Misses, total)
	}
}
