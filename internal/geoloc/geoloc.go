// Package geoloc implements the paper's multi-constraint server
// geolocation framework (§4.1, after Gamero-Garrido et al.): RIPE-IPmap
// classification into Local/Non-local, then three validation constraints
// applied to every non-local claim —
//
//  1. the source-based constraint: the volunteer's traceroute must reach
//     the server, satisfy the 133 km/ms speed-of-light bound for the
//     claimed distance, and not be faster than 80% of published reference
//     latency statistics for the city pair;
//  2. the destination-based constraint: a probe in the claimed country
//     must reach the server with an RTT small enough to place it within
//     the claimed country's geographic extent;
//  3. the reverse-DNS constraint: a geo-hinted PTR record contradicting
//     the claimed country disqualifies the claim.
//
// Anything that fails a constraint is discarded, never reclassified — the
// framework is conservative by design, trading recall for the 100%
// precision on foreign servers reported in prior work.
package geoloc

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"github.com/gamma-suite/gamma/internal/atlas"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/tracert"
)

// Class is the final classification of one server observation.
type Class string

// Classification outcomes.
const (
	Local     Class = "local"
	NonLocal  Class = "non-local"
	Discarded Class = "discarded"
)

// Stage identifies which constraint discarded a claim.
type Stage string

// Discard stages, in cascade order.
const (
	StageNone           Stage = ""
	StageNoGeolocation  Stage = "no-geolocation"
	StageSourceMissing  Stage = "source-trace-missing"
	StageSourceUnreach  Stage = "source-trace-unreached"
	StageSourceSOL      Stage = "source-sol-violation"
	StageSourceLatency  Stage = "source-latency-below-reference"
	StageDestNoProbe    Stage = "destination-no-probe"
	StageDestUnreach    Stage = "destination-trace-unreached"
	StageDestSOL        Stage = "destination-sol-violation"
	StageDestTooFar     Stage = "destination-rtt-exceeds-country"
	StageRDNSConflict   Stage = "reverse-dns-conflict"
	StageInvalidAddress Stage = "invalid-address"
)

// Candidate is one (domain, server) observation from a volunteer dataset.
type Candidate struct {
	Domain string
	Addr   netip.Addr
	RDNS   string
	// Trace is the source traceroute to Addr: the volunteer's own, or the
	// Atlas substitute in countries where volunteer probes failed. Nil
	// when no source trace exists.
	Trace *tracert.Normalized
}

// Verdict is the framework's decision for a candidate.
type Verdict struct {
	Domain  string     `json:"domain"`
	Addr    netip.Addr `json:"addr"`
	Class   Class      `json:"class"`
	Stage   Stage      `json:"stage,omitempty"`
	Claimed geo.City   `json:"claimed,omitempty"`
	// DestCountry/DestCity are set for retained non-local verdicts.
	DestCountry string `json:"dest_country,omitempty"`
	DestCity    string `json:"dest_city,omitempty"`
	// SourceLatencyMs is the cleaned source latency (last hop minus first
	// hop when available).
	SourceLatencyMs float64 `json:"source_latency_ms,omitempty"`
}

// Config tunes the framework.
type Config struct {
	// ReferenceFloor is the fraction of the published city-pair latency
	// below which an observation is discarded (the study used 0.8).
	ReferenceFloor float64
	// CountryRadiusSlack scales the claimed country's radius when checking
	// the destination RTT bound, and SlackKm adds an absolute allowance
	// for metro access and queueing.
	CountryRadiusSlack float64
	SlackKm            float64

	// Ablation switches: disable individual constraints to measure what
	// each contributes to the framework's precision (the paper's cascade
	// is validated as 100%-precise on foreign servers; the ablation
	// experiment quantifies how much each stage matters).
	DisableSourceConstraint      bool
	DisableReferenceCheck        bool
	DisableDestinationConstraint bool
	DisableRDNSConstraint        bool
}

// DefaultConfig returns the study's constraint parameters.
func DefaultConfig() Config {
	return Config{ReferenceFloor: 0.8, CountryRadiusSlack: 2.0, SlackKm: 400}
}

// Framework evaluates candidates against the constraint cascade. It is safe
// for concurrent Classify calls: the destination-traceroute cache is sharded
// behind per-shard mutexes with single-flight semantics, so no matter how
// many goroutines ask about the same destination IP, exactly one traceroute
// is launched and everyone else waits for (or reuses) its result.
type Framework struct {
	cfg   Config
	ipmap *geodb.DB
	ref   *geodb.RefTable
	mesh  *atlas.Mesh
	reg   *geo.Registry

	shards [destShards]destShard

	hits     atomic.Int64 // completed cache entries served
	misses   atomic.Int64 // lookups that launched the traceroute themselves
	inflight atomic.Int64 // lookups that waited on another goroutine's launch
}

// destShards bounds lock contention under concurrent Classify calls.
const destShards = 16

type destShard struct {
	mu      sync.Mutex
	entries map[netip.Addr]*destEntry
}

// destEntry is a single-flight slot: the goroutine that created it computes
// stage and closes done; everyone else blocks on done.
type destEntry struct {
	done  chan struct{}
	stage Stage // StageNone when the destination constraint passed
}

// CacheStats snapshots the destination-cache counters. Misses equals the
// number of destination traceroutes actually launched: under any level of
// concurrency it stays exactly one per unique destination IP.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Inflight int64 `json:"inflight"`
}

// Stats returns a snapshot of the destination-cache counters; safe to call
// while Classify runs.
func (f *Framework) Stats() CacheStats {
	return CacheStats{
		Hits:     f.hits.Load(),
		Misses:   f.misses.Load(),
		Inflight: f.inflight.Load(),
	}
}

// New builds a framework. mesh may be nil, in which case the destination
// constraint degrades to "no probe available" discards.
func New(cfg Config, ipmap *geodb.DB, ref *geodb.RefTable, mesh *atlas.Mesh, reg *geo.Registry) *Framework {
	if cfg.ReferenceFloor == 0 {
		cfg = DefaultConfig()
	}
	f := &Framework{
		cfg:   cfg,
		ipmap: ipmap,
		ref:   ref,
		mesh:  mesh,
		reg:   reg,
	}
	for i := range f.shards {
		f.shards[i].entries = make(map[netip.Addr]*destEntry)
	}
	return f
}

// CleanLatency extracts the local-network-corrected latency from a source
// traceroute: last hop minus first hop when the first hop responded and is
// smaller, otherwise the raw last hop (§4.1.1).
func CleanLatency(tr tracert.Normalized) float64 {
	last := tr.LastHopRTT()
	first := tr.FirstHopRTT()
	if first > 0 && first < last {
		return last - first
	}
	return last
}

// Classify evaluates one candidate observed from a volunteer located in
// volCountry at volCity.
func (f *Framework) Classify(volCountry string, volCity geo.City, c Candidate) Verdict {
	v := Verdict{Domain: c.Domain, Addr: c.Addr}
	if !c.Addr.IsValid() {
		v.Class, v.Stage = Discarded, StageInvalidAddress
		return v
	}
	claimed, ok := f.ipmap.Lookup(c.Addr)
	if !ok {
		v.Class, v.Stage = Discarded, StageNoGeolocation
		return v
	}
	v.Claimed = claimed
	if claimed.Country == volCountry {
		v.Class = Local
		return v
	}

	// ---- Source-based constraint (§4.1.1) ----
	if !f.cfg.DisableSourceConstraint {
		if c.Trace == nil {
			v.Class, v.Stage = Discarded, StageSourceMissing
			return v
		}
		if !c.Trace.Reached {
			v.Class, v.Stage = Discarded, StageSourceUnreach
			return v
		}
		latency := CleanLatency(*c.Trace)
		v.SourceLatencyMs = latency
		dist := geo.DistanceKm(volCity.Coord, claimed.Coord)
		if geo.ViolatesSOL(dist, latency) {
			v.Class, v.Stage = Discarded, StageSourceSOL
			return v
		}
		if f.ref != nil && !f.cfg.DisableReferenceCheck {
			if refMs, _, ok := f.ref.Lookup(volCity, claimed); ok && latency < f.cfg.ReferenceFloor*refMs {
				v.Class, v.Stage = Discarded, StageSourceLatency
				return v
			}
		}
	}

	// ---- Destination-based constraint (§4.1.2) ----
	if !f.cfg.DisableDestinationConstraint {
		if stage := f.destinationConstraint(c.Addr, claimed); stage != StageNone {
			v.Class, v.Stage = Discarded, stage
			return v
		}
	}

	// ---- Reverse-DNS constraint (§4.1.3) ----
	// A geo-hinted PTR contradicting the claimed location disqualifies the
	// claim. The comparison is at city granularity: the paper's examples
	// discard IPs claimed in Germany whose rDNS suggests Zurich.
	if c.RDNS != "" && !f.cfg.DisableRDNSConstraint {
		if hintCity, ok := geodb.ParseHintCity(c.RDNS, f.reg); ok && hintCity.ID() != claimed.ID() {
			v.Class, v.Stage = Discarded, StageRDNSConflict
			return v
		}
	}

	v.Class = NonLocal
	v.DestCountry = claimed.Country
	v.DestCity = claimed.ID()
	return v
}

// destinationConstraint launches (and caches) the destination traceroute
// for a server address against its claimed location. The claimed city is a
// pure function of the address (an IPmap lookup), so the address alone keys
// the cache and concurrent callers with the same address always agree.
func (f *Framework) destinationConstraint(addr netip.Addr, claimed geo.City) Stage {
	s := &f.shards[shardOf(addr)]
	s.mu.Lock()
	if e, ok := s.entries[addr]; ok {
		s.mu.Unlock()
		select {
		case <-e.done:
			f.hits.Add(1)
		default:
			f.inflight.Add(1)
			<-e.done
		}
		return e.stage
	}
	e := &destEntry{done: make(chan struct{})}
	s.entries[addr] = e
	s.mu.Unlock()

	f.misses.Add(1)
	e.stage = f.destinationConstraintUncached(addr, claimed)
	close(e.done)
	return e.stage
}

// shardOf maps an address to its cache shard.
func shardOf(addr netip.Addr) int {
	b := addr.As16()
	return int(rng.Hash(string(b[:])) % destShards)
}

func (f *Framework) destinationConstraintUncached(addr netip.Addr, claimed geo.City) Stage {
	if f.mesh == nil {
		return StageDestNoProbe
	}
	probe, ok := f.mesh.ProbeInCountry(claimed.Country, claimed.Coord)
	if !ok {
		// No probe anywhere in the claimed country: fall back to the
		// nearest probe; if even that is too far to be informative, the
		// claim cannot be validated.
		probe, ok = f.mesh.NearestProbe(claimed.Coord, 0)
		if !ok || geo.DistanceKm(probe.City.Coord, claimed.Coord) > 1500 {
			return StageDestNoProbe
		}
	}
	res, err := f.mesh.Traceroute(probe, addr)
	if err != nil || !res.Reached {
		return StageDestUnreach
	}
	norm := tracert.FromResult(res)
	latency := CleanLatency(norm)
	probeDist := geo.DistanceKm(probe.City.Coord, claimed.Coord)
	if geo.ViolatesSOL(probeDist, latency) {
		return StageDestSOL
	}
	// The RTT disc around the probe must plausibly stay within the claimed
	// country's extent; otherwise the claim cannot be confirmed.
	country, ok := f.reg.Country(claimed.Country)
	if !ok {
		return StageDestNoProbe
	}
	maxDist := geo.MaxDistanceKm(latency)
	if maxDist > country.RadiusKm*f.cfg.CountryRadiusSlack+f.cfg.SlackKm {
		return StageDestTooFar
	}
	return StageNone
}

// FunnelCounts tallies verdicts by class and stage.
type FunnelCounts struct {
	Total     int           `json:"total"`
	Local     int           `json:"local"`
	NonLocal  int           `json:"non_local"`
	Discarded int           `json:"discarded"`
	ByStage   map[Stage]int `json:"by_stage,omitempty"`
}

// Tally aggregates verdict outcomes.
func Tally(vs []Verdict) FunnelCounts {
	out := FunnelCounts{ByStage: map[Stage]int{}}
	for _, v := range vs {
		out.Total++
		switch v.Class {
		case Local:
			out.Local++
		case NonLocal:
			out.NonLocal++
		default:
			out.Discarded++
			out.ByStage[v.Stage]++
		}
	}
	return out
}
