package geoloc

import (
	"net/netip"
	"testing"

	"github.com/gamma-suite/gamma/internal/atlas"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/tracert"
)

// fixture builds a small world: a volunteer in Karachi, hosts in Paris,
// Karachi and Dubai, a probe mesh, and a perfect-then-corrupted IPmap.
type fixture struct {
	net       *netsim.Network
	reg       *geo.Registry
	mesh      *atlas.Mesh
	ipmap     *geodb.DB
	ref       *geodb.RefTable
	fw        *Framework
	volCity   geo.City
	parisHost netsim.Host
	localHost netsim.Host
	dubaiHost netsim.Host
	vantage   netsim.Vantage
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{reg: geo.Default()}
	// Constraint logic is under test here, not packet loss: keep traces
	// lossless so every verdict is attributable to a constraint.
	cfg := netsim.DefaultConfig(99)
	cfg.TraceLossProb = 0
	f.net = netsim.New(cfg)
	if err := f.net.AddAS(netsim.AS{Number: 10, Name: "x", Org: "x", Country: "FR"}); err != nil {
		t.Fatal(err)
	}
	city := func(id string) geo.City {
		c, ok := f.reg.City(id)
		if !ok {
			t.Fatalf("city %s missing", id)
		}
		return c
	}
	f.volCity = city("Karachi, PK")
	var err error
	if f.parisHost, err = f.net.AddHost(netsim.Host{City: city("Paris, FR"), ASN: 10, Responsive: true}); err != nil {
		t.Fatal(err)
	}
	if f.localHost, err = f.net.AddHost(netsim.Host{City: f.volCity, ASN: 10, Responsive: true}); err != nil {
		t.Fatal(err)
	}
	if f.dubaiHost, err = f.net.AddHost(netsim.Host{City: city("Dubai, AE"), ASN: 10, Responsive: true}); err != nil {
		t.Fatal(err)
	}
	if f.vantage, err = f.net.AddVantage(netsim.Vantage{ID: "vol-pk", City: f.volCity, ASN: 10, AccessDelayMs: 8}); err != nil {
		t.Fatal(err)
	}
	if f.mesh, err = atlas.BuildMesh(f.net, f.reg, atlas.DefaultMeshConfig(99)); err != nil {
		t.Fatal(err)
	}
	// Perfect IPmap to start; tests corrupt entries as needed.
	f.ipmap = geodb.Build("ipmap", f.net, f.reg, geodb.BuildConfig{Seed: 1, Coverage: 1})
	f.ref = geodb.DefaultRefTables(f.net.BaseRTTMs, 99)
	f.fw = New(DefaultConfig(), f.ipmap, f.ref, f.mesh, f.reg)
	return f
}

// trace launches a real simulated traceroute and normalizes it, retrying
// hosts until one is reached (loss is ~6%).
func (f *fixture) trace(t *testing.T, dst netip.Addr) *tracert.Normalized {
	t.Helper()
	res, err := f.net.Traceroute(f.vantage.ID, dst)
	if err != nil {
		t.Fatal(err)
	}
	n := tracert.FromResult(res)
	return &n
}

func (f *fixture) reachedTrace(t *testing.T, dst netip.Addr) *tracert.Normalized {
	t.Helper()
	n := f.trace(t, dst)
	if !n.Reached {
		t.Skip("simulated trace lost; covered by other seeds")
	}
	return n
}

func TestLocalClassification(t *testing.T) {
	f := newFixture(t)
	v := f.fw.Classify("PK", f.volCity, Candidate{Domain: "local.pk", Addr: f.localHost.Addr})
	if v.Class != Local {
		t.Errorf("class = %v (%v), want local", v.Class, v.Stage)
	}
}

func TestNonLocalRetained(t *testing.T) {
	f := newFixture(t)
	v := f.fw.Classify("PK", f.volCity, Candidate{
		Domain: "tracker.fr",
		Addr:   f.parisHost.Addr,
		Trace:  f.reachedTrace(t, f.parisHost.Addr),
	})
	if v.Class != NonLocal {
		t.Fatalf("class = %v, stage %v, want non-local", v.Class, v.Stage)
	}
	if v.DestCountry != "FR" || v.DestCity != "Paris, FR" {
		t.Errorf("dest = %s / %s", v.DestCountry, v.DestCity)
	}
	if v.SourceLatencyMs <= 0 {
		t.Error("source latency should be recorded")
	}
}

func TestNoGeolocationDiscard(t *testing.T) {
	f := newFixture(t)
	v := f.fw.Classify("PK", f.volCity, Candidate{Domain: "x", Addr: netip.MustParseAddr("203.0.113.1")})
	if v.Class != Discarded || v.Stage != StageNoGeolocation {
		t.Errorf("verdict = %+v", v)
	}
	v = f.fw.Classify("PK", f.volCity, Candidate{Domain: "x"})
	if v.Stage != StageInvalidAddress {
		t.Errorf("invalid addr stage = %v", v.Stage)
	}
}

func TestSourceTraceMissingOrUnreached(t *testing.T) {
	f := newFixture(t)
	v := f.fw.Classify("PK", f.volCity, Candidate{Domain: "t.fr", Addr: f.parisHost.Addr})
	if v.Stage != StageSourceMissing {
		t.Errorf("stage = %v, want source-trace-missing", v.Stage)
	}
	unreached := &tracert.Normalized{Target: f.parisHost.Addr.String(), Reached: false}
	v = f.fw.Classify("PK", f.volCity, Candidate{Domain: "t.fr", Addr: f.parisHost.Addr, Trace: unreached})
	if v.Stage != StageSourceUnreach {
		t.Errorf("stage = %v, want source-trace-unreached", v.Stage)
	}
}

func TestSourceSOLCatchesFarClaims(t *testing.T) {
	// IPmap wrongly claims a LOCAL (Karachi) host is in Paris. The
	// volunteer's observed latency to it is a few ms — physically
	// impossible for Karachi->Paris — so the claim must be discarded.
	f := newFixture(t)
	paris, _ := f.reg.City("Paris, FR")
	f.ipmap.Set(f.localHost.Addr, paris)
	v := f.fw.Classify("PK", f.volCity, Candidate{
		Domain: "fake-foreign.pk",
		Addr:   f.localHost.Addr,
		Trace:  f.reachedTrace(t, f.localHost.Addr),
	})
	if v.Class != Discarded {
		t.Fatalf("class = %v, want discarded", v.Class)
	}
	if v.Stage != StageSourceSOL && v.Stage != StageSourceLatency {
		t.Errorf("stage = %v, want a source-side discard", v.Stage)
	}
}

func TestDestinationConstraintCatchesNearClaims(t *testing.T) {
	// IPmap claims a Paris host is in Dubai (nearer to the volunteer than
	// the truth). The source constraints cannot catch this — the observed
	// latency is larger, not smaller, than the claim implies — but the
	// destination probe in the UAE sees an RTT far too large for a server
	// inside the UAE.
	f := newFixture(t)
	dubai, _ := f.reg.City("Dubai, AE")
	f.ipmap.Set(f.parisHost.Addr, dubai)
	v := f.fw.Classify("PK", f.volCity, Candidate{
		Domain: "claimed-dubai.example",
		Addr:   f.parisHost.Addr,
		Trace:  f.reachedTrace(t, f.parisHost.Addr),
	})
	if v.Class != Discarded {
		t.Fatalf("class = %v (dest %s), want discarded", v.Class, v.DestCountry)
	}
	if v.Stage != StageDestTooFar && v.Stage != StageDestUnreach && v.Stage != StageDestSOL {
		t.Errorf("stage = %v, want a destination-side discard", v.Stage)
	}
}

func TestRDNSConflictDiscard(t *testing.T) {
	// IPmap claims Dubai for a host whose PTR betrays Paris: the §4.1.3
	// case (Google edges claimed in Al Fujairah, rDNS saying Amsterdam).
	f := newFixture(t)
	paris, _ := f.reg.City("Paris, FR")
	// Claim a country near enough that destination checks can pass is
	// hard to fabricate; instead claim the TRUE city so source+dest pass,
	// then use a conflicting PTR from another country.
	v := f.fw.Classify("PK", f.volCity, Candidate{
		Domain: "t.example",
		Addr:   f.parisHost.Addr,
		RDNS:   geodb.HintHostname(mustCity(t, f.reg, "Amsterdam, NL"), "t.example", 1),
		Trace:  f.reachedTrace(t, f.parisHost.Addr),
	})
	if v.Class != Discarded || v.Stage != StageRDNSConflict {
		t.Errorf("verdict = %+v, want rdns-conflict", v)
	}
	// A PTR agreeing with the claim is retained.
	v = f.fw.Classify("PK", f.volCity, Candidate{
		Domain: "t.example",
		Addr:   f.parisHost.Addr,
		RDNS:   geodb.HintHostname(paris, "t.example", 1),
		Trace:  f.reachedTrace(t, f.parisHost.Addr),
	})
	if v.Class != NonLocal {
		t.Errorf("agreeing PTR should be retained: %+v", v)
	}
	// A PTR with no hint is retained too.
	v = f.fw.Classify("PK", f.volCity, Candidate{
		Domain: "t.example",
		Addr:   f.parisHost.Addr,
		RDNS:   geodb.OpaqueHostname("t.example", 42),
		Trace:  f.reachedTrace(t, f.parisHost.Addr),
	})
	if v.Class != NonLocal {
		t.Errorf("hintless PTR should be retained: %+v", v)
	}
}

func mustCity(t *testing.T, reg *geo.Registry, id string) geo.City {
	t.Helper()
	c, ok := reg.City(id)
	if !ok {
		t.Fatalf("city %s missing", id)
	}
	return c
}

func TestCleanLatency(t *testing.T) {
	tr := tracert.Normalized{
		Target:  "1.2.3.4",
		Reached: true,
		Hops: []tracert.NormHop{
			{Hop: 1, Addr: "10.0.0.1", RTTMs: []float64{8}},
			{Hop: 2, Addr: "1.2.3.4", RTTMs: []float64{50}},
		},
	}
	if got := CleanLatency(tr); got != 42 {
		t.Errorf("CleanLatency = %v, want 42 (last minus first)", got)
	}
	// First hop missing: raw last hop.
	tr.Hops[0] = tracert.NormHop{Hop: 1}
	if got := CleanLatency(tr); got != 50 {
		t.Errorf("CleanLatency = %v, want 50", got)
	}
	// First hop larger than last (reordering noise): raw last hop.
	tr.Hops[0] = tracert.NormHop{Hop: 1, Addr: "10.0.0.1", RTTMs: []float64{60}}
	if got := CleanLatency(tr); got != 50 {
		t.Errorf("CleanLatency = %v, want 50", got)
	}
}

func TestDestinationCacheReusesResults(t *testing.T) {
	f := newFixture(t)
	tr := f.reachedTrace(t, f.parisHost.Addr)
	v1 := f.fw.Classify("PK", f.volCity, Candidate{Domain: "a.example", Addr: f.parisHost.Addr, Trace: tr})
	v2 := f.fw.Classify("PK", f.volCity, Candidate{Domain: "b.example", Addr: f.parisHost.Addr, Trace: tr})
	if v1.Class != v2.Class || v1.Stage != v2.Stage {
		t.Error("cached destination verdicts must agree")
	}
}

func TestTally(t *testing.T) {
	vs := []Verdict{
		{Class: Local},
		{Class: NonLocal},
		{Class: NonLocal},
		{Class: Discarded, Stage: StageSourceSOL},
		{Class: Discarded, Stage: StageRDNSConflict},
	}
	got := Tally(vs)
	if got.Total != 5 || got.Local != 1 || got.NonLocal != 2 || got.Discarded != 2 {
		t.Errorf("tally = %+v", got)
	}
	if got.ByStage[StageSourceSOL] != 1 || got.ByStage[StageRDNSConflict] != 1 {
		t.Errorf("stages = %+v", got.ByStage)
	}
}

func TestNilMeshDiscardsAtDestination(t *testing.T) {
	f := newFixture(t)
	fw := New(DefaultConfig(), f.ipmap, f.ref, nil, f.reg)
	v := fw.Classify("PK", f.volCity, Candidate{
		Domain: "t.fr",
		Addr:   f.parisHost.Addr,
		Trace:  f.reachedTrace(t, f.parisHost.Addr),
	})
	if v.Stage != StageDestNoProbe {
		t.Errorf("stage = %v, want destination-no-probe", v.Stage)
	}
}
