package svg

import (
	"encoding/xml"
	"strings"
	"testing"

	"github.com/gamma-suite/gamma/internal/analysis"
)

func wellFormed(t *testing.T, s string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, s[:min(400, len(s))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestFig5SVG(t *testing.T) {
	flows := []analysis.Flow{
		{Source: "PK", Dest: "FR", Sites: 60},
		{Source: "PK", Dest: "DE", Sites: 30},
		{Source: "NZ", Dest: "AU", Sites: 80},
		{Source: "UG", Dest: "KE", Sites: 45},
	}
	s := Fig5(flows, 10)
	wellFormed(t, s)
	for _, want := range []string{"PK", "FR", "NZ", "AU", "Figure 5", "<path"} {
		if !strings.Contains(s, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestFig5EdgeCapAndEscaping(t *testing.T) {
	var flows []analysis.Flow
	for i := 0; i < 50; i++ {
		flows = append(flows, analysis.Flow{Source: "S<&>", Dest: "D", Sites: 50 - i})
	}
	s := Fig5(flows, 5)
	wellFormed(t, s)
	if got := strings.Count(s, "<path"); got != 5 {
		t.Errorf("ribbons = %d, want capped at 5", got)
	}
	if strings.Contains(s, "S<&>") {
		t.Error("node names must be XML-escaped")
	}
}

func TestFig6SVG(t *testing.T) {
	s := Fig6([]analysis.ContinentFlow{
		{Source: "Asia", Dest: "Europe", Sites: 500},
		{Source: "Africa", Dest: "Europe", Sites: 300},
		{Source: "Oceania", Dest: "Oceania", Sites: 80},
	})
	wellFormed(t, s)
	if !strings.Contains(s, "Europe") || !strings.Contains(s, "Figure 6") {
		t.Error("continent SVG incomplete")
	}
}

func TestFig8SVG(t *testing.T) {
	s := Fig8([]analysis.OrgFlow{
		{Source: "PK", Org: "Google", Sites: 70},
		{Source: "JO", Org: "Jubnaadserve", Sites: 4},
	}, 10)
	wellFormed(t, s)
	if !strings.Contains(s, "Google") {
		t.Error("org SVG incomplete")
	}
}

func TestFig3SVG(t *testing.T) {
	s := Fig3([]analysis.Prevalence{
		{Country: "PK", RegionalPct: 68, GovernmentPct: 63},
		{Country: "US", RegionalPct: 0, GovernmentPct: 0},
		{Country: "RW", RegionalPct: 93, GovernmentPct: 31},
	})
	wellFormed(t, s)
	for _, want := range []string{"PK", "US", "RW", "regional", "government", "100%"} {
		if !strings.Contains(s, want) {
			t.Errorf("bar chart missing %q", want)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	wellFormed(t, Fig5(nil, 10))
	wellFormed(t, Fig6(nil))
	wellFormed(t, Fig8(nil, 10))
	wellFormed(t, Fig3(nil))
}
