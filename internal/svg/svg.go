// Package svg renders the paper's flow figures as standalone SVG
// documents: the Sankey-style source→destination diagram (Figure 5), the
// continent flows (Figure 6), and the source→organization flows
// (Figure 8), plus a grouped bar chart for the Figure 3 prevalence data.
// Everything is plain stdlib string building — no drawing dependencies —
// and the output opens in any browser.
package svg

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/analysis"
)

// palette cycles through colorblind-safe hues.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
	"#aa3377", "#bbbbbb", "#775533", "#99ddff", "#ffaabb",
}

func color(i int) string { return palette[i%len(palette)] }

func esc(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// doc wraps content in an SVG document with a white background and title.
func doc(width, height int, title, content string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`,
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`, 16, esc(title))
	b.WriteString(content)
	b.WriteString(`</svg>`)
	return b.String()
}

// edge is one generic flow for the bipartite renderer.
type edge struct {
	src, dst string
	weight   int
}

// bipartiteFlow renders a two-column flow diagram: sources left,
// destinations right, ribbons proportional to weight.
func bipartiteFlow(title string, edges []edge, maxEdges int) string {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].weight != edges[j].weight {
			return edges[i].weight > edges[j].weight
		}
		if edges[i].src != edges[j].src {
			return edges[i].src < edges[j].src
		}
		return edges[i].dst < edges[j].dst
	})
	if maxEdges > 0 && len(edges) > maxEdges {
		edges = edges[:maxEdges]
	}

	srcTotal := map[string]int{}
	dstTotal := map[string]int{}
	var srcOrder, dstOrder []string
	for _, e := range edges {
		if _, ok := srcTotal[e.src]; !ok {
			srcOrder = append(srcOrder, e.src)
		}
		if _, ok := dstTotal[e.dst]; !ok {
			dstOrder = append(dstOrder, e.dst)
		}
		srcTotal[e.src] += e.weight
		dstTotal[e.dst] += e.weight
	}
	sort.Slice(srcOrder, func(i, j int) bool { return srcTotal[srcOrder[i]] > srcTotal[srcOrder[j]] })
	sort.Slice(dstOrder, func(i, j int) bool { return dstTotal[dstOrder[i]] > dstTotal[dstOrder[j]] })

	const (
		width   = 900
		top     = 48
		nodeW   = 10
		gap     = 6
		leftX   = 180
		rightX  = width - 180
		pxPerWt = 2.0
	)
	total := 0
	for _, e := range edges {
		total += e.weight
	}
	scale := pxPerWt
	if float64(total)*scale > 640 {
		scale = 640 / float64(total)
	}

	// Lay out node bands.
	type band struct{ y0, y1, used0, used1 float64 }
	place := func(order []string, totals map[string]int) map[string]*band {
		out := map[string]*band{}
		y := float64(top)
		for _, name := range order {
			h := float64(totals[name]) * scale
			if h < 3 {
				h = 3
			}
			out[name] = &band{y0: y, y1: y + h, used0: y, used1: y}
			y += h + gap
		}
		return out
	}
	srcBands := place(srcOrder, srcTotal)
	dstBands := place(dstOrder, dstTotal)

	height := top + 24
	for _, b := range srcBands {
		if int(b.y1)+40 > height {
			height = int(b.y1) + 40
		}
	}
	for _, b := range dstBands {
		if int(b.y1)+40 > height {
			height = int(b.y1) + 40
		}
	}

	var c strings.Builder
	// Ribbons first (under the node bars).
	srcColor := map[string]int{}
	for i, name := range srcOrder {
		srcColor[name] = i
	}
	for _, e := range edges {
		sb, db := srcBands[e.src], dstBands[e.dst]
		h := float64(e.weight) * scale
		if h < 1 {
			h = 1
		}
		y1 := sb.used0
		y2 := db.used0
		sb.used0 += h
		db.used0 += h
		midX := (leftX + rightX) / 2
		fmt.Fprintf(&c, `<path d="M %d %.1f C %d %.1f %d %.1f %d %.1f L %d %.1f C %d %.1f %d %.1f %d %.1f Z" fill="%s" fill-opacity="0.45"><title>%s → %s: %d</title></path>`,
			leftX+nodeW, y1,
			midX, y1, midX, y2, rightX, y2,
			rightX, y2+h,
			midX, y2+h, midX, y1+h, leftX+nodeW, y1+h,
			color(srcColor[e.src]), esc(e.src), esc(e.dst), e.weight)
	}
	// Node bars + labels.
	for i, name := range srcOrder {
		b := srcBands[name]
		fmt.Fprintf(&c, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"/>`,
			leftX, b.y0, nodeW, b.y1-b.y0, color(i))
		fmt.Fprintf(&c, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s (%d)</text>`,
			leftX-6, (b.y0+b.y1)/2+4, esc(name), srcTotal[name])
	}
	for _, name := range dstOrder {
		b := dstBands[name]
		fmt.Fprintf(&c, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="#555"/>`,
			rightX, b.y0, nodeW, b.y1-b.y0)
		fmt.Fprintf(&c, `<text x="%d" y="%.1f" font-size="11">%s (%d)</text>`,
			rightX+nodeW+6, (b.y0+b.y1)/2+4, esc(name), dstTotal[name])
	}
	return doc(width, height, title, c.String())
}

// Fig5 renders the source→destination country flows.
func Fig5(flows []analysis.Flow, maxEdges int) string {
	edges := make([]edge, 0, len(flows))
	for _, f := range flows {
		edges = append(edges, edge{src: f.Source, dst: f.Dest, weight: f.Sites})
	}
	return bipartiteFlow("Figure 5: non-local tracking flows (source → destination country)", edges, maxEdges)
}

// Fig6 renders the continent flows.
func Fig6(flows []analysis.ContinentFlow) string {
	edges := make([]edge, 0, len(flows))
	for _, f := range flows {
		edges = append(edges, edge{src: string(f.Source), dst: string(f.Dest), weight: f.Sites})
	}
	return bipartiteFlow("Figure 6: non-local tracking flows across continents", edges, 0)
}

// Fig8 renders the source→organization flows.
func Fig8(flows []analysis.OrgFlow, maxEdges int) string {
	edges := make([]edge, 0, len(flows))
	for _, f := range flows {
		edges = append(edges, edge{src: f.Source, dst: f.Org, weight: f.Sites})
	}
	return bipartiteFlow("Figure 8: non-local tracking flows to organizations", edges, maxEdges)
}

// Fig3 renders the prevalence data as grouped bars (regional vs gov).
func Fig3(prev []analysis.Prevalence) string {
	const (
		width   = 1000
		top     = 60
		baseY   = 320
		groupW  = 38
		barW    = 14
		maxBarH = 240.0
	)
	var c strings.Builder
	// Axis.
	fmt.Fprintf(&c, `<line x1="40" y1="%d" x2="%d" y2="%d" stroke="#333"/>`, baseY, width-20, baseY)
	for _, tick := range []int{0, 25, 50, 75, 100} {
		y := float64(baseY) - float64(tick)/100*maxBarH
		fmt.Fprintf(&c, `<text x="36" y="%.0f" font-size="10" text-anchor="end">%d%%</text>`, y+3, tick)
		fmt.Fprintf(&c, `<line x1="40" y1="%.0f" x2="%d" y2="%.0f" stroke="#ddd"/>`, y, width-20, y)
	}
	for i, p := range prev {
		x := 50 + i*groupW
		hr := p.RegionalPct / 100 * maxBarH
		hg := p.GovernmentPct / 100 * maxBarH
		fmt.Fprintf(&c, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"><title>%s regional %.1f%%</title></rect>`,
			x, float64(baseY)-hr, barW, hr, color(0), esc(p.Country), p.RegionalPct)
		fmt.Fprintf(&c, `<rect x="%d" y="%.1f" width="%d" height="%.1f" fill="%s"><title>%s government %.1f%%</title></rect>`,
			x+barW+2, float64(baseY)-hg, barW, hg, color(1), esc(p.Country), p.GovernmentPct)
		fmt.Fprintf(&c, `<text x="%d" y="%d" font-size="10" text-anchor="middle">%s</text>`,
			x+barW, baseY+14, esc(p.Country))
	}
	// Legend.
	fmt.Fprintf(&c, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/><text x="%d" y="%d" font-size="11">regional</text>`,
		width-200, top-20, color(0), width-182, top-10)
	fmt.Fprintf(&c, `<rect x="%d" y="%d" width="12" height="12" fill="%s"/><text x="%d" y="%d" font-size="11">government</text>`,
		width-120, top-20, color(1), width-102, top-10)
	_ = top
	return doc(width, baseY+40, "Figure 3: sites with ≥1 non-local tracker", c.String())
}
