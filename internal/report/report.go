// Package report renders the study's tables and figures as aligned text:
// the terminal equivalents of the paper's Figures 2–9 and Table 1, plus
// the §5 funnel accounting. Every renderer writes to an io.Writer so the
// same output feeds the CLI tools, the experiment harness, and golden
// tests.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/ablation"
	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/stats"
)

// Table is a minimal aligned-column text table.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table { return &Table{headers: headers} }

// AddRow appends a row; extra cells are dropped, missing cells padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }

// Funnel renders the §5 accounting.
func Funnel(w io.Writer, f pipeline.Funnel) {
	fmt.Fprintln(w, "== Data collection funnel (§5) ==")
	t := NewTable("stage", "count")
	t.AddRow("target websites", fmt.Sprint(f.Targets))
	t.AddRow("after volunteer opt-outs", fmt.Sprint(f.TargetsAfterOptOut))
	t.AddRow("unique target websites", fmt.Sprint(f.UniqueTargets))
	t.AddRow("pages loaded successfully", fmt.Sprint(f.LoadedOK))
	t.AddRow("domain observations (per-country unique)", fmt.Sprint(f.DomainObservations))
	t.AddRow("unique domains", fmt.Sprint(f.UniqueDomains))
	t.AddRow("unique server IPs", fmt.Sprint(f.UniqueIPs))
	t.AddRow("source traceroutes launched", fmt.Sprint(f.SourceTraceroutes))
	t.AddRow("destination traceroutes launched", fmt.Sprint(f.DestTraceroutes))
	t.AddRow("claimed non-local (before constraints)", fmt.Sprint(f.NonLocalClaimed))
	t.AddRow("after SOL/source/destination constraints", fmt.Sprint(f.AfterSOL))
	t.AddRow("after reverse-DNS constraint", fmt.Sprint(f.AfterRDNS))
	t.AddRow("associated with trackers", fmt.Sprint(f.Trackers))
	t.AddRow("  of which CNAME-cloaked", fmt.Sprint(f.CloakedTrackers))
	t.Render(w)
}

// Fig2 renders target composition and load success.
func Fig2(w io.Writer, comp []analysis.Composition, loads []analysis.LoadSuccess) {
	fmt.Fprintln(w, "== Figure 2: target composition and load success ==")
	byCC := map[string]analysis.LoadSuccess{}
	for _, l := range loads {
		byCC[l.Country] = l
	}
	t := NewTable("country", "T_reg", "T_gov", "loaded")
	for _, c := range comp {
		t.AddRow(c.Country, fmt.Sprint(c.Regional), fmt.Sprint(c.Government), pct(byCC[c.Country].Pct))
	}
	t.Render(w)
}

// Fig3 renders non-local tracker prevalence.
func Fig3(w io.Writer, prev []analysis.Prevalence) {
	fmt.Fprintln(w, "== Figure 3: sites with ≥1 non-local tracker ==")
	t := NewTable("country", "regional", "government", "overall")
	var regs, govs []float64
	for _, p := range prev {
		t.AddRow(p.Country, pct(p.RegionalPct), pct(p.GovernmentPct), pct(p.OverallPct))
		regs = append(regs, p.RegionalPct)
		govs = append(govs, p.GovernmentPct)
	}
	t.Render(w)
	rm, rs := analysis.MeanStd(regs)
	gm, gs := analysis.MeanStd(govs)
	fmt.Fprintf(w, "regional mean %.2f%% (σ %.2f), government mean %.2f%% (σ %.2f)\n", rm, rs, gm, gs)
	if r, err := analysis.Fig3Correlation(prev); err == nil {
		fmt.Fprintf(w, "Pearson correlation (regional vs government): %.2f\n", r)
	}
}

// boxPlotASCII draws a fixed-width box plot over [0, max].
func boxPlotASCII(b stats.BoxPlot, max float64, width int) string {
	if b.N == 0 {
		return strings.Repeat(" ", width) + " (no sites)"
	}
	if max <= 0 {
		max = 1
	}
	pos := func(v float64) int {
		p := int(math.Round(v / max * float64(width-1)))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	row := []byte(strings.Repeat(" ", width))
	for i := pos(b.Min); i <= pos(b.Max); i++ {
		row[i] = '-'
	}
	for i := pos(b.Q1); i <= pos(b.Q3); i++ {
		row[i] = '='
	}
	row[pos(b.Median)] = 'M'
	for _, o := range b.Outliers {
		row[pos(o)] = '*'
	}
	return string(row)
}

// Fig4 renders per-site tracker-count distributions as ASCII box plots.
func Fig4(w io.Writer, dists []analysis.Distribution) {
	fmt.Fprintln(w, "== Figure 4: non-local tracker domains per website ==")
	var max float64
	for _, d := range dists {
		for _, o := range append(d.Combined.Outliers, d.Combined.Max) {
			if o > max {
				max = o
			}
		}
	}
	const width = 48
	fmt.Fprintf(w, "scale: 0 .. %.0f domains; '=' IQR, 'M' median, '*' outliers\n", max)
	t := NewTable("country", "plot", "median", "mean", "σ", "N")
	for _, d := range dists {
		t.AddRow(d.Country, boxPlotASCII(d.Combined, max, width),
			fmt.Sprintf("%.1f", d.Combined.Median),
			fmt.Sprintf("%.1f", d.Combined.Mean),
			fmt.Sprintf("%.1f", d.Combined.StdDev),
			fmt.Sprint(d.Combined.N))
	}
	t.Render(w)
}

// Fig5 renders the country-level flow diagram as destination shares plus
// the heaviest edges.
func Fig5(w io.Writer, shares []analysis.DestShare, flows []analysis.Flow, topEdges int) {
	fmt.Fprintln(w, "== Figure 5: non-local tracking flows (source -> destination) ==")
	t := NewTable("destination", "% of tracking sites", "sites", "source countries")
	for _, s := range shares {
		t.AddRow(s.Dest, pct(s.SitePct), fmt.Sprint(s.Sites), fmt.Sprint(s.SourceCount))
	}
	t.Render(w)
	fmt.Fprintf(w, "\nheaviest edges (top %d):\n", topEdges)
	e := NewTable("source", "destination", "sites")
	for i, f := range flows {
		if i >= topEdges {
			break
		}
		e.AddRow(f.Source, f.Dest, fmt.Sprint(f.Sites))
	}
	e.Render(w)
}

// Fig6 renders continent flows and the inward-flow summary.
func Fig6(w io.Writer, flows []analysis.ContinentFlow) {
	fmt.Fprintln(w, "== Figure 6: flows across continents ==")
	t := NewTable("source", "destination", "sites")
	for _, f := range flows {
		t.AddRow(string(f.Source), string(f.Dest), fmt.Sprint(f.Sites))
	}
	t.Render(w)
	inward := analysis.InwardFlowContinents(flows)
	fmt.Fprintln(w, "\ninward flows (destination <- sources):")
	for _, cont := range geo.Continents() {
		srcs := inward[cont]
		if len(srcs) == 0 {
			fmt.Fprintf(w, "  %-13s <- (none)\n", cont)
			continue
		}
		names := make([]string, len(srcs))
		for i, s := range srcs {
			names[i] = string(s)
		}
		fmt.Fprintf(w, "  %-13s <- %s\n", cont, strings.Join(names, ", "))
	}
}

// Fig7 renders hosting-country domain counts.
func Fig7(w io.Writer, counts []analysis.HostingCount) {
	fmt.Fprintln(w, "== Figure 7: hosting countries of non-local tracking domains ==")
	t := NewTable("destination", "distinct tracking domains")
	for _, h := range counts {
		t.AddRow(h.Dest, fmt.Sprint(h.Domains))
	}
	t.Render(w)
}

// Fig8 renders organization flows.
func Fig8(w io.Writer, flows []analysis.OrgFlow, topOrgs int) {
	fmt.Fprintln(w, "== Figure 8: non-local tracking flows to organizations ==")
	totals := analysis.OrgTotals(flows)
	t := NewTable("organization", "sites")
	for i, o := range totals {
		if i >= topOrgs {
			break
		}
		t.AddRow(o.Org, fmt.Sprint(o.Sites))
	}
	t.Render(w)
	excl := analysis.ExclusiveOrgs(flows)
	if len(excl) > 0 {
		var orgs []string
		for org := range excl {
			orgs = append(orgs, org)
		}
		sort.Strings(orgs)
		fmt.Fprintln(w, "\norganizations observed in a single source country:")
		for _, org := range orgs {
			fmt.Fprintf(w, "  %s (only %s)\n", org, excl[org])
		}
	}
}

// Fig9 renders the most frequent non-local tracking domains per country.
func Fig9(w io.Writer, freqs []analysis.DomainFrequency, topPerCountry int) {
	fmt.Fprintln(w, "== Figure 9: frequency of non-local tracking domains ==")
	t := NewTable("country", "domain", "sites")
	for _, df := range freqs {
		type kv struct {
			d string
			n int
		}
		var list []kv
		for d, n := range df.Counts {
			list = append(list, kv{d, n})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].n != list[j].n {
				return list[i].n > list[j].n
			}
			return list[i].d < list[j].d
		})
		for i, e := range list {
			if i >= topPerCountry {
				break
			}
			t.AddRow(df.Country, e.d, fmt.Sprint(e.n))
		}
	}
	t.Render(w)
}

// Table1 renders the data-localization policy table.
func Table1(w io.Writer, rows []analysis.PolicyRow) {
	fmt.Fprintln(w, "== Table 1: data localization policy vs non-local rate ==")
	t := NewTable("country", "type", "enacted", "non-local", "note")
	for _, r := range rows {
		enacted := "Yes"
		if !r.Enacted {
			enacted = "No"
		}
		t.AddRow(r.Country, r.Type, enacted, pct(r.NonLocalPct), r.Note)
	}
	t.Render(w)
	if trend, err := analysis.PolicyTrend(rows); err == nil {
		fmt.Fprintf(w, "strictness vs non-local rate correlation: %.2f ", trend)
		if trend > 0 {
			fmt.Fprintln(w, "(weak positive: stricter countries show MORE non-local trackers — no obvious policy impact)")
		} else {
			fmt.Fprintln(w, "(no positive policy effect observed)")
		}
	}
	means := analysis.MeanByPolicyType(rows)
	var types []string
	for k := range means {
		types = append(types, k)
	}
	sort.Strings(types)
	for _, k := range types {
		fmt.Fprintf(w, "  mean non-local rate for %s countries: %.2f%%\n", k, means[k])
	}
}

// Ownership renders the §6.5 organization statistics.
func Ownership(w io.Writer, own analysis.OwnershipStats) {
	fmt.Fprintln(w, "== §6.5: organizations behind non-local trackers ==")
	fmt.Fprintf(w, "distinct owner organizations: %d\n", own.Orgs)
	type kv struct {
		cc string
		p  float64
	}
	var list []kv
	for cc, p := range own.HQSharePct {
		list = append(list, kv{cc, p})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].p != list[j].p {
			return list[i].p > list[j].p
		}
		return list[i].cc < list[j].cc
	})
	t := NewTable("HQ country", "share of orgs")
	for _, e := range list {
		t.AddRow(e.cc, pct(e.p))
	}
	t.Render(w)
	fmt.Fprintf(w, "third-party trackers hosted on AWS: %d, on Google Cloud: %d\n", own.AWSTrackers, own.GCPTrackers)
	if len(own.KenyaAWSOrgs) > 0 {
		fmt.Fprintf(w, "orgs served from Amazon addresses in Nairobi (UG/RW vantage): %s\n",
			strings.Join(own.KenyaAWSOrgs, ", "))
	}
}

// Cookies renders third-party cookie exposure per country.
func Cookies(w io.Writer, stats []analysis.CookieStats) {
	fmt.Fprintln(w, "== Third-party cookies (companion to the §3.2 gov-site motivation) ==")
	t := NewTable("country", "sites w/ 3p cookies", "gov sites w/ 3p cookies", "mean/site", "top cookie names")
	for _, c := range stats {
		t.AddRow(c.Country, pct(c.SitesWithThirdPartyCookiesPct),
			pct(c.GovSitesWithThirdPartyCookiesPct),
			fmt.Sprintf("%.1f", c.MeanThirdPartyCookiesPerSite),
			strings.Join(c.TopCookieNames, " "))
	}
	t.Render(w)
}

// Ablation renders the constraint-ablation experiment.
func Ablation(w io.Writer, metrics []ablation.Metrics) {
	fmt.Fprintln(w, "== Constraint ablation: what each §4.1 stage contributes ==")
	t := NewTable("variant", "retained", "precision", "dest accuracy", "recall")
	for _, m := range metrics {
		t.AddRow(m.Variant, fmt.Sprint(m.Retained),
			pct(m.PrecisionPct), pct(m.DestAccPct), pct(m.RecallPct))
	}
	t.Render(w)
	fmt.Fprintln(w, "precision = retained non-local servers that are truly foreign;")
	fmt.Fprintln(w, "recall    = truly-foreign observed servers that survive the cascade.")
}

// FirstParty renders the §6.7 statistics.
func FirstParty(w io.Writer, fp analysis.FirstPartyStats) {
	fmt.Fprintln(w, "== §6.7: first-party non-local trackers ==")
	fmt.Fprintf(w, "sites with non-local trackers: %d; embedding first-party non-local trackers: %d\n",
		fp.SitesWithNonLocal, fp.SitesWithFirstParty)
	type kv struct {
		org string
		n   int
	}
	var list []kv
	for org, n := range fp.ByOrg {
		list = append(list, kv{org, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].org < list[j].org
	})
	for _, e := range list {
		fmt.Fprintf(w, "  %s: %d site(s)\n", e.org, e.n)
	}
}
