package report

import (
	"fmt"
	"io"
	"sort"

	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/stats"
)

// CountryProfile renders a single-country deep dive: the per-country view
// an analyst (or the country's regulator, per §7's recommendations) would
// start from.
func CountryProfile(w io.Writer, cr *pipeline.CountryResult) {
	fmt.Fprintf(w, "== Country profile: %s (volunteer in %s) ==\n", cr.Country, cr.City.ID())
	fmt.Fprintf(w, "source traceroutes: %s; launched %d (reached %d); destination traces %d\n",
		cr.TraceOrigin, cr.Traces.SourceLaunched, cr.Traces.SourceReached, cr.Traces.DestLaunched)

	var regTot, regHit, govTot, govHit, loaded int
	destSites := map[string]int{}
	orgSites := map[string]int{}
	domainFreq := map[string]int{}
	var perSite []float64
	for _, s := range cr.Sites {
		if !s.LoadOK {
			continue
		}
		loaded++
		nl := s.NonLocalTrackers()
		if s.Kind == core.KindGovernment {
			govTot++
			if len(nl) > 0 {
				govHit++
			}
		} else {
			regTot++
			if len(nl) > 0 {
				regHit++
			}
		}
		if len(nl) > 0 {
			perSite = append(perSite, float64(len(nl)))
		}
		seenDest, seenOrg := map[string]bool{}, map[string]bool{}
		for _, d := range nl {
			domainFreq[d.Domain]++
			if !seenDest[d.DestCountry] {
				seenDest[d.DestCountry] = true
				destSites[d.DestCountry]++
			}
			org := d.Org
			if org == "" {
				org = "(unknown)"
			}
			if !seenOrg[org] {
				seenOrg[org] = true
				orgSites[org]++
			}
		}
	}
	fmt.Fprintf(w, "targets %d (opt-outs %d), loaded %d\n", cr.Targets, cr.OptOuts, loaded)
	fmt.Fprintf(w, "sites with non-local trackers: regional %.1f%% (%d/%d), government %.1f%% (%d/%d)\n",
		stats.Percent(regHit, regTot), regHit, regTot,
		stats.Percent(govHit, govTot), govHit, govTot)
	if len(perSite) > 0 {
		b := stats.NewBoxPlot(perSite)
		fmt.Fprintf(w, "non-local tracker domains per tracking site: median %.1f, mean %.1f (σ %.1f), max %.0f\n",
			b.Median, b.Mean, b.StdDev, maxOf(perSite))
	}

	writeTop := func(title string, m map[string]int, n int) {
		type kv struct {
			k string
			v int
		}
		var list []kv
		for k, v := range m {
			list = append(list, kv{k, v})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].v != list[j].v {
				return list[i].v > list[j].v
			}
			return list[i].k < list[j].k
		})
		fmt.Fprintf(w, "\n%s:\n", title)
		for i, e := range list {
			if i >= n {
				break
			}
			fmt.Fprintf(w, "  %-40s %d\n", e.k, e.v)
		}
	}
	writeTop("top destination countries (by sites)", destSites, 8)
	writeTop("top organizations (by sites)", orgSites, 8)
	writeTop("most frequent non-local tracking domains", domainFreq, 8)

	// Discard accounting for transparency about what the constraints cost.
	if len(cr.Funnel.ByStage) > 0 {
		fmt.Fprintln(w, "\nconstraint discards:")
		var stages []string
		for st := range cr.Funnel.ByStage {
			stages = append(stages, string(st))
		}
		sort.Strings(stages)
		for _, st := range stages {
			fmt.Fprintf(w, "  %-38s %d\n", st, cr.Funnel.ByStage[geoloc.Stage(st)])
		}
	}
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
