package report

import (
	"strings"
	"testing"

	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/pipeline"
	"github.com/gamma-suite/gamma/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("country", "sites")
	tab.AddRow("PK", "50")
	tab.AddRow("NZ", "100")
	tab.AddRow("GB") // short row padded
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "country") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
}

func TestFunnelRender(t *testing.T) {
	var sb strings.Builder
	Funnel(&sb, pipeline.Funnel{Targets: 2005, NonLocalClaimed: 14000, AfterSOL: 6100, AfterRDNS: 4700, Trackers: 2700})
	out := sb.String()
	for _, want := range []string{"2005", "14000", "6100", "4700", "2700", "reverse-DNS"} {
		if !strings.Contains(out, want) {
			t.Errorf("funnel output missing %q", want)
		}
	}
}

func TestBoxPlotASCII(t *testing.T) {
	b := stats.NewBoxPlot([]float64{1, 2, 3, 4, 5, 30})
	s := boxPlotASCII(b, 30, 40)
	if len(s) != 40 {
		t.Fatalf("width = %d", len(s))
	}
	if !strings.Contains(s, "M") {
		t.Error("median marker missing")
	}
	if !strings.Contains(s, "*") {
		t.Error("outlier marker missing")
	}
	empty := boxPlotASCII(stats.BoxPlot{}, 10, 20)
	if !strings.Contains(empty, "no sites") {
		t.Error("empty plot placeholder missing")
	}
}

func TestFigureRenderersDoNotPanic(t *testing.T) {
	var sb strings.Builder
	prev := []analysis.Prevalence{{Country: "PK", RegionalPct: 68, GovernmentPct: 63, OverallPct: 65.7},
		{Country: "NZ", RegionalPct: 81, GovernmentPct: 85, OverallPct: 83.5}}
	Fig2(&sb, []analysis.Composition{{Country: "PK", Regional: 50, Government: 50}},
		[]analysis.LoadSuccess{{Country: "PK", Pct: 89.8}})
	Fig3(&sb, prev)
	Fig4(&sb, []analysis.Distribution{{Country: "PK", Combined: stats.NewBoxPlot([]float64{1, 5, 7})}})
	Fig5(&sb, []analysis.DestShare{{Dest: "FR", SitePct: 43, Sites: 100, SourceCount: 15}},
		[]analysis.Flow{{Source: "PK", Dest: "FR", Sites: 40}}, 5)
	Fig6(&sb, []analysis.ContinentFlow{{Source: "Asia", Dest: "Europe", Sites: 100}})
	Fig7(&sb, []analysis.HostingCount{{Dest: "KE", Domains: 210}})
	Fig8(&sb, []analysis.OrgFlow{{Source: "PK", Org: "Google", Sites: 40}, {Source: "JO", Org: "Jubnaadserve", Sites: 3}}, 10)
	Fig9(&sb, []analysis.DomainFrequency{{Country: "PK", Counts: map[string]int{"x.doubleclick.net": 12}}}, 3)
	Table1(&sb, []analysis.PolicyRow{
		{Country: "AZ", Type: "CS", Enacted: true, NonLocalPct: 74.39},
		{Country: "US", Type: "TA", Enacted: true, NonLocalPct: 0},
		{Country: "LB", Type: "NR", Enacted: true, NonLocalPct: 20.24},
	})
	Ownership(&sb, analysis.OwnershipStats{Orgs: 70, HQSharePct: map[string]float64{"US": 50}, AWSTrackers: 50, GCPTrackers: 5, KenyaAWSOrgs: []string{"SpotIM"}})
	FirstParty(&sb, analysis.FirstPartyStats{SitesWithNonLocal: 575, SitesWithFirstParty: 23, ByOrg: map[string]int{"Google": 12}})
	out := sb.String()
	for _, want := range []string{
		"Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Table 1",
		"Jubnaadserve (only JO)", "Pearson correlation",
		"strictness vs non-local rate",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("combined output missing %q", want)
		}
	}
}
