package report_test

import (
	"context"
	"strings"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/report"
)

func TestCountryProfile(t *testing.T) {
	w, err := gamma.NewWorld(17)
	if err != nil {
		t.Fatal(err)
	}
	sels, err := gamma.SelectTargets(w)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := gamma.RunVolunteer(context.Background(), w, "PK", sels["PK"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := gamma.Analyze(w, []*core.Dataset{ds})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	report.CountryProfile(&sb, res.Countries["PK"])
	out := sb.String()
	for _, want := range []string{
		"Country profile: PK",
		"Karachi, PK",
		"sites with non-local trackers",
		"top destination countries",
		"top organizations",
		"constraint discards",
		"Google",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q", want)
		}
	}
}
