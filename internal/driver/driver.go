// Package driver declares the portability boundary of the Gamma suite:
// the interfaces a volunteer's machine implements (C1 browser sessions,
// C2 forward/reverse DNS, C3 active probes) and the records they produce.
// In the field these are Selenium, the system resolver, and the OS
// traceroute/tracert tools; in this repository they are backed by the
// simulation substrates and, for fault testing, by the sched package's
// flaky decorators.
//
// The package is a dependency leaf (it imports only tracert for the
// normalized probe schema) so that both gammacore and the scheduler can
// reference the same driver contracts without an import cycle.
package driver

import (
	"context"
	"errors"
	"net/netip"

	"github.com/gamma-suite/gamma/internal/tracert"
)

// RequestRecord is one network request observed during a page load.
type RequestRecord struct {
	URL       string `json:"url"`
	Domain    string `json:"domain"`
	Type      string `json:"type"`
	Initiator string `json:"initiator"`
	Blocked   bool   `json:"blocked,omitempty"`
	// ThirdParty marks requests to a different site than the page.
	ThirdParty bool `json:"third_party,omitempty"`
	// SetCookies names cookies the response set.
	SetCookies []string `json:"set_cookies,omitempty"`
}

// PageRecord is the C1 outcome for one target site.
type PageRecord struct {
	Site       string          `json:"site"`
	URL        string          `json:"url"`
	OK         bool            `json:"ok"`
	FailReason string          `json:"fail_reason,omitempty"`
	DurationMs float64         `json:"duration_ms"`
	Requests   []RequestRecord `json:"requests,omitempty"`
}

// Browser drives isolated browser sessions (C1).
type Browser interface {
	Load(ctx context.Context, siteDomain string) (PageRecord, error)
}

// Resolver performs forward and reverse DNS (C2).
type Resolver interface {
	Resolve(ctx context.Context, domain string) (netip.Addr, error)
	Reverse(ctx context.Context, addr netip.Addr) (string, bool)
}

// ChainResolver is an optional Resolver capability: it reports the CNAME
// chain a resolution traversed. Gamma records chains when available — they
// are how the pipeline detects CNAME-cloaked trackers.
type ChainResolver interface {
	ResolveChain(ctx context.Context, domain string) (netip.Addr, []string, error)
}

// Prober launches active measurement probes (C3). Implementations shell
// out to OS-specific tools; results arrive already normalized through the
// tracert portability layer.
type Prober interface {
	Traceroute(ctx context.Context, dst netip.Addr) (tracert.Normalized, error)
}

// faultError marks a transient infrastructure failure.
type faultError struct{ err error }

// Error returns the wrapped error's text unchanged: the marker is
// transparent so recorded error strings are identical with and without it.
func (e *faultError) Error() string { return e.err.Error() }

func (e *faultError) Unwrap() error { return e.err }

// Fault marks err as a transient driver/infrastructure failure — the
// measurement could not be carried out (browser crashed, resolver
// unreachable, probe socket error) — as opposed to a negative measurement
// *result* such as NXDOMAIN, which is data the suite records. The suite
// retries faults and aborts the target when they persist; it never writes
// them into a dataset.
func Fault(err error) error {
	if err == nil {
		return nil
	}
	return &faultError{err: err}
}

// IsFault reports whether any error in err's chain was marked with Fault.
func IsFault(err error) bool {
	var f *faultError
	return errors.As(err, &f)
}
