// Package sched is the deterministic, fault-tolerant work scheduler behind
// Gamma's study campaigns. The paper's field deployment ran on flaky
// volunteer machines across 23 countries — page loads fail, probes time
// out, volunteers drop mid-run — so campaign execution needs bounded
// workers, per-unit timeouts, retry with backoff, and partial-result
// aggregation rather than all-or-nothing fan-outs.
//
// Everything stochastic is deterministic: backoff delays and jitter are
// drawn from internal/rng streams keyed by unit ID and attempt number, and
// time is an injectable Clock, so identical seeds produce byte-identical
// campaign results regardless of worker count — and tests never sleep.
//
// The package also ships fault-injection decorators (FlakyBrowser,
// FlakyResolver, FlakyProber) wrapping the driver interfaces, with failure
// draws keyed the same way, so transient-failure behaviour is testable end
// to end: a faulty run that retries to success is byte-identical to the
// fault-free run.
package sched

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Unit is one schedulable piece of work. ID must be stable across runs —
// it keys every stochastic draw (backoff jitter) the scheduler makes for
// the unit, which is what makes campaigns reproducible.
type Unit[T any] struct {
	ID  string
	Run func(ctx context.Context) (T, error)
}

// Options tunes a Pool.
type Options struct {
	// Workers bounds concurrent units; <= 0 means 1.
	Workers int
	// Timeout bounds one attempt of one unit; 0 means no bound. Expired
	// attempts count as transient failures and are retried under Retry.
	Timeout time.Duration
	// Retry is the per-unit retry policy (zero value: single attempt).
	Retry RetryPolicy
	// Seed keys the deterministic backoff jitter draws.
	Seed uint64
	// Clock paces timeouts and backoff; nil uses the wall clock.
	Clock Clock
	// FailFast cancels outstanding work (in-flight attempts via a derived
	// context, queued units by skipping them) after the first terminal
	// unit failure. Completed results are kept either way.
	FailFast bool
}

// ErrAttemptTimeout marks an attempt abandoned after Options.Timeout.
var ErrAttemptTimeout = fmt.Errorf("sched: attempt timed out")

// Outcome records how one unit fared.
type Outcome struct {
	ID       string
	Attempts int           // attempts actually made (0 when skipped)
	Latency  time.Duration // first attempt start to terminal outcome, incl. backoff
	Backoff  time.Duration // total backoff waited between attempts
	Err      error         // terminal error; nil on success
	Skipped  bool          // never attempted (pool cancelled before start)
}

// OK reports whether the unit completed successfully.
func (o Outcome) OK() bool { return !o.Skipped && o.Err == nil }

// Result pairs a unit's value with its outcome. Results are indexed like
// the submitted units, never by completion order.
type Result[T any] struct {
	Value T
	Outcome
}

// Stats is a snapshot of pool counters; safe to read while a run is in
// flight.
type Stats struct {
	Units     int // units submitted
	Succeeded int
	Failed    int // terminal failures (attempts exhausted or permanent)
	Skipped   int // never attempted due to cancellation
	Attempts  int // total attempts across all units
	Retries   int // attempts beyond each unit's first
	// TotalLatency sums per-unit latencies; TotalBackoff sums backoff
	// waits (virtual time under a fake clock).
	TotalLatency time.Duration
	TotalBackoff time.Duration
}

// Pool schedules units over a bounded worker set. A pool may run several
// batches; Stats accumulate across them.
type Pool[T any] struct {
	opts  Options
	clock Clock

	mu    sync.Mutex
	stats Stats
}

// New builds a pool. The zero Options value gives a serial, single-attempt
// scheduler on the wall clock.
func New[T any](opts Options) *Pool[T] {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	clk := opts.Clock
	if clk == nil {
		clk = Wall()
	}
	return &Pool[T]{opts: opts, clock: clk}
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool[T]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Run schedules every unit and blocks until all have a terminal outcome
// (success, exhausted retries, or skipped after cancellation). The
// returned slice is indexed like units. The error is the parent context's
// error, if any; per-unit failures are reported in the outcomes so callers
// aggregate partial results instead of discarding completed work.
func (p *Pool[T]) Run(ctx context.Context, units []Unit[T]) ([]Result[T], error) {
	results := make([]Result[T], len(units))
	p.mu.Lock()
	p.stats.Units += len(units)
	p.mu.Unlock()

	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < p.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = p.runUnit(rctx, units[i])
				if p.opts.FailFast && !results[i].Skipped && results[i].Err != nil {
					cancel(results[i].Err)
				}
			}
		}()
	}
	for i := range units {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, ctx.Err()
}

// runUnit drives one unit to a terminal outcome.
func (p *Pool[T]) runUnit(ctx context.Context, u Unit[T]) Result[T] {
	res := Result[T]{Outcome: Outcome{ID: u.ID}}
	if ctx.Err() != nil {
		res.Skipped = true
		res.Err = ctx.Err()
		p.account(res.Outcome)
		return res
	}
	start := p.clock.Now()
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		v, err := p.attempt(ctx, u)
		res.Err = err
		if err == nil {
			res.Value = v
			break
		}
		if !retryable(err) || attempt >= p.opts.Retry.attempts() {
			break
		}
		if d := p.opts.Retry.Delay(p.opts.Seed, u.ID, attempt); d > 0 {
			res.Backoff += d
			select {
			case <-p.clock.After(d):
			case <-ctx.Done():
				res.Err = ctx.Err()
				p.finish(&res, start)
				return res
			}
		}
	}
	p.finish(&res, start)
	return res
}

func (p *Pool[T]) finish(res *Result[T], start time.Time) {
	res.Latency = p.clock.Now().Sub(start)
	p.account(res.Outcome)
}

// attempt runs one attempt, bounded by Options.Timeout when set. On
// timeout the attempt's context is cancelled and the (abandoned) work is
// left to unwind on its own; well-behaved units honor their context.
func (p *Pool[T]) attempt(ctx context.Context, u Unit[T]) (T, error) {
	if p.opts.Timeout <= 0 {
		return u.Run(ctx)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		v, err := u.Run(actx)
		done <- outcome{v, err}
	}()
	select {
	case o := <-done:
		return o.v, o.err
	case <-p.clock.After(p.opts.Timeout):
		cancel()
		var zero T
		return zero, fmt.Errorf("sched: unit %q exceeded %v: %w", u.ID, p.opts.Timeout, ErrAttemptTimeout)
	case <-ctx.Done():
		cancel()
		var zero T
		return zero, ctx.Err()
	}
}

func (p *Pool[T]) account(o Outcome) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch {
	case o.Skipped:
		p.stats.Skipped++
	case o.Err != nil:
		p.stats.Failed++
	default:
		p.stats.Succeeded++
	}
	p.stats.Attempts += o.Attempts
	if o.Attempts > 1 {
		p.stats.Retries += o.Attempts - 1
	}
	p.stats.TotalLatency += o.Latency
	p.stats.TotalBackoff += o.Backoff
}
