package sched

import (
	"context"
	"fmt"
	"net/netip"
	"strconv"
	"sync"

	"github.com/gamma-suite/gamma/internal/driver"
	"github.com/gamma-suite/gamma/internal/rng"
	"github.com/gamma-suite/gamma/internal/tracert"
)

// faultSource draws deterministic transient failures. Each (kind, key)
// pair carries its own call counter, and every draw is keyed by
// (seed, scope, kind, key, call#) — so a flaky operation fails on a
// reproducible subset of its calls but never forever (for rates < 1 a
// retried call eventually draws success), and two runs with the same seed
// inject the exact same fault pattern.
type faultSource struct {
	seed  uint64
	scope string
	rate  float64

	mu    sync.Mutex
	calls map[string]int
	drawn int
	fired int
}

func newFaultSource(seed uint64, scope string, rate float64) *faultSource {
	return &faultSource{seed: seed, scope: scope, rate: rate, calls: make(map[string]int)}
}

// draw returns a transient fault error for this call, or nil.
func (f *faultSource) draw(kind, key string) error {
	f.mu.Lock()
	ck := kind + "\x00" + key
	n := f.calls[ck]
	f.calls[ck] = n + 1
	f.drawn++
	f.mu.Unlock()
	r := rng.New(f.seed, "sched-fault", f.scope, kind, key, strconv.Itoa(n))
	if !rng.Bernoulli(r, f.rate) {
		return nil
	}
	f.mu.Lock()
	f.fired++
	f.mu.Unlock()
	return driver.Fault(fmt.Errorf("sched: injected transient %s fault (%s, call %d)", kind, key, n))
}

func (f *faultSource) counts() (drawn, fired int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drawn, f.fired
}

// FlakyBrowser wraps a driver.Browser, failing each Load with the given
// probability. Failures are marked with driver.Fault, so the suite retries
// them instead of recording them; because the underlying simulated drivers
// are stateless per call, a retried load returns exactly the record the
// fault-free run would have.
type FlakyBrowser struct {
	inner driver.Browser
	f     *faultSource
}

// NewFlakyBrowser decorates inner. scope should identify the volunteer so
// concurrent volunteers draw from independent fault streams.
func NewFlakyBrowser(inner driver.Browser, seed uint64, scope string, rate float64) *FlakyBrowser {
	return &FlakyBrowser{inner: inner, f: newFaultSource(seed, scope, rate)}
}

// Load implements driver.Browser.
func (b *FlakyBrowser) Load(ctx context.Context, site string) (driver.PageRecord, error) {
	if err := b.f.draw("browser", site); err != nil {
		return driver.PageRecord{}, err
	}
	return b.inner.Load(ctx, site)
}

// FaultCounts reports draws made and faults fired, for test assertions.
func (b *FlakyBrowser) FaultCounts() (drawn, fired int) { return b.f.counts() }

// FlakyResolver wraps a driver.Resolver, failing each forward resolution
// with the given probability. Reverse lookups are never faulted: the
// Resolver interface gives them no error channel, so an injected failure
// would silently alter recorded data instead of triggering a retry.
type FlakyResolver struct {
	inner driver.Resolver
	f     *faultSource
}

// flakyChainResolver additionally forwards the ChainResolver capability.
// Wrapping must not hide it: the suite records CNAME chains only when the
// capability is present, and losing it would change dataset bytes.
type flakyChainResolver struct {
	*FlakyResolver
	chain driver.ChainResolver
}

// NewFlakyResolver decorates inner, preserving its optional ChainResolver
// capability.
func NewFlakyResolver(inner driver.Resolver, seed uint64, scope string, rate float64) driver.Resolver {
	fr := &FlakyResolver{inner: inner, f: newFaultSource(seed, scope, rate)}
	if cr, ok := inner.(driver.ChainResolver); ok {
		return &flakyChainResolver{FlakyResolver: fr, chain: cr}
	}
	return fr
}

// Resolve implements driver.Resolver.
func (r *FlakyResolver) Resolve(ctx context.Context, domain string) (netip.Addr, error) {
	if err := r.f.draw("resolver", domain); err != nil {
		return netip.Addr{}, err
	}
	return r.inner.Resolve(ctx, domain)
}

// Reverse implements driver.Resolver (never faulted; see type comment).
func (r *FlakyResolver) Reverse(ctx context.Context, addr netip.Addr) (string, bool) {
	return r.inner.Reverse(ctx, addr)
}

// FaultCounts reports draws made and faults fired, for test assertions.
func (r *FlakyResolver) FaultCounts() (drawn, fired int) { return r.f.counts() }

// ResolveChain implements driver.ChainResolver, sharing the per-domain
// fault stream with Resolve.
func (r *flakyChainResolver) ResolveChain(ctx context.Context, domain string) (netip.Addr, []string, error) {
	if err := r.f.draw("resolver", domain); err != nil {
		return netip.Addr{}, nil, err
	}
	return r.chain.ResolveChain(ctx, domain)
}

// FlakyProber wraps a driver.Prober, failing each traceroute launch with
// the given probability.
type FlakyProber struct {
	inner driver.Prober
	f     *faultSource
}

// NewFlakyProber decorates inner.
func NewFlakyProber(inner driver.Prober, seed uint64, scope string, rate float64) *FlakyProber {
	return &FlakyProber{inner: inner, f: newFaultSource(seed, scope, rate)}
}

// Traceroute implements driver.Prober.
func (p *FlakyProber) Traceroute(ctx context.Context, dst netip.Addr) (tracert.Normalized, error) {
	if err := p.f.draw("prober", dst.String()); err != nil {
		return tracert.Normalized{}, err
	}
	return p.inner.Traceroute(ctx, dst)
}

// FaultCounts reports draws made and faults fired, for test assertions.
func (p *FlakyProber) FaultCounts() (drawn, fired int) { return p.f.counts() }
