package sched

import (
	"context"
	"fmt"
	"net/netip"
	"testing"

	"github.com/gamma-suite/gamma/internal/driver"
	"github.com/gamma-suite/gamma/internal/tracert"
)

type stubBrowser struct{ loads int }

func (b *stubBrowser) Load(_ context.Context, site string) (driver.PageRecord, error) {
	b.loads++
	return driver.PageRecord{Site: site}, nil
}

type stubResolver struct{ resolves int }

func (r *stubResolver) Resolve(context.Context, string) (netip.Addr, error) {
	r.resolves++
	return netip.MustParseAddr("192.0.2.1"), nil
}

func (r *stubResolver) Reverse(context.Context, netip.Addr) (string, bool) { return "cdn.test", true }

// stubChainResolver adds the optional ChainResolver capability.
type stubChainResolver struct{ stubResolver }

func (r *stubChainResolver) ResolveChain(context.Context, string) (netip.Addr, []string, error) {
	r.resolves++
	return netip.MustParseAddr("192.0.2.1"), []string{"a.test", "b.test"}, nil
}

type stubProber struct{ traces int }

func (p *stubProber) Traceroute(_ context.Context, dst netip.Addr) (tracert.Normalized, error) {
	p.traces++
	return tracert.Normalized{Target: dst.String()}, nil
}

func TestFlakyBrowserRateZeroAndOne(t *testing.T) {
	ctx := context.Background()
	inner := &stubBrowser{}
	never := NewFlakyBrowser(inner, 1, "v/US", 0)
	for i := 0; i < 10; i++ {
		if _, err := never.Load(ctx, "site.test"); err != nil {
			t.Fatalf("rate 0 faulted: %v", err)
		}
	}
	always := NewFlakyBrowser(&stubBrowser{}, 1, "v/US", 1)
	_, err := always.Load(ctx, "site.test")
	if err == nil {
		t.Fatal("rate 1 must fault")
	}
	if !driver.IsFault(err) {
		t.Errorf("injected failure must carry the driver.Fault marker: %v", err)
	}
	if drawn, fired := always.FaultCounts(); drawn != 1 || fired != 1 {
		t.Errorf("counts = (%d, %d)", drawn, fired)
	}
}

func TestFlakyBrowserDeterministicPerCallCounter(t *testing.T) {
	ctx := context.Background()
	pattern := func() []bool {
		fb := NewFlakyBrowser(&stubBrowser{}, 42, "v/DE", 0.5)
		var p []bool
		for i := 0; i < 32; i++ {
			_, err := fb.Load(ctx, "news.test")
			p = append(p, err != nil)
		}
		return p
	}
	a, b := pattern(), pattern()
	var flips, fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: fault pattern not reproducible", i)
		}
		if i > 0 && a[i] != a[i-1] {
			flips++
		}
		if a[i] {
			fails++
		}
	}
	// The per-call counter must vary the draw: at rate 0.5 over 32 calls a
	// constant pattern (counter ignored) is astronomically unlikely.
	if flips == 0 {
		t.Error("fault draws ignore the call counter: same site always draws the same outcome")
	}
	if fails == 0 || fails == 32 {
		t.Errorf("fault rate 0.5 produced %d/32 failures", fails)
	}
}

func TestFlakyResolverPreservesChainCapability(t *testing.T) {
	ctx := context.Background()
	plain := NewFlakyResolver(&stubResolver{}, 1, "v/JP", 0)
	if _, ok := plain.(driver.ChainResolver); ok {
		t.Error("wrapping a plain resolver must not invent ChainResolver")
	}
	wrapped := NewFlakyResolver(&stubChainResolver{}, 1, "v/JP", 0)
	cr, ok := wrapped.(driver.ChainResolver)
	if !ok {
		t.Fatal("wrapping a ChainResolver must preserve the capability")
	}
	_, chain, err := cr.ResolveChain(ctx, "cdn.test")
	if err != nil || len(chain) != 2 {
		t.Fatalf("ResolveChain = (%v, %v)", chain, err)
	}
}

func TestFlakyResolverNeverFaultsReverse(t *testing.T) {
	fr := NewFlakyResolver(&stubResolver{}, 1, "v/BR", 1)
	if _, err := fr.Resolve(context.Background(), "x.test"); !driver.IsFault(err) {
		t.Fatalf("Resolve at rate 1 should fault: %v", err)
	}
	name, ok := fr.Reverse(context.Background(), netip.MustParseAddr("192.0.2.1"))
	if !ok || name != "cdn.test" {
		t.Error("Reverse has no error channel and must never be faulted")
	}
}

func TestFlakyProberFaultsAreTransient(t *testing.T) {
	ctx := context.Background()
	inner := &stubProber{}
	fp := NewFlakyProber(inner, 7, "v/KE", 0.5)
	dst := netip.MustParseAddr("203.0.113.9")
	// Retrying the same destination advances the per-call counter, so a
	// rate-0.5 fault stream cannot fail forever.
	ok := false
	for i := 0; i < 64 && !ok; i++ {
		if _, err := fp.Traceroute(ctx, dst); err == nil {
			ok = true
		} else if !driver.IsFault(err) {
			t.Fatalf("non-fault error: %v", err)
		}
	}
	if !ok {
		t.Fatal("64 retries at rate 0.5 never succeeded — counter not advancing")
	}
	drawn, fired := fp.FaultCounts()
	if drawn < 1 || fired != drawn-1 {
		t.Errorf("counts = (%d, %d): want every draw but the last to fire", drawn, fired)
	}
}

func TestFaultMarkerTransparent(t *testing.T) {
	base := fmt.Errorf("connection reset")
	f := driver.Fault(base)
	if f.Error() != base.Error() {
		t.Errorf("Fault must not change error text: %q", f.Error())
	}
	if !driver.IsFault(f) || driver.IsFault(base) {
		t.Error("IsFault misclassifies")
	}
	if driver.Fault(nil) != nil {
		t.Error("Fault(nil) must be nil")
	}
}

func TestFaultScopesAreIndependent(t *testing.T) {
	ctx := context.Background()
	pattern := func(scope string) []bool {
		fb := NewFlakyBrowser(&stubBrowser{}, 42, scope, 0.5)
		var p []bool
		for i := 0; i < 32; i++ {
			_, err := fb.Load(ctx, "ads.test")
			p = append(p, err != nil)
		}
		return p
	}
	us, de := pattern("volunteer/US"), pattern("volunteer/DE")
	same := true
	for i := range us {
		if us[i] != de[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different volunteer scopes drew identical fault streams")
	}
}
