package sched

import (
	"sync"
	"time"
)

// Clock abstracts time for the scheduler: Now stamps outcomes, After paces
// retry backoff and attempt timeouts. Production code uses Wall; tests use
// FakeClock so no test ever sleeps on the wall clock.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Wall returns the real-time clock.
func Wall() Clock { return wallClock{} }

// FakeClock is a manually driven clock for deterministic tests. Goroutines
// that call After block until the test Advances virtual time past their
// deadline; BlockUntilWaiters lets the test rendezvous with them without
// polling or sleeping.
type FakeClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a fake clock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	c := &FakeClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After returns a channel that fires once virtual time advances by d.
// Non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, &fakeWaiter{at: c.now.Add(d), ch: ch})
	c.cond.Broadcast()
	return ch
}

// Advance moves virtual time forward by d, firing every waiter whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setLocked(c.now.Add(d))
}

// AdvanceToNext jumps to the earliest pending deadline and returns the
// step taken (0 when no waiter is pending).
func (c *FakeClock) AdvanceToNext() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.waiters) == 0 {
		return 0
	}
	next := c.waiters[0].at
	for _, w := range c.waiters[1:] {
		if w.at.Before(next) {
			next = w.at
		}
	}
	step := next.Sub(c.now)
	c.setLocked(next)
	return step
}

func (c *FakeClock) setLocked(t time.Time) {
	c.now = t
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// Waiters reports how many goroutines are blocked in After.
func (c *FakeClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// BlockUntilWaiters blocks until at least n goroutines are waiting in
// After. It synchronizes on a condition variable — no polling, no sleeps.
func (c *FakeClock) BlockUntilWaiters(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.waiters) < n {
		c.cond.Wait()
	}
}
