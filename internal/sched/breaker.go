package sched

import (
	"sync/atomic"
	"time"
)

// BreakerState is one of the three circuit-breaker states.
type BreakerState int32

const (
	// BreakerClosed passes every request through; consecutive failures
	// are counted and trip the breaker open at the configured threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every request until the cooldown
	// elapses on the injected clock.
	BreakerOpen
	// BreakerHalfOpen admits a single trial request; its outcome decides
	// between re-closing and re-opening.
	BreakerHalfOpen
)

// String renders the state for metrics payloads.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip a closed
	// breaker open; <= 0 uses 5.
	FailureThreshold int
	// Cooldown is how long an open breaker short-circuits before
	// admitting a half-open trial; <= 0 uses 10s.
	Cooldown time.Duration
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	return cfg
}

// Breaker is a circuit breaker over one failable resource: closed while
// the resource behaves, open after FailureThreshold consecutive
// failures, half-open (one trial request) after the cooldown. All time
// is read from the Clock passed at each call — never the wall — so the
// full state machine is driven deterministically by a FakeClock in
// tests, and the closed-state fast path performs no clock read at all.
//
// The state lives in plain atomics: Allow/Success/Failure are safe for
// concurrent use and never allocate. Concurrent callers racing a state
// transition may, at worst, admit one extra trial request — the counters
// never lose a transition. A Breaker must not be copied after first use.
type Breaker struct {
	cfg BreakerConfig

	state    atomic.Int32  // BreakerState
	fails    atomic.Int32  // consecutive failures while closed
	openedAt atomic.Int64  // clock nanos at the transition into open
	trial    atomic.Bool   // half-open: a trial request is in flight
	trips    atomic.Uint64 // total closed/half-open → open transitions
}

// Configure normalizes and installs the config. It is called once,
// before the breaker sees traffic; NewBreaker does it for callers that
// want a standalone breaker rather than a slice element.
func (b *Breaker) Configure(cfg BreakerConfig) { b.cfg = cfg.withDefaults() }

// NewBreaker returns a configured breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{}
	b.Configure(cfg)
	return b
}

// State reports the current state.
func (b *Breaker) State() BreakerState { return BreakerState(b.state.Load()) }

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() uint64 { return b.trips.Load() }

// Allow reports whether a request may proceed. When it returns false,
// retryAfter is how long the caller should wait before trying again —
// the remaining cooldown of an open breaker, or the full cooldown while
// a half-open trial is pending. The closed-state path is one atomic
// load; the clock is consulted only once the breaker has opened.
func (b *Breaker) Allow(clock Clock) (ok bool, retryAfter time.Duration) {
	switch BreakerState(b.state.Load()) {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		elapsed := clock.Now().UnixNano() - b.openedAt.Load()
		if remain := b.cfg.Cooldown - time.Duration(elapsed); remain > 0 {
			return false, remain
		}
		// Cooldown over: this request becomes the half-open trial. The
		// CAS loser stays shut out until the trial resolves.
		if b.state.CompareAndSwap(int32(BreakerOpen), int32(BreakerHalfOpen)) {
			b.trial.Store(true)
			return true, 0
		}
		return false, b.cfg.Cooldown
	default: // BreakerHalfOpen
		if b.trial.CompareAndSwap(false, true) {
			return true, 0
		}
		return false, b.cfg.Cooldown
	}
}

// Success records a request the resource answered. A half-open trial
// success re-closes the breaker; in the closed state the consecutive-
// failure count is reset (write elided when already zero, keeping the
// steady state read-only).
func (b *Breaker) Success() {
	if BreakerState(b.state.Load()) == BreakerHalfOpen {
		b.fails.Store(0)
		b.trial.Store(false)
		b.state.Store(int32(BreakerClosed))
		return
	}
	if b.fails.Load() != 0 {
		b.fails.Store(0)
	}
}

// Failure records a failed request. The threshold'th consecutive
// failure while closed — or any failure of a half-open trial — opens
// the breaker and stamps the cooldown start from the injected clock.
func (b *Breaker) Failure(clock Clock) {
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		b.open(clock)
	case BreakerClosed:
		if int(b.fails.Add(1)) >= b.cfg.FailureThreshold {
			if b.state.CompareAndSwap(int32(BreakerClosed), int32(BreakerOpen)) {
				b.openedAt.Store(clock.Now().UnixNano())
				b.fails.Store(0)
				b.trips.Add(1)
			}
		}
	}
}

// open transitions half-open → open after a failed trial.
func (b *Breaker) open(clock Clock) {
	b.openedAt.Store(clock.Now().UnixNano())
	b.trial.Store(false)
	if b.state.CompareAndSwap(int32(BreakerHalfOpen), int32(BreakerOpen)) {
		b.trips.Add(1)
	}
}
