package sched

import (
	"testing"
	"time"
)

func TestBreakerLifecycleExactTransitions(t *testing.T) {
	clock := NewFakeClock(time.Unix(1700000000, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 30 * time.Second})

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Failures below the threshold leave the breaker closed and admitting.
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(clock); !ok {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Failure(clock)
		if b.State() != BreakerClosed {
			t.Fatalf("after %d failures state = %v, want closed", i+1, b.State())
		}
	}
	// A success resets the consecutive count: two more failures still
	// don't trip it, the third does.
	b.Success()
	b.Failure(clock)
	b.Failure(clock)
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	b.Failure(clock)
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("threshold'th failure: state = %v, trips = %d", b.State(), b.Trips())
	}

	// Open: denied, with the remaining cooldown as retry hint.
	if ok, retry := b.Allow(clock); ok || retry != 30*time.Second {
		t.Fatalf("open breaker: ok=%v retry=%v", ok, retry)
	}
	clock.Advance(10 * time.Second)
	if ok, retry := b.Allow(clock); ok || retry != 20*time.Second {
		t.Fatalf("open breaker mid-cooldown: ok=%v retry=%v", ok, retry)
	}

	// Cooldown elapses: exactly one trial is admitted, others shut out.
	clock.Advance(20 * time.Second)
	if ok, _ := b.Allow(clock); !ok {
		t.Fatal("cooldown elapsed but no trial admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after trial admission = %v", b.State())
	}
	if ok, retry := b.Allow(clock); ok || retry != 30*time.Second {
		t.Fatalf("second request during trial: ok=%v retry=%v", ok, retry)
	}

	// The trial fails: re-open, cooldown restarts from now.
	b.Failure(clock)
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed trial: state = %v, trips = %d", b.State(), b.Trips())
	}
	if ok, retry := b.Allow(clock); ok || retry != 30*time.Second {
		t.Fatalf("re-opened breaker: ok=%v retry=%v", ok, retry)
	}

	// Next cooldown, successful trial: closed again, fully admitting.
	clock.Advance(30 * time.Second)
	if ok, _ := b.Allow(clock); !ok {
		t.Fatal("second trial not admitted")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful trial = %v", b.State())
	}
	for i := 0; i < 4; i++ {
		if ok, _ := b.Allow(clock); !ok {
			t.Fatalf("re-closed breaker denied request %d", i)
		}
		b.Success()
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d after recovery, want 2", b.Trips())
	}
}

func TestBreakerDefaultsAndZeroConfig(t *testing.T) {
	clock := NewFakeClock(time.Unix(1700000000, 0))
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 4; i++ {
		b.Failure(clock)
		if b.State() != BreakerClosed {
			t.Fatalf("default threshold tripped at %d failures", i+1)
		}
	}
	b.Failure(clock)
	if b.State() != BreakerOpen {
		t.Fatal("default threshold (5) did not trip at 5 failures")
	}
	clock.Advance(10*time.Second - time.Nanosecond)
	if ok, _ := b.Allow(clock); ok {
		t.Fatal("breaker admitted before the default 10s cooldown elapsed")
	}
	clock.Advance(time.Nanosecond)
	if ok, _ := b.Allow(clock); !ok {
		t.Fatal("breaker denied the trial after the default cooldown")
	}
}

// TestBreakerClosedPathReadsNoClock pins that the steady state consults
// the clock zero times: a panicking clock proves Allow/Success never
// touch it while the breaker is closed.
func TestBreakerClosedPathReadsNoClock(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 100; i++ {
		if ok, _ := b.Allow(panicClock{}); !ok {
			t.Fatal("closed breaker denied")
		}
		b.Success()
	}
}

type panicClock struct{}

func (panicClock) Now() time.Time                       { panic("clock read on the closed fast path") }
func (panicClock) After(time.Duration) <-chan time.Time { panic("timer armed on the closed fast path") }
