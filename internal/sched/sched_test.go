package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"github.com/gamma-suite/gamma/internal/rng"
)

func studyEpoch() time.Time { return time.Date(2024, 3, 16, 9, 0, 0, 0, time.UTC) }

// --- RetryPolicy ---

func TestBackoffSequenceDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	var prev []time.Duration
	for attempt := 1; attempt <= 5; attempt++ {
		d := p.Delay(42, "unit/a", attempt)
		if d2 := p.Delay(42, "unit/a", attempt); d2 != d {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d, d2)
		}
		base := float64(100*time.Millisecond) * float64(int(1)<<(attempt-1))
		if base > float64(time.Second) {
			base = float64(time.Second)
		}
		lo, hi := time.Duration(base*0.5), time.Duration(base*1.5)
		if d < lo || d > hi {
			t.Errorf("attempt %d: delay %v outside jitter window [%v, %v]", attempt, d, lo, hi)
		}
		prev = append(prev, d)
	}
	// Different unit IDs and different seeds draw different jitter.
	if p.Delay(42, "unit/b", 1) == prev[0] && p.Delay(42, "unit/b", 2) == prev[1] {
		t.Error("distinct unit IDs should draw distinct jitter sequences")
	}
	if p.Delay(43, "unit/a", 1) == prev[0] && p.Delay(43, "unit/a", 2) == prev[1] {
		t.Error("distinct seeds should draw distinct jitter sequences")
	}
}

func TestBackoffNoJitterAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	want := []time.Duration{50, 100, 200, 200, 200}
	for i, w := range want {
		if d := p.Delay(1, "x", i+1); d != w*time.Millisecond {
			t.Errorf("attempt %d: delay = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
	if d := (RetryPolicy{}).Delay(1, "x", 1); d != 0 {
		t.Errorf("zero policy should have zero delay, got %v", d)
	}
}

func TestPermanentMarkerTransparent(t *testing.T) {
	base := fmt.Errorf("NXDOMAIN example.test")
	p := Permanent(base)
	if p.Error() != base.Error() {
		t.Errorf("Permanent must not change error text: %q vs %q", p.Error(), base.Error())
	}
	if !IsPermanent(p) || IsPermanent(base) {
		t.Error("IsPermanent misclassifies")
	}
	if !errors.Is(p, base) {
		t.Error("Permanent must preserve the error chain")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) must be nil")
	}
}

// --- Do (call-level retry) ---

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	v, err := Do(context.Background(), nil, RetryPolicy{MaxAttempts: 5}, 1, "op",
		func(context.Context) (int, error) {
			calls++
			if calls < 3 {
				return 0, fmt.Errorf("transient %d", calls)
			}
			return 99, nil
		})
	if err != nil || v != 99 || calls != 3 {
		t.Fatalf("Do = (%d, %v) after %d calls; want (99, nil) after 3", v, err, calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	calls := 0
	_, err := Do(context.Background(), nil, RetryPolicy{MaxAttempts: 5}, 1, "op",
		func(context.Context) (int, error) {
			calls++
			return 0, Permanent(fmt.Errorf("no such host"))
		})
	if calls != 1 {
		t.Errorf("permanent error retried %d times", calls)
	}
	if !IsPermanent(err) {
		t.Error("terminal error should surface")
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	_, err := Do(context.Background(), nil, RetryPolicy{MaxAttempts: 4}, 1, "op",
		func(context.Context) (int, error) {
			calls++
			return 0, fmt.Errorf("still down")
		})
	if calls != 4 || err == nil {
		t.Fatalf("calls = %d, err = %v; want 4 attempts then the last error", calls, err)
	}
}

func TestDoBackoffUsesClockNoRealSleep(t *testing.T) {
	clk := NewFakeClock(studyEpoch())
	done := make(chan struct{})
	var calls atomic.Int64
	go func() {
		defer close(done)
		_, err := Do(context.Background(), clk, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Minute}, 7, "op",
			func(context.Context) (int, error) {
				if calls.Add(1) < 3 {
					return 0, fmt.Errorf("transient")
				}
				return 1, nil
			})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
	}()
	for i := 0; i < 2; i++ {
		want := time.Duration(1<<i) * time.Minute // base, then doubled
		clk.BlockUntilWaiters(1)
		if step := clk.AdvanceToNext(); step != want {
			t.Errorf("backoff %d: waited %v, want %v", i+1, step, want)
		}
	}
	<-done
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
}

// --- Pool ---

func okUnits(n int) []Unit[string] {
	units := make([]Unit[string], n)
	for i := range units {
		i := i
		units[i] = Unit[string]{
			ID: "u" + strconv.Itoa(i),
			Run: func(context.Context) (string, error) {
				// Value derives only from the unit's stable ID.
				return strconv.FormatUint(rng.New(9, "unit-value", strconv.Itoa(i)).Uint64(), 10), nil
			},
		}
	}
	return units
}

func TestPoolResultsIndexedAndDeterministicAcrossWorkers(t *testing.T) {
	var base []Result[string]
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		p := New[string](Options{Workers: workers})
		res, err := p.Run(context.Background(), okUnits(40))
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		for i := range res {
			if res[i].Value != base[i].Value || res[i].ID != base[i].ID {
				t.Fatalf("workers=%d: result %d differs: %+v vs %+v", workers, i, res[i], base[i])
			}
		}
	}
	st := New[string](Options{Workers: 4})
	res, _ := st.Run(context.Background(), okUnits(8))
	for i, r := range res {
		if r.ID != "u"+strconv.Itoa(i) {
			t.Fatalf("result %d carries outcome for %q: results must be unit-indexed", i, r.ID)
		}
	}
}

func TestPoolRetryEventuallySucceeds(t *testing.T) {
	var calls atomic.Int64
	clk := NewFakeClock(studyEpoch())
	p := New[int](Options{
		Workers: 2,
		Retry:   RetryPolicy{MaxAttempts: 5, BaseDelay: time.Second, Multiplier: 2},
		Clock:   clk,
		Seed:    3,
	})
	done := make(chan []Result[int], 1)
	go func() {
		res, _ := p.Run(context.Background(), []Unit[int]{{
			ID: "flaky",
			Run: func(context.Context) (int, error) {
				if calls.Add(1) < 3 {
					return 0, fmt.Errorf("transient")
				}
				return 7, nil
			},
		}})
		done <- res
	}()
	// Exactly two backoff waits: 1s then 2s — drive them, no sleeps.
	clk.BlockUntilWaiters(1)
	if step := clk.AdvanceToNext(); step != time.Second {
		t.Errorf("first backoff = %v, want 1s", step)
	}
	clk.BlockUntilWaiters(1)
	if step := clk.AdvanceToNext(); step != 2*time.Second {
		t.Errorf("second backoff = %v, want 2s", step)
	}
	res := <-done
	r := res[0]
	if r.Err != nil || r.Value != 7 || r.Attempts != 3 {
		t.Fatalf("outcome = %+v, want success on attempt 3", r.Outcome)
	}
	if r.Backoff != 3*time.Second {
		t.Errorf("backoff total = %v, want 3s", r.Backoff)
	}
	if r.Latency != 3*time.Second {
		t.Errorf("latency = %v, want 3s of virtual time", r.Latency)
	}
	st := p.Stats()
	if st.Succeeded != 1 || st.Attempts != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPoolRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	p := New[int](Options{Retry: RetryPolicy{MaxAttempts: 4}})
	res, err := p.Run(context.Background(), []Unit[int]{{
		ID:  "dead",
		Run: func(context.Context) (int, error) { calls.Add(1); return 0, fmt.Errorf("always down") },
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Err == nil || r.Attempts != 4 || calls.Load() != 4 {
		t.Fatalf("outcome = %+v after %d calls; want 4 attempts then failure", r.Outcome, calls.Load())
	}
	st := p.Stats()
	if st.Failed != 1 || st.Retries != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPoolPermanentErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	p := New[int](Options{Retry: RetryPolicy{MaxAttempts: 10}})
	res, _ := p.Run(context.Background(), []Unit[int]{{
		ID:  "cfg",
		Run: func(context.Context) (int, error) { calls.Add(1); return 0, Permanent(fmt.Errorf("bad config")) },
	}})
	if calls.Load() != 1 || res[0].Attempts != 1 {
		t.Errorf("permanent failure was retried: %d calls", calls.Load())
	}
}

func TestPoolTimeoutExpiry(t *testing.T) {
	clk := NewFakeClock(studyEpoch())
	p := New[int](Options{Timeout: 30 * time.Second, Clock: clk})
	done := make(chan []Result[int], 1)
	go func() {
		res, _ := p.Run(context.Background(), []Unit[int]{{
			ID: "hang",
			Run: func(ctx context.Context) (int, error) {
				<-ctx.Done() // a well-behaved unit honors cancellation
				return 0, ctx.Err()
			},
		}})
		done <- res
	}()
	clk.BlockUntilWaiters(1)
	clk.Advance(30 * time.Second)
	res := <-done
	r := res[0]
	if !errors.Is(r.Err, ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrAttemptTimeout", r.Err)
	}
	if r.Attempts != 1 {
		t.Errorf("attempts = %d", r.Attempts)
	}
}

func TestPoolTimeoutThenRetrySucceeds(t *testing.T) {
	clk := NewFakeClock(studyEpoch())
	p := New[int](Options{
		Timeout: 10 * time.Second,
		Retry:   RetryPolicy{MaxAttempts: 2},
		Clock:   clk,
	})
	done := make(chan []Result[int], 1)
	go func() {
		res, _ := p.Run(context.Background(), []Unit[int]{{
			ID: "slow-once",
			Run: func(ctx context.Context) (int, error) {
				// Hang before the first timeout fires, succeed after: attempt
				// identity must come from the clock, not a call counter — the
				// abandoned first-attempt goroutine races the retry's.
				if clk.Now().Equal(studyEpoch()) {
					<-ctx.Done()
					return 0, ctx.Err()
				}
				return 5, nil
			},
		}})
		done <- res
	}()
	clk.BlockUntilWaiters(1)
	clk.Advance(10 * time.Second)
	res := <-done
	r := res[0]
	if r.Err != nil || r.Value != 5 || r.Attempts != 2 {
		t.Fatalf("outcome = %+v; want success on the post-timeout retry", r.Outcome)
	}
}

func TestPoolFailFastSkipsQueued(t *testing.T) {
	var ran atomic.Int64
	units := []Unit[int]{
		{ID: "boom", Run: func(context.Context) (int, error) { return 0, fmt.Errorf("fatal") }},
		{ID: "later", Run: func(context.Context) (int, error) { ran.Add(1); return 1, nil }},
		{ID: "latest", Run: func(context.Context) (int, error) { ran.Add(1); return 2, nil }},
	}
	p := New[int](Options{Workers: 1, FailFast: true})
	res, err := p.Run(context.Background(), units)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err == nil || res[0].Skipped {
		t.Fatalf("unit 0 should fail: %+v", res[0].Outcome)
	}
	if !res[1].Skipped || !res[2].Skipped {
		t.Errorf("queued units should be skipped after a fatal error: %+v / %+v", res[1].Outcome, res[2].Outcome)
	}
	if ran.Load() != 0 {
		t.Errorf("%d skipped units actually ran", ran.Load())
	}
	st := p.Stats()
	if st.Failed != 1 || st.Skipped != 2 {
		t.Errorf("stats = %+v", st)
	}

	// Without FailFast the rest of the campaign completes.
	p2 := New[int](Options{Workers: 1})
	res2, _ := p2.Run(context.Background(), units)
	if res2[1].Err != nil || res2[2].Err != nil {
		t.Error("without FailFast, later units must run")
	}
}

func TestPoolParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New[string](Options{Workers: 3})
	res, err := p.Run(ctx, okUnits(5))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range res {
		if !r.Skipped {
			t.Errorf("unit %d ran under a cancelled context", i)
		}
	}
}

func TestPoolStatsAccumulateAcrossBatches(t *testing.T) {
	p := New[string](Options{Workers: 2})
	if _, err := p.Run(context.Background(), okUnits(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), okUnits(2)); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Units != 5 || st.Succeeded != 5 || st.Attempts != 5 {
		t.Errorf("stats = %+v, want 5 units across two batches", st)
	}
}

// --- FakeClock ---

func TestFakeClockFiresInOrder(t *testing.T) {
	clk := NewFakeClock(studyEpoch())
	a := clk.After(time.Second)
	b := clk.After(3 * time.Second)
	if clk.Waiters() != 2 {
		t.Fatalf("waiters = %d", clk.Waiters())
	}
	clk.Advance(time.Second)
	select {
	case at := <-a:
		if !at.Equal(studyEpoch().Add(time.Second)) {
			t.Errorf("a fired at %v", at)
		}
	default:
		t.Fatal("a should have fired")
	}
	select {
	case <-b:
		t.Fatal("b fired early")
	default:
	}
	if step := clk.AdvanceToNext(); step != 2*time.Second {
		t.Errorf("AdvanceToNext = %v", step)
	}
	<-b
	if clk.Waiters() != 0 {
		t.Errorf("waiters = %d after all fired", clk.Waiters())
	}
}

func TestFakeClockImmediateAfter(t *testing.T) {
	clk := NewFakeClock(studyEpoch())
	select {
	case <-clk.After(0):
	default:
		t.Error("After(0) must fire immediately")
	}
	if clk.AdvanceToNext() != 0 {
		t.Error("AdvanceToNext with no waiters must be 0")
	}
}
