package sched

import (
	"context"
	"errors"
	"math"
	"strconv"
	"time"

	"github.com/gamma-suite/gamma/internal/rng"
)

// RetryPolicy describes deterministic retry with exponential backoff and
// jitter. Every delay is drawn from an rng stream keyed by the unit ID and
// attempt number under the scheduler seed, so two runs of the same campaign
// wait identical (virtual) durations regardless of worker count.
//
// The zero value means a single attempt with no backoff.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per unit (not retries); <= 0
	// means one attempt, i.e. no retry.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BaseDelay is the backoff before the second attempt; 0 retries
	// immediately (useful under simulated time or in tests).
	BaseDelay time.Duration `json:"base_delay_ns,omitempty"`
	// MaxDelay caps the grown backoff; 0 means no cap.
	MaxDelay time.Duration `json:"max_delay_ns,omitempty"`
	// Multiplier grows the delay per retry; values < 1 default to 2.
	Multiplier float64 `json:"multiplier,omitempty"`
	// Jitter spreads each delay uniformly over [d·(1-J), d·(1+J)];
	// 0 disables jitter, values are clamped to [0, 1].
	Jitter float64 `json:"jitter,omitempty"`
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the backoff to wait after the given failed attempt
// (1-based) of the unit. It is a pure function of (seed, id, attempt):
// the jitter draw is keyed, never taken from a shared stream.
func (p RetryPolicy) Delay(seed uint64, id string, attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay) * math.Pow(mult, float64(attempt-1))
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if j := min(max(p.Jitter, 0), 1); j > 0 {
		r := rng.New(seed, "sched-backoff", id, strconv.Itoa(attempt))
		d *= 1 - j + 2*j*r.Float64()
	}
	return time.Duration(d)
}

// permanentError marks an error as non-retryable while leaving its text
// unchanged, so recorded error strings are identical whether or not a
// retry policy was in force.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks err as terminal: the scheduler reports it without
// retrying. Use it for outcomes that are answers, not failures (NXDOMAIN),
// and for errors no retry can fix (bad configuration).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// retryable reports whether the scheduler should try again after err.
// Context cancellation and Permanent-marked errors are terminal;
// everything else — including attempt timeouts — is presumed transient.
func retryable(err error) bool {
	return !IsPermanent(err) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// Do runs fn under the policy: attempts until success, a terminal error,
// context cancellation, or attempt exhaustion, waiting the deterministic
// keyed backoff between attempts on clk (nil uses the wall clock). It is
// the call-level façade of the scheduler — gammacore wraps individual
// driver calls (a page load, one resolution, one traceroute) in Do so
// transient faults are absorbed at the cheapest possible level.
func Do[T any](ctx context.Context, clk Clock, p RetryPolicy, seed uint64, id string, fn func(context.Context) (T, error)) (T, error) {
	if clk == nil {
		clk = Wall()
	}
	var (
		val T
		err error
	)
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return val, cerr
		}
		val, err = fn(ctx)
		if err == nil || !retryable(err) || attempt >= p.attempts() {
			return val, err
		}
		if d := p.Delay(seed, id, attempt); d > 0 {
			select {
			case <-clk.After(d):
			case <-ctx.Done():
				return val, ctx.Err()
			}
		}
	}
}
