package dnssim

import (
	"fmt"
	"net/netip"
	"reflect"
	"sync"
	"testing"
)

// memoFixture registers a representative zone mix: a fixed-origin name, a
// GeoDNS name with country overrides and nearest-PoP steering, a wildcard,
// and a CNAME chain onto the GeoDNS name.
func memoFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	services := []Service{
		{Domain: "origin.example", PoPs: []netip.Addr{f.paris.Addr}},
		{Domain: "cdn.example", Wildcard: true, Nearest: true,
			PoPs:      []netip.Addr{f.paris.Addr, f.mumbai.Addr, f.sydney.Addr},
			ByCountry: map[string]netip.Addr{"EG": f.paris.Addr}},
		{Domain: "metrics.site.example", CNAME: "cdn.example"},
	}
	for _, svc := range services {
		if err := f.dns.Register(svc); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// memoQueries is the query mix the memo tests replay: every zone shape,
// both steering-relevant clients, and a stable NXDOMAIN.
func memoQueries(t *testing.T) []struct {
	name   string
	client Client
} {
	t.Helper()
	clients := []Client{
		client(t, "Paris, FR", "FR"),
		client(t, "Mumbai, IN", "IN"),
		client(t, "Cairo, EG", "EG"),
	}
	names := []string{
		"origin.example", "cdn.example", "edge7.cdn.example",
		"metrics.site.example", "absent.example",
	}
	var out []struct {
		name   string
		client Client
	}
	for _, n := range names {
		for _, c := range clients {
			out = append(out, struct {
				name   string
				client Client
			}{n, c})
		}
	}
	return out
}

// TestResolveMemoMatchesDirect is the satellite equivalence test: every
// query must produce the same address, chain, and error through the memo
// as through direct resolution, on first ask and on the memoized re-ask.
func TestResolveMemoMatchesDirect(t *testing.T) {
	memod := memoFixture(t)
	direct := memoFixture(t)
	direct.dns.SetResolveMemoDisabled(true)
	for round := 0; round < 2; round++ {
		for _, q := range memoQueries(t) {
			ga, gc, ge := memod.dns.ResolveChain(q.name, q.client)
			wa, wc, we := direct.dns.ResolveChain(q.name, q.client)
			if ga != wa || !reflect.DeepEqual(gc, wc) || (ge == nil) != (we == nil) {
				t.Fatalf("round %d %s from %s: memo (%v %v %v) != direct (%v %v %v)",
					round, q.name, q.client.Country, ga, gc, ge, wa, wc, we)
			}
			if ge != nil && ge.Error() != we.Error() {
				t.Fatalf("%s: memoized error %q != direct %q", q.name, ge, we)
			}
		}
	}
	if st := memod.dns.ResolveMemoStats(); st.Hits == 0 || st.Misses == 0 ||
		st.Derivations != uint64(len(memoQueries(t))) {
		t.Errorf("memo stats = %+v, want one derivation per distinct query (%d) and hits on round two",
			st, len(memoQueries(t)))
	}
	if st := direct.dns.ResolveMemoStats(); st.Hits != 0 || st.Misses != 0 || st.Derivations != 0 {
		t.Errorf("disabled memo saw traffic: %+v", st)
	}
}

// TestResolveMemoChainIsolated pins the clone-out contract: mutating a
// returned chain must not corrupt later answers.
func TestResolveMemoChainIsolated(t *testing.T) {
	f := memoFixture(t)
	c := client(t, "Paris, FR", "FR")
	_, chain, err := f.dns.ResolveChain("metrics.site.example", c)
	if err != nil || len(chain) != 2 {
		t.Fatalf("chain = %v, %v", chain, err)
	}
	chain[0] = "clobbered"
	_, again, err := f.dns.ResolveChain("metrics.site.example", c)
	if err != nil || again[0] != "metrics.site.example" {
		t.Fatalf("memoized chain corrupted by caller mutation: %v, %v", again, err)
	}
}

// TestResolveMemoPurgedOnRegister pins that registering a zone invalidates
// memoized outcomes — including a cached NXDOMAIN for the new name.
func TestResolveMemoPurgedOnRegister(t *testing.T) {
	f := memoFixture(t)
	c := client(t, "Paris, FR", "FR")
	if _, err := f.dns.Resolve("late.example", c); err == nil {
		t.Fatal("expected NXDOMAIN before registration")
	}
	if err := f.dns.Register(Service{Domain: "late.example", PoPs: []netip.Addr{f.sydney.Addr}}); err != nil {
		t.Fatal(err)
	}
	addr, err := f.dns.Resolve("late.example", c)
	if err != nil || addr != f.sydney.Addr {
		t.Fatalf("post-registration resolve = %v, %v; memo not purged?", addr, err)
	}
}

// TestResolveMemoConcurrentRace hammers the memo from 8 goroutines over
// the full query mix. Run under -race this is the regression test for the
// memo's locking; the stats prove single-flight derivation.
func TestResolveMemoConcurrentRace(t *testing.T) {
	const (
		goroutines = 8
		rounds     = 50
	)
	f := memoFixture(t)
	ref := memoFixture(t)
	ref.dns.SetResolveMemoDisabled(true)
	queries := memoQueries(t)
	type outcome struct {
		addr  netip.Addr
		chain []string
		fail  bool
	}
	want := make([]outcome, len(queries))
	for i, q := range queries {
		a, c, err := ref.dns.ResolveChain(q.name, q.client)
		want[i] = outcome{a, c, err != nil}
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Phase-shifted walk so fills overlap in every interleaving.
				for i := range queries {
					q := queries[(i+g)%len(queries)]
					w := want[(i+g)%len(queries)]
					a, c, err := f.dns.ResolveChain(q.name, q.client)
					if a != w.addr || !reflect.DeepEqual(c, w.chain) || (err != nil) != w.fail {
						select {
						case errs <- fmt.Sprintf("%s from %s: got (%v %v %v) want (%v %v fail=%v)",
							q.name, q.client.Country, a, c, err, w.addr, w.chain, w.fail):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	st := f.dns.ResolveMemoStats()
	if st.Derivations != uint64(len(queries)) {
		t.Errorf("derivations = %d, want exactly one per distinct query (%d)", st.Derivations, len(queries))
	}
	total := uint64(goroutines * rounds * len(queries))
	if st.Hits+st.Misses != total {
		t.Errorf("hits(%d)+misses(%d) != calls(%d)", st.Hits, st.Misses, total)
	}
	if st.Misses < st.Derivations {
		t.Errorf("misses(%d) < derivations(%d)", st.Misses, st.Derivations)
	}
}
