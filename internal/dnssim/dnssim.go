// Package dnssim is the name-resolution substrate. It models exactly the
// behaviours that make in-country measurement necessary (§1 of the paper):
// geolocation-based DNS (GeoDNS) and CDN steering answer the same name with
// different server addresses depending on where the client asks from, so a
// domain's "location" is a function of the vantage point. It also serves
// reverse DNS (PTR) records, which the geolocation pipeline mines for
// location hints (§4.1.3).
package dnssim

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
)

// Client describes the resolving client for GeoDNS decisions.
type Client struct {
	Country string   // ISO code of the client's network
	City    geo.City // client city (EDNS client-subnet granularity)
}

// Service is one DNS name backed by one or more server deployments.
type Service struct {
	// Domain is the fully-qualified name, e.g. "www.google-analytics.com".
	Domain string
	// Wildcard makes the service answer for any subdomain of Domain too.
	Wildcard bool
	// PoPs are candidate server addresses (hosts registered in netsim).
	PoPs []netip.Addr
	// ByCountry overrides steering for specific client countries. This is
	// how the world model expresses, e.g., "Google serves Egyptian clients
	// from Frankfurt even though Paris is closer" (§7).
	ByCountry map[string]netip.Addr
	// Nearest picks the geographically closest PoP when no override
	// applies; otherwise the first PoP acts as the fixed origin.
	Nearest bool
	// CNAME aliases this name to another: resolution follows the chain.
	// First-party-looking subdomains CNAMEd onto tracker infrastructure
	// ("CNAME cloaking") evade list-based blocking; the analysis pipeline
	// detects them from the chains Gamma records.
	CNAME string
}

// Server is the combined authoritative + recursive resolver for the world.
// It is safe for concurrent resolution after registration completes.
type Server struct {
	net *netsim.Network

	mu    sync.RWMutex
	zones map[string]*Service
	ptr   map[netip.Addr]string

	memo resolveMemo
}

// memoKey identifies one resolution outcome: the normalized queried name
// and the client attributes that can steer the answer (country override,
// EDNS-subnet nearest-PoP selection).
type memoKey struct {
	name, country, city string
}

// resolveEntry is a memoized ResolveChain outcome. NXDOMAIN and
// chain-too-long are as deterministic as success, so errors memoize too.
type resolveEntry struct {
	addr  netip.Addr
	chain []string
	err   error
}

// ResolveMemoStats counts resolution-memo traffic. Hits+Misses is the
// number of memoized lookups; Derivations is how many resolutions ran.
type ResolveMemoStats struct {
	Hits, Misses, Derivations uint64
}

// resolveMemo caches ResolveChain per (name, client country, client
// city). Resolution is a pure function of those once registration is done
// — GeoDNS steering consults nothing else — and a study resolves the same
// tracker names from the same vantages constantly. Registering any new
// service purges the memo: a new zone can turn NXDOMAIN into an answer or
// re-target a wildcard, so entries derived before it are stale.
type resolveMemo struct {
	mu       sync.RWMutex
	m        map[memoKey]resolveEntry
	fillMu   sync.Mutex
	hits     atomic.Uint64
	misses   atomic.Uint64
	derived  atomic.Uint64
	disabled atomic.Bool
}

// SetResolveMemoDisabled turns the resolution memo off (every query walks
// the zones). The reference mode for memoized-vs-direct equivalence tests.
func (s *Server) SetResolveMemoDisabled(off bool) { s.memo.disabled.Store(off) }

// ResolveMemoStats returns a snapshot of the memo counters.
func (s *Server) ResolveMemoStats() ResolveMemoStats {
	return ResolveMemoStats{
		Hits:        s.memo.hits.Load(),
		Misses:      s.memo.misses.Load(),
		Derivations: s.memo.derived.Load(),
	}
}

// purgeMemo drops every memoized resolution; called whenever the zone set
// changes.
func (s *Server) purgeMemo() {
	s.memo.mu.Lock()
	s.memo.m = nil
	s.memo.mu.Unlock()
}

// NewServer creates a resolver over the given data plane.
func NewServer(n *netsim.Network) *Server {
	return &Server{
		net:   n,
		zones: make(map[string]*Service),
		ptr:   make(map[netip.Addr]string),
	}
}

// Register installs a service. All PoPs must exist as netsim hosts so that
// nearest-PoP steering can consult their locations. A CNAME service
// carries no PoPs of its own.
func (s *Server) Register(svc Service) error {
	if svc.Domain == "" {
		return fmt.Errorf("dnssim: service needs a domain")
	}
	if svc.CNAME != "" {
		if len(svc.PoPs) > 0 {
			return fmt.Errorf("dnssim: service %q has both CNAME and PoPs", svc.Domain)
		}
		key := strings.ToLower(svc.Domain)
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, dup := s.zones[key]; dup {
			return fmt.Errorf("dnssim: duplicate service %q", svc.Domain)
		}
		cp := svc
		cp.Domain = key
		cp.CNAME = strings.ToLower(svc.CNAME)
		s.zones[key] = &cp
		s.purgeMemo()
		return nil
	}
	if len(svc.PoPs) == 0 {
		return fmt.Errorf("dnssim: service %q has no PoPs", svc.Domain)
	}
	for _, p := range svc.PoPs {
		if _, ok := s.net.HostByAddr(p); !ok {
			return fmt.Errorf("dnssim: service %q PoP %s is not a registered host", svc.Domain, p)
		}
	}
	for cc, p := range svc.ByCountry {
		if _, ok := s.net.HostByAddr(p); !ok {
			return fmt.Errorf("dnssim: service %q override for %s -> %s is not a registered host", svc.Domain, cc, p)
		}
	}
	key := strings.ToLower(svc.Domain)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.zones[key]; dup {
		return fmt.Errorf("dnssim: duplicate service %q", svc.Domain)
	}
	cp := svc
	cp.Domain = key
	s.zones[key] = &cp
	s.purgeMemo()
	return nil
}

// lookup finds the service answering for name: exact match first, then the
// nearest wildcard ancestor.
func (s *Server) lookup(name string) (*Service, bool) {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	s.mu.RLock()
	defer s.mu.RUnlock()
	if svc, ok := s.zones[name]; ok {
		return svc, true
	}
	for h := name; ; {
		dot := strings.IndexByte(h, '.')
		if dot < 0 {
			return nil, false
		}
		h = h[dot+1:]
		if svc, ok := s.zones[h]; ok && svc.Wildcard {
			return svc, true
		}
	}
}

// Resolve answers an A query for name as seen by the client, following
// CNAME chains. NXDOMAIN is reported as an error.
func (s *Server) Resolve(name string, client Client) (netip.Addr, error) {
	addr, _, err := s.ResolveChain(name, client)
	return addr, err
}

// ResolveChain resolves a name and returns the CNAME chain traversed (the
// queried name first, the name that finally answered last). Gamma records
// the chain; the pipeline mines it for cloaked trackers. Outcomes are
// memoized per (name, client); the returned chain is always a fresh copy,
// so callers may keep or mutate it.
func (s *Server) ResolveChain(name string, client Client) (netip.Addr, []string, error) {
	key := memoKey{
		name:    strings.ToLower(strings.TrimSuffix(name, ".")),
		country: client.Country,
		city:    client.City.ID(),
	}
	if s.memo.disabled.Load() {
		return s.resolveChain(key.name, client)
	}
	s.memo.mu.RLock()
	e, ok := s.memo.m[key]
	s.memo.mu.RUnlock()
	if ok {
		s.memo.hits.Add(1)
		return e.addr, append([]string(nil), e.chain...), e.err
	}
	return s.memoFill(key, client)
}

// memoFill resolves and stores an outcome on a memo miss, serialized so
// concurrent queries for the same key derive it once.
func (s *Server) memoFill(key memoKey, client Client) (netip.Addr, []string, error) {
	s.memo.misses.Add(1)
	s.memo.fillMu.Lock()
	defer s.memo.fillMu.Unlock()
	s.memo.mu.RLock()
	e, ok := s.memo.m[key]
	s.memo.mu.RUnlock()
	if ok {
		return e.addr, append([]string(nil), e.chain...), e.err
	}
	s.memo.derived.Add(1)
	addr, chain, err := s.resolveChain(key.name, client)
	s.memo.mu.Lock()
	if s.memo.m == nil {
		s.memo.m = make(map[memoKey]resolveEntry)
	}
	s.memo.m[key] = resolveEntry{addr: addr, chain: append([]string(nil), chain...), err: err}
	s.memo.mu.Unlock()
	return addr, chain, err
}

// resolveChain is the direct (unmemoized) resolution walk.
func (s *Server) resolveChain(name string, client Client) (netip.Addr, []string, error) {
	chain := []string{strings.ToLower(strings.TrimSuffix(name, "."))}
	for depth := 0; depth < 8; depth++ {
		svc, ok := s.lookup(chain[len(chain)-1])
		if !ok {
			return netip.Addr{}, chain, fmt.Errorf("dnssim: NXDOMAIN %q", chain[len(chain)-1])
		}
		if svc.CNAME != "" {
			chain = append(chain, svc.CNAME)
			continue
		}
		addr, err := s.answer(svc, client)
		return addr, chain, err
	}
	return netip.Addr{}, chain, fmt.Errorf("dnssim: CNAME chain too long for %q", name)
}

// answer picks the A record a non-CNAME service serves the client.
func (s *Server) answer(svc *Service, client Client) (netip.Addr, error) {
	if addr, ok := svc.ByCountry[client.Country]; ok {
		return addr, nil
	}
	if !svc.Nearest || len(svc.PoPs) == 1 {
		return svc.PoPs[0], nil
	}
	best, bestDist := svc.PoPs[0], math.Inf(1)
	for _, p := range svc.PoPs {
		h, ok := s.net.HostByAddr(p)
		if !ok {
			continue
		}
		d := geo.DistanceKm(client.City.Coord, h.City.Coord)
		if d < bestDist {
			best, bestDist = p, d
		}
	}
	return best, nil
}

// SetPTR installs a reverse-DNS record for an address.
func (s *Server) SetPTR(addr netip.Addr, hostname string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hostname == "" {
		delete(s.ptr, addr)
		return
	}
	s.ptr[addr] = strings.ToLower(hostname)
}

// ReversePTR answers a PTR query. Many operators publish none; ok is false
// in that case.
func (s *Server) ReversePTR(addr netip.Addr) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name, ok := s.ptr[addr]
	return name, ok
}

// Domains returns every registered service name, sorted (for tests and
// deterministic dumps).
func (s *Server) Domains() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.zones))
	for d := range s.zones {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}
