package dnssim

import (
	"fmt"
	"net/netip"
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
)

func benchServer(b *testing.B) (*Server, Client) {
	b.Helper()
	n := netsim.New(netsim.DefaultConfig(1))
	reg := geo.Default()
	if err := n.AddAS(netsim.AS{Number: 1, Name: "b", Org: "b", Country: "US"}); err != nil {
		b.Fatal(err)
	}
	s := NewServer(n)
	cities := []string{"Ashburn, US", "Frankfurt, DE", "Singapore, SG", "Sao Paulo, BR"}
	var pops []netip.Addr
	for _, id := range cities {
		c, _ := reg.City(id)
		h, err := n.AddHost(netsim.Host{City: c, ASN: 1, Responsive: true})
		if err != nil {
			b.Fatal(err)
		}
		pops = append(pops, h.Addr)
	}
	for i := 0; i < 2000; i++ {
		if err := s.Register(Service{
			Domain: fmt.Sprintf("svc-%d.example", i), Wildcard: true,
			PoPs: pops, Nearest: i%2 == 0,
		}); err != nil {
			b.Fatal(err)
		}
	}
	khi, _ := reg.City("Karachi, PK")
	return s, Client{Country: "PK", City: khi}
}

func BenchmarkResolveNearest(b *testing.B) {
	s, cl := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Resolve("www.svc-1000.example", cl); err != nil {
			b.Fatal(err)
		}
	}
}
