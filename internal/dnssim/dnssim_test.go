package dnssim

import (
	"net/netip"
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
)

type fixture struct {
	net    *netsim.Network
	dns    *Server
	paris  netsim.Host
	mumbai netsim.Host
	sydney netsim.Host
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	n := netsim.New(netsim.DefaultConfig(5))
	reg := geo.Default()
	if err := n.AddAS(netsim.AS{Number: 15169, Name: "GOOGLE", Org: "Google LLC", Country: "US"}); err != nil {
		t.Fatal(err)
	}
	mk := func(cityID string) netsim.Host {
		c, ok := reg.City(cityID)
		if !ok {
			t.Fatalf("missing city %s", cityID)
		}
		h, err := n.AddHost(netsim.Host{City: c, ASN: 15169, Responsive: true})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	return &fixture{
		net:    n,
		dns:    NewServer(n),
		paris:  mk("Paris, FR"),
		mumbai: mk("Mumbai, IN"),
		sydney: mk("Sydney, AU"),
	}
}

func client(t *testing.T, cityID, cc string) Client {
	t.Helper()
	c, ok := geo.Default().City(cityID)
	if !ok {
		t.Fatalf("missing city %s", cityID)
	}
	return Client{Country: cc, City: c}
}

func TestRegisterValidation(t *testing.T) {
	f := newFixture(t)
	if err := f.dns.Register(Service{Domain: "", PoPs: []netip.Addr{f.paris.Addr}}); err == nil {
		t.Error("empty domain should fail")
	}
	if err := f.dns.Register(Service{Domain: "a.example"}); err == nil {
		t.Error("no PoPs should fail")
	}
	if err := f.dns.Register(Service{Domain: "a.example", PoPs: []netip.Addr{netip.MustParseAddr("203.0.113.1")}}); err == nil {
		t.Error("unknown PoP host should fail")
	}
	if err := f.dns.Register(Service{Domain: "a.example", PoPs: []netip.Addr{f.paris.Addr},
		ByCountry: map[string]netip.Addr{"FR": netip.MustParseAddr("203.0.113.2")}}); err == nil {
		t.Error("unknown override host should fail")
	}
	if err := f.dns.Register(Service{Domain: "ok.example", PoPs: []netip.Addr{f.paris.Addr}}); err != nil {
		t.Fatal(err)
	}
	if err := f.dns.Register(Service{Domain: "OK.example", PoPs: []netip.Addr{f.paris.Addr}}); err == nil {
		t.Error("duplicate (case-insensitive) domain should fail")
	}
}

func TestNearestPoPSteering(t *testing.T) {
	f := newFixture(t)
	err := f.dns.Register(Service{
		Domain:  "cdn.tracker.example",
		PoPs:    []netip.Addr{f.paris.Addr, f.mumbai.Addr, f.sydney.Addr},
		Nearest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		client Client
		want   netip.Addr
	}{
		{client(t, "London, GB", "GB"), f.paris.Addr},
		{client(t, "Colombo, LK", "LK"), f.mumbai.Addr},
		{client(t, "Auckland, NZ", "NZ"), f.sydney.Addr},
		{client(t, "Kigali, RW", "RW"), f.mumbai.Addr}, // nearest of the three
	}
	for _, tc := range cases {
		got, err := f.dns.Resolve("cdn.tracker.example", tc.client)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("client %s: resolved %s, want %s", tc.client.Country, got, tc.want)
		}
	}
}

func TestCountryOverrideBeatsNearest(t *testing.T) {
	f := newFixture(t)
	// The paper's Egypt case: Google serves Egypt from Germany although
	// nearer PoPs exist.
	err := f.dns.Register(Service{
		Domain:    "ads.example",
		PoPs:      []netip.Addr{f.paris.Addr, f.mumbai.Addr},
		ByCountry: map[string]netip.Addr{"EG": f.sydney.Addr},
		Nearest:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.dns.Resolve("ads.example", client(t, "Cairo, EG", "EG"))
	if err != nil {
		t.Fatal(err)
	}
	if got != f.sydney.Addr {
		t.Errorf("override not applied: got %s", got)
	}
	got, _ = f.dns.Resolve("ads.example", client(t, "London, GB", "GB"))
	if got != f.paris.Addr {
		t.Errorf("non-override client should use nearest: got %s", got)
	}
}

func TestSingleOriginService(t *testing.T) {
	f := newFixture(t)
	err := f.dns.Register(Service{Domain: "origin.example", PoPs: []netip.Addr{f.mumbai.Addr, f.paris.Addr}})
	if err != nil {
		t.Fatal(err)
	}
	// Nearest=false: always the first PoP regardless of client.
	for _, cl := range []Client{client(t, "London, GB", "GB"), client(t, "Sydney, AU", "AU")} {
		got, err := f.dns.Resolve("origin.example", cl)
		if err != nil {
			t.Fatal(err)
		}
		if got != f.mumbai.Addr {
			t.Errorf("fixed origin: got %s, want %s", got, f.mumbai.Addr)
		}
	}
}

func TestWildcardLookup(t *testing.T) {
	f := newFixture(t)
	err := f.dns.Register(Service{Domain: "googlesyndication.example", Wildcard: true, PoPs: []netip.Addr{f.paris.Addr}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.dns.Resolve("693.safeframe.googlesyndication.example", client(t, "Doha, QA", "QA"))
	if err != nil {
		t.Fatalf("wildcard resolution failed: %v", err)
	}
	if got != f.paris.Addr {
		t.Errorf("got %s", got)
	}
	// Non-wildcard services do not answer for subdomains.
	err = f.dns.Register(Service{Domain: "exact.example", PoPs: []netip.Addr{f.paris.Addr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.dns.Resolve("sub.exact.example", client(t, "Doha, QA", "QA")); err == nil {
		t.Error("non-wildcard service must not answer subdomains")
	}
}

func TestNXDOMAIN(t *testing.T) {
	f := newFixture(t)
	if _, err := f.dns.Resolve("no.such.domain", client(t, "Tokyo, JP", "JP")); err == nil {
		t.Error("expected NXDOMAIN error")
	}
}

func TestPTR(t *testing.T) {
	f := newFixture(t)
	if _, ok := f.dns.ReversePTR(f.paris.Addr); ok {
		t.Error("no PTR should be published initially")
	}
	f.dns.SetPTR(f.paris.Addr, "Edge-PAR1.Tracker.Example")
	name, ok := f.dns.ReversePTR(f.paris.Addr)
	if !ok || name != "edge-par1.tracker.example" {
		t.Errorf("PTR = %q (%v)", name, ok)
	}
	f.dns.SetPTR(f.paris.Addr, "")
	if _, ok := f.dns.ReversePTR(f.paris.Addr); ok {
		t.Error("empty SetPTR should delete the record")
	}
}

func TestDomainsSorted(t *testing.T) {
	f := newFixture(t)
	for _, d := range []string{"b.example", "a.example", "c.example"} {
		if err := f.dns.Register(Service{Domain: d, PoPs: []netip.Addr{f.paris.Addr}}); err != nil {
			t.Fatal(err)
		}
	}
	ds := f.dns.Domains()
	if len(ds) != 3 || ds[0] != "a.example" || ds[2] != "c.example" {
		t.Errorf("Domains() = %v", ds)
	}
}

func TestResolveTrailingDot(t *testing.T) {
	f := newFixture(t)
	if err := f.dns.Register(Service{Domain: "dot.example", PoPs: []netip.Addr{f.paris.Addr}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.dns.Resolve("dot.example.", client(t, "Tokyo, JP", "JP")); err != nil {
		t.Errorf("trailing dot should resolve: %v", err)
	}
}

func TestCNAMEChainResolution(t *testing.T) {
	f := newFixture(t)
	if err := f.dns.Register(Service{Domain: "tracker.example", Wildcard: true, PoPs: []netip.Addr{f.paris.Addr}}); err != nil {
		t.Fatal(err)
	}
	// First-party-looking name cloaked onto the tracker.
	if err := f.dns.Register(Service{Domain: "metrics.news.example", CNAME: "pixel.tracker.example"}); err != nil {
		t.Fatal(err)
	}
	addr, chain, err := f.dns.ResolveChain("metrics.news.example", client(t, "Doha, QA", "QA"))
	if err != nil {
		t.Fatal(err)
	}
	if addr != f.paris.Addr {
		t.Errorf("cloaked name resolved to %s", addr)
	}
	if len(chain) != 2 || chain[0] != "metrics.news.example" || chain[1] != "pixel.tracker.example" {
		t.Errorf("chain = %v", chain)
	}
	// Plain Resolve follows the chain too.
	got, err := f.dns.Resolve("metrics.news.example", client(t, "Doha, QA", "QA"))
	if err != nil || got != f.paris.Addr {
		t.Errorf("Resolve through CNAME = %s (%v)", got, err)
	}
}

func TestCNAMEValidation(t *testing.T) {
	f := newFixture(t)
	if err := f.dns.Register(Service{Domain: "x.example", CNAME: "y.example", PoPs: []netip.Addr{f.paris.Addr}}); err == nil {
		t.Error("CNAME with PoPs must fail")
	}
	// Dangling CNAME resolves to NXDOMAIN at query time.
	if err := f.dns.Register(Service{Domain: "dangling.example", CNAME: "missing.example"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.dns.ResolveChain("dangling.example", client(t, "Doha, QA", "QA")); err == nil {
		t.Error("dangling CNAME should be NXDOMAIN")
	}
}

func TestCNAMELoopGuard(t *testing.T) {
	f := newFixture(t)
	if err := f.dns.Register(Service{Domain: "a.loop.example", CNAME: "b.loop.example"}); err != nil {
		t.Fatal(err)
	}
	if err := f.dns.Register(Service{Domain: "b.loop.example", CNAME: "a.loop.example"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.dns.ResolveChain("a.loop.example", client(t, "Doha, QA", "QA")); err == nil {
		t.Error("CNAME loop must error, not hang")
	}
}
