package pipeline_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenState caches the truncated corpus the golden files are built from:
// the fixture world's PK/EG/AU volunteers re-run over 8 regional + 4
// government targets each, so the committed JSON stays reviewably small
// while still covering the volunteer, Atlas-substitution, and blocked-probe
// trace origins.
var goldenState struct {
	world    *gamma.World
	datasets []*core.Dataset
}

func goldenSetup(t *testing.T) (*gamma.World, []*core.Dataset) {
	t.Helper()
	if goldenState.world != nil {
		return goldenState.world, goldenState.datasets
	}
	f := setup(t)
	sels, err := gamma.SelectTargets(f.world)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var datasets []*core.Dataset
	for _, cc := range []string{"PK", "EG", "AU"} {
		sel := sels[cc]
		sel.Regional = sel.Regional[:8]
		sel.Government = sel.Government[:4]
		ds, err := gamma.RunVolunteer(ctx, f.world, cc, sel)
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, ds)
	}
	goldenState.world, goldenState.datasets = f.world, datasets
	return f.world, datasets
}

// processWith runs Box 2 over the datasets with an explicit worker count and
// cache topology. Re-running over the same datasets is safe: Anonymize only
// blanks VolunteerIP, which the pipeline never reads.
func processWith(t *testing.T, w *gamma.World, datasets []*core.Dataset, workers int, disableCaches bool) *pipeline.Result {
	t.Helper()
	env := gamma.PipelineEnv(w)
	env.AnalysisWorkers = workers
	env.DisableAnalysisCaches = disableCaches
	res, err := pipeline.Process(env, datasets)
	if err != nil {
		t.Fatalf("Process(workers=%d, caches-off=%v): %v", workers, disableCaches, err)
	}
	return res
}

// goldenResult pairs the Result with the per-country Verdicts maps, which
// are excluded from CountryResult's own JSON (`json:"-"`) but are exactly
// what the equivalence proof must cover.
type goldenResult struct {
	Result   *pipeline.Result                         `json:"result"`
	Verdicts map[string]map[string]pipeline.DomainObs `json:"verdicts"`
}

func dumpResult(t *testing.T, res *pipeline.Result) []byte {
	t.Helper()
	verdicts := make(map[string]map[string]pipeline.DomainObs, len(res.Countries))
	for _, cc := range res.CountryCodes() {
		verdicts[cc] = res.Countries[cc].Verdicts
	}
	b, err := json.MarshalIndent(goldenResult{Result: res, Verdicts: verdicts}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// goldenFigures is every downstream analysis output derived from a Result.
// If any of these differs between a serial and a parallel run, the
// parallelization changed the science, not just the wall clock.
type goldenFigures struct {
	Fig2Composition     []analysis.Composition            `json:"fig2_composition"`
	Fig2LoadSuccess     []analysis.LoadSuccess            `json:"fig2_load_success"`
	Fig3Prevalence      []analysis.Prevalence             `json:"fig3_prevalence"`
	Fig3Correlation     *float64                          `json:"fig3_correlation"`
	Fig4Distribution    []analysis.Distribution           `json:"fig4_distribution"`
	Fig5CountryFlows    []analysis.Flow                   `json:"fig5_country_flows"`
	Fig5FlowShares      []analysis.FlowShare              `json:"fig5_flow_shares"`
	Fig5DestShares      []analysis.DestShare              `json:"fig5_dest_shares"`
	SitesWithNonLocal   int                               `json:"sites_with_non_local"`
	Fig6ContinentFlows  []analysis.ContinentFlow          `json:"fig6_continent_flows"`
	InwardFlow          map[geo.Continent][]geo.Continent `json:"inward_flow"`
	Fig7HostingCounts   []analysis.HostingCount           `json:"fig7_hosting_counts"`
	Fig8OrgFlows        []analysis.OrgFlow                `json:"fig8_org_flows"`
	OrgTotals           []analysis.OrgFlow                `json:"org_totals"`
	ExclusiveOrgs       map[string]string                 `json:"exclusive_orgs"`
	Fig9DomainFrequency []analysis.DomainFrequency        `json:"fig9_domain_frequency"`
	Table1              []analysis.PolicyRow              `json:"table1"`
}

func dumpFigures(t *testing.T, w *gamma.World, res *pipeline.Result) []byte {
	t.Helper()
	prev := analysis.Fig3Prevalence(res)
	flows := analysis.Fig5CountryFlows(res)
	cont := analysis.Fig6ContinentFlows(res, w.Registry)
	orgs := analysis.Fig8OrgFlows(res)
	doc := goldenFigures{
		Fig2Composition:     analysis.Fig2Composition(res),
		Fig2LoadSuccess:     analysis.Fig2LoadSuccess(res),
		Fig3Prevalence:      prev,
		Fig4Distribution:    analysis.Fig4Distribution(res),
		Fig5CountryFlows:    flows,
		Fig5FlowShares:      analysis.Fig5FlowShares(flows),
		Fig5DestShares:      analysis.Fig5DestShares(res),
		SitesWithNonLocal:   analysis.SitesWithNonLocal(res),
		Fig6ContinentFlows:  cont,
		InwardFlow:          analysis.InwardFlowContinents(cont),
		Fig7HostingCounts:   analysis.Fig7HostingCounts(res),
		Fig8OrgFlows:        orgs,
		OrgTotals:           analysis.OrgTotals(orgs),
		ExclusiveOrgs:       analysis.ExclusiveOrgs(orgs),
		Fig9DomainFrequency: analysis.Fig9DomainFrequency(res),
		Table1:              analysis.Table1(prev, gamma.PolicyRegistry(w)),
	}
	if corr, err := analysis.Fig3Correlation(prev); err == nil {
		doc.Fig3Correlation = &corr
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// firstDiff pinpoints the first diverging line of two canonical dumps so a
// golden failure says what changed, not just that something did.
func firstDiff(got, want []byte) string {
	g, w := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(g) && i < len(w); i++ {
		if !bytes.Equal(g[i], w[i]) {
			return fmt.Sprintf("first divergence at line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("one dump is a prefix of the other (%d vs %d lines)", len(g), len(w))
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s — regenerate with `go test ./internal/pipeline -run Golden -update`: %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output differs from committed golden; %s", path, firstDiff(got, want))
	}
}

// TestGoldenByteIdentity is the equivalence proof for Parallel Box 2:
// a serial run, parallel runs at several widths, and a cache-disabled run
// must serialize byte-for-byte identically — for the full Result (verdicts
// included) and for every figure/table derived from it — and must match the
// committed golden files.
func TestGoldenByteIdentity(t *testing.T) {
	w, datasets := goldenSetup(t)
	serial := processWith(t, w, datasets, 1, false)
	wantRes := dumpResult(t, serial)
	wantFig := dumpFigures(t, w, serial)

	variants := []struct {
		name     string
		workers  int
		disabled bool
	}{
		{"workers=4", 4, false},
		{fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0), false},
		{"workers=0 (default pool)", 0, false},
		{"workers=4, caches disabled", 4, true},
	}
	for _, v := range variants {
		res := processWith(t, w, datasets, v.workers, v.disabled)
		if got := dumpResult(t, res); !bytes.Equal(got, wantRes) {
			t.Errorf("%s: Result differs from serial run; %s", v.name, firstDiff(got, wantRes))
		}
		if got := dumpFigures(t, w, res); !bytes.Equal(got, wantFig) {
			t.Errorf("%s: figures differ from serial run; %s", v.name, firstDiff(got, wantFig))
		}
	}

	compareGolden(t, filepath.Join("testdata", "golden_result.json"), wantRes)
	compareGolden(t, filepath.Join("testdata", "golden_figures.json"), wantFig)
}

// TestParallelMatchesSerialFullCorpus repeats the differential half of the
// proof on the full (untruncated) PK/EG/AU corpus, where site counts, ad
// rotations, and failure draws are realistic.
func TestParallelMatchesSerialFullCorpus(t *testing.T) {
	f := setup(t)
	serial := processWith(t, f.world, f.datasets, 1, false)
	wantRes := dumpResult(t, serial)
	wantFig := dumpFigures(t, f.world, serial)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		res := processWith(t, f.world, f.datasets, workers, false)
		if got := dumpResult(t, res); !bytes.Equal(got, wantRes) {
			t.Errorf("workers=%d: Result differs from serial; %s", workers, firstDiff(got, wantRes))
		}
		if got := dumpFigures(t, f.world, res); !bytes.Equal(got, wantFig) {
			t.Errorf("workers=%d: figures differ from serial; %s", workers, firstDiff(got, wantFig))
		}
	}
	uncached := processWith(t, f.world, f.datasets, 4, true)
	if got := dumpResult(t, uncached); !bytes.Equal(got, wantRes) {
		t.Errorf("caches disabled: Result differs from serial; %s", firstDiff(got, wantRes))
	}
}

// TestCacheStatsInvariant checks the single-flight guarantee end to end:
// the shared geoloc cache launches exactly as many destination traceroutes
// in a wide parallel run as in a serial one (one per unique destination IP),
// and the memoized match cache actually absorbs repeat lookups.
func TestCacheStatsInvariant(t *testing.T) {
	f := setup(t)
	serial := processWith(t, f.world, f.datasets, 1, false)
	par := processWith(t, f.world, f.datasets, 8, false)
	if par.Caches.Geoloc.Misses != serial.Caches.Geoloc.Misses {
		t.Errorf("geoloc cache misses: parallel %d != serial %d — duplicate traceroutes launched",
			par.Caches.Geoloc.Misses, serial.Caches.Geoloc.Misses)
	}
	if par.Caches.Geoloc.Misses > int64(par.Funnel.UniqueIPs) {
		t.Errorf("geoloc cache misses %d exceed unique IPs %d", par.Caches.Geoloc.Misses, par.Funnel.UniqueIPs)
	}
	if par.Caches.Geoloc.Misses == 0 {
		t.Error("geoloc cache never exercised")
	}
	if par.Caches.Lists.Hits == 0 {
		t.Error("match cache absorbed no repeat lookups")
	}
}
