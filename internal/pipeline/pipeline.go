// Package pipeline is "Box 2" of the study's method (Figure 1): it ingests
// the JSON datasets volunteers upload and produces the analyzed corpus —
// webdriver noise stripped (§5), source traceroutes substituted from Atlas
// probes where the volunteer's probes failed or were opted out (§4.1.1),
// every responding server classified through the multi-constraint
// geolocation framework, trackers identified via filter lists plus
// WhoTracksMe-style manual inspection (§4.2), organizations and hosting
// ASes attributed, first/third-party relationships resolved (§6.7), and
// volunteer IPs anonymized (§3.5).
package pipeline

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"strings"

	"github.com/gamma-suite/gamma/internal/atlas"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/filterlist"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geodb"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/netsim"
	"github.com/gamma-suite/gamma/internal/sched"
	"github.com/gamma-suite/gamma/internal/tracert"
	"github.com/gamma-suite/gamma/internal/trackerdb"
)

// Env bundles the knowledge sources and infrastructure Box 2 consumes.
type Env struct {
	Reg   *geo.Registry
	Net   *netsim.Network // AS-level lookups (§6.5)
	IPMap *geodb.DB
	Ref   *geodb.RefTable
	Mesh  *atlas.Mesh

	// Lists is the global filter-list engine (EasyList + EasyPrivacy);
	// RegionalLists adds country-specific engines where available.
	Lists         *filterlist.Engine
	RegionalLists map[string]*filterlist.Engine

	Orgs *trackerdb.DB

	// GeolocConfig tunes the constraint cascade; zero value uses defaults.
	GeolocConfig geoloc.Config

	// AnalysisWorkers bounds how many countries Process analyzes
	// concurrently; <= 0 uses runtime.GOMAXPROCS(0). The output is
	// byte-identical for every value — the golden/differential harness in
	// golden_test.go is the proof obligation for that invariant.
	AnalysisWorkers int

	// DisableAnalysisCaches reverts to the serial-era cache topology: a
	// fresh geolocation framework per country (no cross-country destination
	// sharing) and unmemoized filter-list matching. Verdicts are identical
	// either way — the framework and the engines are deterministic pure
	// functions — so this exists for benchmarking and differential tests.
	DisableAnalysisCaches bool
}

// trackerCategories are the org categories manual inspection labels as
// tracking/advertising businesses.
var trackerCategories = map[string]bool{
	"advertising": true, "analytics": true, "social": true, "video": true,
}

// DomainObs is the analyzed record for one domain observed on one site.
type DomainObs struct {
	Domain      string       `json:"domain"`
	Addr        string       `json:"addr,omitempty"`
	Class       geoloc.Class `json:"class"`
	Stage       geoloc.Stage `json:"stage,omitempty"`
	DestCountry string       `json:"dest_country,omitempty"`
	DestCity    string       `json:"dest_city,omitempty"`

	IsTracker     bool   `json:"is_tracker,omitempty"`
	TrackerSource string `json:"tracker_source,omitempty"` // easylist, easyprivacy, regional-*, manual, cname:*
	// Cloaked marks a first-party-looking domain whose CNAME chain ends in
	// tracker infrastructure (CNAME cloaking): invisible to list-based
	// blocking, caught by the recorded DNS chains.
	Cloaked    bool     `json:"cloaked,omitempty"`
	CNAMEChain []string `json:"cname_chain,omitempty"`
	Org        string   `json:"org,omitempty"`
	OrgCountry string   `json:"org_country,omitempty"`
	HostASN    uint32   `json:"host_asn,omitempty"`
	HostASOrg  string   `json:"host_as_org,omitempty"`
	FirstParty bool     `json:"first_party,omitempty"`
}

// SiteResult is the analyzed record for one target site in one country.
type SiteResult struct {
	Country  string          `json:"country"`
	Site     string          `json:"site"`
	Kind     core.TargetKind `json:"kind"`
	LoadOK   bool            `json:"load_ok"`
	OptedOut bool            `json:"opted_out,omitempty"`
	Domains  []DomainObs     `json:"domains,omitempty"`
}

// NonLocalTrackers returns the site's retained non-local tracker domains.
func (s SiteResult) NonLocalTrackers() []DomainObs {
	var out []DomainObs
	for _, d := range s.Domains {
		if d.Class == geoloc.NonLocal && d.IsTracker {
			out = append(out, d)
		}
	}
	return out
}

// TraceStats counts probe activity per country (§5).
type TraceStats struct {
	SourceLaunched int `json:"source_launched"`
	SourceReached  int `json:"source_reached"`
	DestLaunched   int `json:"dest_launched"`
}

// CountryResult aggregates one source country.
type CountryResult struct {
	Country string   `json:"country"`
	City    geo.City `json:"city"`
	// TraceOrigin records whether source traceroutes came from the
	// volunteer or an Atlas substitute probe (and where it sat).
	TraceOrigin string               `json:"trace_origin"`
	Sites       []SiteResult         `json:"sites"`
	Funnel      geoloc.FunnelCounts  `json:"funnel"`
	Traces      TraceStats           `json:"traces"`
	Targets     int                  `json:"targets"`
	OptOuts     int                  `json:"opt_outs"`
	LoadedOK    int                  `json:"loaded_ok"`
	Verdicts    map[string]DomainObs `json:"-"` // per unique domain
}

// SortedDomains returns the country's per-domain verdicts in ascending
// domain order — the stable iteration order the serving and export layers
// build their read indexes from (Verdicts itself is a map and must never
// feed an output path directly).
func (c *CountryResult) SortedDomains() []DomainObs {
	out := make([]DomainObs, 0, len(c.Verdicts))
	for _, domain := range sortedKeys(c.Verdicts) {
		out = append(out, c.Verdicts[domain])
	}
	return out
}

// Funnel is the study-wide §5 accounting.
type Funnel struct {
	Targets            int `json:"targets"`
	TargetsAfterOptOut int `json:"targets_after_opt_out"`
	UniqueTargets      int `json:"unique_targets"`
	LoadedOK           int `json:"loaded_ok"`
	DomainObservations int `json:"domain_observations"` // per-country unique domains, summed
	UniqueDomains      int `json:"unique_domains"`
	UniqueIPs          int `json:"unique_ips"`
	SourceTraceroutes  int `json:"source_traceroutes"`
	DestTraceroutes    int `json:"dest_traceroutes"`
	NonLocalClaimed    int `json:"non_local_claimed"`     // before constraints (≈14K in the paper)
	AfterSOL           int `json:"after_sol_constraints"` // after source+destination constraints (≈6.1K)
	AfterRDNS          int `json:"after_rdns_constraint"` // retained non-local (≈4.7K)
	Trackers           int `json:"trackers"`              // non-local tracker domains (≈2.7K)
	CloakedTrackers    int `json:"cloaked_trackers"`      // CNAME-cloaked subset of the above
}

// AnalysisCacheStats reports analysis-cache effectiveness for one Process
// run: destination-traceroute reuse in the geolocation framework and
// filter-list match memoization.
type AnalysisCacheStats struct {
	Geoloc geoloc.CacheStats          `json:"geoloc"`
	Lists  filterlist.MatchCacheStats `json:"lists"`
}

// Result is the fully analyzed study corpus.
type Result struct {
	Countries map[string]*CountryResult `json:"countries"`
	Funnel    Funnel                    `json:"funnel"`
	// TrackerDomains are the distinct identified non-local tracker domains
	// with their identification source (the paper's 505 = 441 list + 64
	// manual).
	TrackerDomains map[string]string `json:"tracker_domains"`
	// Caches reports cache behaviour for the run. Excluded from the
	// serialized corpus: it describes the run, not the measured world.
	Caches AnalysisCacheStats `json:"-"`
}

// CountryCodes returns the analyzed countries in sorted order.
func (r *Result) CountryCodes() []string {
	out := make([]string, 0, len(r.Countries))
	for cc := range r.Countries {
		out = append(out, cc)
	}
	sort.Strings(out)
	return out
}

// Process runs Box 2 over the uploaded datasets. Countries are analyzed
// concurrently over Env.AnalysisWorkers workers and merged deterministically
// in sorted country-code order, so the result is byte-identical to a serial
// run for any worker count.
func Process(env Env, datasets []*core.Dataset) (*Result, error) {
	if env.Reg == nil || env.IPMap == nil {
		return nil, fmt.Errorf("pipeline: Env requires Reg and IPMap")
	}
	// A country code identifies one volunteer dataset; two datasets claiming
	// the same country would silently shadow each other in the result map.
	seen := map[string]int{}
	for i, ds := range datasets {
		if j, dup := seen[ds.Country]; dup {
			return nil, fmt.Errorf("pipeline: duplicate country %s in datasets %d and %d", ds.Country, j, i)
		}
		seen[ds.Country] = i
	}

	// The geolocation framework and filter-list caches are shared across
	// countries: the same tracker IPs and URLs recur in every dataset, and
	// both are deterministic pure functions of their inputs, so sharing
	// changes wall-clock only, never verdicts.
	match := newMatchers(env)
	var sharedFW *geoloc.Framework
	if !env.DisableAnalysisCaches {
		sharedFW = geoloc.New(env.GeolocConfig, env.IPMap, env.Ref, env.Mesh, env.Reg)
	}

	type countryOutcome struct {
		cr *CountryResult
		// geoloc holds the per-country framework's counters when the shared
		// framework is disabled; zero otherwise.
		geoloc geoloc.CacheStats
	}
	units := make([]sched.Unit[countryOutcome], len(datasets))
	for i, ds := range datasets {
		ds := ds
		units[i] = sched.Unit[countryOutcome]{
			ID: "analyze/" + ds.Country,
			Run: func(context.Context) (countryOutcome, error) {
				fw := sharedFW
				if fw == nil {
					fw = geoloc.New(env.GeolocConfig, env.IPMap, env.Ref, env.Mesh, env.Reg)
				}
				cr, err := processCountry(env, match, fw, ds)
				if err != nil {
					return countryOutcome{}, err
				}
				// With the analysis complete, anonymize the volunteer's
				// dataset.
				ds.Anonymize()
				out := countryOutcome{cr: cr}
				if sharedFW == nil {
					out.geoloc = fw.Stats()
				}
				return out, nil
			},
		}
	}
	workers := env.AnalysisWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := sched.New[countryOutcome](sched.Options{Workers: workers})
	results, err := pool.Run(context.Background(), units)
	if err != nil {
		return nil, err
	}
	// Without FailFast every unit has a terminal outcome, so the reported
	// error is deterministic: the first failing dataset in submission order.
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("pipeline: country %s: %w", datasets[i].Country, r.Err)
		}
	}

	res := &Result{
		Countries:      make(map[string]*CountryResult),
		TrackerDomains: make(map[string]string),
	}
	for _, r := range results {
		res.Countries[r.Value.cr.Country] = r.Value.cr
		res.Caches.Geoloc.Hits += r.Value.geoloc.Hits
		res.Caches.Geoloc.Misses += r.Value.geoloc.Misses
		res.Caches.Geoloc.Inflight += r.Value.geoloc.Inflight
	}
	if sharedFW != nil {
		res.Caches.Geoloc = sharedFW.Stats()
	}
	res.Caches.Lists = match.stats()

	// Merge the global dedup sets and the study-wide funnel in sorted
	// country order. Set unions and counter sums are order-independent;
	// TrackerDomains is last-writer-wins per domain, so a fixed order makes
	// the merge deterministic even when countries disagree on a domain's
	// identification source (e.g. two different regional lists).
	globalDomains := map[string]bool{}
	globalIPs := map[string]bool{}
	uniqueTargets := map[string]bool{}
	for _, cc := range res.CountryCodes() {
		cr := res.Countries[cc]
		for domain, obs := range cr.Verdicts {
			globalDomains[domain] = true
			globalIPs[obs.Addr] = true
		}
		for _, s := range cr.Sites {
			uniqueTargets[s.Site] = true
		}
		res.Funnel.Targets += cr.Targets
		res.Funnel.TargetsAfterOptOut += cr.Targets - cr.OptOuts
		res.Funnel.LoadedOK += cr.LoadedOK
		res.Funnel.SourceTraceroutes += cr.Traces.SourceLaunched
		res.Funnel.DestTraceroutes += cr.Traces.DestLaunched
		for _, obs := range cr.Verdicts {
			res.Funnel.DomainObservations++
			claimedNonLocal := obs.Class == geoloc.NonLocal || isPostClassificationStage(obs.Stage)
			if !claimedNonLocal {
				continue
			}
			res.Funnel.NonLocalClaimed++
			if obs.Class == geoloc.NonLocal || obs.Stage == geoloc.StageRDNSConflict {
				res.Funnel.AfterSOL++
			}
			if obs.Class == geoloc.NonLocal {
				res.Funnel.AfterRDNS++
				if obs.IsTracker {
					res.Funnel.Trackers++
					res.TrackerDomains[obs.Domain] = obs.TrackerSource
					if obs.Cloaked {
						res.Funnel.CloakedTrackers++
					}
				}
			}
		}
	}
	res.Funnel.UniqueDomains = len(globalDomains)
	res.Funnel.UniqueIPs = len(globalIPs)
	res.Funnel.UniqueTargets = len(uniqueTargets)
	return res, nil
}

// isPostClassificationStage reports whether a discard happened after the
// IPmap already claimed the server was non-local.
func isPostClassificationStage(s geoloc.Stage) bool {
	switch s {
	case geoloc.StageSourceMissing, geoloc.StageSourceUnreach, geoloc.StageSourceSOL,
		geoloc.StageSourceLatency, geoloc.StageDestNoProbe, geoloc.StageDestUnreach,
		geoloc.StageDestSOL, geoloc.StageDestTooFar, geoloc.StageRDNSConflict:
		return true
	default:
		return false
	}
}

// listMatcher is the engine behaviour tracker identification needs,
// satisfied by both *filterlist.Engine and *filterlist.CachedEngine.
// MatchName is the bare-hostname probe: unlike a hand-built
// "https://"+domain+"/" Match request, it never materializes a URL string.
type listMatcher interface {
	Match(filterlist.Request) (bool, *filterlist.Rule)
	MatchName(domain, pageDomain string) (bool, *filterlist.Rule)
}

// matchers bundles the global and regional filter engines, memoized unless
// Env.DisableAnalysisCaches asks for the raw engines. One matchers value is
// shared by every analysis worker: the same tracker URLs recur across all
// countries, so cross-country memoization is where the cache pays off.
type matchers struct {
	global   listMatcher
	regional map[string]listMatcher
	caches   []*filterlist.CachedEngine
}

func newMatchers(env Env) *matchers {
	m := &matchers{regional: make(map[string]listMatcher, len(env.RegionalLists))}
	wrap := func(e *filterlist.Engine) listMatcher {
		if env.DisableAnalysisCaches {
			return e
		}
		c := filterlist.NewCachedEngine(e)
		m.caches = append(m.caches, c)
		return c
	}
	if env.Lists != nil {
		m.global = wrap(env.Lists)
	}
	for cc, e := range env.RegionalLists {
		if e != nil {
			m.regional[cc] = wrap(e)
		}
	}
	return m
}

// stats sums the match-cache counters across all wrapped engines.
func (m *matchers) stats() filterlist.MatchCacheStats {
	var out filterlist.MatchCacheStats
	for _, c := range m.caches {
		s := c.Stats()
		out.Hits += s.Hits
		out.Misses += s.Misses
	}
	return out
}

func processCountry(env Env, match *matchers, fw *geoloc.Framework, ds *core.Dataset) (*CountryResult, error) {
	volCity, ok := env.Reg.City(ds.City)
	if !ok {
		return nil, fmt.Errorf("unknown volunteer city %q", ds.City)
	}
	cr := &CountryResult{
		Country:  ds.Country,
		City:     volCity,
		Verdicts: make(map[string]DomainObs),
	}

	// Collect the volunteer's traceroutes by target address, and decide
	// whether they are usable at all.
	volTraces := map[string]tracert.Normalized{}
	anyReached := false
	for _, p := range ds.Pages {
		for _, tr := range p.Traceroutes {
			cr.Traces.SourceLaunched++
			if tr.Reached {
				anyReached = true
				cr.Traces.SourceReached++
			}
			if _, dup := volTraces[tr.Target]; !dup || tr.Reached {
				volTraces[tr.Target] = tr
			}
		}
	}

	// Gather every (domain -> addr, rdns) observation, excluding webdriver
	// noise.
	noiseDomains := map[string]bool{}
	realDomains := map[string]bool{}
	for _, p := range ds.Pages {
		for _, req := range p.Load.Requests {
			if req.Initiator == "webdriver" {
				noiseDomains[req.Domain] = true
			} else if !req.Blocked {
				realDomains[req.Domain] = true
			}
		}
	}
	isNoise := func(domain string) bool { return noiseDomains[domain] && !realDomains[domain] }

	domainAddr := map[string]netip.Addr{}
	domainRDNS := map[string]string{}
	domainChain := map[string][]string{}
	for _, p := range ds.Pages {
		for _, rec := range p.DNS {
			if rec.Err != "" || rec.Addr == "" || isNoise(rec.Domain) {
				continue
			}
			addr, err := netip.ParseAddr(rec.Addr)
			if err != nil {
				continue
			}
			domainAddr[rec.Domain] = addr
			if rec.RDNS != "" {
				domainRDNS[rec.Domain] = rec.RDNS
			}
			if len(rec.CNAMEChain) > 1 {
				domainChain[rec.Domain] = rec.CNAMEChain
			}
		}
	}

	// Source-trace substitution: in countries whose volunteer probes
	// failed (middlebox filtering) or were opted out, re-launch from the
	// nearest Atlas probe — possibly in a neighbouring country, as with
	// Qatar (probe in Saudi Arabia) and Jordan (probe in Israel).
	sourceCity := volCity
	cr.TraceOrigin = "volunteer"
	traceFor := func(addr netip.Addr) *tracert.Normalized {
		if tr, ok := volTraces[addr.String()]; ok {
			trCopy := tr
			return &trCopy
		}
		return nil
	}
	if !anyReached && len(domainAddr) > 0 {
		if env.Mesh == nil {
			return nil, fmt.Errorf("volunteer traces unusable and no probe mesh available")
		}
		vol, ok := env.Net.VantageByID("vol-" + strings.ToLower(ds.Country))
		var preferASN uint32
		if ok {
			preferASN = vol.ASN
		}
		probe, ok := env.Mesh.NearestProbe(volCity.Coord, preferASN)
		if !ok {
			return nil, fmt.Errorf("no substitute probe near %s", volCity.ID())
		}
		sourceCity = probe.City
		cr.TraceOrigin = fmt.Sprintf("atlas:%s", probe.City.ID())
		probeTraces := map[string]tracert.Normalized{}
		for _, addr := range sortedAddrs(domainAddr) {
			resTr, err := env.Mesh.Traceroute(probe, addr)
			if err != nil {
				return nil, err
			}
			cr.Traces.SourceLaunched++
			norm := tracert.FromResult(resTr)
			if norm.Reached {
				cr.Traces.SourceReached++
			}
			probeTraces[addr.String()] = norm
		}
		traceFor = func(addr netip.Addr) *tracert.Normalized {
			if tr, ok := probeTraces[addr.String()]; ok {
				trCopy := tr
				return &trCopy
			}
			return nil
		}
	}

	// Classify every unique domain once.
	for _, domain := range sortedKeys(domainAddr) {
		addr := domainAddr[domain]
		verdict := fw.Classify(ds.Country, sourceCity, geoloc.Candidate{
			Domain: domain,
			Addr:   addr,
			RDNS:   domainRDNS[domain],
			Trace:  traceFor(addr),
		})
		if isDestStage(verdict.Stage) {
			cr.Traces.DestLaunched++
		} else if verdict.Class == geoloc.NonLocal {
			cr.Traces.DestLaunched++ // retained claims also consumed a destination trace
		}
		obs := DomainObs{
			Domain:      domain,
			Addr:        addr.String(),
			Class:       verdict.Class,
			Stage:       verdict.Stage,
			DestCountry: verdict.DestCountry,
			DestCity:    verdict.DestCity,
			CNAMEChain:  domainChain[domain],
		}
		annotate(env, match, ds.Country, &obs)
		cr.Verdicts[domain] = obs
	}

	var verdictList []geoloc.Verdict
	//gammavet:ignore maporder Tally only counts (Class, Stage) occurrences, so the result is independent of element order
	for _, obs := range cr.Verdicts {
		verdictList = append(verdictList, geoloc.Verdict{Class: obs.Class, Stage: obs.Stage})
	}
	cr.Funnel = geoloc.Tally(verdictList)

	// Materialize per-site results.
	for _, p := range ds.Pages {
		cr.Targets++
		sr := SiteResult{
			Country:  ds.Country,
			Site:     p.Target.Domain,
			Kind:     p.Target.Kind,
			LoadOK:   p.Load.OK,
			OptedOut: p.OptedOut,
		}
		if p.OptedOut {
			cr.OptOuts++
		}
		if p.Load.OK {
			cr.LoadedOK++
			seen := map[string]bool{}
			for _, rec := range p.DNS {
				if isNoise(rec.Domain) || seen[rec.Domain] {
					continue
				}
				seen[rec.Domain] = true
				if obs, ok := cr.Verdicts[rec.Domain]; ok {
					// First-party is site-relative; recompute per site. A
					// cloaked tracker only *looks* first-party — ownership
					// follows the CNAME target, so it never counts as one.
					obs.FirstParty = !obs.Cloaked && env.Orgs != nil &&
						env.Orgs.IsFirstParty(p.Target.Domain, rec.Domain)
					sr.Domains = append(sr.Domains, obs)
				}
			}
		}
		cr.Sites = append(cr.Sites, sr)
	}
	return cr, nil
}

func isDestStage(s geoloc.Stage) bool {
	switch s {
	case geoloc.StageDestUnreach, geoloc.StageDestSOL, geoloc.StageDestTooFar, geoloc.StageRDNSConflict:
		return true
	default:
		return false
	}
}

// annotate attaches tracker identification, organization ownership and
// hosting-AS metadata to a non-local domain observation.
func annotate(env Env, match *matchers, cc string, obs *DomainObs) {
	if env.Net != nil {
		if addr, err := netip.ParseAddr(obs.Addr); err == nil {
			if host, ok := env.Net.HostByAddr(addr); ok {
				obs.HostASN = host.ASN
				if as, ok := env.Net.ASByNumber(host.ASN); ok {
					obs.HostASOrg = as.Org
				}
			}
		}
	}
	if env.Orgs != nil {
		if org, ok := env.Orgs.OrgOf(obs.Domain); ok {
			obs.Org = org.Name
			obs.OrgCountry = org.Country
		}
	}
	if obs.Class != geoloc.NonLocal {
		return
	}
	// Filter lists first (§4.2)...
	page := "unrelated-page.example"
	if match.global != nil {
		if blocked, rule := match.global.MatchName(obs.Domain, page); blocked {
			obs.IsTracker = true
			obs.TrackerSource = rule.List
			return
		}
	}
	if regional, ok := match.regional[cc]; ok {
		if blocked, rule := regional.MatchName(obs.Domain, page); blocked {
			obs.IsTracker = true
			obs.TrackerSource = rule.List
			return
		}
	}
	// ...then manual inspection via the organization database. Consumer
	// site domains (google.com itself) are never labelled trackers — the
	// inspection targets tracking endpoints, not destinations users visit.
	if env.Orgs != nil {
		if org, ok := env.Orgs.OrgOf(obs.Domain); ok && trackerCategories[org.Category] &&
			!env.Orgs.IsConsumerDomain(obs.Domain) {
			obs.IsTracker = true
			obs.TrackerSource = "manual"
			return
		}
	}
	// ...finally, CNAME-chain inspection: a first-party-looking name that
	// aliases onto tracker infrastructure is a cloaked tracker. Lists miss
	// it by construction; the chain Gamma recorded does not.
	for _, alias := range obs.CNAMEChain[min(1, len(obs.CNAMEChain)):] {
		if matchTrackerName(match, cc, alias) {
			obs.IsTracker = true
			obs.Cloaked = true
			obs.TrackerSource = "cname:" + alias
			return
		}
		if env.Orgs != nil {
			if org, ok := env.Orgs.OrgOf(alias); ok && trackerCategories[org.Category] &&
				!env.Orgs.IsConsumerDomain(alias) {
				obs.IsTracker = true
				obs.Cloaked = true
				obs.TrackerSource = "cname:" + alias
				return
			}
		}
	}
}

// matchTrackerName checks a bare hostname against the filter engines.
func matchTrackerName(match *matchers, cc, hostname string) bool {
	const page = "unrelated-page.example"
	if match.global != nil {
		if blocked, _ := match.global.MatchName(hostname, page); blocked {
			return true
		}
	}
	if regional, ok := match.regional[cc]; ok {
		if blocked, _ := regional.MatchName(hostname, page); blocked {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedAddrs(m map[string]netip.Addr) []netip.Addr {
	seen := map[netip.Addr]bool{}
	var out []netip.Addr
	for _, a := range m {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
