package pipeline_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

// benchState records the full 23-country study corpus once; recording is
// Box 1 work and must not be charged to the Box 2 benchmark.
var benchState struct {
	once     sync.Once
	world    *gamma.World
	datasets []*core.Dataset
	err      error
}

func benchCorpus(b *testing.B) (*gamma.World, []*core.Dataset) {
	b.Helper()
	benchState.once.Do(func() {
		w, err := gamma.NewWorld(42)
		if err != nil {
			benchState.err = err
			return
		}
		sels, err := gamma.SelectTargets(w)
		if err != nil {
			benchState.err = err
			return
		}
		codes := make([]string, 0, len(w.Volunteers))
		for cc := range w.Volunteers {
			codes = append(codes, cc)
		}
		sort.Strings(codes)
		ctx := context.Background()
		for _, cc := range codes {
			ds, err := gamma.RunVolunteer(ctx, w, cc, sels[cc])
			if err != nil {
				benchState.err = fmt.Errorf("record %s: %w", cc, err)
				return
			}
			benchState.datasets = append(benchState.datasets, ds)
		}
		benchState.world = w
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.world, benchState.datasets
}

// BenchmarkProcessParallel sweeps the analysis worker pool over the full
// 23-country corpus, with the shared caches on (production topology) and
// off (serial-era topology), to measure the Parallel Box 2 speedup.
func BenchmarkProcessParallel(b *testing.B) {
	w, datasets := benchCorpus(b)
	for _, cache := range []struct {
		name    string
		disable bool
	}{{"cache=on", false}, {"cache=off", true}} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", cache.name, workers), func(b *testing.B) {
				env := gamma.PipelineEnv(w)
				env.AnalysisWorkers = workers
				env.DisableAnalysisCaches = cache.disable
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.Process(env, datasets); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
