package pipeline_test

import (
	"strings"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

// emptyDataset returns a structurally valid volunteer upload with zero
// pages: the volunteer installed the tool and submitted before visiting
// any site.
func emptyDataset(cc, city string) *core.Dataset {
	return &core.Dataset{
		SchemaVersion: 1,
		VolunteerID:   "edge-" + cc,
		Country:       cc,
		City:          city,
	}
}

func TestProcessEdgeCases(t *testing.T) {
	f := setup(t)
	cases := []struct {
		name     string
		datasets func() []*core.Dataset
		wantErr  string // substring; empty means success
		check    func(t *testing.T, res *pipeline.Result)
	}{
		{
			name:     "empty dataset list",
			datasets: func() []*core.Dataset { return nil },
			check: func(t *testing.T, res *pipeline.Result) {
				if len(res.Countries) != 0 {
					t.Errorf("countries = %v, want none", res.CountryCodes())
				}
				if res.Funnel.DomainObservations != 0 {
					t.Errorf("funnel not empty: %+v", res.Funnel)
				}
			},
		},
		{
			name: "zero-page dataset",
			datasets: func() []*core.Dataset {
				return []*core.Dataset{emptyDataset("PK", "Karachi, PK")}
			},
			check: func(t *testing.T, res *pipeline.Result) {
				cr := res.Countries["PK"]
				if cr == nil {
					t.Fatal("PK missing from result")
				}
				if cr.Targets != 0 || len(cr.Verdicts) != 0 {
					t.Errorf("zero-page dataset produced targets=%d verdicts=%d", cr.Targets, len(cr.Verdicts))
				}
				// No pages means no failed traceroutes, so no Atlas
				// substitution may be triggered.
				if cr.TraceOrigin != "volunteer" {
					t.Errorf("trace origin = %q, want volunteer", cr.TraceOrigin)
				}
			},
		},
		{
			name: "duplicate country codes",
			datasets: func() []*core.Dataset {
				return []*core.Dataset{
					emptyDataset("PK", "Karachi, PK"),
					emptyDataset("PK", "Lahore, PK"),
				}
			},
			wantErr: "duplicate country PK",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := pipeline.Process(gamma.PipelineEnv(f.world), tc.datasets())
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, res)
		})
	}
}
