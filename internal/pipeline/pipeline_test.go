package pipeline_test

import (
	"context"
	"strings"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

// fixture runs three representative volunteers once for the whole package:
// PK (normal), EG (traceroute opt-out -> Atlas substitution), AU (blocked
// probes -> Atlas substitution).
type fixture struct {
	world    *gamma.World
	result   *gamma.Result
	datasets []*core.Dataset
	pk       *core.Dataset
}

var shared *fixture

func setup(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	w, err := gamma.NewWorld(11)
	if err != nil {
		t.Fatal(err)
	}
	sels, err := gamma.SelectTargets(w)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var datasets []*core.Dataset
	var pk *core.Dataset
	for _, cc := range []string{"PK", "EG", "AU"} {
		ds, err := gamma.RunVolunteer(ctx, w, cc, sels[cc])
		if err != nil {
			t.Fatal(err)
		}
		if cc == "PK" {
			pk = ds
		}
		datasets = append(datasets, ds)
	}
	res, err := gamma.Analyze(w, datasets)
	if err != nil {
		t.Fatal(err)
	}
	shared = &fixture{world: w, result: res, datasets: datasets, pk: pk}
	return shared
}

func TestProcessProducesCountries(t *testing.T) {
	f := setup(t)
	if len(f.result.Countries) != 3 {
		t.Fatalf("countries = %v", f.result.CountryCodes())
	}
	for _, cc := range []string{"PK", "EG", "AU"} {
		cr := f.result.Countries[cc]
		if cr == nil {
			t.Fatalf("missing country %s", cc)
		}
		if cr.Targets < 90 {
			t.Errorf("%s targets = %d", cc, cr.Targets)
		}
		if cr.LoadedOK == 0 {
			t.Errorf("%s loaded none", cc)
		}
		if len(cr.Verdicts) < 100 {
			t.Errorf("%s verdicts = %d", cc, len(cr.Verdicts))
		}
	}
}

func TestWebdriverNoiseStripped(t *testing.T) {
	f := setup(t)
	for cc, cr := range f.result.Countries {
		for domain := range cr.Verdicts {
			if strings.Contains(domain, "googleapis.com") && strings.HasPrefix(domain, "update.") {
				t.Errorf("%s: webdriver noise domain %q leaked into verdicts", cc, domain)
			}
			if strings.HasPrefix(domain, "optimizationguide") || strings.HasPrefix(domain, "safebrowsing") {
				t.Errorf("%s: webdriver noise domain %q leaked into verdicts", cc, domain)
			}
		}
	}
	// The raw dataset DOES contain the noise — stripping happens in Box 2.
	foundNoise := false
	for _, p := range f.pk.Pages {
		for _, r := range p.Load.Requests {
			if r.Initiator == "webdriver" {
				foundNoise = true
			}
		}
	}
	if !foundNoise {
		t.Error("raw dataset should contain webdriver requests")
	}
}

func TestTraceSubstitution(t *testing.T) {
	f := setup(t)
	if got := f.result.Countries["PK"].TraceOrigin; got != "volunteer" {
		t.Errorf("PK trace origin = %q, want volunteer", got)
	}
	for _, cc := range []string{"EG", "AU"} {
		origin := f.result.Countries[cc].TraceOrigin
		if !strings.HasPrefix(origin, "atlas:") {
			t.Errorf("%s trace origin = %q, want atlas substitute", cc, origin)
		}
	}
	// Egypt's substitute probe must be in Egypt (probes exist there);
	// Australia's likewise.
	if !strings.Contains(f.result.Countries["EG"].TraceOrigin, ", EG") {
		t.Errorf("EG substitute should be in-country: %s", f.result.Countries["EG"].TraceOrigin)
	}
}

func TestAnonymizationAfterAnalysis(t *testing.T) {
	f := setup(t)
	if f.pk.VolunteerIP != "" || !f.pk.Anonymized {
		t.Error("pipeline must anonymize datasets after analysis")
	}
}

func TestFunnelMonotonicity(t *testing.T) {
	f := setup(t)
	fn := f.result.Funnel
	if fn.NonLocalClaimed > fn.DomainObservations {
		t.Error("claimed non-local cannot exceed observations")
	}
	if fn.AfterSOL > fn.NonLocalClaimed || fn.AfterRDNS > fn.AfterSOL || fn.Trackers > fn.AfterRDNS {
		t.Errorf("funnel not monotone: %+v", fn)
	}
	if fn.Trackers == 0 {
		t.Error("no trackers identified")
	}
	if fn.UniqueDomains == 0 || fn.UniqueIPs == 0 {
		t.Error("unique counts missing")
	}
}

func TestTrackerIdentificationSources(t *testing.T) {
	f := setup(t)
	sources := map[string]int{}
	for _, src := range f.result.TrackerDomains {
		sources[src]++
	}
	if sources["easylist"] == 0 {
		t.Error("no easylist identifications")
	}
	if sources["easyprivacy"] == 0 {
		t.Error("no easyprivacy identifications")
	}
	if sources["manual"] == 0 {
		t.Error("no manual identifications")
	}
}

func TestVerdictsCarryAnnotations(t *testing.T) {
	f := setup(t)
	orgSeen, asnSeen := false, false
	for _, obs := range f.result.Countries["PK"].Verdicts {
		if obs.Class != geoloc.NonLocal || !obs.IsTracker {
			continue
		}
		if obs.Org != "" {
			orgSeen = true
		}
		if obs.HostASN != 0 && obs.HostASOrg != "" {
			asnSeen = true
		}
		if obs.DestCountry == "" || obs.DestCity == "" {
			t.Errorf("retained non-local %s missing destination", obs.Domain)
		}
	}
	if !orgSeen || !asnSeen {
		t.Error("annotations (org, ASN) missing from tracker verdicts")
	}
}

func TestSiteResultsReferenceVerdicts(t *testing.T) {
	f := setup(t)
	cr := f.result.Countries["PK"]
	for _, s := range cr.Sites {
		if s.OptedOut && s.LoadOK {
			t.Error("opted-out site cannot be loaded")
		}
		for _, d := range s.Domains {
			if _, ok := cr.Verdicts[d.Domain]; !ok {
				t.Errorf("site %s domain %s missing from country verdicts", s.Site, d.Domain)
			}
		}
	}
}

func TestProcessRejectsBadEnv(t *testing.T) {
	if _, err := pipeline.Process(pipeline.Env{}, nil); err == nil {
		t.Error("empty env must fail")
	}
}

func TestProcessRejectsUnknownCity(t *testing.T) {
	f := setup(t)
	env := gamma.PipelineEnv(f.world)
	bad := &core.Dataset{SchemaVersion: 1, VolunteerID: "x", Country: "PK", City: "Atlantis, XX"}
	if _, err := pipeline.Process(env, []*core.Dataset{bad}); err == nil {
		t.Error("unknown volunteer city must fail")
	}
}

func TestCNAMECloakedTrackersDetected(t *testing.T) {
	f := setup(t)
	found := 0
	for _, cc := range f.result.CountryCodes() {
		for _, obs := range f.result.Countries[cc].Verdicts {
			if !obs.Cloaked {
				continue
			}
			found++
			if !obs.IsTracker {
				t.Errorf("cloaked %s not marked tracker", obs.Domain)
			}
			if !strings.HasPrefix(obs.TrackerSource, "cname:") {
				t.Errorf("cloaked %s source = %q", obs.Domain, obs.TrackerSource)
			}
			if !strings.HasPrefix(obs.Domain, "metrics.") {
				t.Errorf("unexpected cloak shape %q", obs.Domain)
			}
			if len(obs.CNAMEChain) < 2 {
				t.Errorf("cloaked %s missing chain", obs.Domain)
			}
		}
	}
	if found == 0 {
		t.Error("no cloaked trackers detected in PK/EG/AU corpus")
	}
	if f.result.Funnel.CloakedTrackers == 0 {
		t.Error("funnel missed cloaked trackers")
	}
	// Cloaked names look first-party but must never be counted as such.
	for _, cc := range f.result.CountryCodes() {
		for _, s := range f.result.Countries[cc].Sites {
			for _, d := range s.Domains {
				if d.Cloaked && d.FirstParty {
					t.Errorf("cloaked %s on %s counted first-party", d.Domain, s.Site)
				}
			}
		}
	}
}
