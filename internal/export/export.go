// Package export materializes the study's public artifacts: the paper
// releases its tool and data ([2] in the references), and this package
// writes the analyzed corpus as CSV files — one per table/figure — that
// downstream researchers can load without any Go tooling. Volunteer IPs
// never appear in exports (§3.5 anonymization).
package export

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"github.com/gamma-suite/gamma/internal/analysis"
	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/geoloc"
	"github.com/gamma-suite/gamma/internal/pipeline"
)

// writeCSV writes one file with a header row.
func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("export: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	if err := w.WriteAll(rows); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	w.Flush()
	return w.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// sortedKeys fixes an iteration order for map-driven CSV rows; exported
// artifacts must be byte-identical across runs of the same seed.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
func itoa(v int) string { return strconv.Itoa(v) }

// Artifacts writes every figure's and table's data into dir and returns the
// file names written.
func Artifacts(res *pipeline.Result, reg *geo.Registry, policies map[string]analysis.PolicyInfo, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("export: %w", err)
	}
	var written []string
	emit := func(name string, header []string, rows [][]string) error {
		if err := writeCSV(filepath.Join(dir, name), header, rows); err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}

	// funnel.csv
	f := res.Funnel
	if err := emit("funnel.csv",
		[]string{"stage", "count"},
		[][]string{
			{"targets", itoa(f.Targets)},
			{"targets_after_opt_out", itoa(f.TargetsAfterOptOut)},
			{"unique_targets", itoa(f.UniqueTargets)},
			{"loaded_ok", itoa(f.LoadedOK)},
			{"domain_observations", itoa(f.DomainObservations)},
			{"unique_domains", itoa(f.UniqueDomains)},
			{"unique_ips", itoa(f.UniqueIPs)},
			{"source_traceroutes", itoa(f.SourceTraceroutes)},
			{"dest_traceroutes", itoa(f.DestTraceroutes)},
			{"non_local_claimed", itoa(f.NonLocalClaimed)},
			{"after_sol_constraints", itoa(f.AfterSOL)},
			{"after_rdns_constraint", itoa(f.AfterRDNS)},
			{"trackers", itoa(f.Trackers)},
			{"cloaked_trackers", itoa(f.CloakedTrackers)},
		}); err != nil {
		return written, err
	}

	// fig2.csv
	comp := analysis.Fig2Composition(res)
	loads := analysis.Fig2LoadSuccess(res)
	loadBy := map[string]float64{}
	for _, l := range loads {
		loadBy[l.Country] = l.Pct
	}
	var rows [][]string
	for _, c := range comp {
		rows = append(rows, []string{c.Country, itoa(c.Regional), itoa(c.Government), ftoa(loadBy[c.Country])})
	}
	if err := emit("fig2.csv", []string{"country", "regional_targets", "government_targets", "load_success_pct"}, rows); err != nil {
		return written, err
	}

	// fig3.csv
	rows = nil
	for _, p := range analysis.Fig3Prevalence(res) {
		rows = append(rows, []string{p.Country, ftoa(p.RegionalPct), ftoa(p.GovernmentPct), ftoa(p.OverallPct)})
	}
	if err := emit("fig3.csv", []string{"country", "regional_pct", "government_pct", "overall_pct"}, rows); err != nil {
		return written, err
	}

	// fig4.csv
	rows = nil
	for _, d := range analysis.Fig4Distribution(res) {
		b := d.Combined
		rows = append(rows, []string{
			d.Country, itoa(b.N), ftoa(b.Min), ftoa(b.Q1), ftoa(b.Median),
			ftoa(b.Q3), ftoa(b.Max), ftoa(b.Mean), ftoa(b.StdDev), itoa(len(b.Outliers)),
		})
	}
	if err := emit("fig4.csv", []string{"country", "sites", "min", "q1", "median", "q3", "max", "mean", "stddev", "outliers"}, rows); err != nil {
		return written, err
	}

	// fig5_flows.csv / fig5_shares.csv
	rows = nil
	for _, fl := range analysis.Fig5CountryFlows(res) {
		rows = append(rows, []string{fl.Source, fl.Dest, itoa(fl.Sites)})
	}
	if err := emit("fig5_flows.csv", []string{"source", "destination", "sites"}, rows); err != nil {
		return written, err
	}
	rows = nil
	for _, s := range analysis.Fig5DestShares(res) {
		rows = append(rows, []string{s.Dest, ftoa(s.SitePct), itoa(s.Sites), itoa(s.SourceCount)})
	}
	if err := emit("fig5_shares.csv", []string{"destination", "site_pct", "sites", "source_countries"}, rows); err != nil {
		return written, err
	}

	// fig6.csv
	rows = nil
	for _, fl := range analysis.Fig6ContinentFlows(res, reg) {
		rows = append(rows, []string{string(fl.Source), string(fl.Dest), itoa(fl.Sites)})
	}
	if err := emit("fig6.csv", []string{"source_continent", "dest_continent", "sites"}, rows); err != nil {
		return written, err
	}

	// fig7.csv
	rows = nil
	for _, h := range analysis.Fig7HostingCounts(res) {
		rows = append(rows, []string{h.Dest, itoa(h.Domains)})
	}
	if err := emit("fig7.csv", []string{"hosting_country", "distinct_tracking_domains"}, rows); err != nil {
		return written, err
	}

	// fig8.csv
	rows = nil
	for _, fl := range analysis.Fig8OrgFlows(res) {
		rows = append(rows, []string{fl.Source, fl.Org, itoa(fl.Sites)})
	}
	if err := emit("fig8.csv", []string{"source", "organization", "sites"}, rows); err != nil {
		return written, err
	}

	// fig9.csv
	rows = nil
	for _, df := range analysis.Fig9DomainFrequency(res) {
		for _, domain := range sortedKeys(df.Counts) {
			rows = append(rows, []string{df.Country, domain, itoa(df.Counts[domain])})
		}
	}
	if err := emit("fig9.csv", []string{"country", "domain", "sites"}, rows); err != nil {
		return written, err
	}

	// table1.csv
	rows = nil
	for _, r := range analysis.Table1(analysis.Fig3Prevalence(res), policies) {
		enacted := "yes"
		if !r.Enacted {
			enacted = "no"
		}
		rows = append(rows, []string{r.Country, r.Type, enacted, ftoa(r.NonLocalPct), r.Note})
	}
	if err := emit("table1.csv", []string{"country", "policy_type", "enacted", "non_local_pct", "note"}, rows); err != nil {
		return written, err
	}

	// trackers.csv — the identified tracker domains with attribution.
	rows = nil
	for _, cc := range res.CountryCodes() {
		for _, obs := range res.Countries[cc].SortedDomains() {
			if obs.Class != geoloc.NonLocal || !obs.IsTracker {
				continue
			}
			rows = append(rows, []string{
				cc, obs.Domain, obs.DestCountry, obs.DestCity,
				obs.Org, obs.OrgCountry, obs.TrackerSource,
				strconv.FormatBool(obs.Cloaked),
			})
		}
	}
	if err := emit("trackers.csv",
		[]string{"source_country", "domain", "dest_country", "dest_city", "org", "org_hq", "identified_via", "cloaked"},
		rows); err != nil {
		return written, err
	}
	return written, nil
}
