package export_test

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	gamma "github.com/gamma-suite/gamma"
	"github.com/gamma-suite/gamma/internal/core"
	"github.com/gamma-suite/gamma/internal/export"
)

func TestArtifacts(t *testing.T) {
	w, err := gamma.NewWorld(13)
	if err != nil {
		t.Fatal(err)
	}
	sels, err := gamma.SelectTargets(w)
	if err != nil {
		t.Fatal(err)
	}
	var datasets []*core.Dataset
	for _, cc := range []string{"PK", "NZ"} {
		ds, err := gamma.RunVolunteer(t.Context(), w, cc, sels[cc])
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, ds)
	}
	res, err := gamma.Analyze(w, datasets)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	written, err := export.Artifacts(res, w.Registry, gamma.PolicyRegistry(w), dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"funnel.csv", "fig2.csv", "fig3.csv", "fig4.csv", "fig5_flows.csv",
		"fig5_shares.csv", "fig6.csv", "fig7.csv", "fig8.csv", "fig9.csv",
		"table1.csv", "trackers.csv",
	}
	if len(written) != len(want) {
		t.Fatalf("written = %v", written)
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		records, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s is not valid CSV: %v", name, err)
		}
		if len(records) < 2 && name != "fig9.csv" {
			t.Errorf("%s has no data rows", name)
		}
	}

	// The tracker export never leaks volunteer IPs and marks attribution.
	raw, _ := os.ReadFile(filepath.Join(dir, "trackers.csv"))
	content := string(raw)
	for _, vol := range w.Volunteers {
		if vol.Addr.IsValid() && strings.Contains(content, vol.Addr.String()) {
			t.Error("volunteer IP leaked into public artifact")
		}
	}
	if !strings.Contains(content, "easylist") && !strings.Contains(content, "manual") {
		t.Error("tracker attribution missing")
	}
}
