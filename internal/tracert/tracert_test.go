package tracert

import (
	"math"
	"net/netip"
	"strings"
	"testing"

	"github.com/gamma-suite/gamma/internal/geo"
	"github.com/gamma-suite/gamma/internal/netsim"
)

// sampleResult builds a reached trace with a silent middle hop.
func sampleResult() netsim.TraceResult {
	dst := netip.MustParseAddr("20.0.0.7")
	return netsim.TraceResult{
		From: "vol-x",
		Dst:  dst,
		Hops: []netsim.Hop{
			{Index: 1, Addr: netip.MustParseAddr("198.18.0.1"), RTTMs: []float64{4.1, 4.5, 4.2}, Responded: true},
			{Index: 2},
			{Index: 3, Addr: netip.MustParseAddr("198.18.0.3"), RTTMs: []float64{11.9, 12.4, 12.0}, Responded: true},
			{Index: 4, Addr: dst, RTTMs: []float64{22.7, 23.1, 22.9}, Responded: true},
		},
		Reached: true,
	}
}

func TestRenderParseRoundTripAllFormats(t *testing.T) {
	res := sampleResult()
	want := FromResult(res)
	for _, f := range []Format{FormatLinux, FormatWindows, FormatScapy} {
		text, err := Render(res, f)
		if err != nil {
			t.Fatalf("%v: render: %v", f, err)
		}
		got, err := Parse(text)
		if err != nil {
			t.Fatalf("%v: parse: %v", f, err)
		}
		if got.Target != want.Target {
			t.Errorf("%v: target %q, want %q", f, got.Target, want.Target)
		}
		if got.Reached != want.Reached {
			t.Errorf("%v: reached %v, want %v", f, got.Reached, want.Reached)
		}
		if len(got.Hops) != len(want.Hops) {
			t.Fatalf("%v: %d hops, want %d", f, len(got.Hops), len(want.Hops))
		}
		for i := range got.Hops {
			if got.Hops[i].Hop != want.Hops[i].Hop {
				t.Errorf("%v hop %d: index %d", f, i, got.Hops[i].Hop)
			}
			if got.Hops[i].Addr != want.Hops[i].Addr {
				t.Errorf("%v hop %d: addr %q, want %q", f, i, got.Hops[i].Addr, want.Hops[i].Addr)
			}
			// Windows rounds to whole ms; allow 1ms slack. Others are near-exact.
			tol := 0.01
			if f == FormatWindows {
				tol = 1.0
			}
			if math.Abs(got.Hops[i].BestRTT()-want.Hops[i].BestRTT()) > tol {
				t.Errorf("%v hop %d: RTT %.3f, want %.3f (tol %.2f)", f, i, got.Hops[i].BestRTT(), want.Hops[i].BestRTT(), tol)
			}
		}
	}
}

// TestNormalizedStructureIdentical verifies the paper's key portability
// claim: regardless of which tool produced the output, the normalized JSON
// has the identical structure (same hops, same addresses, same reach bit).
func TestNormalizedStructureIdentical(t *testing.T) {
	res := sampleResult()
	var structures []string
	for _, f := range []Format{FormatLinux, FormatWindows, FormatScapy} {
		text, err := Render(res, f)
		if err != nil {
			t.Fatal(err)
		}
		n, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		// Erase RTT precision differences; compare structure.
		for i := range n.Hops {
			if len(n.Hops[i].RTTMs) > 0 {
				n.Hops[i].RTTMs = []float64{math.Round(n.Hops[i].BestRTT())}
			}
		}
		js, err := n.JSON()
		if err != nil {
			t.Fatal(err)
		}
		structures = append(structures, string(js))
	}
	if structures[0] != structures[1] || structures[1] != structures[2] {
		t.Errorf("normalized structures differ:\n%s\n%s\n%s", structures[0], structures[1], structures[2])
	}
}

func TestUnreachedTrace(t *testing.T) {
	res := sampleResult()
	res.Reached = false
	res.Hops[3] = netsim.Hop{Index: 4} // destination silent
	for _, f := range []Format{FormatLinux, FormatWindows, FormatScapy} {
		text, _ := Render(res, f)
		n, err := Parse(text)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if n.Reached {
			t.Errorf("%v: unreached trace parsed as reached", f)
		}
		if n.LastHopRTT() != 0 {
			t.Errorf("%v: unreached trace must report 0 last-hop RTT", f)
		}
		if n.FirstHopRTT() == 0 {
			t.Errorf("%v: first hop responded; RTT should be nonzero", f)
		}
	}
}

func TestSubMillisecondWindows(t *testing.T) {
	res := sampleResult()
	res.Hops[0].RTTMs = []float64{0.3, 0.4, 0.2}
	text, _ := Render(res, FormatWindows)
	if !strings.Contains(text, "<1 ms") {
		t.Fatalf("expected <1 ms rendering:\n%s", text)
	}
	n, err := ParseWindows(text)
	if err != nil {
		t.Fatal(err)
	}
	if rtt := n.Hops[0].BestRTT(); rtt != 0.5 {
		t.Errorf("sub-ms hop parsed as %.2f, want 0.5 placeholder", rtt)
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		text string
		want Format
		err  bool
	}{
		{"traceroute to 1.2.3.4 (1.2.3.4), 30 hops max", FormatLinux, false},
		{"\nTracing route to 1.2.3.4 over a maximum of 30 hops\n", FormatWindows, false},
		{`{"target":"1.2.3.4","hops":[]}`, FormatScapy, false},
		{"ping statistics", 0, true},
	}
	for _, tc := range cases {
		got, err := Detect(tc.text)
		if tc.err {
			if err == nil {
				t.Errorf("Detect(%q) should fail", tc.text)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("Detect(%q) = %v, %v; want %v", tc.text, got, err, tc.want)
		}
	}
}

func TestParseMalformed(t *testing.T) {
	bad := []string{
		"",
		"traceroute to malformed-header",
		`{"hops":[]}`, // scapy missing target
		"{not json",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestParseLinuxRejectsBadHopIndex(t *testing.T) {
	text := "traceroute to 1.2.3.4 (1.2.3.4), 30 hops max\n x  1.1.1.1 (1.1.1.1)  1.0 ms\n"
	if _, err := ParseLinux(text); err == nil {
		t.Error("bad hop index should fail")
	}
}

func TestParseWindowsLostProbes(t *testing.T) {
	text := "Tracing route to 9.9.9.9 over a maximum of 30 hops\n\n" +
		"  1     5 ms     *        6 ms  10.0.0.1\n" +
		"\nTrace complete.\n"
	n, err := ParseWindows(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Hops) != 1 || len(n.Hops[0].RTTMs) != 2 {
		t.Fatalf("partial probe loss: got %+v", n.Hops)
	}
	if n.Hops[0].Addr != "10.0.0.1" {
		t.Errorf("addr = %q", n.Hops[0].Addr)
	}
}

func TestFromSimulatedTracerouteEndToEnd(t *testing.T) {
	// A full loop: simulate, render in all three dialects, parse, and check
	// the RTT geometry survives the portability layer.
	n := netsim.New(netsim.DefaultConfig(21))
	reg := geo.Default()
	_ = n.AddAS(netsim.AS{Number: 5, Name: "x", Org: "x", Country: "TH"})
	bkk, _ := reg.City("Bangkok, TH")
	sgp, _ := reg.City("Singapore, SG")
	v, _ := n.AddVantage(netsim.Vantage{ID: "vol-th", City: bkk, ASN: 5, AccessDelayMs: 7})
	for i := 0; i < 30; i++ {
		h, _ := n.AddHost(netsim.Host{City: sgp, ASN: 5, Responsive: true})
		res, err := n.Traceroute(v.ID, h.Addr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reached {
			continue
		}
		for _, f := range []Format{FormatLinux, FormatWindows, FormatScapy} {
			text, err := Render(res, f)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := Parse(text)
			if err != nil {
				t.Fatalf("%v: %v\n%s", f, err, text)
			}
			if !parsed.Reached {
				t.Fatalf("%v: reached trace parsed as unreached", f)
			}
			d := geo.DistanceKm(bkk.Coord, sgp.Coord)
			if geo.ViolatesSOL(d, parsed.LastHopRTT()+1) {
				t.Fatalf("%v: parsed RTT %.2f violates SOL after round-trip", f, parsed.LastHopRTT())
			}
		}
		return // one reached trace fully validated is enough
	}
	t.Fatal("no trace reached in 30 attempts")
}

func TestFormatString(t *testing.T) {
	if FormatLinux.String() != "traceroute" || FormatWindows.String() != "tracert" || FormatScapy.String() != "scapy" {
		t.Error("format names wrong")
	}
	if Format(9).String() == "" {
		t.Error("unknown format should still print")
	}
}

func TestMTRRoundTrip(t *testing.T) {
	res := sampleResult()
	text, err := Render(res, FormatMTR)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "???") {
		t.Error("silent hop should render as ???")
	}
	got, err := Parse(text) // auto-detect
	if err != nil {
		t.Fatal(err)
	}
	want := FromResult(res)
	if got.Target != want.Target || got.Reached != want.Reached || len(got.Hops) != len(want.Hops) {
		t.Fatalf("mtr structure mismatch: %+v", got)
	}
	for i := range got.Hops {
		if got.Hops[i].Addr != want.Hops[i].Addr {
			t.Errorf("hop %d addr %q want %q", i, got.Hops[i].Addr, want.Hops[i].Addr)
		}
		if math.Abs(got.Hops[i].BestRTT()-want.Hops[i].BestRTT()) > 0.11 {
			t.Errorf("hop %d best %.2f want %.2f", i, got.Hops[i].BestRTT(), want.Hops[i].BestRTT())
		}
	}
	if f, err := Detect(text); err != nil || f != FormatMTR {
		t.Errorf("Detect = %v, %v", f, err)
	}
	if FormatMTR.String() != "mtr" {
		t.Error("mtr name")
	}
	if _, err := ParseMTR("garbage"); err == nil {
		t.Error("garbage must not parse as mtr")
	}
}
