package tracert

import "testing"

// FuzzParse drives the auto-detecting parser with hostile inputs. The
// invariant: Parse never panics, and whatever parses successfully has a
// structurally sound result (positive hop indexes, target set).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"traceroute to 20.0.0.7 (20.0.0.7), 30 hops max, 60 byte packets\n 1  198.18.0.1 (198.18.0.1)  4.100 ms  4.500 ms  4.200 ms\n 2  * * *\n",
		"\nTracing route to 20.0.0.7 over a maximum of 30 hops\n\n  1     4 ms     4 ms     5 ms  198.18.0.1\n\nTrace complete.\n",
		`{"target":"20.0.0.7","hops":[{"ttl":1,"src":"198.18.0.1","rtts_s":[0.004]}]}`,
		"Start: 2024-03-16T09:00:00+0000\nHOST: gamma-volunteer -> 20.0.0.7    Loss%   Snt   Last   Avg  Best  Wrst StDev\n  1.|-- 198.18.0.1               0.0%     3    4.2   4.3   4.1   4.5   0.2\n",
		"traceroute to x (", "HOST:", "{", "", "1.|--",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		n, err := Parse(text)
		if err != nil {
			return
		}
		if n.Target == "" {
			t.Errorf("successful parse with empty target: %q", text)
		}
		for _, h := range n.Hops {
			if h.Hop < 0 {
				t.Errorf("negative hop index from %q", text)
			}
			if h.BestRTT() < 0 {
				t.Errorf("negative RTT from %q", text)
			}
		}
		if !n.Reached && n.LastHopRTT() != 0 {
			t.Errorf("unreached trace with nonzero last-hop RTT from %q", text)
		}
	})
}
