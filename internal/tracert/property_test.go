package tracert

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/gamma-suite/gamma/internal/netsim"
)

// genResult builds a structurally valid trace from fuzzed inputs.
func genResult(hopCount uint8, responseMask uint16, rttSeed uint16, reached bool) netsim.TraceResult {
	hops := int(hopCount%18) + 1
	dst := netip.AddrFrom4([4]byte{20, 0, byte(rttSeed >> 8), byte(rttSeed)&0xfe | 1})
	res := netsim.TraceResult{From: "prop", Dst: dst}
	lastResponded := -1
	for i := 1; i <= hops; i++ {
		hop := netsim.Hop{Index: i}
		if responseMask&(1<<uint(i%16)) != 0 {
			hop.Responded = true
			base := float64(rttSeed%500)/10 + float64(i)
			hop.RTTMs = []float64{base, base + 0.5, base + 1.1}
			if i == hops && reached {
				hop.Addr = dst
			} else {
				hop.Addr = netip.AddrFrom4([4]byte{198, 18, byte(i), 1})
			}
			lastResponded = i
		}
		res.Hops = append(res.Hops, hop)
	}
	res.Reached = reached && lastResponded == hops
	return res
}

// TestRenderParsePropertyAllFormats: any structurally valid trace survives
// a render→parse round trip in every dialect with its structure intact.
func TestRenderParsePropertyAllFormats(t *testing.T) {
	formats := []Format{FormatLinux, FormatWindows, FormatScapy}
	f := func(hopCount uint8, responseMask uint16, rttSeed uint16, reached bool) bool {
		res := genResult(hopCount, responseMask, rttSeed, reached)
		want := FromResult(res)
		for _, format := range formats {
			text, err := Render(res, format)
			if err != nil {
				return false
			}
			got, err := Parse(text)
			if err != nil {
				return false
			}
			if got.Target != want.Target || got.Reached != want.Reached || len(got.Hops) != len(want.Hops) {
				return false
			}
			for i := range got.Hops {
				if got.Hops[i].Addr != want.Hops[i].Addr || got.Hops[i].Hop != want.Hops[i].Hop {
					return false
				}
				// RTT precision differs per dialect; 1ms tolerance covers
				// tracert's integer rounding.
				if math.Abs(got.Hops[i].BestRTT()-want.Hops[i].BestRTT()) > 1.0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestFirstLastHopProperty: FirstHopRTT comes from the earliest responding
// hop and LastHopRTT is zero exactly when the trace failed.
func TestFirstLastHopProperty(t *testing.T) {
	f := func(hopCount uint8, responseMask uint16, rttSeed uint16, reached bool) bool {
		n := FromResult(genResult(hopCount, responseMask, rttSeed, reached))
		if !n.Reached && n.LastHopRTT() != 0 {
			return false
		}
		if n.Reached && n.LastHopRTT() <= 0 {
			return false
		}
		first := n.FirstHopRTT()
		for _, h := range n.Hops {
			if len(h.RTTMs) > 0 {
				return first == h.BestRTT()
			}
		}
		return first == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
