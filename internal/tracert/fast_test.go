package tracert

import (
	"encoding/json"
	"fmt"
	"math"
	"net/netip"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"github.com/gamma-suite/gamma/internal/netsim"
)

// The fmt.Fprintf / json.Marshal renderers this package shipped before the
// zero-alloc rewrite, kept verbatim as the reference the differential
// tests compare bytes against.

func renderLinuxRef(res netsim.TraceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "traceroute to %s (%s), 30 hops max, 60 byte packets\n", res.Dst, res.Dst)
	for _, h := range res.Hops {
		if !h.Responded {
			fmt.Fprintf(&b, "%2d  * * *\n", h.Index)
			continue
		}
		fmt.Fprintf(&b, "%2d  %s (%s)", h.Index, h.Addr, h.Addr)
		for _, rtt := range h.RTTMs {
			fmt.Fprintf(&b, "  %.3f ms", rtt)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderWindowsRef(res netsim.TraceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nTracing route to %s over a maximum of 30 hops\n\n", res.Dst)
	for _, h := range res.Hops {
		if !h.Responded {
			fmt.Fprintf(&b, "%3d     *        *        *     Request timed out.\n", h.Index)
			continue
		}
		fmt.Fprintf(&b, "%3d", h.Index)
		for _, rtt := range h.RTTMs {
			ms := int(math.Round(rtt))
			if ms < 1 {
				fmt.Fprintf(&b, "    <1 ms")
			} else {
				fmt.Fprintf(&b, "  %4d ms", ms)
			}
		}
		fmt.Fprintf(&b, "  %s\n", h.Addr)
	}
	b.WriteString("\nTrace complete.\n")
	return b.String()
}

func renderMTRRef(res netsim.TraceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Start: 2024-03-16T09:00:00+0000\n")
	fmt.Fprintf(&b, "HOST: gamma-volunteer -> %s    Loss%%   Snt   Last   Avg  Best  Wrst StDev\n", res.Dst)
	for _, h := range res.Hops {
		if !h.Responded {
			fmt.Fprintf(&b, "%3d.|-- ???                      100.0     3    0.0   0.0   0.0   0.0   0.0\n", h.Index)
			continue
		}
		best, wrst, sum := math.Inf(1), 0.0, 0.0
		for _, v := range h.RTTMs {
			if v < best {
				best = v
			}
			if v > wrst {
				wrst = v
			}
			sum += v
		}
		avg := sum / float64(len(h.RTTMs))
		var ss float64
		for _, v := range h.RTTMs {
			ss += (v - avg) * (v - avg)
		}
		stdev := math.Sqrt(ss / float64(len(h.RTTMs)))
		last := h.RTTMs[len(h.RTTMs)-1]
		fmt.Fprintf(&b, "%3d.|-- %-22s   0.0%%   %3d  %5.1f %5.1f %5.1f %5.1f  %4.1f\n",
			h.Index, h.Addr, len(h.RTTMs), last, avg, best, wrst, stdev)
	}
	return b.String()
}

func renderScapyRef(res netsim.TraceResult) (string, error) {
	rec := scapyRecord{Target: res.Dst.String()}
	for _, h := range res.Hops {
		sh := scapyHop{TTL: h.Index}
		if h.Responded {
			sh.Src = h.Addr.String()
			for _, ms := range h.RTTMs {
				sh.RTTs = append(sh.RTTs, ms/1000)
			}
		}
		rec.Hops = append(rec.Hops, sh)
	}
	out, err := json.Marshal(rec)
	return string(out), err
}

// TestRenderMatchesReference pins the append-based renderers byte for byte
// against the fmt/json reference implementations over generated traces.
func TestRenderMatchesReference(t *testing.T) {
	f := func(hopCount uint8, responseMask uint16, rttSeed uint16, reached bool) bool {
		res := genResult(hopCount, responseMask, rttSeed, reached)
		if got, want := renderLinux(res), renderLinuxRef(res); got != want {
			t.Logf("linux:\n got %q\nwant %q", got, want)
			return false
		}
		if got, want := renderWindows(res), renderWindowsRef(res); got != want {
			t.Logf("windows:\n got %q\nwant %q", got, want)
			return false
		}
		if got, want := renderMTR(res), renderMTRRef(res); got != want {
			t.Logf("mtr:\n got %q\nwant %q", got, want)
			return false
		}
		got, gerr := renderScapy(res)
		want, werr := renderScapyRef(res)
		if (gerr == nil) != (werr == nil) || got != want {
			t.Logf("scapy:\n got %q (%v)\nwant %q (%v)", got, gerr, want, werr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// TestRenderMatchesReferenceEdgeCases covers shapes quick generation can
// miss: no hops, sub-millisecond RTTs, an empty RTT list on a responded
// hop, and an invalid (zero) address.
func TestRenderMatchesReferenceEdgeCases(t *testing.T) {
	cases := []netsim.TraceResult{
		{From: "v", Dst: addr("20.0.0.1")},
		{From: "v", Dst: addr("20.0.0.1"), Hops: []netsim.Hop{
			{Index: 1, Responded: true, Addr: addr("198.18.0.1"), RTTMs: []float64{0.2, 0.4, 0.49}},
			{Index: 2, Responded: true, Addr: addr("198.18.0.2")},
			{Index: 3},
		}},
		{From: "v", Dst: addr("20.0.0.9"), Hops: []netsim.Hop{
			{Index: 1, Responded: true, RTTMs: []float64{1000000.5, 0.0001, 3}},
		}},
	}
	for i, res := range cases {
		if got, want := renderLinux(res), renderLinuxRef(res); got != want {
			t.Errorf("case %d linux:\n got %q\nwant %q", i, got, want)
		}
		if got, want := renderWindows(res), renderWindowsRef(res); got != want {
			t.Errorf("case %d windows:\n got %q\nwant %q", i, got, want)
		}
		if i != 1 { // both MTR renderers reject a responded hop without RTTs
			if got, want := renderMTR(res), renderMTRRef(res); got != want {
				t.Errorf("case %d mtr:\n got %q\nwant %q", i, got, want)
			}
		}
		got, _ := renderScapy(res)
		want, _ := renderScapyRef(res)
		if got != want {
			t.Errorf("case %d scapy:\n got %q\nwant %q", i, got, want)
		}
	}
}

// TestAppendJSONFloatMatchesMarshal pins the canonical float encoding
// against encoding/json across magnitude regimes, including the
// exponent-trimming 'e' branches.
func TestAppendJSONFloatMatchesMarshal(t *testing.T) {
	vals := []float64{0, 0.0005, 0.0123, 1, 1.5, 999.999, 1e-7, 9.99e-7, 1e-9,
		2.5e-21, 1e21, 3.7e22, 123456789.125, 0.1, 1.0 / 3.0}
	for _, v := range vals {
		for _, f := range []float64{v, -v} {
			want, err := json.Marshal(f)
			if err != nil {
				t.Fatal(err)
			}
			if got := string(appendJSONFloat(nil, f)); got != string(want) {
				t.Errorf("appendJSONFloat(%v) = %q, json.Marshal = %q", f, got, want)
			}
		}
	}
}

// TestAppendFixedFloatMatchesStrconv pins the Ryu-routed fixed-point
// formatter against strconv's 'f' output, concentrating on the regimes
// where the layout branch (rather than the fallback) runs: rounding
// carries across powers of ten, leading-zero fractions, tie-adjacent
// magnitudes, and raw random bit patterns.
func TestAppendFixedFloatMatchesStrconv(t *testing.T) {
	check := func(v float64, prec int) {
		t.Helper()
		got := string(appendFixedFloat(nil, v, prec))
		want := string(strconv.AppendFloat(nil, v, 'f', prec, 64))
		if got != want {
			t.Errorf("appendFixedFloat(%g, %d) = %q, strconv = %q", v, prec, got, want)
		}
	}
	fixed := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 0.05, 0.005, 0.0005, 0.00005,
		0.9995, 0.99949999, 9.9995, 99.9995, 999.9995, 999.99949999,
		0.0999999, 0.1, 0.10000001, 1.0 / 3.0, 2.0 / 3.0,
		2.5, 3.5, 0.125, 0.375, 1.0005, 12.3456789,
		1e14, 1e15 - 1, 1e15, 1e16, 1e-7, 1e-8, 5e-4, 4.9999e-4,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Nextafter(1, 0), math.Nextafter(1, 2),
		math.Nextafter(0.1, 0), math.Nextafter(0.1, 1),
		math.Nextafter(1000, 0), math.Nextafter(1000, 2000),
		1000000.5, 0.0001, 3, 0.2, 0.4, 0.49, 17.5004999, 17.5005,
	}
	for _, v := range fixed {
		for _, prec := range []int{1, 2, 3, 6, 9} {
			check(v, prec)
			check(-v, prec)
		}
	}
	// Dense sweep around every power of ten the renderers can see, where
	// the exponent estimate and carry handling are most stressed.
	for e := -6; e <= 16; e++ {
		p := math.Pow(10, float64(e))
		for _, f := range []float64{0.9995, 0.99999, 1, 1.00001, 1.0005, 4.99995, 5.00005, 9.9995, 9.99999} {
			for _, prec := range []int{1, 3} {
				check(p*f, prec)
			}
		}
	}
	f := func(bits uint64, precSel uint8) bool {
		v := math.Float64frombits(bits)
		prec := 1 + int(precSel%9)
		got := string(appendFixedFloat(nil, v, prec))
		want := string(strconv.AppendFloat(nil, v, 'f', prec, 64))
		if got != want {
			t.Logf("appendFixedFloat(%b=%g, %d) = %q, strconv = %q", bits, v, prec, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// TestParseFastMatchesSlow pins the scanning parsers against the original
// Split/Fields implementations on rendered output of every dialect.
func TestParseFastMatchesSlow(t *testing.T) {
	f := func(hopCount uint8, responseMask uint16, rttSeed uint16, reached bool) bool {
		res := genResult(hopCount, responseMask, rttSeed, reached)
		lin := renderLinux(res)
		win := renderWindows(res)
		mtr := renderMTR(res)
		sc, err := renderScapy(res)
		if err != nil {
			return false
		}
		checks := []struct {
			name       string
			text       string
			fast, slow func(string) (Normalized, error)
		}{
			{"linux", lin, parseLinuxFast, parseLinuxSlow},
			{"windows", win, parseWindowsFast, parseWindowsSlow},
			{"mtr", mtr, parseMTRFast, parseMTRSlow},
		}
		for _, c := range checks {
			fastOut, fastErr := c.fast(c.text)
			slowOut, slowErr := c.slow(c.text)
			if (fastErr == nil) != (slowErr == nil) || !reflect.DeepEqual(fastOut, slowOut) {
				t.Logf("%s diverged on %q:\nfast %+v (%v)\nslow %+v (%v)", c.name, c.text, fastOut, fastErr, slowOut, slowErr)
				return false
			}
		}
		// Scapy: the strict scanner must accept its own renderer's output
		// and agree with the encoding/json path.
		rec, ok := scanScapy(sc)
		var ref scapyRecord
		if err := json.Unmarshal([]byte(sc), &ref); err != nil {
			return false
		}
		if !ok || !reflect.DeepEqual(rec, ref) {
			t.Logf("scapy scanner diverged on %q:\nfast %+v (ok=%v)\nref %+v", sc, rec, ok, ref)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestParseFallbacks pins that non-canonical input still parses: tabs
// force the slow Fields path, and whitespace or escapes in scapy records
// force encoding/json — both must agree with the documented semantics.
func TestParseFallbacks(t *testing.T) {
	lin := "traceroute to 20.0.0.1 (20.0.0.1), 30 hops max, 60 byte packets\n 1\t198.18.0.1 (198.18.0.1)\t1.500 ms\n"
	if asciiSimple(lin) {
		t.Fatal("tabbed input should not take the fast path")
	}
	out, err := ParseLinux(lin)
	if err != nil || len(out.Hops) != 1 || out.Hops[0].Addr != "198.18.0.1" || len(out.Hops[0].RTTMs) != 1 {
		t.Fatalf("tabbed linux parse = %+v, %v", out, err)
	}
	spaced := `{ "target": "20.0.0.1", "hops": [ { "ttl": 1, "src": "198.18.0.1", "rtts_s": [ 0.0015 ] } ] }`
	if _, ok := scanScapy(spaced); ok {
		t.Fatal("spaced scapy record should not take the strict scanner")
	}
	norm, err := ParseScapy(spaced)
	if err != nil || norm.Target != "20.0.0.1" || len(norm.Hops) != 1 || norm.Hops[0].RTTMs[0] != 1.5 {
		t.Fatalf("spaced scapy parse = %+v, %v", norm, err)
	}
}

// BenchmarkRenderParse measures the full portability-layer round trip the
// study pays per traceroute, per dialect.
func BenchmarkRenderParse(b *testing.B) {
	res := genResult(12, 0xbeef, 321, true)
	for _, f := range []Format{FormatLinux, FormatWindows, FormatScapy, FormatMTR} {
		b.Run(f.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				text, err := Render(res, f)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Parse(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
