package tracert

import (
	"fmt"
	"math"
	"net/netip"
	"strconv"
	"strings"
)

// The render/parse round trip runs once per traceroute on the study hot
// path (simProber deliberately exercises the portability layer), and the
// fmt/encoding-json implementations dominated its profile. The renderers
// below build the exact same bytes with strconv.Append* into a pre-sized
// buffer — a differential test pins them against the original
// fmt.Fprintf/json.Marshal forms — and the parsers get allocation-light
// scanning fast paths that handle the canonical tool shapes and fall back
// to the original general parsers for anything unusual (tabs, exotic
// whitespace, JSON escapes), so fuzzed or real-world input keeps the old
// semantics exactly.

// appendAddr appends an address's String() form, including the "invalid
// IP" placeholder fmt would print for a zero Addr.
func appendAddr(b []byte, a netip.Addr) []byte {
	if !a.IsValid() {
		return append(b, "invalid IP"...)
	}
	return a.AppendTo(b)
}

// appendPadInt appends v right-aligned in a field of the given width,
// like fmt's %<width>d.
func appendPadInt(b []byte, v int64, width int) []byte {
	var tmp [20]byte
	s := strconv.AppendInt(tmp[:0], v, 10)
	for i := len(s); i < width; i++ {
		b = append(b, ' ')
	}
	return append(b, s...)
}

// appendPadFloat appends v with prec decimals right-aligned in a field of
// the given width, like fmt's %<width>.<prec>f.
func appendPadFloat(b []byte, v float64, width, prec int) []byte {
	var tmp [40]byte
	s := appendFixedFloat(tmp[:0], v, prec)
	for i := len(s); i < width; i++ {
		b = append(b, ' ')
	}
	return append(b, s...)
}

// appendJSONFloat appends a float in encoding/json's canonical encoding:
// shortest 'f' form, switching to 'e' with a trimmed exponent for very
// small or very large magnitudes.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// asciiSimple reports whether text contains only printable ASCII and '\n'
// — the alphabet every renderer in this package emits. Inputs with tabs,
// carriage returns, or other unicode whitespace take the slow parsers,
// whose strings.Fields semantics differ for those bytes.
func asciiSimple(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c != '\n' && (c < ' ' || c > '~') {
			return false
		}
	}
	return true
}

// trimSimple is strings.TrimSpace restricted to the asciiSimple alphabet.
func trimSimple(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\n') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\n') {
		s = s[:len(s)-1]
	}
	return s
}

// cutLine splits off the first line of s.
func cutLine(s string) (line, rest string) {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// splitFieldsInto fills dst with the space-separated fields of line,
// reusing its backing array — the allocation-free strings.Fields for
// asciiSimple input.
func splitFieldsInto(dst []string, line string) []string {
	dst = dst[:0]
	for i := 0; i < len(line); {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		for i < len(line) && line[i] != ' ' {
			i++
		}
		dst = append(dst, line[start:i])
	}
	return dst
}

// parseLinuxFast is ParseLinux for asciiSimple input: identical logic,
// with the line split and per-line strings.Fields allocations replaced by
// a cursor and a reused fields buffer.
func parseLinuxFast(text string) (Normalized, error) {
	body := trimSimple(text)
	line, rest := cutLine(body)
	if !strings.HasPrefix(line, "traceroute to ") {
		return Normalized{}, fmt.Errorf("tracert: not traceroute output")
	}
	var out Normalized
	if i := strings.IndexByte(line, '('); i >= 0 {
		if j := strings.IndexByte(line[i:], ')'); j > 0 {
			out.Target = line[i+1 : i+j]
		}
	}
	if out.Target == "" {
		return Normalized{}, fmt.Errorf("tracert: malformed traceroute header %q", line)
	}
	var fbuf [16]string
	fields := fbuf[:0]
	for rest != "" {
		line, rest = cutLine(rest)
		fields = splitFieldsInto(fields, line)
		if len(fields) < 2 {
			continue
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			return Normalized{}, fmt.Errorf("tracert: bad hop index in %q", line)
		}
		hop := NormHop{Hop: idx}
		if fields[1] != "*" {
			hop.Addr = fields[1]
			for k := 2; k+1 < len(fields); k++ {
				if fields[k+1] == "ms" {
					v, err := strconv.ParseFloat(fields[k], 64)
					if err == nil {
						hop.RTTMs = append(hop.RTTMs, v)
					}
				}
			}
		}
		out.Hops = append(out.Hops, hop)
	}
	out.Reached = reached(out)
	return out, nil
}

// parseWindowsFast is ParseWindows for asciiSimple input.
func parseWindowsFast(text string) (Normalized, error) {
	rest := trimSimple(text)
	var out Normalized
	var fbuf [16]string
	fields := fbuf[:0]
	for rest != "" {
		var line string
		line, rest = cutLine(rest)
		line = trimSimple(line)
		if strings.HasPrefix(line, "Tracing route to ") {
			tail := line[len("Tracing route to "):]
			fields = splitFieldsInto(fields, tail)
			if len(fields) > 0 {
				out.Target = fields[0]
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "Trace complete") {
			continue
		}
		fields = splitFieldsInto(fields, line)
		if len(fields) < 2 {
			continue
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil {
			continue // stray prose
		}
		hop := NormHop{Hop: idx}
		if strings.Contains(line, "Request timed out") {
			out.Hops = append(out.Hops, hop)
			continue
		}
		// Fields alternate "<n> ms" or "*" three times, then the address.
		fs := fields[1:]
		for i := 0; i < len(fs); i++ {
			switch {
			case fs[i] == "*":
				// lost probe
			case fs[i] == "<1" && i+1 < len(fs) && fs[i+1] == "ms":
				hop.RTTMs = append(hop.RTTMs, 0.5)
				i++
			case i+1 < len(fs) && fs[i+1] == "ms":
				if v, err := strconv.ParseFloat(fs[i], 64); err == nil {
					hop.RTTMs = append(hop.RTTMs, v)
					i++
				}
			default:
				hop.Addr = fs[i]
			}
		}
		out.Hops = append(out.Hops, hop)
	}
	if out.Target == "" {
		return Normalized{}, fmt.Errorf("tracert: not tracert output")
	}
	out.Reached = reached(out)
	return out, nil
}

// parseMTRFast is ParseMTR for asciiSimple input.
func parseMTRFast(text string) (Normalized, error) {
	rest := trimSimple(text)
	var out Normalized
	var fbuf [16]string
	fields := fbuf[:0]
	for rest != "" {
		var line string
		line, rest = cutLine(rest)
		line = trimSimple(line)
		if strings.HasPrefix(line, "HOST:") {
			fields = splitFieldsInto(fields, line)
			for i, f := range fields {
				if f == "->" && i+1 < len(fields) {
					out.Target = fields[i+1]
				}
			}
			continue
		}
		sep := strings.Index(line, ".|--")
		if sep < 0 {
			continue
		}
		idx, err := strconv.Atoi(trimSimple(line[:sep]))
		if err != nil {
			continue
		}
		fields = splitFieldsInto(fields, line[sep+len(".|--"):])
		hop := NormHop{Hop: idx}
		if len(fields) >= 7 && fields[0] != "???" {
			hop.Addr = fields[0]
			// fields: addr loss% snt last avg best wrst stdev
			best, err1 := strconv.ParseFloat(fields[5], 64)
			avg, err2 := strconv.ParseFloat(fields[4], 64)
			wrst, err3 := strconv.ParseFloat(fields[6], 64)
			if err1 == nil && err2 == nil && err3 == nil {
				hop.RTTMs = []float64{best, avg, wrst}
			}
		}
		out.Hops = append(out.Hops, hop)
	}
	if out.Target == "" {
		return Normalized{}, fmt.Errorf("tracert: not mtr output")
	}
	out.Reached = reached(out)
	return out, nil
}

// scanScapy is a strict scanner for the exact record shape renderScapy
// emits (no insignificant whitespace, no string escapes). ok is false for
// anything else; ParseScapy then falls back to encoding/json.
func scanScapy(text string) (scapyRecord, bool) {
	var rec scapyRecord
	s := text
	if !strings.HasPrefix(s, `{"target":"`) {
		return rec, false
	}
	s = s[len(`{"target":"`):]
	i := strings.IndexByte(s, '"')
	if i < 0 || strings.IndexByte(s[:i], '\\') >= 0 {
		return rec, false
	}
	rec.Target = s[:i]
	s = s[i+1:]
	if !strings.HasPrefix(s, `,"hops":`) {
		return rec, false
	}
	s = s[len(`,"hops":`):]
	if strings.HasPrefix(s, "null}") {
		return rec, trimSimple(s[len("null}"):]) == ""
	}
	if !strings.HasPrefix(s, "[") {
		return rec, false
	}
	s = s[1:]
	for {
		if !strings.HasPrefix(s, `{"ttl":`) {
			return rec, false
		}
		s = s[len(`{"ttl":`):]
		end := numEnd(s)
		ttl, err := strconv.Atoi(s[:end])
		if err != nil {
			return rec, false
		}
		s = s[end:]
		hop := scapyHop{TTL: ttl}
		if strings.HasPrefix(s, `,"src":"`) {
			s = s[len(`,"src":"`):]
			i := strings.IndexByte(s, '"')
			if i < 0 || strings.IndexByte(s[:i], '\\') >= 0 {
				return rec, false
			}
			hop.Src = s[:i]
			s = s[i+1:]
		}
		if strings.HasPrefix(s, `,"rtts_s":[`) {
			s = s[len(`,"rtts_s":[`):]
			for {
				end := numEnd(s)
				v, err := strconv.ParseFloat(s[:end], 64)
				if err != nil {
					return rec, false
				}
				hop.RTTs = append(hop.RTTs, v)
				s = s[end:]
				if strings.HasPrefix(s, ",") {
					s = s[1:]
					continue
				}
				break
			}
			if !strings.HasPrefix(s, "]") {
				return rec, false
			}
			s = s[1:]
		}
		if !strings.HasPrefix(s, "}") {
			return rec, false
		}
		s = s[1:]
		rec.Hops = append(rec.Hops, hop)
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		break
	}
	if !strings.HasPrefix(s, "]}") {
		return rec, false
	}
	return rec, trimSimple(s[len("]}"):]) == ""
}

// numEnd returns the length of the JSON-number prefix of s.
func numEnd(s string) int {
	i := 0
	for i < len(s) {
		switch c := s[i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			i++
		default:
			return i
		}
	}
	return i
}
