package tracert

import "strconv"

// appendFixedFloat appends v exactly as strconv.AppendFloat(b, v, 'f',
// prec, 64) would — the %.<prec>f the renderers need — but routes the
// common case through strconv's Ryu fixed-digit path. strconv only uses
// Ryu for shortest and for fixed-significant-digit ('e'/'g') formatting;
// 'f' with a fixed precision always takes the big-decimal slow path,
// which dominated the render profile. Rounding to <prec> decimals is
// rounding to a known number of significant digits once the value's
// decimal exponent is known, so we format with 'e' (fast), then lay the
// digits back out in fixed-point form.
//
// Every input outside the proven envelope — non-positive, huge, tiny
// tie-adjacent magnitudes, or any surprise in the 'e' output — falls back
// to strconv, so the bytes are identical for all inputs by construction;
// the differential test hammers the layout branch.
func appendFixedFloat(b []byte, v float64, prec int) []byte {
	if !(v > 0) || v >= 1e15 || prec <= 0 || prec > 9 {
		// Zero (either sign), negatives, NaN, Inf, huge: strconv handles
		// every edge of those.
		return strconv.AppendFloat(b, v, 'f', prec, 64)
	}

	// Decimal exponent estimate: 10^e10 <= v < 10^(e10+1). For v >= 1 the
	// comparisons are exact (positive powers of ten up to 1e15 are exact
	// doubles); for v < 1 the estimate can be off by one near a boundary,
	// which the exponent check below turns into a fallback.
	e10 := 0
	if v >= 1 {
		p := 1.0
		for v >= p*10 {
			p *= 10
			e10++
		}
	} else {
		p := 1.0
		for v < p {
			p /= 10
			e10--
		}
	}

	sig := prec + e10 + 1
	if sig < 0 {
		// v < 10^(e10+1) <= 10^-(prec+1), strictly below half an ulp of
		// the last printed place: rounds to zero.
		b = append(b, '0', '.')
		for i := 0; i < prec; i++ {
			b = append(b, '0')
		}
		return b
	}
	if sig == 0 || sig > 18 {
		// sig == 0 sits next to the 0.5*10^-prec tie; too subtle to decide
		// with inexact negative powers. sig > 18 exceeds Ryu's fixed range.
		return strconv.AppendFloat(b, v, 'f', prec, 64)
	}

	var tmp [32]byte
	s := strconv.AppendFloat(tmp[:0], v, 'e', sig-1, 64)
	// Shape: d[.dd...]e±XX — split digits and exponent.
	ei := len(s) - 1
	for ei > 0 && s[ei] != 'e' {
		ei--
	}
	if ei <= 0 {
		return strconv.AppendFloat(b, v, 'f', prec, 64)
	}
	exp, expNeg := 0, false
	for _, c := range s[ei+1:] {
		switch {
		case c == '-':
			expNeg = true
		case c == '+':
		case c >= '0' && c <= '9':
			exp = exp*10 + int(c-'0')
		default:
			return strconv.AppendFloat(b, v, 'f', prec, 64)
		}
	}
	if expNeg {
		exp = -exp
	}
	var digits [20]byte
	nd := 0
	digits[nd] = s[0]
	nd++
	if sig > 1 {
		if s[1] != '.' {
			return strconv.AppendFloat(b, v, 'f', prec, 64)
		}
		for _, c := range s[2:ei] {
			if nd >= len(digits) {
				return strconv.AppendFloat(b, v, 'f', prec, 64)
			}
			digits[nd] = c
			nd++
		}
	}
	if nd != sig {
		return strconv.AppendFloat(b, v, 'f', prec, 64)
	}

	// exp == e10 is the clean case (or an exact-power carry from just
	// below, which lays out to the same bytes). exp == e10+1 for v >= 1 is
	// a rounding carry across a power of ten — e10 is exact there, and the
	// carried value needs one more integer digit with an all-zero tail.
	// Anything else means the v < 1 estimate was off: fall back.
	if exp != e10 && !(v >= 1 && exp == e10+1) {
		return strconv.AppendFloat(b, v, 'f', prec, 64)
	}

	if exp >= 0 {
		intDigits := exp + 1
		if nd < intDigits {
			return strconv.AppendFloat(b, v, 'f', prec, 64)
		}
		b = append(b, digits[:intDigits]...)
		b = append(b, '.')
		b = append(b, digits[intDigits:nd]...)
		for i := nd - intDigits; i < prec; i++ {
			b = append(b, '0')
		}
		return b
	}
	b = append(b, '0', '.')
	zeros := -exp - 1
	if zeros+nd > prec {
		return strconv.AppendFloat(b[:len(b)-2], v, 'f', prec, 64)
	}
	for i := 0; i < zeros; i++ {
		b = append(b, '0')
	}
	b = append(b, digits[:nd]...)
	for i := zeros + nd; i < prec; i++ {
		b = append(b, '0')
	}
	return b
}
